// fourindex-serve: the persistent transform service as a binary.
//
// Server mode (default):
//   fourindex-serve [--socket PATH] [--once N]
// binds a Unix-domain socket (default /tmp/fourindex-serve.sock, or
// FOURINDEX_SERVE_SOCKET) and serves newline-delimited JSON requests
// until a {"verb":"shutdown"} line arrives — or, with --once N, until
// N request lines have been handled. On exit it emits a
// "fourindex_serve" bench document with the serve.* metrics, so smoke
// jobs can jq-gate admission and cache behaviour.
//
// Client mode:
//   fourindex-serve --socket PATH --request '<json-line>'
// sends one request line to a running server and prints the response
// line on stdout.
//
// Pipe-client mode:
//   fourindex-serve --socket PATH --client
// reads NDJSON request lines from stdin, sends each to the server, and
// prints each response line on stdout — the harness the docs-examples
// CI step drives the README/DESIGN serving examples through.
#include <cstdlib>
#include <iostream>
#include <string>

#include "obs/bench_json.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "util/error.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--socket PATH] [--once N] [--request '<json>']"
               " [--client]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fit;

  std::string socket_path = "/tmp/fourindex-serve.sock";
  if (const char* env = std::getenv("FOURINDEX_SERVE_SOCKET");
      env && *env)
    socket_path = env;
  std::size_t once = 0;
  std::string request_line;
  bool pipe_client = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--socket" && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (arg == "--once" && i + 1 < argc) {
      once = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg == "--request" && i + 1 < argc) {
      request_line = argv[++i];
    } else if (arg == "--client") {
      pipe_client = true;
    } else {
      return usage(argv[0]);
    }
  }

  try {
    if (!request_line.empty()) {
      std::cout << serve::Server::request(socket_path, request_line)
                << "\n";
      return 0;
    }

    if (pipe_client) {
      // One request per stdin line, one response per stdout line —
      // blank lines and '#' comments are skipped so fenced doc
      // examples can be piped through verbatim.
      std::string line;
      while (std::getline(std::cin, line)) {
        if (line.empty() || line[0] == '#') continue;
        std::cout << serve::Server::request(socket_path, line) << "\n";
      }
      return 0;
    }

    serve::Server server(serve::TransformService::from_env(), socket_path);
    const std::size_t served = server.serve_forever(once);

    obs::BenchReport report("fourindex_serve");
    report.add_scalar("serve.lines_served", static_cast<double>(served));
    report.add_metrics("serve", server.service().metrics());
    report.add_note("socket " + socket_path);
    report.write();
    return 0;
  } catch (const Error& e) {
    std::cerr << "fourindex-serve: " << e.what() << "\n";
    return 1;
  }
}
