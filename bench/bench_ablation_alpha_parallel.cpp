// Section 7.3 ablation: parallelism vs. communication + load balance.
//
// In the fused-inner schedule only the fused k loop is "free" to
// parallelize; splitting the alpha range into n_ac chunks multiplies
// the available work units by n_ac but replicates the A slice traffic
// by the same factor, and the triangular alpha >= beta distribution
// induces load imbalance. This bench sweeps n_ac on a fixed cluster.
#include <iostream>

#include "chem/molecule.hpp"
#include "core/problem.hpp"
#include "core/schedules_par.hpp"
#include "obs/bench_json.hpp"
#include "runtime/cluster.hpp"
#include "runtime/machine.hpp"
#include "util/format.hpp"

int main() {
  using namespace fit;
  obs::BenchReport report("bench_ablation_alpha_parallel");
  auto p = core::make_problem(chem::custom_molecule("alpha", 64, 8, 21));

  runtime::MachineConfig m;
  m.name = "probe";
  m.n_nodes = 16;
  m.ranks_per_node = 4;
  m.mem_per_node_bytes = 2e9;
  m.flops_per_rank = 4e9;
  m.integrals_per_sec = 2e8;
  m.net_bandwidth_bps = 1e9;
  m.net_latency_s = 2e-6;
  m.local_bandwidth_bps = 2e10;

  TextTable t({"alpha chunks", "work units (12-phase)", "remote bytes",
               "A-traffic factor", "worst imbalance", "sim time (s)"});
  double base_bytes = 0;
  for (std::size_t ac : {1u, 2u, 4u, 8u, 16u}) {
    core::ParOptions o;
    o.tile = 8;
    o.tile_l = 4;
    o.alpha_parallel = ac;
    o.gather_result = false;
    runtime::Cluster cl(m, runtime::ExecutionMode::Simulate);
    auto r = core::fused_inner_par_transform(p, cl, o);
    const double bytes = r.stats.remote_bytes + r.stats.local_bytes;
    if (ac == 1) base_bytes = bytes;
    // Work units in the fused-12 phase: k tiles x alpha chunks.
    const std::size_t units =
        ac * ((p.n() + o.tile - 1) / o.tile);  // approximate (aligned)
    t.add_row({std::to_string(ac), std::to_string(units),
               human_bytes(bytes), fmt_fixed(bytes / base_bytes, 2) + "x",
               fmt_fixed(r.stats.worst_imbalance, 2),
               fmt_fixed(r.stats.sim_time, 4)});
    report.add_scalar("ac" + std::to_string(ac) + ".sim_time_s",
                      r.stats.sim_time);
    report.add_scalar("ac" + std::to_string(ac) + ".traffic_factor",
                      bytes / base_bytes);
  }
  t.print("Sec 7.3 — alpha parallelization sweep (n = 64, 64 ranks)");
  report.add_table("Sec 7.3 — alpha parallelization sweep", t);
  std::cout << "(more chunks -> more parallelism and lower time up to a "
               "point, at the cost of replicated A traffic; the "
               "triangular distribution keeps imbalance > 1)\n\n";

  // Sec. 7.3 also sketches "alternative load balancing strategies":
  // compare contiguous alpha chunks against greedy weight-balanced
  // assignment at fixed parallelism.
  TextTable t2({"chunking", "alpha chunks", "worst imbalance",
                "sim time (s)"});
  for (auto mode : {core::ParOptions::AlphaChunking::Contiguous,
                    core::ParOptions::AlphaChunking::Balanced}) {
    core::ParOptions o;
    o.tile = 8;
    o.tile_l = 4;
    o.alpha_parallel = 4;
    o.alpha_chunking = mode;
    o.gather_result = false;
    runtime::Cluster cl(m, runtime::ExecutionMode::Simulate);
    auto r = core::fused_inner_par_transform(p, cl, o);
    const bool contiguous =
        mode == core::ParOptions::AlphaChunking::Contiguous;
    t2.add_row({contiguous ? "contiguous" : "balanced", "4",
                fmt_fixed(r.stats.worst_imbalance, 2),
                fmt_fixed(r.stats.sim_time, 4)});
    report.add_scalar(std::string(contiguous ? "contiguous" : "balanced") +
                          ".worst_imbalance",
                      r.stats.worst_imbalance);
  }
  t2.print("Sec 7.3 — alpha chunking strategy (load balancing)");
  report.add_table("Sec 7.3 — alpha chunking strategy", t2);
  const std::string written = report.write();
  if (!written.empty()) std::cout << "bench JSON: " << written << "\n";
  return 0;
}
