// Batch/tenancy ablation: what does fleet-scale scheduling buy?
//
// The ROADMAP north star is serving many users, and an MP2 energy scan
// issues dozens of transforms sharing one basis. This bench measures
// the three properties the batch/tenant stack must deliver:
//
//   1. Amortization — a shared-basis batch fills the AO tensor A (and
//      pays its integral evaluation) once, so K batched transforms
//      beat K sequential solo runs on the same cluster. Reported as
//      transforms/hour at fixed aggregate memory; CI gates the
//      batched-vs-sequential speedup >= 1.2x.
//   2. Fairness under quotas — the deficit-round-robin tenant
//      dispenser (ga::plan_tasks + TenantSpec) must complete equal
//      tenant shares near-simultaneously and must never drive a
//      tenant's in-flight bytes past its quota. CI gates zero quota
//      violations.
//   3. Replay identity — Real-mode batch members are bit-identical to
//      solo runs, and a multi-tenant interleaved service workload
//      reproduces exactly the checksums of the same tenants run
//      serially on fresh services. CI gates zero mismatches.
//
// --record-costs PATH appends a "batch" cost sample (shape = member
// count, rate = whole-batch transforms/s) that the serve cost oracle
// uses to price batch requests from measurement instead of the
// planner's estimate.
//
// FOURINDEX_BENCH_SMOKE=1 shrinks the scan so the bench finishes in
// seconds.
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "chem/molecule.hpp"
#include "core/planner.hpp"
#include "core/problem.hpp"
#include "core/schedules_par.hpp"
#include "ga/task_counter.hpp"
#include "obs/bench_json.hpp"
#include "runtime/cluster.hpp"
#include "runtime/machine.hpp"
#include "serve/cost_oracle.hpp"
#include "serve/cost_table.hpp"
#include "serve/service.hpp"
#include "util/format.hpp"

int main(int argc, char** argv) {
  using namespace fit;
  const std::string costs_path = serve::record_costs_flag(&argc, argv);
  serve::CostTable costs;
  obs::BenchReport report("bench_ablation_batch_tenancy");

  const bool smoke = std::getenv("FOURINDEX_BENCH_SMOKE") != nullptr;
  const std::size_t n = smoke ? 20 : 48;
  const std::size_t members = smoke ? 4 : 8;

  auto p = core::make_problem(chem::custom_molecule("scan", n, 2, 77));
  const auto bs = core::batch_member_bs(p, members);

  // A fleet node with a deliberately expensive integral engine — the
  // heavy-basis regime where A-generation is a first-class cost and
  // the scan's repeated fills are what batching exists to remove.
  runtime::MachineConfig m;
  m.name = "fleet-node";
  m.n_nodes = smoke ? 4 : 8;
  m.ranks_per_node = 2;
  m.mem_per_node_bytes = 2e9;
  m.flops_per_rank = 4e9;
  m.integrals_per_sec = 2e6;
  m.net_bandwidth_bps = 1e9;
  m.net_latency_s = 2e-6;
  m.local_bandwidth_bps = 2e10;

  core::ParOptions opt;
  opt.tile = smoke ? 6 : 8;
  opt.tile_l = 4;
  opt.gather_result = false;

  std::cout << "Batch/tenancy ablation: " << members
            << "-member shared-basis scan (n = " << n << ") on " << m.name
            << ", " << m.n_ranks() << " ranks\n\n";
  report.add_note(std::to_string(members) + "-member shared-basis scan, n = " +
                  std::to_string(n) + ", " + std::to_string(m.n_ranks()) +
                  " ranks on " + m.name);

  // ---- 1. batched vs sequential throughput --------------------------
  // Sequential baseline: each member runs solo on an identically
  // configured cluster; the scan's cost is the sum of the runs. The
  // batched run shares one cluster — same aggregate memory — and fills
  // A once for all members.
  double seq_s = 0.0, seq_peak = 0.0, seq_evals = 0.0;
  for (std::size_t mi = 0; mi < bs.size(); ++mi) {
    auto pm = core::make_problem(p.molecule);
    pm.b = bs[mi];
    runtime::Cluster cl(m, runtime::ExecutionMode::Simulate);
    const auto r = core::unfused_par_transform(pm, cl, opt);
    seq_s += r.stats.sim_time;
    seq_peak = std::max(seq_peak, r.stats.peak_global_bytes);
    seq_evals += r.stats.integral_evals;
  }

  runtime::Cluster cb(m, runtime::ExecutionMode::Simulate);
  const auto batched = core::batched_unfused_par_transform(p, bs, cb, opt);
  runtime::Cluster cf(m, runtime::ExecutionMode::Simulate);
  const auto batched_f =
      core::batched_fused_inner_par_transform(p, bs, cf, opt);

  const double k = static_cast<double>(members);
  const double seq_tph = 3600.0 * k / seq_s;
  const double bat_tph = 3600.0 * k / batched.stats.sim_time;
  const double speedup = seq_s / batched.stats.sim_time;
  const double agg_bytes =
      static_cast<double>(m.n_nodes) * m.mem_per_node_bytes;

  TextTable t({"scan", "sim time (s)", "transforms/h", "peak GA",
               "integral evals"});
  t.add_row({"sequential x" + std::to_string(members), fmt_fixed(seq_s, 3),
             fmt_fixed(seq_tph, 1), human_bytes(seq_peak),
             fmt_fixed(seq_evals, 0)});
  t.add_row({"batched (unfused)", fmt_fixed(batched.stats.sim_time, 3),
             fmt_fixed(bat_tph, 1), human_bytes(batched.stats.peak_global_bytes),
             fmt_fixed(batched.stats.integral_evals, 0)});
  t.add_row({"batched (fused-inner)",
             fmt_fixed(batched_f.stats.sim_time, 3),
             fmt_fixed(3600.0 * k / batched_f.stats.sim_time, 1),
             human_bytes(batched_f.stats.peak_global_bytes),
             fmt_fixed(batched_f.stats.integral_evals, 0)});
  t.print("Shared-basis scan: batched vs sequential at equal aggregate "
          "memory");
  std::cout << std::endl;
  report.add_table("batched vs sequential", t);

  report.add_scalar("scan.members", k);
  report.add_scalar("scan.sequential.sim_time_s", seq_s);
  report.add_scalar("scan.sequential.transforms_per_hour", seq_tph);
  report.add_scalar("scan.batched.sim_time_s", batched.stats.sim_time);
  report.add_scalar("scan.batched.transforms_per_hour", bat_tph);
  report.add_scalar("scan.batched.speedup", speedup);
  report.add_scalar("scan.batched.peak_global_bytes",
                    batched.stats.peak_global_bytes);
  report.add_scalar("scan.aggregate_bytes", agg_bytes);
  report.add_scalar("scan.batched.integral_evals",
                    batched.stats.integral_evals);
  report.add_scalar("scan.sequential.integral_evals", seq_evals);
  report.add_scalar("scan.fused.sim_time_s", batched_f.stats.sim_time);
  report.add_scalar("scan.fused.peak_global_bytes",
                    batched_f.stats.peak_global_bytes);

  // The modeled member-completion profile: under the unfused chain
  // members stream out one after another (useful latency), under the
  // fused schedules all complete at the makespan.
  report.add_scalar("scan.batched.first_member_done_s",
                    batched.member_done_s.front());
  report.add_scalar("scan.batched.last_member_done_s",
                    batched.member_done_s.back());

  if (!costs_path.empty() && batched.stats.sim_time > 0)
    costs.add({"batch", k, k / batched.stats.sim_time,
               "bench_ablation_batch_tenancy/unfused"});

  // ---- 2. multi-tenant fairness and quota adherence -----------------
  // Two tenants with equal aggregate work but different task shapes
  // (many cheap vs few expensive) share one cluster under per-tenant
  // in-flight byte quotas. The DRR dispenser must finish both within a
  // modest makespan ratio and must never exceed either quota.
  auto cl_t =
      runtime::Cluster(m, runtime::ExecutionMode::Simulate);
  ga::TaskCounter counter(cl_t, "tenancy-bench");
  std::vector<std::size_t> tenant, owner;
  std::vector<double> cost, bytes;
  const std::size_t cheap = smoke ? 40 : 160;
  for (std::size_t i = 0; i < cheap; ++i) {  // tenant 0: many cheap
    tenant.push_back(0);
    cost.push_back(1e-3);
    bytes.push_back(64.0);
  }
  for (std::size_t i = 0; i < cheap / 5; ++i) {  // tenant 1: few heavy
    tenant.push_back(1);
    cost.push_back(5e-3);
    bytes.push_back(256.0);
  }
  owner.assign(tenant.size(), 0);
  for (std::size_t i = 0; i < owner.size(); ++i)
    owner[i] = i % cl_t.n_ranks();
  const std::vector<double> quota = {8.0 * 64.0, 4.0 * 256.0};
  ga::TenantSpec spec;
  spec.tenant = tenant;
  spec.task_bytes = bytes;
  spec.quota_bytes = quota;
  spec.n_tenants = 2;
  const auto plan = ga::plan_tasks(cl_t, ga::Balance::Counter, counter,
                                   cost, owner, spec);

  const double hi = std::max(plan.tenant_makespan_s[0],
                             plan.tenant_makespan_s[1]);
  const double lo = std::min(plan.tenant_makespan_s[0],
                             plan.tenant_makespan_s[1]);
  const double fairness = lo > 0 ? hi / lo : 0.0;
  double violations = 0.0;
  for (std::size_t i = 0; i < quota.size(); ++i)
    if (plan.tenant_peak_bytes[i] > quota[i]) violations += 1.0;

  TextTable tt({"tenant", "tasks", "makespan (s)", "peak bytes",
                "quota bytes"});
  for (std::size_t i = 0; i < quota.size(); ++i) {
    const auto count = std::count(tenant.begin(), tenant.end(), i);
    tt.add_row({std::to_string(i), std::to_string(count),
                fmt_fixed(plan.tenant_makespan_s[i], 4),
                fmt_fixed(plan.tenant_peak_bytes[i], 0),
                fmt_fixed(quota[i], 0)});
  }
  tt.print("Deficit-round-robin tenancy under per-tenant quotas");
  std::cout << std::endl;
  report.add_table("tenancy fairness and quotas", tt);

  report.add_scalar("tenancy.fairness_ratio", fairness);
  report.add_scalar("tenancy.quota_violations", violations);
  report.add_scalar("tenancy.quota_stalls",
                    static_cast<double>(plan.quota_stalls));
  report.add_scalar("tenancy.tenant0.peak_bytes", plan.tenant_peak_bytes[0]);
  report.add_scalar("tenancy.tenant1.peak_bytes", plan.tenant_peak_bytes[1]);
  report.add_scalar("tenancy.tenant0.quota_bytes", quota[0]);
  report.add_scalar("tenancy.tenant1.quota_bytes", quota[1]);

  // ---- 3. replay identity -------------------------------------------
  // (a) Real-mode batch members vs solo runs, bit for bit.
  double member_mismatches = 0.0;
  {
    auto pr = core::make_problem(chem::custom_molecule("scan-r", 12, 2, 78));
    const auto rbs = core::batch_member_bs(pr, 3);
    core::ParOptions ro;
    ro.tile = 4;
    ro.tile_l = 4;
    runtime::Cluster rc(runtime::system_b(1), runtime::ExecutionMode::Real);
    const auto rb = core::batched_unfused_par_transform(pr, rbs, rc, ro);
    for (std::size_t mi = 0; mi < rbs.size(); ++mi) {
      auto pm = core::make_problem(pr.molecule);
      pm.b = rbs[mi];
      runtime::Cluster sc(runtime::system_b(1),
                          runtime::ExecutionMode::Real);
      const auto solo = core::unfused_par_transform(pm, sc, ro);
      if (!rb.c[mi] || !solo.c ||
          rb.c[mi]->max_abs_diff(*solo.c) != 0.0)
        member_mismatches += 1.0;
    }
  }

  // (b) Interleaved multi-tenant service workload vs the same tenants
  // run serially, each on a fresh service: every checksum must match.
  double service_mismatches = 0.0;
  {
    serve::Request ra;
    ra.molecule = "custom";
    ra.custom_n = 12;
    ra.custom_s = 2;
    ra.n_nodes = 1;
    ra.tile = 4;
    ra.tile_l = 4;
    ra.real = true;
    ra.tenant = "alice";
    serve::Request rb2 = ra;
    rb2.tenant = "bob";
    rb2.batch = 2;

    serve::TransformService mixed{serve::CostOracle{}};
    const auto a1 = mixed.submit(ra);
    const auto b1 = mixed.submit(rb2);
    const auto a2 = mixed.submit(ra);  // warm: cache replay

    serve::TransformService alice{serve::CostOracle{}};
    serve::TransformService bob{serve::CostOracle{}};
    const auto sa = alice.submit(ra);
    const auto sb = bob.submit(rb2);
    if (a1.result_checksum != sa.result_checksum) service_mismatches += 1;
    if (a2.result_checksum != sa.result_checksum) service_mismatches += 1;
    if (b1.result_checksum != sb.result_checksum) service_mismatches += 1;
  }

  report.add_scalar("identity.member_mismatches", member_mismatches);
  report.add_scalar("identity.service_mismatches", service_mismatches);
  report.add_metrics("batched", cb.metrics());

  std::cout << "batched scan ran " << fmt_fixed(speedup, 3)
            << "x the sequential throughput (" << fmt_fixed(bat_tph, 1)
            << " vs " << fmt_fixed(seq_tph, 1)
            << " transforms/h); fairness ratio " << fmt_fixed(fairness, 3)
            << ", quota violations " << fmt_fixed(violations, 0)
            << ", replay mismatches "
            << fmt_fixed(member_mismatches + service_mismatches, 0) << "\n";

  if (!costs_path.empty() && !costs.empty())
    serve::record_costs(costs_path, costs);
  const std::string written = report.write();
  if (!written.empty()) std::cout << "bench JSON: " << written << "\n";
  return 0;
}
