// Comm/compute overlap ablation: what do the nonblocking pipelines buy?
//
// Runs the comm-bound headline configuration — Uracil (87 scaled
// orbitals) on System B at 504 cores, the Figure 2b point where the
// unfused intermediates fit and the transform is limited by one-sided
// traffic — once with the double-buffered prefetch pipelines enabled
// (ParOptions::overlap, the default) and once with the blocking
// ablation baseline. Both runs move identical bytes and issue the GA
// operations in the same order; only the clock model differs, so the
// sim-time delta is exactly the transfer time the pipelines hid.
//
// Reported per schedule: simulated time for both modes, the
// overlapped/exposed decomposition of the transfer time, and the
// speedup. CI gates: overlapped_s > 0, exposed_s <= total comm
// seconds, and overlap sim time <= blocking sim time.
//
// FOURINDEX_BENCH_SMOKE=1 shrinks the molecule and the cluster so the
// bench finishes in seconds.
#include <cstdlib>
#include <iostream>
#include <string>

#include "chem/molecule.hpp"
#include "core/problem.hpp"
#include "core/schedules_par.hpp"
#include "obs/bench_json.hpp"
#include "runtime/cluster.hpp"
#include "runtime/machine.hpp"
#include "serve/cost_table.hpp"
#include "util/format.hpp"

int main(int argc, char** argv) {
  using namespace fit;
  const std::string costs_path = serve::record_costs_flag(&argc, argv);
  serve::CostTable costs;
  obs::BenchReport report("bench_ablation_comm_overlap");

  const bool smoke = std::getenv("FOURINDEX_BENCH_SMOKE") != nullptr;

  auto p = smoke
               ? core::make_problem(chem::custom_molecule("ovl", 20, 2, 7))
               : core::make_problem(chem::paper_molecule("Uracil"));
  auto m = smoke ? runtime::system_b(2) : runtime::system_b(18);

  core::ParOptions overlap_on;
  overlap_on.tile = smoke ? 6 : 8;
  overlap_on.tile_l = 4;
  overlap_on.gather_result = false;
  overlap_on.overlap = true;
  core::ParOptions overlap_off = overlap_on;
  overlap_off.overlap = false;

  report.add_note(std::string(smoke ? "smoke" : "uracil") + " on " + m.name +
                  " with " + std::to_string(m.n_ranks()) + " ranks");
  std::cout << "Comm/compute overlap ablation: "
            << (smoke ? "smoke problem" : "Uracil (87 scaled orbitals)")
            << " on " << m.name << ", " << m.n_ranks() << " ranks\n\n";

  struct Sched {
    const char* key;
    core::ParResult (*fn)(const core::Problem&, runtime::Cluster&,
                          const core::ParOptions&);
  };
  const Sched schedules[] = {
      {"unfused", &core::unfused_par_transform},
      {"fused_inner", &core::fused_inner_par_transform},
  };

  TextTable t({"schedule", "blocking (s)", "overlap (s)", "speedup",
               "hidden (s)", "exposed (s)", "hidden frac"});
  for (const auto& s : schedules) {
    runtime::Cluster con(m, runtime::ExecutionMode::Simulate);
    const auto ron = s.fn(p, con, overlap_on);
    runtime::Cluster coff(m, runtime::ExecutionMode::Simulate);
    const auto roff = s.fn(p, coff, overlap_off);

    const double total_comm =
        ron.stats.overlapped_seconds + ron.stats.exposed_seconds;
    const double speedup = ron.stats.sim_time > 0
                               ? roff.stats.sim_time / ron.stats.sim_time
                               : 1.0;
    t.add_row({s.key, fmt_fixed(roff.stats.sim_time, 3),
               fmt_fixed(ron.stats.sim_time, 3),
               fmt_fixed(speedup, 3) + "x",
               fmt_fixed(ron.stats.overlapped_seconds, 3),
               fmt_fixed(ron.stats.exposed_seconds, 3),
               total_comm > 0
                   ? fmt_fixed(ron.stats.overlapped_seconds / total_comm, 3)
                   : "-"});

    const std::string k = std::string(s.key);
    report.add_scalar(k + ".blocking.sim_time_s", roff.stats.sim_time);
    report.add_scalar(k + ".overlap.sim_time_s", ron.stats.sim_time);
    report.add_scalar(k + ".overlap.overlapped_s",
                      ron.stats.overlapped_seconds);
    report.add_scalar(k + ".overlap.exposed_s", ron.stats.exposed_seconds);
    report.add_scalar(k + ".overlap.total_comm_s", total_comm);
    report.add_scalar(k + ".speedup", speedup);
    report.add_metrics(k + ".overlap", con.metrics());

    // --record-costs: the effective per-rank link rate this schedule
    // realized — remote bytes over wire-busy seconds — at the tile
    // message size, for the cost oracle's "link" kind. Contention and
    // exposure make this differ from the machine's nominal bandwidth,
    // which is exactly what the oracle exists to capture.
    if (!costs_path.empty() && total_comm > 0 &&
        ron.stats.remote_bytes > 0) {
      const double msg_bytes =
          8.0 * static_cast<double>(overlap_on.tile * overlap_on.tile);
      costs.add({"link", msg_bytes,
                 ron.stats.remote_bytes /
                     (total_comm * static_cast<double>(m.n_ranks())),
                 std::string("bench_ablation_comm_overlap/") + s.key});
    }
  }
  t.print("Nonblocking pipelines vs blocking baseline");
  std::cout << std::endl;

  report.add_table("Nonblocking pipelines vs blocking baseline", t);
  if (!costs_path.empty() && !costs.empty())
    serve::record_costs(costs_path, costs);
  const std::string written = report.write();
  if (!written.empty()) std::cout << "bench JSON: " << written << "\n";
  return 0;
}
