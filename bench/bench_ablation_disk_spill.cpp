// Section 3 motivation quantified: why "the largest problem WITHOUT
// going to disk" is the right objective.
//
// The paper's Sec. 3: supercomputer nodes often have no local disk and
// the collective file-system bandwidth is very low, so a transform
// whose intermediates exceed aggregate memory must either spill (pay
// that bandwidth) or fuse. This bench runs the Shell-Mixed problem on
// a System-B-sized cluster with a simulated parallel file system and
// compares the unfused schedule (spilling its n^4-scale intermediates)
// against the fused in-memory schedule.
//
// Expected shape: the spilling run moves GBs through the slow disk and
// is one to two orders of magnitude slower; the fused schedule touches
// the disk not at all.
#include <iostream>

#include "chem/molecule.hpp"
#include "core/problem.hpp"
#include "core/schedules_par.hpp"
#include "obs/bench_json.hpp"
#include "runtime/cluster.hpp"
#include "runtime/machine.hpp"
#include "util/format.hpp"

int main() {
  using namespace fit;
  obs::BenchReport report("bench_ablation_disk_spill");
  auto p = core::make_problem(chem::paper_molecule("Shell-Mixed"));
  auto machine = runtime::system_b(18);  // 2.10 GB aggregate (scaled)
  // Parallel file system: ~2 GB/s collective at paper scale is
  // generous; scale bandwidth with the 1/4096 memory scaling so the
  // disk:memory bandwidth ratio is preserved.
  machine.disk_bandwidth_bps = 2e9 / 64.0;  // time scales are relative
  machine.disk_latency_s = 2e-3;

  core::ParOptions o;
  o.tile = 8;
  o.tile_l = 4;
  o.gather_result = false;

  TextTable t({"schedule", "sim time (s)", "disk bytes", "remote bytes",
               "peak global", "spilled?"});
  {
    runtime::Cluster cl(machine, runtime::ExecutionMode::Simulate);
    auto r = core::unfused_par_transform(p, cl, o);
    t.add_row({"unfused + spill", fmt_fixed(r.stats.sim_time, 2),
               human_bytes(cl.totals().disk_bytes),
               human_bytes(r.stats.remote_bytes),
               human_bytes(r.stats.peak_global_bytes),
               cl.disk_peak() > 0 ? "yes (" +
                   human_bytes(cl.disk_peak()) + " on disk)" : "no"});
    report.add_scalar("unfused.sim_time_s", r.stats.sim_time);
    report.add_scalar("unfused.disk_bytes",
                      double(cl.totals().disk_bytes));
    report.add_metrics("unfused", cl.metrics());
  }
  {
    runtime::Cluster cl(machine, runtime::ExecutionMode::Simulate);
    auto r = core::fused_inner_par_transform(p, cl, o);
    t.add_row({"fused-inner (in memory)", fmt_fixed(r.stats.sim_time, 2),
               human_bytes(cl.totals().disk_bytes),
               human_bytes(r.stats.remote_bytes),
               human_bytes(r.stats.peak_global_bytes),
               cl.disk_peak() > 0 ? "yes" : "no"});
    report.add_scalar("fused_inner.sim_time_s", r.stats.sim_time);
    report.add_scalar("fused_inner.disk_bytes",
                      double(cl.totals().disk_bytes));
    report.add_metrics("fused_inner", cl.metrics());
  }
  t.print("Sec 3 — cost of spilling vs fusing, Shell-Mixed on System B "
          "(504 cores)");
  report.add_table("Sec 3 — cost of spilling vs fusing", t);
  const std::string written = report.write();
  if (!written.empty()) std::cout << "bench JSON: " << written << "\n";
  std::cout << "(the fused schedule is the only way to stay entirely in "
               "memory: Theorem 6.2's S >= |C| bound is satisfiable, the "
               "unfused schedule's ~3n^4/4 requirement is not)\n";
  return 0;
}
