// Fault-recovery ablation: what does surviving failures cost?
//
// Runs the distributed unfused transform twice on the same simulated
// cluster configuration — once clean, once under an injected fault
// storm (a rank death, transient one-sided failures, and a network
// degradation) with phase-boundary checkpointing enabled — and
// reports the simulated-time overhead plus the checkpoint traffic.
// The checkpoint writes go through the same alpha-beta disk model as
// the paper's out-of-core variant, so the overhead is an apples-to-
// apples simulated-time number, not a host-wall-clock artifact.
#include <cstdlib>
#include <iostream>

#include "chem/molecule.hpp"
#include "core/problem.hpp"
#include "core/schedules_par.hpp"
#include "obs/bench_json.hpp"
#include "runtime/cluster.hpp"
#include "runtime/faults.hpp"
#include "runtime/machine.hpp"
#include "util/format.hpp"

int main() {
  using namespace fit;
  obs::BenchReport report("bench_ablation_fault_recovery");

  const bool smoke = std::getenv("FOURINDEX_BENCH_SMOKE") != nullptr;
  const std::size_t n = smoke ? 18 : 48;

  auto p = core::make_problem(chem::custom_molecule("faulty", n, 4, 23));
  core::ParOptions o;
  o.tile = smoke ? 6 : 8;
  o.tile_l = 4;
  o.gather_result = false;

  runtime::MachineConfig m;
  m.name = "fault-probe";
  m.n_nodes = 8;
  m.ranks_per_node = 2;
  m.mem_per_node_bytes = 2e9;
  m.flops_per_rank = 4e9;
  m.integrals_per_sec = 2e8;
  m.net_bandwidth_bps = 1e9;
  m.net_latency_s = 2e-6;
  m.local_bandwidth_bps = 2e10;
  m.disk_bandwidth_bps = 5e9;  // the checkpoint/restore target
  m.disk_latency_s = 1e-3;

  runtime::Cluster clean(m, runtime::ExecutionMode::Simulate);
  const auto base = core::unfused_par_transform(p, clean, o);

  runtime::Cluster faulty(m, runtime::ExecutionMode::Simulate);
  faulty.enable_recovery();
  runtime::FaultInjector inj(1);
  runtime::FaultEvent kill;
  kill.kind = runtime::FaultKind::KillRank;
  kill.phase = 2;
  kill.rank = 3;
  inj.schedule(kill);
  runtime::FaultEvent slow;
  slow.kind = runtime::FaultKind::NetDegrade;
  slow.phase = 3;
  slow.factor = 0.5;
  inj.schedule(slow);
  runtime::FaultEvent flaky;
  flaky.kind = runtime::FaultKind::TransientOp;
  flaky.phase = 1;
  flaky.rank = 0;
  flaky.count = 1;
  inj.schedule(flaky);
  faulty.install_faults(inj);
  const auto hit = core::unfused_par_transform(p, faulty, o);

  const auto& reg = faulty.metrics();
  const double overhead = hit.stats.sim_time / base.stats.sim_time;

  TextTable t({"run", "sim time (s)", "disk bytes", "checkpoint bytes",
               "restored bytes", "retries"});
  t.add_row({"clean", fmt_fixed(base.stats.sim_time, 4),
             human_bytes(clean.totals().disk_bytes), "-", "-", "0"});
  t.add_row({"faulty", fmt_fixed(hit.stats.sim_time, 4),
             human_bytes(faulty.totals().disk_bytes),
             human_bytes(reg.sum("checkpoint.bytes")),
             human_bytes(reg.sum("checkpoint.restored_bytes")),
             fmt_fixed(reg.sum("retry.attempts"), 0)});
  t.print("fault recovery overhead (unfused, n = " + std::to_string(n) +
          ", " + std::to_string(m.n_ranks()) + " ranks)");
  report.add_table("fault recovery overhead", t);

  report.add_scalar("clean.sim_time_s", base.stats.sim_time);
  report.add_scalar("faulty.sim_time_s", hit.stats.sim_time);
  report.add_scalar("overhead_ratio", overhead);
  report.add_scalar("checkpoint.bytes", reg.sum("checkpoint.bytes"));
  report.add_scalar("checkpoint.restored_bytes",
                    reg.sum("checkpoint.restored_bytes"));
  report.add_metrics("faulty", reg);
  report.add_note("one rank killed at the c2 boundary, one transient op "
                  "failure in c1, network halved from c3 on; "
                  "phase-boundary checkpoints to the simulated PFS");

  std::cout << "surviving the storm cost " << fmt_fixed(overhead, 3)
            << "x the clean simulated time (kills: "
            << fmt_fixed(reg.sum("fault.kills"), 0)
            << ", retries: " << fmt_fixed(reg.sum("retry.attempts"), 0)
            << ", checkpoint traffic: "
            << human_bytes(reg.sum("checkpoint.bytes") +
                           reg.sum("checkpoint.restored_bytes"))
            << ")\n";
  report.write();
  return 0;
}
