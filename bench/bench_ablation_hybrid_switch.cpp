// Section 7.4 ablation: the fuse/unfuse hybrid's decision boundary.
//
// Sweep the cluster's aggregate memory across the unfused footprint
// and record which schedule the hybrid picks and the resulting time.
// Expected shape: below the boundary only the fused schedule runs
// (slower in flops, but it runs); above it the hybrid switches to
// unfused and the time drops by the ~1.5x symmetry-breaking factor
// (minus communication differences).
#include <iostream>

#include "chem/molecule.hpp"
#include "core/problem.hpp"
#include "core/schedules_par.hpp"
#include "obs/bench_json.hpp"
#include "runtime/cluster.hpp"
#include "runtime/machine.hpp"
#include "util/format.hpp"

int main() {
  using namespace fit;
  obs::BenchReport report("bench_ablation_hybrid_switch");
  auto p = core::make_problem(chem::custom_molecule("hyb", 64, 8, 3));
  const auto sz = p.sizes();
  const double footprint = 8.0 * double(sz.unfused_peak() + sz.c);

  TextTable t({"aggregate / footprint", "aggregate mem", "chosen",
               "sim time (s)", "peak global", "remote bytes"});
  for (double f : {0.3, 0.6, 0.9, 1.0, 1.2, 1.6, 3.0}) {
    runtime::MachineConfig m;
    m.name = "probe";
    m.n_nodes = 8;
    m.ranks_per_node = 4;
    m.mem_per_node_bytes = f * footprint / 8.0;
    m.flops_per_rank = 4e9;
    m.integrals_per_sec = 2e8;
    m.net_bandwidth_bps = 1e9;
    m.net_latency_s = 2e-6;
    m.local_bandwidth_bps = 2e10;

    core::ParOptions o;
    o.tile = 8;
    o.tile_l = 4;
    o.gather_result = false;
    runtime::Cluster cl(m, runtime::ExecutionMode::Simulate);
    const std::string key = "f" + fmt_fixed(f, 2);
    try {
      auto r = core::hybrid_transform(p, cl, o);
      t.add_row({fmt_fixed(f, 2),
                 human_bytes(m.aggregate_memory_bytes()),
                 r.stats.schedule, fmt_fixed(r.stats.sim_time, 4),
                 human_bytes(r.stats.peak_global_bytes),
                 human_bytes(r.stats.remote_bytes)});
      report.add_scalar(key + ".sim_time_s", r.stats.sim_time);
      report.add_note(key + " chose " + r.stats.schedule);
    } catch (const fit::OutOfMemoryError&) {
      t.add_row({fmt_fixed(f, 2),
                 human_bytes(m.aggregate_memory_bytes()), "Failed", "-",
                 "-", "-"});
      report.add_note(key + " Failed (out of memory)");
    }
  }
  t.print("Sec 7.4 — hybrid decision boundary (n = 64, s = 8, "
          "unfused footprint " + human_bytes(footprint) + ")");
  report.add_table("Sec 7.4 — hybrid decision boundary", t);
  report.add_scalar("unfused_footprint_bytes", footprint);
  const std::string written = report.write();
  if (!written.empty()) std::cout << "bench JSON: " << written << "\n";
  return 0;
}
