// Load-balance ablation: what does NXTVAL-style dynamic scheduling buy?
//
// Sec. 7.3's fused-inner schedule alpha-parallelizes the k-loop work
// across chunks of the triangular alpha >= beta range. Contiguous
// chunks carry systematically different weights (chunk weight ~ sum of
// ta+1), and with n_ac == nranks the static owner map (tk*n_ac + ac)
// mod nranks pins every chunk index to one fixed rank — the worst-case
// persistent imbalance. This bench runs exactly that configuration
// under the three ParOptions::Balance strategies:
//
//   static    the plan-time owner map, zero scheduling traffic — the
//             ablation baseline, bit-identical to the historical loops;
//   counter   a modeled shared fetch-and-add task counter (NWChem's
//             NXTVAL): ranks self-schedule and pay the round trips and
//             the contention queue at the counter's home rank;
//   steal     static seeding plus work stealing from the heaviest
//             surviving rank when a queue drains (two control round
//             trips per steal).
//
// Reported per Fig. 2 system: simulated wall-clock, worst-rank
// imbalance (max over phases of makespan * ranks / total rank time),
// steals, counter waits. CI gates on the JSON: on at least one system
// both dynamic strategies beat static on imbalance AND simulated time,
// and static reports zero scheduler activity.
//
// FOURINDEX_BENCH_SMOKE=1 shrinks the molecule and the cluster so the
// bench finishes in seconds.
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "chem/molecule.hpp"
#include "core/planner.hpp"
#include "core/problem.hpp"
#include "core/schedules_par.hpp"
#include "ga/task_counter.hpp"
#include "obs/bench_json.hpp"
#include "runtime/cluster.hpp"
#include "runtime/machine.hpp"
#include "serve/cost_oracle.hpp"
#include "serve/cost_table.hpp"
#include "util/format.hpp"

int main(int argc, char** argv) {
  using namespace fit;
  const std::string costs_path = serve::record_costs_flag(&argc, argv);
  obs::BenchReport report("bench_ablation_load_balance");

  const bool smoke = std::getenv("FOURINDEX_BENCH_SMOKE") != nullptr;

  auto p = smoke
               ? core::make_problem(chem::custom_molecule("lb", 24, 2, 410))
               : core::make_problem(chem::paper_molecule("Hyperpolar"));
  std::vector<runtime::MachineConfig> systems;
  if (smoke) {
    systems.push_back(runtime::system_a(1));  // 8 ranks
  } else {
    systems.push_back(runtime::system_a(4));  // 32 ranks
    systems.push_back(runtime::system_c(8));  // 32 ranks
  }

  report.add_note(std::string(smoke ? "smoke" : "hyperpolar") +
                  ", contiguous alpha chunks pinned one-per-rank");
  std::cout << "Load-balance ablation: "
            << (smoke ? "smoke problem (24 orbitals)"
                      : "Hyperpolar (46 scaled orbitals)")
            << ", fused-inner schedule, contiguous alpha chunking\n\n";

  const ga::Balance modes[] = {ga::Balance::Static, ga::Balance::Counter,
                               ga::Balance::Steal};

  TextTable t({"system", "balance", "sim (s)", "speedup", "worst imb",
               "steals", "counter wait (s)", "claims"});
  for (const auto& m : systems) {
    core::ParOptions o;
    o.tile = 4;
    o.tile_l = smoke ? 12 : 8;
    // One contiguous chunk per rank: the static map degenerates to
    // "rank r always executes chunk r", the skew the dynamic
    // strategies exist to absorb.
    o.alpha_parallel = m.n_ranks();
    o.alpha_chunking = core::ParOptions::AlphaChunking::Contiguous;
    o.gather_result = false;

    double static_time = 0;
    for (ga::Balance b : modes) {
      o.balance = b;
      runtime::Cluster cl(m, runtime::ExecutionMode::Simulate);
      const auto r = core::fused_inner_par_transform(p, cl, o);
      if (b == ga::Balance::Static) static_time = r.stats.sim_time;
      const double speedup =
          r.stats.sim_time > 0 ? static_time / r.stats.sim_time : 1.0;

      t.add_row({m.name, ga::to_string(b), fmt_fixed(r.stats.sim_time, 3),
                 fmt_fixed(speedup, 3) + "x",
                 fmt_fixed(r.stats.worst_imbalance, 3),
                 fmt_fixed(r.stats.sched_steals, 0),
                 fmt_fixed(r.stats.sched_counter_wait_s, 4),
                 fmt_fixed(r.stats.sched_claims, 0)});

      // One Chrome trace per (system, balance) when tracing is on: the
      // per-task claim spans make the rebalancing visible per rank.
      if (const char* trace_dir = std::getenv("FOURINDEX_TRACE_DIR"))
        cl.write_chrome_trace(std::string(trace_dir) + "/load_balance_" +
                              m.name + "_" + ga::to_string(b) +
                              ".trace.json");

      const std::string k = m.name + std::string(".") + ga::to_string(b);
      report.add_scalar(k + ".sim_time_s", r.stats.sim_time);
      report.add_scalar(k + ".worst_imbalance", r.stats.worst_imbalance);
      report.add_scalar(k + ".speedup_vs_static", speedup);
      report.add_scalar(k + ".steals", r.stats.sched_steals);
      report.add_scalar(k + ".counter_wait_s",
                        r.stats.sched_counter_wait_s);
      report.add_scalar(k + ".claims", r.stats.sched_claims);
      if (b == ga::Balance::Steal) report.add_metrics(k, cl.metrics());
    }
  }
  t.print("Static map vs NXTVAL counter vs work stealing");
  std::cout << std::endl;

  report.add_table("Static map vs NXTVAL counter vs work stealing", t);

  // ---- counter-mitigation matrix at 32 ranks ------------------------
  //
  // The flat counter loses at scale: at 32 ranks its serialized
  // fetch-and-adds cost more than the imbalance they cure. This matrix
  // pits the flat counter against its three contention mitigations
  // (batched dequeue, per-node counters, counter tree) and the
  // planner-chosen Auto mode on the same skewed phase. Runs in both
  // smoke and full mode — the CI gate keys on these scalars — always
  // on a 32-rank SystemA so the contention regime is the scaled one.
  {
    const runtime::MachineConfig m32 = runtime::system_a(4);  // 32 ranks
    core::ParOptions o;
    o.tile = 4;
    o.tile_l = smoke ? 12 : 8;
    o.alpha_parallel = m32.n_ranks();
    o.alpha_chunking = core::ParOptions::AlphaChunking::Contiguous;
    o.gather_result = false;

    const ga::Balance matrix[] = {ga::Balance::Static, ga::Balance::Counter,
                                  ga::Balance::Batched, ga::Balance::PerNode,
                                  ga::Balance::Tree, ga::Balance::Auto};
    TextTable mt({"balance", "sim (s)", "speedup", "worst imb", "fetches",
                  "occupancy", "tree hops", "counter wait (s)"});
    double static_time = 0, best_fixed = 0, best_mitigated = 0;
    double auto_time = 0;
    for (ga::Balance b : matrix) {
      o.balance = b;
      runtime::Cluster cl(m32, runtime::ExecutionMode::Simulate);
      const auto r = core::fused_inner_par_transform(p, cl, o);
      if (b == ga::Balance::Static) static_time = r.stats.sim_time;
      if (b == ga::Balance::Auto)
        auto_time = r.stats.sim_time;
      else
        best_fixed = best_fixed == 0
                         ? r.stats.sim_time
                         : std::min(best_fixed, r.stats.sim_time);
      const double speedup =
          r.stats.sim_time > 0 ? static_time / r.stats.sim_time : 1.0;
      if (b == ga::Balance::Batched || b == ga::Balance::PerNode ||
          b == ga::Balance::Tree)
        best_mitigated = std::max(best_mitigated, speedup);
      const double occupancy =
          r.stats.sched_counter_fetches > 0
              ? r.stats.sched_claims / r.stats.sched_counter_fetches
              : 0.0;

      mt.add_row({ga::to_string(b), fmt_fixed(r.stats.sim_time, 3),
                  fmt_fixed(speedup, 3) + "x",
                  fmt_fixed(r.stats.worst_imbalance, 3),
                  fmt_fixed(r.stats.sched_counter_fetches, 0),
                  fmt_fixed(occupancy, 2),
                  fmt_fixed(r.stats.sched_tree_hops, 0),
                  fmt_fixed(r.stats.sched_counter_wait_s, 4)});

      const std::string k = std::string("mitigation.") + ga::to_string(b);
      report.add_scalar(k + ".sim_time_s", r.stats.sim_time);
      report.add_scalar(k + ".speedup_vs_static", speedup);
      report.add_scalar(k + ".worst_imbalance", r.stats.worst_imbalance);
      report.add_scalar(k + ".claims", r.stats.sched_claims);
      report.add_scalar(k + ".fetches", r.stats.sched_counter_fetches);
      report.add_scalar(k + ".batch_occupancy", occupancy);
      report.add_scalar(k + ".tree_hops", r.stats.sched_tree_hops);
      report.add_scalar(k + ".counter_wait_s",
                        r.stats.sched_counter_wait_s);
    }
    // Headline gates: the best mitigated counter mode must at least
    // match static on the skewed phase (>= 1.0x), and Auto must not
    // lose to the best fixed mode beyond the DES-vs-replay tolerance.
    report.add_scalar("mitigation.best_mitigated_speedup", best_mitigated);
    report.add_scalar("mitigation.auto_vs_best_fixed",
                      best_fixed > 0 ? auto_time / best_fixed : 1.0);
    mt.print("Counter-mitigation matrix (SystemA x4, 32 ranks)");
    std::cout << std::endl;
    report.add_table("Counter-mitigation matrix (SystemA x4, 32 ranks)",
                     mt);

    // ---- measured-rate plan quality -------------------------------
    //
    // Does pricing the balance DES at the cost oracle's measured rates
    // pick modes that are any worse when replayed on the nominal
    // machine? Run Auto on the oracle-rated machine while recording
    // its per-phase picks, replay those picks on the nominal machine
    // through the BalanceCache memo, and compare against the nominal
    // Auto time from the matrix above. With no cost table configured
    // the rates collapse to nominal and the ratio is exactly 1.0; with
    // a real table the gate (serve.oracle_vs_auto <= 1.05) fails if
    // measured-rate planning degrades the schedule.
    {
      const serve::CostOracle oracle = serve::CostOracle::from_env();
      const core::PlanRates rates =
          oracle.rates(m32, static_cast<double>(p.n()), o.tile);
      const runtime::MachineConfig m_measured =
          core::apply_rates(m32, rates);

      core::BalanceCache oracle_picks;
      o.balance = ga::Balance::Auto;
      o.balance_cache = &oracle_picks;
      {
        runtime::Cluster cl(m_measured, runtime::ExecutionMode::Simulate);
        core::fused_inner_par_transform(p, cl, o);  // record the picks
      }
      runtime::Cluster cl(m32, runtime::ExecutionMode::Simulate);
      const auto replay = core::fused_inner_par_transform(p, cl, o);
      o.balance_cache = nullptr;

      const double ratio =
          auto_time > 0 ? replay.stats.sim_time / auto_time : 1.0;
      report.add_scalar("serve.oracle_vs_auto", ratio);
      report.add_scalar("serve.oracle_measured",
                        rates.source == "measured" ? 1.0 : 0.0);
      report.add_scalar("serve.oracle_replayed_phases",
                        static_cast<double>(replay.stats.n_phases));
      report.add_note("oracle-vs-auto leg priced the DES at " +
                      rates.source + " rates");
      std::cout << "oracle-vs-auto: " << rates.source
                << "-rate picks replayed at nominal rates run "
                << fmt_fixed(ratio, 3) << "x the nominal Auto time\n\n";
    }
  }

  // --record-costs: the effective per-rank integral-evaluation rate of
  // the simulated runs (kind "integrals", shape = orbital extent) —
  // crude, but a measured effective rate where nothing else samples
  // this axis.
  if (!costs_path.empty()) {
    core::ParOptions o;
    o.tile = 4;
    o.tile_l = smoke ? 12 : 8;
    o.gather_result = false;
    const runtime::MachineConfig m32 = runtime::system_a(4);
    runtime::Cluster cl(m32, runtime::ExecutionMode::Simulate);
    const auto r = core::fused_inner_par_transform(p, cl, o);
    if (r.stats.sim_time > 0 && r.stats.integral_evals > 0) {
      serve::CostTable costs;
      costs.add({"integrals", static_cast<double>(p.n()),
                 r.stats.integral_evals /
                     (r.stats.sim_time * static_cast<double>(m32.n_ranks())),
                 "bench_ablation_load_balance"});
      serve::record_costs(costs_path, costs);
    }
  }
  const std::string written = report.write();
  if (!written.empty()) std::cout << "bench JSON: " << written << "\n";
  return 0;
}
