// Section 7.4 ablation: the space-time trade-off of symmetry breaking.
//
// Fusing the l loop breaks the (k,l) permutation symmetry, doubling
// the arithmetic of the first two contractions: the fused schedule
// performs ~1.5x the multiply-adds of the unfused one, and ~2x the
// integral evaluations. This bench measures both, per schedule, across
// problem sizes — real executions of the sequential schedules.
#include <iostream>

#include "chem/molecule.hpp"
#include "core/problem.hpp"
#include "core/schedules_seq.hpp"
#include "obs/bench_json.hpp"
#include "obs/metrics.hpp"
#include "util/format.hpp"

int main() {
  using namespace fit;
  obs::BenchReport report("bench_ablation_symmetry_cost");
  // Per-schedule counters from the sequential executions, published
  // into one registry and attached to the JSON document.
  obs::MetricsRegistry registry(1);
  TextTable t({"n", "unfused flops", "fused flops", "flop ratio",
               "unfused evals", "fused evals", "eval ratio",
               "unfused peak", "fused peak"});
  for (std::size_t n : {16u, 24u, 32u, 48u}) {
    auto p1 = core::make_problem(chem::custom_molecule("sym", n, 1, 7));
    core::SeqStats su;
    (void)core::unfused_transform(p1, &su);
    auto p2 = core::make_problem(chem::custom_molecule("sym", n, 1, 7));
    core::SeqStats sf;
    (void)core::fused1234_transform(p2, &sf);
    su.publish(registry, "seq.unfused");
    sf.publish(registry, "seq.fused1234");
    report.add_scalar("n" + std::to_string(n) + ".flop_ratio",
                      sf.flops / su.flops);
    report.add_scalar("n" + std::to_string(n) + ".eval_ratio",
                      double(sf.integral_evals) /
                          double(su.integral_evals));
    t.add_row({std::to_string(n), human_count(su.flops),
               human_count(sf.flops), fmt_fixed(sf.flops / su.flops, 3),
               human_count(double(su.integral_evals)),
               human_count(double(sf.integral_evals)),
               fmt_fixed(double(sf.integral_evals) /
                             double(su.integral_evals), 3),
               human_count(double(su.peak_words)),
               human_count(double(sf.peak_words))});
  }
  t.print("Sec 7.4 — symmetry-breaking cost of full fusion (measured)");
  std::cout << "(flop ratio -> 1.5, integral ratio -> 2.0 as n grows; "
               "peak memory drops from ~3n^4/4 to |C| + O(n^3))\n";
  report.add_table("Sec 7.4 — symmetry-breaking cost of full fusion", t);
  report.add_metrics("seq", registry);
  const std::string written = report.write();
  if (!written.empty()) std::cout << "bench JSON: " << written << "\n";
  return 0;
}
