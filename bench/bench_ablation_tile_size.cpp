// Tiling-choice ablation: the paper's Sec. 1/4 point that every
// fusion configuration still carries "a very large search space of
// tile sizes". Sweep the orbital tile width of the fused-inner
// schedule and report the trade-offs the width controls:
//
//   small tiles  -> more messages (latency-bound), finer load balance,
//                   less diagonal-tile padding;
//   large tiles  -> fewer/bigger transfers (bandwidth-bound), coarser
//                   work units, more storage padding on diagonal and
//                   irrep-boundary tiles.
#include <iostream>

#include "chem/molecule.hpp"
#include "core/problem.hpp"
#include "core/schedules_par.hpp"
#include "obs/bench_json.hpp"
#include "runtime/cluster.hpp"
#include "runtime/machine.hpp"
#include "tensor/packed.hpp"
#include "util/format.hpp"

int main() {
  using namespace fit;
  obs::BenchReport report("bench_ablation_tile_size");
  auto p = core::make_problem(chem::custom_molecule("tiles", 64, 8, 13));
  const auto sz = p.sizes();

  runtime::MachineConfig m;
  m.name = "probe";
  m.n_nodes = 8;
  m.ranks_per_node = 4;
  m.mem_per_node_bytes = 2e9;

  TextTable t({"tile", "remote bytes", "messages", "peak global",
               "C padding", "imbalance", "sim time (s)"});
  for (std::size_t tile : {2u, 4u, 8u, 16u, 32u}) {
    core::ParOptions o;
    o.tile = tile;
    o.tile_l = 4;
    o.gather_result = false;
    runtime::Cluster cl(m, runtime::ExecutionMode::Simulate);
    auto r = core::fused_inner_par_transform(p, cl, o);
    // Storage padding of the distributed C relative to the exact
    // packed size (diagonal tiles store the full square).
    const double exact_c = 8.0 * double(sz.c);
    const double pad = r.stats.peak_global_bytes / exact_c;
    t.add_row({std::to_string(tile), human_bytes(r.stats.remote_bytes),
               human_count(cl.totals().remote_messages),
               human_bytes(r.stats.peak_global_bytes),
               fmt_fixed(pad, 2) + "x",
               fmt_fixed(r.stats.worst_imbalance, 2),
               fmt_fixed(r.stats.sim_time, 4)});
    const std::string key = "tile" + std::to_string(tile);
    report.add_scalar(key + ".sim_time_s", r.stats.sim_time);
    report.add_scalar(key + ".remote_messages",
                      double(cl.totals().remote_messages));
    report.add_scalar(key + ".c_padding", pad);
  }
  t.print("tile-width sweep — fused-inner schedule (n = 64, s = 8, "
          "32 ranks)");
  report.add_table("tile-width sweep — fused-inner schedule", t);
  const std::string written = report.write();
  if (!written.empty()) std::cout << "bench JSON: " << written << "\n";
  std::cout << "(|C| exact packed = " << human_bytes(8.0 * double(sz.c))
            << "; the sweet spot balances message count against padding "
               "and load balance — the search space the paper's "
               "lower-bounds analysis lets one avoid exploring blindly.\n"
               "Widths above the irrep block size n/s = 8 coincide: "
               "irrep-aligned tilings clamp there to keep the spatial "
               "filter exact. Remote bytes also reflect the auto-chosen "
               "alpha parallelism, which rises as tiles coarsen.)\n";
  return 0;
}
