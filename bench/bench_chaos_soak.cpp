// Chaos soak: a full Real-mode transform under layered, seeded fault
// storms — node kills, checkpoint corruption, checkpoint-I/O faults,
// disk degradation, transient one-sided failures — each seed asserting
// the recovered result is bit-identical to a clean run.
//
// Per seed the storm is a pure function of FOURINDEX_CHAOS_SEED (or
// the built-in seed list), so a CI failure replays exactly. Two
// deterministic guarantees are checked, not just "it finished":
//   - result_checksum (and max_abs_diff == 0) against the clean run:
//     recovery restored verified data, it did not zero-fill;
//   - recovery.fallback_epochs > 0 on every corrupting seed (the
//     newest generation was rotted, so restores provably came from an
//     older verified epoch) and == 0 on the no-corruption control.
// The jq gates in the chaos-soak CI job key on the soak.* scalars.
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "chem/molecule.hpp"
#include "core/problem.hpp"
#include "core/schedules_par.hpp"
#include "obs/bench_json.hpp"
#include "runtime/cluster.hpp"
#include "runtime/faults.hpp"
#include "runtime/machine.hpp"
#include "tensor/packed.hpp"
#include "util/format.hpp"
#include "util/hash.hpp"
#include "util/parse.hpp"
#include "util/rng.hpp"

namespace {

using namespace fit;

// Same 32-bit FNV-1a fold convention as bench_gemm: exactly
// representable as a JSON number, equal folds = bit-identical tensors.
double result_checksum(const tensor::PackedC& c) {
  std::uint64_t h = util::kFnvOffsetBasis;
  const std::size_t n = c.n();
  for (std::size_t a = 0; a < n; ++a)
    for (std::size_t b = 0; b < n; ++b)
      for (std::size_t cc = 0; cc < n; ++cc)
        for (std::size_t d = 0; d < n; ++d) {
          const double v = c.get(a, b, cc, d);
          h = util::fnv1a_bytes(&v, sizeof v, h);
        }
  return static_cast<double>((h >> 32) ^ (h & 0xffffffffull));
}

struct Storm {
  runtime::FaultInjector inj;
  std::size_t kill_phase = 0;
  std::size_t domain = 0;
  bool corrupt = true;
};

// The fused schedule runs five phases per l-slice (fill A, c1..c4) and
// keeps the C accumulator alive across all slices, so from the second
// slice on the newest checkpoint generation holds *carried* C copies —
// data at rest, the kind bit rot strikes and walk-back must cover.
// (The unfused schedule can never need walk-back: every intermediate
// is freshly rewritten in the generation preceding its only use.)
constexpr std::size_t kPhasesPerSlice = 5;

// Deterministic storm for one seed: the node kill (and the newest-
// generation rot) land at a mid-slice barrier of slice >= 1, where the
// dead domain's C tiles can only be rebuilt from an older verified
// epoch.
Storm make_storm(std::uint64_t seed, std::size_t n_slices,
                 std::size_t n_domains, std::size_t n_ranks, bool corrupt) {
  Storm s;
  s.inj = runtime::FaultInjector(seed);
  s.corrupt = corrupt;
  SplitMix64 g(seed * 0x9E3779B97F4A7C15ull + 0xC4A05);
  const std::size_t slice = 1 + g.next_below(n_slices - 1);
  // Boundaries of c2/c3/c4: the generation published one phase earlier
  // (end of c1/c2/c3) carries C unchanged since the previous slice.
  s.kill_phase = kPhasesPerSlice * slice + 2 + g.next_below(3);
  s.domain = g.next_below(n_domains);

  runtime::FaultEvent kill;
  kill.kind = runtime::FaultKind::KillNode;
  kill.phase = s.kill_phase;
  kill.rank = s.domain;  // domain index for KillNode
  s.inj.schedule(kill);

  if (corrupt) {
    // Rot every at-rest copy in the newest generation at the same
    // barrier the node dies: the restores that rebuild the dead
    // domain MUST walk back to the previous verified epoch.
    runtime::FaultEvent rot;
    rot.kind = runtime::FaultKind::CkptCorrupt;
    rot.phase = s.kill_phase;
    rot.count = SIZE_MAX;
    rot.depth = 1;
    s.inj.schedule(rot);

    // A couple of checkpoint-I/O faults shortly before the kill; the
    // bounded retry+backoff path must absorb them.
    runtime::FaultEvent io;
    io.kind = runtime::FaultKind::CkptIo;
    io.phase = s.kill_phase - 1;
    io.count = 1 + g.next_below(2);
    s.inj.schedule(io);
  }

  runtime::FaultEvent slow;
  slow.kind = runtime::FaultKind::DiskDegrade;
  slow.phase = 1 + g.next_below(2);
  slow.factor = 0.6;
  s.inj.schedule(slow);

  runtime::FaultEvent flaky;
  flaky.kind = runtime::FaultKind::TransientOp;
  flaky.phase = 1 + g.next_below(2);
  flaky.rank = g.next_below(n_ranks);
  flaky.count = 1;
  s.inj.schedule(flaky);
  return s;
}

}  // namespace

int main() {
  using namespace fit;
  obs::BenchReport report("bench_chaos_soak");

  const bool smoke = std::getenv("FOURINDEX_BENCH_SMOKE") != nullptr;
  const std::size_t n = smoke ? 10 : 12;

  auto p = core::make_problem(chem::custom_molecule("chaotic", n, 2, 51));
  core::ParOptions o;
  o.tile = 4;
  o.tile_l = 4;
  o.gather_result = true;

  runtime::MachineConfig m;
  m.name = "chaos-soak";
  m.n_nodes = 4;
  m.ranks_per_node = 2;
  m.mem_per_node_bytes = 2e9;
  m.flops_per_rank = 1e9;
  m.integrals_per_sec = 1e8;
  m.net_bandwidth_bps = 1e9;
  m.net_latency_s = 2e-6;
  m.local_bandwidth_bps = 1e10;
  m.disk_bandwidth_bps = 1e9;  // checkpoint/restore target
  m.disk_latency_s = 1e-3;

  // Reference: clean Real-mode run. Its checksum is the contract every
  // storm survivor must reproduce bit-for-bit.
  runtime::Cluster clean(m, runtime::ExecutionMode::Real);
  const auto base = core::fused_par_transform(p, clean, o);
  if (!base.c) {
    std::cerr << "chaos soak: clean run produced no gathered result\n";
    return 1;
  }
  const double clean_sum = result_checksum(*base.c);

  // Second reference: fault-free but checkpointing. Storm overheads
  // are measured against this run, so the ratio isolates what the
  // *recovery* cost (restores, retries, walk-backs, re-execution) —
  // not the steady-state checkpoint traffic every run pays.
  runtime::Cluster ckpt_cl(m, runtime::ExecutionMode::Real);
  ckpt_cl.enable_recovery();
  const auto ckpt_ref = core::fused_par_transform(p, ckpt_cl, o);
  if (!ckpt_ref.c || ckpt_ref.c->max_abs_diff(*base.c) != 0.0) {
    std::cerr << "chaos soak: checkpointing alone changed the result\n";
    return 1;
  }
  const double delta_dirty =
      ckpt_cl.metrics().sum("checkpoint.dirty_fraction");

  // Full-copy comparator: the same fault-free checkpointing run with
  // delta checkpointing off (every live tile rewritten each epoch).
  // The storm legs below run under both policies; the CI gate asserts
  // the delta overhead ratio stays below this baseline's.
  runtime::CheckpointConfig fullcopy_cfg;
  fullcopy_cfg.delta = 0;
  runtime::Cluster fc_cl(m, runtime::ExecutionMode::Real);
  fc_cl.enable_recovery(fullcopy_cfg);
  const auto fc_ref = core::fused_par_transform(p, fc_cl, o);
  if (!fc_ref.c || fc_ref.c->max_abs_diff(*base.c) != 0.0) {
    std::cerr << "chaos soak: full-copy checkpointing changed the result\n";
    return 1;
  }

  const std::size_t n_slices = (n + o.tile_l - 1) / o.tile_l;
  if (n_slices < 2 || base.stats.n_phases != kPhasesPerSlice * n_slices) {
    std::cerr << "chaos soak: unexpected phase structure ("
              << base.stats.n_phases << " phases, " << n_slices
              << " slices)\n";
    return 1;
  }

  // Seed list: FOURINDEX_CHAOS_SEED pins one seed (the CI matrix loops
  // it over 1..10); otherwise soak a built-in range.
  std::vector<std::uint64_t> seeds;
  if (const char* env = std::getenv("FOURINDEX_CHAOS_SEED")) {
    const auto v = util::parse_int(env);
    if (!v || *v < 1) {
      std::cerr << "chaos soak: bad FOURINDEX_CHAOS_SEED '" << env << "'\n";
      return 1;
    }
    seeds.push_back(static_cast<std::uint64_t>(*v));
  } else {
    for (std::uint64_t s = 1; s <= (smoke ? 3u : 10u); ++s)
      seeds.push_back(s);
  }

  std::size_t mismatches = 0, no_fallback = 0;
  double max_overhead = 0.0, fallback_total = 0.0, verify_fail_total = 0.0;
  double io_retry_total = 0.0, zero_fill_total = 0.0, domain_kill_total = 0.0;
  double fc_max_overhead = 0.0;

  TextTable t({"seed", "kill phase", "domain", "overhead", "fullcopy ovh",
               "fallback", "verify fails", "io retries", "max |diff|"});

  for (const std::uint64_t seed : seeds) {
    runtime::Cluster storm_cl(m, runtime::ExecutionMode::Real);
    storm_cl.enable_recovery();
    Storm storm = make_storm(seed, n_slices, storm_cl.n_domains(),
                             m.n_ranks(), /*corrupt=*/true);
    storm_cl.install_faults(storm.inj);
    const auto hit = core::fused_par_transform(p, storm_cl, o);

    const double diff = hit.c ? hit.c->max_abs_diff(*base.c) : -1.0;
    const bool identical = hit.c && diff == 0.0;
    if (!identical) ++mismatches;
    if (hit.stats.recovery_fallback_epochs <= 0.0) ++no_fallback;
    const double overhead = hit.stats.sim_time / ckpt_ref.stats.sim_time;
    max_overhead = std::max(max_overhead, overhead);
    fallback_total += hit.stats.recovery_fallback_epochs;
    verify_fail_total += hit.stats.ckpt_verify_failures;
    domain_kill_total += hit.stats.fault_domain_kills;
    const auto& reg = storm_cl.metrics();
    io_retry_total += reg.sum("checkpoint.io_retries");
    zero_fill_total += reg.sum("checkpoint.zero_fills");

    // The identical storm under full-copy checkpointing: bigger epoch
    // writes hit the degraded disk every slice, so its overhead ratio
    // bounds the delta policy's from above — the saving the delta
    // gate measures.
    runtime::Cluster fc_storm_cl(m, runtime::ExecutionMode::Real);
    fc_storm_cl.enable_recovery(fullcopy_cfg);
    Storm fc_storm = make_storm(seed, n_slices, fc_storm_cl.n_domains(),
                                m.n_ranks(), /*corrupt=*/true);
    fc_storm_cl.install_faults(fc_storm.inj);
    const auto fc_hit = core::fused_par_transform(p, fc_storm_cl, o);
    if (!fc_hit.c || fc_hit.c->max_abs_diff(*base.c) != 0.0) ++mismatches;
    const double fc_overhead =
        fc_hit.stats.sim_time / fc_ref.stats.sim_time;
    fc_max_overhead = std::max(fc_max_overhead, fc_overhead);

    t.add_row({std::to_string(seed), std::to_string(storm.kill_phase),
               std::to_string(storm.domain), fmt_fixed(overhead, 3),
               fmt_fixed(fc_overhead, 3),
               fmt_fixed(hit.stats.recovery_fallback_epochs, 0),
               fmt_fixed(hit.stats.ckpt_verify_failures, 0),
               fmt_fixed(reg.sum("checkpoint.io_retries"), 0),
               fmt_fixed(diff, 1)});
    if (seed == seeds.back()) report.add_metrics("storm", reg);
  }

  // Control: the same kill without corruption or I/O faults. The
  // newest generation stays intact, so every restore must come from
  // it — any fallback here would mean walk-back triggers spuriously.
  runtime::Cluster ctrl_cl(m, runtime::ExecutionMode::Real);
  ctrl_cl.enable_recovery();
  Storm ctrl = make_storm(seeds.front(), n_slices, ctrl_cl.n_domains(),
                          m.n_ranks(), /*corrupt=*/false);
  ctrl_cl.install_faults(ctrl.inj);
  const auto calm = core::fused_par_transform(p, ctrl_cl, o);
  const double ctrl_diff = calm.c ? calm.c->max_abs_diff(*base.c) : -1.0;
  if (!(calm.c && ctrl_diff == 0.0)) ++mismatches;
  const double ctrl_fallback = calm.stats.recovery_fallback_epochs;

  t.print("chaos soak (fused, Real mode, n = " + std::to_string(n) +
          ", " + std::to_string(m.n_ranks()) + " ranks, " +
          std::to_string(seeds.size()) + " seeds)");
  report.add_table("chaos soak", t);

  report.add_scalar("soak.seeds", double(seeds.size()));
  report.add_scalar("soak.mismatches", double(mismatches));
  report.add_scalar("soak.corrupt_runs_without_fallback",
                    double(no_fallback));
  report.add_scalar("soak.max_overhead_ratio", max_overhead);
  report.add_scalar("soak.fullcopy_max_overhead_ratio", fc_max_overhead);
  report.add_scalar("clean.sim_time_s", base.stats.sim_time);
  report.add_scalar("ckpt.sim_time_s", ckpt_ref.stats.sim_time);
  report.add_scalar("ckpt.fullcopy_sim_time_s", fc_ref.stats.sim_time);
  report.add_scalar("checkpoint.dirty_fraction", delta_dirty);
  report.add_scalar("soak.result_checksum", clean_sum);
  report.add_scalar("recovery.fallback_epochs", fallback_total);
  report.add_scalar("checkpoint.verify_failures", verify_fail_total);
  report.add_scalar("checkpoint.io_retries", io_retry_total);
  report.add_scalar("checkpoint.zero_fills", zero_fill_total);
  report.add_scalar("fault.domain_kills", domain_kill_total);
  report.add_scalar("nocorrupt.fallback_epochs", ctrl_fallback);
  report.add_note("every seed kills a whole node at a random barrier and "
                  "rots the newest checkpoint generation; survivors must "
                  "reproduce the clean result bit-for-bit from older "
                  "verified epochs (fallback > 0), never by zero-filling");

  const bool bad = mismatches > 0 || no_fallback > 0 ||
                   zero_fill_total > 0.0 || ctrl_fallback > 0.0 ||
                   max_overhead > fc_max_overhead;
  std::cout << "chaos soak: " << seeds.size() << " storms, "
            << mismatches << " mismatches, "
            << fmt_fixed(fallback_total, 0) << " fallback epochs ("
            << fmt_fixed(ctrl_fallback, 0) << " on the no-corruption "
            << "control), worst overhead " << fmt_fixed(max_overhead, 3)
            << "x delta vs " << fmt_fixed(fc_max_overhead, 3)
            << "x full-copy -> " << (bad ? "FAIL" : "ok") << "\n";
  report.write();
  return bad ? 1 : 0;
}
