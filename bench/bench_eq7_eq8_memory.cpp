// Equations 7 and 8 reproduction: global memory required by the fused
// parallel implementations as a function of the fused-loop tile width
// Tl, validated against the *measured* high-water mark of the
// simulated Global Arrays runtime.
#include <iostream>

#include "bounds/transform_bounds.hpp"
#include "chem/molecule.hpp"
#include "core/problem.hpp"
#include "core/schedules_par.hpp"
#include "obs/bench_json.hpp"
#include "runtime/cluster.hpp"
#include "runtime/machine.hpp"
#include "util/format.hpp"

int main() {
  using namespace fit;
  obs::BenchReport report("bench_eq7_eq8_memory");
  const std::size_t n = 64;
  const unsigned s = 8;
  auto p = core::make_problem(chem::custom_molecule("eq78", n, s, 11));

  TextTable t({"Tl", "Eq.7 (Listing 8)", "measured peak (fused)",
               "ratio", "Eq.8 (Listing 10)", "measured peak (inner)",
               "ratio"});
  for (std::size_t tl : {1u, 2u, 4u, 8u, 16u}) {
    const double eq7 = 8.0 * bounds::eq7_global_memory(n, double(tl), s);
    const double eq8 = 8.0 * bounds::eq8_global_memory(n, double(tl), s);

    runtime::MachineConfig m;
    m.name = "probe";
    m.n_nodes = 4;
    m.ranks_per_node = 4;
    m.mem_per_node_bytes = 1e9;
    core::ParOptions o;
    o.tile = 8;
    o.tile_l = tl;
    o.gather_result = false;

    runtime::Cluster cf(m, runtime::ExecutionMode::Simulate);
    auto rf = core::fused_par_transform(p, cf, o);
    runtime::Cluster ci(m, runtime::ExecutionMode::Simulate);
    auto ri = core::fused_inner_par_transform(p, ci, o);

    t.add_row({std::to_string(tl), human_bytes(eq7),
               human_bytes(rf.stats.peak_global_bytes),
               fmt_fixed(rf.stats.peak_global_bytes / eq7, 2),
               human_bytes(eq8),
               human_bytes(ri.stats.peak_global_bytes),
               fmt_fixed(ri.stats.peak_global_bytes / eq8, 2)});
    report.add_scalar("tl" + std::to_string(tl) + ".fused_over_eq7",
                      rf.stats.peak_global_bytes / eq7);
    report.add_scalar("tl" + std::to_string(tl) + ".inner_over_eq8",
                      ri.stats.peak_global_bytes / eq8);
    if (tl == 4) report.add_metrics("tl4.inner", ci.metrics());
  }
  t.print("Eq. 7 / Eq. 8 — global memory vs fused tile width Tl (n = " +
          std::to_string(n) + ", s = " + std::to_string(s) + ")");
  report.add_table("Eq. 7 / Eq. 8 — global memory vs fused tile width",
                   t);
  const std::string written = report.write();
  if (!written.empty()) std::cout << "bench JSON: " << written << "\n";
  std::cout <<
      "\nNote: the measured Listing-8 peak exceeds Eq. 7 because the\n"
      "unpacked O1 slice (n^3*Tl) is live together with the A slice —\n"
      "Eq. 7 counts only the A and O2 slices. The Listing-10 (inner\n"
      "fusion) peak tracks Eq. 8, which is the configuration the final\n"
      "implementation uses. See EXPERIMENTS.md.\n";
  return 0;
}
