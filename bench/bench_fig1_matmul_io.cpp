// Figure 1 / Section 2.3 reproduction: data movement of untiled vs.
// tiled matrix multiplication on a two-level memory hierarchy, against
// the published lower bounds.
//
// Expected shape: the untiled version's I/O is ~N^3 (B is re-streamed
// for every output row) while the tiled version tracks 2N^3/sqrt(S)
// and sits within a small constant of the Dongarra et al. bound
// 1.73 N^3/sqrt(S).
#include <cmath>
#include <iostream>

#include "bounds/matmul_bounds.hpp"
#include "obs/bench_json.hpp"
#include "trace/kernels.hpp"
#include "util/format.hpp"

int main() {
  using namespace fit;
  obs::BenchReport report("bench_fig1_matmul_io");
  const std::size_t n = 96;
  const double n3 = double(n) * n * n;

  TextTable t({"S", "untiled I/O", "untiled/N^3", "tile T", "tiled I/O",
               "tiled/(2N^3/sqrt S)", "Dongarra LB", "tiled/LB"});
  for (std::size_t s : {192u, 768u, 3072u, 12288u}) {
    // Largest C block with the stream segments resident: T^2 + 2T <= S.
    const auto tile =
        static_cast<std::size_t>(std::sqrt(double(s) * 0.9) - 1.0);
    auto u = trace::trace_matmul_untiled(n, n, n, s);
    auto v = trace::trace_matmul_tiled(n, n, n, tile, s);
    const double lb = bounds::matmul_lb_dongarra(n, n, n, double(s));
    const double tiled_ref = 2.0 * n3 / std::sqrt(double(s));
    t.add_row({std::to_string(s), human_count(double(u.io())),
               fmt_fixed(double(u.io()) / n3, 2), std::to_string(tile),
               human_count(double(v.io())),
               fmt_fixed(double(v.io()) / tiled_ref, 2),
               human_count(lb), fmt_fixed(double(v.io()) / lb, 2)});
    report.add_scalar("S" + std::to_string(s) + ".untiled_over_n3",
                      double(u.io()) / n3);
    report.add_scalar("S" + std::to_string(s) + ".tiled_over_lb",
                      double(v.io()) / lb);
  }
  t.print("Figure 1 / Sec 2.3 — matmul I/O, N = " + std::to_string(n));
  report.add_table("Figure 1 / Sec 2.3 — matmul I/O, N = " +
                       std::to_string(n), t);

  std::cout << "\nListing 5 check: one tensor contraction attains "
               "|A|+|B|+|C| exactly once S >= na*ni + ni + 1:\n";
  TextTable l5({"na=ni", "nm", "S", "measured I/O", "in+out bound",
                "ratio"});
  for (std::size_t d : {8u, 16u, 24u}) {
    const std::size_t nm = d * d;  // macro index
    // Threshold na*ni + ni + 1 plus an extra column of LRU slack (the
    // analytic schedule deletes eagerly; LRU needs a small margin).
    const std::size_t s = d * d + 2 * d + 8;
    auto r = trace::trace_contraction(d, d, nm, s);
    const double bound = double(d * nm + d * d + d * nm);
    l5.add_row({std::to_string(d), std::to_string(nm), std::to_string(s),
                human_count(double(r.io())), human_count(bound),
                fmt_fixed(double(r.io()) / bound, 3)});
    report.add_scalar("listing5.d" + std::to_string(d) + ".io_over_bound",
                      double(r.io()) / bound);
  }
  l5.print("");
  report.add_table("Listing 5 — single contraction attains |A|+|B|+|C|",
                   l5);
  const std::string written = report.write();
  if (!written.empty()) std::cout << "bench JSON: " << written << "\n";
  return 0;
}
