// Figure 2a: Hyperpolar (small, 368 orbitals -> 46 scaled) on
// System A at 32/64/128 cores and System B at 56/140 cores.
//
// Expected shape (paper): with few nodes the unfused intermediates do
// not fit, NWChem falls back to its slow low-memory scheme and the
// hybrid's fused schedule wins by several-fold; with enough nodes both
// run unfused and tie.
#include "fig2_common.hpp"

int main() {
  using fit::runtime::system_a;
  using fit::runtime::system_b;
  fig2::run_panel("a", "Hyperpolar",
                  {{system_a(4), 32},
                   {system_a(8), 64},
                   {system_a(16), 128},
                   {system_b(2), 56},
                   {system_b(5), 140}});
  return 0;
}
