// Figure 2b: Uracil (large, 698 orbitals -> 87 scaled) on System A at
// 512 cores, System B at 140/252/504 cores, System C at 512/1024.
//
// Expected shape (paper): on System A 512 cores the aggregate memory
// cannot hold the NWChem tensors ("Failed") while the hybrid's fused
// schedule runs; on System B/C the hybrid is faster where memory is
// tight and ties when the unfused intermediates fit (504 cores of B).
#include "fig2_common.hpp"

int main() {
  using fit::runtime::system_a;
  using fit::runtime::system_b;
  using fit::runtime::system_c;
  fig2::run_panel("b", "Uracil",
                  {{system_a(64), 512},
                   {system_b(5), 140},
                   {system_b(9), 252},
                   {system_b(18), 504},
                   {system_c(128), 512},
                   {system_c(256), 1024}});
  return 0;
}
