// Figure 2c: C60H20 (medium, 580 orbitals -> 72 scaled) on System B
// at 140 and 252 cores.
//
// Expected shape (paper): fused wins at 140 cores (intermediates do
// not fit), parity at 252 cores (they do).
#include "fig2_common.hpp"

int main() {
  using fit::runtime::system_b;
  fig2::run_panel("c", "C60H20", {{system_b(5), 140}, {system_b(9), 252}});
  return 0;
}
