// Figure 2d: C40H56 (very large, 1023 orbitals -> 128 scaled) on
// System B at 504 cores and System C at 1536 cores.
//
// Expected shape (paper): on System B every NWChem variant that
// materializes tensors fails (6.5+ TB footprint vs 9.2 TB with
// production overheads) while the hybrid's fused schedule runs; our
// capacity-exact recompute baseline still fits but is many times
// slower — see EXPERIMENTS.md for the discussion.
#include "fig2_common.hpp"

int main() {
  using fit::runtime::system_b;
  using fit::runtime::system_c;
  fig2::run_panel("d", "C40H56",
                  {{system_b(18), 504}, {system_c(384), 1536}});
  return 0;
}
