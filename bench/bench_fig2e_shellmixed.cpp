// Figure 2e: Shell-Mixed (very large, 1194 orbitals -> 149 scaled) on
// System B at 504 cores and System C at 4096 cores.
//
// The paper's headline capability: the unfused transform needs more
// than 12.1 TB (scaled: ~2.95 GB) of aggregate memory — System B has
// only 9.2 TB (scaled: 2.25 GB) — yet the fused schedule executes it.
#include "fig2_common.hpp"

int main() {
  using fit::runtime::system_b;
  using fit::runtime::system_c;
  fig2::run_panel("e", "Shell-Mixed",
                  {{system_b(18), 504}, {system_c(1024), 4096}});
  return 0;
}
