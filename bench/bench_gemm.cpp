// Supporting microbenchmark: throughput of the from-scratch blocked
// DGEMM (fit::blas), including the n^3 x n "macro" shape every tensor
// contraction of the four-index transform reduces to (Sec. 5.1).
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "blas/gemm.hpp"
#include "obs/bench_json.hpp"
#include "util/rng.hpp"

namespace {

std::vector<double> random_vec(std::size_t n, std::uint64_t seed) {
  fit::SplitMix64 g(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = g.next_double(-1.0, 1.0);
  return v;
}

void BM_GemmSquare(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto a = random_vec(n * n, 1);
  auto b = random_vec(n * n, 2);
  std::vector<double> c(n * n, 0.0);
  for (auto _ : state) {
    fit::blas::gemm(fit::blas::Trans::No, fit::blas::Trans::No, n, n, n,
                    1.0, a.data(), n, b.data(), n, 0.0, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_GemmSquare)->Arg(64)->Arg(128)->Arg(256)->Arg(384);

// The contraction shape: (n^2 x n) * (n x n) — a tall-skinny product
// over the "macro" index (a modest slice; the full n^3 rows would
// dominate the benchmark run time without adding information).
void BM_GemmContractionShape(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t rows = n * n;
  auto a = random_vec(rows * n, 3);
  auto b = random_vec(n * n, 4);
  std::vector<double> c(rows * n, 0.0);
  for (auto _ : state) {
    // C[m, a] = A[m, i] * B[a, i]^T
    fit::blas::gemm(fit::blas::Trans::No, fit::blas::Trans::Yes, rows, n,
                    n, 1.0, a.data(), n, b.data(), n, 0.0, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(2 * rows * n * n));
}
BENCHMARK(BM_GemmContractionShape)->Arg(32)->Arg(64)->Arg(96);

void BM_GemmReferenceSquare(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto a = random_vec(n * n, 1);
  auto b = random_vec(n * n, 2);
  std::vector<double> c(n * n, 0.0);
  for (auto _ : state) {
    fit::blas::gemm_reference(fit::blas::Trans::No, fit::blas::Trans::No,
                              n, n, n, 1.0, a.data(), n, b.data(), n, 0.0,
                              c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_GemmReferenceSquare)->Arg(64)->Arg(128)->Arg(256);

// Console output as usual, plus every run captured into the shared
// fourindex.bench/1 JSON document (scalars <name>.seconds_per_iter and
// <name>.items_per_second) so CI archives this bench like the others.
class JsonTeeReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonTeeReporter(fit::obs::BenchReport* report)
      : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const auto& run : runs) {
      if (run.error_occurred) continue;
      const std::string name = run.benchmark_name();
      if (run.iterations > 0)
        report_->add_scalar(name + ".seconds_per_iter",
                            run.real_accumulated_time /
                                static_cast<double>(run.iterations));
      auto it = run.counters.find("items_per_second");
      if (it != run.counters.end())
        report_->add_scalar(name + ".items_per_second", it->second);
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  fit::obs::BenchReport* report_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  fit::obs::BenchReport report("bench_gemm");
  report.add_note("flops = items processed; items_per_second is the "
                  "DGEMM flop rate");
  JsonTeeReporter reporter(&report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  report.write();
  return 0;
}
