// Supporting microbenchmark: throughput of the from-scratch blocked
// DGEMM (fit::blas), including the n^3 x n "macro" shape every tensor
// contraction of the four-index transform reduces to (Sec. 5.1).
//
// Besides the google-benchmark sweep, a head-to-head section measures
// the engine against gemm_reference at n = 512 for 1/2/4 lanes and
// records the results as fourindex.bench/1 scalars
// (gemm.n512.gflops_t{1,2,4}, gemm.roofline_fraction, ...); CI's
// bench-smoke job gates roofline_fraction and the isa-sweep job forces
// FOURINDEX_CPU=scalar/sse2/avx over this bench and gates that
// gemm.n512.result_checksum is bit-identical across levels while
// GFLOP/s is non-decreasing with ISA width. gemm.isa / gemm.isa_detected
// record which kernel path actually ran. With FOURINDEX_BENCH_SMOKE=1
// only the head-to-head section runs.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "blas/dispatch.hpp"
#include "blas/gemm.hpp"
#include "blas/tune.hpp"
#include "obs/bench_json.hpp"
#include "serve/cost_table.hpp"
#include "util/rng.hpp"

namespace {

std::vector<double> random_vec(std::size_t n, std::uint64_t seed) {
  fit::SplitMix64 g(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = g.next_double(-1.0, 1.0);
  return v;
}

// FNV-1a over the raw result bytes, folded to 32 bits so the value is
// exactly representable as a JSON number: the isa-sweep job compares
// this scalar across forced ISA levels, where "equal checksums" means
// "bit-identical C matrices".
double result_checksum(const std::vector<double>& c) {
  std::uint64_t h = 1469598103934665603ull;
  const unsigned char* p = reinterpret_cast<const unsigned char*>(c.data());
  for (std::size_t i = 0; i < c.size() * sizeof(double); ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return static_cast<double>((h >> 32) ^ (h & 0xffffffffull));
}

void BM_GemmSquare(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto a = random_vec(n * n, 1);
  auto b = random_vec(n * n, 2);
  std::vector<double> c(n * n, 0.0);
  for (auto _ : state) {
    fit::blas::gemm(fit::blas::Trans::No, fit::blas::Trans::No, n, n, n,
                    1.0, a.data(), n, b.data(), n, 0.0, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_GemmSquare)->Arg(64)->Arg(128)->Arg(256)->Arg(384);

// The contraction shape: (n^2 x n) * (n x n) — a tall-skinny product
// over the "macro" index (a modest slice; the full n^3 rows would
// dominate the benchmark run time without adding information).
void BM_GemmContractionShape(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t rows = n * n;
  auto a = random_vec(rows * n, 3);
  auto b = random_vec(n * n, 4);
  std::vector<double> c(rows * n, 0.0);
  for (auto _ : state) {
    // C[m, a] = A[m, i] * B[a, i]^T
    fit::blas::gemm(fit::blas::Trans::No, fit::blas::Trans::Yes, rows, n,
                    n, 1.0, a.data(), n, b.data(), n, 0.0, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(2 * rows * n * n));
}
BENCHMARK(BM_GemmContractionShape)->Arg(32)->Arg(64)->Arg(96);

void BM_GemmReferenceSquare(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto a = random_vec(n * n, 1);
  auto b = random_vec(n * n, 2);
  std::vector<double> c(n * n, 0.0);
  for (auto _ : state) {
    fit::blas::gemm_reference(fit::blas::Trans::No, fit::blas::Trans::No,
                              n, n, n, 1.0, a.data(), n, b.data(), n, 0.0,
                              c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_GemmReferenceSquare)->Arg(64)->Arg(128)->Arg(256);

// Console output as usual, plus every run captured into the shared
// fourindex.bench/1 JSON document (scalars <name>.seconds_per_iter and
// <name>.items_per_second) so CI archives this bench like the others.
class JsonTeeReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonTeeReporter(fit::obs::BenchReport* report)
      : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const auto& run : runs) {
      if (run.error_occurred) continue;
      const std::string name = run.benchmark_name();
      if (run.iterations > 0)
        report_->add_scalar(name + ".seconds_per_iter",
                            run.real_accumulated_time /
                                static_cast<double>(run.iterations));
      auto it = run.counters.find("items_per_second");
      if (it != run.counters.end())
        report_->add_scalar(name + ".items_per_second", it->second);
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  fit::obs::BenchReport* report_;
};

double timed_seconds(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

double best_of(int reps, const std::function<void()>& fn) {
  double best = timed_seconds(fn);
  for (int r = 1; r < reps; ++r) best = std::min(best, timed_seconds(fn));
  return best;
}

// Engine vs. reference at n = 512, plus lane scaling — the numbers the
// CI gate and the README "Performance" section quote.
void head_to_head(fit::obs::BenchReport& report) {
  const std::size_t n = 512;
  const double flops = fit::blas::gemm_flops(n, n, n);
  auto a = random_vec(n * n, 1);
  auto b = random_vec(n * n, 2);
  std::vector<double> c(n * n, 0.0);
  auto run_blocked = [&] {
    fit::blas::gemm(fit::blas::Trans::No, fit::blas::Trans::No, n, n, n, 1.0,
                    a.data(), n, b.data(), n, 0.0, c.data(), n);
  };
  auto run_reference = [&] {
    fit::blas::gemm_reference(fit::blas::Trans::No, fit::blas::Trans::No, n,
                              n, n, 1.0, a.data(), n, b.data(), n, 0.0,
                              c.data(), n);
  };

  const auto base = fit::blas::gemm_config();
  const fit::blas::IsaLevel active =
      base.deterministic ? fit::blas::IsaLevel::Scalar : base.isa;
  report.add_scalar("gemm.config.mc", double(base.mc));
  report.add_scalar("gemm.config.kc", double(base.kc));
  report.add_scalar("gemm.config.nc", double(base.nc));
  report.add_scalar("gemm.config.threads", double(base.threads));
  report.add_scalar("gemm.config.deterministic",
                    base.deterministic ? 1.0 : 0.0);
  report.add_scalar("gemm.isa", double(static_cast<int>(active)));
  report.add_scalar("gemm.isa_detected",
                    double(static_cast<int>(fit::blas::detected_isa())));
  report.add_note(std::string("kernel dispatch: running '") +
                  fit::blas::isa_name(active) + "' (detected '" +
                  fit::blas::isa_name(fit::blas::detected_isa()) + "')");
  std::printf("kernel dispatch: running '%s' (detected '%s')\n",
              fit::blas::isa_name(active),
              fit::blas::isa_name(fit::blas::detected_isa()));

  // Probe the clock now, immediately before the timed runs it is
  // compared against (the first call caches): under virtualized clocks
  // the probe and the kernel timings drift together, so measuring them
  // adjacently makes the roofline fraction a clean cycles-for-cycles
  // ratio. A second probe after the timed runs brackets them; the min
  // of the two discards a dilation burst that inflated one window
  // (see reprobe_cpu_hz in blas/tune.hpp).
  const double hz_before = fit::blas::estimated_cpu_hz();

  const double t_ref = best_of(2, run_reference);
  const double ref_gflops = flops / t_ref / 1e9;
  report.add_scalar("gemm.n512.reference_gflops", ref_gflops);
  std::printf("n=512 head-to-head: reference %.2f GFLOP/s\n", ref_gflops);

  double t1 = 0.0, t4 = 0.0;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}}) {
    auto cfg = base;
    cfg.threads = threads;
    fit::blas::set_gemm_config(cfg);
    run_blocked();  // warm the packing buffers / pool
    // Six reps, keep the best: the t1 number feeds the gated roofline
    // fraction, and on a noisy virtualized host a three-rep best still
    // sits measurably below the machine's ceiling.
    const double t = best_of(6, run_blocked);
    if (threads == 1) {
      t1 = t;
      // Dispatch changes throughput, never bits: this checksum must be
      // identical under every FOURINDEX_CPU level (isa-sweep gate).
      report.add_scalar("gemm.n512.result_checksum", result_checksum(c));
    }
    if (threads == 4) t4 = t;
    if (threads != 1) {
      report.add_scalar("gemm.n512.gflops_t" + std::to_string(threads),
                        flops / t / 1e9);
    }
    std::printf("n=512 head-to-head: engine t%zu %.2f GFLOP/s\n", threads,
                flops / t / 1e9);
  }

  // k-split parallel reduction at 4 lanes (the alternative driver
  // behind the dispatch table, chasing the M-split path's known 4-lane
  // efficiency ceiling at n = 512).
  {
    auto cfg = base;
    cfg.threads = 4;
    cfg.ksplit = 4;
    fit::blas::set_gemm_config(cfg);
    run_blocked();
    const double t = best_of(3, run_blocked);
    report.add_scalar("gemm.n512.gflops_t4_ksplit4", flops / t / 1e9);
    report.add_scalar("gemm.n512.ksplit4_checksum", result_checksum(c));
    std::printf("n=512 head-to-head: engine t4 ksplit4 %.2f GFLOP/s\n",
                flops / t / 1e9);
  }
  fit::blas::set_gemm_config(base);

  // Second t1 window, ~2 s after the first: a neighbor-load spike on a
  // shared host can depress every rep of one best-of window, so the
  // gated t1 number keeps the better of two temporally separated ones.
  {
    auto cfg = base;
    cfg.threads = 1;
    fit::blas::set_gemm_config(cfg);
    run_blocked();
    t1 = std::min(t1, best_of(6, run_blocked));
    fit::blas::set_gemm_config(base);
  }
  report.add_scalar("gemm.n512.gflops_t1", flops / t1 / 1e9);

  // Roofline accounting: measured single-lane rate against the
  // compute peak the clock probe + ISA width model credits this level
  // (tune.cpp). CI's bench-smoke job gates gemm.roofline_fraction.
  const double hz = std::min(hz_before, fit::blas::reprobe_cpu_hz());
  const double peak1 =
      hz * fit::blas::isa_flops_per_cycle(active) / 1e9;
  const double gflops1 = flops / t1 / 1e9;
  report.add_scalar("gemm.cpu_hz", hz);
  report.add_scalar("gemm.roofline_peak_gflops_t1", peak1);
  report.add_scalar("gemm.roofline_fraction", gflops1 / peak1);
  std::printf(
      "roofline: clock %.2f GHz, peak %.2f GFLOP/s at '%s', achieved %.2f "
      "(fraction %.2f)\n",
      hz / 1e9, peak1, fit::blas::isa_name(active), gflops1, gflops1 / peak1);

  const double speedup = t_ref / t1;
  report.add_scalar("gemm.n512.speedup_vs_reference", speedup);
  report.add_scalar("gemm.n512.parallel_efficiency_t4", t1 / t4 / 4.0);
  std::printf(
      "n=512 head-to-head: single-thread speedup vs reference %.2fx, "
      "4-lane efficiency %.0f%%\n",
      speedup, 100.0 * t1 / t4 / 4.0);

  // Engine counters (flops, pack_bytes, gemm.isa gauge, ...) for the
  // archived document.
  report.add_metrics("gemm", fit::blas::gemm_metrics());
}

// --record-costs: measured single-thread DGEMM rates over a ladder of
// flop-volume buckets (each within a decade of its neighbors, so the
// cost oracle's coverage rule holds from tiled contraction shapes up
// to n = 512). Rates feed serve::CostOracle as kind "gemm".
void record_gemm_costs(const std::string& path) {
  fit::serve::CostTable table;
  const auto base = fit::blas::gemm_config();
  auto cfg = base;
  cfg.threads = 1;
  fit::blas::set_gemm_config(cfg);
  for (const std::size_t n : {std::size_t{64}, std::size_t{128},
                              std::size_t{256}, std::size_t{512}}) {
    auto a = random_vec(n * n, 1);
    auto b = random_vec(n * n, 2);
    std::vector<double> c(n * n, 0.0);
    auto run = [&] {
      fit::blas::gemm(fit::blas::Trans::No, fit::blas::Trans::No, n, n, n,
                      1.0, a.data(), n, b.data(), n, 0.0, c.data(), n);
    };
    run();  // warm the packing buffers
    const double flops = fit::blas::gemm_flops(n, n, n);
    const double t = best_of(n >= 512 ? 4 : 2, run);
    table.add({"gemm", flops, flops / t, "bench_gemm"});
    std::printf("record-costs: gemm shape %.3g -> %.2f GFLOP/s\n", flops,
                flops / t / 1e9);
  }
  fit::blas::set_gemm_config(base);
  fit::serve::record_costs(path, table);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string costs_path = fit::serve::record_costs_flag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  fit::obs::BenchReport report("bench_gemm");
  report.add_note("flops = items processed; items_per_second is the "
                  "DGEMM flop rate");
  report.add_note("gemm.n512.* scalars: blocked engine vs gemm_reference "
                  "head-to-head (CI gates gemm.roofline_fraction >= 0.35 "
                  "and, in isa-sweep, cross-level checksum equality)");
  const char* smoke = std::getenv("FOURINDEX_BENCH_SMOKE");
  if (!(smoke && smoke[0] == '1')) {
    JsonTeeReporter reporter(&report);
    benchmark::RunSpecifiedBenchmarks(&reporter);
  }
  benchmark::Shutdown();
  head_to_head(report);
  if (!costs_path.empty()) record_gemm_costs(costs_path);
  report.write();
  return 0;
}
