// Supporting microbenchmark: throughput of the from-scratch blocked
// DGEMM (fit::blas), including the n^3 x n "macro" shape every tensor
// contraction of the four-index transform reduces to (Sec. 5.1).
//
// Besides the google-benchmark sweep, a head-to-head section measures
// the engine against gemm_reference at n = 512 for 1/2/4 lanes and
// records the results as fourindex.bench/1 scalars
// (gemm.n512.gflops_t{1,2,4}, gemm.n512.speedup_vs_reference, ...);
// CI's bench-smoke job gates on speedup_vs_reference >= 2. With
// FOURINDEX_BENCH_SMOKE=1 only the head-to-head section runs.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "blas/gemm.hpp"
#include "blas/tune.hpp"
#include "obs/bench_json.hpp"
#include "util/rng.hpp"

namespace {

std::vector<double> random_vec(std::size_t n, std::uint64_t seed) {
  fit::SplitMix64 g(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = g.next_double(-1.0, 1.0);
  return v;
}

void BM_GemmSquare(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto a = random_vec(n * n, 1);
  auto b = random_vec(n * n, 2);
  std::vector<double> c(n * n, 0.0);
  for (auto _ : state) {
    fit::blas::gemm(fit::blas::Trans::No, fit::blas::Trans::No, n, n, n,
                    1.0, a.data(), n, b.data(), n, 0.0, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_GemmSquare)->Arg(64)->Arg(128)->Arg(256)->Arg(384);

// The contraction shape: (n^2 x n) * (n x n) — a tall-skinny product
// over the "macro" index (a modest slice; the full n^3 rows would
// dominate the benchmark run time without adding information).
void BM_GemmContractionShape(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t rows = n * n;
  auto a = random_vec(rows * n, 3);
  auto b = random_vec(n * n, 4);
  std::vector<double> c(rows * n, 0.0);
  for (auto _ : state) {
    // C[m, a] = A[m, i] * B[a, i]^T
    fit::blas::gemm(fit::blas::Trans::No, fit::blas::Trans::Yes, rows, n,
                    n, 1.0, a.data(), n, b.data(), n, 0.0, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(2 * rows * n * n));
}
BENCHMARK(BM_GemmContractionShape)->Arg(32)->Arg(64)->Arg(96);

void BM_GemmReferenceSquare(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto a = random_vec(n * n, 1);
  auto b = random_vec(n * n, 2);
  std::vector<double> c(n * n, 0.0);
  for (auto _ : state) {
    fit::blas::gemm_reference(fit::blas::Trans::No, fit::blas::Trans::No,
                              n, n, n, 1.0, a.data(), n, b.data(), n, 0.0,
                              c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_GemmReferenceSquare)->Arg(64)->Arg(128)->Arg(256);

// Console output as usual, plus every run captured into the shared
// fourindex.bench/1 JSON document (scalars <name>.seconds_per_iter and
// <name>.items_per_second) so CI archives this bench like the others.
class JsonTeeReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonTeeReporter(fit::obs::BenchReport* report)
      : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const auto& run : runs) {
      if (run.error_occurred) continue;
      const std::string name = run.benchmark_name();
      if (run.iterations > 0)
        report_->add_scalar(name + ".seconds_per_iter",
                            run.real_accumulated_time /
                                static_cast<double>(run.iterations));
      auto it = run.counters.find("items_per_second");
      if (it != run.counters.end())
        report_->add_scalar(name + ".items_per_second", it->second);
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  fit::obs::BenchReport* report_;
};

double timed_seconds(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

double best_of(int reps, const std::function<void()>& fn) {
  double best = timed_seconds(fn);
  for (int r = 1; r < reps; ++r) best = std::min(best, timed_seconds(fn));
  return best;
}

// Engine vs. reference at n = 512, plus lane scaling — the numbers the
// CI gate and the README "Performance" section quote.
void head_to_head(fit::obs::BenchReport& report) {
  const std::size_t n = 512;
  const double flops = fit::blas::gemm_flops(n, n, n);
  auto a = random_vec(n * n, 1);
  auto b = random_vec(n * n, 2);
  std::vector<double> c(n * n, 0.0);
  auto run_blocked = [&] {
    fit::blas::gemm(fit::blas::Trans::No, fit::blas::Trans::No, n, n, n, 1.0,
                    a.data(), n, b.data(), n, 0.0, c.data(), n);
  };
  auto run_reference = [&] {
    fit::blas::gemm_reference(fit::blas::Trans::No, fit::blas::Trans::No, n,
                              n, n, 1.0, a.data(), n, b.data(), n, 0.0,
                              c.data(), n);
  };

  const auto base = fit::blas::gemm_config();
  report.add_scalar("gemm.config.mc", double(base.mc));
  report.add_scalar("gemm.config.kc", double(base.kc));
  report.add_scalar("gemm.config.nc", double(base.nc));
  report.add_scalar("gemm.config.threads", double(base.threads));
  report.add_scalar("gemm.config.deterministic",
                    base.deterministic ? 1.0 : 0.0);

  const double t_ref = best_of(2, run_reference);
  const double ref_gflops = flops / t_ref / 1e9;
  report.add_scalar("gemm.n512.reference_gflops", ref_gflops);
  std::printf("n=512 head-to-head: reference %.2f GFLOP/s\n", ref_gflops);

  double t1 = 0.0, t4 = 0.0;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}}) {
    auto cfg = base;
    cfg.threads = threads;
    fit::blas::set_gemm_config(cfg);
    run_blocked();  // warm the packing buffers / pool
    const double t = best_of(3, run_blocked);
    if (threads == 1) t1 = t;
    if (threads == 4) t4 = t;
    report.add_scalar("gemm.n512.gflops_t" + std::to_string(threads),
                      flops / t / 1e9);
    std::printf("n=512 head-to-head: engine t%zu %.2f GFLOP/s\n", threads,
                flops / t / 1e9);
  }
  fit::blas::set_gemm_config(base);

  const double speedup = t_ref / t1;
  report.add_scalar("gemm.n512.speedup_vs_reference", speedup);
  report.add_scalar("gemm.n512.parallel_efficiency_t4", t1 / t4 / 4.0);
  std::printf(
      "n=512 head-to-head: single-thread speedup vs reference %.2fx, "
      "4-lane efficiency %.0f%%\n",
      speedup, 100.0 * t1 / t4 / 4.0);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  fit::obs::BenchReport report("bench_gemm");
  report.add_note("flops = items processed; items_per_second is the "
                  "DGEMM flop rate");
  report.add_note("gemm.n512.* scalars: blocked engine vs gemm_reference "
                  "head-to-head (CI gates speedup_vs_reference >= 2)");
  const char* smoke = std::getenv("FOURINDEX_BENCH_SMOKE");
  if (!(smoke && smoke[0] == '1')) {
    JsonTeeReporter reporter(&report);
    benchmark::RunSpecifiedBenchmarks(&reporter);
  }
  benchmark::Shutdown();
  head_to_head(report);
  report.write();
  return 0;
}
