// Supporting microbenchmark: throughput of the from-scratch blocked
// DGEMM (fit::blas), including the n^3 x n "macro" shape every tensor
// contraction of the four-index transform reduces to (Sec. 5.1).
#include <benchmark/benchmark.h>

#include <vector>

#include "blas/gemm.hpp"
#include "util/rng.hpp"

namespace {

std::vector<double> random_vec(std::size_t n, std::uint64_t seed) {
  fit::SplitMix64 g(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = g.next_double(-1.0, 1.0);
  return v;
}

void BM_GemmSquare(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto a = random_vec(n * n, 1);
  auto b = random_vec(n * n, 2);
  std::vector<double> c(n * n, 0.0);
  for (auto _ : state) {
    fit::blas::gemm(fit::blas::Trans::No, fit::blas::Trans::No, n, n, n,
                    1.0, a.data(), n, b.data(), n, 0.0, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_GemmSquare)->Arg(64)->Arg(128)->Arg(256)->Arg(384);

// The contraction shape: (n^2 x n) * (n x n) — a tall-skinny product
// over the "macro" index (a modest slice; the full n^3 rows would
// dominate the benchmark run time without adding information).
void BM_GemmContractionShape(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t rows = n * n;
  auto a = random_vec(rows * n, 3);
  auto b = random_vec(n * n, 4);
  std::vector<double> c(rows * n, 0.0);
  for (auto _ : state) {
    // C[m, a] = A[m, i] * B[a, i]^T
    fit::blas::gemm(fit::blas::Trans::No, fit::blas::Trans::Yes, rows, n,
                    n, 1.0, a.data(), n, b.data(), n, 0.0, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(2 * rows * n * n));
}
BENCHMARK(BM_GemmContractionShape)->Arg(32)->Arg(64)->Arg(96);

void BM_GemmReferenceSquare(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto a = random_vec(n * n, 1);
  auto b = random_vec(n * n, 2);
  std::vector<double> c(n * n, 0.0);
  for (auto _ : state) {
    fit::blas::gemm_reference(fit::blas::Trans::No, fit::blas::Trans::No,
                              n, n, n, 1.0, a.data(), n, b.data(), n, 0.0,
                              c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_GemmReferenceSquare)->Arg(64)->Arg(128)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
