// Section 4 reproduction: the Fusion Lemma's verdicts on when fusing a
// producer-consumer pair of matrix products is worthwhile.
//
// Part 1 — analytic worked examples from the paper:
//   * square chain E = (A*B)*D, all N x N: the possible gain is capped
//     at ~27% (0.54/2) — fusion is barely useful;
//   * rectangular chain with N >> K: the N^2 intermediate dwarfs the
//     inherent I/O and fusion can remove nearly everything.
//
// Part 2 — empirical validation: exact optimal I/O from the red-blue
// pebble game on small producer/consumer CDAGs, confirming
// IO(C12) >= IO(C1) + IO(C2) - 2|O1| and showing how close fused
// optima come to the bound.
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <string_view>
#include <vector>

#include "bounds/fusion_lemma.hpp"
#include "bounds/matmul_bounds.hpp"
#include "obs/bench_json.hpp"
#include "pebble/cdag.hpp"
#include "pebble/pebble_game.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"

namespace {

bool smoke_mode() {
  const char* e = std::getenv("FOURINDEX_BENCH_SMOKE");
  return e && *e && std::string_view(e) != "0";
}

void analytic_part(fit::obs::BenchReport& report) {
  using namespace fit;
  TextTable t({"chain", "N", "K", "S", "unfused I/O", "fused LB",
               "max gain", "gain frac", "useful?"});
  const double s = 4096;
  const std::vector<double> ns = smoke_mode()
                                     ? std::vector<double>{512.0, 2048.0}
                                     : std::vector<double>{512.0, 2048.0,
                                                           8192.0};
  double square_gain_frac = 0, rect_gain_frac = 0;
  for (double n : ns) {
    {
      // Square chain.
      const double lb = bounds::matmul_lb_dongarra(n, n, n, s);
      const double ach = 2.0 * n * n * n / std::sqrt(s);
      bounds::StageIO st{lb, ach};
      const double unfused = 2 * ach;
      const double gain = bounds::max_fusion_benefit(st, st, n * n);
      t.add_row({"square", fmt_fixed(n, 0), fmt_fixed(n, 0),
                 fmt_fixed(s, 0), human_count(unfused), human_count(
                     bounds::fused_pair_lower_bound(st, st, n * n)),
                 human_count(gain), fmt_fixed(gain / unfused, 3),
                 bounds::fusion_is_useful(st, st, n * n) ? "yes" : "no"});
      square_gain_frac = gain / unfused;
    }
    {
      // Rectangular chain, K << N.
      const double k = 16;
      const double lb = bounds::matmul_lb_dongarra(n, k, n, s);
      const double ach = bounds::matmul_tiled_io(n, k, n, s);
      bounds::StageIO st{lb, ach};
      const double unfused = 2 * ach;
      const double gain = bounds::max_fusion_benefit(st, st, n * n);
      t.add_row({"rect", fmt_fixed(n, 0), fmt_fixed(k, 0),
                 fmt_fixed(s, 0), human_count(unfused), human_count(
                     bounds::fused_pair_lower_bound(st, st, n * n)),
                 human_count(gain), fmt_fixed(gain / unfused, 3),
                 bounds::fusion_is_useful(st, st, n * n) ? "yes" : "no"});
      rect_gain_frac = gain / unfused;
    }
  }
  t.print("Sec 4 — Fusion Lemma on chained matrix products");
  std::cout << "(square chains cap out near 0.27; rectangular chains "
               "approach 1.0 — fusion removes almost all I/O)\n\n";
  report.add_table("Sec 4 — Fusion Lemma on chained matrix products", t);
  report.add_scalar("square.gain_frac", square_gain_frac);
  report.add_scalar("rect.gain_frac", rect_gain_frac);
}

void pebble_part(fit::obs::BenchReport& report) {
  using namespace fit;
  using namespace fit::pebble;
  TextTable t({"seed", "S", "IO(C1)", "IO(C2)", "|O1|", "lemma RHS",
               "IO(C12)", "slack"});
  const int target_rows = smoke_mode() ? 4 : 10;
  long min_slack = -1;
  int rows = 0;
  for (std::uint64_t seed = 1; rows < target_rows && seed < 60; ++seed) {
    SplitMix64 rng(seed * 77);
    // Producer: 3 inputs, 2 outputs each reading a random input pair.
    Cdag prod(5);
    for (int v = 3; v < 5; ++v) {
      const int u1 = static_cast<int>(rng.next_below(3));
      int u2 = static_cast<int>(rng.next_below(3));
      if (u2 == u1) u2 = (u2 + 1) % 3;
      prod.add_edge(std::min(u1, u2), v);
      prod.add_edge(std::max(u1, u2), v);
      prod.mark_output(v);
    }
    // Consumer: both intermediates + 1 fresh input -> 1 output.
    Cdag cons(4);
    cons.add_edge(0, 3);
    cons.add_edge(1, 3);
    cons.add_edge(2, 3);
    cons.mark_output(3);
    auto fused = fuse(prod, {3, 4}, cons, {0, 1});
    for (int s = 4; s <= 5; ++s) {
      auto io1 = min_io(prod, s);
      auto io2 = min_io(cons, s);
      auto io12 = min_io(fused.graph, s);
      if (!io1 || !io2 || !io12) continue;
      const long rhs = static_cast<long>(io1->min_io) + io2->min_io - 4;
      const long slack = static_cast<long>(io12->min_io) - rhs;
      t.add_row({std::to_string(seed), std::to_string(s),
                 std::to_string(io1->min_io), std::to_string(io2->min_io),
                 "2", std::to_string(rhs), std::to_string(io12->min_io),
                 std::to_string(slack)});
      if (min_slack < 0 || slack < min_slack) min_slack = slack;
      ++rows;
      if (rows >= target_rows) break;
    }
  }
  t.print("Sec 4 / Appendix A — exact pebble-game optima vs. the lemma");
  std::cout << "(slack >= 0 always: the lemma is a valid lower bound)\n";
  report.add_table(
      "Sec 4 / Appendix A — exact pebble-game optima vs. the lemma", t);
  report.add_scalar("pebble.min_slack", double(min_slack));
  report.add_scalar("pebble.rows", double(rows));
}

}  // namespace

int main() {
  fit::obs::BenchReport report("bench_sec4_fusion_lemma");
  if (smoke_mode())
    report.add_note("smoke mode: reduced n sweep and pebble row count");
  analytic_part(report);
  pebble_part(report);
  const std::string written = report.write();
  if (!written.empty()) std::cout << "bench JSON: " << written << "\n";
  return 0;
}
