// Section 5 reproduction: I/O lower bounds of every fusion
// configuration of the four-index transform (Sec. 5.3), the total
// order of Theorem 5.2, the S >= 3n^2+n+1 utility threshold of
// Theorem 5.1, and a measured validation — the LRU trace of each
// implemented schedule meets its analytic bound.
#include <iostream>

#include "bounds/transform_bounds.hpp"
#include "core/planner.hpp"
#include "obs/bench_json.hpp"
#include "tensor/packed.hpp"
#include "trace/kernels.hpp"
#include "util/format.hpp"

int main() {
  using namespace fit;
  using bounds::FusionChoice;
  obs::BenchReport report("bench_sec5_fusion_choices");
  bool order_holds_everywhere = true;

  // ---- IO_opt per fusion choice (Theorem 5.2 total order) ----------
  for (double s : {1.0, 8.0}) {
    TextTable t({"n", "op1/2/3/4", "op1/23/4", "op123/4", "op12/34",
                 "op1234", "order holds"});
    for (double n : {64.0, 128.0, 256.0, 512.0}) {
      const double unf = bounds::io_opt(FusionChoice::Unfused, n, s);
      const double f1234 = bounds::io_opt(FusionChoice::Fused1234, n, s);
      const double f12 = bounds::io_opt(FusionChoice::Fused12_34, n, s);
      const double f123 = bounds::io_opt(FusionChoice::Fused123_4, n, s);
      const double f23 = bounds::io_opt(FusionChoice::Fused1_23_4, n, s);
      const bool order = f1234 <= f12 && f12 < f123 && f123 <= unf;
      order_holds_everywhere = order_holds_everywhere && order;
      t.add_row({fmt_fixed(n, 0), human_count(unf), human_count(f23),
                 human_count(f123), human_count(f12), human_count(f1234),
                 order ? "yes" : "NO"});
    }
    t.print("Sec 5.3 — IO_opt per fusion configuration, s = " +
            fmt_fixed(s, 0));
    std::cout << "\n";
    report.add_table("Sec 5.3 — IO_opt per fusion configuration, s = " +
                         fmt_fixed(s, 0), t);
  }
  report.add_scalar("theorem52.order_holds",
                    order_holds_everywhere ? 1.0 : 0.0);

  // ---- Theorem 5.1 threshold ----------------------------------------
  TextTable th({"n", "S = 3n^2+n+1", "S = n^2+n+1 (single contraction)"});
  for (double n : {64.0, 368.0, 1194.0})
    th.add_row({fmt_fixed(n, 0),
                human_count(bounds::fused_pair_min_fast_memory(n)),
                human_count(bounds::single_contraction_min_fast_memory(n))});
  th.print("Theorem 5.1 — fast-memory thresholds");
  std::cout << "\n";
  report.add_table("Theorem 5.1 — fast-memory thresholds", th);

  // ---- Measured: LRU traces of the packed schedules meet the bounds -
  TextTable m({"n", "schedule", "measured I/O", "analytic bound",
               "measured/bound"});
  for (std::size_t n : {10u, 14u, 18u}) {
    const std::size_t s = 8 * n * n;
    const auto sz = tensor::packed_sizes(n, tensor::Irreps::trivial(n));
    {
      auto r = trace::trace_unfused_schedule(n, s);
      const double bound =
          double(sz.a + 2 * sz.o1 + 2 * sz.o2 + 2 * sz.o3 + sz.c) +
          4.0 * n * n;
      m.add_row({std::to_string(n), "op1/2/3/4",
                 human_count(double(r.io())), human_count(bound),
                 fmt_fixed(double(r.io()) / bound, 3)});
      report.add_scalar("n" + std::to_string(n) + ".unfused_io_over_bound",
                        double(r.io()) / bound);
    }
    {
      auto r = trace::trace_fused12_34_schedule(n, s);
      const double bound =
          double(sz.a + 2 * sz.o2 + sz.c) + 4.0 * n * n;
      m.add_row({std::to_string(n), "op12/34", human_count(double(r.io())),
                 human_count(bound), fmt_fixed(double(r.io()) / bound, 3)});
      report.add_scalar("n" + std::to_string(n) + ".fused12_io_over_bound",
                        double(r.io()) / bound);
    }
  }
  m.print("Sec 5 — measured LRU-trace I/O vs analytic tight bounds");
  std::cout << "\n";
  report.add_table("Sec 5 — measured LRU-trace I/O vs analytic bounds", m);

  // ---- The planner's pruning in action ------------------------------
  const std::string plan_small = core::to_string(core::plan_fusion(
      368, 8, 6e5));
  const std::string plan_large = core::to_string(core::plan_fusion(
      368, 8, 4.6e9));
  std::cout << plan_small << "\n" << plan_large << "\n";
  report.add_note(plan_small);
  report.add_note(plan_large);
  const std::string written = report.write();
  if (!written.empty()) std::cout << "bench JSON: " << written << "\n";
  return 0;
}
