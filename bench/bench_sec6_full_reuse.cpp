// Section 6 reproduction: S >= |C| is necessary and sufficient for the
// fully fused schedule to attain I/O = |A| + |C|.
//
// Sweep the fast-memory size around |C| and measure the LRU-trace I/O
// of the Listing 7 schedule. Expected shape: flat at the analytic
// bound once S >= |C| + 2n^3, exploding (output thrashing) below |C|.
#include <iostream>

#include "bounds/transform_bounds.hpp"
#include "obs/bench_json.hpp"
#include "tensor/packed.hpp"
#include "trace/kernels.hpp"
#include "util/format.hpp"

int main() {
  using namespace fit;
  obs::BenchReport report("bench_sec6_full_reuse");
  for (std::size_t n : {10u, 14u}) {
    const auto sz = tensor::packed_sizes(n, tensor::Irreps::trivial(n));
    const std::size_t n3 = n * n * n;
    const double bound_otf = double(sz.c) + 4.0 * n * n;  // on-the-fly A
    const double bound_mem =
        double(tensor::npairs(n)) * n * n + bound_otf;  // loaded A

    TextTable t({"S/|C|", "S", "I/O (A on the fly)", "vs |C|+4n^2",
                 "I/O (A in memory)", "vs |A'|+|C|+4n^2"});
    for (double f : {0.25, 0.5, 0.75, 1.0, 1.15, 1.5, 3.0}) {
      auto s = static_cast<std::size_t>(f * double(sz.c));
      if (f >= 1.0) s += 3 * n3;  // the lower-order working-set term
      auto otf = trace::trace_fused1234_schedule(n, s, true);
      auto mem = trace::trace_fused1234_schedule(n, s, false);
      t.add_row({fmt_fixed(f, 2), human_count(double(s)),
                 human_count(double(otf.io())),
                 fmt_fixed(double(otf.io()) / bound_otf, 2),
                 human_count(double(mem.io())),
                 fmt_fixed(double(mem.io()) / bound_mem, 2)});
      if (f == 0.25 || f == 1.5)
        report.add_scalar("n" + std::to_string(n) + ".f" + fmt_fixed(f, 2) +
                              ".otf_io_over_bound",
                          double(otf.io()) / bound_otf);
    }
    t.print("Sec 6 — op1234 I/O vs fast-memory size, n = " +
            std::to_string(n) + " (|C| = " + human_count(double(sz.c)) +
            ")");
    report.add_table("Sec 6 — op1234 I/O vs fast-memory size, n = " +
                         std::to_string(n), t);
    std::cout << "(ratio 1.00 at S >= |C| + working set; blow-up below "
                 "|C| — Theorem 6.2's necessary condition)\n\n";
  }

  // Largest zero-spill problem per aggregate memory (Sec. 7.1).
  TextTable t({"aggregate memory", "max n (unfused)", "max n (fused)",
               "capability gain"});
  for (double gb : {1.0, 8.0, 64.0, 512.0, 9216.0}) {
    const double words = gb * 1e9 / 8.0;
    const auto nu = bounds::max_unfused_problem(words, 8);
    const auto nf = bounds::max_fused_problem(words, 2, 8);
    t.add_row({human_bytes(gb * 1e9), std::to_string(nu),
               std::to_string(nf),
               fmt_fixed(double(nf) / double(nu), 2) + "x"});
    report.add_scalar("gb" + fmt_fixed(gb, 0) + ".capability_gain",
                      double(nf) / double(nu));
  }
  t.print("Sec 7.1 — largest in-memory transform per aggregate memory");
  std::cout << "(the paper's 12.1 TB Shell-Mixed example runs within "
               "9.2 TB because max-n(fused) >> max-n(unfused))\n";
  report.add_table("Sec 7.1 — largest in-memory transform per aggregate "
                   "memory", t);
  const std::string written = report.write();
  if (!written.empty()) std::cout << "bench JSON: " << written << "\n";
  return 0;
}
