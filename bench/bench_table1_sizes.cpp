// Table 1 reproduction: sizes of the five tensors of the four-index
// transform under permutation + spatial symmetry.
//
// For each n we print the *measured* packed storage of our tensor
// classes next to the paper's formulas (n^4/4, n^4/2, n^4/4, n^4/2,
// n^4/(4s)); the ratio columns should approach 1 as n grows.
#include <cstdlib>
#include <iostream>
#include <vector>

#include "obs/bench_json.hpp"
#include "tensor/irreps.hpp"
#include "tensor/packed.hpp"
#include "util/format.hpp"

int main() {
  using namespace fit;
  obs::BenchReport report("bench_table1_sizes");

  // FOURINDEX_BENCH_SMOKE=1 (CI): drop the large-n rows so the bench
  // finishes in seconds while still exercising the full output path.
  const char* smoke_env = std::getenv("FOURINDEX_BENCH_SMOKE");
  const bool smoke = smoke_env && *smoke_env &&
                     std::string_view(smoke_env) != "0";
  const std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{16, 32, 64}
            : std::vector<std::size_t>{16, 32, 64, 128, 256};
  if (smoke) report.add_note("smoke mode: n capped at 64");

  for (unsigned s : {1u, 8u}) {
    TextTable t({"n", "|A|", "A/(n^4/4)", "|O1|", "O1/(n^4/2)", "|O2|",
                 "O2/(n^4/4)", "|O3|", "O3/(n^4/2)", "|C|", "C/(n^4/4s)"});
    for (std::size_t n : sizes) {
      auto ir = tensor::Irreps::contiguous(n, s);
      auto sz = tensor::packed_sizes(n, ir);
      const double n4 = double(n) * n * n * n;
      t.add_row({std::to_string(n), human_count(double(sz.a)),
                 fmt_fixed(double(sz.a) / (n4 / 4), 3),
                 human_count(double(sz.o1)),
                 fmt_fixed(double(sz.o1) / (n4 / 2), 3),
                 human_count(double(sz.o2)),
                 fmt_fixed(double(sz.o2) / (n4 / 4), 3),
                 human_count(double(sz.o3)),
                 fmt_fixed(double(sz.o3) / (n4 / 2), 3),
                 human_count(double(sz.c)),
                 fmt_fixed(double(sz.c) / (n4 / (4 * s)), 3)});
    }
    t.print("Table 1 — packed tensor sizes, spatial group order s = " +
            std::to_string(s));
    std::cout << "\n";
    report.add_table("Table 1 — packed tensor sizes, s = " +
                         std::to_string(s), t);

    // Convergence scalars at the largest n: should approach 1.
    const std::size_t n = sizes.back();
    const auto sz = tensor::packed_sizes(n, tensor::Irreps::contiguous(n, s));
    const double n4 = double(n) * n * n * n;
    report.add_scalar("s" + std::to_string(s) + ".a_ratio",
                      double(sz.a) / (n4 / 4));
    report.add_scalar("s" + std::to_string(s) + ".c_ratio",
                      double(sz.c) / (n4 / (4 * s)));
  }

  // The paper's Sec. 8 memory figures: minimum aggregate memory of the
  // unfused transform (|O1|+|O2| peak) for the five benchmark
  // molecules, at paper scale.
  TextTable t({"molecule", "paper n", "paper claim", "3n^4/4 * 8B"});
  const char* names[] = {"Hyperpolar", "C60H20", "Uracil", "C40H56",
                         "Shell-Mixed"};
  const double paper_n[] = {368, 580, 698, 1023, 1194};
  const char* claims[] = {"110 GB", "678 GB", "1.4 TB", "6.5 TB",
                          "12.1 TB"};
  for (int i = 0; i < 5; ++i) {
    const double n4 = paper_n[i] * paper_n[i] * paper_n[i] * paper_n[i];
    t.add_row({names[i], fmt_fixed(paper_n[i], 0), claims[i],
               human_bytes(0.75 * n4 * 8)});
  }
  t.print("Sec. 8 aggregate-memory requirements (validates the formula)");
  report.add_table("Sec. 8 aggregate-memory requirements", t);
  const std::string written = report.write();
  if (!written.empty()) std::cout << "bench JSON: " << written << "\n";
  return 0;
}
