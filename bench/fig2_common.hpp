// Shared driver for the Figure 2 reproduction benchmarks.
//
// Each bench binary replays one panel of the paper's Figure 2: a
// benchmark molecule (scaled 1/8, see DESIGN.md) run on the paper's
// cluster configurations (memory scaled 1/4096), comparing our
// fuse/unfuse hybrid against "NWChem Best" — the fastest of the
// production-NWChem baseline models that fits the machine. A baseline
// that exhausts aggregate memory is reported "Failed", exactly the
// outcome the paper plots.
//
// Times are simulated (alpha-beta network + flop/integral rate model);
// the claims under test are *relative*: who wins, by what factor, and
// where the Failed boundaries fall.
#pragma once

#include <cctype>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <iostream>
#include <string>
#include <vector>

#include "blas/gemm.hpp"
#include "chem/molecule.hpp"
#include "core/problem.hpp"
#include "core/schedules_baseline.hpp"
#include "core/schedules_par.hpp"
#include "obs/bench_json.hpp"
#include "runtime/cluster.hpp"
#include "runtime/machine.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"

namespace fig2 {

/// Lower-cased alphanumerics only: "Shell-Mixed" -> "shellmixed".
/// Used to derive the bench binary's name from the molecule so every
/// panel emits <binary>.bench.json without each main repeating it.
inline std::string slug(const std::string& s) {
  std::string out;
  for (char c : s)
    if (std::isalnum(static_cast<unsigned char>(c)))
      out.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(c))));
  return out;
}

struct Config {
  fit::runtime::MachineConfig machine;
  std::size_t cores;  // display label (== machine.n_ranks())
};

/// Measured host DGEMM throughput (GFLOP/s at n = 256, best of two),
/// probed once per binary. Reported next to the modeled times so the
/// BENCH_*.json trail carries a real hardware datum — the wall-clock
/// axis the paper's I/O model abstracts away.
inline double host_gemm_gflops() {
  static const double gflops = [] {
    const std::size_t n = 256;
    std::vector<double> a(n * n), b(n * n), c(n * n, 0.0);
    fit::SplitMix64 g(0x51ab);
    for (auto& x : a) x = g.next_double(-1.0, 1.0);
    for (auto& x : b) x = g.next_double(-1.0, 1.0);
    auto run = [&] {
      fit::blas::gemm(fit::blas::Trans::No, fit::blas::Trans::No, n, n, n,
                      1.0, a.data(), n, b.data(), n, 0.0, c.data(), n);
    };
    run();  // warm packing buffers
    double best = 1e300;
    for (int rep = 0; rep < 2; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      run();
      best = std::min(best, std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - t0)
                                .count());
    }
    return fit::blas::gemm_flops(n, n, n) / best / 1e9;
  }();
  return gflops;
}

struct Outcome {
  bool ran = false;
  double time = 0;
  std::string name;
};

inline Outcome try_run(
    const char* name, const fit::core::Problem& p,
    const fit::runtime::MachineConfig& m, const fit::core::ParOptions& o,
    fit::core::ParResult (*fn)(const fit::core::Problem&,
                               fit::runtime::Cluster&,
                               const fit::core::ParOptions&)) {
  Outcome out;
  out.name = name;
  try {
    fit::runtime::Cluster cl(m, fit::runtime::ExecutionMode::Simulate);
    auto r = fn(p, cl, o);
    out.ran = true;
    out.time = r.stats.sim_time;
  } catch (const fit::OutOfMemoryError&) {
    out.ran = false;
  }
  return out;
}

inline void run_panel(const std::string& panel, const std::string& molecule,
                      const std::vector<Config>& configs) {
  auto mol = fit::chem::paper_molecule(molecule);
  auto p = fit::core::make_problem(mol);

  const std::string bench_name = "bench_fig2" + panel + "_" + slug(molecule);
  fit::obs::BenchReport report(bench_name);

  std::cout << "Reproducing Figure 2" << panel << ": " << molecule
            << " (paper: " << mol.paper_n_orbitals << " orbitals, scaled: "
            << mol.n_orbitals << "; cluster memories scaled 1/4096)\n";
  const auto sz = p.sizes();
  std::cout << "unfused footprint (|O1|+|O2|+...): "
            << fit::human_bytes(8.0 * double(sz.unfused_peak() + sz.c))
            << ", |C|: " << fit::human_bytes(8.0 * double(sz.c)) << "\n\n";
  report.add_note("molecule " + molecule + ": paper " +
                  std::to_string(mol.paper_n_orbitals) + " orbitals, scaled " +
                  std::to_string(mol.n_orbitals) +
                  "; cluster memories scaled 1/4096");
  report.add_scalar("n_orbitals", double(mol.n_orbitals));
  report.add_scalar("unfused_footprint_bytes",
                    8.0 * double(sz.unfused_peak() + sz.c));
  // Real, measured hardware datum next to the modeled times: the host
  // kernel-engine throughput and, per config, the wall-clock the
  // simulation itself took.
  const double host_gflops = host_gemm_gflops();
  report.add_scalar("host.gemm_gflops", host_gflops);
  std::cout << "host DGEMM throughput: " << fit::fmt_fixed(host_gflops, 2)
            << " GFLOP/s (measured; times below are modeled I/O time)\n";

  const char* trace_dir = std::getenv("FOURINDEX_TRACE_DIR");

  fit::TextTable t({"system", "cores", "aggregate mem", "hybrid (s)",
                    "hybrid wall (s)", "hybrid schedule", "NWChem best (s)",
                    "best variant", "speedup"});
  for (const auto& cfg : configs) {
    fit::core::ParOptions o;
    o.tile = 8;
    o.tile_l = 4;
    o.gather_result = false;

    const std::string key = cfg.machine.name + "." +
                            std::to_string(cfg.cores);
    Outcome hybrid;
    std::string hybrid_sched = "-";
    double hybrid_wall = 0;
    {
      fit::runtime::Cluster cl(cfg.machine,
                               fit::runtime::ExecutionMode::Simulate);
      try {
        auto r = fit::core::hybrid_transform(p, cl, o);
        hybrid.ran = true;
        hybrid.time = r.stats.sim_time;
        hybrid_wall = r.stats.wall_seconds;
        hybrid_sched = r.stats.schedule;
      } catch (const fit::OutOfMemoryError&) {
      }
      report.add_metrics(key, cl.metrics());
      if (trace_dir && *trace_dir) {
        const std::string path = std::string(trace_dir) + "/" + bench_name +
                                 "_" + slug(key) + ".trace.json";
        if (cl.write_chrome_trace(path))
          std::cout << "phase timeline: " << path << "\n";
      }
    }

    // NWChem's default memory model splits process memory into heap/
    // stack/global partitions, leaving roughly half of physical memory
    // usable for Global Arrays; our implementation manages the full
    // budget. The baselines therefore see a halved capacity — this is
    // what makes the paper's NWChem runs fail on clusters that could
    // theoretically hold the 3n^4/4 minimum (see EXPERIMENTS.md).
    auto nw_machine = cfg.machine;
    nw_machine.mem_per_node_bytes *= 0.5;
    auto unf = try_run("nwchem-unfused", p, nw_machine, o,
                       &fit::core::nwchem_unfused_par_transform);
    auto rec = try_run("nwchem-recompute", p, nw_machine, o,
                       &fit::core::nwchem_recompute_par_transform);
    Outcome best;
    for (const auto& cand : {unf, rec})
      if (cand.ran && (!best.ran || cand.time < best.time)) best = cand;

    const std::string agg =
        fit::human_bytes(cfg.machine.aggregate_memory_bytes());
    t.add_row(
        {cfg.machine.name, std::to_string(cfg.cores), agg,
         hybrid.ran ? fit::fmt_fixed(hybrid.time, 3) : "Failed",
         hybrid.ran ? fit::fmt_fixed(hybrid_wall, 3) : "-",
         hybrid_sched,
         best.ran ? fit::fmt_fixed(best.time, 3) : "Failed",
         best.ran ? best.name : "-",
         (hybrid.ran && best.ran)
             ? fit::fmt_fixed(best.time / hybrid.time, 2) + "x"
             : (hybrid.ran ? "runs where NWChem fails" : "-")});

    if (hybrid.ran) report.add_scalar(key + ".hybrid_s", hybrid.time);
    if (hybrid.ran)
      report.add_scalar(key + ".hybrid_host_wall_s", hybrid_wall);
    if (best.ran) report.add_scalar(key + ".nwchem_best_s", best.time);
    if (hybrid.ran && best.ran)
      report.add_scalar(key + ".speedup", best.time / hybrid.time);
  }
  t.print("Figure 2" + panel + " — " + molecule);
  std::cout << std::endl;

  report.add_table("Figure 2" + panel + " — " + molecule, t);
  const std::string written = report.write();
  if (!written.empty()) std::cout << "bench JSON: " << written << "\n";
}

}  // namespace fig2
