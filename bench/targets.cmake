# Benchmark binaries. Included from the top-level CMakeLists (rather
# than via add_subdirectory) so that build/bench/ contains only the
# executables and `for b in build/bench/*; do $b; done` runs cleanly.
file(GLOB BENCH_SOURCES CONFIGURE_DEPENDS
     ${CMAKE_SOURCE_DIR}/bench/*.cpp)

foreach(bench_src ${BENCH_SOURCES})
  get_filename_component(bench_name ${bench_src} NAME_WE)
  add_executable(${bench_name} ${bench_src})
  target_link_libraries(${bench_name} PRIVATE fourindex
                        benchmark::benchmark)
  set_target_properties(${bench_name} PROPERTIES
                        RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endforeach()
