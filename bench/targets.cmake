# Benchmark binaries. Included from the top-level CMakeLists (rather
# than via add_subdirectory) so that build/bench/ contains only the
# executables and `for b in build/bench/*; do $b; done` runs cleanly.
file(GLOB BENCH_SOURCES CONFIGURE_DEPENDS
     ${CMAKE_SOURCE_DIR}/bench/*.cpp)

foreach(bench_src ${BENCH_SOURCES})
  get_filename_component(bench_name ${bench_src} NAME_WE)
  add_executable(${bench_name} ${bench_src})
  target_link_libraries(${bench_name} PRIVATE fourindex
                        benchmark::benchmark)
  set_target_properties(${bench_name} PROPERTIES
                        RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endforeach()

# The chaos soak is a pass/fail robustness check, not just a timing
# probe: it exits nonzero when a storm survivor is not bit-identical to
# the clean run. Run it under ctest (smoke-sized) with a hard timeout
# so a wedged recovery path fails the suite instead of hanging it.
add_test(NAME bench_chaos_soak_smoke
         COMMAND bench_chaos_soak)
set_tests_properties(bench_chaos_soak_smoke PROPERTIES
                     TIMEOUT 300
                     ENVIRONMENT "FOURINDEX_BENCH_SMOKE=1;FOURINDEX_BENCH_JSON=0")
