file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_alpha_parallel.dir/bench/bench_ablation_alpha_parallel.cpp.o"
  "CMakeFiles/bench_ablation_alpha_parallel.dir/bench/bench_ablation_alpha_parallel.cpp.o.d"
  "bench/bench_ablation_alpha_parallel"
  "bench/bench_ablation_alpha_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_alpha_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
