# Empty dependencies file for bench_ablation_alpha_parallel.
# This may be replaced when dependencies are built.
