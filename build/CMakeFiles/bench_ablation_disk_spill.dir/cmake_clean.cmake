file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_disk_spill.dir/bench/bench_ablation_disk_spill.cpp.o"
  "CMakeFiles/bench_ablation_disk_spill.dir/bench/bench_ablation_disk_spill.cpp.o.d"
  "bench/bench_ablation_disk_spill"
  "bench/bench_ablation_disk_spill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_disk_spill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
