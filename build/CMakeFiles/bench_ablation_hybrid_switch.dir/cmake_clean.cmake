file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_hybrid_switch.dir/bench/bench_ablation_hybrid_switch.cpp.o"
  "CMakeFiles/bench_ablation_hybrid_switch.dir/bench/bench_ablation_hybrid_switch.cpp.o.d"
  "bench/bench_ablation_hybrid_switch"
  "bench/bench_ablation_hybrid_switch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_hybrid_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
