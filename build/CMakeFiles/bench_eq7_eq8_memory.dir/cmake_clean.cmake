file(REMOVE_RECURSE
  "CMakeFiles/bench_eq7_eq8_memory.dir/bench/bench_eq7_eq8_memory.cpp.o"
  "CMakeFiles/bench_eq7_eq8_memory.dir/bench/bench_eq7_eq8_memory.cpp.o.d"
  "bench/bench_eq7_eq8_memory"
  "bench/bench_eq7_eq8_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_eq7_eq8_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
