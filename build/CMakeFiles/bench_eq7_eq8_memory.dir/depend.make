# Empty dependencies file for bench_eq7_eq8_memory.
# This may be replaced when dependencies are built.
