file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_matmul_io.dir/bench/bench_fig1_matmul_io.cpp.o"
  "CMakeFiles/bench_fig1_matmul_io.dir/bench/bench_fig1_matmul_io.cpp.o.d"
  "bench/bench_fig1_matmul_io"
  "bench/bench_fig1_matmul_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_matmul_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
