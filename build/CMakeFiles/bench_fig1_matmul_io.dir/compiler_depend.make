# Empty compiler generated dependencies file for bench_fig1_matmul_io.
# This may be replaced when dependencies are built.
