file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2a_hyperpolar.dir/bench/bench_fig2a_hyperpolar.cpp.o"
  "CMakeFiles/bench_fig2a_hyperpolar.dir/bench/bench_fig2a_hyperpolar.cpp.o.d"
  "bench/bench_fig2a_hyperpolar"
  "bench/bench_fig2a_hyperpolar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2a_hyperpolar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
