# Empty dependencies file for bench_fig2a_hyperpolar.
# This may be replaced when dependencies are built.
