file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2b_uracil.dir/bench/bench_fig2b_uracil.cpp.o"
  "CMakeFiles/bench_fig2b_uracil.dir/bench/bench_fig2b_uracil.cpp.o.d"
  "bench/bench_fig2b_uracil"
  "bench/bench_fig2b_uracil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2b_uracil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
