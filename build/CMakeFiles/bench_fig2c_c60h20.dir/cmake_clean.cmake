file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2c_c60h20.dir/bench/bench_fig2c_c60h20.cpp.o"
  "CMakeFiles/bench_fig2c_c60h20.dir/bench/bench_fig2c_c60h20.cpp.o.d"
  "bench/bench_fig2c_c60h20"
  "bench/bench_fig2c_c60h20.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2c_c60h20.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
