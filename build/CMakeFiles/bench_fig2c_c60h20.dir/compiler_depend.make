# Empty compiler generated dependencies file for bench_fig2c_c60h20.
# This may be replaced when dependencies are built.
