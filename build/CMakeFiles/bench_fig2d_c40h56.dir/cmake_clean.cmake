file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2d_c40h56.dir/bench/bench_fig2d_c40h56.cpp.o"
  "CMakeFiles/bench_fig2d_c40h56.dir/bench/bench_fig2d_c40h56.cpp.o.d"
  "bench/bench_fig2d_c40h56"
  "bench/bench_fig2d_c40h56.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2d_c40h56.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
