# Empty dependencies file for bench_fig2d_c40h56.
# This may be replaced when dependencies are built.
