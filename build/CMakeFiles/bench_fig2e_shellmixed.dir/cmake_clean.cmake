file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2e_shellmixed.dir/bench/bench_fig2e_shellmixed.cpp.o"
  "CMakeFiles/bench_fig2e_shellmixed.dir/bench/bench_fig2e_shellmixed.cpp.o.d"
  "bench/bench_fig2e_shellmixed"
  "bench/bench_fig2e_shellmixed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2e_shellmixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
