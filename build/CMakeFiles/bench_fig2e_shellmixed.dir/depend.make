# Empty dependencies file for bench_fig2e_shellmixed.
# This may be replaced when dependencies are built.
