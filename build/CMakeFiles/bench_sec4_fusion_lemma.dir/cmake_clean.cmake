file(REMOVE_RECURSE
  "CMakeFiles/bench_sec4_fusion_lemma.dir/bench/bench_sec4_fusion_lemma.cpp.o"
  "CMakeFiles/bench_sec4_fusion_lemma.dir/bench/bench_sec4_fusion_lemma.cpp.o.d"
  "bench/bench_sec4_fusion_lemma"
  "bench/bench_sec4_fusion_lemma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec4_fusion_lemma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
