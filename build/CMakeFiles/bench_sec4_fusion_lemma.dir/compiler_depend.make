# Empty compiler generated dependencies file for bench_sec4_fusion_lemma.
# This may be replaced when dependencies are built.
