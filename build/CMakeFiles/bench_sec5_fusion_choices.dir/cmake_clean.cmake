file(REMOVE_RECURSE
  "CMakeFiles/bench_sec5_fusion_choices.dir/bench/bench_sec5_fusion_choices.cpp.o"
  "CMakeFiles/bench_sec5_fusion_choices.dir/bench/bench_sec5_fusion_choices.cpp.o.d"
  "bench/bench_sec5_fusion_choices"
  "bench/bench_sec5_fusion_choices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec5_fusion_choices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
