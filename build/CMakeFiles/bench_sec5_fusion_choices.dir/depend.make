# Empty dependencies file for bench_sec5_fusion_choices.
# This may be replaced when dependencies are built.
