file(REMOVE_RECURSE
  "CMakeFiles/bench_sec6_full_reuse.dir/bench/bench_sec6_full_reuse.cpp.o"
  "CMakeFiles/bench_sec6_full_reuse.dir/bench/bench_sec6_full_reuse.cpp.o.d"
  "bench/bench_sec6_full_reuse"
  "bench/bench_sec6_full_reuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec6_full_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
