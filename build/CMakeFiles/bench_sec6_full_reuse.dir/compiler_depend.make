# Empty compiler generated dependencies file for bench_sec6_full_reuse.
# This may be replaced when dependencies are built.
