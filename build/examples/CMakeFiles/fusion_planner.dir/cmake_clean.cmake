file(REMOVE_RECURSE
  "CMakeFiles/fusion_planner.dir/fusion_planner.cpp.o"
  "CMakeFiles/fusion_planner.dir/fusion_planner.cpp.o.d"
  "fusion_planner"
  "fusion_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fusion_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
