# Empty dependencies file for fusion_planner.
# This may be replaced when dependencies are built.
