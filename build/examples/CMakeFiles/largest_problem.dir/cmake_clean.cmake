file(REMOVE_RECURSE
  "CMakeFiles/largest_problem.dir/largest_problem.cpp.o"
  "CMakeFiles/largest_problem.dir/largest_problem.cpp.o.d"
  "largest_problem"
  "largest_problem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/largest_problem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
