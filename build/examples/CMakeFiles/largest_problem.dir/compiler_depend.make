# Empty compiler generated dependencies file for largest_problem.
# This may be replaced when dependencies are built.
