file(REMOVE_RECURSE
  "CMakeFiles/mp2_energy.dir/mp2_energy.cpp.o"
  "CMakeFiles/mp2_energy.dir/mp2_energy.cpp.o.d"
  "mp2_energy"
  "mp2_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp2_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
