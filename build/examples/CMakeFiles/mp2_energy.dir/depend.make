# Empty dependencies file for mp2_energy.
# This may be replaced when dependencies are built.
