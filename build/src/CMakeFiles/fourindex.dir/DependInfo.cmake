
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/blas/gemm.cpp" "src/CMakeFiles/fourindex.dir/blas/gemm.cpp.o" "gcc" "src/CMakeFiles/fourindex.dir/blas/gemm.cpp.o.d"
  "/root/repo/src/bounds/chain_planner.cpp" "src/CMakeFiles/fourindex.dir/bounds/chain_planner.cpp.o" "gcc" "src/CMakeFiles/fourindex.dir/bounds/chain_planner.cpp.o.d"
  "/root/repo/src/bounds/fusion_lemma.cpp" "src/CMakeFiles/fourindex.dir/bounds/fusion_lemma.cpp.o" "gcc" "src/CMakeFiles/fourindex.dir/bounds/fusion_lemma.cpp.o.d"
  "/root/repo/src/bounds/matmul_bounds.cpp" "src/CMakeFiles/fourindex.dir/bounds/matmul_bounds.cpp.o" "gcc" "src/CMakeFiles/fourindex.dir/bounds/matmul_bounds.cpp.o.d"
  "/root/repo/src/bounds/transform_bounds.cpp" "src/CMakeFiles/fourindex.dir/bounds/transform_bounds.cpp.o" "gcc" "src/CMakeFiles/fourindex.dir/bounds/transform_bounds.cpp.o.d"
  "/root/repo/src/chem/antisym_integrals.cpp" "src/CMakeFiles/fourindex.dir/chem/antisym_integrals.cpp.o" "gcc" "src/CMakeFiles/fourindex.dir/chem/antisym_integrals.cpp.o.d"
  "/root/repo/src/chem/coeffs.cpp" "src/CMakeFiles/fourindex.dir/chem/coeffs.cpp.o" "gcc" "src/CMakeFiles/fourindex.dir/chem/coeffs.cpp.o.d"
  "/root/repo/src/chem/integrals.cpp" "src/CMakeFiles/fourindex.dir/chem/integrals.cpp.o" "gcc" "src/CMakeFiles/fourindex.dir/chem/integrals.cpp.o.d"
  "/root/repo/src/chem/molecule.cpp" "src/CMakeFiles/fourindex.dir/chem/molecule.cpp.o" "gcc" "src/CMakeFiles/fourindex.dir/chem/molecule.cpp.o.d"
  "/root/repo/src/chem/mp2.cpp" "src/CMakeFiles/fourindex.dir/chem/mp2.cpp.o" "gcc" "src/CMakeFiles/fourindex.dir/chem/mp2.cpp.o.d"
  "/root/repo/src/core/planner.cpp" "src/CMakeFiles/fourindex.dir/core/planner.cpp.o" "gcc" "src/CMakeFiles/fourindex.dir/core/planner.cpp.o.d"
  "/root/repo/src/core/problem.cpp" "src/CMakeFiles/fourindex.dir/core/problem.cpp.o" "gcc" "src/CMakeFiles/fourindex.dir/core/problem.cpp.o.d"
  "/root/repo/src/core/schedules_antisym.cpp" "src/CMakeFiles/fourindex.dir/core/schedules_antisym.cpp.o" "gcc" "src/CMakeFiles/fourindex.dir/core/schedules_antisym.cpp.o.d"
  "/root/repo/src/core/schedules_par.cpp" "src/CMakeFiles/fourindex.dir/core/schedules_par.cpp.o" "gcc" "src/CMakeFiles/fourindex.dir/core/schedules_par.cpp.o.d"
  "/root/repo/src/core/schedules_seq.cpp" "src/CMakeFiles/fourindex.dir/core/schedules_seq.cpp.o" "gcc" "src/CMakeFiles/fourindex.dir/core/schedules_seq.cpp.o.d"
  "/root/repo/src/core/transform.cpp" "src/CMakeFiles/fourindex.dir/core/transform.cpp.o" "gcc" "src/CMakeFiles/fourindex.dir/core/transform.cpp.o.d"
  "/root/repo/src/ga/global_array.cpp" "src/CMakeFiles/fourindex.dir/ga/global_array.cpp.o" "gcc" "src/CMakeFiles/fourindex.dir/ga/global_array.cpp.o.d"
  "/root/repo/src/pebble/cdag.cpp" "src/CMakeFiles/fourindex.dir/pebble/cdag.cpp.o" "gcc" "src/CMakeFiles/fourindex.dir/pebble/cdag.cpp.o.d"
  "/root/repo/src/pebble/pebble_game.cpp" "src/CMakeFiles/fourindex.dir/pebble/pebble_game.cpp.o" "gcc" "src/CMakeFiles/fourindex.dir/pebble/pebble_game.cpp.o.d"
  "/root/repo/src/runtime/cluster.cpp" "src/CMakeFiles/fourindex.dir/runtime/cluster.cpp.o" "gcc" "src/CMakeFiles/fourindex.dir/runtime/cluster.cpp.o.d"
  "/root/repo/src/runtime/machine.cpp" "src/CMakeFiles/fourindex.dir/runtime/machine.cpp.o" "gcc" "src/CMakeFiles/fourindex.dir/runtime/machine.cpp.o.d"
  "/root/repo/src/tensor/antisym.cpp" "src/CMakeFiles/fourindex.dir/tensor/antisym.cpp.o" "gcc" "src/CMakeFiles/fourindex.dir/tensor/antisym.cpp.o.d"
  "/root/repo/src/tensor/irreps.cpp" "src/CMakeFiles/fourindex.dir/tensor/irreps.cpp.o" "gcc" "src/CMakeFiles/fourindex.dir/tensor/irreps.cpp.o.d"
  "/root/repo/src/tensor/packed.cpp" "src/CMakeFiles/fourindex.dir/tensor/packed.cpp.o" "gcc" "src/CMakeFiles/fourindex.dir/tensor/packed.cpp.o.d"
  "/root/repo/src/tensor/pairs.cpp" "src/CMakeFiles/fourindex.dir/tensor/pairs.cpp.o" "gcc" "src/CMakeFiles/fourindex.dir/tensor/pairs.cpp.o.d"
  "/root/repo/src/trace/kernels.cpp" "src/CMakeFiles/fourindex.dir/trace/kernels.cpp.o" "gcc" "src/CMakeFiles/fourindex.dir/trace/kernels.cpp.o.d"
  "/root/repo/src/trace/memory_sim.cpp" "src/CMakeFiles/fourindex.dir/trace/memory_sim.cpp.o" "gcc" "src/CMakeFiles/fourindex.dir/trace/memory_sim.cpp.o.d"
  "/root/repo/src/util/args.cpp" "src/CMakeFiles/fourindex.dir/util/args.cpp.o" "gcc" "src/CMakeFiles/fourindex.dir/util/args.cpp.o.d"
  "/root/repo/src/util/error.cpp" "src/CMakeFiles/fourindex.dir/util/error.cpp.o" "gcc" "src/CMakeFiles/fourindex.dir/util/error.cpp.o.d"
  "/root/repo/src/util/format.cpp" "src/CMakeFiles/fourindex.dir/util/format.cpp.o" "gcc" "src/CMakeFiles/fourindex.dir/util/format.cpp.o.d"
  "/root/repo/src/util/logging.cpp" "src/CMakeFiles/fourindex.dir/util/logging.cpp.o" "gcc" "src/CMakeFiles/fourindex.dir/util/logging.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
