file(REMOVE_RECURSE
  "libfourindex.a"
)
