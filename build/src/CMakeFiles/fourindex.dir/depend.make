# Empty dependencies file for fourindex.
# This may be replaced when dependencies are built.
