file(REMOVE_RECURSE
  "CMakeFiles/test_antisym.dir/test_antisym.cpp.o"
  "CMakeFiles/test_antisym.dir/test_antisym.cpp.o.d"
  "test_antisym"
  "test_antisym.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_antisym.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
