# Empty dependencies file for test_antisym.
# This may be replaced when dependencies are built.
