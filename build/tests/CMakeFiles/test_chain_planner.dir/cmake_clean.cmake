file(REMOVE_RECURSE
  "CMakeFiles/test_chain_planner.dir/test_chain_planner.cpp.o"
  "CMakeFiles/test_chain_planner.dir/test_chain_planner.cpp.o.d"
  "test_chain_planner"
  "test_chain_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chain_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
