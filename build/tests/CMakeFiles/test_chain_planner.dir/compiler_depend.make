# Empty compiler generated dependencies file for test_chain_planner.
# This may be replaced when dependencies are built.
