# Empty dependencies file for test_chem.
# This may be replaced when dependencies are built.
