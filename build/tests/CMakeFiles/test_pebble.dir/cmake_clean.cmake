file(REMOVE_RECURSE
  "CMakeFiles/test_pebble.dir/test_pebble.cpp.o"
  "CMakeFiles/test_pebble.dir/test_pebble.cpp.o.d"
  "test_pebble"
  "test_pebble.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pebble.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
