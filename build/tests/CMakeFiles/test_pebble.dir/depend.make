# Empty dependencies file for test_pebble.
# This may be replaced when dependencies are built.
