file(REMOVE_RECURSE
  "CMakeFiles/test_runtime_ga.dir/test_runtime_ga.cpp.o"
  "CMakeFiles/test_runtime_ga.dir/test_runtime_ga.cpp.o.d"
  "test_runtime_ga"
  "test_runtime_ga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_runtime_ga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
