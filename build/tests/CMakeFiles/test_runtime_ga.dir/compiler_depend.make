# Empty compiler generated dependencies file for test_runtime_ga.
# This may be replaced when dependencies are built.
