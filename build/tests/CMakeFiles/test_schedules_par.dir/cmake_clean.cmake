file(REMOVE_RECURSE
  "CMakeFiles/test_schedules_par.dir/test_schedules_par.cpp.o"
  "CMakeFiles/test_schedules_par.dir/test_schedules_par.cpp.o.d"
  "test_schedules_par"
  "test_schedules_par.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_schedules_par.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
