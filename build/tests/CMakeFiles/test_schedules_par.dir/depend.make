# Empty dependencies file for test_schedules_par.
# This may be replaced when dependencies are built.
