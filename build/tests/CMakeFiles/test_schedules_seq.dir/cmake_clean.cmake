file(REMOVE_RECURSE
  "CMakeFiles/test_schedules_seq.dir/test_schedules_seq.cpp.o"
  "CMakeFiles/test_schedules_seq.dir/test_schedules_seq.cpp.o.d"
  "test_schedules_seq"
  "test_schedules_seq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_schedules_seq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
