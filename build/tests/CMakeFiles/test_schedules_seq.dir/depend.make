# Empty dependencies file for test_schedules_seq.
# This may be replaced when dependencies are built.
