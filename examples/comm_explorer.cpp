// Communication-volume explorer: how the three distributed schedules
// trade global memory against bytes moved, across cluster sizes.
//
// This is the Sec. 7.2 story made tangible: the fused-inner schedule
// (Listing 10) eliminates the distributed O1/O3 traffic, so its byte
// count sits well below the plain fused schedule (Listing 8), while
// the unfused schedule moves the most but performs the fewest flops.
//
//   ./comm_explorer [--n=64] [--s=8] [--tile=8] [--tile-l=4]
#include <cstdlib>
#include <iostream>

#include "chem/molecule.hpp"
#include "core/problem.hpp"
#include "core/schedules_par.hpp"
#include "runtime/cluster.hpp"
#include "runtime/machine.hpp"
#include "util/args.hpp"
#include "util/format.hpp"

int main(int argc, char** argv) {
  using namespace fit;
  Args args(argc, argv);
  const auto n = static_cast<std::size_t>(args.get_int("n", 64));
  const auto s = static_cast<unsigned>(args.get_int("s", 8));
  const auto tile = static_cast<std::size_t>(args.get_int("tile", 8));
  const auto tile_l = static_cast<std::size_t>(args.get_int("tile-l", 4));
  auto problem = core::make_problem(chem::custom_molecule("explore", n, s));

  std::cout << "communication explorer: n=" << n << ", s=" << s << "\n\n";

  for (std::size_t nodes : {4u, 16u}) {
    runtime::MachineConfig m;
    m.name = std::to_string(nodes) + " nodes";
    m.n_nodes = nodes;
    m.ranks_per_node = 4;
    m.mem_per_node_bytes = 4e9;
    runtime::Cluster dummy(m, runtime::ExecutionMode::Simulate);

    TextTable t({"schedule", "remote bytes", "local bytes", "peak global",
                 "flops", "sim time (s)", "imbalance"});
    struct Entry {
      const char* name;
      core::ParResult (*fn)(const core::Problem&, runtime::Cluster&,
                            const core::ParOptions&);
    };
    const Entry entries[] = {
        {"unfused (Listing 4)", &core::unfused_par_transform},
        {"fused (Listing 8)", &core::fused_par_transform},
        {"fused-inner (Listing 10)", &core::fused_inner_par_transform},
    };
    for (const auto& e : entries) {
      core::ParOptions o;
      o.tile = tile;
      o.tile_l = tile_l;
      o.gather_result = false;
      runtime::Cluster cl(m, runtime::ExecutionMode::Simulate);
      auto r = e.fn(problem, cl, o);
      t.add_row({e.name, human_bytes(r.stats.remote_bytes),
                 human_bytes(r.stats.local_bytes),
                 human_bytes(r.stats.peak_global_bytes),
                 human_count(r.stats.flops),
                 fmt_fixed(r.stats.sim_time, 4),
                 fmt_fixed(r.stats.worst_imbalance, 2)});
    }
    t.print("schedule comparison on " + m.name + " (" +
            std::to_string(m.n_ranks()) + " ranks)");
    std::cout << "\n";
  }
  return 0;
}
