// The lower-bounds methodology as a tool: plan fusion for arbitrary
// contraction chains, not just the four-index transform.
//
// Given a chain of tensor sizes and a fast-memory budget, the planner
// finds the I/O-minimal grouping by dynamic programming over the
// Fusion Lemma bounds — the generalization of the paper's Sec. 5.3
// analysis. With no arguments it reproduces the paper's three regimes
// for the Hyperpolar-sized transform.
//
//   ./fusion_planner                      # four-index demo, 3 regimes
//   ./fusion_planner S t0 t1 t2 ... tm    # custom chain, memory S
#include <cstdlib>
#include <iostream>
#include <vector>

#include "bounds/chain_planner.hpp"
#include "tensor/packed.hpp"
#include "util/format.hpp"

namespace {

void print_plan(const fit::bounds::ChainSpec& spec, double s,
                const std::string& title) {
  using namespace fit;
  try {
    auto plan = bounds::plan_chain(spec, s);
    TextTable t({"group", "ops", "group I/O"});
    for (std::size_t g = 0; g < plan.groups.size(); ++g) {
      const auto& grp = plan.groups[g];
      std::string ops;
      for (std::size_t op = grp.lo; op <= grp.hi; ++op)
        ops += "op" + std::to_string(op + 1);
      t.add_row({std::to_string(g + 1), ops, human_count(grp.io)});
    }
    t.print(title + " (S = " + human_count(s) + " elements, total I/O " +
            human_count(plan.total_io) + ")");
  } catch (const Error& e) {
    std::cout << title << ": infeasible — " << e.what() << "\n";
  }
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fit;
  if (argc >= 4) {
    const double s = std::strtod(argv[1], nullptr);
    bounds::ChainSpec spec;
    for (int i = 2; i < argc; ++i)
      spec.tensor_sizes.push_back(std::strtod(argv[i], nullptr));
    // Generic capacity rule: Theorem 6.1-style min-tensor live set.
    std::vector<double> sizes = spec.tensor_sizes;
    spec.capacity_need = [sizes](std::size_t lo, std::size_t hi) {
      if (hi == lo) return 0.0;
      double min_t = sizes[lo];
      for (std::size_t k = lo; k <= hi + 1; ++k)
        min_t = std::min(min_t, sizes[k]);
      return min_t;
    };
    print_plan(spec, s, "custom chain");
    return 0;
  }

  const double n = 368, s_sym = 8;  // Hyperpolar at paper scale
  auto spec = bounds::four_index_chain(n, s_sym);
  const auto sz = tensor::approx_sizes(n, s_sym);
  std::cout << "four-index transform, n = " << n << ", s = " << s_sym
            << " (|A| = " << human_count(sz.a)
            << ", |C| = " << human_count(sz.c) << ")\n\n";
  print_plan(spec, 2 * n * n, "regime 1: S < 3n^2 — fusion useless");
  print_plan(spec, 4 * n * n, "regime 2: 3n^2 <= S < |C| — op12/34");
  print_plan(spec, sz.c + 3 * n * n * n,
             "regime 3: S >= |C| — full fusion (Theorem 6.2)");
  return 0;
}
