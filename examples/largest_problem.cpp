// The paper's headline capability, interactively: given a cluster,
// what is the largest four-index transform it can run in memory?
//
// Prints the lower-bounds-guided fusion plan, the maximum problem
// sizes with and without fusion (Sec. 7.1), and then demonstrates the
// boundary by executing (in Simulate mode) a problem that only the
// fused schedule can hold — the miniature version of running the
// "12 TB" Shell-Mixed transform on a sub-9-TB System B.
//
//   ./largest_problem [nodes] [mem_per_node_GB(unscaled)]
#include <cstdlib>
#include <iostream>

#include "chem/molecule.hpp"
#include "core/planner.hpp"
#include "core/problem.hpp"
#include "core/schedules_baseline.hpp"
#include "core/schedules_par.hpp"
#include "runtime/machine.hpp"
#include "util/format.hpp"

int main(int argc, char** argv) {
  using namespace fit;
  const std::size_t nodes =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 18;
  const double gb = argc > 2 ? std::strtod(argv[2], nullptr) : 512.0;

  auto machine = runtime::system_b(nodes);
  machine.mem_per_node_bytes = gb * 1e9 / 4096.0;  // scaled, see DESIGN.md
  std::cout << "cluster: " << nodes << " nodes x " << gb
            << " GB (paper scale) = "
            << human_bytes(machine.aggregate_memory_bytes() * 4096)
            << " aggregate; simulated at 1/4096 = "
            << human_bytes(machine.aggregate_memory_bytes()) << "\n\n";

  auto mol = chem::paper_molecule("Shell-Mixed");
  auto problem = core::make_problem(mol);
  auto plan = core::plan_for_cluster(problem, machine, 4);

  std::cout << "unfused transform needs "
            << human_bytes(plan.aggregate_need_unfused_bytes)
            << ", fused needs "
            << human_bytes(plan.aggregate_need_fused_bytes) << "\n"
            << "largest n (unfused): " << plan.max_n_unfused
            << ", largest n (fused): " << plan.max_n_fused << "\n"
            << "decision: " << (plan.use_fused_outer ? "FUSE" : "unfused")
            << "\n\n";

  std::cout << core::to_string(core::plan_fusion(
      double(problem.n()), double(problem.irreps.order()),
      machine.aggregate_memory_bytes() / 8.0)) << "\n";

  core::ParOptions opt;
  opt.tile = 8;
  opt.tile_l = 4;
  opt.gather_result = false;

  std::cout << "attempting the NWChem-style unfused transform of "
            << mol.name << " (n=" << mol.n_orbitals << " scaled)...\n";
  try {
    runtime::Cluster cl(machine, runtime::ExecutionMode::Simulate);
    auto r = core::nwchem_unfused_par_transform(problem, cl, opt);
    std::cout << "  ran in " << fmt_fixed(r.stats.sim_time, 3)
              << " s (simulated)\n";
  } catch (const OutOfMemoryError& e) {
    std::cout << "  FAILED: " << e.what() << "\n";
  }

  std::cout << "attempting the fused (Listing 8/10) transform...\n";
  try {
    runtime::Cluster cl(machine, runtime::ExecutionMode::Simulate);
    auto r = core::fused_inner_par_transform(problem, cl, opt);
    std::cout << "  ran in " << fmt_fixed(r.stats.sim_time, 3)
              << " s (simulated), peak global memory "
              << human_bytes(r.stats.peak_global_bytes) << "\n";
  } catch (const OutOfMemoryError& e) {
    std::cout << "  FAILED: " << e.what() << "\n";
  }
  return 0;
}
