// MP2 correlation energy on a simulated cluster — the workload the
// paper's introduction motivates: transform the AO integrals to the MO
// basis, then feed the correlated method.
//
// Runs the distributed hybrid transform in Real mode on a small
// simulated cluster, verifies the distributed result against the
// sequential reference, and evaluates the MP2-style energy.
//
//   ./mp2_energy [n_orbitals] [nodes] [ranks_per_node]
#include <cstdlib>
#include <iostream>

#include "chem/molecule.hpp"
#include "chem/mp2.hpp"
#include "core/problem.hpp"
#include "core/schedules_seq.hpp"
#include "core/transform.hpp"
#include "runtime/machine.hpp"
#include "util/format.hpp"

int main(int argc, char** argv) {
  using namespace fit;
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 20;
  const std::size_t nodes =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 2;
  const std::size_t rpn = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 4;

  auto mol = chem::custom_molecule("mp2-demo", n, 4);
  auto problem = core::make_problem(mol);

  runtime::MachineConfig machine;
  machine.name = "demo-cluster";
  machine.n_nodes = nodes;
  machine.ranks_per_node = rpn;
  machine.mem_per_node_bytes = 256e6;
  runtime::Cluster cluster(machine, runtime::ExecutionMode::Real);

  std::cout << "MP2 demo: n=" << n << " orbitals (" << mol.n_occupied
            << " occupied), " << machine.n_ranks()
            << " simulated ranks\n\n";

  core::TransformOptions opt;
  opt.schedule = core::Schedule::Hybrid;
  opt.par.tile = std::max<std::size_t>(2, n / 5);
  opt.par.tile_l = 4;
  auto result = core::four_index_transform(problem, opt, &cluster);

  std::cout << "schedule chosen:   " << result.par.schedule << "\n"
            << "simulated time:    " << fmt_fixed(result.par.sim_time, 4)
            << " s\n"
            << "remote traffic:    "
            << human_bytes(result.par.remote_bytes) << "\n"
            << "peak global mem:   "
            << human_bytes(result.par.peak_global_bytes) << "\n"
            << "flops:             " << human_count(result.par.flops)
            << "\n\n";

  auto reference = core::reference_transform(problem);
  const double diff = result.c->max_abs_diff(reference);
  std::cout << "max |C_dist - C_ref| = " << fmt_sci(diff, 2) << "\n";

  auto eps = chem::synthetic_orbital_energies(mol.n_orbitals, mol.n_occupied);
  const double e_dist = chem::mp2_energy(*result.c, mol.n_occupied, eps);
  const double e_ref = chem::mp2_energy(reference, mol.n_occupied, eps);
  std::cout << "E_MP2 (distributed) = " << fmt_fixed(e_dist, 8) << "\n"
            << "E_MP2 (reference)   = " << fmt_fixed(e_ref, 8) << "\n";
  return diff < 1e-8 ? 0 : 1;
}
