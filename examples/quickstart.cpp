// Quickstart: run the four-index integral transform on a small
// synthetic molecule with two schedules, verify they agree, and feed
// the result to an MP2-style consumer.
//
//   ./quickstart [n_orbitals] [irrep_order]
#include <cstdlib>
#include <iostream>

#include "chem/molecule.hpp"
#include "chem/mp2.hpp"
#include "core/problem.hpp"
#include "core/schedules_seq.hpp"
#include "obs/metrics.hpp"
#include "util/format.hpp"

int main(int argc, char** argv) {
  using namespace fit;
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 24;
  const unsigned s = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 4;

  std::cout << "fourindex quickstart: n=" << n << " orbitals, spatial group "
            << "order s=" << s << "\n\n";

  auto mol = chem::custom_molecule("quickstart", n, s);
  auto problem = core::make_problem(mol);
  const auto sizes = problem.sizes();

  TextTable t({"tensor", "stored elements", "bytes"});
  t.add_row({"A [ij,kl]", human_count(double(sizes.a)),
             human_bytes(8.0 * double(sizes.a))});
  t.add_row({"O1 [a,j,kl]", human_count(double(sizes.o1)),
             human_bytes(8.0 * double(sizes.o1))});
  t.add_row({"O2 [ab,kl]", human_count(double(sizes.o2)),
             human_bytes(8.0 * double(sizes.o2))});
  t.add_row({"O3 [ab,c,l]", human_count(double(sizes.o3)),
             human_bytes(8.0 * double(sizes.o3))});
  t.add_row({"C [ab,cd]", human_count(double(sizes.c)),
             human_bytes(8.0 * double(sizes.c))});
  t.print("packed tensor sizes (paper Table 1)");
  std::cout << "\n";

  core::SeqStats unfused_stats, fused_stats;
  auto c_unfused = core::unfused_transform(problem, &unfused_stats);
  auto c_fused = core::fused1234_transform(problem, &fused_stats);

  TextTable r({"schedule", "flops", "peak words", "wall (s)"});
  r.add_row({"unfused (Listing 1)", human_count(unfused_stats.flops),
             human_count(double(unfused_stats.peak_words)),
             fmt_fixed(unfused_stats.wall_seconds, 3)});
  r.add_row({"fused op1234 (Listing 7)", human_count(fused_stats.flops),
             human_count(double(fused_stats.peak_words)),
             fmt_fixed(fused_stats.wall_seconds, 3)});
  r.print("schedule comparison");

  const double diff = c_fused.max_abs_diff(c_unfused);
  std::cout << "\nmax |C_fused - C_unfused| = " << fmt_sci(diff, 2) << "\n";
  std::cout << "flop ratio fused/unfused  = "
            << fmt_fixed(fused_stats.flops / unfused_stats.flops, 2)
            << "  (paper predicts ~1.5 from k/l symmetry breaking)\n";

  auto eps = chem::synthetic_orbital_energies(mol.n_orbitals, mol.n_occupied);
  const double e2 = chem::mp2_energy(c_fused, mol.n_occupied, eps);
  std::cout << "MP2-style correlation energy: " << fmt_fixed(e2, 6) << "\n";

  // The observability registry the runtime layers share, fed here from
  // the sequential stats; dump it as JSON (the same form the bench
  // documents embed).
  obs::MetricsRegistry registry(1);
  unfused_stats.publish(registry, "unfused");
  fused_stats.publish(registry, "fused1234");
  std::cout << "\nmetrics registry snapshot:\n"
            << registry.to_json(false).dump(2) << "\n";
  return diff < 1e-8 ? 0 : 1;
}
