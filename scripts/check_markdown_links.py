#!/usr/bin/env python3
"""Check relative links and intra-document anchors in markdown files.

Usage: check_markdown_links.py FILE.md [FILE.md ...]

Validates, for every inline markdown link [text](target):
  * relative file targets exist on disk (resolved against the linking
    file's directory), including the file part of `path#anchor`;
  * intra-document anchors (`#section-name`) match a heading in the
    same file, using GitHub's anchor-generation rules (lowercase,
    spaces to hyphens, punctuation stripped, -1/-2 suffixes for
    duplicates);
  * anchors into other local files match a heading there.

External links (http/https/mailto) are reported but not fetched — the
checker must work offline. Exit status is the number of broken links.
"""

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"(?<!\!)\[([^\]]*)\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
IMAGE_RE = re.compile(r"\!\[([^\]]*)\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def github_anchor(heading: str, seen: dict) -> str:
    """GitHub's heading -> anchor id transformation."""
    # Strip inline code/emphasis markers and links, keep their text.
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)
    text = re.sub(r"[`*_]", "", text)
    anchor = text.strip().lower()
    anchor = re.sub(r"[^\w\- ]", "", anchor)
    anchor = anchor.replace(" ", "-")
    n = seen.get(anchor, 0)
    seen[anchor] = n + 1
    return anchor if n == 0 else f"{anchor}-{n}"


def anchors_of(path: Path) -> set:
    seen: dict = {}
    anchors = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = HEADING_RE.match(line)
        if m:
            anchors.add(github_anchor(m.group(2), seen))
    return anchors


def links_of(path: Path):
    """Yield (line_number, target) for every non-image inline link."""
    in_fence = False
    for i, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for m in LINK_RE.finditer(line):
            yield i, m.group(2)
        for m in IMAGE_RE.finditer(line):
            yield i, m.group(2)


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip())
        return 2

    files = [Path(a) for a in argv[1:]]
    repo_root = Path.cwd().resolve()
    anchor_cache = {}

    def cached_anchors(p: Path) -> set:
        key = p.resolve()
        if key not in anchor_cache:
            anchor_cache[key] = anchors_of(p)
        return anchor_cache[key]

    broken = 0
    checked = 0
    external = 0
    for md in files:
        if not md.is_file():
            print(f"{md}: file not found")
            broken += 1
            continue
        for line_no, target in links_of(md):
            checked += 1
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:, ...
                external += 1
                continue
            if target.startswith("#"):
                if target[1:].lower() not in cached_anchors(md):
                    print(f"{md}:{line_no}: broken anchor {target}")
                    broken += 1
                continue
            file_part, _, anchor = target.partition("#")
            dest = (md.parent / file_part).resolve()
            if not dest.is_relative_to(repo_root):
                # Climbs above the repo: a site-relative URL (e.g. the
                # ../../actions/... CI badge), not a file.
                external += 1
                continue
            if not dest.exists():
                print(f"{md}:{line_no}: missing file {target}")
                broken += 1
                continue
            if anchor and dest.suffix.lower() in (".md", ".markdown"):
                if anchor.lower() not in cached_anchors(dest):
                    print(f"{md}:{line_no}: broken anchor {target}")
                    broken += 1

    print(f"checked {checked} links in {len(files)} files "
          f"({external} external, {broken} broken)")
    return min(broken, 125)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
