#!/usr/bin/env bash
# Execute the serving documentation examples, verbatim.
#
# The README "Serving" section and DESIGN.md §4.8 embed fenced example
# blocks under a contract: every ```sh block is a self-contained shell
# session runnable from the repository root, and every ```json block is
# a sequence of NDJSON request lines (with `# comment` lines, which the
# --client pipe mode skips). This script extracts those blocks and runs
# them — each json block against a fresh server on a scratch socket —
# so a documentation example that drifts from the wire protocol fails
# CI instead of rotting. tests/test_serve.cpp runs the same json blocks
# through the in-process service; this script is the over-the-socket
# leg.
#
# Usage: scripts/docs_examples.sh <path-to-fourindex-serve> [scratch-dir]
set -euo pipefail

BIN=${1:?usage: docs_examples.sh <fourindex-serve binary> [scratch-dir]}
SCRATCH=${2:-$(mktemp -d /tmp/fourindex-docs.XXXXXX)}
mkdir -p "$SCRATCH"

# extract_blocks FILE SECTION_REGEX END_REGEX LANG
#   Print the fenced LANG blocks between the heading matching
#   SECTION_REGEX and the next heading matching END_REGEX, with each
#   block terminated by a \x01 line so callers can split them apart.
extract_blocks() {
  awk -v sec="$2" -v end="$3" -v lang="$4" '
    $0 ~ sec { insec = 1; next }
    insec && $0 ~ end { insec = 0 }
    insec && $0 == "```" lang { inblock = 1; next }
    inblock && $0 == "```" { inblock = 0; printf "\x01\n"; next }
    inblock { print }
  ' "$1"
}

# run_json_blocks NAME BLOCKS
#   For each \x01-separated block: fresh server, pipe the block (plus a
#   harness shutdown) through --client, require every response line to
#   carry an outcome that is not "error".
run_json_blocks() {
  local name=$1 blocks=$2 i=0 block
  while IFS= read -r -d $'\x01' block; do
    # Skip whitespace-only fragments between terminators.
    [ -n "$(printf '%s' "$block" | tr -d '[:space:]\n')" ] || continue
    i=$((i + 1))
    local sock="$SCRATCH/$name-$i.sock"
    rm -f "$sock"
    FOURINDEX_BENCH_JSON_DIR="$SCRATCH" "$BIN" --socket "$sock" &
    local pid=$!
    for _ in $(seq 50); do
      [ -S "$sock" ] && break
      sleep 0.1
    done
    [ -S "$sock" ] || { echo "server never bound $sock"; exit 1; }

    local out="$SCRATCH/$name-$i.out"
    { printf '%s\n' "$block"; echo '{"verb":"shutdown"}'; } \
      | "$BIN" --socket "$sock" --client > "$out"
    wait "$pid"

    local lines requests
    lines=$(grep -c . "$out" || true)
    requests=$(printf '%s\n' "$block" | grep -c '^{' || true)
    [ "$lines" -eq $((requests + 1)) ] \
      || { echo "$name block $i: sent $requests requests (+shutdown)," \
                "got $lines responses:"; cat "$out"; exit 1; }
    # Every line must parse as JSON and none may be an error response
    # (verbs like stats legitimately return documents with no outcome).
    jq -es 'all(.outcome != "error")' "$out" > /dev/null \
      || { echo "$name block $i: a documented request errored:";
           cat "$out"; exit 1; }
    echo "docs-examples: $name json block $i ok ($requests requests)"
  done <<<"$blocks"
}

# 1. The README shell session: runs as written, from the repo root.
sh_blocks=$(extract_blocks README.md '^## Serving$' '^## ' sh)
i=0
while IFS= read -r -d $'\x01' block; do
  [ -n "$(printf '%s' "$block" | tr -d '[:space:]\n')" ] || continue
  i=$((i + 1))
  out="$SCRATCH/readme-sh-$i.out"
  FOURINDEX_BENCH_JSON_DIR="$SCRATCH" bash -eu -o pipefail \
    <(printf '%s\n' "$block") > "$out" \
    || { echo "README sh block $i failed:"; cat "$out"; exit 1; }
  grep -q '"outcome"' "$out" \
    || { echo "README sh block $i produced no responses:"; cat "$out";
         exit 1; }
  grep -q '"outcome":"error"' "$out" \
    && { echo "README sh block $i: a documented request errored:";
         cat "$out"; exit 1; }
  echo "docs-examples: README sh block $i ok"
done <<<"$sh_blocks"
[ "$i" -ge 1 ] || { echo "no sh examples found in README Serving"; exit 1; }

# 2. The README and DESIGN request-line examples, over the socket.
readme_json=$(extract_blocks README.md '^## Serving$' '^## ' json)
design_json=$(extract_blocks DESIGN.md '^### 4\.8 ' '^## ' json)
[ -n "$readme_json" ] || { echo "no json examples in README Serving"; exit 1; }
[ -n "$design_json" ] || { echo "no json examples in DESIGN §4.8"; exit 1; }
run_json_blocks readme "$readme_json"
run_json_blocks design "$design_json"

echo "docs-examples: every documented example executed cleanly"
