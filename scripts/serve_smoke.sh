#!/usr/bin/env bash
# Smoke-drive the persistent transform service end to end over its Unix
# socket: start fourindex-serve, walk one request through each admission
# verdict (admitted / degraded / rejected), prove the schedule cache
# replays a repeated request bit-identically, and shut the server down
# so it emits its serve.* bench JSON for the CI gate.
#
# Usage: scripts/serve_smoke.sh <path-to-fourindex-serve> [json-dir]
set -euo pipefail

BIN=${1:?usage: serve_smoke.sh <fourindex-serve binary> [json-dir]}
JSON_DIR=${2:-serve-json}
SOCK=${FOURINDEX_SERVE_SOCKET:-/tmp/fourindex-serve-smoke.$$.sock}

mkdir -p "$JSON_DIR"
rm -f "$SOCK"

FOURINDEX_BENCH_JSON_DIR="$JSON_DIR" "$BIN" --socket "$SOCK" &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true; rm -f "$SOCK"' EXIT

for _ in $(seq 50); do
  [ -S "$SOCK" ] && break
  sleep 0.1
done
[ -S "$SOCK" ] || { echo "server never bound $SOCK"; exit 1; }

ask() { "$BIN" --socket "$SOCK" --request "$1"; }
expect() { # expect <outcome> <response-json>
  local got
  got=$(jq -r '.outcome' <<<"$2")
  [ "$got" = "$1" ] || { echo "expected outcome '$1', got: $2"; exit 1; }
}

# 1. Admitted: Hyperpolar fits 4 idle SystemA nodes at full fusion.
#    plan_only holds the reservation so later requests see less memory.
R1=$(ask '{"molecule":"Hyperpolar","nodes":4,"plan_only":true}')
expect admitted "$R1"
TICKET=$(jq -r '.ticket' <<<"$R1")

# 2. Degraded: keep reserving until the Thm 5.2 ladder walks down a
#    level. The op1234 footprint is a big bite of the 4-node aggregate,
#    so this happens within a handful of identical reservations.
DEGRADED=
LOOP_TICKETS=()
for _ in $(seq 64); do
  R=$(ask '{"molecule":"Hyperpolar","nodes":4,"plan_only":true}')
  LOOP_TICKETS+=("$(jq -r '.ticket' <<<"$R")")
  if [ "$(jq -r '.outcome' <<<"$R")" = degraded ]; then DEGRADED=1; break; fi
  expect admitted "$R"
done
[ -n "$DEGRADED" ] || { echo "never saw a degraded admission"; exit 1; }

# 3. Rejected: a problem whose unfused footprint exceeds even an idle
#    single SystemA node.
expect rejected "$(ask '{"molecule":"custom","n":1024,"nodes":1,"plan_only":true}')"

# Drop the reservations the degraded walk piled up (keeping the first
# hold for step 5) so the cache test below sees a mostly idle machine
# instead of being queued behind ~20 MB of plan_only holds.
for t in "${LOOP_TICKETS[@]}"; do
  "$BIN" --socket "$SOCK" --request "{\"verb\":\"release\",\"ticket\":$t}" \
    | jq -e '.outcome == "released"' > /dev/null
done

# 4. Schedule cache: a repeated Real-mode request must hit the cache
#    and reproduce the cold run's checksum bit for bit.
REQ='{"molecule":"custom","n":12,"irrep_order":2,"nodes":1,"real":true}'
COLD=$(ask "$REQ")
WARM=$(ask "$REQ")
expect admitted "$COLD"
expect admitted "$WARM"
jq -e '.cache_hit == true' <<<"$WARM" > /dev/null \
  || { echo "repeated request missed the schedule cache: $WARM"; exit 1; }
CK_COLD=$(jq -r '.result_checksum' <<<"$COLD")
CK_WARM=$(jq -r '.result_checksum' <<<"$WARM")
[ "$CK_COLD" = "$CK_WARM" ] && [ "$CK_COLD" != 0 ] \
  || { echo "cache replay is not bit-identical: $CK_COLD vs $CK_WARM"; exit 1; }

# 5. Release the first hold; the stats verb must expose the serve.*
#    registry as JSON.
"$BIN" --socket "$SOCK" --request "{\"verb\":\"release\",\"ticket\":$TICKET}" \
  | jq -e '.outcome == "released"' > /dev/null
ask '{"verb":"stats"}' | jq -e '
    .["serve.admitted"].sum >= 1
    and .["serve.degraded"].sum >= 1
    and .["serve.rejected"].sum >= 1
    and .["serve.cache_hits"].sum >= 1
  ' > /dev/null || { echo "stats verb gate failed"; exit 1; }

# 6. Shutdown: the server acknowledges, exits cleanly, and writes its
#    bench JSON.
ask '{"verb":"shutdown"}' | jq -e '.outcome == "shutdown"' > /dev/null
wait "$SERVER_PID"
trap - EXIT
rm -f "$SOCK"

DOC="$JSON_DIR/fourindex_serve.bench.json"
[ -f "$DOC" ] || { echo "server wrote no bench JSON at $DOC"; exit 1; }
jq -e '
    .schema == "fourindex.bench/1"
    and ([.scalars[] | type == "number"] | all)
    and .metrics.serve["serve.admitted"].sum >= 1
    and .metrics.serve["serve.degraded"].sum >= 1
    and .metrics.serve["serve.rejected"].sum >= 1
    and .metrics.serve["serve.cache_hits"].sum >= 1
    and .metrics.serve["serve.des_skips"].sum >= 1
    and .metrics.serve["serve.errors"].sum == 0
  ' "$DOC" > /dev/null \
  || { echo "serve bench JSON gate failed:"; jq . "$DOC"; exit 1; }

echo "serve smoke passed:"
jq '.metrics.serve | with_entries(.value |= .sum)' "$DOC"
