#include "blas/dispatch.hpp"

#include <cstdlib>
#include <mutex>

#include "util/cpuid.hpp"
#include "util/logging.hpp"
#include "util/parse.hpp"

namespace fit::blas {

namespace detail {
// One maker per kernels_<isa>.cpp translation unit.
KernelTable make_table_scalar();
KernelTable make_table_sse2();
KernelTable make_table_avx();
KernelTable make_table_avx2();
}  // namespace detail

namespace {

constexpr const char* kIsaNames[kNumIsaLevels] = {"scalar", "sse2", "avx",
                                                 "avx2"};

}  // namespace

const char* isa_name(IsaLevel level) {
  const int i = static_cast<int>(level);
  return (i >= 0 && i < kNumIsaLevels) ? kIsaNames[i] : "unknown";
}

std::optional<IsaLevel> isa_from_name(std::string_view name) {
  for (int i = 0; i < kNumIsaLevels; ++i)
    if (name == kIsaNames[i]) return static_cast<IsaLevel>(i);
  return std::nullopt;
}

IsaLevel detected_isa() {
  static const IsaLevel level = [] {
    const util::CpuFeatures& f = util::cpu_features();
    if (f.avx2 && f.fma) return IsaLevel::Avx2;
    if (f.avx) return IsaLevel::Avx;
    if (f.sse2) return IsaLevel::Sse2;
#if defined(__GNUC__) || defined(__clang__)
    // Non-x86 GNU-compatible hosts: the narrow compiler-vector kernel
    // is portable (it lowers to NEON on AArch64) and strictly beats
    // the scalar loops, so report it as the widest level.
    return IsaLevel::Sse2;
#else
    return IsaLevel::Scalar;
#endif
  }();
  return level;
}

std::optional<IsaLevel> isa_from_env() {
  const char* env = std::getenv("FOURINDEX_CPU");
  if (!env || env[0] == '\0') return std::nullopt;
  if (auto byname = isa_from_name(env)) return byname;
  // Numeric spelling (strict whole-string parse): 0..3.
  if (auto v = util::parse_int(env);
      v && *v >= 0 && *v < kNumIsaLevels)
    return static_cast<IsaLevel>(*v);
  FIT_LOG_WARN("FOURINDEX_CPU='"
               << env << "' is not an ISA level "
               << "(scalar, sse2, avx, avx2 or 0-3); using detected level '"
               << isa_name(detected_isa()) << "'");
  return std::nullopt;
}

IsaLevel resolve_isa() {
  const IsaLevel detected = detected_isa();
  const auto requested = isa_from_env();
  if (!requested) return detected;
  if (*requested > detected) {
    // Loud, but once: this fires on every autotuned() re-resolution
    // and a per-call warning would swamp the log.
    static std::once_flag warned;
    std::call_once(warned, [&] {
      FIT_LOG_WARN("FOURINDEX_CPU requests '"
                   << isa_name(*requested)
                   << "' but this host only supports '"
                   << isa_name(detected) << "'; clamping to detected level");
    });
    return detected;
  }
  return *requested;
}

const KernelTable& kernel_table_for(IsaLevel level) {
  // All four tables are materialized on first use; resolution happens
  // once and the hot path is a single indexed load.
  static const KernelTable tables[kNumIsaLevels] = {
      detail::make_table_scalar(), detail::make_table_sse2(),
      detail::make_table_avx(), detail::make_table_avx2()};
  int i = static_cast<int>(level);
  if (i < 0 || i >= kNumIsaLevels) i = 0;
  return tables[i];
}

}  // namespace fit::blas
