/// @file
/// Runtime CPU-feature dispatch for the kernel library.
///
/// The GEMM engine used to pick its micro-kernel at compile time
/// (`#if defined(__AVX__)`), so one binary carried exactly one path
/// and a portable build silently ran the narrow kernel on wide hosts.
/// This header replaces that with an rtcd-style (libvpx) table of
/// per-function pointers: every kernel the engine calls through —
/// micro-kernel, packing routines, level-1/level-2 helpers — exists
/// once per ISA level in its own translation unit (compiled with that
/// level's `-m` flags), and a `KernelTable` per level is resolved at
/// startup from a cpuid probe, optionally narrowed by the
/// `FOURINDEX_CPU` environment override.
///
/// Reproducibility contract: every level's kernels accumulate each C
/// element's k-products in the same order, and the kernel translation
/// units are compiled with FP contraction disabled, so all four levels
/// produce bit-identical results. Dispatch changes throughput only,
/// never bits — which is what lets CI force each level in turn and
/// gate on checksum equality.
#pragma once

#include <cstddef>
#include <optional>
#include <string_view>

#include "blas/gemm.hpp"

namespace fit::blas {

/// ISA levels the kernel library is built for, narrowest first. The
/// numeric values order by vector width; "above" means faster. On
/// non-x86 hosts the detector reports at most Sse2 (the generic
/// compiler-vector kernels — they lower to NEON pairs on AArch64).
enum class IsaLevel : int {
  Scalar = 0,  ///< portable C++ loops, no vector types
  Sse2 = 1,    ///< 2-wide double vectors (baseline x86-64 / NEON)
  Avx = 2,     ///< 4-wide double vectors, 256-bit registers
  Avx2 = 3,    ///< AVX2 code generation (FMA deliberately unused)
};

/// Number of IsaLevel values (table count; levels are dense from 0).
inline constexpr int kNumIsaLevels = 4;

/// Lower-case level name ("scalar", "sse2", "avx", "avx2") — the
/// spellings `FOURINDEX_CPU` accepts and metrics/bench JSON report.
const char* isa_name(IsaLevel level);

/// Inverse of isa_name. Returns nullopt for any other spelling
/// (parsing is strict: exact lower-case names only).
std::optional<IsaLevel> isa_from_name(std::string_view name);

/// Widest level the host can execute, from the cpuid/xgetbv probe
/// (util::cpu_features). Cached after the first call; thread-safe.
IsaLevel detected_isa();

/// Requested level from the `FOURINDEX_CPU` environment variable,
/// before clamping: the strict-parsed level name or numeric level
/// (util::parse_int), or nullopt when the variable is unset or does
/// not parse (a set-but-invalid value logs a warning — a misspelled
/// override is surfaced, never guessed at).
std::optional<IsaLevel> isa_from_env();

/// The level gemm actually dispatches to: detected_isa() narrowed by
/// `FOURINDEX_CPU` when set. A request above the detected level clamps
/// to it loudly (one warning per process): requesting avx2 on an
/// SSE2-only host must not execute illegal instructions, but silently
/// ignoring the request would hide a misconfigured fleet rollout.
/// Reads the environment on every call; GemmConfig::autotuned()
/// snapshots it into the active engine config.
IsaLevel resolve_isa();

/// MR x NR panel micro-kernel over packed operands:
/// `acc[MR][NR] += Apanel * Bpanel` with acc row-major (NR stride).
using MicroKernelFn = void (*)(std::size_t kc, const double* a_panel,
                               const double* b_panel, double* acc);

/// Pack an mc x kc block of op(A) starting at (row0, col0) into
/// row-major micro-panels of MR rows (zero-padded to MR).
using PackAFn = void (*)(const double* a, std::size_t lda, Trans trans_a,
                         std::size_t row0, std::size_t col0, std::size_t mc,
                         std::size_t kc, double* buf);

/// Pack a kc x nc block of op(B) starting at (row0, col0) into column
/// micro-panels of NR columns (zero-padded to NR).
using PackBFn = void (*)(const double* b, std::size_t ldb, Trans trans_b,
                         std::size_t row0, std::size_t col0, std::size_t kc,
                         std::size_t nc, double* buf);

/// Contiguous level-1 axpy: y[i] += alpha * x[i].
using AxpyFn = void (*)(std::size_t n, double alpha, const double* x,
                        double* y);

/// Contiguous level-1 dot product (fixed left-to-right accumulation
/// order at every level — the reduction is never re-associated).
using DotFn = double (*)(std::size_t n, const double* x, const double* y);

/// Contiguous level-1 scale: x[i] *= alpha.
using ScalFn = void (*)(std::size_t n, double alpha, double* x);

/// Level-2 gemv, y[m] += alpha * A[m x n] * x[n] (A row-major).
using GemvNFn = void (*)(std::size_t m, std::size_t n, double alpha,
                         const double* a, std::size_t lda, const double* x,
                         double* y);

/// Level-2 transposed gemv, y[n] += alpha * A^T * x[m] (A row-major
/// m x n).
using GemvTFn = void (*)(std::size_t m, std::size_t n, double alpha,
                         const double* a, std::size_t lda, const double* x,
                         double* y);

/// One ISA level's complete kernel set. Each entry is resolved from
/// the translation unit compiled for that level; all entries are
/// always non-null (tables for levels the host cannot run still
/// exist — they are just never selected by resolve_isa()).
struct KernelTable {
  IsaLevel level;            ///< the level this table implements
  MicroKernelFn micro_kernel;///< MR x NR packed-panel kernel
  PackAFn pack_a;            ///< A-side packing routine
  PackBFn pack_b;            ///< B-side packing routine
  AxpyFn axpy;               ///< level-1 y += alpha*x
  DotFn dot;                 ///< level-1 dot product
  ScalFn scal;               ///< level-1 x *= alpha
  GemvNFn gemv_n;            ///< level-2 y += alpha*A*x
  GemvTFn gemv_t;            ///< level-2 y += alpha*A^T*x
};

/// The kernel table for a forced level. Never executes kernel code
/// itself, so it is safe to inspect tables above detected_isa(); only
/// *calling* through such a table on an incapable host is illegal.
/// Ordinary callers should use the level from the active GemmConfig
/// (which resolve_isa() has already clamped).
const KernelTable& kernel_table_for(IsaLevel level);

}  // namespace fit::blas
