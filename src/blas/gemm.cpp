#include "blas/gemm.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "blas/dispatch.hpp"
#include "blas/tune.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace fit::blas {

namespace {

constexpr std::size_t MR = kGemmMR;
constexpr std::size_t NR = kGemmNR;

inline double at(const double* x, std::size_t ld, std::size_t i,
                 std::size_t j, Trans t) {
  return t == Trans::No ? x[i * ld + j] : x[j * ld + i];
}

// Persistent per-thread packing buffers: grown on demand, reused across
// gemm calls (steady state does zero allocations per call). Every lane
// packs through its own thread's buffers, so the k-split driver — which
// runs whole blocked passes on pool threads — needs no extra plumbing.
std::vector<double>& tls_pack_a_buf() {
  thread_local std::vector<double> buf;
  return buf;
}
std::vector<double>& tls_pack_b_buf() {
  thread_local std::vector<double> buf;
  return buf;
}

// Cache-line-aligned view over a grown-on-demand vector: 32-byte
// kernel loads through micro-panels never straddle a line boundary
// (unaligned 256-bit loads that split lines measurably slow the
// micro-kernel down; std::vector only guarantees 16 bytes).
constexpr std::size_t kPackAlignDoubles = 64 / sizeof(double);

double* grown(std::vector<double>& buf, std::size_t n) {
  if (buf.size() < n + kPackAlignDoubles) buf.resize(n + kPackAlignDoubles);
  void* p = buf.data();
  std::size_t space = buf.size() * sizeof(double);
  return static_cast<double*>(std::align(64, n * sizeof(double), p, space));
}

// ---- engine metrics -------------------------------------------------

struct EngineMetrics {
  obs::MetricsRegistry::Id calls;
  obs::MetricsRegistry::Id flops;
  obs::MetricsRegistry::Id pack_bytes;
  obs::MetricsRegistry::Id gflops;
  obs::MetricsRegistry::Id isa;
};

EngineMetrics& engine_metrics() {
  static EngineMetrics m = [] {
    auto& reg = gemm_metrics();
    return EngineMetrics{reg.counter("gemm.calls"), reg.counter("gemm.flops"),
                         reg.counter("gemm.pack_bytes"),
                         reg.gauge("gemm.gflops"), reg.gauge("gemm.isa")};
  }();
  return m;
}

// ---- optional kernel trace ------------------------------------------
//
// When FOURINDEX_TRACE_DIR is set, every blocked gemm call records a
// span (track = calling thread) into a process-global timeline written
// to $FOURINDEX_TRACE_DIR/gemm_kernels.trace.json at exit. Span labels
// carry the dispatched ISA level, so the trace records which kernel
// paths actually ran — not just which binary was built.

struct TraceState {
  bool enabled = false;
  std::string path;
  std::string process_name;
  obs::Timeline timeline;
  std::mutex track_mutex;
  std::size_t next_track = 0;
  std::chrono::steady_clock::time_point t0;
};

TraceState* g_trace = nullptr;

TraceState& trace_state() {
  static std::once_flag once;
  std::call_once(once, [] {
    g_trace = new TraceState;  // leaked: must outlive atexit
    if (const char* dir = std::getenv("FOURINDEX_TRACE_DIR")) {
      if (dir[0] != '\0') {
        g_trace->enabled = true;
        g_trace->path = std::string(dir) + "/gemm_kernels.trace.json";
        g_trace->process_name = std::string("gemm kernels [detected ") +
                                isa_name(detected_isa()) + "]";
        g_trace->t0 = std::chrono::steady_clock::now();
        std::atexit([] {
          g_trace->timeline.write_chrome_trace(g_trace->path,
                                               g_trace->process_name);
        });
      }
    }
  });
  return *g_trace;
}

std::size_t trace_track(TraceState& ts) {
  thread_local std::size_t track = static_cast<std::size_t>(-1);
  if (track == static_cast<std::size_t>(-1)) {
    std::lock_guard<std::mutex> lock(ts.track_mutex);
    track = ts.next_track++;
  }
  return track;
}

double trace_now(TraceState& ts) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       ts.t0)
      .count();
}

std::size_t round_up(std::size_t v, std::size_t unit) {
  return ((v + unit - 1) / unit) * unit;
}

// One blocked pass (jc -> pc -> ic loop nest) over the contraction
// range [k0, k0+klen) of op(A)*op(B), accumulating alpha-scaled
// products into dst (leading dimension ldd, beta already applied by
// the caller). `tasks` lanes split the ic loop; the pc loop stays
// sequential, so each dst element accumulates its k-products in a
// fixed order at any thread count.
struct BlockedPass {
  const KernelTable* kt;
  Trans ta, tb;
  std::size_t m, n;
  double alpha;
  const double* a;
  std::size_t lda;
  const double* b;
  std::size_t ldb;
  std::size_t KC, NC, MC;

  void run(std::size_t k0, std::size_t klen, double* dst, std::size_t ldd,
           std::size_t tasks) const {
    const std::size_t n_ic_blocks = (m + MC - 1) / MC;
    const std::size_t n_tasks = std::max<std::size_t>(
        1, std::min(tasks, n_ic_blocks));
    double* bbuf = grown(tls_pack_b_buf(), KC * NC);
    for (std::size_t jc = 0; jc < n; jc += NC) {
      const std::size_t nc = std::min(NC, n - jc);
      for (std::size_t pc = k0; pc < k0 + klen; pc += KC) {
        const std::size_t kc = std::min(KC, k0 + klen - pc);
        // One packed-B panel per (jc, pc), shared read-only by all
        // lanes.
        kt->pack_b(b, ldb, tb, pc, jc, kc, nc, bbuf);

        auto body = [&](std::size_t task) {
          // Strided ic-block assignment: block sizes are uniform
          // except the last, so a static partition stays balanced.
          for (std::size_t blk = task; blk < n_ic_blocks; blk += n_tasks) {
            const std::size_t ic = blk * MC;
            const std::size_t mc = std::min(MC, m - ic);
            double* abuf = grown(tls_pack_a_buf(), MC * KC);
            kt->pack_a(a, lda, ta, ic, pc, mc, kc, abuf);
            for (std::size_t jr = 0; jr < nc; jr += NR) {
              const std::size_t jb = std::min(NR, nc - jr);
              const double* bp = bbuf + (jr / NR) * kc * NR;
              for (std::size_t ir = 0; ir < mc; ir += MR) {
                const std::size_t ib = std::min(MR, mc - ir);
                const double* ap = abuf + (ir / MR) * kc * MR;
                alignas(64) double acc[MR * NR] = {};
                kt->micro_kernel(kc, ap, bp, acc);
                double* cblk = dst + (ic + ir) * ldd + jc + jr;
                for (std::size_t i = 0; i < ib; ++i)
                  for (std::size_t j = 0; j < jb; ++j)
                    cblk[i * ldd + j] += alpha * acc[i * NR + j];
              }
            }
          }
        };
        if (n_tasks <= 1)
          body(0);
        else
          util::ThreadPool::shared().run_tasks(n_tasks, body);
      }
    }
  }
};

}  // namespace

void gemm_reference(Trans ta, Trans tb, std::size_t m, std::size_t n,
                    std::size_t k, double alpha, const double* a,
                    std::size_t lda, const double* b, std::size_t ldb,
                    double beta, double* c, std::size_t ldc) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p)
        acc += at(a, lda, i, p, ta) * at(b, ldb, p, j, tb);
      c[i * ldc + j] = alpha * acc + beta * c[i * ldc + j];
    }
  }
}

void gemm(Trans ta, Trans tb, std::size_t m, std::size_t n, std::size_t k,
          double alpha, const double* a, std::size_t lda, const double* b,
          std::size_t ldb, double beta, double* c, std::size_t ldc) {
  FIT_REQUIRE(ldc >= n || m == 0, "gemm: ldc too small");
  // op(A) is read as a[i*lda+p] (No) or a[p*lda+i] (Yes); op(B) as
  // b[p*ldb+j] (No) or b[j*ldb+p] (Yes).
  const std::size_t lda_min = (ta == Trans::No) ? k : m;
  const std::size_t ldb_min = (tb == Trans::No) ? n : k;
  FIT_REQUIRE(lda >= lda_min || m == 0 || k == 0,
              "gemm: lda too small for op(A)");
  FIT_REQUIRE(ldb >= ldb_min || n == 0 || k == 0,
              "gemm: ldb too small for op(B)");
  if (m == 0 || n == 0) return;

  const GemmConfig cfg = gemm_config();
  // Determinism mode pins the scalar level through the same dispatch
  // table FOURINDEX_CPU=scalar resolves to — one verified code path,
  // not a parallel compile-time branch.
  const IsaLevel level = cfg.deterministic ? IsaLevel::Scalar : cfg.isa;
  const KernelTable& kt = kernel_table_for(level);

  // Scale C by beta once, up front; beta == 1 skips the pass entirely.
  if (beta == 0.0) {
    for (std::size_t i = 0; i < m; ++i)
      std::fill(c + i * ldc, c + i * ldc + n, 0.0);
  } else if (beta != 1.0) {
    for (std::size_t i = 0; i < m; ++i) kt.scal(n, beta, c + i * ldc);
  }
  if (k == 0 || alpha == 0.0) return;

  auto& em = engine_metrics();
  auto& reg = gemm_metrics();
  reg.add(em.calls, 0, 1.0);
  reg.add(em.flops, 0, gemm_flops(m, n, k));
  reg.set(em.isa, 0, static_cast<double>(level));

  // Small problems: the packing overhead dominates; use the reference
  // loop with alpha folded in (beta already applied).
  if (m * n * k < 32 * 32 * 32) {
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t j = 0; j < n; ++j) {
        double acc = 0.0;
        for (std::size_t p = 0; p < k; ++p)
          acc += at(a, lda, i, p, ta) * at(b, ldb, p, j, tb);
        c[i * ldc + j] += alpha * acc;
      }
    return;
  }

  const std::size_t KC = cfg.kc;
  const std::size_t NC = cfg.nc;
  const std::size_t lanes = std::max<std::size_t>(
      1, std::min({cfg.threads, util::ThreadPool::shared().size(),
                   (m + MR - 1) / MR}));

  // k-split driver selection. The decision depends only on the shape
  // and the blocking (never on the lane count), and each chunk is a
  // contiguous range of whole KC blocks reduced in fixed chunk order —
  // so for a given config, results stay bit-identical across thread
  // counts, exactly like the M-split path.
  const std::size_t kc_blocks = (k + KC - 1) / KC;
  std::size_t ksplit = cfg.ksplit;
  if (ksplit == 0) {
    // Auto: only tall-k shapes whose M extent cannot feed multiple
    // lanes benefit; everything else stays on the M-split path.
    const std::size_t m_blocks = (m + MR - 1) / MR;
    ksplit = (m_blocks < 4 && kc_blocks >= 8) ? 4 : 1;
  }
  ksplit = std::max<std::size_t>(1, std::min(ksplit, kc_blocks));

  TraceState& ts = trace_state();
  const double t_trace0 = ts.enabled ? trace_now(ts) : 0.0;
  const auto t_wall0 = std::chrono::steady_clock::now();

  BlockedPass pass{&kt, ta,  tb,  m,  n, alpha, a,
                   lda, b,   ldb, KC, NC, cfg.mc};

  if (ksplit <= 1) {
    // M-split: lanes divide the ic loop. Shrink MC below the
    // cache-tuned value when needed so every lane gets >= 2 blocks.
    if (lanes > 1) {
      const std::size_t balanced =
          round_up((m + 2 * lanes - 1) / (2 * lanes), MR);
      pass.MC = std::max<std::size_t>(MR, std::min(pass.MC, balanced));
    }
    pass.run(0, k, c, ldc, lanes);
  } else {
    // Parallel reduction over contraction chunks: each chunk runs a
    // full single-lane blocked pass into a private zeroed buffer, and
    // the buffers fold into C sequentially in chunk order.
    const std::size_t blocks_per_chunk = (kc_blocks + ksplit - 1) / ksplit;
    std::vector<double> partials(ksplit * m * n, 0.0);
    const std::size_t n_tasks = std::min(lanes, ksplit);
    auto chunk_body = [&](std::size_t task) {
      for (std::size_t s = task; s < ksplit; s += n_tasks) {
        const std::size_t k0 = std::min(k, s * blocks_per_chunk * KC);
        const std::size_t k1 = std::min(k, (s + 1) * blocks_per_chunk * KC);
        if (k0 >= k1) continue;
        pass.run(k0, k1 - k0, partials.data() + s * m * n, n, 1);
      }
    };
    if (n_tasks <= 1)
      chunk_body(0);
    else
      util::ThreadPool::shared().run_tasks(n_tasks, chunk_body);
    for (std::size_t s = 0; s < ksplit; ++s) {
      const double* buf = partials.data() + s * m * n;
      for (std::size_t i = 0; i < m; ++i)
        kt.axpy(n, 1.0, buf + i * n, c + i * ldc);
    }
  }

  // Packing traffic, accounted analytically (identical under both
  // drivers: k-split chunks are whole KC-block ranges, so the set of
  // packed tiles is the same). B: one NR-rounded kc x nc panel per
  // (jc, pc); A: one MR-rounded pass over all m rows per (jc, pc).
  double pack_bytes = 0.0;
  for (std::size_t jc = 0; jc < n; jc += NC) {
    const std::size_t nc = std::min(NC, n - jc);
    for (std::size_t pc = 0; pc < k; pc += KC) {
      const std::size_t kc = std::min(KC, k - pc);
      pack_bytes += static_cast<double>(round_up(nc, NR) * kc +
                                        round_up(m, MR) * kc) *
                    sizeof(double);
    }
  }

  reg.add(em.pack_bytes, 0, pack_bytes);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_wall0)
          .count();
  if (secs > 0.0)
    reg.set(em.gflops, 0, gemm_flops(m, n, k) / secs / 1e9);
  if (ts.enabled) {
    char label[80];
    std::snprintf(label, sizeof(label), "gemm %zux%zux%zu [%s]", m, n, k,
                  isa_name(level));
    const std::size_t name_id = ts.timeline.intern(label);
    ts.timeline.add_span(name_id, trace_track(ts), t_trace0,
                         trace_now(ts) - t_trace0);
  }
}

}  // namespace fit::blas
