#include "blas/gemm.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <vector>

#include "blas/tune.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace fit::blas {

namespace {

constexpr std::size_t MR = kGemmMR;
constexpr std::size_t NR = kGemmNR;

inline double at(const double* x, std::size_t ld, std::size_t i,
                 std::size_t j, Trans t) {
  return t == Trans::No ? x[i * ld + j] : x[j * ld + i];
}

// Pack an mc x kc block of op(A) in row-major micro-panels of MR rows.
void pack_a(const double* a, std::size_t lda, Trans ta, std::size_t row0,
            std::size_t col0, std::size_t mc, std::size_t kc, double* buf) {
  for (std::size_t i0 = 0; i0 < mc; i0 += MR) {
    const std::size_t ib = std::min(MR, mc - i0);
    for (std::size_t p = 0; p < kc; ++p) {
      for (std::size_t i = 0; i < MR; ++i) {
        *buf++ = (i < ib) ? at(a, lda, row0 + i0 + i, col0 + p, ta) : 0.0;
      }
    }
  }
}

// Pack a kc x nc block of op(B) in column micro-panels of NR columns.
void pack_b(const double* b, std::size_t ldb, Trans tb, std::size_t row0,
            std::size_t col0, std::size_t kc, std::size_t nc, double* buf) {
  for (std::size_t j0 = 0; j0 < nc; j0 += NR) {
    const std::size_t jb = std::min(NR, nc - j0);
    for (std::size_t p = 0; p < kc; ++p) {
      for (std::size_t j = 0; j < NR; ++j) {
        *buf++ = (j < jb) ? at(b, ldb, row0 + p, col0 + j0 + j, tb) : 0.0;
      }
    }
  }
}

// Scalar MR x NR micro-kernel over packed panels: acc += Apanel *
// Bpanel. The deterministic reference: one product and one add per
// (i, j, p) in a fixed order, never contracted into FMA differently by
// the vector path's lane structure.
void micro_kernel_scalar(std::size_t kc, const double* ap, const double* bp,
                         double acc[MR][NR]) {
  for (std::size_t p = 0; p < kc; ++p) {
    const double* arow = ap + p * MR;
    const double* brow = bp + p * NR;
    for (std::size_t i = 0; i < MR; ++i) {
      const double av = arow[i];
      for (std::size_t j = 0; j < NR; ++j) acc[i][j] += av * brow[j];
    }
  }
}

#if defined(__GNUC__) || defined(__clang__)
#define FIT_GEMM_HAVE_VEC 1
// Portable SIMD via compiler vector extensions: a 4-wide double vector
// lowers to AVX on machines that have it and to pairs of SSE2 ops (or
// NEON pairs) otherwise — no intrinsics, no ISA ifdefs. The unaligned
// alias is what we load through: packing buffers are only guaranteed
// 16-byte aligned by the allocator.
typedef double vd4 __attribute__((vector_size(4 * sizeof(double))));
typedef vd4 vd4u __attribute__((aligned(8)));

// Vectorized micro-kernel. Each p-step broadcasts one A element per
// row and multiply-accumulates it against B vectors. Accumulation
// order over p is identical to the scalar kernel, so results are
// bit-stable across thread counts; only the per-element rounding (FMA
// contraction, lane math) may differ from the scalar kernel, which is
// what FOURINDEX_DETERMINISTIC=1 opts out of.
#if defined(__AVX__)
// Wide variant: the MR x NR accumulator lives in MR x 2 ymm registers
// (11 of 16 live vectors — fits the AVX register file and keeps 8
// independent accumulation chains to hide FMA latency).
void micro_kernel_vec(std::size_t kc, const double* ap, const double* bp,
                      double acc[MR][NR]) {
  vd4 c0[MR], c1[MR];
  for (std::size_t i = 0; i < MR; ++i) {
    c0[i] = vd4{0.0, 0.0, 0.0, 0.0};
    c1[i] = vd4{0.0, 0.0, 0.0, 0.0};
  }
  for (std::size_t p = 0; p < kc; ++p) {
    const double* arow = ap + p * MR;
    const double* brow = bp + p * NR;
    const vd4 b0 = *reinterpret_cast<const vd4u*>(brow);
    const vd4 b1 = *reinterpret_cast<const vd4u*>(brow + 4);
    for (std::size_t i = 0; i < MR; ++i) {
      const double s = arow[i];
      const vd4 av = {s, s, s, s};
      c0[i] += av * b0;
      c1[i] += av * b1;
    }
  }
  for (std::size_t i = 0; i < MR; ++i) {
    *reinterpret_cast<vd4u*>(&acc[i][0]) = c0[i];
    *reinterpret_cast<vd4u*>(&acc[i][4]) = c1[i];
  }
}
#else
// Narrow variant for generic builds, where each vd4 lowers to a PAIR
// of 2-wide SSE2/NEON registers: the wide variant's 8 vd4 accumulators
// would need all 16 xmm registers and spill every iteration (measured
// ~6x slower than this). Two passes over the packed A panel, each
// keeping only MR accumulators (8 xmm) live; A stays L1-resident so
// the second pass is nearly free.
void micro_kernel_vec(std::size_t kc, const double* ap, const double* bp,
                      double acc[MR][NR]) {
  for (std::size_t half = 0; half < 2; ++half) {
    vd4 cc[MR];
    for (std::size_t i = 0; i < MR; ++i) cc[i] = vd4{0.0, 0.0, 0.0, 0.0};
    const double* bhalf = bp + half * 4;
    for (std::size_t p = 0; p < kc; ++p) {
      const double* arow = ap + p * MR;
      const vd4 bv = *reinterpret_cast<const vd4u*>(bhalf + p * NR);
      for (std::size_t i = 0; i < MR; ++i) {
        const double s = arow[i];
        const vd4 av = {s, s, s, s};
        cc[i] += av * bv;
      }
    }
    for (std::size_t i = 0; i < MR; ++i)
      *reinterpret_cast<vd4u*>(&acc[i][half * 4]) = cc[i];
  }
}
#endif
#endif

using MicroKernelFn = void (*)(std::size_t, const double*, const double*,
                               double[MR][NR]);

MicroKernelFn select_kernel(bool deterministic) {
#ifdef FIT_GEMM_HAVE_VEC
  if (!deterministic) return micro_kernel_vec;
#else
  (void)deterministic;
#endif
  return micro_kernel_scalar;
}

// Persistent per-thread packing buffers: grown on demand, reused across
// gemm calls (the ISSUE's "thread-local persistent packing buffers" —
// the steady state does zero allocations per call).
std::vector<double>& tls_pack_a_buf() {
  thread_local std::vector<double> buf;
  return buf;
}
std::vector<double>& tls_pack_b_buf() {
  thread_local std::vector<double> buf;
  return buf;
}

double* grown(std::vector<double>& buf, std::size_t n) {
  if (buf.size() < n) buf.resize(n);
  return buf.data();
}

// ---- engine metrics -------------------------------------------------

struct EngineMetrics {
  obs::MetricsRegistry::Id calls;
  obs::MetricsRegistry::Id flops;
  obs::MetricsRegistry::Id pack_bytes;
  obs::MetricsRegistry::Id gflops;
};

EngineMetrics& engine_metrics() {
  static EngineMetrics m = [] {
    auto& reg = gemm_metrics();
    return EngineMetrics{reg.counter("gemm.calls"), reg.counter("gemm.flops"),
                         reg.counter("gemm.pack_bytes"),
                         reg.gauge("gemm.gflops")};
  }();
  return m;
}

// ---- optional kernel trace ------------------------------------------
//
// When FOURINDEX_TRACE_DIR is set, every blocked gemm call records a
// span (track = calling thread) into a process-global timeline written
// to $FOURINDEX_TRACE_DIR/gemm_kernels.trace.json at exit.

struct TraceState {
  bool enabled = false;
  std::string path;
  obs::Timeline timeline;
  std::mutex track_mutex;
  std::size_t next_track = 0;
  std::chrono::steady_clock::time_point t0;
};

TraceState* g_trace = nullptr;

TraceState& trace_state() {
  static std::once_flag once;
  std::call_once(once, [] {
    g_trace = new TraceState;  // leaked: must outlive atexit
    if (const char* dir = std::getenv("FOURINDEX_TRACE_DIR")) {
      if (dir[0] != '\0') {
        g_trace->enabled = true;
        g_trace->path = std::string(dir) + "/gemm_kernels.trace.json";
        g_trace->t0 = std::chrono::steady_clock::now();
        std::atexit([] {
          g_trace->timeline.write_chrome_trace(g_trace->path, "gemm kernels");
        });
      }
    }
  });
  return *g_trace;
}

std::size_t trace_track(TraceState& ts) {
  thread_local std::size_t track = static_cast<std::size_t>(-1);
  if (track == static_cast<std::size_t>(-1)) {
    std::lock_guard<std::mutex> lock(ts.track_mutex);
    track = ts.next_track++;
  }
  return track;
}

double trace_now(TraceState& ts) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       ts.t0)
      .count();
}

std::size_t round_up(std::size_t v, std::size_t unit) {
  return ((v + unit - 1) / unit) * unit;
}

}  // namespace

void gemm_reference(Trans ta, Trans tb, std::size_t m, std::size_t n,
                    std::size_t k, double alpha, const double* a,
                    std::size_t lda, const double* b, std::size_t ldb,
                    double beta, double* c, std::size_t ldc) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p)
        acc += at(a, lda, i, p, ta) * at(b, ldb, p, j, tb);
      c[i * ldc + j] = alpha * acc + beta * c[i * ldc + j];
    }
  }
}

void gemm(Trans ta, Trans tb, std::size_t m, std::size_t n, std::size_t k,
          double alpha, const double* a, std::size_t lda, const double* b,
          std::size_t ldb, double beta, double* c, std::size_t ldc) {
  FIT_REQUIRE(ldc >= n || m == 0, "gemm: ldc too small");
  // op(A) is read as a[i*lda+p] (No) or a[p*lda+i] (Yes); op(B) as
  // b[p*ldb+j] (No) or b[j*ldb+p] (Yes).
  const std::size_t lda_min = (ta == Trans::No) ? k : m;
  const std::size_t ldb_min = (tb == Trans::No) ? n : k;
  FIT_REQUIRE(lda >= lda_min || m == 0 || k == 0,
              "gemm: lda too small for op(A)");
  FIT_REQUIRE(ldb >= ldb_min || n == 0 || k == 0,
              "gemm: ldb too small for op(B)");
  if (m == 0 || n == 0) return;

  // Scale C by beta once, up front; beta == 1 skips the pass entirely.
  if (beta == 0.0) {
    for (std::size_t i = 0; i < m; ++i)
      std::fill(c + i * ldc, c + i * ldc + n, 0.0);
  } else if (beta != 1.0) {
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t j = 0; j < n; ++j) c[i * ldc + j] *= beta;
  }
  if (k == 0 || alpha == 0.0) return;

  auto& em = engine_metrics();
  auto& reg = gemm_metrics();
  reg.add(em.calls, 0, 1.0);
  reg.add(em.flops, 0, gemm_flops(m, n, k));

  // Small problems: the packing overhead dominates; use the reference
  // loop with alpha folded in (beta already applied).
  if (m * n * k < 32 * 32 * 32) {
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t j = 0; j < n; ++j) {
        double acc = 0.0;
        for (std::size_t p = 0; p < k; ++p)
          acc += at(a, lda, i, p, ta) * at(b, ldb, p, j, tb);
        c[i * ldc + j] += alpha * acc;
      }
    return;
  }

  const GemmConfig cfg = gemm_config();
  const std::size_t KC = cfg.kc;
  const std::size_t NC = cfg.nc;
  const MicroKernelFn kernel = select_kernel(cfg.deterministic);

  // Thread partitioning: lanes split the ic loop (M dimension) only —
  // each C row block is written by exactly one task and the pc loop
  // stays sequential, so every C element accumulates its k-products in
  // the same order at any thread count (bit-reproducibility across
  // FOURINDEX_GEMM_THREADS by construction). Shrink MC below the
  // cache-tuned value when needed so every lane gets >= 2 blocks.
  const std::size_t lanes = std::max<std::size_t>(
      1, std::min({cfg.threads, util::ThreadPool::shared().size(),
                   (m + MR - 1) / MR}));
  std::size_t MC = cfg.mc;
  if (lanes > 1) {
    const std::size_t balanced =
        round_up((m + 2 * lanes - 1) / (2 * lanes), MR);
    MC = std::max<std::size_t>(MR, std::min(MC, balanced));
  }
  const std::size_t n_ic_blocks = (m + MC - 1) / MC;
  const std::size_t n_tasks = std::min(lanes, n_ic_blocks);

  TraceState& ts = trace_state();
  const double t_trace0 = ts.enabled ? trace_now(ts) : 0.0;
  const auto t_wall0 = std::chrono::steady_clock::now();

  double pack_bytes = 0.0;
  double* bbuf = grown(tls_pack_b_buf(), KC * NC);

  for (std::size_t jc = 0; jc < n; jc += NC) {
    const std::size_t nc = std::min(NC, n - jc);
    for (std::size_t pc = 0; pc < k; pc += KC) {
      const std::size_t kc = std::min(KC, k - pc);
      // One packed-B panel per (jc, pc), shared read-only by all lanes.
      pack_b(b, ldb, tb, pc, jc, kc, nc, bbuf);
      pack_bytes +=
          static_cast<double>(round_up(nc, NR) * kc) * sizeof(double);

      auto body = [&](std::size_t task) {
        // Strided ic-block assignment: block sizes are uniform except
        // the last, so a static partition stays balanced.
        for (std::size_t blk = task; blk < n_ic_blocks; blk += n_tasks) {
          const std::size_t ic = blk * MC;
          const std::size_t mc = std::min(MC, m - ic);
          double* abuf = grown(tls_pack_a_buf(), MC * KC);
          pack_a(a, lda, ta, ic, pc, mc, kc, abuf);
          for (std::size_t jr = 0; jr < nc; jr += NR) {
            const std::size_t jb = std::min(NR, nc - jr);
            const double* bp = bbuf + (jr / NR) * kc * NR;
            for (std::size_t ir = 0; ir < mc; ir += MR) {
              const std::size_t ib = std::min(MR, mc - ir);
              const double* ap = abuf + (ir / MR) * kc * MR;
              double acc[MR][NR] = {};
              kernel(kc, ap, bp, acc);
              double* cblk = c + (ic + ir) * ldc + jc + jr;
              for (std::size_t i = 0; i < ib; ++i)
                for (std::size_t j = 0; j < jb; ++j)
                  cblk[i * ldc + j] += alpha * acc[i][j];
            }
          }
        }
      };
      if (n_tasks <= 1)
        body(0);
      else
        util::ThreadPool::shared().run_tasks(n_tasks, body);

      // A is repacked per (jc, pc): every ic block contributes one
      // MR-rounded mc x kc micro-panel set.
      pack_bytes +=
          static_cast<double>(round_up(m, MR) * kc) * sizeof(double);
    }
  }

  reg.add(em.pack_bytes, 0, pack_bytes);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_wall0)
          .count();
  if (secs > 0.0)
    reg.set(em.gflops, 0, gemm_flops(m, n, k) / secs / 1e9);
  if (ts.enabled) {
    char label[64];
    std::snprintf(label, sizeof(label), "gemm %zux%zux%zu", m, n, k);
    const std::size_t name_id = ts.timeline.intern(label);
    ts.timeline.add_span(name_id, trace_track(ts), t_trace0,
                         trace_now(ts) - t_trace0);
  }
}

}  // namespace fit::blas
