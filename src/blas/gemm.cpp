#include "blas/gemm.hpp"

#include <algorithm>
#include <vector>

#include "util/error.hpp"

namespace fit::blas {

namespace {

// Cache blocking parameters. MC x KC panel of A is packed to stay in L2,
// KC x NC panel of B to stay in L3; the micro-kernel updates an
// MR x NR register block.
constexpr std::size_t MC = 128;
constexpr std::size_t KC = 256;
constexpr std::size_t NC = 512;
constexpr std::size_t MR = 4;
constexpr std::size_t NR = 8;

inline double at(const double* x, std::size_t ld, std::size_t i,
                 std::size_t j, Trans t) {
  return t == Trans::No ? x[i * ld + j] : x[j * ld + i];
}

// Pack an mc x kc block of op(A) in row-major micro-panels of MR rows.
void pack_a(const double* a, std::size_t lda, Trans ta, std::size_t row0,
            std::size_t col0, std::size_t mc, std::size_t kc, double* buf) {
  for (std::size_t i0 = 0; i0 < mc; i0 += MR) {
    const std::size_t ib = std::min(MR, mc - i0);
    for (std::size_t p = 0; p < kc; ++p) {
      for (std::size_t i = 0; i < MR; ++i) {
        *buf++ = (i < ib) ? at(a, lda, row0 + i0 + i, col0 + p, ta) : 0.0;
      }
    }
  }
}

// Pack a kc x nc block of op(B) in column micro-panels of NR columns.
void pack_b(const double* b, std::size_t ldb, Trans tb, std::size_t row0,
            std::size_t col0, std::size_t kc, std::size_t nc, double* buf) {
  for (std::size_t j0 = 0; j0 < nc; j0 += NR) {
    const std::size_t jb = std::min(NR, nc - j0);
    for (std::size_t p = 0; p < kc; ++p) {
      for (std::size_t j = 0; j < NR; ++j) {
        *buf++ = (j < jb) ? at(b, ldb, row0 + p, col0 + j0 + j, tb) : 0.0;
      }
    }
  }
}

// MR x NR micro-kernel over packed panels: acc += Apanel * Bpanel.
void micro_kernel(std::size_t kc, const double* ap, const double* bp,
                  double acc[MR][NR]) {
  for (std::size_t p = 0; p < kc; ++p) {
    const double* arow = ap + p * MR;
    const double* brow = bp + p * NR;
    for (std::size_t i = 0; i < MR; ++i) {
      const double av = arow[i];
      for (std::size_t j = 0; j < NR; ++j) acc[i][j] += av * brow[j];
    }
  }
}

}  // namespace

void gemm_reference(Trans ta, Trans tb, std::size_t m, std::size_t n,
                    std::size_t k, double alpha, const double* a,
                    std::size_t lda, const double* b, std::size_t ldb,
                    double beta, double* c, std::size_t ldc) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p)
        acc += at(a, lda, i, p, ta) * at(b, ldb, p, j, tb);
      c[i * ldc + j] = alpha * acc + beta * c[i * ldc + j];
    }
  }
}

void gemm(Trans ta, Trans tb, std::size_t m, std::size_t n, std::size_t k,
          double alpha, const double* a, std::size_t lda, const double* b,
          std::size_t ldb, double beta, double* c, std::size_t ldc) {
  FIT_REQUIRE(ldc >= n || m == 0, "gemm: ldc too small");
  if (m == 0 || n == 0) return;

  // Scale C by beta once, up front.
  if (beta != 1.0) {
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t j = 0; j < n; ++j)
        c[i * ldc + j] = (beta == 0.0) ? 0.0 : beta * c[i * ldc + j];
  }
  if (k == 0 || alpha == 0.0) return;

  // Small problems: the packing overhead dominates; use the reference
  // loop with alpha folded in (beta already applied).
  if (m * n * k < 32 * 32 * 32) {
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t j = 0; j < n; ++j) {
        double acc = 0.0;
        for (std::size_t p = 0; p < k; ++p)
          acc += at(a, lda, i, p, ta) * at(b, ldb, p, j, tb);
        c[i * ldc + j] += alpha * acc;
      }
    return;
  }

  std::vector<double> abuf(MC * KC);
  std::vector<double> bbuf(KC * NC);

  for (std::size_t jc = 0; jc < n; jc += NC) {
    const std::size_t nc = std::min(NC, n - jc);
    for (std::size_t pc = 0; pc < k; pc += KC) {
      const std::size_t kc = std::min(KC, k - pc);
      pack_b(b, ldb, tb, pc, jc, kc, nc, bbuf.data());
      for (std::size_t ic = 0; ic < m; ic += MC) {
        const std::size_t mc = std::min(MC, m - ic);
        pack_a(a, lda, ta, ic, pc, mc, kc, abuf.data());
        for (std::size_t jr = 0; jr < nc; jr += NR) {
          const std::size_t jb = std::min(NR, nc - jr);
          const double* bp = bbuf.data() + (jr / NR) * kc * NR;
          for (std::size_t ir = 0; ir < mc; ir += MR) {
            const std::size_t ib = std::min(MR, mc - ir);
            const double* ap = abuf.data() + (ir / MR) * kc * MR;
            double acc[MR][NR] = {};
            micro_kernel(kc, ap, bp, acc);
            double* cblk = c + (ic + ir) * ldc + jc + jr;
            for (std::size_t i = 0; i < ib; ++i)
              for (std::size_t j = 0; j < jb; ++j)
                cblk[i * ldc + j] += alpha * acc[i][j];
          }
        }
      }
    }
  }
}

}  // namespace fit::blas
