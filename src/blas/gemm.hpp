// Blocked double-precision matrix multiplication, written from scratch
// (no external BLAS). Row-major convention:
//
//   C[m x n] = alpha * op(A) * op(B) + beta * C
//
// where op(X) is X or X^T. The implementation packs panels of A and B
// into contiguous cache-resident buffers and runs a register-tiled
// micro-kernel — the same structural optimization (tiling for a fast
// memory of capacity S) whose data-movement optimality the paper's
// Section 2.3 discusses.
#pragma once

#include <cstddef>
#include <cstdint>

namespace fit::blas {

enum class Trans : std::uint8_t { No, Yes };

/// General matrix-matrix product. Leading dimensions are row strides.
/// Preconditions: m,n,k >= 0; lda/ldb/ldc large enough for the
/// respective (possibly transposed) operand shapes.
void gemm(Trans trans_a, Trans trans_b, std::size_t m, std::size_t n,
          std::size_t k, double alpha, const double* a, std::size_t lda,
          const double* b, std::size_t ldb, double beta, double* c,
          std::size_t ldc);

/// Convenience: C[m x n] += A[m x k] * B[k x n], all dense row-major
/// with tight leading dimensions.
inline void gemm_acc(std::size_t m, std::size_t n, std::size_t k,
                     const double* a, const double* b, double* c) {
  gemm(Trans::No, Trans::No, m, n, k, 1.0, a, k, b, n, 1.0, c, n);
}

/// Reference (unblocked) implementation used by the test suite as an
/// oracle for the blocked kernel.
void gemm_reference(Trans trans_a, Trans trans_b, std::size_t m,
                    std::size_t n, std::size_t k, double alpha,
                    const double* a, std::size_t lda, const double* b,
                    std::size_t ldb, double beta, double* c, std::size_t ldc);

/// Flop count of a gemm call (2*m*n*k; the convention used throughout
/// the cost model).
inline double gemm_flops(std::size_t m, std::size_t n, std::size_t k) {
  return 2.0 * static_cast<double>(m) * static_cast<double>(n) *
         static_cast<double>(k);
}

}  // namespace fit::blas
