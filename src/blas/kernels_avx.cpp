// IsaLevel::Avx kernels: the wide one-pass vector micro-kernel. CMake
// compiles this translation unit with -mavx (and -ffp-contract=off,
// like every kernel TU) regardless of the global architecture flags —
// the dispatcher guarantees it only runs on AVX-capable hosts.
#define FIT_BLAS_ISA_TABLE_MAKER make_table_avx
#define FIT_BLAS_ISA_LEVEL IsaLevel::Avx
#define FIT_BLAS_KERNEL_VARIANT 2
#include "blas/kernels.inc"
