// IsaLevel::Avx2 kernels: the wide one-pass micro-kernel compiled with
// -mavx2 -mfma. Note that -ffp-contract=off (applied to every kernel
// TU) keeps mul+add from fusing into FMA: contraction would change
// rounding and break the cross-level bit-identity the isa-sweep CI job
// gates on. What AVX2 codegen still buys over the Avx TU is better
// instruction selection in the packing and level-1 loops; a true FMA
// kernel would need a per-level results contract first (see DESIGN
// §4.5).
#define FIT_BLAS_ISA_TABLE_MAKER make_table_avx2
#define FIT_BLAS_ISA_LEVEL IsaLevel::Avx2
#define FIT_BLAS_KERNEL_VARIANT 2
#include "blas/kernels.inc"
