// IsaLevel::Scalar kernels: portable C++ loops, no vector types. This
// is the reference sequence every other level reproduces bit-for-bit,
// and the level FOURINDEX_DETERMINISTIC=1 pins.
#define FIT_BLAS_ISA_TABLE_MAKER make_table_scalar
#define FIT_BLAS_ISA_LEVEL IsaLevel::Scalar
#define FIT_BLAS_KERNEL_VARIANT 0
#include "blas/kernels.inc"
