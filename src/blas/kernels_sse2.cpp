// IsaLevel::Sse2 kernels: the narrow two-pass vector micro-kernel,
// compiled at the build's baseline flags (SSE2 is part of x86-64's
// baseline; on AArch64 the same code lowers to NEON pairs).
#define FIT_BLAS_ISA_TABLE_MAKER make_table_sse2
#define FIT_BLAS_ISA_LEVEL IsaLevel::Sse2
#define FIT_BLAS_KERNEL_VARIANT 1
#include "blas/kernels.inc"
