// Level-1 BLAS-style kernels (row-major convention, double precision).
//
// These are the primitive building blocks used by the tensor layer and
// by the trace-instrumented kernels. They deliberately mirror the BLAS
// calling conventions (n, x, incx, ...) so the code reads like the
// numerical kernels in production chemistry suites.
#pragma once

#include <cmath>
#include <cstddef>

namespace fit::blas {

/// y[i] += alpha * x[i]
inline void axpy(std::size_t n, double alpha, const double* x,
                 std::size_t incx, double* y, std::size_t incy) {
  for (std::size_t i = 0; i < n; ++i) y[i * incy] += alpha * x[i * incx];
}

inline void axpy(std::size_t n, double alpha, const double* x, double* y) {
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

/// sum_i x[i]*y[i]
inline double dot(std::size_t n, const double* x, std::size_t incx,
                  const double* y, std::size_t incy) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += x[i * incx] * y[i * incy];
  return acc;
}

inline double dot(std::size_t n, const double* x, const double* y) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += x[i] * y[i];
  return acc;
}

/// x[i] *= alpha
inline void scal(std::size_t n, double alpha, double* x,
                 std::size_t incx = 1) {
  for (std::size_t i = 0; i < n; ++i) x[i * incx] *= alpha;
}

/// y := x
inline void copy(std::size_t n, const double* x, double* y) {
  for (std::size_t i = 0; i < n; ++i) y[i] = x[i];
}

/// Euclidean norm.
inline double nrm2(std::size_t n, const double* x, std::size_t incx = 1) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double v = x[i * incx];
    acc += v * v;
  }
  return std::sqrt(acc);
}

/// max_i |x[i] - y[i]|  (convenience for tests and validation)
inline double max_abs_diff(std::size_t n, const double* x, const double* y) {
  double m = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = std::fabs(x[i] - y[i]);
    if (d > m) m = d;
  }
  return m;
}

}  // namespace fit::blas
