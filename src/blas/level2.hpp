// Level-2 BLAS-style kernels (row-major, double precision).
#pragma once

#include <cstddef>

#include "blas/level1.hpp"

namespace fit::blas {

/// y[m] += alpha * A[m x n] * x[n]   (A row-major, leading dimension lda)
inline void gemv_n(std::size_t m, std::size_t n, double alpha, const double* a,
                   std::size_t lda, const double* x, double* y) {
  for (std::size_t i = 0; i < m; ++i)
    y[i] += alpha * dot(n, a + i * lda, x);
}

/// y[n] += alpha * A^T[n x m] * x[m]  (A row-major m x n)
inline void gemv_t(std::size_t m, std::size_t n, double alpha, const double* a,
                   std::size_t lda, const double* x, double* y) {
  for (std::size_t i = 0; i < m; ++i)
    axpy(n, alpha * x[i], a + i * lda, y);
}

/// A[m x n] += alpha * x[m] * y[n]^T  (rank-1 update)
inline void ger(std::size_t m, std::size_t n, double alpha, const double* x,
                const double* y, double* a, std::size_t lda) {
  for (std::size_t i = 0; i < m; ++i)
    axpy(n, alpha * x[i], y, a + i * lda);
}

}  // namespace fit::blas
