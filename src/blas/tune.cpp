#include "blas/tune.hpp"

#include <algorithm>
#include <cstdlib>
#include <mutex>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "obs/metrics.hpp"
#include "util/parse.hpp"

namespace fit::blas {

namespace {

using util::env_size;

// Guarded on unistd availability only: each cache-level probe below
// guards on its *own* _SC_ macro. (Gating this shared helper on
// _SC_LEVEL1_DCACHE_SIZE — the old bug — silently disabled the L2/L3
// probes on platforms that define the L2/L3 macros but not the L1 one.)
#if defined(__unix__) || defined(__APPLE__)
std::size_t sysconf_bytes(int name) {
  const long v = ::sysconf(name);
  return v > 0 ? static_cast<std::size_t>(v) : 0;
}
#endif

std::size_t round_up(std::size_t v, std::size_t unit) {
  return ((v + unit - 1) / unit) * unit;
}

std::mutex config_mutex;
GemmConfig* active_config = nullptr;  // never freed (process lifetime)

}  // namespace

std::size_t l1d_cache_bytes() {
#if defined(_SC_LEVEL1_DCACHE_SIZE)
  return sysconf_bytes(_SC_LEVEL1_DCACHE_SIZE);
#else
  return 0;
#endif
}

std::size_t l2_cache_bytes() {
#if defined(_SC_LEVEL2_CACHE_SIZE)
  return sysconf_bytes(_SC_LEVEL2_CACHE_SIZE);
#else
  return 0;
#endif
}

std::size_t l3_cache_bytes() {
#if defined(_SC_LEVEL3_CACHE_SIZE)
  return sysconf_bytes(_SC_LEVEL3_CACHE_SIZE);
#else
  return 0;
#endif
}

GemmConfig GemmConfig::autotuned() {
  const std::size_t l1 = l1d_cache_bytes() ? l1d_cache_bytes() : 32u << 10;
  const std::size_t l2 = l2_cache_bytes() ? l2_cache_bytes() : 512u << 10;
  const std::size_t l3 = l3_cache_bytes() ? l3_cache_bytes() : 8u << 20;

  GemmConfig cfg;
  // KC: one MR x KC A micro-panel plus one KC x NR B micro-panel
  // should occupy about half of L1, leaving room for the C tile and
  // streaming traffic.
  cfg.kc = std::clamp<std::size_t>(
      l1 / (2 * sizeof(double) * (kGemmMR + kGemmNR)), 64, 512);
  // MC: the packed MC x KC A block targets about half of L2.
  cfg.mc = std::clamp<std::size_t>(
      round_up(l2 / (2 * sizeof(double) * cfg.kc), kGemmMR), kGemmMR, 1024);
  // NC: the packed KC x NC B panel targets about half of L3.
  cfg.nc = std::clamp<std::size_t>(
      round_up(l3 / (2 * sizeof(double) * cfg.kc), kGemmNR), kGemmNR, 8192);

  cfg.threads = env_size(
      "FOURINDEX_GEMM_THREADS",
      env_size("FOURINDEX_THREADS", [] {
        const unsigned hw = std::thread::hardware_concurrency();
        return static_cast<std::size_t>(hw > 0 ? hw : 1);
      }()));

  // Explicit blocking overrides (rounded to the micro-tile so packing
  // never splits a micro-panel).
  cfg.mc = round_up(env_size("FOURINDEX_GEMM_MC", cfg.mc), kGemmMR);
  cfg.kc = env_size("FOURINDEX_GEMM_KC", cfg.kc);
  cfg.nc = round_up(env_size("FOURINDEX_GEMM_NC", cfg.nc), kGemmNR);

  if (const char* env = std::getenv("FOURINDEX_DETERMINISTIC"))
    cfg.deterministic = (env[0] != '\0' && env[0] != '0');
  return cfg;
}

GemmConfig gemm_config() {
  std::lock_guard<std::mutex> lock(config_mutex);
  if (!active_config) active_config = new GemmConfig(GemmConfig::autotuned());
  return *active_config;
}

void set_gemm_config(const GemmConfig& cfg) {
  GemmConfig sane = cfg;
  sane.mc = std::max<std::size_t>(kGemmMR, round_up(sane.mc, kGemmMR));
  sane.kc = std::max<std::size_t>(1, sane.kc);
  sane.nc = std::max<std::size_t>(kGemmNR, round_up(sane.nc, kGemmNR));
  sane.threads = std::max<std::size_t>(1, sane.threads);
  std::lock_guard<std::mutex> lock(config_mutex);
  if (!active_config)
    active_config = new GemmConfig(sane);
  else
    *active_config = sane;
}

GemmConfig reset_gemm_config() {
  const GemmConfig cfg = GemmConfig::autotuned();
  set_gemm_config(cfg);
  return cfg;
}

obs::MetricsRegistry& gemm_metrics() {
  static obs::MetricsRegistry registry(1);
  return registry;
}

}  // namespace fit::blas
