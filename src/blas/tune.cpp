#include "blas/tune.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "obs/metrics.hpp"
#include "util/logging.hpp"
#include "util/parse.hpp"

namespace fit::blas {

namespace {

using util::env_size;

// Guarded on unistd availability only: each cache-level probe below
// guards on its *own* _SC_ macro. (Gating this shared helper on
// _SC_LEVEL1_DCACHE_SIZE — the old bug — silently disabled the L2/L3
// probes on platforms that define the L2/L3 macros but not the L1 one.)
#if defined(__unix__) || defined(__APPLE__)
std::size_t sysconf_bytes(int name) {
  const long v = ::sysconf(name);
  return v > 0 ? static_cast<std::size_t>(v) : 0;
}
#endif

std::size_t round_up(std::size_t v, std::size_t unit) {
  return ((v + unit - 1) / unit) * unit;
}

std::mutex config_mutex;
GemmConfig* active_config = nullptr;  // never freed (process lifetime)

#if defined(__GNUC__) || defined(__clang__)

// One timed rep of the clock probe: a dependent chain of integer adds
// (1 cycle latency each on every core we target), with a compiler
// barrier keeping the chain in a register and un-collapsible. The loop
// counter and branch run in parallel with the chain, so elapsed time
// is chain length / core clock.
double clock_probe_hz_once() {
  // Long enough (~25-50 ms) to average over scheduler preemption and
  // the millisecond-scale glitches of para-virtualized monotonic
  // clocks; short reps read fast or slow by 2x under a loaded
  // hypervisor.
  constexpr std::size_t kIters = 25'000'000;  // 100M adds
  unsigned long long x = 1;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < kIters; ++i) {
    x += 1;
    __asm__ volatile("" : "+r"(x));
    x += 1;
    __asm__ volatile("" : "+r"(x));
    x += 1;
    __asm__ volatile("" : "+r"(x));
    x += 1;
    __asm__ volatile("" : "+r"(x));
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (secs <= 0.0) return 0.0;
  return static_cast<double>(4 * kIters) / secs;
}

double clock_probe_hz() {
  // Median of several reps. On bare metal interference only makes a
  // rep slower, but under virtualized clocks a rep can also read *fast*
  // (time dilation while the vCPU was descheduled), so taking the max
  // swings by 2x run to run; the median is stable against outliers in
  // both directions.
  double reps[7];
  for (double& r : reps) r = clock_probe_hz_once();
  std::sort(std::begin(reps), std::end(reps));
  return reps[3];
}

#else

double clock_probe_hz() { return 0.0; }

#endif

}  // namespace

std::size_t l1d_cache_bytes() {
#if defined(_SC_LEVEL1_DCACHE_SIZE)
  return sysconf_bytes(_SC_LEVEL1_DCACHE_SIZE);
#else
  return 0;
#endif
}

std::size_t l2_cache_bytes() {
#if defined(_SC_LEVEL2_CACHE_SIZE)
  return sysconf_bytes(_SC_LEVEL2_CACHE_SIZE);
#else
  return 0;
#endif
}

std::size_t l3_cache_bytes() {
#if defined(_SC_LEVEL3_CACHE_SIZE)
  return sysconf_bytes(_SC_LEVEL3_CACHE_SIZE);
#else
  return 0;
#endif
}

double estimated_cpu_hz() {
  static const double hz = [] {
    if (const char* env = std::getenv("FOURINDEX_CPU_HZ")) {
      if (const auto v = util::parse_double(env); v && *v > 0.0) return *v;
      FIT_LOG_WARN("FOURINDEX_CPU_HZ='" << env
                                        << "' is not a positive number; "
                                           "measuring instead");
    }
    const double measured = clock_probe_hz();
    return measured > 0.0 ? measured : 3.0e9;
  }();
  return hz;
}

double reprobe_cpu_hz() {
  if (std::getenv("FOURINDEX_CPU_HZ")) return estimated_cpu_hz();
  const double measured = clock_probe_hz();
  return measured > 0.0 ? measured : estimated_cpu_hz();
}

double isa_flops_per_cycle(IsaLevel level) {
  // One multiply plus one dependent-free add can issue per cycle per
  // vector lane set; FP contraction is disabled in the kernel TUs so
  // FMA never doubles this.
  switch (level) {
    case IsaLevel::Scalar:
      return 2.0;
    case IsaLevel::Sse2:
      return 4.0;
    case IsaLevel::Avx:
    case IsaLevel::Avx2:
      return 8.0;
  }
  return 2.0;
}

double roofline_peak_gflops(IsaLevel level, std::size_t threads) {
  return estimated_cpu_hz() * isa_flops_per_cycle(level) *
         static_cast<double>(std::max<std::size_t>(1, threads)) / 1e9;
}

GemmConfig GemmConfig::autotuned() {
  const std::size_t l1 = l1d_cache_bytes() ? l1d_cache_bytes() : 32u << 10;
  const std::size_t l2 = l2_cache_bytes() ? l2_cache_bytes() : 512u << 10;
  const std::size_t l3 = l3_cache_bytes() ? l3_cache_bytes() : 8u << 20;

  GemmConfig cfg;
  // KC: one MR x KC A micro-panel plus one KC x NR B micro-panel
  // should occupy about half of L1, leaving room for the C tile and
  // streaming traffic.
  cfg.kc = std::clamp<std::size_t>(
      l1 / (2 * sizeof(double) * (kGemmMR + kGemmNR)), 64, 512);
  // MC: the packed MC x KC A block targets about half of L2.
  cfg.mc = std::clamp<std::size_t>(
      round_up(l2 / (2 * sizeof(double) * cfg.kc), kGemmMR), kGemmMR, 1024);
  // NC: the packed KC x NC B panel targets about half of L3.
  cfg.nc = std::clamp<std::size_t>(
      round_up(l3 / (2 * sizeof(double) * cfg.kc), kGemmNR), kGemmNR, 8192);

  cfg.threads = env_size(
      "FOURINDEX_GEMM_THREADS",
      env_size("FOURINDEX_THREADS", [] {
        const unsigned hw = std::thread::hardware_concurrency();
        return static_cast<std::size_t>(hw > 0 ? hw : 1);
      }()));

  // Explicit blocking overrides (rounded to the micro-tile so packing
  // never splits a micro-panel).
  cfg.mc = round_up(env_size("FOURINDEX_GEMM_MC", cfg.mc), kGemmMR);
  cfg.kc = env_size("FOURINDEX_GEMM_KC", cfg.kc);
  cfg.nc = round_up(env_size("FOURINDEX_GEMM_NC", cfg.nc), kGemmNR);
  cfg.ksplit = env_size("FOURINDEX_GEMM_KSPLIT", 1, /*min=*/0);

  // Kernel dispatch: cpuid-detected level narrowed by FOURINDEX_CPU
  // (strict-parsed; requests above the detected level clamp loudly).
  cfg.isa = resolve_isa();

  if (const char* env = std::getenv("FOURINDEX_DETERMINISTIC"))
    cfg.deterministic = (env[0] != '\0' && env[0] != '0');
  return cfg;
}

GemmConfig gemm_config() {
  std::lock_guard<std::mutex> lock(config_mutex);
  if (!active_config) active_config = new GemmConfig(GemmConfig::autotuned());
  return *active_config;
}

void set_gemm_config(const GemmConfig& cfg) {
  GemmConfig sane = cfg;
  sane.mc = std::max<std::size_t>(kGemmMR, round_up(sane.mc, kGemmMR));
  sane.kc = std::max<std::size_t>(1, sane.kc);
  sane.nc = std::max<std::size_t>(kGemmNR, round_up(sane.nc, kGemmNR));
  sane.threads = std::max<std::size_t>(1, sane.threads);
  if (sane.isa > detected_isa()) {
    FIT_LOG_WARN("gemm config requests ISA level '"
                 << isa_name(sane.isa) << "' above detected '"
                 << isa_name(detected_isa()) << "'; clamping");
    sane.isa = detected_isa();
  }
  std::lock_guard<std::mutex> lock(config_mutex);
  if (!active_config)
    active_config = new GemmConfig(sane);
  else
    *active_config = sane;
}

GemmConfig reset_gemm_config() {
  const GemmConfig cfg = GemmConfig::autotuned();
  set_gemm_config(cfg);
  return cfg;
}

obs::MetricsRegistry& gemm_metrics() {
  static obs::MetricsRegistry registry(1);
  return registry;
}

}  // namespace fit::blas
