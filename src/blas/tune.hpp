// GEMM engine configuration: cache-size-probed blocking parameters,
// thread count, and the deterministic-kernel switch, with environment
// overrides. The blocked DGEMM (gemm.cpp) reads the active config on
// every call, so tests and benchmarks can retune at runtime via
// set_gemm_config().
//
// Environment variables (all optional):
//   FOURINDEX_GEMM_MC / _KC / _NC   blocking parameters (elements);
//                                   rounded to the micro-tile (MR/NR)
//   FOURINDEX_GEMM_THREADS          macro-loop parallelism for GEMM
//   FOURINDEX_THREADS               process-wide default lane count
//                                   (shared thread pool, Cluster)
//   FOURINDEX_DETERMINISTIC=1       scalar micro-kernel: results are
//                                   bit-reproducible across builds
//                                   that vectorize differently
#pragma once

#include <cstddef>

namespace fit::obs {
class MetricsRegistry;
}

namespace fit::blas {

/// Register micro-tile of the GEMM engine (compile-time constants of
/// gemm.cpp, exposed for autotuning/rounding and tests).
inline constexpr std::size_t kGemmMR = 4;
inline constexpr std::size_t kGemmNR = 8;

struct GemmConfig {
  std::size_t mc = 128;       // A panel rows (L2-resident: mc*kc)
  std::size_t kc = 256;       // contraction block (L1-resident microtiles)
  std::size_t nc = 2048;      // B panel columns (L3-resident: kc*nc)
  std::size_t threads = 1;    // lanes for the ic/jr macro loops
  bool deterministic = false; // force the scalar micro-kernel

  /// Cache-size-probed defaults (sysconf cache probes with
  /// conservative fallbacks) with every FOURINDEX_GEMM_* /
  /// FOURINDEX_THREADS / FOURINDEX_DETERMINISTIC override applied.
  /// Reads the environment on every call.
  static GemmConfig autotuned();
};

/// Active engine configuration. Initialized to autotuned() on first
/// use; set_gemm_config replaces it (thread-safe snapshot semantics —
/// in-flight gemm calls finish under the config they started with).
GemmConfig gemm_config();
void set_gemm_config(const GemmConfig& cfg);
/// Re-probe caches and environment, install and return the result.
GemmConfig reset_gemm_config();

/// Probed data-cache sizes in bytes (0 when the probe has no answer —
/// the autotuner then falls back to 32 KiB / 512 KiB / 8 MiB).
std::size_t l1d_cache_bytes();
std::size_t l2_cache_bytes();
std::size_t l3_cache_bytes();

/// Process-wide engine metrics: counters gemm.calls / gemm.flops /
/// gemm.pack_bytes and gauge gemm.gflops (rate of the last blocked
/// call). Single-rank registry, safe from any thread.
obs::MetricsRegistry& gemm_metrics();

}  // namespace fit::blas
