// GEMM engine configuration: cache-size-probed blocking parameters,
// thread count, the dispatched ISA level, and the deterministic-kernel
// switch, with environment overrides. The blocked DGEMM (gemm.cpp)
// reads the active config on every call, so tests and benchmarks can
// retune at runtime via set_gemm_config().
//
// Environment variables (all optional):
//   FOURINDEX_GEMM_MC / _KC / _NC   blocking parameters (elements);
//                                   rounded to the micro-tile (MR/NR)
//   FOURINDEX_GEMM_THREADS          macro-loop parallelism for GEMM
//   FOURINDEX_GEMM_KSPLIT           k-split reduction chunks (1 = off,
//                                   0 = auto by shape)
//   FOURINDEX_THREADS               process-wide default lane count
//                                   (shared thread pool, Cluster)
//   FOURINDEX_CPU=<level>           clamp the dispatched kernel ISA
//                                   (scalar / sse2 / avx / avx2 or
//                                   0-3); requests above the detected
//                                   level clamp loudly
//   FOURINDEX_CPU_HZ                override the measured clock the
//                                   roofline model uses
//   FOURINDEX_DETERMINISTIC=1       pin the scalar kernel level (all
//                                   levels are bit-identical anyway;
//                                   this removes even the dispatch
//                                   degree of freedom)
#pragma once

#include <cstddef>

#include "blas/dispatch.hpp"

namespace fit::obs {
class MetricsRegistry;
}

namespace fit::blas {

/// Register micro-tile of the GEMM engine (compile-time constants of
/// the kernel library, exposed for autotuning/rounding and tests).
inline constexpr std::size_t kGemmMR = 4;
inline constexpr std::size_t kGemmNR = 8;

/// One engine configuration: blocking parameters, lane count, k-split
/// width, the dispatched ISA level and the deterministic switch. The
/// blocked DGEMM snapshots the active one per call.
struct GemmConfig {
  std::size_t mc = 128;    ///< A panel rows (L2-resident: mc*kc)
  std::size_t kc = 256;    ///< contraction block (L1-resident microtiles)
  std::size_t nc = 2048;   ///< B panel columns (L3-resident: kc*nc)
  std::size_t threads = 1; ///< lanes for the ic/jr macro loops
  std::size_t ksplit = 1;  ///< k-split reduction chunks (1 off, 0 auto)
  IsaLevel isa = resolve_isa();  ///< dispatched kernel table
  bool deterministic = false;    ///< force the scalar kernel level

  /// Cache-size-probed defaults (sysconf cache probes with
  /// conservative fallbacks) with every FOURINDEX_GEMM_* /
  /// FOURINDEX_THREADS / FOURINDEX_CPU / FOURINDEX_DETERMINISTIC
  /// override applied. Reads the environment on every call.
  static GemmConfig autotuned();
};

/// Active engine configuration. Initialized to autotuned() on first
/// use; set_gemm_config replaces it (thread-safe snapshot semantics —
/// in-flight gemm calls finish under the config they started with).
GemmConfig gemm_config();
/// Install a new active configuration. Clamps the requested ISA level
/// to detected_isa(), loudly, so an installed config can never
/// dispatch to kernels the host cannot execute.
void set_gemm_config(const GemmConfig& cfg);
/// Re-probe caches and environment, install and return the result.
GemmConfig reset_gemm_config();

/// Probed L1 data-cache size in bytes (0 when the probe has no answer
/// — the autotuner then falls back to 32 KiB).
std::size_t l1d_cache_bytes();
/// Probed L2 cache size in bytes (0 = no answer; fallback 512 KiB).
std::size_t l2_cache_bytes();
/// Probed L3 cache size in bytes (0 = no answer; fallback 8 MiB).
std::size_t l3_cache_bytes();

/// Estimated core clock in Hz: a timed dependent-integer-add chain
/// (1 cycle/add on every core this runs on), best of several reps,
/// cached after the first call. FOURINDEX_CPU_HZ overrides the
/// measurement (strict-parsed; an escape hatch for hosts whose
/// virtualized clock defeats the probe). Falls back to 3 GHz when no
/// probe is possible.
double estimated_cpu_hz();

/// Uncached clock probe: measures afresh on every call (honouring a
/// FOURINDEX_CPU_HZ override, which always wins). Benches bracket
/// their timed section with estimated_cpu_hz() before and this after,
/// then take the min of the two: a hypervisor time-dilation burst
/// inflates an entire ~0.3 s probe window past what the median-of-reps
/// filter can reject, but rarely covers both windows, and dilation
/// only ever inflates the reading.
double reprobe_cpu_hz();

/// Double-precision flops/cycle/core the roofline model credits a
/// level: 2 (scalar mul+add dual issue), 4 (2-wide), 8 (4-wide).
/// Avx2 is also 8: the kernel library disables FMA contraction to
/// keep all levels bit-identical, so fused flops are not on the menu.
double isa_flops_per_cycle(IsaLevel level);

/// Roofline compute peak in GFLOP/s for `threads` cores at `level`:
/// estimated_cpu_hz() * isa_flops_per_cycle(level) * threads / 1e9.
/// The bench-smoke CI gate divides measured GFLOP/s by this.
double roofline_peak_gflops(IsaLevel level, std::size_t threads);

/// Process-wide engine metrics: counters gemm.calls / gemm.flops /
/// gemm.pack_bytes, gauge gemm.gflops (rate of the last blocked call)
/// and gauge gemm.isa (IsaLevel the last call dispatched to). Single-
/// rank registry, safe from any thread.
obs::MetricsRegistry& gemm_metrics();

}  // namespace fit::blas
