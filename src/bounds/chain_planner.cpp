#include "bounds/chain_planner.hpp"

#include <algorithm>
#include <limits>

#include "bounds/transform_bounds.hpp"
#include "tensor/packed.hpp"
#include "util/error.hpp"

namespace fit::bounds {

namespace {
void check_spec(const ChainSpec& spec) {
  FIT_REQUIRE(spec.tensor_sizes.size() >= 2, "chain needs >= 1 operation");
  FIT_REQUIRE(static_cast<bool>(spec.capacity_need),
              "chain spec needs a capacity function");
  for (double t : spec.tensor_sizes)
    FIT_REQUIRE(t > 0, "tensor sizes must be positive");
}
}  // namespace

double chain_grouping_io(const ChainSpec& spec,
                         const std::vector<ChainGroup>& groups) {
  check_spec(spec);
  const std::size_t m = spec.n_ops();
  std::size_t expect = 0;
  double total = 0;
  for (const auto& g : groups) {
    FIT_REQUIRE(g.lo == expect && g.hi >= g.lo && g.hi < m,
                "groups must contiguously partition the chain");
    total += spec.tensor_sizes[g.lo] + spec.tensor_sizes[g.hi + 1];
    expect = g.hi + 1;
  }
  FIT_REQUIRE(expect == m, "groups must cover the whole chain");
  return total;
}

ChainPlan plan_chain(const ChainSpec& spec, double s) {
  check_spec(spec);
  const std::size_t m = spec.n_ops();
  constexpr double kInf = std::numeric_limits<double>::infinity();

  // dp[j] = minimal I/O of the first j operations; prev[j] = start of
  // the last group in an optimal split.
  std::vector<double> dp(m + 1, kInf);
  std::vector<std::size_t> prev(m + 1, 0);
  dp[0] = 0;
  for (std::size_t j = 1; j <= m; ++j) {
    for (std::size_t lo = 0; lo < j; ++lo) {
      if (dp[lo] == kInf) continue;
      if (spec.capacity_need(lo, j - 1) > s) continue;
      const double cost =
          dp[lo] + spec.tensor_sizes[lo] + spec.tensor_sizes[j];
      if (cost < dp[j]) {
        dp[j] = cost;
        prev[j] = lo;
      }
    }
  }
  FIT_REQUIRE(dp[m] != kInf,
              "no feasible grouping: fast memory too small even for "
              "singleton execution");

  ChainPlan plan;
  plan.total_io = dp[m];
  for (std::size_t j = m; j > 0; j = prev[j]) {
    plan.groups.push_back(
        {prev[j], j - 1,
         spec.tensor_sizes[prev[j]] + spec.tensor_sizes[j]});
  }
  std::reverse(plan.groups.begin(), plan.groups.end());
  return plan;
}

ChainPlan plan_chain_exhaustive(const ChainSpec& spec, double s) {
  check_spec(spec);
  const std::size_t m = spec.n_ops();
  FIT_REQUIRE(m <= 20, "exhaustive search limited to 20 operations");
  constexpr double kInf = std::numeric_limits<double>::infinity();

  ChainPlan best;
  best.total_io = kInf;
  // Bitmask over the m-1 cut points: bit k set = cut after op k.
  const std::size_t masks = m >= 1 ? (1ull << (m - 1)) : 1;
  for (std::size_t mask = 0; mask < masks; ++mask) {
    std::vector<ChainGroup> groups;
    std::size_t lo = 0;
    bool feasible = true;
    double total = 0;
    for (std::size_t op = 0; op < m; ++op) {
      const bool cut = op + 1 == m || (mask >> op & 1);
      if (!cut) continue;
      if (spec.capacity_need(lo, op) > s) {
        feasible = false;
        break;
      }
      total += spec.tensor_sizes[lo] + spec.tensor_sizes[op + 1];
      groups.push_back({lo, op,
                        spec.tensor_sizes[lo] + spec.tensor_sizes[op + 1]});
      lo = op + 1;
    }
    if (feasible && total < best.total_io) {
      best.total_io = total;
      best.groups = std::move(groups);
    }
  }
  FIT_REQUIRE(best.total_io != kInf, "no feasible grouping");
  return best;
}

ChainSpec four_index_chain(double n, double s_sym) {
  const auto sz = tensor::approx_sizes(n, s_sym);
  ChainSpec spec;
  spec.tensor_sizes = {sz.a, sz.o1, sz.o2, sz.o3, sz.c};
  std::vector<double> sizes = spec.tensor_sizes;
  spec.capacity_need = [n, sizes](std::size_t lo, std::size_t hi) {
    const std::size_t len = hi - lo + 1;
    if (len == 1) return single_contraction_min_fast_memory(n);
    if (len == 2) return fused_pair_min_fast_memory(n);
    // Longer groups: the Theorem 6.1 live-set condition — fast memory
    // must hold the smallest tensor touched by the group — plus the
    // per-iteration working set of the Listing 7 style schedule.
    double min_t = sizes[lo];
    for (std::size_t k = lo; k <= hi + 1; ++k)
      min_t = std::min(min_t, sizes[k]);
    return min_t + 2 * n * n * n;
  };
  return spec;
}

}  // namespace fit::bounds
