// Generic fusion planning for chains of producer-consumer
// contractions — the paper's Section 4 machinery generalized beyond
// the four-step transform.
//
// Model: a chain of m operations over tensors T0 -op1-> T1 -> ... ->
// Tm with sizes t[0..m] (side inputs such as the small B matrices are
// lower order and ignored, as in the paper). When fast memory is
// large enough, each operation's tight standalone I/O is
// t[i-1] + t[i] (Listing 5), and by repeated application of the
// Fusion Lemma a fused contiguous group [lo..hi] has the I/O lower
// bound
//
//     t[lo-1] + t[hi]
//
// (all interior intermediates fully reused). Whether a group is
// *achievable* depends on capacity: pairs need S >= 3n^2+n+1
// (Theorem 5.1); longer groups need S >= min tensor size inside the
// group (the Theorem 6.1 live-set argument — for the full four-index
// chain this is S >= |C|, Theorem 6.2).
//
// plan_chain() finds the I/O-minimal partition into contiguous fused
// groups subject to those capacity constraints, by dynamic
// programming over prefixes — O(m^2). Applied to the four-index
// chain it reproduces the paper's conclusions exactly: op1234 when
// S >= |C|, op12/34 when 3n^2 <= S < |C|, unfused below.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

/// \file
/// \brief Generic fusion planning for producer-consumer contraction
/// chains (the Section 4 machinery generalized beyond four steps).

namespace fit::bounds {

/// A chain of m producer-consumer operations T0 -> T1 -> ... -> Tm,
/// described by its tensor sizes and a capacity oracle for fused
/// groups.
struct ChainSpec {
  /// Sizes t[0..m] of the chain tensors (m = number of operations).
  std::vector<double> tensor_sizes;
  /// Fast memory needed to execute operations [lo..hi] (0-based,
  /// inclusive) as one fused group at the t[lo-1]+t[hi] bound.
  std::function<double(std::size_t lo, std::size_t hi)> capacity_need;

  /// Number of operations m in the chain.
  std::size_t n_ops() const { return tensor_sizes.size() - 1; }
};

/// One fused group of a chain partition.
struct ChainGroup {
  std::size_t lo;  ///< First fused operation (0-based, inclusive).
  std::size_t hi;  ///< Last fused operation (0-based, inclusive).
  double io;       ///< Group I/O lower bound: t[lo-1] + t[hi].
};

/// A partition of the chain into contiguous fused groups.
struct ChainPlan {
  /// The fused groups, in chain order.
  std::vector<ChainGroup> groups;
  /// Sum of the groups' I/O bounds.
  double total_io = 0;
};

/// I/O of an explicit grouping (must partition [0..m) contiguously).
double chain_grouping_io(const ChainSpec& spec,
                         const std::vector<ChainGroup>& groups);

/// Optimal partition by dynamic programming. Throws if even the
/// all-singletons plan is infeasible for fast memory `s`.
ChainPlan plan_chain(const ChainSpec& spec, double s);

/// Brute-force over all 2^(m-1) partitions (test oracle; m <= ~20).
ChainPlan plan_chain_exhaustive(const ChainSpec& spec, double s);

/// The four-index transform as a ChainSpec: tensor sizes from Table 1
/// (with spatial factor s_sym on the output) and the paper's capacity
/// conditions (Thm 5.1 thresholds for pairs, the Thm 6.1 min-tensor
/// live-set condition for longer groups, plus the O(n^3) working set
/// of Listing 7 for the full chain).
ChainSpec four_index_chain(double n, double s_sym);

}  // namespace fit::bounds
