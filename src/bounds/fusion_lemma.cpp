#include "bounds/fusion_lemma.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace fit::bounds {

double fused_pair_lower_bound(const StageIO& producer,
                              const StageIO& consumer,
                              double intermediate_size) {
  FIT_REQUIRE(intermediate_size >= 0, "negative intermediate size");
  return producer.io_lower_bound + consumer.io_lower_bound -
         2.0 * intermediate_size;
}

double fused_chain_lower_bound(const std::vector<StageIO>& stages,
                               const std::vector<double>& intermediates) {
  FIT_REQUIRE(!stages.empty(), "empty chain");
  FIT_REQUIRE(intermediates.size() + 1 == stages.size(),
              "chain of m stages needs m-1 intermediates");
  double lb = 0.0;
  for (const auto& s : stages) lb += s.io_lower_bound;
  for (double o : intermediates) lb -= 2.0 * o;
  return lb;
}

double max_fusion_benefit(const StageIO& producer, const StageIO& consumer,
                          double intermediate_size) {
  const double unfused = producer.io_achievable + consumer.io_achievable;
  const double fused_lb =
      fused_pair_lower_bound(producer, consumer, intermediate_size);
  return std::max(0.0, unfused - fused_lb);
}

bool fusion_is_useful(const StageIO& producer, const StageIO& consumer,
                      double intermediate_size, double threshold) {
  const double unfused = producer.io_achievable + consumer.io_achievable;
  FIT_REQUIRE(unfused > 0, "unfused I/O must be positive");
  return max_fusion_benefit(producer, consumer, intermediate_size) /
             unfused >=
         threshold;
}

}  // namespace fit::bounds
