// The Fusion Lemma (paper Lemma 4.2 / Appendix A) and its consequences
// for chains of producer-consumer computations.
//
//   IO_LB(C1 ∘ C2) = IO_LB(C1) + IO_LB(C2) − 2·|O1|
//
// where O1 is the intermediate produced by C1 and consumed by C2.
// The lemma upper-bounds the *benefit* of fusion at 2·|O1|: if the
// intrinsic I/O of the two computations dwarfs the intermediate size,
// fusion is futile; if the intermediate dominates, fusion can remove
// almost all of its traffic.
#pragma once

#include <cstddef>
#include <vector>

/// \file
/// \brief The Fusion Lemma (Lemma 4.2) and its consequences for
/// producer-consumer chains.

namespace fit::bounds {

/// One computation in a producer-consumer chain, characterized by its
/// standalone I/O lower bound and achievable (tiled, unfused) I/O.
struct StageIO {
  double io_lower_bound;  ///< Standalone lower bound IO_LB(Ci).
  double io_achievable;   ///< What a tiled unfused execution attains.
};

/// Lower bound for the fusion of two adjacent stages whose shared
/// intermediate has `intermediate_size` elements.
double fused_pair_lower_bound(const StageIO& producer,
                              const StageIO& consumer,
                              double intermediate_size);

/// Lower bound for fusing a whole chain: stages s_0..s_{m-1} with
/// intermediates o_0..o_{m-2} (o_i between stage i and i+1). Repeated
/// application of the lemma:
///   sum IO_LB(s_i) − 2 * sum |o_i|
double fused_chain_lower_bound(const std::vector<StageIO>& stages,
                               const std::vector<double>& intermediates);

/// Maximum possible I/O reduction from fusing two adjacent stages,
/// relative to their unfused achievable I/O:
///   unfused_achievable − fused_lower_bound  (clamped at 0)
double max_fusion_benefit(const StageIO& producer, const StageIO& consumer,
                          double intermediate_size);

/// The paper's "utility of fusion" predicate: fusion is worth pursuing
/// only when the maximum possible benefit is a significant fraction of
/// the unfused cost (Sec. 3/4). `threshold` is that fraction.
bool fusion_is_useful(const StageIO& producer, const StageIO& consumer,
                      double intermediate_size, double threshold = 0.25);

}  // namespace fit::bounds
