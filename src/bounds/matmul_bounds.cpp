#include "bounds/matmul_bounds.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace fit::bounds {

namespace {
void check(double ni, double nj, double nk, double s) {
  FIT_REQUIRE(ni > 0 && nj > 0 && nk > 0, "matrix extents must be positive");
  FIT_REQUIRE(s > 0, "fast memory capacity must be positive");
}
}  // namespace

double matmul_lb_hong_kung(double ni, double nj, double nk, double s) {
  check(ni, nj, nk, s);
  return ni * nj * nk / std::sqrt(s);
}

double matmul_lb_irony(double ni, double nj, double nk, double s) {
  check(ni, nj, nk, s);
  return ni * nj * nk / (2.0 * std::sqrt(2.0 * s));
}

double matmul_lb_dongarra(double ni, double nj, double nk, double s) {
  check(ni, nj, nk, s);
  return 1.73 * ni * nj * nk / std::sqrt(s);
}

double matmul_lb_io_sum(double ni, double nj, double nk) {
  // inputs |A| = ni*nj, |B| = nj*nk; output |C| = ni*nk.
  return ni * nj + nj * nk + ni * nk;
}

double matmul_lb(double ni, double nj, double nk, double s) {
  return std::max(matmul_lb_dongarra(ni, nj, nk, s),
                  matmul_lb_io_sum(ni, nj, nk));
}

double matmul_tiled_io(double ni, double nj, double nk, double s) {
  check(ni, nj, nk, s);
  // If everything fits in fast memory, the in+out sum is achievable.
  const double sum = matmul_lb_io_sum(ni, nj, nk);
  if (sum <= s) return sum;
  return std::max(2.0 * ni * nj * nk / std::sqrt(s), sum);
}

}  // namespace fit::bounds
