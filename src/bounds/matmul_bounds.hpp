// Data-movement (I/O) lower bounds for matrix multiplication on a
// two-level memory hierarchy with fast-memory capacity S, in the
// red–blue pebble game model of Hong & Kung (paper Sec. 2.3).
//
// All bounds are in *elements moved* between slow and fast memory, for
// a product of an (ni x nj) by an (nj x nk) matrix.
#pragma once

#include <cstddef>

/// \file
/// \brief Red-blue pebble game I/O lower bounds for matrix
/// multiplication (Sec. 2.3).

namespace fit::bounds {

/// Hong & Kung (1981): Omega(ni*nj*nk / sqrt(S)) — asymptotic form,
/// returned with unit constant.
double matmul_lb_hong_kung(double ni, double nj, double nk, double s);

/// Irony, Toledo & Tiskin (2004): ni*nj*nk / (2*sqrt(2*S)).
double matmul_lb_irony(double ni, double nj, double nk, double s);

/// Dongarra, Pineau, Robert & Vivien (2008): 1.73 * ni*nj*nk / sqrt(S)
/// — the tightest published constant the paper uses.
double matmul_lb_dongarra(double ni, double nj, double nk, double s);

/// Sum of input and output sizes: every input element must be read and
/// every output written at least once. Always a valid lower bound, and
/// it dominates the volume bounds once S is large.
double matmul_lb_io_sum(double ni, double nj, double nk);

/// The effective lower bound the paper works with:
/// max(dongarra, in+out). (Sec. 5.1: "max(1.73 n^5/sqrt(S), 2 n^4)").
double matmul_lb(double ni, double nj, double nk, double s);

/// I/O of an efficiently tiled (but unfused) implementation:
/// ~2*ni*nj*nk/sqrt(S) for the highest-order term, or in+out when the
/// operands fit. Used as the achievable reference cost in Sec. 4's
/// worked example.
double matmul_tiled_io(double ni, double nj, double nk, double s);

}  // namespace fit::bounds
