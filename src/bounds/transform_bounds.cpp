#include "bounds/transform_bounds.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

#include "util/error.hpp"

namespace fit::bounds {

std::string to_string(FusionChoice f) {
  switch (f) {
    case FusionChoice::Unfused: return "op1/2/3/4";
    case FusionChoice::Fused12_34: return "op12/34";
    case FusionChoice::Fused1_23_4: return "op1/23/4";
    case FusionChoice::Fused123_4: return "op123/4";
    case FusionChoice::Fused1234: return "op1234";
  }
  return "?";
}

const std::array<FusionChoice, 5>& all_fusion_choices() {
  static const std::array<FusionChoice, 5> all = {
      FusionChoice::Unfused, FusionChoice::Fused12_34,
      FusionChoice::Fused1_23_4, FusionChoice::Fused123_4,
      FusionChoice::Fused1234};
  return all;
}

double io_opt(FusionChoice f, const tensor::ApproxSizes& sz) {
  switch (f) {
    case FusionChoice::Unfused:
      return (sz.a + sz.o1) + (sz.o1 + sz.o2) + (sz.o2 + sz.o3) +
             (sz.o3 + sz.c);
    case FusionChoice::Fused12_34:
      return (sz.a + sz.o2) + (sz.o2 + sz.c);
    case FusionChoice::Fused1_23_4:
      return (sz.a + sz.o1) + (sz.o1 + sz.o3) + (sz.o3 + sz.c);
    case FusionChoice::Fused123_4:
      return (sz.a + sz.o3) + (sz.o3 + sz.c);
    case FusionChoice::Fused1234:
      return sz.a + sz.c;
  }
  FIT_CHECK(false, "unreachable fusion choice");
  return 0;
}

double io_opt(FusionChoice f, double n, double s) {
  return io_opt(f, tensor::approx_sizes(n, s));
}

double single_contraction_min_fast_memory(double n) {
  // Listing 5: B (n^2) + one A row (n) + one scalar.
  return n * n + n + 1;
}

double fused_pair_min_fast_memory(double n) {
  // Listing 6: B1+B2 (2n^2) + I1 buffer (n^2) + A row (n) + 1.
  return 3 * n * n + n + 1;
}

bool fusion_possibly_useful(double n, double fast_memory) {
  // Sec. 5.1: for S < ~3n^2 the fused lower bound 3.46 n^5/sqrt(S)
  // exceeds the benefit cap; fusion is ruled out.
  return fast_memory >= 3 * n * n;
}

double full_reuse_min_fast_memory(const tensor::ApproxSizes& sz, double n) {
  // Theorem 6.2 necessary condition S >= |C| plus the Listing 7
  // working set of ~2n^3 for the per-iteration slices.
  return sz.c + 2 * n * n * n;
}

bool full_reuse_possible(const tensor::ApproxSizes& sz, double n,
                         double fast_memory) {
  return fast_memory >= full_reuse_min_fast_memory(sz, n);
}

double eq7_global_memory(double n, double tl, double s) {
  FIT_REQUIRE(tl >= 1 && tl <= n, "tile width must be in [1, n]");
  // Ni*Nj*Nk*Tl/2 (A slice) + Na*Nb*Nk*Tl/2 (intermediate slice)
  // + Na*Nb*Nc*Nd/(4s) (C).
  const double n3 = n * n * n;
  return n3 * tl / 2 + n3 * tl / 2 + n * n3 / (4 * s);
}

double eq8_global_memory(double n, double tl, double s) {
  FIT_REQUIRE(tl >= 1 && tl <= n, "tile width must be in [1, n]");
  // Ni*Nj*Nk*Tl/2 + Na*Nj*Nk*Tl + Na*Nb*Nk*Tl/2 + Na*Nb*Nc*Tl/2
  // + Na*Nb*Nc*Nd/(4s).
  const double n3 = n * n * n;
  return n3 * tl / 2 + n3 * tl + n3 * tl / 2 + n3 * tl / 2 +
         n * n3 / (4 * s);
}

double unfused_global_memory(double n, double s) {
  const auto sz = tensor::approx_sizes(n, s);
  // Largest live input+output pair across the four contractions.
  const double peak = std::max(
      std::max(sz.a + sz.o1, sz.o1 + sz.o2),
      std::max(sz.o2 + sz.o3, sz.o3 + sz.c));
  return peak;
}

namespace {
std::size_t max_n_such_that(double budget,
                            const std::function<double(double)>& need) {
  std::size_t lo = 2, hi = 1 << 20;
  if (need(static_cast<double>(lo)) > budget) return 0;
  while (lo + 1 < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (need(static_cast<double>(mid)) <= budget)
      lo = mid;
    else
      hi = mid;
  }
  return lo;
}
}  // namespace

std::size_t max_fused_problem(double global_memory, double tl, double s) {
  return max_n_such_that(global_memory, [&](double n) {
    return eq7_global_memory(n, std::min(tl, n), s);
  });
}

std::size_t max_unfused_problem(double global_memory, double s) {
  return max_n_such_that(
      global_memory, [&](double n) { return unfused_global_memory(n, s); });
}

std::vector<FusionAnalysisRow> analyze_fusion_choices(double n, double s) {
  const auto sz = tensor::approx_sizes(n, s);
  std::vector<FusionAnalysisRow> rows;
  for (auto f : all_fusion_choices()) {
    FusionAnalysisRow r;
    r.choice = f;
    r.io_lower_bound = io_opt(f, sz);
    switch (f) {
      case FusionChoice::Unfused:
        r.min_fast_memory = single_contraction_min_fast_memory(n);
        break;
      case FusionChoice::Fused1234:
        r.min_fast_memory = full_reuse_min_fast_memory(sz, n);
        break;
      default:
        r.min_fast_memory = fused_pair_min_fast_memory(n);
        break;
    }
    rows.push_back(r);
  }
  std::sort(rows.begin(), rows.end(),
            [](const FusionAnalysisRow& a, const FusionAnalysisRow& b) {
              return a.io_lower_bound < b.io_lower_bound;
            });
  return rows;
}

}  // namespace fit::bounds
