// I/O lower bounds and memory requirements for the four-index
// transform itself — the paper's Sections 5, 6 and Equations 7/8.
//
// All quantities are in tensor elements (words). Sizes use the
// symmetric Table 1 values via tensor::approx_sizes (or exact packed
// sizes where an Irreps assignment is given).
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "tensor/packed.hpp"

/// \file
/// \brief I/O lower bounds and memory requirements of the four-index
/// transform (Secs. 5-6, Eqs. 7-8).

namespace fit::bounds {

/// The five distinct fusion configurations the paper analyzes
/// (Sec. 5.3): "op1/2/3/4" is fully unfused, "op12/34" fuses the first
/// and last pair, etc.
enum class FusionChoice {
  Unfused,      ///< op1/2/3/4
  Fused12_34,   ///< op12/34
  Fused1_23_4,  ///< op1/23/4
  Fused123_4,   ///< op123/4
  Fused1234,    ///< op1234
};

/// Printable name of a fusion choice ("op12/34" etc.).
std::string to_string(FusionChoice f);
/// All five fusion choices, in the enum's declaration order.
const std::array<FusionChoice, 5>& all_fusion_choices();

/// Optimal (lower-bound) I/O between slow and fast memory for a fusion
/// choice, assuming S = Omega(n^2) so each (pair of) contraction(s)
/// attains its input+output tight bound (Theorem 5.1). For three- and
/// four-way fusions this is the paper's valid (>=) bound.
///
///   op1/2/3/4 : |A|+|O1| + |O1|+|O2| + |O2|+|O3| + |O3|+|C|
///   op12/34   : |A|+|O2| + |O2|+|C|
///   op1/23/4  : |A|+|O1| + |O1|+|O3| + |O3|+|C|
///   op123/4   : |A|+|O3| + |O3|+|C|
///   op1234    : |A|+|C|
double io_opt(FusionChoice f, const tensor::ApproxSizes& sz);
/// io_opt() with sizes derived from orbital extent `n` and spatial
/// symmetry factor `s` via tensor::approx_sizes.
double io_opt(FusionChoice f, double n, double s);

/// Theorem 5.1: fusing a consecutive pair of contractions is useful
/// (the |A|+|O2| tight bound is achievable) iff S >= 3n^2 + n + 1.
double fused_pair_min_fast_memory(double n);

/// Tight bound of a single tensor contraction in the chain
/// (Listing 5): achievable iff S >= n^2 + n + 1.
double single_contraction_min_fast_memory(double n);

/// Section 5.1: with S below ~3n^2 the Fusion Lemma already shows
/// fusion cannot beat unfused execution. Returns true when fusion is
/// not ruled out.
bool fusion_possibly_useful(double n, double fast_memory);

/// Theorems 6.1/6.2: S >= |C| is necessary (and, with the Listing 7
/// schedule, sufficient up to a 2n^3 lower-order term) for the full-
/// reuse I/O of |A|+|C|.
double full_reuse_min_fast_memory(const tensor::ApproxSizes& sz, double n);
/// True when `fast_memory` meets full_reuse_min_fast_memory.
bool full_reuse_possible(const tensor::ApproxSizes& sz, double n,
                         double fast_memory);

/// Equation 7: aggregate global memory required by the fused parallel
/// implementation (Listing 8), for orbital extent n, fused-loop tile
/// width Tl, and spatial symmetry factor s:
///   Ni*Nj*Nk*Tl/2 + Na*Nb*Nk*Tl/2 + Na*Nb*Nc*Nd/(4*s)
/// (all extents equal n; the first two terms are the per-iteration A
/// and intermediate slices, the last is C).
double eq7_global_memory(double n, double tl, double s);

/// Equation 8: aggregate global memory of the fused implementation
/// with inner 12/34 fusion (Listing 10):
///   n^3*Tl/2 + n^3*Tl + n^3*Tl/2 + n^3*Tl/2 + n^4/(4*s)
double eq8_global_memory(double n, double tl, double s);

/// Global memory needed by the fully unfused implementation: the
/// paper's "more than 3n^4/4 words" (input+output of the largest
/// contraction, |O1|+|O2|).
double unfused_global_memory(double n, double s);

/// Largest problem size (orbital count) whose *fused* transform fits
/// in `global_memory` words (binary search on eq7), and the unfused
/// equivalent. The gap between the two is the paper's headline
/// capability claim.
std::size_t max_fused_problem(double global_memory, double tl, double s);
/// Largest orbital count whose *unfused* transform fits in
/// `global_memory` words (see max_fused_problem).
std::size_t max_unfused_problem(double global_memory, double s);

/// One row of the Sec. 5.3 analysis: fusion choice, I/O lower bound,
/// and whether the total order of Theorem 5.2 admits it as optimal.
struct FusionAnalysisRow {
  FusionChoice choice;     ///< The fusion configuration analyzed.
  double io_lower_bound;   ///< Its I/O lower bound (elements).
  double min_fast_memory;  ///< Fast memory S needed to attain it.
};

/// Lower-bounds-guided analysis for a given n, s: every fusion choice
/// with its I/O bound, sorted ascending by bound — the pruning engine
/// the planner uses.
std::vector<FusionAnalysisRow> analyze_fusion_choices(double n, double s);

}  // namespace fit::bounds
