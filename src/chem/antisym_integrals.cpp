#include "chem/antisym_integrals.hpp"

#include <cmath>

#include "util/rng.hpp"

namespace fit::chem {

AntisymIntegralEngine::AntisymIntegralEngine(std::size_t n,
                                             tensor::Irreps irreps,
                                             std::uint64_t seed)
    : n_(n), irreps_(std::move(irreps)), seed_(seed) {
  FIT_REQUIRE(irreps_.n_orbitals() == n_, "irrep map extent mismatch");
}

double AntisymIntegralEngine::value(std::size_t i, std::size_t j,
                                    std::size_t k, std::size_t l) const {
  FIT_REQUIRE(i < n_ && j < n_ && k < n_ && l < n_,
              "integral index out of range");
  ++evaluations_;
  if ((irreps_.of(i) ^ irreps_.of(j) ^ irreps_.of(k) ^ irreps_.of(l)) != 0)
    return 0.0;
  const auto pij = tensor::signed_pair(i, j);
  const auto pkl = tensor::signed_pair(k, l);
  const double s = pij.sign * pkl.sign;
  if (s == 0.0) return 0.0;

  const double angular = hash_to_unit(pij.index, pkl.index, seed_ ^ 0xA5);
  const double cij = 0.5 * (static_cast<double>(i) + static_cast<double>(j));
  const double ckl = 0.5 * (static_cast<double>(k) + static_cast<double>(l));
  const double radial = 1.0 / (1.0 + std::fabs(cij - ckl));
  return s * angular * radial;
}

tensor::AntisymPackedA AntisymIntegralEngine::materialize() const {
  tensor::AntisymPackedA a(n_);
  for (std::size_t i = 1; i < n_; ++i)
    for (std::size_t j = 0; j < i; ++j)
      for (std::size_t k = 1; k < n_; ++k)
        for (std::size_t l = 0; l < k; ++l)
          a.set(i, j, k, l, value(i, j, k, l));
  return a;
}

}  // namespace fit::chem
