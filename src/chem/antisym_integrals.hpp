// Antisymmetric synthetic integral engine — the footnote-1 variant of
// chem::IntegralEngine: A(i,j,k,l) = -A(j,i,k,l) = -A(i,j,l,k), zero
// on i == j or k == l, zero on spatially forbidden quadruples, pure in
// its indices.
#pragma once

#include <cstddef>
#include <cstdint>

#include "tensor/antisym.hpp"
#include "tensor/irreps.hpp"

namespace fit::chem {

class AntisymIntegralEngine {
 public:
  AntisymIntegralEngine(std::size_t n, tensor::Irreps irreps,
                        std::uint64_t seed);

  std::size_t n() const { return n_; }
  const tensor::Irreps& irreps() const { return irreps_; }

  double value(std::size_t i, std::size_t j, std::size_t k,
               std::size_t l) const;

  std::uint64_t evaluations() const { return evaluations_; }

  tensor::AntisymPackedA materialize() const;

 private:
  std::size_t n_;
  tensor::Irreps irreps_;
  std::uint64_t seed_;
  mutable std::uint64_t evaluations_ = 0;
};

}  // namespace fit::chem
