#include "chem/coeffs.hpp"

#include <cmath>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace fit::chem {

tensor::Matrix make_mo_coefficients(const tensor::Irreps& irreps,
                                    std::uint64_t seed) {
  FIT_REQUIRE(irreps.is_contiguous(),
              "MO coefficients require contiguous irrep blocks");
  const std::size_t n = irreps.n_orbitals();
  tensor::Matrix b(n, n);
  for (std::size_t i = 0; i < n; ++i) b(i, i) = 1.0;

  // Collect the contiguous block ranges.
  std::vector<std::pair<std::size_t, std::size_t>> blocks;  // [lo, hi)
  std::size_t lo = 0;
  for (std::size_t i = 1; i <= n; ++i) {
    if (i == n || irreps.of(i) != irreps.of(lo)) {
      blocks.emplace_back(lo, i);
      lo = i;
    }
  }

  SplitMix64 rng(seed ^ 0xB10C5EEDull);
  for (const auto& [b0, b1] : blocks) {
    const std::size_t w = b1 - b0;
    if (w < 2) continue;
    // Enough random Givens rotations to mix the whole block.
    const std::size_t sweeps = 4 * w;
    for (std::size_t s = 0; s < sweeps; ++s) {
      const std::size_t p = b0 + rng.next_below(w);
      std::size_t q = b0 + rng.next_below(w);
      if (p == q) q = b0 + (q - b0 + 1) % w;
      const double theta = rng.next_double(0.0, 2.0 * M_PI);
      const double c = std::cos(theta), sn = std::sin(theta);
      // Rotate rows p and q of B in place.
      for (std::size_t col = 0; col < n; ++col) {
        const double xp = b(p, col), xq = b(q, col);
        b(p, col) = c * xp - sn * xq;
        b(q, col) = sn * xp + c * xq;
      }
    }
  }
  return b;
}

double orthogonality_defect(const tensor::Matrix& b) {
  const std::size_t n = b.rows();
  double defect = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < n; ++k) acc += b(i, k) * b(j, k);
      const double target = (i == j) ? 1.0 : 0.0;
      defect = std::max(defect, std::fabs(acc - target));
    }
  }
  return defect;
}

}  // namespace fit::chem
