// Synthetic molecular-orbital coefficient matrices B.
//
// B[a, i] maps AO index i to MO index a. To preserve the spatial
// symmetry of the transformed tensor, B must be symmetry-adapted:
// B[a, i] == 0 unless irrep(a) == irrep(i). We build a block-diagonal
// orthogonal matrix (random Givens rotations within each irrep block),
// which is well-conditioned and leaves the transform numerically
// benign.
#pragma once

#include <cstdint>

#include "tensor/irreps.hpp"
#include "tensor/matrix.hpp"

namespace fit::chem {

/// Build an n x n symmetry-adapted orthogonal transformation matrix.
/// `irreps` must be contiguous (blocks of consecutive orbitals).
tensor::Matrix make_mo_coefficients(const tensor::Irreps& irreps,
                                    std::uint64_t seed);

/// max_ij |(B * B^T - I)(i,j)| — orthogonality defect, used by tests.
double orthogonality_defect(const tensor::Matrix& b);

}  // namespace fit::chem
