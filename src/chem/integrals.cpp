#include "chem/integrals.hpp"

#include <cmath>

#include "tensor/pairs.hpp"
#include "util/rng.hpp"

namespace fit::chem {

IntegralEngine::IntegralEngine(std::size_t n, tensor::Irreps irreps,
                               std::uint64_t seed)
    : n_(n), irreps_(std::move(irreps)), seed_(seed) {
  FIT_REQUIRE(irreps_.n_orbitals() == n_, "irrep map extent mismatch");
}

double IntegralEngine::value(std::size_t i, std::size_t j, std::size_t k,
                             std::size_t l) const {
  FIT_REQUIRE(i < n_ && j < n_ && k < n_ && l < n_,
              "integral index out of range");
  evaluations_.fetch_add(1, std::memory_order_relaxed);
  if ((irreps_.of(i) ^ irreps_.of(j) ^ irreps_.of(k) ^ irreps_.of(l)) != 0)
    return 0.0;

  // Symmetrize by addressing through packed pair indices: any (i,j)
  // order and any (k,l) order hit the same hash inputs.
  const std::size_t pij = tensor::pack_pair_sym(i, j);
  const std::size_t pkl = tensor::pack_pair_sym(k, l);

  // Pseudo-random "angular" part, distinct per (ij,kl); note it is NOT
  // symmetric under (ij) <-> (kl) exchange, matching Table 1 where A
  // carries exactly two symmetry groups.
  const double angular = hash_to_unit(pij, pkl, seed_);

  // Coulomb-like radial decay between the centroids of the two charge
  // distributions, in "orbital index" coordinates.
  const double cij = 0.5 * (static_cast<double>(i) + static_cast<double>(j));
  const double ckl = 0.5 * (static_cast<double>(k) + static_cast<double>(l));
  const double radial = 1.0 / (1.0 + std::fabs(cij - ckl));

  // Diagonal dominance: (ii|ii)-like integrals are the largest, as in
  // real basis sets.
  const double diag =
      (i == j && k == l && i == k) ? 2.0 : (i == j || k == l) ? 0.25 : 0.0;

  return 0.5 * angular * radial + diag * radial;
}

tensor::PackedA IntegralEngine::materialize() const {
  tensor::PackedA a(n_);
  for (std::size_t i = 0; i < n_; ++i)
    for (std::size_t j = 0; j <= i; ++j)
      for (std::size_t k = 0; k < n_; ++k)
        for (std::size_t l = 0; l <= k; ++l)
          a.set(i, j, k, l, value(i, j, k, l));
  return a;
}

}  // namespace fit::chem
