// Synthetic atomic-orbital integral engine ("ComputeA" in the paper's
// listings).
//
// NWChem's direct transforms recompute two-electron AO integrals
// A(i,j,k,l) on the fly instead of storing the full tensor. The
// transform algorithms never inspect integral *values* — only their
// symmetry and the cost of producing them — so we substitute a
// deterministic synthetic kernel with the exact same structure:
//
//  * permutation symmetry  A(i,j,k,l) = A(j,i,k,l) = A(i,j,l,k)
//    (the (ij),(kl) groups of Table 1),
//  * spatial symmetry      A == 0 unless irrep(i)^irrep(j)^irrep(k)^
//    irrep(l) == 0 (so the transformed C provably carries the paper's
//    spatial sparsity),
//  * Coulomb-like magnitude decay with the "distance" between the
//    (ij) and (kl) charge distributions, and a diagonal dominance that
//    keeps downstream MP2-style denominators sane,
//  * a pure function of the indices, so re-computation is consistent
//    (required by the recompute schedule of Listing 3),
//  * an evaluation counter, so cost models can charge for integral
//    generation.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "tensor/irreps.hpp"
#include "tensor/packed.hpp"

namespace fit::chem {

class IntegralEngine {
 public:
  IntegralEngine(std::size_t n, tensor::Irreps irreps, std::uint64_t seed);

  IntegralEngine(IntegralEngine&& other) noexcept
      : n_(other.n_), irreps_(std::move(other.irreps_)), seed_(other.seed_),
        evaluations_(other.evaluations_.load()) {}

  std::size_t n() const { return n_; }
  const tensor::Irreps& irreps() const { return irreps_; }

  /// A(i,j,k,l). Pure in the indices; symmetric in (i,j) and (k,l);
  /// zero on spatially forbidden quadruples.
  double value(std::size_t i, std::size_t j, std::size_t k,
               std::size_t l) const;

  /// Number of value() evaluations since construction (counts every
  /// call, including re-computation). Thread-safe under the threaded
  /// executor.
  std::uint64_t evaluations() const { return evaluations_.load(); }
  void reset_evaluations() { evaluations_ = 0; }

  /// Materialize the full packed tensor A[ij, kl].
  tensor::PackedA materialize() const;

 private:
  std::size_t n_;
  tensor::Irreps irreps_;
  std::uint64_t seed_;
  mutable std::atomic<std::uint64_t> evaluations_{0};
};

}  // namespace fit::chem
