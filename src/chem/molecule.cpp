#include "chem/molecule.hpp"

#include "util/error.hpp"

namespace fit::chem {

std::vector<Molecule> paper_molecules() {
  // Occupied counts: roughly a quarter of the orbitals are occupied in
  // the paper's correlated-method workloads; the transform itself does
  // not depend on the split. Spatial group order 8 (D2h-like) gives
  // the n^4/32 output size the paper's listings use.
  return {
      {"Hyperpolar", 46, 12, 8, 1001, 368},
      {"C60H20", 72, 18, 8, 1002, 580},
      {"Uracil", 87, 22, 8, 1003, 698},
      {"C40H56", 128, 32, 8, 1004, 1023},
      {"Shell-Mixed", 149, 37, 8, 1005, 1194},
  };
}

Molecule paper_molecule(const std::string& name) {
  for (auto& m : paper_molecules())
    if (m.name == name) return m;
  FIT_REQUIRE(false, "unknown paper molecule: " << name);
  return {};  // unreachable
}

Molecule custom_molecule(std::string name, std::size_t n_orbitals,
                         unsigned irrep_order, std::uint64_t seed) {
  FIT_REQUIRE(n_orbitals >= 2, "molecule needs at least two orbitals");
  Molecule m;
  m.name = std::move(name);
  m.n_orbitals = n_orbitals;
  m.n_occupied = std::max<std::size_t>(1, n_orbitals / 4);
  m.irrep_order = irrep_order;
  m.seed = seed;
  m.paper_n_orbitals = n_orbitals;
  return m;
}

}  // namespace fit::chem
