// Synthetic benchmark molecules.
//
// The paper evaluates on five molecules whose only transform-relevant
// parameters are the orbital count n, the spatial-symmetry group order
// s, and the occupied-orbital fraction (for the downstream MP2-style
// consumer). We reproduce the same five, with orbital counts scaled by
// 1/8 so the simulated clusters (whose memories are scaled by the
// matching n^4 factor of 4096) see identical memory-pressure ratios —
// see DESIGN.md "Substitutions".
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace fit::chem {

struct Molecule {
  std::string name;
  std::size_t n_orbitals;       // extent of every tensor dimension
  std::size_t n_occupied;       // for the MP2 consumer
  unsigned irrep_order;         // spatial symmetry group order s
  std::uint64_t seed;           // integral / coefficient seed
  std::size_t paper_n_orbitals; // the unscaled orbital count of Sec. 8
};

/// The five molecules of the paper's Section 8 at 1/8 linear scale:
/// Hyperpolar (368 -> 46), C60H20 (580 -> 72), Uracil (698 -> 87),
/// C40H56 (1023 -> 128), Shell-Mixed (1194 -> 149).
std::vector<Molecule> paper_molecules();

/// Look up one of the paper molecules by (case-sensitive) name.
Molecule paper_molecule(const std::string& name);

/// A custom synthetic molecule; occupied count defaults to n/4.
Molecule custom_molecule(std::string name, std::size_t n_orbitals,
                         unsigned irrep_order, std::uint64_t seed = 42);

}  // namespace fit::chem
