#include "chem/mp2.hpp"

#include "util/error.hpp"

namespace fit::chem {

std::vector<double> synthetic_orbital_energies(std::size_t n_orbitals,
                                               std::size_t n_occupied) {
  FIT_REQUIRE(n_occupied > 0 && n_occupied < n_orbitals,
              "need 0 < n_occupied < n_orbitals");
  std::vector<double> eps(n_orbitals);
  const auto no = static_cast<double>(n_occupied);
  for (std::size_t p = 0; p < n_orbitals; ++p) {
    if (p < n_occupied) {
      // Occupied: from about -2.0 up to -0.5 (HOMO).
      eps[p] = -2.0 + 1.5 * static_cast<double>(p) / no;
    } else {
      // Virtual: from +0.5 (LUMO) upward.
      eps[p] = 0.5 + 1.5 * static_cast<double>(p - n_occupied) /
                         static_cast<double>(n_orbitals - n_occupied);
    }
  }
  return eps;
}

double mp2_energy(const tensor::PackedC& c, std::size_t n_occupied,
                  const std::vector<double>& eps) {
  const std::size_t n = c.n();
  FIT_REQUIRE(eps.size() == n, "orbital energy count mismatch");
  FIT_REQUIRE(n_occupied < n, "no virtual orbitals");
  double e2 = 0.0;
  for (std::size_t i = 0; i < n_occupied; ++i) {
    for (std::size_t j = 0; j < n_occupied; ++j) {
      for (std::size_t a = n_occupied; a < n; ++a) {
        for (std::size_t b = n_occupied; b < n; ++b) {
          const double iajb = c.get(i, a, j, b);
          const double ibja = c.get(i, b, j, a);
          const double denom = eps[i] + eps[j] - eps[a] - eps[b];
          e2 += iajb * (2.0 * iajb - ibja) / denom;
        }
      }
    }
  }
  return e2;
}

}  // namespace fit::chem
