// MP2-style consumer of the transformed integrals.
//
// The four-index transform exists to feed correlated methods; the
// canonical first consumer is second-order Møller–Plesset perturbation
// theory. We evaluate the closed-shell MP2 correlation energy
//
//   E2 = sum_{i,j in occ; a,b in virt}
//        (ia|jb) * [ 2(ia|jb) - (ib|ja) ] / (e_i + e_j - e_a - e_b)
//
// over the MO integrals C (chemist's notation (pq|rs) = C[p,q,r,s]),
// with synthetic monotone orbital energies. This exercises the full
// read API of the result tensor, including its spatial sparsity.
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/packed.hpp"

namespace fit::chem {

/// Synthetic canonical orbital energies: occupied negative and
/// increasing, virtual positive and increasing, with a HOMO-LUMO gap —
/// enough structure for well-behaved MP2 denominators.
std::vector<double> synthetic_orbital_energies(std::size_t n_orbitals,
                                               std::size_t n_occupied);

/// Closed-shell MP2 correlation energy from transformed integrals.
double mp2_energy(const tensor::PackedC& c, std::size_t n_occupied,
                  const std::vector<double>& orbital_energies);

}  // namespace fit::chem
