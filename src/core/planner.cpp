#include "core/planner.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "util/error.hpp"
#include "util/format.hpp"

namespace fit::core {

using bounds::FusionChoice;

Plan plan_fusion(double n, double s, double fast_memory_elements) {
  FIT_REQUIRE(n >= 2 && s >= 1 && fast_memory_elements >= 1,
              "bad planner arguments");
  Plan plan;
  plan.fast_memory_elements = fast_memory_elements;
  plan.n = n;
  plan.s = s;
  auto rows = bounds::analyze_fusion_choices(n, s);
  for (const auto& r : rows) {
    PlanEntry e;
    e.choice = r.choice;
    e.io_lower_bound = r.io_lower_bound;
    e.min_fast_memory = r.min_fast_memory;
    e.feasible = fast_memory_elements >= r.min_fast_memory;
    e.pruned = false;
    plan.entries.push_back(e);
  }
  // rows come sorted ascending by bound; the first feasible entry is
  // the winner, everything after it is pruned (its *lower bound*
  // already exceeds the winner's achievable I/O, which is tight for
  // the configurations we implement — Theorem 5.1 / Listing 7).
  bool found = false;
  for (auto& e : plan.entries) {
    if (!e.feasible) {
      e.note = "needs S >= " + human_count(e.min_fast_memory);
      continue;
    }
    if (!found) {
      plan.selected = e.choice;
      e.note = "selected";
      found = true;
    } else {
      e.pruned = true;
      e.note = "pruned: bound above selected choice's tight I/O";
    }
  }
  FIT_REQUIRE(found, "no feasible fusion configuration: fast memory "
                         << human_count(fast_memory_elements)
                         << " elements is below even the unfused need");
  return plan;
}

Plan replan_fusion(const Plan& previous, double new_fast_memory_elements) {
  FIT_REQUIRE(previous.n >= 2, "previous plan carries no problem size");
  Plan plan =
      plan_fusion(previous.n, previous.s, new_fast_memory_elements);
  if (plan.selected != previous.selected) {
    for (auto& e : plan.entries) {
      if (e.choice != plan.selected) continue;
      e.note = "degraded: " + bounds::to_string(previous.selected) +
               " -> " + bounds::to_string(plan.selected) +
               " after capacity loss (S " +
               human_count(previous.fast_memory_elements) + " -> " +
               human_count(new_fast_memory_elements) + " elements)";
    }
  }
  return plan;
}

runtime::MachineConfig apply_rates(runtime::MachineConfig machine,
                                   const PlanRates& rates) {
  if (rates.flops_per_rank > 0) machine.flops_per_rank = rates.flops_per_rank;
  if (rates.net_bandwidth_bps > 0)
    machine.net_bandwidth_bps = rates.net_bandwidth_bps;
  if (rates.integrals_per_sec > 0)
    machine.integrals_per_sec = rates.integrals_per_sec;
  return machine;
}

ClusterPlan plan_for_cluster(const Problem& p,
                             const runtime::MachineConfig& machine,
                             std::size_t tile_l) {
  return plan_for_cluster(p, machine, tile_l, PlanRates{});
}

ClusterPlan plan_for_cluster(const Problem& p,
                             const runtime::MachineConfig& machine,
                             std::size_t tile_l, const PlanRates& rates) {
  const runtime::MachineConfig m = apply_rates(machine, rates);
  ClusterPlan cp;
  const double n = static_cast<double>(p.n());
  const double s = static_cast<double>(p.irreps.order());
  const auto sz = p.sizes();
  cp.aggregate_need_unfused_bytes =
      8.0 * static_cast<double>(sz.unfused_peak() + sz.c);
  cp.aggregate_need_fused_bytes =
      8.0 * bounds::eq8_global_memory(n, static_cast<double>(tile_l), s);
  const double agg = m.aggregate_memory_bytes();
  cp.use_fused_outer = cp.aggregate_need_unfused_bytes * 1.10 > agg;

  // Inner transform (per l-slice): its output is the full C, which for
  // problems of interest exceeds local memory, so by Thm 6.2 full
  // reuse is impossible locally and op12/34 is the best remaining
  // choice (Thm 5.2). With a large local memory op1234 wins.
  const double local_elems = m.mem_per_rank_bytes() / 8.0;
  const double c_elems = static_cast<double>(sz.c);
  cp.inner_choice = local_elems >= c_elems + 2 * n * n * n
                        ? FusionChoice::Fused1234
                        : FusionChoice::Fused12_34;

  cp.max_n_unfused = bounds::max_unfused_problem(agg / 8.0, s);
  cp.max_n_fused = bounds::max_fused_problem(
      agg / 8.0, static_cast<double>(tile_l), s);

  // Coarse time estimates at the effective rates: symmetry-packed flop
  // volume (~3 n^5 flops unfused, ~1.5x fused — schedules_seq.hpp)
  // spread over aggregate compute, plus the configuration's I/O lower
  // bound over aggregate injection bandwidth. Deliberately optimistic
  // (a lower-bound-shaped estimate, like everything in this planner) —
  // it orders admission queues, it does not promise wall clocks.
  const double ranks = static_cast<double>(m.n_ranks());
  const double n5 = n * n * n * n * n;
  const double agg_flops = m.flops_per_rank * ranks;
  const double agg_net = m.net_bandwidth_bps * ranks;
  const double io_unfused =
      bounds::io_opt(FusionChoice::Unfused, n, s);
  const double io_fused = bounds::io_opt(FusionChoice::Fused1234, n, s);
  cp.est_seconds_unfused =
      3.0 * n5 / agg_flops + 8.0 * io_unfused / agg_net;
  cp.est_seconds_fused =
      4.5 * n5 / agg_flops + 8.0 * io_fused / agg_net;
  cp.rate_source = rates.source;
  return cp;
}

BatchPlan plan_batch(const Problem& p,
                     const runtime::MachineConfig& machine,
                     std::size_t tile_l, std::size_t n_members,
                     const PlanRates& rates) {
  const runtime::MachineConfig m = apply_rates(machine, rates);
  BatchPlan bp;
  bp.n_members = n_members == 0 ? 1 : n_members;
  bp.rate_source = rates.source;

  const double n = static_cast<double>(p.n());
  const double s = static_cast<double>(p.irreps.order());
  const auto sz = p.sizes();
  const double a = static_cast<double>(sz.a);
  const double c = static_cast<double>(sz.c);
  const double members = static_cast<double>(bp.n_members);

  // Unfused batch peak: the shared A lives until the last member's
  // first contraction, and exactly one member's intermediate chain is
  // in flight at a time (each member's C gathers and frees before the
  // next starts).
  const double chain = static_cast<double>(
      std::max({sz.o1 + sz.o2, sz.o2 + sz.o3, sz.o3 + sz.c}));
  const double unfused_total = 8.0 * (a + chain) * 1.10;

  const double agg = m.aggregate_memory_bytes();
  bp.use_fused_outer = unfused_total > agg;

  if (bp.use_fused_outer) {
    // Fused-outer batch: only the per-slice working set is shared, but
    // every member's C stays resident for the whole run.
    const double slice_set =
        bounds::eq8_global_memory(n, static_cast<double>(tile_l), s) - c;
    bp.shared_bytes = 8.0 * std::max(slice_set, 0.0);
    bp.per_member_bytes = 8.0 * c;
  } else {
    bp.shared_bytes = 8.0 * a;
    bp.per_member_bytes = 8.0 * chain;
  }
  bp.total_need_bytes =
      bp.shared_bytes + (bp.use_fused_outer ? members : 1.0) *
                            bp.per_member_bytes;

  // Member-invariant work: evaluating the AO integrals into A, spread
  // over the ranks' integral engines plus the puts that store it.
  const double ranks = static_cast<double>(m.n_ranks());
  const double agg_net = m.net_bandwidth_bps * ranks;
  bp.est_seconds_shared =
      a / (m.integrals_per_sec * ranks) + 8.0 * a / agg_net;

  // Per-member work: the contraction chain's flops and I/O at the
  // effective rates (same lower-bound shape as plan_for_cluster).
  const double n5 = n * n * n * n * n;
  const double agg_flops = m.flops_per_rank * ranks;
  const double flops =
      bp.use_fused_outer ? 4.5 * n5 : 3.0 * n5;
  const double io = bounds::io_opt(
      bp.use_fused_outer ? FusionChoice::Fused1234 : FusionChoice::Unfused,
      n, s);
  bp.est_seconds_per_member = flops / agg_flops + 8.0 * io / agg_net;

  bp.est_seconds_batched =
      bp.est_seconds_shared + members * bp.est_seconds_per_member;
  bp.est_seconds_sequential =
      members * (bp.est_seconds_shared + bp.est_seconds_per_member);
  return bp;
}

std::string to_string(const Plan& plan) {
  TextTable t({"fusion", "I/O lower bound", "min fast memory", "status"});
  for (const auto& e : plan.entries) {
    std::string status = e.pruned ? "pruned" : e.feasible
                             ? (e.choice == plan.selected ? "SELECTED" : "ok")
                             : "infeasible";
    t.add_row({bounds::to_string(e.choice), human_count(e.io_lower_bound),
               human_count(e.min_fast_memory), status});
  }
  std::ostringstream oss;
  oss << t.str("fusion plan (S = " +
               human_count(plan.fast_memory_elements) + " elements)");
  return oss.str();
}

BalancePick choose_balance(const runtime::Cluster& cluster,
                           const ga::TaskCounter& counter,
                           std::span<const double> cost_s,
                           std::span<const std::size_t> owner,
                           std::size_t batch) {
  // Candidates in tie-break order: the simpler mechanism wins when the
  // modeled makespans are equal (Static beats everything it ties —
  // dynamic balancing must *pay* for its scheduling traffic).
  static constexpr ga::Balance kCandidates[] = {
      ga::Balance::Static,  ga::Balance::Batched, ga::Balance::PerNode,
      ga::Balance::Tree,    ga::Balance::Steal,   ga::Balance::Counter,
  };
  BalancePick pick;
  pick.batch = batch;
  double best = std::numeric_limits<double>::infinity();
  for (ga::Balance b : kCandidates) {
    ga::TaskPlan plan =
        ga::plan_tasks(cluster, b, counter, cost_s, owner, batch);
    if (plan.makespan_s < best) {
      best = plan.makespan_s;
      pick.balance = b;
      pick.plan = std::move(plan);
    }
  }
  return pick;
}

}  // namespace fit::core
