// Lower-bounds-guided planning — the paper's methodology turned into
// an API. Instead of auto-tuning over thousands of fusion/tiling
// configurations, the planner:
//
//   1. computes the I/O lower bound of every fusion configuration
//      (Sec. 5.3) and prunes those whose *best possible* I/O cannot
//      beat a cheaper configuration's achievable I/O;
//   2. applies the capacity conditions (Thm 5.1: S >= 3n^2+n+1 for a
//      useful pair fusion; Thm 6.2: S >= |C| for full reuse) to mark
//      configurations infeasible for the machine at hand;
//   3. picks the feasible configuration with the least I/O bound,
//      which by Theorem 5.2's total order is op1234 when C fits in
//      aggregate memory, op12/34 for the inner transform, and yields
//      the fuse/unfuse hybrid of Sec. 7.4 at the cluster level.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "bounds/transform_bounds.hpp"
#include "core/problem.hpp"
#include "runtime/machine.hpp"

namespace fit::core {

struct PlanEntry {
  bounds::FusionChoice choice;
  double io_lower_bound;    // elements, between slow and fast memory
  double min_fast_memory;   // elements of fast memory needed
  bool feasible;            // fits the given fast memory
  bool pruned;              // dominated by a better feasible choice
  std::string note;
};

struct Plan {
  std::vector<PlanEntry> entries;        // all five choices, annotated
  bounds::FusionChoice selected;
  double fast_memory_elements;
  double n = 0, s = 1;                   // problem the plan was made for
};

/// Analyze all fusion configurations for extent n, spatial factor s,
/// against a fast memory of `fast_memory_elements`, and select the
/// best feasible one.
Plan plan_fusion(double n, double s, double fast_memory_elements);

/// Graceful degradation: re-plan `previous` against a reduced fast
/// memory (a capacity-shrink fault or rank death lowered S). Selection
/// walks Theorem 5.2's total order downward exactly when the capacity
/// conditions (Thm 5.1 / Thm 6.2) stop holding; the selected entry's
/// note records any downgrade. Throws like plan_fusion when even the
/// unfused transform no longer fits.
Plan replan_fusion(const Plan& previous, double new_fast_memory_elements);

/// Cluster-level plan (Sec. 7): disk <-> aggregate-memory level picks
/// fused vs unfused (the hybrid decision); the aggregate <-> local
/// level picks the inner schedule for the per-slice transform.
struct ClusterPlan {
  bool use_fused_outer;                  // false: unfused fits, use it
  bounds::FusionChoice inner_choice;     // schedule of the inner
                                         // four-index transform
  double aggregate_need_unfused_bytes;
  double aggregate_need_fused_bytes;
  std::size_t max_n_unfused;             // largest n the cluster fits
  std::size_t max_n_fused;
};

ClusterPlan plan_for_cluster(const Problem& p,
                             const runtime::MachineConfig& machine,
                             std::size_t tile_l);

/// Render a plan as a printable table (used by examples/benches).
std::string to_string(const Plan& plan);

}  // namespace fit::core
