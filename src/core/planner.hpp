// Lower-bounds-guided planning — the paper's methodology turned into
// an API. Instead of auto-tuning over thousands of fusion/tiling
// configurations, the planner:
//
//   1. computes the I/O lower bound of every fusion configuration
//      (Sec. 5.3) and prunes those whose *best possible* I/O cannot
//      beat a cheaper configuration's achievable I/O;
//   2. applies the capacity conditions (Thm 5.1: S >= 3n^2+n+1 for a
//      useful pair fusion; Thm 6.2: S >= |C| for full reuse) to mark
//      configurations infeasible for the machine at hand;
//   3. picks the feasible configuration with the least I/O bound,
//      which by Theorem 5.2's total order is op1234 when C fits in
//      aggregate memory, op12/34 for the inner transform, and yields
//      the fuse/unfuse hybrid of Sec. 7.4 at the cluster level.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "bounds/transform_bounds.hpp"
#include "core/problem.hpp"
#include "ga/task_counter.hpp"
#include "runtime/machine.hpp"

/// \file
/// \brief Lower-bounds-guided fusion planning (Sec. 5/6 conditions,
/// Thm 5.2 selection order, the Sec. 7.4 cluster-level hybrid, and
/// the per-phase balance-mode chooser behind ga::Balance::Auto.

namespace fit::core {

/// One fusion configuration annotated with its bound analysis.
struct PlanEntry {
  /// The fusion configuration this entry describes.
  bounds::FusionChoice choice;
  /// I/O lower bound in elements, between slow and fast memory.
  double io_lower_bound;
  /// Elements of fast memory needed for the bound to be attainable.
  double min_fast_memory;
  /// True when the configuration fits the given fast memory.
  bool feasible;
  /// True when a better feasible choice dominates this one.
  bool pruned;
  /// Human-readable rationale (pruning/infeasibility/downgrade).
  std::string note;
};

/// The planner's verdict over all fusion configurations.
struct Plan {
  /// All five fusion choices, annotated with bounds and feasibility.
  std::vector<PlanEntry> entries;
  /// The selected (least-I/O feasible) configuration.
  bounds::FusionChoice selected;
  /// Fast-memory budget (elements) the plan was made against.
  double fast_memory_elements;
  /// Problem extent the plan was made for.
  double n = 0;
  /// Spatial symmetry factor the plan was made for.
  double s = 1;
};

/// Analyze all fusion configurations for extent n, spatial factor s,
/// against a fast memory of `fast_memory_elements`, and select the
/// best feasible one.
Plan plan_fusion(double n, double s, double fast_memory_elements);

/// Graceful degradation: re-plan `previous` against a reduced fast
/// memory (a capacity-shrink fault or rank death lowered S). Selection
/// walks Theorem 5.2's total order downward exactly when the capacity
/// conditions (Thm 5.1 / Thm 6.2) stop holding; the selected entry's
/// note records any downgrade. Throws like plan_fusion when even the
/// unfused transform no longer fits.
Plan replan_fusion(const Plan& previous, double new_fast_memory_elements);

/// Effective machine rates the time-aware planner prices work at.
/// Zero fields mean "take the MachineConfig's nominal rate"; the
/// serve::CostOracle substitutes bench-measured values and labels the
/// source, so plan selection (and everything the DES claim planner
/// derives from the machine's alpha-beta model) tracks what the
/// hardware actually delivers rather than its data-sheet numbers.
struct PlanRates {
  double flops_per_rank = 0;       ///< 0 = machine nominal.
  double net_bandwidth_bps = 0;    ///< 0 = machine nominal.
  double integrals_per_sec = 0;    ///< 0 = machine nominal.
  std::string source = "nominal";  ///< "nominal" or "measured".
};

/// Substitute `rates` into a machine description. Clusters built from
/// the returned config charge compute and wire time at the effective
/// rates, which is how choose_balance's DES and the simulation itself
/// become oracle-backed without any schedule code changing.
runtime::MachineConfig apply_rates(runtime::MachineConfig machine,
                                   const PlanRates& rates);

/// Cluster-level plan (Sec. 7): disk <-> aggregate-memory level picks
/// fused vs unfused (the hybrid decision); the aggregate <-> local
/// level picks the inner schedule for the per-slice transform.
struct ClusterPlan {
  /// False when the unfused intermediates fit aggregate memory.
  bool use_fused_outer;
  /// Schedule of the inner four-index transform.
  bounds::FusionChoice inner_choice;
  /// Aggregate bytes the unfused intermediate chain needs.
  double aggregate_need_unfused_bytes;
  /// Aggregate bytes the fused outer schedule needs per l-slice.
  double aggregate_need_fused_bytes;
  /// Largest extent n the cluster fits with the unfused chain.
  std::size_t max_n_unfused;
  /// Largest extent n the cluster fits with the fused schedule.
  std::size_t max_n_fused;
  /// Coarse transform-time estimates (seconds) at the rates the plan
  /// was priced with: symmetry-packed flop volume over aggregate
  /// compute plus the I/O lower bound over injection bandwidth. The
  /// serve admission controller orders its queue and reports expected
  /// cost from these.
  double est_seconds_unfused = 0;
  double est_seconds_fused = 0;
  /// Where the pricing rates came from ("nominal" or "measured").
  std::string rate_source = "nominal";
};

/// Evaluate the two-level (disk/aggregate/local) plan of Sec. 7 for a
/// problem on a machine, with fused outer-slice width `tile_l`.
ClusterPlan plan_for_cluster(const Problem& p,
                             const runtime::MachineConfig& machine,
                             std::size_t tile_l);

/// plan_for_cluster priced at explicit effective rates (the measured
/// ones from serve::CostOracle::rates(), or nominal defaults).
ClusterPlan plan_for_cluster(const Problem& p,
                             const runtime::MachineConfig& machine,
                             std::size_t tile_l, const PlanRates& rates);

/// Amortization plan for a shared-basis batch of `n_members`
/// transforms (the serve layer's `batch` requests): which state and
/// work are member-invariant, what each member adds, and the
/// batched-vs-sequential time estimates the admission controller and
/// the throughput bench report. Like everything in this planner the
/// estimates are lower-bound-shaped: they order queues and justify
/// batching, they do not promise wall clocks.
struct BatchPlan {
  /// Members the plan was made for.
  std::size_t n_members = 1;
  /// True when the batch runs the fused-outer schedule (per-slice A,
  /// every member's C live for the whole run) because the unfused
  /// chain's batch peak does not fit aggregate memory.
  bool use_fused_outer = false;
  /// Aggregate bytes of member-invariant state: the shared AO tensor A
  /// under the unfused chain, or the per-slice A/O2 working set under
  /// the fused schedule.
  double shared_bytes = 0;
  /// Aggregate bytes each member adds at the batch's peak: one
  /// member's intermediate chain under the unfused schedule (members
  /// run one at a time), or its resident C under the fused schedule
  /// (all members' C accumulate across every slice).
  double per_member_bytes = 0;
  /// Aggregate bytes the whole batch needs at its peak — what the
  /// serve admission controller charges against remaining capacity.
  double total_need_bytes = 0;
  /// Estimated seconds of member-invariant work (evaluating the AO
  /// integrals into A), paid once per batch.
  double est_seconds_shared = 0;
  /// Estimated seconds each member adds (its contraction chain's flops
  /// and I/O at the effective rates).
  double est_seconds_per_member = 0;
  /// est_seconds_shared + n_members * est_seconds_per_member.
  double est_seconds_batched = 0;
  /// n_members * (est_seconds_shared + est_seconds_per_member): every
  /// member re-deriving A for itself, the no-batching baseline.
  double est_seconds_sequential = 0;
  /// Where the pricing rates came from ("nominal" or "measured").
  std::string rate_source = "nominal";
};

/// Evaluate the shared-basis batch plan for `n_members` transforms of
/// problem `p` on a machine, priced at explicit effective rates.
BatchPlan plan_batch(const Problem& p,
                     const runtime::MachineConfig& machine,
                     std::size_t tile_l, std::size_t n_members,
                     const PlanRates& rates = {});

/// Render a plan as a printable table (used by examples/benches).
std::string to_string(const Plan& plan);

/// The per-phase verdict behind ga::Balance::Auto.
struct BalancePick {
  /// The winning fixed mode (never Auto).
  ga::Balance balance = ga::Balance::Static;
  /// Dequeue granularity the candidates were planned with (the caller's
  /// batch, or 0 when plan_tasks derived it from the auto rule).
  std::size_t batch = 0;
  /// The winning mode's claim plan, ready to replay — choosing and
  /// planning are one pass, so Auto never pays a second DES run.
  ga::TaskPlan plan;
};

/// Choose the cheapest balance mode for one claimed phase from the
/// alpha-beta cost model: runs ga::plan_tasks for every fixed mode on
/// the phase's cost estimates and picks the least simulated makespan
/// (TaskPlan::makespan_s). Ties prefer the simpler mechanism, in the
/// order Static, Batched, PerNode, Tree, Steal, Counter — so Auto
/// degenerates to Static whenever dynamic balancing cannot pay for its
/// own scheduling traffic. `batch` is forwarded to plan_tasks
/// (0 = the claims-per-rank auto rule).
BalancePick choose_balance(const runtime::Cluster& cluster,
                           const ga::TaskCounter& counter,
                           std::span<const double> cost_s,
                           std::span<const std::size_t> owner,
                           std::size_t batch = 0);

}  // namespace fit::core
