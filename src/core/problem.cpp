#include "core/problem.hpp"

#include "chem/coeffs.hpp"

namespace fit::core {

Problem make_problem(const chem::Molecule& molecule) {
  auto irreps =
      tensor::Irreps::contiguous(molecule.n_orbitals, molecule.irrep_order);
  chem::IntegralEngine engine(molecule.n_orbitals, irreps, molecule.seed);
  auto b = chem::make_mo_coefficients(irreps, molecule.seed * 7919 + 13);
  return Problem{molecule, std::move(irreps), std::move(engine),
                 std::move(b)};
}

}  // namespace fit::core
