// A fully specified four-index transform problem instance.
#pragma once

#include <cstddef>

#include "chem/integrals.hpp"
#include "chem/molecule.hpp"
#include "tensor/irreps.hpp"
#include "tensor/matrix.hpp"
#include "tensor/packed.hpp"

/// \file
/// \brief Problem instance: molecule, symmetry, integral source, and
/// the transformation matrix B.

namespace fit::core {

/// Bundles everything a schedule needs: the orbital extent, the spatial
/// symmetry assignment, the on-the-fly integral source, and the
/// transformation matrix B.
struct Problem {
  /// The molecule (orbital extent, irrep order, RNG seed).
  chem::Molecule molecule;
  /// Spatial symmetry assignment of the orbitals.
  tensor::Irreps irreps;
  /// Deterministic on-the-fly integral source.
  chem::IntegralEngine engine;
  /// Transformation matrix, n x n, indexed B[a, i].
  tensor::Matrix b;

  /// Orbital extent n of the transform.
  std::size_t n() const { return molecule.n_orbitals; }

  /// Exact packed tensor sizes (Table 1) for this instance.
  tensor::TensorSizes sizes() const {
    return tensor::packed_sizes(n(), irreps);
  }
};

/// Construct the problem for a molecule: contiguous irreps of the
/// molecule's group order, seeded integral engine, symmetry-adapted
/// orthogonal B.
Problem make_problem(const chem::Molecule& molecule);

}  // namespace fit::core
