#include "core/schedules_antisym.hpp"

#include <vector>

#include "blas/gemm.hpp"
#include "blas/level1.hpp"
#include "chem/coeffs.hpp"
#include "tensor/tensor4.hpp"
#include "util/timer.hpp"

namespace fit::core {

using tensor::AntisymPackedC;
using tensor::Matrix;
using tensor::npairs_strict;
using tensor::pack_pair_strict;
using tensor::Tensor4;

AntisymProblem make_antisym_problem(std::size_t n, unsigned irrep_order,
                                    std::uint64_t seed) {
  auto irreps = tensor::Irreps::contiguous(n, irrep_order);
  chem::AntisymIntegralEngine engine(n, irreps, seed);
  auto b = chem::make_mo_coefficients(irreps, seed * 31 + 7);
  return AntisymProblem{n, std::move(irreps), std::move(engine),
                        std::move(b)};
}

tensor::AntisymPackedC antisym_reference_transform(const AntisymProblem& p) {
  const std::size_t n = p.n;
  const std::size_t n2 = n * n, n3 = n2 * n;
  const Matrix& b = p.b;

  Tensor4 a(n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t k = 0; k < n; ++k)
        for (std::size_t l = 0; l < n; ++l)
          a(i, j, k, l) = p.engine.value(i, j, k, l);

  Tensor4 t1(n), t2(n), t3(n), c(n);
  blas::gemm(blas::Trans::No, blas::Trans::No, n, n3, n, 1.0, b.data(), n,
             a.data(), n3, 0.0, t1.data(), n3);
  for (std::size_t al = 0; al < n; ++al)
    blas::gemm(blas::Trans::No, blas::Trans::No, n, n2, n, 1.0, b.data(), n,
               t1.data() + al * n3, n2, 0.0, t2.data() + al * n3, n2);
  for (std::size_t ab = 0; ab < n2; ++ab)
    blas::gemm(blas::Trans::No, blas::Trans::No, n, n, n, 1.0, b.data(), n,
               t2.data() + ab * n2, n, 0.0, t3.data() + ab * n2, n);
  for (std::size_t ab = 0; ab < n2; ++ab)
    blas::gemm(blas::Trans::No, blas::Trans::Yes, n, n, n, 1.0,
               t3.data() + ab * n2, n, b.data(), n, 0.0, c.data() + ab * n2,
               n);

  AntisymPackedC out(n, p.irreps);
  for (std::size_t aa = 1; aa < n; ++aa)
    for (std::size_t bb = 0; bb < aa; ++bb) {
      const auto hab = p.irreps.pair_irrep(aa, bb);
      for (std::size_t cc = 1; cc < n; ++cc)
        for (std::size_t d = 0; d < cc; ++d)
          if (p.irreps.pair_irrep(cc, d) == hab)
            out.add(aa, bb, cc, d, c(aa, bb, cc, d));
    }
  return out;
}

tensor::AntisymPackedC antisym_fused1234_transform(const AntisymProblem& p,
                                                   SeqStats* stats) {
  const std::size_t n = p.n;
  const std::size_t np = npairs_strict(n);
  const Matrix& b = p.b;
  WallTimer timer;
  MemMeter mem;
  SeqStats local;

  AntisymPackedC c(n, p.irreps);
  mem.alloc(np * n + n * n * n + np * n + np * n + n * n);
  Matrix al(np, n);                   // al[(i>j), k] = A(i,j,k,l)
  std::vector<double> o1(n * n * n);  // o1[(k*n + a)*n + j]
  Matrix o2(np, n);                   // o2[(a>b), k]
  Matrix o3(np, n);                   // o3[(a>b), c]
  Matrix aklfull(n, n);

  for (std::size_t l = 0; l < n; ++l) {
    for (std::size_t i = 1; i < n; ++i)
      for (std::size_t j = 0; j < i; ++j) {
        double* row = al.row(pack_pair_strict(i, j));
        for (std::size_t k = 0; k < n; ++k)
          row[k] = p.engine.value(i, j, k, l);
      }

    // c1: O1_l[a, j, k] = sum_i A_l[(ij), k] B[a, i], antisym unpack.
    for (std::size_t k = 0; k < n; ++k) {
      for (std::size_t i = 0; i < n; ++i) aklfull(i, i) = 0.0;
      for (std::size_t i = 1; i < n; ++i)
        for (std::size_t j = 0; j < i; ++j) {
          const double v = al(pack_pair_strict(i, j), k);
          aklfull(i, j) = v;
          aklfull(j, i) = -v;
        }
      blas::gemm(blas::Trans::No, blas::Trans::No, n, n, n, 1.0, b.data(),
                 n, aklfull.data(), n, 0.0, o1.data() + k * n * n, n);
      local.flops += blas::gemm_flops(n, n, n);
    }

    // c2: O2_l[(a>b), k] = sum_j O1_l[a, j, k] B[b, j]
    for (std::size_t k = 0; k < n; ++k) {
      const double* o1k = o1.data() + k * n * n;
      for (std::size_t aa = 1; aa < n; ++aa)
        for (std::size_t bb = 0; bb < aa; ++bb) {
          o2(pack_pair_strict(aa, bb), k) =
              blas::dot(n, o1k + aa * n, b.row(bb));
          local.flops += 2.0 * static_cast<double>(n);
        }
    }

    // c3: O3_l[(ab), c] = sum_k O2_l[(ab), k] B[c, k]
    blas::gemm(blas::Trans::No, blas::Trans::Yes, np, n, n, 1.0, o2.data(),
               n, b.data(), n, 0.0, o3.data(), n);
    local.flops += blas::gemm_flops(np, n, n);

    // c4: C[(ab), (c>d)] += O3_l[(ab), c] B[d, l]
    for (std::size_t aa = 1; aa < n; ++aa)
      for (std::size_t bb = 0; bb < aa; ++bb) {
        const std::size_t pab = pack_pair_strict(aa, bb);
        const auto hab = p.irreps.pair_irrep(aa, bb);
        const double* o3row = o3.row(pab);
        for (std::size_t cc = 1; cc < n; ++cc)
          for (std::size_t d = 0; d < cc; ++d) {
            if (p.irreps.pair_irrep(cc, d) != hab) continue;
            c.add(aa, bb, cc, d, o3row[cc] * b(d, l));
            local.flops += 2.0;
          }
      }
  }
  mem.release(np * n + n * n * n + np * n + np * n + n * n);

  local.integral_evals = p.engine.evaluations();
  local.peak_words = mem.peak() + c.stored_elements();
  local.wall_seconds = timer.seconds();
  if (stats) *stats = local;
  return c;
}

}  // namespace fit::core
