// Four-index transform schedules for antisymmetric tensors — the
// paper's footnote 1 ("our codes actually incorporate anti-symmetry").
//
// The analysis is unchanged: an antisymmetric group stores the strict
// triangle (the same ~1/2 reduction per group as the symmetric case),
// so every size formula, I/O bound, and fusion conclusion of the paper
// carries over; only the accessors carry signs and the diagonal
// vanishes. We provide the dense reference and the fully fused
// Listing 7 schedule over antisymmetric tensors, cross-validated by
// the test suite.
#pragma once

#include "chem/antisym_integrals.hpp"
#include "core/seq_stats.hpp"
#include "tensor/antisym.hpp"
#include "tensor/matrix.hpp"

/// \file
/// \brief Antisymmetric-tensor variants of the sequential schedules
/// (the paper's footnote 1).

namespace fit::core {

/// Problem instance over antisymmetric integrals: extent, symmetry,
/// integral source and transformation matrix.
struct AntisymProblem {
  /// Orbital extent.
  std::size_t n;
  /// Spatial symmetry assignment of the orbitals.
  tensor::Irreps irreps;
  /// Antisymmetric on-the-fly integral source.
  chem::AntisymIntegralEngine engine;
  /// Transformation matrix, n x n.
  tensor::Matrix b;
};

/// Build an antisymmetric problem with contiguous irreps of the given
/// order and a seeded engine/B pair.
AntisymProblem make_antisym_problem(std::size_t n, unsigned irrep_order,
                                    std::uint64_t seed);

/// Dense O(n^5) reference (no symmetry exploitation), packed into the
/// antisymmetric result container.
tensor::AntisymPackedC antisym_reference_transform(const AntisymProblem& p);

/// Listing 7 (op1234) over antisymmetric tensors: fuse the l loop
/// across all four contractions; peak memory |C| + O(n^3).
tensor::AntisymPackedC antisym_fused1234_transform(
    const AntisymProblem& p, SeqStats* stats = nullptr);

}  // namespace fit::core
