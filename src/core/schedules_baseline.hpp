// Models of the production NWChem four-index implementations the
// paper compares against (Sec. 2.2, Sec. 8 "NWChem Best"):
//
//   nwchem_unfused_par_transform
//       The fully unfused scheme as production codes run it: A, O1,
//       O2, O3 and C are all kept allocated in global memory for the
//       whole transform (no eager frees between contractions), so the
//       aggregate requirement is ~1.5 n^4 words — this is why the
//       paper's NWChem runs fail on clusters that could hold the
//       3n^4/4 theoretical minimum.
//   nwchem_recompute_par_transform
//       The memory-minimal "direct" scheme in the spirit of
//       Listing 3: no global intermediates at all; for each output
//       pair block the half-transformed slice is recomputed from
//       on-the-fly atomic integrals. Block-level recomputation costs
//       a factor ~nt (the tile-grid extent) in integral evaluations,
//       which is what makes this variant slow — and the reason the
//       fused schedule of Sec. 7 wins when memory is tight.
//
// "NWChem Best" in the Figure 2 benchmarks is the fastest of these
// that fits the machine.
#pragma once

#include "core/schedules_par.hpp"

/// \file
/// \brief NWChem-style baseline schedules (Sec. 2.2 / Sec. 8): the
/// fully resident unfused chain and the recompute-everything direct
/// scheme.

namespace fit::core {

/// The production unfused scheme: all intermediates resident in global
/// memory for the whole transform (~1.5 n^4 words aggregate).
ParResult nwchem_unfused_par_transform(const Problem& p,
                                       runtime::Cluster& cluster,
                                       const ParOptions& opt = {});

/// The memory-minimal direct scheme: per output pair-row, recompute
/// the half-transformed slice from on-the-fly integrals.
ParResult nwchem_recompute_par_transform(const Problem& p,
                                         runtime::Cluster& cluster,
                                         const ParOptions& opt = {});

}  // namespace fit::core
