#include "core/schedules_par.hpp"

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "core/schedules_baseline.hpp"

#include "blas/gemm.hpp"
#include "blas/level1.hpp"
#include "blas/tune.hpp"
#include "bounds/transform_bounds.hpp"
#include "chem/coeffs.hpp"
#include "core/sym_tile.hpp"
#include "core/planner.hpp"
#include "tensor/pairs.hpp"
#include "tensor/tiling.hpp"
#include "util/format.hpp"
#include "util/logging.hpp"
#include "util/parse.hpp"
#include "util/timer.hpp"

namespace fit::core {

using blas::gemm;
using blas::gemm_flops;
using blas::Trans;
using ga::GlobalArray;
using runtime::Cluster;
using runtime::RankBuffer;
using runtime::RankCtx;
using tensor::Tiling;

namespace {

/// Shared state for one parallel transform run.
struct Par {
  const Problem& p;
  Cluster& cl;
  ParOptions opt;
  Tiling t;           // orbital tiling (all four dims)
  std::size_t nt;     // tile count per dimension
  // Spatial symmetry at tile granularity: irrep_mask[ti] is the set of
  // irreps present in orbital tile ti; pair_mask[ti][tj] the set of
  // xor-products. A C tile (ta,tb,tc,td) can hold an allowed quadruple
  // iff pair_mask[ta][tb] & pair_mask[tc][td] != 0.
  std::vector<std::uint32_t> irrep_mask;
  std::vector<std::vector<std::uint32_t>> pair_mask;

  // Kernel-engine counter levels at construction; finish() records the
  // deltas so each cluster's registry shows the real gemm work (and
  // packing traffic) its transforms triggered, next to the modeled
  // compute.flops charges.
  double gemm_calls0 = 0, gemm_flops0 = 0, gemm_pack0 = 0;

  // Dynamic-scheduler metrics (see run_claimed_phase): how many tasks
  // were claimed through the counter/steal paths, the counter waits
  // (count + seconds), steals, orphan adoptions after a mid-phase
  // rank death, and counter re-homings. Baselines at construction so
  // finish() can report this run's deltas in ParStats.
  obs::MetricsRegistry::Id id_sched_claims, id_sched_steals,
      id_sched_counter_waits, id_sched_counter_wait_s, id_sched_orphans,
      id_sched_reowns, id_sched_worst, id_sched_fetches, id_sched_hops,
      id_sched_occupancy;
  double sched_claims0 = 0, sched_steals0 = 0, sched_wait0 = 0,
         sched_fetches0 = 0, sched_hops0 = 0;
  // Fault/recovery activity baselines, same delta pattern: finish()
  // reports how much checkpoint fallback and domain killing this run
  // itself absorbed.
  double fallback0 = 0, verify_fail0 = 0, domain_kills0 = 0;
  std::size_t phases0 = 0;  // cl.phases() size before this run

  Par(const Problem& problem, Cluster& cluster, const ParOptions& options)
      : p(problem), cl(cluster), opt(options),
        t(Tiling::irrep_aligned(problem.irreps,
                                std::min(options.tile, problem.n()))),
        nt(t.ntiles()) {
    auto& gm = blas::gemm_metrics();
    gm.counter("gemm.calls");  // get-or-create so sum() is always valid
    gm.counter("gemm.flops");
    gm.counter("gemm.pack_bytes");
    gemm_calls0 = gm.sum("gemm.calls");
    gemm_flops0 = gm.sum("gemm.flops");
    gemm_pack0 = gm.sum("gemm.pack_bytes");
    auto& reg = cl.metrics();
    id_sched_claims = reg.counter("sched.claims");
    id_sched_steals = reg.counter("sched.steals");
    id_sched_counter_waits = reg.counter("sched.counter_waits");
    id_sched_counter_wait_s = reg.counter("sched.counter_wait_s");
    id_sched_orphans = reg.counter("sched.orphans_adopted");
    id_sched_reowns = reg.counter("sched.counter_reowns");
    id_sched_worst = reg.gauge("sched.worst_imbalance");
    id_sched_fetches = reg.counter("sched.counter_fetches");
    id_sched_hops = reg.counter("sched.tree_hops");
    id_sched_occupancy = reg.gauge("sched.counter_batch_occupancy");
    sched_claims0 = reg.sum("sched.claims");
    sched_steals0 = reg.sum("sched.steals");
    sched_wait0 = reg.sum("sched.counter_wait_s");
    sched_fetches0 = reg.sum("sched.counter_fetches");
    sched_hops0 = reg.sum("sched.tree_hops");
    // Session-level overrides: the strategy itself and the batched /
    // tree dequeue granularity (0 keeps the claims-per-rank rule).
    opt.balance = ga::balance_from_env(opt.balance);
    opt.counter_batch =
        util::env_size_strict("FOURINDEX_COUNTER_BATCH", opt.counter_batch,
                              /*min=*/0);
    reg.counter("recovery.fallback_epochs");  // get-or-create
    reg.counter("checkpoint.verify_failures");
    reg.counter("fault.domain_kills");
    fallback0 = reg.sum("recovery.fallback_epochs");
    verify_fail0 = reg.sum("checkpoint.verify_failures");
    domain_kills0 = reg.sum("fault.domain_kills");
    phases0 = cl.phases().size();
    irrep_mask.assign(nt, 0);
    for (std::size_t ti = 0; ti < nt; ++ti)
      for (std::size_t o = t.lo(ti); o < t.hi(ti); ++o)
        irrep_mask[ti] |= 1u << p.irreps.of(o);
    pair_mask.assign(nt, std::vector<std::uint32_t>(nt, 0));
    for (std::size_t ti = 0; ti < nt; ++ti)
      for (std::size_t tj = 0; tj < nt; ++tj)
        for (unsigned h1 = 0; h1 < p.irreps.order(); ++h1)
          for (unsigned h2 = 0; h2 < p.irreps.order(); ++h2)
            if ((irrep_mask[ti] >> h1 & 1) && (irrep_mask[tj] >> h2 & 1))
              pair_mask[ti][tj] |= 1u << (h1 ^ h2);
  }

  bool tile_allowed(std::size_t ta, std::size_t tb, std::size_t tc,
                    std::size_t td) const {
    return (pair_mask[ta][tb] & pair_mask[tc][td]) != 0;
  }

  ga::TileFilter spatial_filter() const {
    return [this](std::span<const std::size_t> c) {
      return c[0] >= c[1] && c[2] >= c[3] &&
             tile_allowed(c[0], c[1], c[2], c[3]);
    };
  }

  // Active transformation matrix: the problem's own B, unless a
  // batched run has pointed the contraction phases at one member's
  // coefficient set (the only thing distinguishing shared-basis batch
  // members from each other).
  const tensor::Matrix* b_active = nullptr;

  const double* b() const {
    return b_active ? b_active->data() : p.b.data();
  }
  std::size_t n() const { return p.n(); }
};

/// Double-buffered fetch/compute pipeline. `issue(i, slot)` starts the
/// nonblocking fetch for iteration i into buffer `slot`, `finish(i,
/// slot)` completes it, `compute(i, slot)` consumes it. With `overlap`
/// the fetch of iteration i+1 is in flight while iteration i
/// multiplies; without, the three steps run back to back, which costs
/// exactly what the blocking ops always did (an nb issue followed
/// immediately by its wait is fully exposed). Either way the GA
/// operations execute in the same order, so fault-injection points and
/// Real-mode results are identical.
template <class Issue, class Finish, class Compute>
void pipelined_fetch(std::size_t n, bool overlap, Issue&& issue,
                     Finish&& finish, Compute&& compute) {
  if (!overlap) {
    for (std::size_t i = 0; i < n; ++i) {
      issue(i, 0);
      finish(i, 0);
      compute(i, 0);
    }
    return;
  }
  if (n == 0) return;
  std::size_t cur = 0;
  issue(0, cur);
  for (std::size_t i = 0; i < n; ++i) {
    finish(i, cur);
    if (i + 1 < n) issue(i + 1, 1 - cur);
    compute(i, cur);
    cur = 1 - cur;
  }
}

/// Run one phase whose work is an indexed list of independently
/// executable tasks, distributed per ParOptions::balance.
///
/// The claim order is planned up front (ga::plan_tasks — a
/// deterministic discrete-event simulation of the NXTVAL counter /
/// steal protocol over `cost_of` estimates) and each rank *replays*
/// its claim list inside the phase, charging the scheduling traffic
/// through the alpha-beta model: a fetch-and-add round trip plus the
/// modeled contention stall per Counter claim, a control round trip
/// per steal. Static claims each task on its static owner in the
/// canonical order with zero overhead, which reproduces the
/// historical `if (owner != rank) continue` loops exactly — same GA
/// op sequence, same fault-injection points, same results.
///
/// Fault integration: the plan is computed *before* run_phase fires
/// the phase-boundary faults, so a rank killed at the boundary still
/// has a claim list. The survivor Cluster::live_owner maps it to
/// adopts those orphaned claims (after its own), and a dead counter
/// host is re-homed the same way — work is never lost, and Real-mode
/// results stay bit-identical because every output tile is written by
/// exactly one task per phase.
void run_claimed_phase(
    Par& par, const std::string& label, std::size_t n_tasks,
    const std::function<std::size_t(std::size_t)>& owner_of,
    const std::function<double(std::size_t)>& cost_of,
    const std::function<void(RankCtx&, std::size_t)>& body) {
  ga::Balance mode = par.opt.balance;
  std::vector<std::size_t> owner(n_tasks);
  for (std::size_t t = 0; t < n_tasks; ++t) owner[t] = owner_of(t);
  std::vector<double> cost;
  if (mode != ga::Balance::Static) {
    cost.resize(n_tasks);
    for (std::size_t t = 0; t < n_tasks; ++t) cost[t] = cost_of(t);
  }
  ga::TaskCounter counter(par.cl, label);
  ga::TaskPlan plan;
  if (mode == ga::Balance::Auto) {
    BalanceCache* memo = par.opt.balance_cache;
    const auto cached = memo ? memo->picks.find(label)
                             : std::unordered_map<std::string,
                                                  ga::Balance>::iterator{};
    if (memo && cached != memo->picks.end()) {
      // A previous identical run already chose for this phase: replay
      // its mode and skip the six-candidate DES — the whole point of
      // the serve schedule cache.
      mode = cached->second;
      plan = ga::plan_tasks(par.cl, mode, counter, cost, owner,
                            par.opt.counter_batch);
      memo->hits += 1;
    } else {
      // Planner-chosen mode: evaluate every fixed mode's claim DES on
      // this phase's cost estimates and replay the cheapest.
      BalancePick pick = choose_balance(par.cl, counter, cost, owner,
                                        par.opt.counter_batch);
      mode = pick.balance;
      plan = std::move(pick.plan);
      if (memo) memo->picks[label] = mode;
      FIT_LOG_DEBUG(label << ": auto balance picked "
                          << ga::to_string(mode) << " (makespan "
                          << plan.makespan_s << " s)");
    }
  } else {
    plan = ga::plan_tasks(par.cl, mode, counter, cost, owner,
                          par.opt.counter_batch);
  }
  auto& reg = par.cl.metrics();
  par.cl.run_phase(label, [&](RankCtx& ctx) {
    for (std::size_t nom = 0; nom < plan.claims.size(); ++nom) {
      if (plan.claims[nom].empty()) continue;
      if (nom != ctx.rank()) {
        // Orphan adoption: a nominal rank that died between planning
        // and the barrier executes nowhere — its survivor runs the
        // claims instead.
        if (!par.cl.is_dead(nom) || par.cl.live_owner(nom) != ctx.rank())
          continue;
        reg.add(par.id_sched_orphans, ctx.rank(),
                static_cast<double>(plan.claims[nom].size()));
      }
      for (const ga::TaskClaim& claim : plan.claims[nom]) {
        if (claim.fetched) {
          // One fetch-and-add against the claim's counter, whose live
          // host is re-resolved through Cluster::live_owner — a dead
          // counter home (flat, per-node or tree) re-targets here.
          counter.charge_fetch_add(ctx, claim.home, claim.wait_s);
          reg.add(par.id_sched_counter_waits, ctx.rank(), 1);
          reg.add(par.id_sched_counter_wait_s, ctx.rank(), claim.wait_s);
          if (claim.task != ga::TaskClaim::kNone)
            reg.add(par.id_sched_fetches, ctx.rank(), 1);
          if (claim.hops > 0)
            reg.add(par.id_sched_hops, ctx.rank(), claim.hops);
        } else if (claim.stolen) {
          const std::size_t victim = par.cl.live_owner(claim.peer);
          ctx.charge_transfer(victim, 8.0);  // steal request
          ctx.charge_transfer(victim, 8.0);  // grant
          reg.add(par.id_sched_steals, ctx.rank(), 1);
        }
        if (claim.task == ga::TaskClaim::kNone) continue;
        if (mode != ga::Balance::Static)
          reg.add(par.id_sched_claims, ctx.rank(), 1);
        const double t0 = ctx.elapsed();
        body(ctx, claim.task);
        if (par.cl.comm_tracing())
          ctx.note_span(label + " task " + std::to_string(claim.task), t0,
                        ctx.elapsed() - t0);
      }
    }
  });
  // Count counters whose planned host is no longer what live_owner
  // resolves to — those fetches were re-homed mid-phase (flat counter,
  // per-node counters and tree nodes all re-own independently).
  for (std::size_t i = 0; i < plan.counter_homes.size(); ++i)
    if (par.cl.live_owner(plan.counter_homes[i]) != plan.counter_owners[i])
      reg.add(par.id_sched_reowns, 0, 1);
  if (plan.n_fetches > 0)
    reg.set(par.id_sched_occupancy, 0,
            static_cast<double>(plan.n_tasks) /
                static_cast<double>(plan.n_fetches));
}

/// Task list for a tile-parallel phase: every existing tile of `out`,
/// statically owned by the tile's owner — identical, in Static mode,
/// to iterating out.tiles_of(rank).
std::function<std::size_t(std::size_t)> tile_owner_of(
    const GlobalArray& out) {
  return [&out](std::size_t idx) { return out.tile_by_index(idx).owner; };
}

/// Fill phase for an A-style array: owners produce their tiles with
/// the integral engine ("ComputeA"). `l_base` offsets the 4th
/// dimension for l-slice arrays (Listing 8/10 produce A per slice).
void fill_a(Par& par, GlobalArray& a, std::size_t l_base,
            const std::string& label) {
  const auto& m = par.cl.machine();
  run_claimed_phase(
      par, label, a.n_tiles(), tile_owner_of(a),
      [&](std::size_t idx) {
        const double el = static_cast<double>(a.tile_by_index(idx).elements);
        return el / m.integrals_per_sec + 8.0 * el / m.net_bandwidth_bps;
      },
      [&](RankCtx& ctx, std::size_t idx) {
        const auto& ti = a.tile_by_index(idx);
        RankBuffer buf(ctx, ti.elements, "A tile");
        ctx.charge_integrals(static_cast<double>(ti.elements));
        if (ctx.real()) {
          double* out = buf.data();
          for (std::size_t i = ti.lo[0]; i < ti.lo[0] + ti.len[0]; ++i)
            for (std::size_t j = ti.lo[1]; j < ti.lo[1] + ti.len[1]; ++j)
              for (std::size_t k = ti.lo[2]; k < ti.lo[2] + ti.len[2]; ++k)
                for (std::size_t l = ti.lo[3]; l < ti.lo[3] + ti.len[3];
                     ++l)
                  *out++ = par.p.engine.value(i, j, k, l_base + l);
        }
        // Nonblocking: the put's wire time hides behind the next tile's
        // integral evaluation (the buffer is consumed eagerly at issue,
        // so reusing it next iteration is safe); the phase barrier
        // waits for whatever is still in flight.
        if (par.opt.overlap)
          a.nbput(ctx, ti.coord, buf.data());
        else
          a.put(ctx, ti.coord, buf.data());
      });
}

/// Contraction 1 phase: O1[a,j,k,l] += sum_i A[(ij),k,l] B[a,i].
/// Works for both the full tensors (unfused) and the l-slice tensors
/// (fused): A has a triangular (dims 0,1) filter, O1 is unfiltered in
/// (a,j) and shares A's (k,l) dims.
void contract1(Par& par, const GlobalArray& a, GlobalArray& o1,
               const std::string& label) {
  const std::size_t max_tile =
      par.t.max_width() * par.t.max_width() * a.tiling(2).max_width() *
      a.tiling(3).max_width();
  const std::size_t nslots = par.opt.overlap ? 2 : 1;
  const auto& m = par.cl.machine();
  auto cost = [&](std::size_t idx) {
    // nt gemms over the contracted i range plus nt sym-tile fetches.
    const auto& ti = o1.tile_by_index(idx);
    const double el = static_cast<double>(ti.elements);
    const double n = static_cast<double>(par.n());
    return 2.0 * el * n / m.flops_per_rank +
           (8.0 * el / double(ti.len[0]) * n) / m.net_bandwidth_bps +
           double(par.nt) * m.net_latency_s;
  };
  run_claimed_phase(
      par, label, o1.n_tiles(), tile_owner_of(o1), cost,
      [&](RankCtx& ctx, std::size_t idx) {
      const auto& ti = o1.tile_by_index(idx);
      const std::size_t lkl = ti.len[2] * ti.len[3];
      RankBuffer out(ctx, ti.elements, "O1 tile");
      RankBuffer abuf(ctx, nslots * max_tile, "A fetch");
      RankBuffer tbuf(ctx, nslots * max_tile, "A transpose");
      auto at = [&](RankBuffer& b, std::size_t s) {
        return ctx.real() ? b.data() + s * max_tile : nullptr;
      };
      const std::size_t ta = ti.coord[0], tj = ti.coord[1];
      SymFetch fetch[2];
      pipelined_fetch(
          par.nt, par.opt.overlap,
          [&](std::size_t tii, std::size_t s) {
            ga::TileCoord ac = {tii, tj, ti.coord[2], ti.coord[3]};
            fetch[s] = nbget_sym_tile(a, ctx, ac, 0, 1, at(abuf, s),
                                      at(tbuf, s));
          },
          [&](std::size_t, std::size_t s) {
            finish_sym_tile(ctx, fetch[s]);
          },
          [&](std::size_t tii, std::size_t s) {
            const std::size_t leni = par.t.len(tii);
            ctx.charge_flops(gemm_flops(ti.len[0], ti.len[1] * lkl, leni));
            if (ctx.real()) {
              // out[a, (j k l)] += B[a, i] * abuf[i, (j k l)]
              gemm(Trans::No, Trans::No, ti.len[0], ti.len[1] * lkl, leni,
                   1.0,
                   par.b() + par.t.lo(ta) * par.n() + par.t.lo(tii),
                   par.n(), at(abuf, s), ti.len[1] * lkl, 1.0, out.data(),
                   ti.len[1] * lkl);
            }
          });
      if (par.opt.overlap)
        o1.nbput(ctx, ti.coord, out.data());
      else
        o1.put(ctx, ti.coord, out.data());
      });
}

/// Contraction 2 phase: O2[(ab),k,l] += sum_j O1[a,j,k,l] B[b,j].
void contract2(Par& par, const GlobalArray& o1, GlobalArray& o2,
               const std::string& label) {
  const std::size_t max_tile =
      par.t.max_width() * par.t.max_width() * o1.tiling(2).max_width() *
      o1.tiling(3).max_width();
  const std::size_t nslots = par.opt.overlap ? 2 : 1;
  const auto& m = par.cl.machine();
  auto cost = [&](std::size_t idx) {
    const auto& ti = o2.tile_by_index(idx);
    const double el = static_cast<double>(ti.elements);
    const double n = static_cast<double>(par.n());
    return 2.0 * el * n / m.flops_per_rank +
           (8.0 * el / double(ti.len[1]) * n) / m.net_bandwidth_bps +
           double(par.nt) * m.net_latency_s;
  };
  run_claimed_phase(
      par, label, o2.n_tiles(), tile_owner_of(o2), cost,
      [&](RankCtx& ctx, std::size_t idx) {
      const auto& ti = o2.tile_by_index(idx);
      const std::size_t lkl = ti.len[2] * ti.len[3];
      RankBuffer out(ctx, ti.elements, "O2 tile");
      RankBuffer o1buf(ctx, nslots * max_tile, "O1 fetch");
      auto at = [&](std::size_t s) {
        return ctx.real() ? o1buf.data() + s * max_tile : nullptr;
      };
      const std::size_t ta = ti.coord[0], tb = ti.coord[1];
      GlobalArray::NbHandle fetch[2];
      pipelined_fetch(
          par.nt, par.opt.overlap,
          [&](std::size_t tjj, std::size_t s) {
            ga::TileCoord oc = {ta, tjj, ti.coord[2], ti.coord[3]};
            fetch[s] = o1.nbget(ctx, oc, at(s));
          },
          [&](std::size_t, std::size_t s) { ctx.wait_transfer(fetch[s]); },
          [&](std::size_t tjj, std::size_t s) {
            const std::size_t lenj = par.t.len(tjj);
            ctx.charge_flops(
                gemm_flops(ti.len[1], lkl, lenj) * double(ti.len[0]));
            if (ctx.real()) {
              for (std::size_t ia = 0; ia < ti.len[0]; ++ia)
                gemm(Trans::No, Trans::No, ti.len[1], lkl, lenj, 1.0,
                     par.b() + par.t.lo(tb) * par.n() + par.t.lo(tjj),
                     par.n(), at(s) + ia * lenj * lkl, lkl, 1.0,
                     out.data() + ia * ti.len[1] * lkl, lkl);
            }
          });
      if (par.opt.overlap)
        o2.nbput(ctx, ti.coord, out.data());
      else
        o2.put(ctx, ti.coord, out.data());
      });
}

/// Contraction 3 phase: O3[(ab),c,l] += sum_k O2[(ab),k,l] B[c,k].
/// `kl_symmetric` marks the unfused case where O2 stores only k >= l
/// tiles (transposed fetch needed); the l-slice O2 of Listing 8 has a
/// full k dimension.
void contract3(Par& par, const GlobalArray& o2, GlobalArray& o3,
               bool kl_symmetric, const std::string& label) {
  const std::size_t max_tile =
      par.t.max_width() * par.t.max_width() *
      std::max(o2.tiling(2).max_width(), o2.tiling(3).max_width()) *
      std::max(o2.tiling(2).max_width(), o2.tiling(3).max_width());
  const std::size_t nslots = par.opt.overlap ? 2 : 1;
  const auto& m = par.cl.machine();
  auto cost = [&](std::size_t idx) {
    const auto& ti = o3.tile_by_index(idx);
    const double el = static_cast<double>(ti.elements);
    const double nk = static_cast<double>(o2.tiling(2).extent());
    return 2.0 * el * nk / m.flops_per_rank +
           (8.0 * el / double(ti.len[2]) * nk) / m.net_bandwidth_bps +
           double(par.nt) * m.net_latency_s;
  };
  run_claimed_phase(
      par, label, o3.n_tiles(), tile_owner_of(o3), cost,
      [&](RankCtx& ctx, std::size_t idx) {
      const auto& ti = o3.tile_by_index(idx);
      RankBuffer out(ctx, ti.elements, "O3 tile");
      RankBuffer o2buf(ctx, nslots * max_tile, "O2 fetch");
      RankBuffer tbuf(ctx, nslots * max_tile, "O2 transpose");
      auto at = [&](RankBuffer& b, std::size_t s) {
        return ctx.real() ? b.data() + s * max_tile : nullptr;
      };
      const std::size_t tc = ti.coord[2];
      SymFetch fetch[2];
      pipelined_fetch(
          par.nt, par.opt.overlap,
          [&](std::size_t tkk, std::size_t s) {
            ga::TileCoord oc = {ti.coord[0], ti.coord[1], tkk,
                                ti.coord[3]};
            if (kl_symmetric) {
              fetch[s] = nbget_sym_tile(o2, ctx, oc, 2, 3, at(o2buf, s),
                                        at(tbuf, s));
            } else {
              fetch[s] = SymFetch{};
              fetch[s].handle = o2.nbget(ctx, oc, at(o2buf, s));
            }
          },
          [&](std::size_t, std::size_t s) {
            finish_sym_tile(ctx, fetch[s]);
          },
          [&](std::size_t tkk, std::size_t s) {
            const std::size_t lenk = par.t.len(tkk);
            ctx.charge_flops(gemm_flops(ti.len[2], ti.len[3], lenk) *
                             double(ti.len[0] * ti.len[1]));
            if (ctx.real()) {
              for (std::size_t iab = 0; iab < ti.len[0] * ti.len[1]; ++iab)
                gemm(Trans::No, Trans::No, ti.len[2], ti.len[3], lenk, 1.0,
                     par.b() + par.t.lo(tc) * par.n() + par.t.lo(tkk),
                     par.n(), at(o2buf, s) + iab * lenk * ti.len[3],
                     ti.len[3], 1.0,
                     out.data() + iab * ti.len[2] * ti.len[3], ti.len[3]);
            }
          });
      if (par.opt.overlap)
        o3.nbput(ctx, ti.coord, out.data());
      else
        o3.put(ctx, ti.coord, out.data());
      });
}

/// Contraction 4 phase: C[(ab),(cd)] += sum_l O3[(ab),c,l] B[d,l].
/// `l_base` offsets B's l column for slice arrays; accumulate = acc()
/// (Listing 8 contributes per slice), otherwise put().
void contract4(Par& par, const GlobalArray& o3, GlobalArray& c,
               std::size_t l_base, bool accumulate,
               const std::string& label) {
  const std::size_t max_tile = par.t.max_width() * par.t.max_width() *
                               par.t.max_width() * o3.tiling(3).max_width();
  const std::size_t nslots = par.opt.overlap ? 2 : 1;
  const auto& m = par.cl.machine();
  auto cost = [&](std::size_t idx) {
    const auto& ti = c.tile_by_index(idx);
    const double el = static_cast<double>(ti.elements);
    const double nl = static_cast<double>(o3.tiling(3).extent());
    return 2.0 * el * nl / m.flops_per_rank +
           (8.0 * el / double(ti.len[3]) * nl) / m.net_bandwidth_bps +
           double(o3.tiling(3).ntiles()) * m.net_latency_s;
  };
  run_claimed_phase(
      par, label, c.n_tiles(), tile_owner_of(c), cost,
      [&](RankCtx& ctx, std::size_t idx) {
      const auto& ti = c.tile_by_index(idx);
      RankBuffer out(ctx, ti.elements, "C tile");
      RankBuffer o3buf(ctx, nslots * max_tile, "O3 fetch");
      auto at = [&](std::size_t s) {
        return ctx.real() ? o3buf.data() + s * max_tile : nullptr;
      };
      const std::size_t td = ti.coord[3];
      const std::size_t nlt = o3.tiling(3).ntiles();
      GlobalArray::NbHandle fetch[2];
      pipelined_fetch(
          nlt, par.opt.overlap,
          [&](std::size_t tll, std::size_t s) {
            ga::TileCoord oc = {ti.coord[0], ti.coord[1], ti.coord[2],
                                tll};
            fetch[s] = o3.nbget(ctx, oc, at(s));
          },
          [&](std::size_t, std::size_t s) { ctx.wait_transfer(fetch[s]); },
          [&](std::size_t tll, std::size_t s) {
            const std::size_t lenl = o3.tiling(3).len(tll);
            ctx.charge_flops(gemm_flops(ti.len[2], ti.len[3], lenl) *
                             double(ti.len[0] * ti.len[1]));
            if (ctx.real()) {
              for (std::size_t iab = 0; iab < ti.len[0] * ti.len[1]; ++iab)
                gemm(Trans::No, Trans::Yes, ti.len[2], ti.len[3], lenl,
                     1.0, at(s) + iab * ti.len[2] * lenl, lenl,
                     par.b() + par.t.lo(td) * par.n() + l_base +
                         o3.tiling(3).lo(tll),
                     par.n(), 1.0,
                     out.data() + iab * ti.len[2] * ti.len[3], ti.len[3]);
            }
          });
      if (accumulate) {
        if (par.opt.overlap)
          c.nbacc(ctx, ti.coord, out.data());
        else
          c.acc(ctx, ti.coord, out.data());
      } else {
        if (par.opt.overlap)
          c.nbput(ctx, ti.coord, out.data());
        else
          c.put(ctx, ti.coord, out.data());
      }
      });
}

/// Gather the distributed C into a PackedC (Real mode).
tensor::PackedC gather_c(const Par& par, const GlobalArray& c) {
  tensor::PackedC out(par.n(), par.p.irreps);
  for (std::size_t idx = 0; idx < c.n_tiles(); ++idx) {
    const auto& ti = c.tile_by_index(idx);
    for (std::size_t a = ti.lo[0]; a < ti.lo[0] + ti.len[0]; ++a)
      for (std::size_t b = ti.lo[1]; b < ti.lo[1] + ti.len[1]; ++b) {
        if (b > a) continue;
        const auto hab = par.p.irreps.pair_irrep(a, b);
        for (std::size_t cc = ti.lo[2]; cc < ti.lo[2] + ti.len[2]; ++cc)
          for (std::size_t d = ti.lo[3]; d < ti.lo[3] + ti.len[3]; ++d) {
            if (d > cc) continue;
            if (par.p.irreps.pair_irrep(cc, d) != hab) continue;
            out.add(a, b, cc, d,
                    c.peek(std::vector<std::size_t>{a, b, cc, d}));
          }
      }
  }
  return out;
}

ParResult finish(Par& par, const char* name,
                 const std::unique_ptr<GlobalArray>& c_ga,
                 const WallTimer& timer, const runtime::CommStats& before,
                 double sim_before) {
  ParResult r;
  r.stats.schedule = name;
  // The cluster's metrics registry is the source of truth; totals()
  // is its aggregate view, so these fields are registry-backed.
  const auto after = par.cl.totals();
  r.stats.sim_time = par.cl.sim_time() - sim_before;
  r.stats.flops = after.flops - before.flops;
  r.stats.integral_evals = after.integral_evals - before.integral_evals;
  r.stats.remote_bytes = after.remote_bytes - before.remote_bytes;
  r.stats.local_bytes = after.local_bytes - before.local_bytes;
  r.stats.overlapped_seconds =
      after.overlapped_seconds - before.overlapped_seconds;
  r.stats.exposed_seconds = after.exposed_seconds - before.exposed_seconds;
  r.stats.peak_global_bytes = par.cl.global_peak();
  // Worst per-phase imbalance of *this run* (the cluster-lifetime max
  // is Cluster::worst_imbalance); also published as the
  // sched.worst_imbalance gauge next to the scheduler counters.
  double worst = 1.0;
  for (std::size_t i = par.phases0; i < par.cl.phases().size(); ++i)
    worst = std::max(worst, par.cl.phases()[i].imbalance);
  r.stats.worst_imbalance = worst;
  r.stats.n_phases = par.cl.phases().size();
  r.stats.wall_seconds = timer.seconds();
  // Schedule-level registry entries: which schedule ran on this
  // cluster, how often, and the modeled time it contributed.
  auto& reg = par.cl.metrics();
  const std::string prefix = std::string("schedule.") + name;
  reg.add(reg.counter(prefix + ".runs"), 0, 1);
  reg.add(reg.counter(prefix + ".sim_time_s"), 0, r.stats.sim_time);
  reg.add(reg.counter(prefix + ".host_wall_s"), 0, r.stats.wall_seconds);
  // Actual kernel-engine activity during this transform (Real mode
  // drives the blocked gemm; Simulate mode leaves these at zero).
  auto& gm = blas::gemm_metrics();
  reg.add(reg.counter("gemm.calls"), 0,
          gm.sum("gemm.calls") - par.gemm_calls0);
  reg.add(reg.counter("gemm.flops"), 0,
          gm.sum("gemm.flops") - par.gemm_flops0);
  reg.add(reg.counter("gemm.pack_bytes"), 0,
          gm.sum("gemm.pack_bytes") - par.gemm_pack0);
  // Dynamic-scheduler activity of this run (zero under Static).
  r.stats.sched_claims = reg.sum("sched.claims") - par.sched_claims0;
  r.stats.sched_steals = reg.sum("sched.steals") - par.sched_steals0;
  r.stats.sched_counter_wait_s =
      reg.sum("sched.counter_wait_s") - par.sched_wait0;
  r.stats.sched_counter_fetches =
      reg.sum("sched.counter_fetches") - par.sched_fetches0;
  r.stats.sched_tree_hops = reg.sum("sched.tree_hops") - par.sched_hops0;
  r.stats.recovery_fallback_epochs =
      reg.sum("recovery.fallback_epochs") - par.fallback0;
  r.stats.ckpt_verify_failures =
      reg.sum("checkpoint.verify_failures") - par.verify_fail0;
  r.stats.fault_domain_kills =
      reg.sum("fault.domain_kills") - par.domain_kills0;
  reg.set(par.id_sched_worst, 0, worst);
  if (par.cl.mode() == runtime::ExecutionMode::Real &&
      par.opt.gather_result && c_ga)
    r.c = gather_c(par, *c_ga);
  return r;
}

std::unique_ptr<GlobalArray> make_c(Par& par) {
  std::vector<Tiling> dims(4, par.t);
  // Listing 10 distributes C by its (alpha,beta) block row so the
  // final accumulation is always local; harmless for the others.
  auto owner = [](std::span<const std::size_t> c, std::size_t nranks) {
    return (c[0] * (c[0] + 1) / 2 + c[1]) % nranks;
  };
  return std::make_unique<GlobalArray>(par.cl, "C", dims,
                                       par.spatial_filter(), owner);
}

}  // namespace

bool unfused_fits(const Problem& p, const runtime::Cluster& cluster) {
  const auto sz = p.sizes();
  // Peak live set of the unfused chain plus ~10% tile padding slack.
  const double need = 8.0 * (static_cast<double>(sz.unfused_peak()) +
                             static_cast<double>(sz.c)) *
                      1.10;
  return need <= cluster.aggregate_capacity_bytes();
}

ParResult unfused_par_transform(const Problem& p, Cluster& cluster,
                                const ParOptions& opt) {
  Par par(p, cluster, opt);
  WallTimer timer;
  const auto before = cluster.totals();
  const double sim_before = cluster.sim_time();
  std::vector<Tiling> dims(4, par.t);

  auto a = std::make_unique<GlobalArray>(
      cluster, "A", dims,
      ga::filter_and(ga::filter_triangular(0, 1),
                     ga::filter_triangular(2, 3)));
  fill_a(par, *a, 0, "fill A");

  auto o1 = std::make_unique<GlobalArray>(cluster, "O1", dims,
                                          ga::filter_triangular(2, 3));
  contract1(par, *a, *o1, "c1");
  a.reset();

  auto o2 = std::make_unique<GlobalArray>(
      cluster, "O2", dims,
      ga::filter_and(ga::filter_triangular(0, 1),
                     ga::filter_triangular(2, 3)));
  contract2(par, *o1, *o2, "c2");
  o1.reset();

  auto o3 = std::make_unique<GlobalArray>(cluster, "O3", dims,
                                          ga::filter_triangular(0, 1));
  contract3(par, *o2, *o3, /*kl_symmetric=*/true, "c3");
  o2.reset();

  auto c = make_c(par);
  contract4(par, *o3, *c, 0, /*accumulate=*/false, "c4");
  o3.reset();

  return finish(par, "unfused", c, timer, before, sim_before);
}

ParResult fused_par_transform(const Problem& p, Cluster& cluster,
                              const ParOptions& opt) {
  Par par(p, cluster, opt);
  WallTimer timer;
  const auto before = cluster.totals();
  const double sim_before = cluster.sim_time();
  auto c = make_c(par);

  const Tiling lt(par.n(), std::min(opt.tile_l, par.n()));
  for (std::size_t sl = 0; sl < lt.ntiles(); ++sl) {
    const std::size_t llo = lt.lo(sl);
    const std::size_t llen = lt.len(sl);
    const std::string tag = " [l-slice " + std::to_string(sl) + "]";
    std::vector<Tiling> sdims = {par.t, par.t, par.t, Tiling(llen, llen)};

    auto al = std::make_unique<GlobalArray>(cluster, "A_l", sdims,
                                            ga::filter_triangular(0, 1));
    fill_a(par, *al, llo, "fill A" + tag);

    auto o1 = std::make_unique<GlobalArray>(cluster, "O1_l", sdims);
    contract1(par, *al, *o1, "c1" + tag);
    al.reset();

    auto o2 = std::make_unique<GlobalArray>(cluster, "O2_l", sdims,
                                            ga::filter_triangular(0, 1));
    contract2(par, *o1, *o2, "c2" + tag);
    o1.reset();

    auto o3 = std::make_unique<GlobalArray>(cluster, "O3_l", sdims,
                                            ga::filter_triangular(0, 1));
    contract3(par, *o2, *o3, /*kl_symmetric=*/false, "c3" + tag);
    o2.reset();

    contract4(par, *o3, *c, llo, /*accumulate=*/true, "c4" + tag);
    o3.reset();
  }
  return finish(par, "fused", c, timer, before, sim_before);
}

namespace {

/// One member of a (possibly single-element) shared-basis batch as the
/// fused-inner slice driver sees it: where to accumulate its C, and
/// which transformation matrix to contract with.
struct FusedInnerMember {
  GlobalArray* c;
  const tensor::Matrix* b;
};

/// The fused-inner slice loop (Listing 10), shared between the
/// single-problem entry point and the shared-basis batch: per l-slice
/// the A slice is produced once and every member replays the fused12 /
/// fused34 phases against it with its own B. Phase labels are
/// per-slice but member-invariant, so an Auto balance memo amortizes
/// the claim DES across members as well.
void fused_inner_slices(Par& par,
                        std::span<const FusedInnerMember> members) {
  Cluster& cluster = par.cl;
  const ParOptions& opt = par.opt;
  const std::size_t n = par.n();
  const std::size_t nranks = cluster.n_ranks();

  // Alpha parallelization factor (Sec. 7.3): with only the fused k
  // loop parallel there are nt work units; splitting the alpha range
  // into chunks multiplies parallelism (and the A communication).
  const std::size_t n_ac =
      opt.alpha_parallel > 0
          ? opt.alpha_parallel
          : std::max<std::size_t>(1, (nranks + par.nt - 1) / par.nt);
  // Map alpha tiles to chunks. The triangular alpha >= beta structure
  // makes tile ta carry weight ~ sum_{tb<=ta} len(ta)*len(tb); greedy
  // assignment of heavy tiles to the lightest chunk (Sec. 7.3's
  // "alternative load balancing strategies") flattens the imbalance
  // that contiguous ranges exhibit.
  std::vector<std::size_t> chunk_map(par.nt);
  if (opt.alpha_chunking == ParOptions::AlphaChunking::Contiguous ||
      n_ac == 1) {
    for (std::size_t ta = 0; ta < par.nt; ++ta)
      chunk_map[ta] = ta * n_ac / par.nt;
  } else {
    std::vector<std::size_t> order(par.nt);
    for (std::size_t ta = 0; ta < par.nt; ++ta) order[ta] = ta;
    auto weight = [&](std::size_t ta) {
      double w = 0;
      for (std::size_t tb = 0; tb <= ta; ++tb)
        w += double(par.t.len(ta)) * double(par.t.len(tb));
      return w;
    };
    std::sort(order.begin(), order.end(),
              [&](std::size_t x, std::size_t y) {
                return weight(x) > weight(y);
              });
    std::vector<double> load(n_ac, 0.0);
    for (std::size_t ta : order) {
      const std::size_t lightest = static_cast<std::size_t>(
          std::min_element(load.begin(), load.end()) - load.begin());
      chunk_map[ta] = lightest;
      load[lightest] += weight(ta);
    }
  }
  auto chunk_of = [&](std::size_t ta) { return chunk_map[ta]; };
  // Static owner of fused12 work unit (tk, ac) — also the task index
  // modulo the rank count, which the claim plans are seeded from.
  auto unit_owner = [&](std::size_t tk, std::size_t ac) {
    return (tk * n_ac + ac) % nranks;
  };

  // (ta, tb <= ta) pair rows of the fused34 phase, in the historical
  // order: pair p = ta*(ta+1)/2 + tb is its own task index.
  std::vector<std::pair<std::size_t, std::size_t>> ab_pairs;
  for (std::size_t ta = 0; ta < par.nt; ++ta)
    for (std::size_t tb = 0; tb <= ta; ++tb) ab_pairs.emplace_back(ta, tb);

  const auto& mach = cluster.machine();
  const Tiling lt(n, std::min(opt.tile_l, n));
  for (std::size_t sl = 0; sl < lt.ntiles(); ++sl) {
    const std::size_t llo = lt.lo(sl);
    const std::size_t llen = lt.len(sl);
    const std::string tag = " [l-slice " + std::to_string(sl) + "]";
    std::vector<Tiling> sdims = {par.t, par.t, par.t, Tiling(llen, llen)};

    auto al = std::make_unique<GlobalArray>(cluster, "A_l", sdims,
                                            ga::filter_triangular(0, 1));
    fill_a(par, *al, llo, "fill A" + tag);

    // Tile pairs of the triangular A gather, in the historical
    // (tj outer, ti >= tj) order; indexable for the prefetch pipeline.
    std::vector<std::pair<std::size_t, std::size_t>> ij_tiles;
    for (std::size_t tj = 0; tj < par.nt; ++tj)
      for (std::size_t ti = tj; ti < par.nt; ++ti)
        ij_tiles.emplace_back(ti, tj);

    // Every member replays both fused phases against this slice's A
    // with its own B; the slice's A frees once the last member's
    // fused12 has consumed it, and only one member's O2 is ever live.
    for (std::size_t mi = 0; mi < members.size(); ++mi) {
      const FusedInnerMember& mem = members[mi];
      par.b_active = mem.b;

      // O2_l distributed so that the rank computing work unit (tk, ac)
      // owns every O2 tile it produces — puts stay local.
      auto o2_owner = [&](std::span<const std::size_t> tc,
                          std::size_t ranks) {
        (void)ranks;
        return unit_owner(tc[2], chunk_of(tc[0]));
      };
      auto o2 = std::make_unique<GlobalArray>(
          cluster, "O2_l", sdims, ga::filter_triangular(0, 1), o2_owner);

      // ---- Fused contractions 1+2 (k-parallel, Listing 10 top) -------
      // Work unit (tk, ac) = task tk*n_ac + ac; cost = the A-block
      // gather plus this chunk's O1/O2 gemms and O2 puts.
      auto f12_cost = [&](std::size_t task) {
        const std::size_t ck = task / n_ac;
        const std::size_t ac = task % n_ac;
        const double ext = double(par.t.len(ck)) * double(llen);
        const double dn = static_cast<double>(n);
        double flops = 0, put_bytes = 0;
        for (std::size_t ta = 0; ta < par.nt; ++ta) {
          if (chunk_of(ta) != ac) continue;
          const double lena = static_cast<double>(par.t.len(ta));
          flops += 2.0 * lena * dn * ext * dn;  // O1 block
          for (std::size_t tb = 0; tb <= ta; ++tb) {
            const double lenb = static_cast<double>(par.t.len(tb));
            flops += 2.0 * lenb * ext * dn * lena;  // O2 tiles
            put_bytes += 8.0 * lena * lenb * ext;
          }
        }
        return flops / mach.flops_per_rank +
               (8.0 * dn * dn * ext + put_bytes) / mach.net_bandwidth_bps +
               double(ij_tiles.size()) * mach.net_latency_s;
      };
      run_claimed_phase(
          par, "fused12" + tag, par.nt * n_ac,
          [&](std::size_t task) { return task % nranks; }, f12_cost,
          [&](RankCtx& ctx, std::size_t task) {
            const std::size_t tk = task / n_ac;
            const std::size_t ac = task % n_ac;
            const std::size_t lenk = par.t.len(tk);
            const std::size_t m = lenk * llen;  // fused (k,l) extent
            // Gather the full (i,j) x (k in tk) x (l in slice) A block.
            // This is the A traffic that replicates with n_ac (Sec 7.3).
            RankBuffer bufa(ctx, n * n * m, "A block");
            {
              const std::size_t tw = par.t.max_width();
              const std::size_t fmax = tw * tw * m;
              const std::size_t nslots = par.opt.overlap ? 2 : 1;
              RankBuffer fetchbuf(ctx, nslots * fmax, "A fetch");
              auto at = [&](std::size_t s) {
                return ctx.real() ? fetchbuf.data() + s * fmax : nullptr;
              };
              GlobalArray::NbHandle fh[2];
              pipelined_fetch(
                  ij_tiles.size(), par.opt.overlap,
                  [&](std::size_t q, std::size_t s) {
                    ga::TileCoord ac4 = {ij_tiles[q].first,
                                         ij_tiles[q].second, tk, 0};
                    fh[s] = al->nbget(ctx, ac4, at(s));
                  },
                  [&](std::size_t, std::size_t s) {
                    ctx.wait_transfer(fh[s]);
                  },
                  [&](std::size_t q, std::size_t s) {
                    if (!ctx.real()) return;
                    ga::TileCoord ac4 = {ij_tiles[q].first,
                                         ij_tiles[q].second, tk, 0};
                    const auto& info = al->info(ac4);
                    const double* src = at(s);
                    for (std::size_t i = info.lo[0];
                         i < info.lo[0] + info.len[0]; ++i)
                      for (std::size_t j = info.lo[1];
                           j < info.lo[1] + info.len[1]; ++j)
                        for (std::size_t x = 0; x < m; ++x) {
                          const double v = *src++;
                          bufa.data()[(i * n + j) * m + x] = v;
                          bufa.data()[(j * n + i) * m + x] = v;
                        }
                  });
            }
            // Alpha-tile chunk [ta0, ta1) assigned to chunk ac.
            for (std::size_t ta = 0; ta < par.nt; ++ta) {
              if (chunk_of(ta) != ac) continue;
              const std::size_t lena = par.t.len(ta);
              // O1 block for all alpha in this tile, in fast memory
              // only — never communicated (the point of the fusion).
              RankBuffer o1blk(ctx, lena * n * m, "O1 block");
              ctx.charge_flops(gemm_flops(lena, n * m, n));
              if (ctx.real())
                gemm(Trans::No, Trans::No, lena, n * m, n, 1.0,
                     par.b() + par.t.lo(ta) * n, n, bufa.data(), n * m, 0.0,
                     o1blk.data(), n * m);
              for (std::size_t tb = 0; tb <= ta; ++tb) {
                const std::size_t lenb = par.t.len(tb);
                RankBuffer o2tile(ctx, lena * lenb * m, "O2 tile");
                ctx.charge_flops(gemm_flops(lenb, m, n) * double(lena));
                if (ctx.real())
                  for (std::size_t ia = 0; ia < lena; ++ia)
                    gemm(Trans::No, Trans::No, lenb, m, n, 1.0,
                         par.b() + par.t.lo(tb) * n, n,
                         o1blk.data() + ia * n * m, m, 0.0,
                         o2tile.data() + ia * lenb * m, m);
                // Nonblocking: the O2 tile is consumed at issue, so the
                // put hides behind the next (tb / ta) iteration's gemm.
                if (par.opt.overlap)
                  o2->nbput(ctx, ga::TileCoord{ta, tb, tk, 0},
                            o2tile.data());
                else
                  o2->put(ctx, ga::TileCoord{ta, tb, tk, 0}, o2tile.data());
              }
            }
          });
      if (mi + 1 == members.size()) al.reset();

      // ---- Fused contractions 3+4 ((ab)-parallel, Listing 10 bottom) -
      // Task = (ta, tb) pair row; cost = the O2-row gather, the O3
      // block, and the spatially allowed (tc, td) C contributions —
      // the irregular per-row weight the dynamic strategies flatten.
      auto f34_cost = [&](std::size_t task) {
        const auto [ta, tb] = ab_pairs[task];
        const double lena = static_cast<double>(par.t.len(ta));
        const double lenb = static_cast<double>(par.t.len(tb));
        const double dn = static_cast<double>(n);
        const double dl = static_cast<double>(llen);
        double flops = 2.0 * dn * dl * dn * lena * lenb;  // O3 block
        double acc_bytes = 0;
        for (std::size_t tc = 0; tc < par.nt; ++tc)
          for (std::size_t td = 0; td <= tc; ++td) {
            if (!par.tile_allowed(ta, tb, tc, td)) continue;
            const double cd =
                double(par.t.len(tc)) * double(par.t.len(td));
            flops += 2.0 * cd * dl * lena * lenb;
            acc_bytes += 8.0 * lena * lenb * cd;
          }
        return flops / mach.flops_per_rank +
               (8.0 * lena * lenb * dn * dl + acc_bytes) /
                   mach.net_bandwidth_bps +
               double(par.nt) * mach.net_latency_s;
      };
      run_claimed_phase(
          par, "fused34" + tag, ab_pairs.size(),
          [&](std::size_t task) { return task % nranks; }, f34_cost,
          [&](RankCtx& ctx, std::size_t task) {
            const std::size_t ta = ab_pairs[task].first;
            const std::size_t tb = ab_pairs[task].second;
            const std::size_t lena = par.t.len(ta);
            const std::size_t lenb = par.t.len(tb);
            // Gather O2[(ab) row, all k] and compute the O3 block in
            // fast memory only — never communicated.
            RankBuffer bufo2(ctx, lena * lenb * n * llen, "O2 row");
            {
              const std::size_t tw = par.t.max_width();
              const std::size_t fmax = tw * tw * tw * llen;
              const std::size_t nslots = par.opt.overlap ? 2 : 1;
              RankBuffer fetchbuf(ctx, nslots * fmax, "O2 fetch");
              auto at = [&](std::size_t s) {
                return ctx.real() ? fetchbuf.data() + s * fmax : nullptr;
              };
              GlobalArray::NbHandle fh[2];
              pipelined_fetch(
                  par.nt, par.opt.overlap,
                  [&](std::size_t tk, std::size_t s) {
                    ga::TileCoord oc = {ta, tb, tk, 0};
                    fh[s] = o2->nbget(ctx, oc, at(s));
                  },
                  [&](std::size_t, std::size_t s) {
                    ctx.wait_transfer(fh[s]);
                  },
                  [&](std::size_t tk, std::size_t s) {
                    if (!ctx.real()) return;
                    ga::TileCoord oc = {ta, tb, tk, 0};
                    const auto& info = o2->info(oc);
                    const double* src = at(s);
                    for (std::size_t ia = 0; ia < lena; ++ia)
                      for (std::size_t ib = 0; ib < lenb; ++ib)
                        for (std::size_t k = info.lo[2];
                             k < info.lo[2] + info.len[2]; ++k)
                          for (std::size_t ll = 0; ll < llen; ++ll)
                            bufo2.data()[((ia * lenb + ib) * n + k) * llen +
                                         ll] = *src++;
                  });
            }
            RankBuffer bufo3(ctx, lena * lenb * n * llen, "O3 block");
            ctx.charge_flops(gemm_flops(n, llen, n) * double(lena * lenb));
            if (ctx.real())
              for (std::size_t iab = 0; iab < lena * lenb; ++iab)
                gemm(Trans::No, Trans::No, n, llen, n, 1.0, par.b(), n,
                     bufo2.data() + iab * n * llen, llen, 0.0,
                     bufo3.data() + iab * n * llen, llen);
            for (std::size_t tc = 0; tc < par.nt; ++tc)
              for (std::size_t td = 0; td <= tc; ++td) {
                if (!par.tile_allowed(ta, tb, tc, td)) continue;
                const std::size_t lenc = par.t.len(tc);
                const std::size_t lend = par.t.len(td);
                RankBuffer ctile(ctx, lena * lenb * lenc * lend, "C tile");
                ctx.charge_flops(gemm_flops(lenc, lend, llen) *
                                 double(lena * lenb));
                if (ctx.real())
                  for (std::size_t iab = 0; iab < lena * lenb; ++iab)
                    gemm(Trans::No, Trans::Yes, lenc, lend, llen, 1.0,
                         bufo3.data() + (iab * n + par.t.lo(tc)) * llen, llen,
                         par.b() + par.t.lo(td) * n + llo, n, 1.0,
                         ctile.data() + iab * lenc * lend, lend);
                // Nonblocking: the accumulate lands at issue (under the
                // GA acc mutex); its wire time hides behind the next
                // (tc,td) tile's gemm.
                if (par.opt.overlap)
                  mem.c->nbacc(ctx, ga::TileCoord{ta, tb, tc, td},
                               ctile.data());
                else
                  mem.c->acc(ctx, ga::TileCoord{ta, tb, tc, td},
                             ctile.data());
              }
          });
      o2.reset();
    }
    par.b_active = nullptr;
  }
}

}  // namespace

ParResult fused_inner_par_transform(const Problem& p, Cluster& cluster,
                                    const ParOptions& opt) {
  Par par(p, cluster, opt);
  WallTimer timer;
  const auto before = cluster.totals();
  const double sim_before = cluster.sim_time();
  auto c = make_c(par);
  const FusedInnerMember self{c.get(), &p.b};
  fused_inner_slices(par, std::span<const FusedInnerMember>(&self, 1));
  return finish(par, "fused-inner", c, timer, before, sim_before);
}

BatchParResult batched_unfused_par_transform(
    const Problem& p, std::span<const tensor::Matrix> member_b,
    Cluster& cluster, const ParOptions& opt) {
  FIT_REQUIRE(!member_b.empty(), "batched transform needs >= 1 member");
  for (const auto& b : member_b)
    FIT_REQUIRE(b.rows() == p.irreps.n_orbitals() &&
                    b.cols() == p.irreps.n_orbitals(),
                "batch member B must be " << p.irreps.n_orbitals()
                                          << " x "
                                          << p.irreps.n_orbitals());
  // A private Auto memo (when the caller brought none) shares the
  // per-phase DES picks across members: the contraction phases have
  // identical shape for every member, so the six-candidate planning
  // is paid once per phase.
  ParOptions o = opt;
  BalanceCache local_memo;
  if (!o.balance_cache) o.balance_cache = &local_memo;
  Par par(p, cluster, o);
  WallTimer timer;
  const auto before = cluster.totals();
  const double sim_before = cluster.sim_time();
  std::vector<Tiling> dims(4, par.t);

  BatchParResult r;

  // The AO integral tensor is member-invariant: fill it — and pay its
  // integral evaluation — exactly once for the whole batch.
  auto a = std::make_unique<GlobalArray>(
      cluster, "A", dims,
      ga::filter_and(ga::filter_triangular(0, 1),
                     ga::filter_triangular(2, 3)));
  fill_a(par, *a, 0, "fill A");

  for (std::size_t m = 0; m < member_b.size(); ++m) {
    par.b_active = &member_b[m];

    auto o1 = std::make_unique<GlobalArray>(cluster, "O1", dims,
                                            ga::filter_triangular(2, 3));
    contract1(par, *a, *o1, "c1");
    if (m + 1 == member_b.size()) a.reset();

    auto o2 = std::make_unique<GlobalArray>(
        cluster, "O2", dims,
        ga::filter_and(ga::filter_triangular(0, 1),
                       ga::filter_triangular(2, 3)));
    contract2(par, *o1, *o2, "c2");
    o1.reset();

    auto o3 = std::make_unique<GlobalArray>(cluster, "O3", dims,
                                            ga::filter_triangular(0, 1));
    contract3(par, *o2, *o3, /*kl_symmetric=*/true, "c3");
    o2.reset();

    auto c = make_c(par);
    contract4(par, *o3, *c, 0, /*accumulate=*/false, "c4");
    o3.reset();

    r.member_done_s.push_back(cluster.sim_time() - sim_before);
    if (cluster.mode() == runtime::ExecutionMode::Real && o.gather_result)
      r.c.emplace_back(gather_c(par, *c));
    else
      r.c.emplace_back(std::nullopt);
    // Each member's C frees before the next member starts — the
    // unfused batch's live set never exceeds one member's chain.
    c.reset();
  }
  par.b_active = nullptr;

  static const std::unique_ptr<GlobalArray> no_c;  // already gathered
  r.stats =
      std::move(finish(par, "batched-unfused", no_c, timer, before,
                       sim_before)
                    .stats);
  return r;
}

BatchParResult batched_fused_inner_par_transform(
    const Problem& p, std::span<const tensor::Matrix> member_b,
    Cluster& cluster, const ParOptions& opt) {
  FIT_REQUIRE(!member_b.empty(), "batched transform needs >= 1 member");
  for (const auto& b : member_b)
    FIT_REQUIRE(b.rows() == p.irreps.n_orbitals() &&
                    b.cols() == p.irreps.n_orbitals(),
                "batch member B must be " << p.irreps.n_orbitals()
                                          << " x "
                                          << p.irreps.n_orbitals());
  ParOptions o = opt;
  BalanceCache local_memo;
  if (!o.balance_cache) o.balance_cache = &local_memo;
  Par par(p, cluster, o);
  WallTimer timer;
  const auto before = cluster.totals();
  const double sim_before = cluster.sim_time();

  // Every member's C accumulates across every l-slice, so all of them
  // stay allocated for the whole run — the memory/throughput trade
  // core::plan_batch accounts for.
  std::vector<std::unique_ptr<GlobalArray>> cs;
  std::vector<FusedInnerMember> members;
  cs.reserve(member_b.size());
  members.reserve(member_b.size());
  for (std::size_t m = 0; m < member_b.size(); ++m) {
    cs.push_back(make_c(par));
    members.push_back(FusedInnerMember{cs.back().get(), &member_b[m]});
  }

  fused_inner_slices(par, members);

  BatchParResult r;
  const double done = cluster.sim_time() - sim_before;
  for (std::size_t m = 0; m < member_b.size(); ++m) {
    // No member is complete before the last slice: every C is only
    // final at batch end.
    r.member_done_s.push_back(done);
    if (cluster.mode() == runtime::ExecutionMode::Real && o.gather_result)
      r.c.emplace_back(gather_c(par, *cs[m]));
    else
      r.c.emplace_back(std::nullopt);
    cs[m].reset();
  }

  static const std::unique_ptr<GlobalArray> no_c;  // already gathered
  r.stats =
      std::move(finish(par, "batched-fused-inner", no_c, timer, before,
                       sim_before)
                    .stats);
  return r;
}

std::vector<tensor::Matrix> batch_member_bs(const Problem& p,
                                            std::size_t count) {
  std::vector<tensor::Matrix> bs;
  bs.reserve(count);
  for (std::size_t m = 0; m < count; ++m)
    bs.push_back(m == 0 ? p.b
                        : chem::make_mo_coefficients(
                              p.irreps, p.molecule.seed * 7919 + 13 + m));
  return bs;
}

ParResult hybrid_transform(const Problem& p, Cluster& cluster,
                           const ParOptions& opt) {
  if (unfused_fits(p, cluster)) {
    auto r = unfused_par_transform(p, cluster, opt);
    r.stats.schedule = "hybrid(unfused)";
    return r;
  }
  auto r = fused_inner_par_transform(p, cluster, opt);
  r.stats.schedule = "hybrid(fused-inner)";
  return r;
}

ParResult resilient_transform(const Problem& p, Cluster& cluster,
                              const ParOptions& opt) {
  auto& reg = cluster.metrics();
  if (unfused_fits(p, cluster)) {
    try {
      auto r = unfused_par_transform(p, cluster, opt);
      r.stats.schedule = "resilient(unfused)";
      return r;
    } catch (const OutOfMemoryError& e) {
      // A capacity-shrink fault or rank death invalidated the choice
      // mid-run. The intermediates' GAs have been rolled back; degrade
      // along Thm 5.2's order to the O(n^3 Tl) fused-inner schedule
      // and recompute from the integrals.
      reg.add(reg.counter("plan.replans"), 0, 1);
      cluster.note_instant("replan: unfused -> fused-inner", 0);
      auto r = fused_inner_par_transform(p, cluster, opt);
      r.stats.schedule = "resilient(unfused->fused-inner)";
      r.stats.note =
          std::string("downgraded after capacity loss (live aggregate ") +
          human_bytes(cluster.aggregate_capacity_bytes()) + "): " + e.what();
      return r;
    }
  }
  auto r = fused_inner_par_transform(p, cluster, opt);
  r.stats.schedule = "resilient(fused-inner)";
  r.stats.note = "unfused intermediates exceed the live aggregate capacity";
  return r;
}

// ---- NWChem baseline models (see schedules_baseline.hpp) ------------

ParResult nwchem_unfused_par_transform(const Problem& p, Cluster& cluster,
                                       const ParOptions& opt) {
  Par par(p, cluster, opt);
  WallTimer timer;
  const auto before = cluster.totals();
  const double sim_before = cluster.sim_time();
  std::vector<Tiling> dims(4, par.t);

  // Production behaviour: every tensor is allocated up front and kept
  // until the end — the ~1.5 n^4 aggregate footprint.
  GlobalArray a(cluster, "A", dims,
                ga::filter_and(ga::filter_triangular(0, 1),
                               ga::filter_triangular(2, 3)));
  GlobalArray o1(cluster, "O1", dims, ga::filter_triangular(2, 3));
  GlobalArray o2(cluster, "O2", dims,
                 ga::filter_and(ga::filter_triangular(0, 1),
                                ga::filter_triangular(2, 3)));
  GlobalArray o3(cluster, "O3", dims, ga::filter_triangular(0, 1));
  auto c = make_c(par);

  fill_a(par, a, 0, "fill A");
  contract1(par, a, o1, "c1");
  contract2(par, o1, o2, "c2");
  contract3(par, o2, o3, /*kl_symmetric=*/true, "c3");
  contract4(par, o3, *c, 0, /*accumulate=*/false, "c4");

  auto r = finish(par, "nwchem-unfused", c, timer, before, sim_before);
  return r;
}

ParResult nwchem_recompute_par_transform(const Problem& p, Cluster& cluster,
                                         const ParOptions& opt) {
  Par par(p, cluster, opt);
  WallTimer timer;
  const auto before = cluster.totals();
  const double sim_before = cluster.sim_time();
  const std::size_t n = par.n();
  const std::size_t np = tensor::npairs(n);
  const std::size_t nranks = cluster.n_ranks();
  auto c = make_c(par);

  // Task = (ta, tb) pair row; dominated by the per-alpha integral
  // recomputation, so cost scales with lena regardless of how much of
  // the (b, c, d) work symmetry later discards — exactly the skew a
  // dynamic strategy absorbs.
  std::vector<std::pair<std::size_t, std::size_t>> ab_pairs;
  for (std::size_t ta = 0; ta < par.nt; ++ta)
    for (std::size_t tb = 0; tb <= ta; ++tb) ab_pairs.emplace_back(ta, tb);
  const auto& mach = cluster.machine();
  auto rc_cost = [&](std::size_t task) {
    const auto [ta, tb] = ab_pairs[task];
    const double lena = static_cast<double>(par.t.len(ta));
    const double lenb = static_cast<double>(par.t.len(tb));
    const double ints = lena * double(n) * double(n) * double(np);
    // Diagonal pair rows do the bb <= aa half of the (ia, ib) square.
    const double nab =
        ta == tb ? lena * (lena + 1.0) / 2.0 : lena * lenb;
    const double flops =
        2.0 * ints +
        nab * 2.0 * double(n) * double(n) * double(n);
    return ints / mach.integrals_per_sec + flops / mach.flops_per_rank;
  };
  run_claimed_phase(
      par, "recompute", ab_pairs.size(),
      [&](std::size_t task) { return task % nranks; }, rc_cost,
      [&](RankCtx& ctx, std::size_t task) {
        const Problem& prob = par.p;
        const std::size_t ta = ab_pairs[task].first;
        const std::size_t tb = ab_pairs[task].second;
        const std::size_t lena = par.t.len(ta);
        const std::size_t lenb = par.t.len(tb);
        // Per-row staging for the C contributions (full (c,d) range).
        RankBuffer crow(ctx, lena * lenb * n * n, "C row");
        RankBuffer o1buf(ctx, n * np, "O1 slice");
        RankBuffer o2buf(ctx, np, "O2 slice");
        RankBuffer o3row(ctx, n, "O3 row");
        for (std::size_t ia = 0; ia < lena; ++ia) {
          const std::size_t aa = par.t.lo(ta) + ia;
          // Recompute the O1 slice for this alpha from on-the-fly
          // integrals — once per (pair-row, alpha): the block-level
          // redundancy factor of the direct scheme.
          ctx.charge_integrals(double(n) * double(n) * double(np));
          ctx.charge_flops(2.0 * double(n) * double(n) * double(np));
          if (ctx.real()) {
            for (std::size_t j = 0; j < n; ++j)
              for (std::size_t pkl = 0; pkl < np; ++pkl) {
                const auto [k, l] = tensor::unpack_pair(pkl);
                double acc = 0.0;
                for (std::size_t i = 0; i < n; ++i)
                  acc += prob.engine.value(i, j, k, l) * prob.b(aa, i);
                o1buf.data()[j * np + pkl] = acc;
              }
          }
          for (std::size_t ib = 0; ib < lenb; ++ib) {
            const std::size_t bb = par.t.lo(tb) + ib;
            if (bb > aa) continue;
            const auto hab = prob.irreps.pair_irrep(aa, bb);
            ctx.charge_flops(2.0 * double(n) * double(np));  // O2
            ctx.charge_flops(2.0 * double(n) * double(n) * double(n));
            if (ctx.real()) {
              std::fill(o2buf.data(), o2buf.data() + np, 0.0);
              for (std::size_t j = 0; j < n; ++j)
                blas::axpy(np, prob.b(bb, j), o1buf.data() + j * np,
                           o2buf.data());
              for (std::size_t cc = 0; cc < n; ++cc) {
                for (std::size_t l = 0; l < n; ++l) {
                  double acc = 0.0;
                  for (std::size_t k = 0; k < n; ++k)
                    acc += o2buf.data()[tensor::pack_pair_sym(k, l)] *
                           prob.b(cc, k);
                  o3row.data()[l] = acc;
                }
                for (std::size_t d = 0; d <= cc; ++d) {
                  if (prob.irreps.pair_irrep(cc, d) != hab) continue;
                  crow.data()[((ia * lenb + ib) * n + cc) * n + d] =
                      blas::dot(n, o3row.data(), prob.b.row(d));
                }
              }
            }
            // c4 flops: one dot of length n per allowed (c >= d) pair.
            ctx.charge_flops(2.0 * double(n) * double(np) /
                             double(prob.irreps.order()));
          }
        }
        // Accumulate the staged row into the distributed C (local: C
        // is distributed by pair row).
        const std::size_t tw = par.t.max_width();
        RankBuffer ctile(ctx, tw * tw * tw * tw, "C tile");
        for (std::size_t tc = 0; tc < par.nt; ++tc)
          for (std::size_t td = 0; td <= tc; ++td) {
            if (!par.tile_allowed(ta, tb, tc, td)) continue;
            if (ctx.real()) {
              const std::size_t lenc = par.t.len(tc);
              const std::size_t lend = par.t.len(td);
              for (std::size_t ia = 0; ia < lena; ++ia)
                for (std::size_t ib = 0; ib < lenb; ++ib)
                  for (std::size_t icc = 0; icc < lenc; ++icc)
                    for (std::size_t id = 0; id < lend; ++id)
                      ctile.data()[((ia * lenb + ib) * lenc + icc) * lend +
                                   id] =
                          crow.data()[((ia * lenb + ib) * n +
                                       par.t.lo(tc) + icc) *
                                          n +
                                      par.t.lo(td) + id];
            }
            c->acc(ctx, ga::TileCoord{ta, tb, tc, td}, ctile.data());
          }
      });
  return finish(par, "nwchem-recompute", c, timer, before, sim_before);
}

}  // namespace fit::core
