// Distributed four-index transform schedules over the Global-Arrays
// substrate — the paper's Section 7 implementations:
//
//   unfused_par_transform      four back-to-back tile contractions in
//                              the style of Listing 4. Lowest flop
//                              count, but needs ~3n^4/4 words of
//                              aggregate memory for the intermediates.
//   fused_par_transform        Listing 8: the outer l loop is fused
//                              across all four contractions; per
//                              l-slice only O(n^3 * Tl) of global
//                              memory is live besides C. Runs the
//                              largest possible problem (Thm 6.2).
//   fused_inner_par_transform  Listing 10: outer fusion as above plus
//                              inner op12/34 fusion, eliminating the
//                              distributed O1 and O3 slices entirely —
//                              the communication-volume-minimal
//                              schedule of Sec. 7.2/7.3, with optional
//                              alpha-parallelization (more parallelism
//                              at the cost of replicated A traffic).
//   hybrid_transform           Sec. 7.4: picks unfused when the
//                              intermediates fit in aggregate memory,
//                              and the fused-inner schedule otherwise.
//
// All schedules run in Real mode (bit-checked against the sequential
// reference) or Simulate mode (counters and modeled time only; used at
// paper scale). OutOfMemoryError propagates to the caller — that is
// the "Failed" outcome of Figure 2.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/problem.hpp"
#include "ga/global_array.hpp"
#include "ga/task_counter.hpp"
#include "runtime/cluster.hpp"
#include "tensor/matrix.hpp"
#include "tensor/packed.hpp"

/// \file
/// \brief Distributed schedules (Sec. 7): unfused, fused, fused-inner,
/// the fuse/unfuse hybrid, and the fault-aware resilient wrapper.

namespace fit::core {

/// Memo of the per-phase modes choose_balance picked during one run,
/// replayable by an identical later run: a phase whose label is in the
/// map plans the one recorded mode and skips the six-candidate DES
/// entirely. The serve schedule cache keeps one of these per
/// (problem, machine, balance) fingerprint.
struct BalanceCache {
  std::unordered_map<std::string, ga::Balance> picks;
  /// Phases that found their pick in the memo (DES re-plans skipped).
  std::size_t hits = 0;
};

/// Knobs of the distributed schedules.
struct ParOptions {
  /// Tile width for orbital dimensions.
  std::size_t tile = 8;
  /// Fused outer-loop slice width Tl.
  std::size_t tile_l = 4;
  /// Number of alpha chunks each k tile's work is split across in the
  /// fused-inner schedule (Sec. 7.3). 0 = choose automatically so that
  /// every rank has work.
  std::size_t alpha_parallel = 0;
  /// How alpha tiles are grouped into chunks. Contiguous chunks are the
  /// paper's baseline and suffer the triangular alpha >= beta imbalance
  /// (chunk weight ~ sum of ta+1); Balanced implements the "alternative
  /// load balancing strategies" of Sec. 7.3: greedy weight-balanced
  /// assignment of alpha tiles to chunks.
  enum class AlphaChunking { Contiguous, Balanced };
  /// Alpha-chunking strategy (see AlphaChunking).
  AlphaChunking alpha_chunking = AlphaChunking::Balanced;
  /// Gather the distributed result into a PackedC at the end (Real
  /// mode only; disable for timing runs).
  bool gather_result = true;
  /// Double-buffered prefetch pipelines: fetch the next tile with a
  /// nonblocking get while the current one multiplies, and issue puts /
  /// accumulates nonblocking so their wire time hides behind the next
  /// iteration. Results are bit-identical with the blocking schedule
  /// (the GA layer moves data eagerly at issue and the accumulation
  /// order is unchanged); only the modeled comm/compute overlap —
  /// ParStats::overlapped_seconds — differs. Off = the blocking
  /// baseline, kept for ablation.
  bool overlap = true;
  /// Work-distribution strategy for every parallel phase (Sec. 7.3's
  /// NXTVAL discussion). Static is the plan-time owner map and stays
  /// bit-identical to the historical loops; Counter claims work units
  /// through a modeled shared fetch-and-add counter (paying round
  /// trips and contention at its host rank); Steal seeds per-rank
  /// queues from the static map and steals from the heaviest surviving
  /// rank when a queue drains. Batched / PerNode / Tree are the
  /// counter's contention mitigations (see ga::Balance), and Auto lets
  /// the planner pick the cheapest mode per phase from the alpha-beta
  /// cost model (core::choose_balance). Every mode produces
  /// bit-identical Real-mode results (each output tile is written by
  /// exactly one task per phase); only the modeled time, traffic and
  /// sched.* metrics move. Overridable via FOURINDEX_BALANCE.
  ga::Balance balance = ga::Balance::Static;
  /// Dequeue granularity for Balance::Batched / Tree (tasks per
  /// fetch-and-add at the leaf level). 0 = derive from the
  /// claims-per-rank rule (ga::auto_batch: ~8 fetches per live rank,
  /// clamped to [1, 64]). Overridable via FOURINDEX_COUNTER_BATCH.
  std::size_t counter_batch = 0;
  /// Optional Auto-pick memo shared across runs (see BalanceCache).
  /// Only consulted when balance == Auto: phases found in the memo
  /// replay the recorded mode without re-running the candidate DES;
  /// phases not yet recorded run it and write their pick back. The
  /// caller owns the object and its lifetime.
  BalanceCache* balance_cache = nullptr;
};

/// What a distributed schedule did: modeled time, modeled traffic, and
/// dynamic-scheduler activity.
struct ParStats {
  /// Which schedule actually ran.
  std::string schedule;
  /// Modeled execution time (s).
  double sim_time = 0;
  /// Modeled floating-point operations.
  double flops = 0;
  /// Modeled on-the-fly integral evaluations.
  double integral_evals = 0;
  /// Bytes moved between nodes.
  double remote_bytes = 0;
  /// Bytes moved within a node.
  double local_bytes = 0;
  /// Aggregate GA high-water mark (bytes).
  double peak_global_bytes = 0;
  /// Seconds of wire/disk time hidden behind compute by the
  /// nonblocking pipelines (see runtime::CommStats).
  double overlapped_seconds = 0;
  /// Seconds the ranks' clocks actually stalled on transfers.
  double exposed_seconds = 0;
  /// Worst per-phase imbalance of this run: max over the run's phases
  /// of makespan * ranks / total rank time.
  double worst_imbalance = 1.0;
  /// BSP phases executed.
  std::size_t n_phases = 0;
  /// Host time spent simulating.
  double wall_seconds = 0;
  /// Tasks claimed through the counter or a steal during this run
  /// (zero under Balance::Static).
  double sched_claims = 0;
  /// Steals performed during this run (zero under Balance::Static).
  double sched_steals = 0;
  /// Seconds spent queued at the task counter during this run (zero
  /// under Balance::Static).
  double sched_counter_wait_s = 0;
  /// Fetch-and-adds that returned work during this run (counter
  /// modes); sched_claims / sched_counter_fetches is the realized
  /// batch occupancy.
  double sched_counter_fetches = 0;
  /// Tree-refill ascents performed during this run (Balance::Tree).
  double sched_tree_hops = 0;
  /// Generations the checkpoint restore walked past the newest one
  /// during this run (zero when every restore came from the newest
  /// intact epoch).
  double recovery_fallback_epochs = 0;
  /// Checkpoint tile copies that failed checksum verification during
  /// this run's restores.
  double ckpt_verify_failures = 0;
  /// Whole failure domains (nodes) killed during this run.
  double fault_domain_kills = 0;
  /// Degradation/replan rationale, if any.
  std::string note;
};

/// A distributed schedule's result: the gathered tensor and the stats.
struct ParResult {
  /// Populated in Real mode with gather_result enabled.
  std::optional<tensor::PackedC> c;
  /// Modeled execution statistics.
  ParStats stats;
};

/// Listing 4 x4: four back-to-back distributed tile contractions with
/// all intermediates resident (~3n^4/4 aggregate words).
ParResult unfused_par_transform(const Problem& p, runtime::Cluster& cluster,
                                const ParOptions& opt = {});

/// Listing 8: outer l-loop fusion; per slice only O(n^3 * Tl) global
/// words live besides C.
ParResult fused_par_transform(const Problem& p, runtime::Cluster& cluster,
                              const ParOptions& opt = {});

/// Listing 10: outer fusion plus inner op12/34 fusion — the
/// communication-volume-minimal schedule, with optional
/// alpha-parallelization.
ParResult fused_inner_par_transform(const Problem& p,
                                    runtime::Cluster& cluster,
                                    const ParOptions& opt = {});

/// The fuse/unfuse hybrid (Sec. 7.4). `stats.schedule` records the
/// choice made.
ParResult hybrid_transform(const Problem& p, runtime::Cluster& cluster,
                           const ParOptions& opt = {});

/// The hybrid's fault-aware sibling: chooses like hybrid_transform but
/// against the *live* aggregate capacity (rank deaths and
/// capacity-shrink faults lower it), and when a mid-run capacity loss
/// turns the unfused chain's allocation into an OOM, degrades along
/// Theorem 5.2's order to the fused-inner schedule and re-runs instead
/// of failing. `stats.note` records the rationale; FaultError (retry
/// budget exhausted) still propagates.
ParResult resilient_transform(const Problem& p, runtime::Cluster& cluster,
                              const ParOptions& opt = {});

/// Decision function of the hybrid: true if the unfused intermediates
/// fit into the cluster's aggregate memory (with a small safety
/// margin). Uses the live capacity view, which capacity-shrink faults
/// and rank deaths reduce.
bool unfused_fits(const Problem& p, const runtime::Cluster& cluster);

/// Result of a shared-basis batched transform: one output tensor per
/// batch member plus whole-batch statistics.
struct BatchParResult {
  /// Per-member gathered results (Real mode with gather_result; empty
  /// optionals otherwise), in member order.
  std::vector<std::optional<tensor::PackedC>> c;
  /// Modeled time at which each member's transform completed, relative
  /// to the batch start. Under the unfused chain members complete one
  /// after another; under the fused schedules every member's C is only
  /// complete at the end, so all entries equal the batch makespan.
  std::vector<double> member_done_s;
  /// Whole-batch statistics (the amortized A fill appears once).
  ParStats stats;
};

/// Unfused chain over a shared-basis batch (the MP2-scan case): all
/// members share the problem's AO integral tensor A, differing only in
/// their transformation matrix `member_b[m]`. A is filled — and its
/// integral evaluation paid — exactly once; each member then runs the
/// four contractions with its own B, with A freed after the last
/// member's first contraction and each member's C gathered and freed
/// before the next member starts. Each member's Real-mode result is
/// bit-identical to running it alone through unfused_par_transform.
/// When ParOptions::balance is Auto and no balance_cache is supplied,
/// an internal memo shares the per-phase DES picks across members, so
/// the six-candidate claim planning is also paid once per phase shape.
BatchParResult batched_unfused_par_transform(
    const Problem& p, std::span<const tensor::Matrix> member_b,
    runtime::Cluster& cluster, const ParOptions& opt = {});

/// Fused-inner schedule over a shared-basis batch: per l-slice the A
/// slice is produced once and every member runs its fused12/fused34
/// phases against it, so the integral evaluation amortizes across the
/// batch while only one member's O2 slice is live at a time. All
/// members' C arrays stay allocated for the whole run (each member's C
/// accumulates across every slice) — the memory/throughput trade
/// core::plan_batch accounts for. Results per member are bit-identical
/// to solo fused_inner_par_transform runs.
BatchParResult batched_fused_inner_par_transform(
    const Problem& p, std::span<const tensor::Matrix> member_b,
    runtime::Cluster& cluster, const ParOptions& opt = {});

/// Deterministic member coefficient sets for a shared-basis batch of
/// `count` transforms: member 0 is the problem's own B, members 1..
/// count-1 are fresh symmetry-adapted orthogonal matrices derived from
/// the molecule seed — the "N molecules sharing a basis" shape an MP2
/// energy scan produces.
std::vector<tensor::Matrix> batch_member_bs(const Problem& p,
                                            std::size_t count);

}  // namespace fit::core
