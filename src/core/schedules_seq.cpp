#include "core/schedules_seq.hpp"

#include <memory>
#include <vector>

#include "blas/gemm.hpp"
#include "blas/level1.hpp"
#include "tensor/pairs.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace fit::core {

using tensor::Matrix;
using tensor::npairs;
using tensor::pack_pair;
using tensor::pack_pair_sym;
using tensor::PackedA;
using tensor::PackedC;
using tensor::PackedO2;
using tensor::Tensor4;
using tensor::TensorO1;
using tensor::TensorO3;
using tensor::unpack_pair;

namespace {

/// Copy the dense result into the packed, spatially blocked C,
/// visiting only the spatially allowed entries. Forbidden entries of
/// the dense tensor are validated (to numerical noise) by tests.
PackedC pack_result(const Problem& p, const Tensor4& full) {
  const std::size_t n = p.n();
  PackedC c(n, p.irreps);
  for (std::size_t a = 0; a < n; ++a)
    for (std::size_t b = 0; b <= a; ++b) {
      const auto hab = p.irreps.pair_irrep(a, b);
      for (std::size_t cc = 0; cc < n; ++cc)
        for (std::size_t d = 0; d <= cc; ++d)
          if (p.irreps.pair_irrep(cc, d) == hab)
            c.add(a, b, cc, d, full(a, b, cc, d));
    }
  return c;
}

}  // namespace

tensor::PackedC reference_direct_o8(const Problem& p) {
  const std::size_t n = p.n();
  FIT_REQUIRE(n <= 12, "reference_direct_o8 is O(n^8); use n <= 12");
  PackedC c(n, p.irreps);
  const Matrix& b = p.b;
  for (std::size_t a = 0; a < n; ++a)
    for (std::size_t be = 0; be <= a; ++be) {
      const auto hab = p.irreps.pair_irrep(a, be);
      for (std::size_t ga = 0; ga < n; ++ga)
        for (std::size_t de = 0; de <= ga; ++de) {
          if (p.irreps.pair_irrep(ga, de) != hab) continue;
          double acc = 0.0;
          for (std::size_t i = 0; i < n; ++i)
            for (std::size_t j = 0; j < n; ++j)
              for (std::size_t k = 0; k < n; ++k)
                for (std::size_t l = 0; l < n; ++l)
                  acc += p.engine.value(i, j, k, l) * b(a, i) * b(be, j) *
                         b(ga, k) * b(de, l);
          c.add(a, be, ga, de, acc);
        }
    }
  return c;
}

tensor::Tensor4 reference_dense(const Problem& p) {
  const std::size_t n = p.n();
  const std::size_t n2 = n * n, n3 = n * n * n;
  const Matrix& b = p.b;

  // Materialize A fully dense: [i][j][k][l].
  Tensor4 a(n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t k = 0; k < n; ++k)
        for (std::size_t l = 0; l < n; ++l)
          a(i, j, k, l) = p.engine.value(i, j, k, l);

  // T1[al, j, k, l] = sum_i B[al, i] * A[i, (jkl)]
  Tensor4 t1(n);
  blas::gemm(blas::Trans::No, blas::Trans::No, n, n3, n, 1.0, b.data(), n,
             a.data(), n3, 0.0, t1.data(), n3);

  // T2[al, be, k, l] = sum_j B[be, j] * T1[al, j, (kl)]
  Tensor4 t2(n);
  for (std::size_t al = 0; al < n; ++al)
    blas::gemm(blas::Trans::No, blas::Trans::No, n, n2, n, 1.0, b.data(), n,
               t1.data() + al * n3, n2, 0.0, t2.data() + al * n3, n2);

  // T3[al, be, ga, l] = sum_k B[ga, k] * T2[al, be, k, l]
  Tensor4 t3(n);
  for (std::size_t ab = 0; ab < n2; ++ab)
    blas::gemm(blas::Trans::No, blas::Trans::No, n, n, n, 1.0, b.data(), n,
               t2.data() + ab * n2, n, 0.0, t3.data() + ab * n2, n);

  // C[al, be, ga, de] = sum_l T3[al, be, ga, l] * B[de, l]
  Tensor4 c(n);
  for (std::size_t ab = 0; ab < n2; ++ab)
    blas::gemm(blas::Trans::No, blas::Trans::Yes, n, n, n, 1.0,
               t3.data() + ab * n2, n, b.data(), n, 0.0, c.data() + ab * n2,
               n);
  return c;
}

tensor::PackedC reference_transform(const Problem& p) {
  return pack_result(p, reference_dense(p));
}

tensor::PackedC unfused_transform(const Problem& p, SeqStats* stats) {
  const std::size_t n = p.n();
  const std::size_t np = npairs(n);
  const Matrix& b = p.b;
  WallTimer timer;
  MemMeter mem;
  SeqStats local;

  // ---- Materialize A[ij, kl] ----------------------------------------
  mem.alloc(np * np);
  auto a = std::make_unique<PackedA>(n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j <= i; ++j)
      for (std::size_t k = 0; k < n; ++k)
        for (std::size_t l = 0; l <= k; ++l)
          a->set(i, j, k, l, p.engine.value(i, j, k, l));

  // ---- Contraction 1: O1[a, j, kl] = sum_i A[(ij), kl] B[a, i] ------
  mem.alloc(n * n * np);
  auto o1 = std::make_unique<TensorO1>(n);
  {
    Matrix aj(n, np);  // gathered A rows for fixed j: aj[i, kl]
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t i = 0; i < n; ++i)
        blas::copy(np, a->packed().row(pack_pair_sym(i, j)), aj.row(i));
      // O1[:, j, :] has row stride n*np starting at kl_row(0, j).
      blas::gemm(blas::Trans::No, blas::Trans::No, n, np, n, 1.0, b.data(),
                 n, aj.data(), np, 0.0, o1->kl_row(0, j), n * np);
      local.flops += blas::gemm_flops(n, np, n);
    }
  }
  a.reset();
  mem.release(np * np);

  // ---- Contraction 2: O2[ab, kl] = sum_j O1[a, j, kl] B[b, j], a>=b -
  mem.alloc(np * np);
  auto o2 = std::make_unique<PackedO2>(n);
  for (std::size_t aa = 0; aa < n; ++aa) {
    // Rows pack(aa, 0..aa) of O2 are contiguous; O1[aa, :, :] is a
    // contiguous (j, kl) matrix.
    blas::gemm(blas::Trans::No, blas::Trans::No, aa + 1, np, n, 1.0,
               b.data(), n, o1->kl_row(aa, 0), np, 0.0,
               o2->packed().row(pack_pair(aa, 0)), np);
    local.flops += blas::gemm_flops(aa + 1, np, n);
  }
  o1.reset();
  mem.release(n * n * np);

  // ---- Contraction 3: O3[ab, c, l] = sum_k O2[ab, (kl)] B[c, k] -----
  mem.alloc(np * n * n);
  auto o3 = std::make_unique<TensorO3>(n);
  {
    Matrix o2u(n, n);  // unpacked O2 slice for fixed ab: o2u[k, l]
    for (std::size_t pab = 0; pab < np; ++pab) {
      const auto [aa, bb] = unpack_pair(pab);
      o2->unpack_ab(aa, bb, o2u);
      blas::gemm(blas::Trans::No, blas::Trans::No, n, n, n, 1.0, b.data(), n,
                 o2u.data(), n, 0.0, &o3->at(aa, bb, 0, 0), n);
      local.flops += blas::gemm_flops(n, n, n);
    }
  }
  o2.reset();
  mem.release(np * np);

  // ---- Contraction 4: C[ab, cd] = sum_l O3[ab, c, l] B[d, l], c>=d,
  //      spatially allowed entries only ------------------------------
  const auto sizes = p.sizes();
  mem.alloc(sizes.c);
  PackedC c(n, p.irreps);
  for (std::size_t pab = 0; pab < np; ++pab) {
    const auto [aa, bb] = unpack_pair(pab);
    const auto hab = p.irreps.pair_irrep(aa, bb);
    for (std::size_t cc = 0; cc < n; ++cc) {
      const double* o3row = &o3->at(aa, bb, cc, 0);
      for (std::size_t d = 0; d <= cc; ++d) {
        if (p.irreps.pair_irrep(cc, d) != hab) continue;
        c.add(aa, bb, cc, d, blas::dot(n, o3row, b.row(d)));
        local.flops += 2.0 * static_cast<double>(n);
      }
    }
  }
  o3.reset();
  mem.release(np * n * n);

  local.integral_evals = p.engine.evaluations();
  local.peak_words = mem.peak();
  local.wall_seconds = timer.seconds();
  if (stats) *stats = local;
  return c;
}

tensor::PackedC fused12_34_transform(const Problem& p, SeqStats* stats,
                                     bool materialize_a) {
  const std::size_t n = p.n();
  const std::size_t np = npairs(n);
  const Matrix& b = p.b;
  WallTimer timer;
  MemMeter mem;
  SeqStats local;

  std::unique_ptr<PackedA> a;
  if (materialize_a) {
    mem.alloc(np * np);
    a = std::make_unique<PackedA>(n);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j <= i; ++j)
        for (std::size_t k = 0; k < n; ++k)
          for (std::size_t l = 0; l <= k; ++l)
            a->set(i, j, k, l, p.engine.value(i, j, k, l));
  }

  // ---- Phase 1 (fused contractions 1+2): for each (k>=l) slice,
  //      compute O1_buf[a, j] then accumulate into O2[ab, kl] ---------
  mem.alloc(np * np);  // O2
  auto o2 = std::make_unique<PackedO2>(n);
  {
    mem.alloc(2 * n * n);  // A slice + O1 buffer
    Matrix akl(n, n);      // full (i, j) slice for fixed (k, l)
    Matrix o1buf(n, n);    // O1_buf[a, j]
    for (std::size_t k = 0; k < n; ++k) {
      for (std::size_t l = 0; l <= k; ++l) {
        if (materialize_a) {
          a->unpack_kl(k, l, akl);
        } else {
          // On-the-fly A slice: evaluate the canonical i>=j triangle
          // and mirror (the engine is symmetric in (i, j)).
          for (std::size_t i = 0; i < n; ++i)
            for (std::size_t j = 0; j <= i; ++j) {
              const double v = p.engine.value(i, j, k, l);
              akl(i, j) = v;
              akl(j, i) = v;
            }
        }
        blas::gemm(blas::Trans::No, blas::Trans::No, n, n, n, 1.0, b.data(),
                   n, akl.data(), n, 0.0, o1buf.data(), n);
        local.flops += blas::gemm_flops(n, n, n);
        for (std::size_t aa = 0; aa < n; ++aa)
          for (std::size_t bb = 0; bb <= aa; ++bb) {
            o2->at(aa, bb, k, l) = blas::dot(n, o1buf.row(aa), b.row(bb));
            local.flops += 2.0 * static_cast<double>(n);
          }
      }
    }
    mem.release(2 * n * n);
  }
  if (materialize_a) {
    a.reset();
    mem.release(np * np);
  }

  // ---- Phase 2 (fused contractions 3+4): for each (a>=b), compute
  //      O3_buf[c, l] then accumulate into C[ab, cd] ------------------
  const auto sizes = p.sizes();
  mem.alloc(sizes.c);
  PackedC c(n, p.irreps);
  {
    mem.alloc(2 * n * n);  // O2 slice + O3 buffer
    Matrix o2u(n, n);
    Matrix o3buf(n, n);
    for (std::size_t pab = 0; pab < np; ++pab) {
      const auto [aa, bb] = unpack_pair(pab);
      const auto hab = p.irreps.pair_irrep(aa, bb);
      o2->unpack_ab(aa, bb, o2u);
      blas::gemm(blas::Trans::No, blas::Trans::No, n, n, n, 1.0, b.data(), n,
                 o2u.data(), n, 0.0, o3buf.data(), n);
      local.flops += blas::gemm_flops(n, n, n);
      for (std::size_t cc = 0; cc < n; ++cc)
        for (std::size_t d = 0; d <= cc; ++d) {
          if (p.irreps.pair_irrep(cc, d) != hab) continue;
          c.add(aa, bb, cc, d, blas::dot(n, o3buf.row(cc), b.row(d)));
          local.flops += 2.0 * static_cast<double>(n);
        }
    }
    mem.release(2 * n * n);
  }
  o2.reset();
  mem.release(np * np);

  local.integral_evals = p.engine.evaluations();
  local.peak_words = mem.peak();
  local.wall_seconds = timer.seconds();
  if (stats) *stats = local;
  return c;
}

tensor::PackedC recompute_transform(const Problem& p, SeqStats* stats) {
  const std::size_t n = p.n();
  const std::size_t np = npairs(n);
  const Matrix& b = p.b;
  WallTimer timer;
  MemMeter mem;
  SeqStats local;

  const auto sizes = p.sizes();
  mem.alloc(sizes.c);
  PackedC c(n, p.irreps);

  // Faithful to Listing 3: the O1 slice is recomputed for every output
  // pair (a >= b) — O(n^6) arithmetic, O(n^3) memory, and redundant
  // integral recomputation. This is the memory-minimal NWChem variant.
  mem.alloc(n * np + np + 2 * n);  // O1 slice, O2 slice, O3 row + scratch
  Matrix o1buf(n, np);             // o1buf[j, kl] for the current a
  std::vector<double> o2buf(np);   // o2buf[kl] for the current (a, b)
  std::vector<double> o3row(n);    // o3row[l] for the current c

  for (std::size_t pab = 0; pab < np; ++pab) {
    const auto [aa, bb] = unpack_pair(pab);
    const auto hab = p.irreps.pair_irrep(aa, bb);

    // O1_buf[j, kl] = sum_i A(i, j, k, l) B[aa, i]   (recomputed!)
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t pkl = 0; pkl < np; ++pkl) {
        const auto [k, l] = unpack_pair(pkl);
        double acc = 0.0;
        for (std::size_t i = 0; i < n; ++i)
          acc += p.engine.value(i, j, k, l) * b(aa, i);
        o1buf(j, pkl) = acc;
        local.flops += 2.0 * static_cast<double>(n);
      }

    // O2_buf[kl] = sum_j O1_buf[j, kl] B[bb, j]
    std::fill(o2buf.begin(), o2buf.end(), 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      blas::axpy(np, b(bb, j), o1buf.row(j), o2buf.data());
      local.flops += 2.0 * static_cast<double>(np);
    }

    // O3_row[l] = sum_k O2_buf[(kl)] B[cc, k]; then contract with B[d]
    for (std::size_t cc = 0; cc < n; ++cc) {
      for (std::size_t l = 0; l < n; ++l) {
        double acc = 0.0;
        for (std::size_t k = 0; k < n; ++k)
          acc += o2buf[pack_pair_sym(k, l)] * b(cc, k);
        o3row[l] = acc;
        local.flops += 2.0 * static_cast<double>(n);
      }
      for (std::size_t d = 0; d <= cc; ++d) {
        if (p.irreps.pair_irrep(cc, d) != hab) continue;
        c.add(aa, bb, cc, d, blas::dot(n, o3row.data(), b.row(d)));
        local.flops += 2.0 * static_cast<double>(n);
      }
    }
  }
  mem.release(n * np + np + 2 * n);

  local.integral_evals = p.engine.evaluations();
  local.peak_words = mem.peak();
  local.wall_seconds = timer.seconds();
  if (stats) *stats = local;
  return c;
}

tensor::PackedC fused1234_transform(const Problem& p, SeqStats* stats) {
  const std::size_t n = p.n();
  const std::size_t np = npairs(n);
  const Matrix& b = p.b;
  WallTimer timer;
  MemMeter mem;
  SeqStats local;

  const auto sizes = p.sizes();
  mem.alloc(sizes.c);
  PackedC c(n, p.irreps);

  // Per-l working set: A slice (packed (ij) x k), O1 slice [k][a][j],
  // O2 slice [ab][k], O3 slice [ab][c] — all O(n^3), discarded between
  // iterations of l (no two iterations share intermediates).
  mem.alloc(np * n + n * n * n + np * n + np * n);
  Matrix al(np, n);                     // al[(ij), k] = A(i,j,k,l)
  std::vector<double> o1(n * n * n);    // o1[(k*n + a)*n + j]
  Matrix o2(np, n);                     // o2[(ab), k]
  Matrix o3(np, n);                     // o3[(ab), c]
  Matrix aklfull(n, n);                 // unpacked A slice for fixed k, l

  for (std::size_t l = 0; l < n; ++l) {
    // Produce the A slice on the fly. The (k, l) symmetry is broken:
    // across the whole run each unique integral with k != l is
    // produced twice, the acknowledged ~1.5x compute overhead of the
    // fully fused schedule (paper Sec. 7.4).
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j <= i; ++j) {
        double* row = al.row(pack_pair(i, j));
        for (std::size_t k = 0; k < n; ++k)
          row[k] = p.engine.value(i, j, k, l);
      }

    // c1: O1_l[a, j, k] = sum_i A_l[(ij), k] B[a, i]
    for (std::size_t k = 0; k < n; ++k) {
      for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j <= i; ++j) {
          const double v = al(pack_pair(i, j), k);
          aklfull(i, j) = v;
          aklfull(j, i) = v;
        }
      blas::gemm(blas::Trans::No, blas::Trans::No, n, n, n, 1.0, b.data(), n,
                 aklfull.data(), n, 0.0, o1.data() + k * n * n, n);
      local.flops += blas::gemm_flops(n, n, n);
    }

    // c2: O2_l[(ab), k] = sum_j O1_l[a, j, k] B[b, j]
    for (std::size_t k = 0; k < n; ++k) {
      const double* o1k = o1.data() + k * n * n;
      for (std::size_t aa = 0; aa < n; ++aa)
        for (std::size_t bb = 0; bb <= aa; ++bb) {
          o2(pack_pair(aa, bb), k) = blas::dot(n, o1k + aa * n, b.row(bb));
          local.flops += 2.0 * static_cast<double>(n);
        }
    }

    // c3: O3_l[(ab), c] = sum_k O2_l[(ab), k] B[c, k]
    blas::gemm(blas::Trans::No, blas::Trans::Yes, np, n, n, 1.0, o2.data(),
               n, b.data(), n, 0.0, o3.data(), n);
    local.flops += blas::gemm_flops(np, n, n);

    // c4: C[ab, cd] += O3_l[(ab), c] B[d, l]
    for (std::size_t pab = 0; pab < np; ++pab) {
      const auto [aa, bb] = unpack_pair(pab);
      const auto hab = p.irreps.pair_irrep(aa, bb);
      const double* o3row = o3.row(pab);
      for (std::size_t cc = 0; cc < n; ++cc)
        for (std::size_t d = 0; d <= cc; ++d) {
          if (p.irreps.pair_irrep(cc, d) != hab) continue;
          c.add(aa, bb, cc, d, o3row[cc] * b(d, l));
          local.flops += 2.0;
        }
    }
  }
  mem.release(np * n + n * n * n + np * n + np * n);

  local.integral_evals = p.engine.evaluations();
  local.peak_words = mem.peak();
  local.wall_seconds = timer.seconds();
  if (stats) *stats = local;
  return c;
}

}  // namespace fit::core
