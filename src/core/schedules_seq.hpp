// Sequential (single address space) four-index transform schedules —
// direct implementations of the paper's implementation variants:
//
//   reference_direct_o8   Eq. 1 evaluated literally, O(n^8). Tiny-n
//                         oracle for the oracle.
//   reference_transform   Dense (symmetry-free) four-step transform,
//                         O(n^5). The correctness oracle for everything
//                         else.
//   unfused_transform     Listing 1: materialize O1..O3 fully packed.
//                         Fewest flops (~1.5 n^5 multiply-adds), peak
//                         memory ~3n^4/4.
//   fused12_34_transform  Listing 2 / Listing 9 (op12/34): fuse the
//                         first two and the last two contractions.
//                         Same flops, peak memory ~n^4/2.
//   recompute_transform   Listing 3: per output pair-block, recompute
//                         the O1 slice. Peak memory ~n^3/2 at O(n^6)
//                         flops.
//   fused1234_transform   Listing 7 (op1234): fuse the l loop across
//                         all four contractions; peak memory
//                         |C| + O(n^3) at ~1.5x the unfused flops
//                         (k/l symmetry is broken).
//
// Every schedule returns the same PackedC (verified against the
// reference by the test suite) and reports SeqStats.
#pragma once

#include "core/problem.hpp"
#include "core/seq_stats.hpp"
#include "tensor/packed.hpp"
#include "tensor/tensor4.hpp"

/// \file
/// \brief Sequential four-index transform schedules (Listings 1-3, 7,
/// 9) and their correctness oracles.

namespace fit::core {

/// O(n^8) literal evaluation of Eq. 1. Use only for n <= ~10.
tensor::PackedC reference_direct_o8(const Problem& p);

/// Dense O(n^5) four-step transform with no symmetry exploitation,
/// returning the full (unpacked) result tensor.
tensor::Tensor4 reference_dense(const Problem& p);

/// Dense O(n^5) four-step transform packed into the symmetric result
/// container — the correctness oracle for every other schedule.
tensor::PackedC reference_transform(const Problem& p);

/// Listing 1: materialize O1..O3 fully packed. Fewest flops, peak
/// memory ~3n^4/4.
tensor::PackedC unfused_transform(const Problem& p, SeqStats* stats = nullptr);

/// Listing 2 / Listing 9 (op12/34): fuse the first two and the last
/// two contractions. `materialize_a` keeps the paper's Listing 2 shape
/// (A fully resident) when true; generates the A slice per (k,l) on
/// the fly when false (the inner-transform variant used by
/// Listing 10).
tensor::PackedC fused12_34_transform(const Problem& p,
                                     SeqStats* stats = nullptr,
                                     bool materialize_a = true);

/// Listing 3: per output pair-block, recompute the O1 slice from the
/// integral source. Peak memory ~n^3/2 at O(n^6) flops.
tensor::PackedC recompute_transform(const Problem& p,
                                    SeqStats* stats = nullptr);

/// Listing 7 (op1234): fuse the l loop across all four contractions;
/// peak memory |C| + O(n^3) at ~1.5x the unfused flops.
tensor::PackedC fused1234_transform(const Problem& p,
                                    SeqStats* stats = nullptr);

}  // namespace fit::core
