// Execution statistics for the sequential (single-address-space)
// schedules: flop counts, integral evaluations, and peak simultaneous
// memory in tensor words — the quantities the paper's Listings 1-3 and
// 7 annotate in their comments.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>

#include "obs/metrics.hpp"

namespace fit::core {

struct SeqStats {
  double flops = 0;                 // 2 per multiply-add
  std::uint64_t integral_evals = 0; // ComputeA calls
  std::size_t peak_words = 0;       // max simultaneously live tensor words
  double wall_seconds = 0;

  /// Register these counters under "<prefix>.flops" / ".integral_evals"
  /// (counters, rank 0) and "<prefix>.peak_words" / ".wall_seconds"
  /// (gauges) — the sequential schedules' view into the shared
  /// observability registry.
  void publish(obs::MetricsRegistry& registry,
               const std::string& prefix) const {
    registry.add(registry.counter(prefix + ".flops"), 0, flops);
    registry.add(registry.counter(prefix + ".integral_evals"), 0,
                 static_cast<double>(integral_evals));
    registry.set(registry.gauge(prefix + ".peak_words"), 0,
                 static_cast<double>(peak_words));
    registry.set(registry.gauge(prefix + ".wall_seconds"), 0,
                 wall_seconds);
  }
};

/// Tracks current/peak live tensor words. Schedules charge/release
/// around each allocation so peak_words reproduces the listings'
/// "Memory required" annotations.
class MemMeter {
 public:
  void alloc(std::size_t words) {
    current_ += words;
    peak_ = std::max(peak_, current_);
  }
  void release(std::size_t words) { current_ -= words; }

  std::size_t current() const { return current_; }
  std::size_t peak() const { return peak_; }

 private:
  std::size_t current_ = 0;
  std::size_t peak_ = 0;
};

}  // namespace fit::core
