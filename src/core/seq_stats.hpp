// Execution statistics for the sequential (single-address-space)
// schedules: flop counts, integral evaluations, and peak simultaneous
// memory in tensor words — the quantities the paper's Listings 1-3 and
// 7 annotate in their comments.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>

#include "obs/metrics.hpp"

/// \file
/// \brief Execution statistics (flops, integral evaluations, peak
/// words) for the sequential schedules.

namespace fit::core {

/// What a sequential schedule did: the quantities the paper's listings
/// annotate in their comments.
struct SeqStats {
  /// Floating-point operations (2 per multiply-add).
  double flops = 0;
  /// ComputeA calls (on-the-fly integral evaluations).
  std::uint64_t integral_evals = 0;
  /// Max simultaneously live tensor words.
  std::size_t peak_words = 0;
  /// Host time spent executing the schedule.
  double wall_seconds = 0;

  /// Register these counters under "<prefix>.flops" / ".integral_evals"
  /// (counters, rank 0) and "<prefix>.peak_words" / ".wall_seconds"
  /// (gauges) — the sequential schedules' view into the shared
  /// observability registry.
  void publish(obs::MetricsRegistry& registry,
               const std::string& prefix) const {
    registry.add(registry.counter(prefix + ".flops"), 0, flops);
    registry.add(registry.counter(prefix + ".integral_evals"), 0,
                 static_cast<double>(integral_evals));
    registry.set(registry.gauge(prefix + ".peak_words"), 0,
                 static_cast<double>(peak_words));
    registry.set(registry.gauge(prefix + ".wall_seconds"), 0,
                 wall_seconds);
  }
};

/// Tracks current/peak live tensor words. Schedules charge/release
/// around each allocation so peak_words reproduces the listings'
/// "Memory required" annotations.
class MemMeter {
 public:
  /// Charge `words` live words; updates the peak.
  void alloc(std::size_t words) {
    current_ += words;
    peak_ = std::max(peak_, current_);
  }
  /// Release `words` previously charged with alloc.
  void release(std::size_t words) { current_ -= words; }

  /// Currently live words.
  std::size_t current() const { return current_; }
  /// High-water mark of live words.
  std::size_t peak() const { return peak_; }

 private:
  std::size_t current_ = 0;
  std::size_t peak_ = 0;
};

}  // namespace fit::core
