#include "core/sym_tile.hpp"

#include <algorithm>

namespace fit::core {

void transpose4(const double* in, double* out, const std::size_t len[4],
                int d0, int d1) {
  std::size_t olen[4] = {len[0], len[1], len[2], len[3]};
  std::swap(olen[d0], olen[d1]);
  std::size_t c[4];
  for (c[0] = 0; c[0] < len[0]; ++c[0])
    for (c[1] = 0; c[1] < len[1]; ++c[1])
      for (c[2] = 0; c[2] < len[2]; ++c[2])
        for (c[3] = 0; c[3] < len[3]; ++c[3]) {
          std::size_t oc[4] = {c[0], c[1], c[2], c[3]};
          std::swap(oc[d0], oc[d1]);
          out[((oc[0] * olen[1] + oc[1]) * olen[2] + oc[2]) * olen[3] +
              oc[3]] =
              in[((c[0] * len[1] + c[1]) * len[2] + c[2]) * len[3] + c[3]];
        }
}

void get_sym_tile(const ga::GlobalArray& arr, runtime::RankCtx& ctx,
                  ga::TileCoord coord, int d0, int d1, double* buf,
                  double* scratch) {
  if (coord[d0] >= coord[d1]) {
    arr.get(ctx, coord, buf);
    return;
  }
  ga::TileCoord mirrored = coord;
  std::swap(mirrored[d0], mirrored[d1]);
  arr.get(ctx, mirrored, scratch);
  if (ctx.real()) {
    const auto& info = arr.info(mirrored);
    std::size_t len[4] = {info.len[0], info.len[1], info.len[2],
                          info.len[3]};
    transpose4(scratch, buf, len, d0, d1);
  }
}

SymFetch nbget_sym_tile(const ga::GlobalArray& arr, runtime::RankCtx& ctx,
                        ga::TileCoord coord, int d0, int d1, double* buf,
                        double* scratch) {
  SymFetch f;
  f.d0 = d0;
  f.d1 = d1;
  f.buf = buf;
  f.scratch = scratch;
  if (coord[d0] >= coord[d1]) {
    f.handle = arr.nbget(ctx, coord, buf);
    return f;
  }
  ga::TileCoord mirrored = coord;
  std::swap(mirrored[d0], mirrored[d1]);
  f.mirrored = true;
  const auto& info = arr.info(mirrored);
  for (int d = 0; d < 4; ++d) f.len[d] = info.len[d];
  f.handle = arr.nbget(ctx, mirrored, scratch);
  return f;
}

void finish_sym_tile(runtime::RankCtx& ctx, const SymFetch& fetch) {
  ctx.wait_transfer(fetch.handle);
  if (fetch.mirrored && ctx.real())
    transpose4(fetch.scratch, fetch.buf, fetch.len, fetch.d0, fetch.d1);
}

}  // namespace fit::core
