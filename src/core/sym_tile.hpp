// Symmetric-pair tile fetches over triangular GA storage.
//
// Arrays whose dims (d0,d1) form a symmetric index pair store only the
// unique tiles (tile[d0] >= tile[d1]). A logical tile below the
// diagonal is materialized by fetching the mirrored stored tile and
// transposing dims d0/d1 locally. get_sym_tile is the blocking form
// the schedules have always used; nbget_sym_tile/finish_sym_tile split
// it around a nonblocking GA get so the wire time can overlap compute
// (the transpose runs at finish, after the data has "arrived").
#pragma once

#include <cstddef>

#include "ga/global_array.hpp"
#include "runtime/cluster.hpp"

/// \file
/// \brief Symmetric-pair tile fetches (blocking and nonblocking) over
/// triangular GA storage.

namespace fit::core {

/// Transpose two dimensions of a dense row-major 4-D tile. `len` gives
/// the input extents; output extents have d0/d1 swapped.
void transpose4(const double* in, double* out, const std::size_t len[4],
                int d0, int d1);

/// Fetch tile (c0,c1,rest...) of an array whose dims (d0,d1) form a
/// triangular-stored symmetric pair: when c[d0] < c[d1] the mirrored
/// tile is fetched and transposed. `buf` receives the tile in the
/// requested orientation; `scratch` must be at least as large.
void get_sym_tile(const ga::GlobalArray& arr, runtime::RankCtx& ctx,
                  ga::TileCoord coord, int d0, int d1, double* buf,
                  double* scratch);

/// An in-flight symmetric-tile fetch started by nbget_sym_tile. The
/// `buf`/`scratch` pointers it was issued with must stay valid (and
/// untouched) until finish_sym_tile runs.
struct SymFetch {
  /// Handle of the underlying nonblocking GA get.
  ga::GlobalArray::NbHandle handle;
  /// True when the data landed transposed in `scratch`.
  bool mirrored = false;
  /// Stored-tile extents.
  std::size_t len[4] = {0, 0, 0, 0};
  /// First dimension of the symmetric pair.
  int d0 = 0;
  /// Second dimension of the symmetric pair.
  int d1 = 0;
  /// Destination buffer (requested orientation).
  double* buf = nullptr;
  /// Landing buffer for mirrored fetches.
  double* scratch = nullptr;
};

/// Nonblocking get_sym_tile: issues the GA nbget (into `buf` directly
/// for stored tiles, into `scratch` for mirrored ones) and returns the
/// in-flight fetch descriptor.
SymFetch nbget_sym_tile(const ga::GlobalArray& arr, runtime::RankCtx& ctx,
                        ga::TileCoord coord, int d0, int d1, double* buf,
                        double* scratch);

/// Complete a SymFetch: wait for the transfer and, for mirrored tiles,
/// transpose scratch into buf. After this `buf` holds exactly what
/// get_sym_tile would have produced. Idempotent like wait_transfer.
void finish_sym_tile(runtime::RankCtx& ctx, const SymFetch& fetch);

}  // namespace fit::core
