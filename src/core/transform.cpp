#include "core/transform.hpp"

#include "util/error.hpp"

namespace fit::core {

std::string to_string(Schedule s) {
  switch (s) {
    case Schedule::Reference: return "reference";
    case Schedule::Unfused: return "unfused";
    case Schedule::Fused12_34: return "fused12/34";
    case Schedule::Recompute: return "recompute";
    case Schedule::Fused1234: return "fused1234";
    case Schedule::ParUnfused: return "par-unfused";
    case Schedule::ParFused: return "par-fused";
    case Schedule::ParFusedInner: return "par-fused-inner";
    case Schedule::Hybrid: return "hybrid";
    case Schedule::Resilient: return "resilient";
  }
  return "?";
}

TransformOutcome four_index_transform(const Problem& p,
                                      const TransformOptions& opt,
                                      runtime::Cluster* cluster) {
  TransformOutcome out;
  switch (opt.schedule) {
    case Schedule::Reference:
      out.c = reference_transform(p);
      return out;
    case Schedule::Unfused:
      out.c = unfused_transform(p, &out.seq);
      return out;
    case Schedule::Fused12_34:
      out.c = fused12_34_transform(p, &out.seq);
      return out;
    case Schedule::Recompute:
      out.c = recompute_transform(p, &out.seq);
      return out;
    case Schedule::Fused1234:
      out.c = fused1234_transform(p, &out.seq);
      return out;
    default:
      break;
  }
  FIT_REQUIRE(cluster != nullptr,
              "distributed schedule " << to_string(opt.schedule)
                                      << " requires a cluster");
  out.distributed = true;
  ParResult r;
  switch (opt.schedule) {
    case Schedule::ParUnfused:
      r = unfused_par_transform(p, *cluster, opt.par);
      break;
    case Schedule::ParFused:
      r = fused_par_transform(p, *cluster, opt.par);
      break;
    case Schedule::ParFusedInner:
      r = fused_inner_par_transform(p, *cluster, opt.par);
      break;
    case Schedule::Hybrid:
      r = hybrid_transform(p, *cluster, opt.par);
      break;
    case Schedule::Resilient:
      r = resilient_transform(p, *cluster, opt.par);
      break;
    default:
      FIT_CHECK(false, "unreachable schedule dispatch");
  }
  out.c = std::move(r.c);
  out.par = std::move(r.stats);
  return out;
}

}  // namespace fit::core
