// Public facade of the fourindex library.
//
// One call — four_index_transform() — runs any of the paper's
// schedules, sequential or distributed, and returns the transformed
// tensor together with uniform execution statistics. See README.md
// for a tour and examples/ for runnable programs.
#pragma once

#include <optional>
#include <string>

#include "core/problem.hpp"
#include "core/schedules_par.hpp"
#include "core/schedules_seq.hpp"
#include "runtime/cluster.hpp"

/// \file
/// \brief Public facade: one entry point over every schedule in the
/// library.

namespace fit::core {

/// Every schedule the facade can run.
enum class Schedule {
  Reference,     ///< dense O(n^5), no symmetry — correctness oracle
  Unfused,       ///< Listing 1
  Fused12_34,    ///< Listing 2 (op12/34)
  Recompute,     ///< Listing 3
  Fused1234,     ///< Listing 7 (op1234)
  ParUnfused,    ///< Listing 4 x4, distributed
  ParFused,      ///< Listing 8, distributed
  ParFusedInner, ///< Listing 10, distributed
  Hybrid,        ///< Sec. 7.4 fuse/unfuse hybrid, distributed
  Resilient,     ///< hybrid + fault recovery and bound-guided degradation
};

/// Printable name of a schedule.
std::string to_string(Schedule s);

/// Facade options: which schedule, and the distributed knobs.
struct TransformOptions {
  /// Schedule to run.
  Schedule schedule = Schedule::Hybrid;
  /// Options used by the distributed schedules.
  ParOptions par;
};

/// Uniform result of four_index_transform.
struct TransformOutcome {
  /// The transformed tensor (absent for Simulate-mode runs).
  std::optional<tensor::PackedC> c;
  /// Populated by sequential schedules.
  SeqStats seq;
  /// Populated by distributed schedules.
  ParStats par;
  /// True when a distributed schedule ran.
  bool distributed = false;
};

/// Run the transform. Distributed schedules require `cluster`;
/// sequential ones ignore it. Throws OutOfMemoryError when a
/// distributed schedule does not fit the cluster (the paper's
/// "Failed" outcome).
TransformOutcome four_index_transform(const Problem& p,
                                      const TransformOptions& opt = {},
                                      runtime::Cluster* cluster = nullptr);

}  // namespace fit::core
