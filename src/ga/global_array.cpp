#include "ga/global_array.hpp"

#include <algorithm>
#include <memory>
#include <numeric>

#include "util/format.hpp"
#include "util/logging.hpp"

namespace fit::ga {

using runtime::RankCtx;

GlobalArray::GlobalArray(runtime::Cluster& cluster, std::string name,
                         std::vector<tensor::Tiling> dims, TileFilter filter,
                         OwnerFn owner)
    : cluster_(cluster), name_(std::move(name)), dims_(std::move(dims)) {
  FIT_REQUIRE(!dims_.empty(), "global array needs at least one dimension");

  // Enumerate the full tile grid; keep tiles passing the filter.
  std::size_t grid = 1;
  for (const auto& t : dims_) grid *= t.ntiles();
  grid_index_.assign(grid, 0);

  TileCoord coord(dims_.size(), 0);
  for (std::size_t lin = 0; lin < grid; ++lin) {
    // Decode linear id (row-major over tile grid).
    std::size_t rem = lin;
    for (std::size_t d = dims_.size(); d-- > 0;) {
      coord[d] = rem % dims_[d].ntiles();
      rem /= dims_[d].ntiles();
    }
    if (filter && !filter(coord)) continue;
    grid_index_[lin] = tiles_.size() + 1;
    Tile& t = tiles_.emplace_back();
    t.info.coord = coord;
    t.info.linear = lin;
    t.info.elements = 1;
    for (std::size_t d = 0; d < dims_.size(); ++d) {
      t.info.lo.push_back(dims_[d].lo(coord[d]));
      t.info.len.push_back(dims_[d].len(coord[d]));
      t.info.elements *= dims_[d].len(coord[d]);
    }
  }

  // Assign owners and charge memory.
  const std::size_t nranks = cluster_.n_ranks();
  by_owner_.assign(nranks, {});
  for (std::size_t i = 0; i < tiles_.size(); ++i) {
    auto& t = tiles_[i];
    const std::size_t nominal =
        owner ? owner(t.info.coord, nranks) : i % nranks;
    FIT_REQUIRE(nominal < nranks, "owner function out of range");
    // Arrays created after a rank death land on the survivors.
    t.info.owner = cluster_.live_owner(nominal);
    by_owner_[t.info.owner].push_back(i);
    total_elements_ += t.info.elements;
  }
  // Collective allocation: may throw OutOfMemoryError. Roll back the
  // charges made so far if a later rank share does not fit, so the
  // caller can recover (the hybrid planner relies on this). When the
  // machine configures a file system, tiles that do not fit spill to
  // disk instead (every access then pays the disk bandwidth).
  const bool can_spill = cluster_.machine().disk_bandwidth_bps > 0;
  std::size_t charged = 0;
  try {
    for (; charged < tiles_.size(); ++charged) {
      auto& t = tiles_[charged];
      const double bytes = 8.0 * double(t.info.elements);
      if (can_spill) {
        if (!cluster_.memory(t.info.owner).try_alloc(bytes)) {
          t.spilled = true;
          ++n_spilled_;
          cluster_.note_spill(bytes);
        }
      } else {
        cluster_.memory(t.info.owner).alloc(bytes, name_.c_str());
      }
    }
  } catch (...) {
    if (charged < tiles_.size())
      cluster_.note_instant("oom: GA '" + name_ + "'",
                            tiles_[charged].info.owner);
    for (std::size_t i = 0; i < charged; ++i)
      cluster_.memory(tiles_[i].info.owner)
          .release(8.0 * double(tiles_[i].info.elements));
    throw;
  }
  if (n_spilled_ > 0)
    cluster_.note_instant("spill: GA '" + name_ + "' (" +
                              std::to_string(n_spilled_) + " tiles)",
                          0);
  if (cluster_.mode() == runtime::ExecutionMode::Real)
    for (auto& t : tiles_) t.data.assign(t.info.elements, 0.0);
  cluster_.register_array(this);
  cluster_.note_global_usage();
  FIT_LOG_DEBUG("GA_Create '" << name_ << "': " << tiles_.size()
                << " tiles, " << human_bytes(total_bytes())
                << (n_spilled_ ? (", " + std::to_string(n_spilled_) +
                                  " spilled to disk")
                               : std::string()));
}

GlobalArray::~GlobalArray() {
  try {
    destroy();
  } catch (...) {
    // Destructors must not throw; accounting errors here would be
    // internal bugs already reported elsewhere.
  }
}

void GlobalArray::destroy() {
  if (destroyed_) return;
  destroyed_ = true;
  cluster_.unregister_array(this);
  for (auto& t : tiles_) {
    const double bytes = 8.0 * double(t.info.elements);
    if (t.spilled)
      cluster_.note_unspill(bytes);
    else
      cluster_.memory(t.info.owner).release(bytes);
    t.data.clear();
    t.data.shrink_to_fit();
  }
}

std::size_t GlobalArray::index_of(std::span<const std::size_t> coord) const {
  FIT_REQUIRE(coord.size() == dims_.size(), "tile coord rank mismatch");
  std::size_t lin = 0;
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    FIT_REQUIRE(coord[d] < dims_[d].ntiles(),
                name_ << ": tile coord out of grid in dim " << d);
    lin = lin * dims_[d].ntiles() + coord[d];
  }
  const std::size_t idx = grid_index_[lin];
  FIT_REQUIRE(idx != 0, name_ << ": tile does not exist (filtered out)");
  return idx - 1;
}

bool GlobalArray::is_spilled(std::span<const std::size_t> coord) const {
  return tile_at(coord).spilled;
}

bool GlobalArray::exists(std::span<const std::size_t> coord) const {
  FIT_REQUIRE(coord.size() == dims_.size(), "tile coord rank mismatch");
  std::size_t lin = 0;
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    if (coord[d] >= dims_[d].ntiles()) return false;
    lin = lin * dims_[d].ntiles() + coord[d];
  }
  return grid_index_[lin] != 0;
}

const TileInfo& GlobalArray::info(std::span<const std::size_t> coord) const {
  return tiles_[index_of(coord)].info;
}

GlobalArray::Tile& GlobalArray::tile_at(std::span<const std::size_t> coord) {
  return tiles_[index_of(coord)];
}
const GlobalArray::Tile& GlobalArray::tile_at(
    std::span<const std::size_t> coord) const {
  return tiles_[index_of(coord)];
}

void GlobalArray::get(RankCtx& ctx, std::span<const std::size_t> coord,
                      double* buf) const {
  FIT_REQUIRE(!destroyed_, name_ << ": get after destroy");
  ctx.fault_point("get");
  ctx.count_ga_get();
  const Tile& t = tile_at(coord);
  FIT_CHECK(t.write_epoch.load(std::memory_order_acquire) <
                cluster_.epoch(),
            name_ << ": get of a tile written in the current epoch — "
                     "missing GA_Sync before the read");
  if (t.spilled)
    ctx.charge_disk(8.0 * double(t.info.elements));
  else
    ctx.charge_transfer(t.info.owner, 8.0 * double(t.info.elements));
  if (ctx.real()) {
    FIT_REQUIRE(buf != nullptr, "null buffer in Real mode");
    std::copy(t.data.begin(), t.data.end(), buf);
  }
}

void GlobalArray::put(RankCtx& ctx, std::span<const std::size_t> coord,
                      const double* buf) {
  FIT_REQUIRE(!destroyed_, name_ << ": put after destroy");
  ctx.fault_point("put");
  ctx.count_ga_put();
  Tile& t = tile_at(coord);
  if (t.spilled)
    ctx.charge_disk(8.0 * double(t.info.elements));
  else
    ctx.charge_transfer(t.info.owner, 8.0 * double(t.info.elements));
  t.write_epoch.store(cluster_.epoch(), std::memory_order_release);
  if (ctx.real()) {
    FIT_REQUIRE(buf != nullptr, "null buffer in Real mode");
    std::copy(buf, buf + t.info.elements, t.data.begin());
  }
}

void GlobalArray::acc(RankCtx& ctx, std::span<const std::size_t> coord,
                      const double* buf) {
  FIT_REQUIRE(!destroyed_, name_ << ": acc after destroy");
  ctx.fault_point("acc");
  ctx.count_ga_acc();
  Tile& t = tile_at(coord);
  if (t.spilled)
    ctx.charge_disk(8.0 * double(t.info.elements));
  else
    ctx.charge_transfer(t.info.owner, 8.0 * double(t.info.elements));
  t.write_epoch.store(cluster_.epoch(), std::memory_order_release);
  if (ctx.real()) {
    FIT_REQUIRE(buf != nullptr, "null buffer in Real mode");
    std::lock_guard<std::mutex> lock(acc_mutex_);
    for (std::size_t i = 0; i < t.info.elements; ++i) t.data[i] += buf[i];
  }
}

GlobalArray::NbHandle GlobalArray::nbget(RankCtx& ctx,
                                         std::span<const std::size_t> coord,
                                         double* buf) const {
  FIT_REQUIRE(!destroyed_, name_ << ": nbget after destroy");
  ctx.fault_point("nbget");
  ctx.count_ga_get();
  const Tile& t = tile_at(coord);
  FIT_CHECK(t.write_epoch.load(std::memory_order_acquire) <
                cluster_.epoch(),
            name_ << ": nbget of a tile written in the current epoch — "
                     "missing GA_Sync before the read");
  const double bytes = 8.0 * double(t.info.elements);
  const NbHandle h =
      t.spilled ? ctx.begin_disk_transfer(bytes, runtime::NbKind::Get)
                : ctx.begin_transfer(t.info.owner, bytes,
                                     runtime::NbKind::Get);
  if (ctx.real()) {
    FIT_REQUIRE(buf != nullptr, "null buffer in Real mode");
    std::copy(t.data.begin(), t.data.end(), buf);
  }
  return h;
}

GlobalArray::NbHandle GlobalArray::nbput(RankCtx& ctx,
                                         std::span<const std::size_t> coord,
                                         const double* buf) {
  FIT_REQUIRE(!destroyed_, name_ << ": nbput after destroy");
  ctx.fault_point("nbput");
  ctx.count_ga_put();
  Tile& t = tile_at(coord);
  const double bytes = 8.0 * double(t.info.elements);
  const NbHandle h =
      t.spilled ? ctx.begin_disk_transfer(bytes, runtime::NbKind::Put)
                : ctx.begin_transfer(t.info.owner, bytes,
                                     runtime::NbKind::Put);
  t.write_epoch.store(cluster_.epoch(), std::memory_order_release);
  if (ctx.real()) {
    FIT_REQUIRE(buf != nullptr, "null buffer in Real mode");
    std::copy(buf, buf + t.info.elements, t.data.begin());
  }
  return h;
}

GlobalArray::NbHandle GlobalArray::nbacc(RankCtx& ctx,
                                         std::span<const std::size_t> coord,
                                         const double* buf) {
  FIT_REQUIRE(!destroyed_, name_ << ": nbacc after destroy");
  ctx.fault_point("nbacc");
  ctx.count_ga_acc();
  Tile& t = tile_at(coord);
  const double bytes = 8.0 * double(t.info.elements);
  const NbHandle h =
      t.spilled ? ctx.begin_disk_transfer(bytes, runtime::NbKind::Acc)
                : ctx.begin_transfer(t.info.owner, bytes,
                                     runtime::NbKind::Acc);
  t.write_epoch.store(cluster_.epoch(), std::memory_order_release);
  if (ctx.real()) {
    FIT_REQUIRE(buf != nullptr, "null buffer in Real mode");
    std::lock_guard<std::mutex> lock(acc_mutex_);
    for (std::size_t i = 0; i < t.info.elements; ++i) t.data[i] += buf[i];
  }
  return h;
}

double GlobalArray::peek(std::span<const std::size_t> element) const {
  FIT_REQUIRE(cluster_.mode() == runtime::ExecutionMode::Real,
              "peek only in Real mode");
  FIT_REQUIRE(element.size() == dims_.size(), "element coord rank mismatch");
  TileCoord coord(dims_.size());
  for (std::size_t d = 0; d < dims_.size(); ++d)
    coord[d] = dims_[d].tile_of(element[d]);
  const Tile& t = tile_at(coord);
  std::size_t off = 0;
  for (std::size_t d = 0; d < dims_.size(); ++d)
    off = off * t.info.len[d] + (element[d] - t.info.lo[d]);
  return t.data[off];
}

void GlobalArray::restore_tile(std::size_t idx,
                               const std::vector<double>& data,
                               std::uint64_t epoch) {
  FIT_REQUIRE(idx < tiles_.size(), name_ << ": restore of bad tile index");
  Tile& t = tiles_[idx];
  if (cluster_.mode() == runtime::ExecutionMode::Real) {
    if (data.empty()) {
      std::fill(t.data.begin(), t.data.end(), 0.0);
    } else {
      FIT_CHECK(data.size() == t.info.elements,
                name_ << ": checkpoint tile size mismatch");
      std::copy(data.begin(), data.end(), t.data.begin());
    }
  }
  t.write_epoch.store(epoch, std::memory_order_release);
}

std::vector<std::size_t> GlobalArray::reassign_owners(
    std::span<const std::size_t> dead, std::span<const std::size_t> targets) {
  FIT_REQUIRE(!targets.empty(), "no surviving ranks to re-own tiles");
  const bool can_spill = cluster_.machine().disk_bandwidth_bps > 0;
  // Capacity-aware placement: the target with the most free tracked
  // memory *right now* takes the next tile (ties to the lowest rank).
  // Free space is re-read after every placement, so a large orphaned
  // working set spreads across the survivors instead of round-robining
  // onto whichever happens to come first and OOMing it.
  auto best_target = [&]() {
    std::size_t best = targets[0];
    double best_free = cluster_.memory(best).capacity() -
                       cluster_.memory(best).used();
    for (std::size_t i = 1; i < targets.size(); ++i) {
      const std::size_t r = targets[i];
      const double free =
          cluster_.memory(r).capacity() - cluster_.memory(r).used();
      if (free > best_free) {
        best = r;
        best_free = free;
      }
    }
    return best;
  };
  std::vector<std::size_t> moved;
  for (std::size_t d : dead) {
    FIT_REQUIRE(d < by_owner_.size(), "rank out of range");
    for (std::size_t idx : by_owner_[d]) {
      Tile& t = tiles_[idx];
      const std::size_t target = best_target();
      if (t.spilled) {
        // Bytes live on the shared file system; only the nominal owner
        // (used for locality decisions) changes.
        t.info.owner = target;
        by_owner_[target].push_back(idx);
        continue;
      }
      const double bytes = 8.0 * double(t.info.elements);
      cluster_.memory(d).release(bytes);
      if (cluster_.memory(target).try_alloc(bytes)) {
        t.info.owner = target;
      } else if (can_spill) {
        t.info.owner = target;
        t.spilled = true;
        ++n_spilled_;
        cluster_.note_spill(bytes);
      } else {
        // No headroom anywhere: surface as the usual OOM so the
        // caller's degradation path (replan against the shrunken S)
        // can engage.
        cluster_.memory(target).alloc(bytes, name_.c_str());
      }
      by_owner_[target].push_back(idx);
      moved.push_back(idx);
    }
    by_owner_[d].clear();
  }
  cluster_.note_global_usage();
  return moved;
}

std::vector<std::size_t> GlobalArray::reassign_owner(
    std::size_t dead, std::span<const std::size_t> targets) {
  const std::size_t ranks[1] = {dead};
  return reassign_owners(ranks, targets);
}

OwnerFn owner_cyclic() {
  // The default distribution is already cyclic over existing tiles;
  // this helper makes the choice explicit at call sites. It hashes the
  // dense linear index of the tile coordinate, matching the default.
  return {};  // empty OwnerFn selects the built-in round-robin
}

OwnerFn owner_block(std::size_t n_tiles_total) {
  // Contiguous ranges of the tile enumeration: tile i goes to rank
  // floor(i * nranks / total). Callers pass the existing-tile count.
  auto counter = std::make_shared<std::size_t>(0);
  return [counter, n_tiles_total](std::span<const std::size_t>,
                                  std::size_t nranks) {
    const std::size_t i = (*counter)++;
    return std::min(nranks - 1, i * nranks / std::max<std::size_t>(
                                                 1, n_tiles_total));
  };
}

OwnerFn owner_by_dim(std::size_t dim) {
  return [dim](std::span<const std::size_t> c, std::size_t nranks) {
    return c[dim] % nranks;
  };
}

TileFilter filter_all() {
  return [](std::span<const std::size_t>) { return true; };
}

TileFilter filter_triangular(std::size_t d0, std::size_t d1) {
  return [d0, d1](std::span<const std::size_t> c) { return c[d0] >= c[d1]; };
}

TileFilter filter_and(TileFilter a, TileFilter b) {
  return [a = std::move(a), b = std::move(b)](
             std::span<const std::size_t> c) { return a(c) && b(c); };
}

}  // namespace fit::ga
