// Global-Arrays-style distributed tiled tensors over the simulated
// cluster — the data substrate NWChem builds the four-index transform
// on (paper Sec. 2.1).
//
// A GlobalArray is an N-dimensional tensor blocked along every
// dimension (one tensor::Tiling per dim). Only tiles passing a
// TileFilter exist — this is how permutation symmetry ("only unique
// blocks are stored": tile_i >= tile_j) and spatial symmetry (tiles
// with no allowed quadruple are dropped) reduce distributed storage.
// Existing tiles are distributed across ranks either round-robin or by
// a caller-supplied owner function (Listing 10 distributes C by its
// (alpha,beta) block row).
//
// Access is one-sided: get / put / acc of whole tiles, charged to the
// calling rank with the alpha-beta network model. A sync-before-read
// discipline is enforced: a tile written in the current epoch cannot
// be get() until after the next barrier (GA_Sync), which catches real
// data races in schedule code.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "runtime/cluster.hpp"
#include "tensor/tiling.hpp"

/// \file
/// \brief Global-Arrays-style distributed tiled tensors with one-sided
/// blocking and nonblocking access (Sec. 2.1).

namespace fit::ga {

/// A tile coordinate: one tile index per dimension.
using TileCoord = std::vector<std::size_t>;

/// Decides which tiles of the grid exist. Receives the tile coordinate
/// (one tile index per dimension).
using TileFilter = std::function<bool(std::span<const std::size_t>)>;

/// Maps an existing tile to its owning rank. Receives the tile
/// coordinate and the rank count.
using OwnerFn =
    std::function<std::size_t(std::span<const std::size_t>, std::size_t)>;

/// Metadata of one existing tile of a GlobalArray.
struct TileInfo {
  TileCoord coord;               ///< Tile indices per dimension.
  std::vector<std::size_t> lo;   ///< Inclusive element offsets per dim.
  std::vector<std::size_t> len;  ///< Extents per dim.
  std::size_t elements = 1;      ///< Product of the extents.
  std::size_t owner = 0;         ///< Owning rank.
  std::size_t linear = 0;  ///< Dense linear tile id in the full grid.
};

/// An N-dimensional distributed tiled tensor with one-sided get / put /
/// acc access, tile filtering for permutation and spatial symmetry,
/// nonblocking transfer variants, and the checkpoint/recovery hooks the
/// fault layer uses. See the file comment for the access discipline.
class GlobalArray {
 public:
  /// Collective creation (performs its own phase for the allocation
  /// accounting). Throws OutOfMemoryError if any rank's share does not
  /// fit. Default filter keeps all tiles; default owner is round-robin
  /// over existing tiles.
  GlobalArray(runtime::Cluster& cluster, std::string name,
              std::vector<tensor::Tiling> dims, TileFilter filter = {},
              OwnerFn owner = {});
  ~GlobalArray();

  GlobalArray(const GlobalArray&) = delete;
  GlobalArray& operator=(const GlobalArray&) = delete;

  /// Collective destruction: releases the memory accounting. Also done
  /// by the destructor; explicit destroy() mirrors the listings'
  /// `delete O1`.
  void destroy();

  /// Array name (used in traces and error messages).
  const std::string& name() const { return name_; }
  /// Number of dimensions.
  std::size_t n_dims() const { return dims_.size(); }
  /// Tiling of dimension `d`.
  const tensor::Tiling& tiling(std::size_t d) const { return dims_[d]; }

  /// Number of existing (filter-passing) tiles.
  std::size_t n_tiles() const { return tiles_.size(); }
  /// Total elements across existing tiles.
  std::size_t total_elements() const { return total_elements_; }
  /// Total bytes across existing tiles (8 bytes per element).
  double total_bytes() const { return 8.0 * double(total_elements_); }

  /// Number of tiles spilled to the simulated file system (nonzero
  /// only when the machine configures disk_bandwidth_bps > 0 and the
  /// array did not fit in aggregate memory).
  std::size_t n_spilled_tiles() const { return n_spilled_; }
  /// True when the tile at `coord` resides on the simulated disk.
  bool is_spilled(std::span<const std::size_t> coord) const;

  /// True when the tile at `coord` passes the filter (i.e. is stored).
  bool exists(std::span<const std::size_t> coord) const;
  /// Metadata of the existing tile at `coord`.
  const TileInfo& info(std::span<const std::size_t> coord) const;

  /// Tiles owned by `rank`, in deterministic order.
  const std::vector<std::size_t>& tiles_of(std::size_t rank) const {
    return by_owner_[rank];
  }
  /// Metadata of the tile with internal index `idx` (as returned by
  /// tiles_of / reassign_owner).
  const TileInfo& tile_by_index(std::size_t idx) const {
    return tiles_[idx].info;
  }

  /// One-sided read of a whole tile into `buf` (row-major over the
  /// tile extents). `buf` may be null in Simulate mode. Enforces the
  /// sync-before-read discipline.
  void get(runtime::RankCtx& ctx, std::span<const std::size_t> coord,
           double* buf) const;

  /// One-sided replace of a whole tile.
  void put(runtime::RankCtx& ctx, std::span<const std::size_t> coord,
           const double* buf);

  /// One-sided accumulate (+=) into a whole tile.
  void acc(runtime::RankCtx& ctx, std::span<const std::size_t> coord,
           const double* buf);

  // --- nonblocking variants (GA_NbGet / GA_NbPut / GA_NbAcc) ---
  //
  // Identical semantics and counters to get/put/acc, but the wire time
  // is charged to the rank's injection-link timeline instead of the
  // clock: compute charged before the matching wait() overlaps the
  // transfer. In Real mode the data movement happens *eagerly at
  // issue* — legal because the sync-before-read discipline freezes a
  // tile's remote value within an epoch (nbget reads data no put of
  // this epoch may touch; nbput/nbacc land exactly where the blocking
  // op would, and readers cannot observe the tile until the next
  // barrier anyway). Results are therefore bit-identical to the
  // blocking ops regardless of when wait() runs.

  /// Handle for an in-flight nb operation; pass back to wait()/test()
  /// on the same RankCtx. The phase barrier waits any leftovers.
  using NbHandle = runtime::NbTransfer;

  /// Nonblocking get: `buf` is filled at issue (Real mode); the sim
  /// clock only advances at wait().
  NbHandle nbget(runtime::RankCtx& ctx, std::span<const std::size_t> coord,
                 double* buf) const;
  /// Nonblocking put: the tile is written (and its epoch stamped) at
  /// issue; `buf` may be reused as soon as the call returns.
  NbHandle nbput(runtime::RankCtx& ctx, std::span<const std::size_t> coord,
                 const double* buf);
  /// Nonblocking accumulate; same issue-time semantics as nbput.
  NbHandle nbacc(runtime::RankCtx& ctx, std::span<const std::size_t> coord,
                 const double* buf);

  /// Complete an nb operation: advances the clock past its wire time
  /// (idempotent). Equivalent to ctx.wait_transfer(h).
  static void wait(runtime::RankCtx& ctx, NbHandle h) {
    ctx.wait_transfer(h);
  }
  /// True when waiting on `h` now would not stall the clock.
  static bool test(runtime::RankCtx& ctx, NbHandle h) {
    return ctx.test_transfer(h);
  }
  /// Complete every outstanding nb operation on this rank (all
  /// arrays — the link timeline is per rank, not per array).
  static void wait_all(runtime::RankCtx& ctx) { ctx.quiesce(); }

  /// Direct read of one element (root-only convenience for gathering
  /// results in Real mode; not charged).
  double peek(std::span<const std::size_t> element) const;

  // --- checkpoint/recovery interface (used by CheckpointManager) ---

  /// Write epoch of tile `idx` (0 = never written).
  std::uint64_t tile_write_epoch(std::size_t idx) const {
    return tiles_[idx].write_epoch.load(std::memory_order_acquire);
  }
  /// Tile payload (empty in Simulate mode and for never-written tiles
  /// snapshotted as zeros).
  const std::vector<double>& tile_data(std::size_t idx) const {
    return tiles_[idx].data;
  }
  /// Overwrite tile `idx` with checkpointed content (`data` empty =
  /// zeros in Real mode) and rewind its write epoch to `epoch`.
  void restore_tile(std::size_t idx, const std::vector<double>& data,
                    std::uint64_t epoch);
  /// Move every tile owned by the `dead` ranks to the `targets` ranks,
  /// transferring the memory accounting. Placement is capacity-aware:
  /// each tile goes to the target with the most free tracked memory at
  /// that moment (ties to the lowest rank), so recovery spreads the
  /// orphaned working set instead of piling it round-robin onto one
  /// survivor and tripping a spurious capacity fault. Spilled tiles
  /// only change nominal owner (their bytes live on the shared file
  /// system, which survives rank death). Returns the indices of the
  /// re-owned in-memory tiles — the ones whose content was lost and
  /// must be restored from a checkpoint.
  std::vector<std::size_t> reassign_owners(
      std::span<const std::size_t> dead,
      std::span<const std::size_t> targets);

  /// Single-rank convenience wrapper over reassign_owners.
  std::vector<std::size_t> reassign_owner(std::size_t dead,
                                          std::span<const std::size_t> targets);

 private:
  struct Tile {
    TileInfo info;
    std::vector<double> data;            // Real mode only
    std::atomic<std::uint64_t> write_epoch{0};
    bool spilled = false;                // resides on the simulated disk
  };

  std::size_t index_of(std::span<const std::size_t> coord) const;
  Tile& tile_at(std::span<const std::size_t> coord);
  const Tile& tile_at(std::span<const std::size_t> coord) const;

  runtime::Cluster& cluster_;
  std::string name_;
  std::vector<tensor::Tiling> dims_;
  std::deque<Tile> tiles_;  // deque: Tile is non-movable (atomic)
  std::vector<std::size_t> grid_index_;  // dense linear id -> tile idx+1
  std::vector<std::vector<std::size_t>> by_owner_;
  std::size_t total_elements_ = 0;
  std::size_t n_spilled_ = 0;
  bool destroyed_ = false;
  // Serializes concurrent one-sided accumulates under a threaded
  // executor (puts target disjoint tiles by construction; accumulates
  // may collide on shared output tiles).
  mutable std::mutex acc_mutex_;
};

// Standard distributions.

/// Round-robin over existing tiles (the default distribution).
OwnerFn owner_cyclic();
/// Contiguous blocks of existing tiles, one block per rank.
OwnerFn owner_block(std::size_t n_tiles_total);
/// Distribute by one tile coordinate (e.g. Listing 10's C layout by
/// the (alpha,beta) block row uses a custom function; this helper
/// covers single-dimension layouts).
OwnerFn owner_by_dim(std::size_t dim);

// Standard filters.

/// Keep every tile (the default filter).
TileFilter filter_all();
/// tile[d0] >= tile[d1] — the unique-block filter for a symmetric
/// index pair.
TileFilter filter_triangular(std::size_t d0, std::size_t d1);
/// Conjunction of two filters.
TileFilter filter_and(TileFilter a, TileFilter b);

}  // namespace fit::ga
