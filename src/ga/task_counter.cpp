#include "ga/task_counter.hpp"

#include <algorithm>
#include <cstdlib>
#include <functional>
#include <queue>
#include <utility>

#include "util/error.hpp"
#include "util/hash.hpp"
#include "util/logging.hpp"

namespace fit::ga {

namespace {

constexpr double kControlBytes = 8.0;  // one fetch-and-add word

/// One-way alpha-beta time of an 8-byte control message between two
/// ranks: the same model RankCtx::charge_transfer applies, so the
/// planning clocks and the execution-time charges agree.
double control_one_way_s(const runtime::Cluster& cl, std::size_t a,
                         std::size_t b) {
  const auto& m = cl.machine();
  if (cl.node_of(a) == cl.node_of(b))
    return kControlBytes / m.local_bandwidth_bps;
  return m.net_latency_s + kControlBytes / m.net_bandwidth_bps;
}

/// Min-heap of (virtual clock, rank): the deterministic next claimer,
/// ties broken toward the lowest rank id.
using Event = std::pair<double, std::size_t>;
using EventQueue =
    std::priority_queue<Event, std::vector<Event>, std::greater<Event>>;

EventQueue live_rank_queue(const runtime::Cluster& cluster) {
  EventQueue pq;
  for (std::size_t r = 0; r < cluster.n_ranks(); ++r)
    if (!cluster.is_dead(r)) pq.emplace(0.0, r);
  FIT_REQUIRE(!pq.empty(), "plan_tasks: no live ranks");
  return pq;
}

std::size_t live_count(const runtime::Cluster& cluster) {
  std::size_t live = 0;
  for (std::size_t r = 0; r < cluster.n_ranks(); ++r)
    if (!cluster.is_dead(r)) ++live;
  return live;
}

/// Record one queue-and-service round at a counter whose serial free
/// time is `counter_free`: returns the service completion time and
/// advances the free time.
double serve(double arrival, double& counter_free, double service) {
  const double start = std::max(arrival, counter_free);
  counter_free = start + service;
  return counter_free;
}

}  // namespace

const char* to_string(Balance b) {
  switch (b) {
    case Balance::Static:
      return "static";
    case Balance::Counter:
      return "counter";
    case Balance::Steal:
      return "steal";
    case Balance::Batched:
      return "batched";
    case Balance::PerNode:
      return "pernode";
    case Balance::Tree:
      return "tree";
    case Balance::Auto:
      return "auto";
  }
  return "?";
}

std::optional<Balance> parse_balance(std::string_view name) {
  for (Balance b :
       {Balance::Static, Balance::Counter, Balance::Steal, Balance::Batched,
        Balance::PerNode, Balance::Tree, Balance::Auto})
    if (name == to_string(b)) return b;
  return std::nullopt;
}

Balance balance_from_env(Balance fallback) {
  const char* env = std::getenv("FOURINDEX_BALANCE");
  if (!env) return fallback;
  if (const auto b = parse_balance(env)) return *b;
  FIT_LOG_WARN("ignoring invalid FOURINDEX_BALANCE='"
               << env
               << "' (want static|counter|steal|batched|pernode|tree|auto); "
                  "using '"
               << to_string(fallback) << "'");
  return fallback;
}

std::size_t auto_batch(std::size_t n_tasks, std::size_t live_ranks) {
  // A plan taken after a full-cluster kill storm sees zero live ranks,
  // and a tail phase can carry fewer tasks than survivors; both
  // degenerate to the finest batch — a batch > 1 there would claim
  // past the range end on the first fetch.
  if (live_ranks == 0 || n_tasks < live_ranks) return 1;
  // ~8 fetches per rank: coarse enough to collapse the contention
  // queue, fine enough that the tail is still rebalanced. Divide
  // stepwise — the one-expression form 8 * live_ranks wraps to 0 for
  // rank counts above 2^61 and divides by zero; floor-of-floor is
  // identical for positive integers.
  const std::size_t k = (n_tasks / live_ranks) / 8;
  return std::clamp<std::size_t>(k, 1, 64);
}

TaskCounter::TaskCounter(runtime::Cluster& cluster, const std::string& name)
    : cluster_(cluster),
      // Stable FNV-1a placement — std::hash would make the counter
      // home, and with it every simulated timing, differ between
      // standard libraries.
      home_(static_cast<std::size_t>(util::fnv1a(name)) %
            cluster.n_ranks()),
      name_hash_(util::fnv1a(name)) {}

std::size_t TaskCounter::owner() const {
  // live_owner walks to the next live rank cyclically, so the counter
  // survives not just its home's death but the loss of the home's
  // entire failure domain (every rank of the node dead at once): the
  // walk simply skips past the whole domain to the first survivor.
  return cluster_.live_owner(home_);
}

std::size_t TaskCounter::domain_home(std::size_t d) const {
  const auto& dm = cluster_.domains();
  FIT_REQUIRE(d < dm.n_domains(), "domain_home: domain out of range");
  return dm.lo(d) +
         static_cast<std::size_t>(util::fnv1a_u64(d, name_hash_)) %
             dm.size(d);
}

std::size_t TaskCounter::tree_home(std::size_t level,
                                   std::size_t group) const {
  FIT_REQUIRE(level >= 1, "tree_home: levels start at 1");
  const std::size_t lo = group << level;
  FIT_REQUIRE(lo < cluster_.n_ranks(), "tree_home: group out of range");
  const std::size_t hi =
      std::min<std::size_t>(lo + (std::size_t{1} << level),
                            cluster_.n_ranks());
  return lo + static_cast<std::size_t>(
                  util::fnv1a_u64(group, util::fnv1a_u64(level,
                                                         name_hash_))) %
                  (hi - lo);
}

double TaskCounter::one_way_s(std::size_t rank) const {
  return control_one_way_s(cluster_, rank, owner());
}

double TaskCounter::one_way_s(std::size_t a, std::size_t b) const {
  return control_one_way_s(cluster_, a, b);
}

double TaskCounter::service_s() const {
  // The host's per-request occupancy: one message's worth of NIC
  // processing. Requests arriving during it queue — that queueing is
  // the contention NXTVAL is famous for at scale.
  return cluster_.machine().net_latency_s +
         kControlBytes / cluster_.machine().local_bandwidth_bps;
}

void TaskCounter::charge_fetch_add(runtime::RankCtx& ctx,
                                   double wait_s) const {
  charge_fetch_add(ctx, home_, wait_s);
}

void TaskCounter::charge_fetch_add(runtime::RankCtx& ctx, std::size_t home,
                                   double wait_s) const {
  const std::size_t host = cluster_.live_owner(home);
  ctx.charge_transfer(host, kControlBytes);  // request
  ctx.stall(wait_s);                         // queueing + service
  ctx.charge_transfer(host, kControlBytes);  // reply (the ticket)
}

namespace {

/// Shared DES for the flat counter (k == 1) and its batched variant:
/// each fetch-and-add claims up to k consecutive tasks, so the round
/// trip and the contention queue are amortized over the whole batch.
void plan_flat_counter(const runtime::Cluster& cluster,
                       const TaskCounter& counter,
                       std::span<const double> cost_s, std::size_t k,
                       TaskPlan& plan) {
  const std::size_t n = plan.n_tasks;
  const std::size_t home = counter.home();
  const std::size_t host = counter.owner();
  plan.counter_homes = {home};
  plan.counter_owners = {host};
  std::vector<double> one_way(cluster.n_ranks(), 0.0);
  for (std::size_t r = 0; r < cluster.n_ranks(); ++r)
    one_way[r] = counter.one_way_s(r, host);
  const double service = counter.service_s();
  double counter_free = 0.0;
  std::size_t next = 0;
  EventQueue pq = live_rank_queue(cluster);
  while (!pq.empty()) {
    const auto [clk, r] = pq.top();
    pq.pop();
    // Request travels to the host, queues behind earlier
    // fetch-and-adds, is serviced, and the ticket travels back.
    const double arrival = clk + one_way[r];
    const double done = serve(arrival, counter_free, service);
    const double wait = done - arrival;
    const double back = done + one_way[r];
    plan.total_wait_s += wait;
    plan.max_wait_s = std::max(plan.max_wait_s, wait);
    TaskClaim c;
    c.wait_s = wait;
    c.peer = host;
    c.home = home;
    c.fetched = true;
    if (next < n) {
      const std::size_t take = std::min(k, n - next);
      ++plan.n_fetches;
      double batch_cost = 0;
      c.task = next;
      plan.claims[r].push_back(c);
      batch_cost += cost_s[next];
      for (std::size_t i = 1; i < take; ++i) {
        TaskClaim tail;  // rides the head's ticket: no fetch, no wait
        tail.task = next + i;
        plan.claims[r].push_back(tail);
        batch_cost += cost_s[next + i];
      }
      next += take;
      pq.emplace(back + batch_cost, r);
    } else {
      // Terminal empty fetch: how a rank learns the work ran out.
      plan.claims[r].push_back(c);
      plan.makespan_s = std::max(plan.makespan_s, back);
    }
  }
}

/// The flat counter with a multi-tenant dispenser in front of it: the
/// serialized fetch-and-add stream is unchanged (same round trips,
/// same contention queue), but the *order* tasks are handed out in is
/// deficit-round-robin across tenants instead of global canonical
/// order. Each tenant's own tasks still flow in canonical order, so a
/// tenant's result is bit-identical to running it alone; the deficit
/// counters (replenished by the mean task cost per visit) keep a
/// tenant issuing many cheap tasks from starving one issuing few
/// expensive ones. Per-tenant in-flight memory is tracked against the
/// quotas in virtual time: a fetch finding every pending tenant at
/// its cap stalls at the counter until an earlier task completes.
void plan_flat_counter_drr(const runtime::Cluster& cluster,
                           const TaskCounter& counter,
                           std::span<const double> cost_s,
                           const TenantSpec& tenants, std::size_t k,
                           TaskPlan& plan) {
  const std::size_t n = plan.n_tasks;
  const std::size_t nt = tenants.n_tenants;
  const bool quotas = !tenants.quota_bytes.empty();
  const bool sized = !tenants.task_bytes.empty();
  FIT_REQUIRE(tenants.tenant.size() == n,
              "plan_tasks: tenant tag per task required");
  FIT_REQUIRE(!quotas || tenants.quota_bytes.size() == nt,
              "plan_tasks: one quota per tenant required");
  FIT_REQUIRE(!sized || tenants.task_bytes.size() == n,
              "plan_tasks: task_bytes must be per-task");
  for (std::size_t t = 0; t < n; ++t) {
    FIT_REQUIRE(tenants.tenant[t] < nt, "plan_tasks: tenant id out of range");
    if (quotas && sized)
      FIT_REQUIRE(tenants.task_bytes[t] <=
                      tenants.quota_bytes[tenants.tenant[t]],
                  "plan_tasks: task larger than its tenant's quota can "
                  "never be granted");
  }

  // Per-tenant FIFO queues in canonical task order, and the DRR state.
  std::vector<std::vector<std::size_t>> fifo(nt);
  for (std::size_t t = 0; t < n; ++t) fifo[tenants.tenant[t]].push_back(t);
  std::vector<std::size_t> head(nt, 0);
  std::vector<double> deficit(nt, 0.0), in_flight(nt, 0.0);
  plan.tenant_makespan_s.assign(nt, 0.0);
  plan.tenant_peak_bytes.assign(nt, 0.0);
  double quantum = 0;
  for (std::size_t t = 0; t < n; ++t) quantum += cost_s[t];
  quantum = n > 0 ? quantum / static_cast<double>(n) : 0.0;
  std::size_t cursor = 0, pending = n;

  // Tasks in flight, ordered by modeled completion time so quota
  // memory can be returned in virtual time.
  using Done = std::pair<double, std::size_t>;  // (completion, task)
  std::priority_queue<Done, std::vector<Done>, std::greater<Done>> in_run;
  const auto release_until = [&](double now) {
    while (!in_run.empty() && in_run.top().first <= now) {
      const std::size_t t = in_run.top().second;
      in_run.pop();
      if (sized) in_flight[tenants.tenant[t]] -= tenants.task_bytes[t];
    }
  };
  const auto bytes_of = [&](std::size_t t) {
    return sized ? tenants.task_bytes[t] : 0.0;
  };
  const auto quota_ok = [&](std::size_t g, std::size_t t) {
    return !quotas || in_flight[g] + bytes_of(t) <= tenants.quota_bytes[g];
  };

  const std::size_t home = counter.home();
  const std::size_t host = counter.owner();
  plan.counter_homes = {home};
  plan.counter_owners = {host};
  std::vector<double> one_way(cluster.n_ranks(), 0.0);
  for (std::size_t r = 0; r < cluster.n_ranks(); ++r)
    one_way[r] = counter.one_way_s(r, host);
  const double service = counter.service_s();
  double counter_free = 0.0;
  EventQueue pq = live_rank_queue(cluster);
  while (!pq.empty()) {
    const auto [clk, r] = pq.top();
    pq.pop();
    const double arrival = clk + one_way[r];
    double start = std::max(arrival, counter_free);
    release_until(start);

    // Deficit round robin: visit tenants cyclically, replenishing the
    // visited tenant's deficit by one quantum, until some tenant's
    // head task is both affordable and within quota. When every
    // pending tenant is at its quota, stall the fetch until the next
    // in-flight completion frees memory (deadlock-free: quotas admit
    // any single task, so a tenant's own completion re-enables it).
    std::size_t g = nt;  // granted tenant (nt = none yet)
    while (pending > 0 && g == nt) {
      bool all_blocked = true;
      for (std::size_t visit = 0; visit < nt && g == nt; ++visit) {
        const std::size_t cand = cursor;
        cursor = (cursor + 1) % nt;
        if (head[cand] >= fifo[cand].size()) continue;
        const std::size_t t = fifo[cand][head[cand]];
        if (!quota_ok(cand, t)) continue;
        all_blocked = false;
        if (deficit[cand] < cost_s[t]) deficit[cand] += quantum;
        if (deficit[cand] >= cost_s[t]) g = cand;
      }
      if (g != nt || pending == 0) break;
      if (all_blocked) {
        FIT_REQUIRE(!in_run.empty(),
                    "plan_tasks: tenant quotas wedged with nothing in "
                    "flight");
        ++plan.quota_stalls;
        const double freed_at = in_run.top().first;
        release_until(freed_at);
        start = std::max(start, freed_at);
      }
    }

    const double done = serve(start, counter_free, service);
    const double wait = done - arrival;
    const double back = done + one_way[r];
    plan.total_wait_s += wait;
    plan.max_wait_s = std::max(plan.max_wait_s, wait);
    TaskClaim c;
    c.wait_s = wait;
    c.peer = host;
    c.home = home;
    c.fetched = true;
    if (g != nt) {
      // Up to k tasks from the granted tenant's queue ride this
      // ticket; deficit pays for all of them (and may go negative —
      // the shortfall is repaid before the tenant is served again),
      // quota binds per task.
      ++plan.n_fetches;
      double batch_cost = 0;
      std::size_t taken = 0;
      while (taken < k && head[g] < fifo[g].size()) {
        const std::size_t t = fifo[g][head[g]];
        if (taken > 0 && !quota_ok(g, t)) break;
        ++head[g];
        --pending;
        ++taken;
        deficit[g] -= cost_s[t];
        in_flight[g] += bytes_of(t);
        plan.tenant_peak_bytes[g] =
            std::max(plan.tenant_peak_bytes[g], in_flight[g]);
        TaskClaim tc = taken == 1 ? c : TaskClaim{};
        tc.task = t;
        plan.claims[r].push_back(tc);
        batch_cost += cost_s[t];
        in_run.emplace(back + batch_cost, t);
        plan.tenant_makespan_s[g] =
            std::max(plan.tenant_makespan_s[g], back + batch_cost);
      }
      pq.emplace(back + batch_cost, r);
    } else {
      plan.claims[r].push_back(c);  // terminal empty fetch
      plan.makespan_s = std::max(plan.makespan_s, back);
    }
  }
}

/// One counter per failure domain, each serving a contiguous range of
/// the task list sized by the domain's live rank share; a rank whose
/// node's range drains refetches from the fullest remaining node's
/// counter across the network.
void plan_per_node(const runtime::Cluster& cluster,
                   const TaskCounter& counter,
                   std::span<const double> cost_s, TaskPlan& plan) {
  const std::size_t n = plan.n_tasks;
  const auto& dm = cluster.domains();
  const std::size_t nd = dm.n_domains();
  std::vector<std::size_t> live_in(nd, 0);
  std::size_t total_live = 0;
  for (std::size_t r = 0; r < cluster.n_ranks(); ++r)
    if (!cluster.is_dead(r)) {
      ++live_in[dm.domain_of(r)];
      ++total_live;
    }
  FIT_REQUIRE(total_live > 0, "plan_tasks: no live ranks");
  // Contiguous proportional split of [0, n): domain d serves
  // [begin[d], begin[d+1]), sized by its live-rank share (largest
  // cumulative rounding, so the split is exact and deterministic).
  std::vector<std::size_t> begin(nd + 1, 0);
  std::size_t cum_live = 0;
  for (std::size_t d = 0; d < nd; ++d) {
    cum_live += live_in[d];
    begin[d + 1] = n * cum_live / total_live;
  }
  std::vector<std::size_t> next(nd), end(nd), home(nd), host(nd);
  std::vector<double> free(nd, 0.0);
  for (std::size_t d = 0; d < nd; ++d) {
    next[d] = begin[d];
    end[d] = begin[d + 1];
    home[d] = counter.domain_home(d);
    host[d] = cluster.live_owner(home[d]);
    if (live_in[d] > 0) {
      plan.counter_homes.push_back(home[d]);
      plan.counter_owners.push_back(host[d]);
    }
  }
  const double service = counter.service_s();
  EventQueue pq = live_rank_queue(cluster);
  while (!pq.empty()) {
    const auto [clk, r] = pq.top();
    pq.pop();
    const std::size_t d0 = dm.domain_of(r);
    // Own node's counter while it has range left; then the fullest
    // remaining node's counter (ties toward the lowest domain id);
    // the terminal empty fetch goes to the (drained) home counter.
    std::size_t d = d0;
    if (next[d0] >= end[d0]) {
      std::size_t best = nd;
      for (std::size_t v = 0; v < nd; ++v) {
        if (next[v] >= end[v]) continue;
        if (best == nd || end[v] - next[v] > end[best] - next[best])
          best = v;
      }
      if (best != nd) d = best;
    }
    const double ow = counter.one_way_s(r, host[d]);
    const double arrival = clk + ow;
    const double done = serve(arrival, free[d], service);
    const double wait = done - arrival;
    const double back = done + ow;
    plan.total_wait_s += wait;
    plan.max_wait_s = std::max(plan.max_wait_s, wait);
    TaskClaim c;
    c.wait_s = wait;
    c.peer = host[d];
    c.home = home[d];
    c.fetched = true;
    if (next[d] < end[d]) {
      c.task = next[d]++;
      ++plan.n_fetches;
      plan.claims[r].push_back(c);
      pq.emplace(back + cost_s[c.task], r);
    } else {
      plan.claims[r].push_back(c);
      plan.makespan_s = std::max(plan.makespan_s, back);
    }
  }
}

/// Log-depth fetch-and-add fan-in: ranks fetch single tasks from
/// their level-1 node; a drained node refills from its parent in
/// blocks that double per level, so the root sees exponentially fewer
/// requests than a flat counter would.
void plan_tree(const runtime::Cluster& cluster, const TaskCounter& counter,
               std::span<const double> cost_s, std::size_t k,
               TaskPlan& plan) {
  const std::size_t n = plan.n_tasks;
  const std::size_t nranks = cluster.n_ranks();
  std::size_t levels = 1;
  while ((std::size_t{1} << levels) < nranks) ++levels;

  struct Node {
    std::size_t lo = 0, hi = 0;  // current task block [lo, hi)
    double free = 0;             // serial service point
    std::size_t home = 0, host = 0;
  };
  // nodes[l - 1][g]: the level-l node over ranks [g*2^l, (g+1)*2^l).
  std::vector<std::vector<Node>> nodes(levels);
  for (std::size_t l = 1; l <= levels; ++l) {
    const std::size_t groups = (nranks + (std::size_t{1} << l) - 1) >> l;
    nodes[l - 1].resize(groups);
    for (std::size_t g = 0; g < groups; ++g) {
      Node& nd = nodes[l - 1][g];
      nd.home = counter.tree_home(l, g);
      nd.host = cluster.live_owner(nd.home);
      plan.counter_homes.push_back(nd.home);
      plan.counter_owners.push_back(nd.host);
    }
  }
  nodes[levels - 1][0].hi = n;  // the root owns the whole task range

  const double service = counter.service_s();
  // Refill granularity doubles per level: a level-l node asks its
  // parent for k * 2^(l-1) tasks at a time, so each level absorbs
  // half of the level below's request stream.
  const auto refill_of = [k](std::size_t level) {
    return k << (level - 1);
  };
  // Serve a block request of up to `want` tasks at node (level, g) for
  // a request arriving at `t`, ascending for a refill if the node's
  // block is dry. Returns the granted range; `done` is the service
  // completion time at this node, `hops` counts refill ascents.
  const std::function<std::pair<std::size_t, std::size_t>(
      std::size_t, std::size_t, double, std::size_t, double&,
      std::uint32_t&)>
      fetch_block = [&](std::size_t level, std::size_t g, double t,
                        std::size_t want, double& done,
                        std::uint32_t& hops) {
        Node& nd = nodes[level - 1][g];
        double start = std::max(t, nd.free);
        if (nd.lo == nd.hi && level < levels) {
          ++hops;
          Node& parent = nodes[level][g >> 1];
          const double t_up =
              start + counter.one_way_s(nd.host, parent.host);
          double parent_done = 0;
          const auto blk = fetch_block(level + 1, g >> 1, t_up,
                                       refill_of(level), parent_done,
                                       hops);
          nd.lo = blk.first;
          nd.hi = blk.second;
          start = std::max(
              start, parent_done + counter.one_way_s(parent.host, nd.host));
        }
        done = serve(start, nd.free, service);
        const std::size_t take = std::min(want, nd.hi - nd.lo);
        const std::size_t lo = nd.lo;
        nd.lo += take;
        return std::make_pair(lo, lo + take);
      };

  EventQueue pq = live_rank_queue(cluster);
  while (!pq.empty()) {
    const auto [clk, r] = pq.top();
    pq.pop();
    const std::size_t g = r >> 1;
    const Node& leaf = nodes[0][g];
    const double ow = counter.one_way_s(r, leaf.host);
    const double arrival = clk + ow;
    double done = 0;
    std::uint32_t hops = 0;
    const auto blk = fetch_block(1, g, arrival, 1, done, hops);
    const double wait = done - arrival;
    const double back = done + ow;
    plan.total_wait_s += wait;
    plan.max_wait_s = std::max(plan.max_wait_s, wait);
    plan.tree_hops += hops;
    TaskClaim c;
    c.wait_s = wait;
    c.peer = leaf.host;
    c.home = leaf.home;
    c.fetched = true;
    c.hops = hops;
    if (blk.first < blk.second) {
      c.task = blk.first;
      ++plan.n_fetches;
      plan.claims[r].push_back(c);
      pq.emplace(back + cost_s[c.task], r);
    } else {
      plan.claims[r].push_back(c);
      plan.makespan_s = std::max(plan.makespan_s, back);
    }
  }
}

/// Balance::Steal: queues seeded from the static map (dead owners'
/// tasks land directly on the survivor that adopted them), local pops
/// free, steals from the heaviest remaining queue.
void plan_steal(const runtime::Cluster& cluster,
                std::span<const double> cost_s,
                std::span<const std::size_t> owner, TaskPlan& plan) {
  const std::size_t n = plan.n_tasks;
  const std::size_t nranks = cluster.n_ranks();
  std::vector<std::vector<std::size_t>> queue(nranks);
  std::vector<std::size_t> head(nranks, 0);
  std::vector<double> remaining(nranks, 0.0);
  for (std::size_t t = 0; t < n; ++t) {
    const std::size_t r = cluster.live_owner(owner[t]);
    queue[r].push_back(t);
    remaining[r] += cost_s[t];
  }
  EventQueue pq = live_rank_queue(cluster);
  while (!pq.empty()) {
    const auto [clk, r] = pq.top();
    pq.pop();
    if (head[r] < queue[r].size()) {
      const std::size_t t = queue[r][head[r]++];
      remaining[r] -= cost_s[t];
      TaskClaim c;
      c.task = t;
      plan.claims[r].push_back(c);
      pq.emplace(clk + cost_s[t], r);
      continue;
    }
    // Queue drained: steal from the back of the heaviest surviving
    // queue (ties toward the lowest rank id); stop when none is left.
    std::size_t victim = TaskClaim::kNone;
    for (std::size_t v = 0; v < nranks; ++v) {
      if (v == r || head[v] >= queue[v].size()) continue;
      if (victim == TaskClaim::kNone || remaining[v] > remaining[victim])
        victim = v;
    }
    if (victim == TaskClaim::kNone) {  // all queues empty: done
      plan.makespan_s = std::max(plan.makespan_s, clk);
      continue;
    }
    const std::size_t t = queue[victim].back();
    queue[victim].pop_back();
    remaining[victim] -= cost_s[t];
    TaskClaim c;
    c.task = t;
    c.stolen = true;
    c.peer = victim;
    plan.claims[r].push_back(c);
    ++plan.n_steals;
    const double rtt = 2.0 * control_one_way_s(cluster, r, victim);
    pq.emplace(clk + rtt + cost_s[t], r);
  }
}

}  // namespace

TaskPlan plan_tasks(const runtime::Cluster& cluster, Balance balance,
                    const TaskCounter& counter,
                    std::span<const double> cost_s,
                    std::span<const std::size_t> owner,
                    std::size_t batch) {
  const std::size_t nranks = cluster.n_ranks();
  const std::size_t n = owner.size();
  TaskPlan plan;
  plan.balance = balance;
  plan.n_tasks = n;
  plan.claims.assign(nranks, {});
  FIT_REQUIRE(balance != Balance::Auto,
              "plan_tasks: Balance::Auto must be resolved by the caller "
              "(core::choose_balance)");

  if (balance == Balance::Static) {
    // The owner map *is* the plan: each task on its static owner, in
    // canonical order, no scheduling traffic — bit-identical to the
    // historical owner-filtered loops. With cost estimates available
    // the (adoption-aware) makespan is still computed, so the Auto
    // planner can compare Static against the dynamic modes.
    std::vector<double> load(nranks, 0.0);
    for (std::size_t t = 0; t < n; ++t) {
      TaskClaim c;
      c.task = t;
      plan.claims[owner[t]].push_back(c);
      if (!cost_s.empty())
        load[cluster.live_owner(owner[t])] += cost_s[t];
    }
    for (double l : load) plan.makespan_s = std::max(plan.makespan_s, l);
    return plan;
  }

  FIT_REQUIRE(cost_s.size() == n, "plan_tasks: cost/owner size mismatch");
  const std::size_t k =
      batch > 0 ? batch : auto_batch(n, live_count(cluster));

  switch (balance) {
    case Balance::Counter:
      plan_flat_counter(cluster, counter, cost_s, /*k=*/1, plan);
      break;
    case Balance::Batched:
      plan_flat_counter(cluster, counter, cost_s, k, plan);
      break;
    case Balance::PerNode:
      plan_per_node(cluster, counter, cost_s, plan);
      break;
    case Balance::Tree:
      plan_tree(cluster, counter, cost_s, k, plan);
      break;
    case Balance::Steal:
      plan_steal(cluster, cost_s, owner, plan);
      break;
    default:
      FIT_REQUIRE(false, "plan_tasks: unhandled balance mode");
  }
  return plan;
}

TaskPlan plan_tasks(const runtime::Cluster& cluster, Balance balance,
                    const TaskCounter& counter,
                    std::span<const double> cost_s,
                    std::span<const std::size_t> owner,
                    const TenantSpec& tenants, std::size_t batch) {
  const std::size_t n = owner.size();
  TaskPlan plan;
  plan.balance = balance;
  plan.n_tasks = n;
  plan.claims.assign(cluster.n_ranks(), {});
  FIT_REQUIRE(cost_s.size() == n, "plan_tasks: cost/owner size mismatch");
  FIT_REQUIRE(tenants.n_tenants >= 1, "plan_tasks: need at least one tenant");
  FIT_REQUIRE(balance == Balance::Counter || balance == Balance::Batched,
              "plan_tasks: tenant-aware claiming needs a serialized "
              "dispenser — Balance::Counter or Balance::Batched");
  const std::size_t k =
      balance == Balance::Counter
          ? 1
          : (batch > 0 ? batch : auto_batch(n, live_count(cluster)));
  plan_flat_counter_drr(cluster, counter, cost_s, tenants, k, plan);
  return plan;
}

}  // namespace fit::ga
