#include "ga/task_counter.hpp"

#include <algorithm>
#include <queue>
#include <utility>

#include "util/error.hpp"
#include "util/hash.hpp"

namespace fit::ga {

namespace {

constexpr double kControlBytes = 8.0;  // one fetch-and-add word

/// One-way alpha-beta time of an 8-byte control message between two
/// ranks: the same model RankCtx::charge_transfer applies, so the
/// planning clocks and the execution-time charges agree.
double control_one_way_s(const runtime::Cluster& cl, std::size_t a,
                         std::size_t b) {
  const auto& m = cl.machine();
  if (cl.node_of(a) == cl.node_of(b))
    return kControlBytes / m.local_bandwidth_bps;
  return m.net_latency_s + kControlBytes / m.net_bandwidth_bps;
}

}  // namespace

const char* to_string(Balance b) {
  switch (b) {
    case Balance::Static:
      return "static";
    case Balance::Counter:
      return "counter";
    case Balance::Steal:
      return "steal";
  }
  return "?";
}

TaskCounter::TaskCounter(runtime::Cluster& cluster, const std::string& name)
    : cluster_(cluster),
      // Stable FNV-1a placement — std::hash would make the counter
      // home, and with it every simulated timing, differ between
      // standard libraries.
      home_(static_cast<std::size_t>(util::fnv1a(name)) %
            cluster.n_ranks()) {}

std::size_t TaskCounter::owner() const {
  // live_owner walks to the next live rank cyclically, so the counter
  // survives not just its home's death but the loss of the home's
  // entire failure domain (every rank of the node dead at once): the
  // walk simply skips past the whole domain to the first survivor.
  return cluster_.live_owner(home_);
}

double TaskCounter::one_way_s(std::size_t rank) const {
  return control_one_way_s(cluster_, rank, owner());
}

double TaskCounter::service_s() const {
  // The host's per-request occupancy: one message's worth of NIC
  // processing. Requests arriving during it queue — that queueing is
  // the contention NXTVAL is famous for at scale.
  return cluster_.machine().net_latency_s +
         kControlBytes / cluster_.machine().local_bandwidth_bps;
}

void TaskCounter::charge_fetch_add(runtime::RankCtx& ctx,
                                   double wait_s) const {
  const std::size_t host = owner();
  ctx.charge_transfer(host, kControlBytes);  // request
  ctx.stall(wait_s);                         // queueing + service
  ctx.charge_transfer(host, kControlBytes);  // reply (the ticket)
}

TaskPlan plan_tasks(const runtime::Cluster& cluster, Balance balance,
                    const TaskCounter& counter,
                    std::span<const double> cost_s,
                    std::span<const std::size_t> owner) {
  const std::size_t nranks = cluster.n_ranks();
  const std::size_t n = owner.size();
  TaskPlan plan;
  plan.balance = balance;
  plan.n_tasks = n;
  plan.claims.assign(nranks, {});

  if (balance == Balance::Static) {
    // The owner map *is* the plan: each task on its static owner, in
    // canonical order, no scheduling traffic — bit-identical to the
    // historical owner-filtered loops.
    for (std::size_t t = 0; t < n; ++t) {
      TaskClaim c;
      c.task = t;
      plan.claims[owner[t]].push_back(c);
    }
    return plan;
  }

  FIT_REQUIRE(cost_s.size() == n, "plan_tasks: cost/owner size mismatch");

  // Virtual clocks of the live ranks drive the discrete-event
  // simulation; (clock, rank) min-heap gives a deterministic next
  // claimer (ties broken toward the lowest rank id).
  using Event = std::pair<double, std::size_t>;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> pq;
  for (std::size_t r = 0; r < nranks; ++r)
    if (!cluster.is_dead(r)) pq.emplace(0.0, r);
  FIT_REQUIRE(!pq.empty(), "plan_tasks: no live ranks");

  if (balance == Balance::Counter) {
    plan.counter_owner = counter.owner();
    std::vector<double> one_way(nranks, 0.0);
    for (std::size_t r = 0; r < nranks; ++r)
      one_way[r] = counter.one_way_s(r);
    const double service = counter.service_s();
    double counter_free = 0.0;
    std::size_t next = 0;
    while (!pq.empty()) {
      const auto [clk, r] = pq.top();
      pq.pop();
      // Request travels to the host, queues behind earlier
      // fetch-and-adds, is serviced, and the ticket travels back.
      const double arrival = clk + one_way[r];
      const double start = std::max(arrival, counter_free);
      counter_free = start + service;
      TaskClaim c;
      c.wait_s = (start + service) - arrival;
      c.peer = plan.counter_owner;
      plan.total_wait_s += c.wait_s;
      plan.max_wait_s = std::max(plan.max_wait_s, c.wait_s);
      const double back = counter_free + one_way[r];
      if (next < n) {
        c.task = next++;
        plan.claims[r].push_back(c);
        pq.emplace(back + cost_s[c.task], r);
      } else {
        // Terminal empty fetch: how a rank learns the work ran out.
        plan.claims[r].push_back(c);
      }
    }
    return plan;
  }

  // Balance::Steal: queues seeded from the static map (dead owners'
  // tasks land directly on the survivor that adopted them), local
  // pops free, steals from the heaviest remaining queue.
  std::vector<std::vector<std::size_t>> queue(nranks);
  std::vector<std::size_t> head(nranks, 0);
  std::vector<double> remaining(nranks, 0.0);
  for (std::size_t t = 0; t < n; ++t) {
    const std::size_t r = cluster.live_owner(owner[t]);
    queue[r].push_back(t);
    remaining[r] += cost_s[t];
  }
  while (!pq.empty()) {
    const auto [clk, r] = pq.top();
    pq.pop();
    if (head[r] < queue[r].size()) {
      const std::size_t t = queue[r][head[r]++];
      remaining[r] -= cost_s[t];
      TaskClaim c;
      c.task = t;
      plan.claims[r].push_back(c);
      pq.emplace(clk + cost_s[t], r);
      continue;
    }
    // Queue drained: steal from the back of the heaviest surviving
    // queue (ties toward the lowest rank id); stop when none is left.
    std::size_t victim = TaskClaim::kNone;
    for (std::size_t v = 0; v < nranks; ++v) {
      if (v == r || head[v] >= queue[v].size()) continue;
      if (victim == TaskClaim::kNone || remaining[v] > remaining[victim])
        victim = v;
    }
    if (victim == TaskClaim::kNone) continue;  // all queues empty: done
    const std::size_t t = queue[victim].back();
    queue[victim].pop_back();
    remaining[victim] -= cost_s[t];
    TaskClaim c;
    c.task = t;
    c.stolen = true;
    c.peer = victim;
    plan.claims[r].push_back(c);
    ++plan.n_steals;
    const double rtt = 2.0 * control_one_way_s(cluster, r, victim);
    pq.emplace(clk + rtt + cost_s[t], r);
  }
  return plan;
}

}  // namespace fit::ga
