// NXTVAL-style dynamic task claiming over the simulated cluster.
//
// NWChem's four-index transform does not hand each rank a fixed slice
// of the k/alpha work units: ranks claim units dynamically through a
// shared atomic counter (the GA NXTVAL operation), which is what makes
// the triangular alpha >= beta distribution of Sec. 7.3 tolerable in
// production. This header models that mechanism — plus a work-stealing
// alternative — without giving up the simulator's determinism.
//
// The simulator executes the rank bodies of a phase sequentially (or
// strided over host threads), so a *live* shared counter would be
// meaningless: whichever rank body happens to run first would drain
// it. Instead, claiming is split into two steps:
//
//   1. plan_tasks() runs a deterministic discrete-event simulation of
//      the claiming protocol over the ranks' virtual clocks (seeded
//      with per-task cost estimates) and produces one ordered claim
//      list per rank;
//   2. during the phase each rank *replays* its claim list, charging
//      the scheduling traffic (counter round trips, contention stalls,
//      steal control messages) through the cluster's alpha-beta link
//      model alongside the task bodies themselves.
//
// The result is independent of host-thread count and of retry
// replays, and Balance::Static degenerates to exactly the historical
// owner-filtered loops: every task is claimed by its static owner in
// canonical order, with zero scheduling traffic charged.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "runtime/cluster.hpp"

/// \file
/// \brief NXTVAL-style dynamic task claiming: the modeled shared
/// counter, work stealing, and the deterministic claim planner.

namespace fit::ga {

/// Work-distribution strategy for a claimed phase (Sec. 7.3).
enum class Balance {
  /// Plan-time owner map; bit-identical to the historical loops.
  Static,
  /// NXTVAL-style shared fetch-and-add counter on a designated rank;
  /// every claim pays an alpha-beta round trip to the counter host
  /// plus the modeled contention wait while earlier requests are
  /// serviced.
  Counter,
  /// Per-rank queues seeded from the static owner map; a rank that
  /// drains its queue steals one task from the back of the heaviest
  /// surviving queue, paying a control round trip per steal.
  Steal,
};

/// Human-readable strategy name ("static" / "counter" / "steal").
const char* to_string(Balance b);

/// One entry of a rank's claim list.
struct TaskClaim {
  /// Sentinel task id for the terminal empty fetch: in Counter mode a
  /// rank only discovers that the work ran out by performing one more
  /// fetch-and-add, which is charged but executes no task body.
  static constexpr std::size_t kNone = ~static_cast<std::size_t>(0);

  std::size_t task = kNone;  ///< index into the phase's task list
  /// Modeled seconds the claim spent at the counter host (queueing
  /// behind earlier fetch-and-adds plus the service itself). Zero for
  /// static and locally popped claims.
  double wait_s = 0;
  /// Peer rank the claim talked to: the counter home (Counter) or the
  /// steal victim's nominal rank (Steal). Unused for local claims.
  std::size_t peer = 0;
  /// True when the task was taken from another rank's queue.
  bool stolen = false;
};

/// The shared fetch-and-add counter itself: a single 8-byte word
/// hosted on a designated ("home") rank, re-owned through
/// Cluster::live_owner when the home dies (the counter value is
/// reconstructed from the claim log, so the re-own itself is free —
/// only subsequent round trips now target the new host).
class TaskCounter {
 public:
  /// `name` seeds the home-rank choice (a stable FNV-1a hash spreads
  /// the counters of different phases over the machine, like GA
  /// spreads NXTVAL hosts).
  TaskCounter(runtime::Cluster& cluster, const std::string& name);

  /// The designated host rank (ignores liveness).
  std::size_t home() const { return home_; }
  /// The live host: home(), or the next live rank when it died.
  std::size_t owner() const;

  /// One-way alpha-beta time of an 8-byte control message between
  /// `rank` and the live counter host.
  double one_way_s(std::size_t rank) const;
  /// Counter occupancy per fetch-and-add: requests arriving while an
  /// earlier one is serviced queue for this long each.
  double service_s() const;

  /// Execution-time charge for one fetch-and-add whose planned
  /// contention wait is `wait_s`: request + reply control messages
  /// through the link model, and the wait as a clock stall.
  void charge_fetch_add(runtime::RankCtx& ctx, double wait_s) const;

 private:
  runtime::Cluster& cluster_;
  std::size_t home_;
};

/// A phase's complete claim assignment, produced by plan_tasks().
struct TaskPlan {
  /// Strategy the plan was produced for.
  Balance balance = Balance::Static;
  /// Claim lists indexed by *nominal* rank. A rank that dies between
  /// planning and the phase barrier still has its list executed: the
  /// survivor Cluster::live_owner maps it to adopts the orphaned
  /// claims (see schedules_par's claim-execute loops).
  std::vector<std::vector<TaskClaim>> claims;
  /// Number of real tasks planned (terminal kNone claims excluded).
  std::size_t n_tasks = 0;
  std::size_t n_steals = 0;        ///< stolen claims across all ranks
  double total_wait_s = 0;         ///< summed counter queueing time
  double max_wait_s = 0;           ///< worst single-claim wait
  /// Live counter host at planning time (Counter mode only); a
  /// mid-phase death of this rank is what the re-own metric counts.
  std::size_t counter_owner = 0;
};

/// Plan the claim order for one phase. `cost_s[t]` is the modeled
/// seconds task t takes (compute + transfers; used to advance the
/// virtual clocks), `owner[t]` its static owner. Dead ranks are
/// excluded from claiming; tasks statically owned by a dead rank are
/// claimed by the survivors (Counter/Steal) or adopted at execution
/// time (Static). For Balance::Static, `cost_s` may be empty — the
/// plan is the owner map itself.
TaskPlan plan_tasks(const runtime::Cluster& cluster, Balance balance,
                    const TaskCounter& counter,
                    std::span<const double> cost_s,
                    std::span<const std::size_t> owner);

}  // namespace fit::ga
