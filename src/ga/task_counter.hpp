// NXTVAL-style dynamic task claiming over the simulated cluster.
//
// NWChem's four-index transform does not hand each rank a fixed slice
// of the k/alpha work units: ranks claim units dynamically through a
// shared atomic counter (the GA NXTVAL operation), which is what makes
// the triangular alpha >= beta distribution of Sec. 7.3 tolerable in
// production. This header models that mechanism — plus a work-stealing
// alternative and NWChem's production contention mitigations (batched
// dequeue, per-node counters, a counter tree) — without giving up the
// simulator's determinism.
//
// The simulator executes the rank bodies of a phase sequentially (or
// strided over host threads), so a *live* shared counter would be
// meaningless: whichever rank body happens to run first would drain
// it. Instead, claiming is split into two steps:
//
//   1. plan_tasks() runs a deterministic discrete-event simulation of
//      the claiming protocol over the ranks' virtual clocks (seeded
//      with per-task cost estimates) and produces one ordered claim
//      list per rank;
//   2. during the phase each rank *replays* its claim list, charging
//      the scheduling traffic (counter round trips, contention stalls,
//      steal control messages) through the cluster's alpha-beta link
//      model alongside the task bodies themselves.
//
// The result is independent of host-thread count and of retry
// replays, and Balance::Static degenerates to exactly the historical
// owner-filtered loops: every task is claimed by its static owner in
// canonical order, with zero scheduling traffic charged.
//
// Why the flat counter needs mitigation at scale: every fetch-and-add
// serializes at the home rank for service_s() — at 32 ranks on ~17k
// fine-grained claims that queue costs more than the imbalance it
// cures (the measured PR 5 pathology). The mitigations attack the
// serialization from three sides: Batched amortizes one round trip
// over k tasks, PerNode splits the request stream over one counter
// per failure domain (plus inter-node refetch when a node's range
// drains), and Tree caches task ranges in a log-depth hierarchy so
// most fetches are absorbed below the root.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/cluster.hpp"

/// \file
/// \brief NXTVAL-style dynamic task claiming: the modeled shared
/// counter, its contention mitigations (batched dequeue, per-node
/// counters, counter tree), work stealing, and the deterministic
/// claim planner.

namespace fit::ga {

/// Work-distribution strategy for a claimed phase (Sec. 7.3).
enum class Balance {
  /// Plan-time owner map; bit-identical to the historical loops.
  Static,
  /// NXTVAL-style shared fetch-and-add counter on a designated rank;
  /// every claim pays an alpha-beta round trip to the counter host
  /// plus the modeled contention wait while earlier requests are
  /// serviced.
  Counter,
  /// Per-rank queues seeded from the static owner map; a rank that
  /// drains its queue steals one task from the back of the heaviest
  /// surviving queue, paying a control round trip per steal.
  Steal,
  /// The flat counter with batched dequeue: each fetch-and-add claims
  /// up to k consecutive tasks (`FOURINDEX_COUNTER_BATCH`, 0 = auto
  /// from a claims-per-rank rule), amortizing the round trip and the
  /// contention queue over the whole batch.
  Batched,
  /// One counter per failure domain (the `FOURINDEX_RANKS_PER_NODE`
  /// grouping of runtime::DomainMap), each serving a contiguous range
  /// of the task list sized by the domain's live ranks; a rank whose
  /// node's range drains refetches from the fullest remaining node's
  /// counter over the network.
  PerNode,
  /// A log-depth fetch-and-add fan-in: ranks fetch single tasks from
  /// their level-1 tree node, which refills in blocks from its parent
  /// (block size doubling per level), so the root sees exponentially
  /// fewer requests than a flat counter.
  Tree,
  /// Let the planner pick the cheapest mode per phase from the
  /// alpha-beta cost model (core::choose_balance): the claim DES of
  /// every fixed mode is evaluated on the phase's cost estimates and
  /// the one with the least simulated makespan wins.
  Auto,
};

/// Human-readable strategy name ("static", "counter", "steal",
/// "batched", "pernode", "tree", "auto").
const char* to_string(Balance b);

/// Inverse of to_string (exact match); nullopt for anything else.
std::optional<Balance> parse_balance(std::string_view name);

/// `fallback`, unless the FOURINDEX_BALANCE environment variable names
/// a strategy — then that strategy. A set-but-unknown name warns
/// loudly and keeps the fallback, mirroring util::env_size.
Balance balance_from_env(Balance fallback);

/// One entry of a rank's claim list.
struct TaskClaim {
  /// Sentinel task id for the terminal empty fetch: in the counter
  /// modes a rank only discovers that the work ran out by performing
  /// one more fetch-and-add, which is charged but executes no task
  /// body.
  static constexpr std::size_t kNone = ~static_cast<std::size_t>(0);

  std::size_t task = kNone;  ///< index into the phase's task list
  /// Modeled seconds the claim spent beyond its own two one-way
  /// control messages: queueing behind earlier fetch-and-adds, the
  /// service itself, and (Tree) any refill trips up the hierarchy.
  /// Zero for static claims, locally popped queues, and batch tails.
  double wait_s = 0;
  /// Peer rank the claim talked to: the live counter host at planning
  /// time (counter modes) or the steal victim's nominal rank (Steal).
  /// Unused for local claims.
  std::size_t peer = 0;
  /// Nominal home rank of the counter this claim fetched from (kNone
  /// for claims that performed no fetch). The replay re-resolves it
  /// through Cluster::live_owner, which is what lets every counter
  /// mode survive the death of a counter's home between planning and
  /// execution.
  std::size_t home = kNone;
  /// Tree levels ascended by this fetch's refills (Tree mode only;
  /// fed into the sched.tree_hops metric).
  std::uint32_t hops = 0;
  /// True when this claim performed a fetch-and-add (pays the round
  /// trip + wait_s at replay). Batch tails ride their head's fetch.
  bool fetched = false;
  /// True when the task was taken from another rank's queue.
  bool stolen = false;
};

/// The shared fetch-and-add counter: an 8-byte word hosted on a
/// designated ("home") rank, re-owned through Cluster::live_owner when
/// the home dies (the counter value is reconstructed from the claim
/// log, so the re-own itself is free — only subsequent round trips
/// now target the new host). The hierarchical modes derive one home
/// per failure domain / tree node from the same name seed, each
/// re-owned independently.
class TaskCounter {
 public:
  /// `name` seeds the home-rank choice (a stable FNV-1a hash spreads
  /// the counters of different phases over the machine, like GA
  /// spreads NXTVAL hosts).
  TaskCounter(runtime::Cluster& cluster, const std::string& name);

  /// The designated host rank (ignores liveness).
  std::size_t home() const { return home_; }
  /// The live host: home(), or the next live rank when it died.
  std::size_t owner() const;

  /// Nominal home of failure domain `d`'s counter (PerNode mode): a
  /// name-seeded rank *inside* the domain, so intra-node fetches stay
  /// off the network and a node death takes exactly its own counter.
  std::size_t domain_home(std::size_t d) const;
  /// Nominal home of the tree node at `level` >= 1 covering the rank
  /// group starting at `group * 2^level` (Tree mode): a name-seeded
  /// rank inside that group.
  std::size_t tree_home(std::size_t level, std::size_t group) const;

  /// One-way alpha-beta time of an 8-byte control message between
  /// `rank` and the live counter host.
  double one_way_s(std::size_t rank) const;
  /// One-way alpha-beta time of an 8-byte control message between two
  /// arbitrary ranks (the hierarchical modes' hop cost).
  double one_way_s(std::size_t a, std::size_t b) const;
  /// Counter occupancy per fetch-and-add: requests arriving while an
  /// earlier one is serviced queue for this long each.
  double service_s() const;

  /// Execution-time charge for one fetch-and-add against the flat
  /// counter whose planned contention wait is `wait_s`: request +
  /// reply control messages through the link model, and the wait as a
  /// clock stall.
  void charge_fetch_add(runtime::RankCtx& ctx, double wait_s) const;
  /// Same, against the counter whose nominal home is `home` (per-node
  /// and tree counters); the live host is re-resolved through
  /// Cluster::live_owner at charge time.
  void charge_fetch_add(runtime::RankCtx& ctx, std::size_t home,
                        double wait_s) const;

 private:
  runtime::Cluster& cluster_;
  std::size_t home_;
  std::uint64_t name_hash_;
};

/// A phase's complete claim assignment, produced by plan_tasks().
struct TaskPlan {
  /// Strategy the plan was produced for.
  Balance balance = Balance::Static;
  /// Claim lists indexed by *nominal* rank. A rank that dies between
  /// planning and the phase barrier still has its list executed: the
  /// survivor Cluster::live_owner maps it to adopts the orphaned
  /// claims (see schedules_par's claim-execute loops).
  std::vector<std::vector<TaskClaim>> claims;
  /// Number of real tasks planned (terminal kNone claims excluded).
  std::size_t n_tasks = 0;
  std::size_t n_steals = 0;   ///< stolen claims across all ranks
  /// Fetch-and-adds that returned at least one task (terminal empty
  /// fetches excluded); n_tasks / n_fetches is the batch occupancy.
  std::size_t n_fetches = 0;
  std::size_t tree_hops = 0;  ///< refill ascents summed over fetches
  double total_wait_s = 0;    ///< summed counter queueing time
  double max_wait_s = 0;      ///< worst single-claim wait
  /// Virtual-clock completion time of the slowest rank in the claim
  /// DES — the planner's apples-to-apples cost for choosing a mode
  /// (Balance::Auto). Includes task costs, counter round trips,
  /// contention and steal traffic; excludes the phase's non-task work.
  double makespan_s = 0;
  /// Nominal home rank of every counter the plan used (one for the
  /// flat/batched counter, one per domain for PerNode, the level-1
  /// nodes for Tree), with the live owner each resolved to at
  /// planning time in `counter_owners`. The replay compares the two
  /// to count mid-phase re-owns (sched.counter_reowns).
  std::vector<std::size_t> counter_homes;
  std::vector<std::size_t> counter_owners;  ///< parallel to counter_homes
  /// Multi-tenant plans only (see TenantSpec): virtual-clock time at
  /// which each tenant's last task completed. The max/min ratio over
  /// tenants with equal work is the fairness metric the batch/tenancy
  /// ablation gates on.
  std::vector<double> tenant_makespan_s;
  /// Peak in-flight bytes each tenant reached in the claim DES —
  /// by construction never above its TenantSpec quota.
  std::vector<double> tenant_peak_bytes;
  /// Fetches that stalled at the counter because every tenant with
  /// pending work was at its in-flight quota.
  std::size_t quota_stalls = 0;
};

/// Plan the claim order for one phase. `cost_s[t]` is the modeled
/// seconds task t takes (compute + transfers; used to advance the
/// virtual clocks), `owner[t]` its static owner. Dead ranks are
/// excluded from claiming; tasks statically owned by a dead rank are
/// claimed by the survivors (counter modes / Steal) or adopted at
/// execution time (Static). For Balance::Static, `cost_s` may be
/// empty — the plan is the owner map itself (with makespan_s filled
/// in when costs are provided). `batch` is the Batched/Tree dequeue
/// granularity: 0 derives k from the claims-per-rank rule
/// (~8 fetches per live rank, clamped to [1, 64]). Balance::Auto is
/// resolved by the caller (core::choose_balance), not here.
TaskPlan plan_tasks(const runtime::Cluster& cluster, Balance balance,
                    const TaskCounter& counter,
                    std::span<const double> cost_s,
                    std::span<const std::size_t> owner,
                    std::size_t batch = 0);

/// Multi-tenant annotation of a phase's task list: which tenant each
/// task belongs to, how much global memory the task holds while it is
/// in flight, and how much in-flight memory each tenant may hold at
/// once. The claim DES enforces the quotas in *virtual time* — a
/// fetch whose every eligible tenant is at its cap stalls at the
/// counter until an earlier task of some tenant completes — so the
/// produced claim order can never drive a tenant past its cap at
/// replay either (replay executes the same order).
struct TenantSpec {
  /// Tenant id of every task, parallel to `owner`; ids are dense in
  /// [0, n_tenants).
  std::span<const std::size_t> tenant;
  /// Global-memory bytes task t holds from its claim until its
  /// modeled completion. Empty = every task holds zero (quotas then
  /// never bind and only the fairness ordering applies).
  std::span<const double> task_bytes;
  /// In-flight byte cap per tenant, size n_tenants. Empty = no caps.
  /// Every cap must admit the largest single task of its tenant —
  /// otherwise that task could never be granted.
  std::span<const double> quota_bytes;
  /// Number of tenants (claim ordering round-robins over these).
  std::size_t n_tenants = 1;
};

/// Multi-tenant claim planning: like plan_tasks, but the counter
/// grants tasks in deficit-round-robin order across tenants instead
/// of global canonical order. Each tenant keeps its own tasks in
/// canonical order (so per-tenant replay stays deterministic and
/// Real-mode results are bit-identical to running the tenant alone);
/// *between* tenants, a deficit counter replenished by the mean task
/// cost each round decides who is served, so a tenant issuing many
/// cheap tasks cannot starve one issuing few expensive ones. Quota
/// stalls are charged as counter wait. Only the flat-counter family
/// (Counter / Batched) claims through a single serialized dispenser
/// where a cross-tenant order exists; other modes are rejected.
/// With one tenant and no quotas the plan is bit-identical to the
/// untenanted plan_tasks. TaskPlan::tenant_makespan_s /
/// tenant_peak_bytes / quota_stalls report the per-tenant outcome.
TaskPlan plan_tasks(const runtime::Cluster& cluster, Balance balance,
                    const TaskCounter& counter,
                    std::span<const double> cost_s,
                    std::span<const std::size_t> owner,
                    const TenantSpec& tenants, std::size_t batch = 0);

/// The claims-per-rank rule behind `batch == 0`: enough tasks per
/// fetch that every live rank performs about eight fetches, clamped
/// to [1, 64].
std::size_t auto_batch(std::size_t n_tasks, std::size_t live_ranks);

}  // namespace fit::ga
