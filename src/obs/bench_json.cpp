#include "obs/bench_json.hpp"

#include <cmath>
#include <cstdlib>
#include <fstream>

#include "util/logging.hpp"

namespace fit::obs {

BenchReport::BenchReport(std::string bench_name)
    : name_(std::move(bench_name)) {
  FIT_REQUIRE(!name_.empty(), "bench report needs a name");
}

void BenchReport::add_table(const std::string& title,
                            const TextTable& table) {
  json::Value t = json::Value::object();
  t["title"] = title;
  json::Value cols = json::Value::array();
  for (const auto& c : table.header()) cols.push_back(c);
  t["columns"] = std::move(cols);
  json::Value rows = json::Value::array();
  for (const auto& row : table.rows()) {
    json::Value r = json::Value::array();
    for (const auto& cell : row) r.push_back(cell);
    rows.push_back(std::move(r));
  }
  t["rows"] = std::move(rows);
  tables_.push_back(std::move(t));
}

void BenchReport::add_scalar(const std::string& name, double value) {
  scalars_[name] = value;
}

void BenchReport::add_note(const std::string& text) {
  notes_.push_back(text);
}

void BenchReport::add_metrics(const std::string& label,
                              const MetricsRegistry& reg) {
  metrics_[label] = reg.to_json(/*per_rank_views=*/false);
}

json::Value BenchReport::to_json() const {
  json::Value doc = json::Value::object();
  doc["schema"] = "fourindex.bench/1";
  doc["bench"] = name_;
  doc["tables"] = tables_;
  doc["scalars"] = scalars_;
  doc["notes"] = notes_;
  doc["metrics"] = metrics_;
  return doc;
}

std::string BenchReport::write() const {
  const char* toggle = std::getenv("FOURINDEX_BENCH_JSON");
  if (toggle && std::string(toggle) == "0") return "";
  std::string path = name_ + ".bench.json";
  if (const char* dir = std::getenv("FOURINDEX_BENCH_JSON_DIR")) {
    if (*dir) path = std::string(dir) + "/" + path;
  }
  std::ofstream out(path);
  if (!out) {
    FIT_LOG_WARN("cannot write bench JSON to '" << path << "'");
    return "";
  }
  out << to_json().dump(2);
  if (!out.good()) {
    FIT_LOG_WARN("short write of bench JSON to '" << path << "'");
    return "";
  }
  return path;
}

bool validate_bench_json(const json::Value& doc, std::string* why) {
  auto fail = [&](const std::string& msg) {
    if (why) *why = msg;
    return false;
  };
  if (!doc.is_object()) return fail("document is not an object");
  const json::Value* schema = doc.find("schema");
  if (!schema || !schema->is_string())
    return fail("missing string key 'schema'");
  if (schema->as_string() != "fourindex.bench/1")
    return fail("unknown schema '" + schema->as_string() + "'");
  const json::Value* bench = doc.find("bench");
  if (!bench || !bench->is_string() || bench->as_string().empty())
    return fail("missing non-empty string key 'bench'");
  const json::Value* tables = doc.find("tables");
  if (!tables || !tables->is_array()) return fail("missing array 'tables'");
  for (std::size_t i = 0; i < tables->size(); ++i) {
    const json::Value& t = tables->at(i);
    const std::string at = "tables[" + std::to_string(i) + "]";
    if (!t.is_object()) return fail(at + " is not an object");
    const json::Value* title = t.find("title");
    if (!title || !title->is_string())
      return fail(at + " missing string 'title'");
    const json::Value* cols = t.find("columns");
    if (!cols || !cols->is_array() || cols->size() == 0)
      return fail(at + " missing non-empty array 'columns'");
    for (std::size_t c = 0; c < cols->size(); ++c)
      if (!cols->at(c).is_string())
        return fail(at + ".columns holds a non-string");
    const json::Value* rows = t.find("rows");
    if (!rows || !rows->is_array()) return fail(at + " missing array 'rows'");
    for (std::size_t r = 0; r < rows->size(); ++r) {
      const json::Value& row = rows->at(r);
      if (!row.is_array() || row.size() != cols->size())
        return fail(at + ".rows[" + std::to_string(r) +
                    "] does not match the column count");
      for (std::size_t c = 0; c < row.size(); ++c)
        if (!row.at(c).is_string())
          return fail(at + ".rows holds a non-string cell");
    }
  }
  const json::Value* scalars = doc.find("scalars");
  if (!scalars || !scalars->is_object())
    return fail("missing object 'scalars'");
  for (std::size_t i = 0; i < scalars->size(); ++i) {
    const auto& [sname, sval] = scalars->member(i);
    if (!sval.is_number())
      return fail("scalar '" + sname + "' is not a number");
    // NaN/inf would serialize as null and sail through jq's `>=`
    // gates (null sorts before every number); reject at the source.
    if (!std::isfinite(sval.as_number()))
      return fail("scalar '" + sname + "' is not finite");
  }
  const json::Value* notes = doc.find("notes");
  if (!notes || !notes->is_array()) return fail("missing array 'notes'");
  for (std::size_t i = 0; i < notes->size(); ++i)
    if (!notes->at(i).is_string()) return fail("notes holds a non-string");
  const json::Value* metrics = doc.find("metrics");
  if (!metrics || !metrics->is_object())
    return fail("missing object 'metrics'");
  if (why) why->clear();
  return true;
}

}  // namespace fit::obs
