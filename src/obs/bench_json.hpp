// Machine-readable benchmark results: every bench binary routes its
// output through a BenchReport, which emits one JSON document with the
// stable schema below — the artifact CI archives and the BENCH_*.json
// trajectory tracking consumes.
//
// Schema "fourindex.bench/1" (all keys always present):
//   {
//     "schema":  "fourindex.bench/1",
//     "bench":   "<binary name>",
//     "tables":  [ {"title": str, "columns": [str..],
//                   "rows": [[str..]..]} .. ],
//     "scalars": { "<name>": number, .. },
//     "notes":   [ str.. ],
//     "metrics": { .. MetricsRegistry::to_json() snapshots keyed by
//                  label, possibly empty .. }
//   }
// Tables mirror the human-readable TextTables cell-for-cell (cells
// stay strings — they carry formatted units); scalars carry the raw
// numbers trajectory tracking should plot.
//
// Scalar conventions the CI gates rely on (still schema /1 — these are
// additive):
//   *.result_checksum   32-bit FNV-1a fold of the raw result bytes,
//                       exactly representable as a JSON number; equal
//                       checksums across runs mean bit-identical
//                       results (the isa-sweep job compares them
//                       across forced FOURINDEX_CPU levels);
//   gemm.isa            kernel ISA level the run actually executed
//                       (0 scalar, 1 sse2, 2 avx, 3 avx2) — see
//                       blas/dispatch.hpp;
//   gemm.isa_detected   the cpuid-detected ceiling on this host;
//   gemm.roofline_fraction
//                       measured GFLOP/s over the roofline compute
//                       peak for the active level (blas/tune.hpp).
//
// Fault/recovery scalars (emitted by the fault-injection benches; the
// chaos-soak CI gates key on them):
//   checkpoint.writes / checkpoint.bytes
//                       checkpoint tile writes performed and client
//                       bytes charged to the simulated disk;
//   checkpoint.verify_failures
//                       stored tile copies that failed checksum
//                       verification during restores;
//   checkpoint.zero_fills
//                       tiles restored as zeros because every kept
//                       generation was corrupt (catastrophic loss);
//   checkpoint.io_retries / checkpoint.io_faults
//                       injected checkpoint-I/O faults absorbed by the
//                       bounded retry+backoff path;
//   checkpoint.gc_bytes bytes of expired generations garbage-collected
//                       by the multi-epoch store;
//   recovery.fallback_epochs
//                       generations the restore walked back past the
//                       newest one (0 = newest epoch always intact;
//                       >0 = older verified epochs served the data);
//   fault.domain_kills  whole failure domains (nodes) killed.
//
// Output location, in precedence order:
//   FOURINDEX_BENCH_JSON=0        disables emission entirely;
//   FOURINDEX_BENCH_JSON_DIR=DIR  write DIR/<bench>.bench.json;
//   otherwise                     write ./<bench>.bench.json.
#pragma once

#include <string>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "util/format.hpp"

namespace fit::obs {

class BenchReport {
 public:
  explicit BenchReport(std::string bench_name);

  void add_table(const std::string& title, const TextTable& table);
  void add_scalar(const std::string& name, double value);
  void add_note(const std::string& text);
  /// Attach a registry snapshot under `label` (per-rank views are
  /// dropped — aggregate sums/maxes only, to keep documents small).
  void add_metrics(const std::string& label, const MetricsRegistry& reg);

  const std::string& bench_name() const { return name_; }

  /// The full document in the stable schema.
  json::Value to_json() const;

  /// Write the document per the environment-variable policy above.
  /// Returns the path written, or "" when emission is disabled or the
  /// write failed (a warning is logged; benches never fail on this).
  std::string write() const;

 private:
  std::string name_;
  json::Value tables_ = json::Value::array();
  json::Value scalars_ = json::Value::object();
  json::Value notes_ = json::Value::array();
  json::Value metrics_ = json::Value::object();
};

/// Structural validation of a bench document against the
/// "fourindex.bench/1" schema. Returns true when valid; otherwise
/// false with a diagnostic in `*why` (when non-null).
bool validate_bench_json(const json::Value& doc, std::string* why = nullptr);

}  // namespace fit::obs
