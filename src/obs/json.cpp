#include "obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace fit::obs::json {

bool Value::as_bool() const {
  FIT_REQUIRE(kind_ == Kind::Bool, "JSON value is not a bool");
  return bool_;
}

double Value::as_number() const {
  FIT_REQUIRE(kind_ == Kind::Number, "JSON value is not a number");
  return num_;
}

const std::string& Value::as_string() const {
  FIT_REQUIRE(kind_ == Kind::String, "JSON value is not a string");
  return str_;
}

void Value::push_back(Value v) {
  if (kind_ == Kind::Null) kind_ = Kind::Array;
  FIT_REQUIRE(kind_ == Kind::Array, "push_back on a non-array JSON value");
  arr_.push_back(std::move(v));
}

std::size_t Value::size() const {
  if (kind_ == Kind::Array) return arr_.size();
  if (kind_ == Kind::Object) return obj_.size();
  return 0;
}

const Value& Value::at(std::size_t i) const {
  FIT_REQUIRE(kind_ == Kind::Array, "at() on a non-array JSON value");
  FIT_REQUIRE(i < arr_.size(), "JSON array index out of range");
  return arr_[i];
}

Value& Value::operator[](std::string_view key) {
  if (kind_ == Kind::Null) kind_ = Kind::Object;
  FIT_REQUIRE(kind_ == Kind::Object, "operator[] on a non-object JSON value");
  for (auto& [k, v] : obj_)
    if (k == key) return v;
  obj_.emplace_back(std::string(key), Value());
  return obj_.back().second;
}

const Value* Value::find(std::string_view key) const {
  if (kind_ != Kind::Object) return nullptr;
  for (const auto& [k, v] : obj_)
    if (k == key) return &v;
  return nullptr;
}

const std::pair<std::string, Value>& Value::member(std::size_t i) const {
  FIT_REQUIRE(kind_ == Kind::Object, "member() on a non-object JSON value");
  FIT_REQUIRE(i < obj_.size(), "JSON object index out of range");
  return obj_[i];
}

std::string quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
  return out;
}

namespace {

std::string number_repr(double v) {
  if (!std::isfinite(v)) return "null";
  // Integers up to 2^53 print exactly without an exponent; everything
  // else uses shortest-ish %.17g which round-trips doubles.
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

void Value::write(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  auto newline = [&](int d) {
    if (!pretty) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (kind_) {
    case Kind::Null: out += "null"; break;
    case Kind::Bool: out += bool_ ? "true" : "false"; break;
    case Kind::Number: out += number_repr(num_); break;
    case Kind::String: out += quote(str_); break;
    case Kind::Array:
      if (arr_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i) out += ',';
        newline(depth + 1);
        arr_[i].write(out, indent, depth + 1);
      }
      newline(depth);
      out += ']';
      break;
    case Kind::Object:
      if (obj_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i) out += ',';
        newline(depth + 1);
        out += quote(obj_[i].first);
        out += pretty ? ": " : ":";
        obj_[i].second.write(out, indent, depth + 1);
      }
      newline(depth);
      out += '}';
      break;
  }
}

std::string Value::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  if (indent >= 0) out += '\n';
  return out;
}

// ---- Parser ----------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value document() {
    skip_ws();
    Value v = value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw ParseError("JSON parse error at offset " + std::to_string(pos_) +
                     ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value value(int depth) {
    if (depth > 256) fail("nesting too deep");
    switch (peek()) {
      case '{': return object(depth);
      case '[': return array(depth);
      case '"': return Value(string());
      case 't':
        if (consume_literal("true")) return Value(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Value(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Value();
        fail("invalid literal");
      default: return number();
    }
  }

  Value object(int depth) {
    expect('{');
    Value v = Value::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      if (peek() != '"') fail("expected object key");
      std::string key = string();
      skip_ws();
      expect(':');
      skip_ws();
      v[key] = value(depth + 1);
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value array(int depth) {
    expect('[');
    Value v = Value::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      v.push_back(value(depth + 1));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("unescaped control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              cp |= static_cast<unsigned>(h - 'A' + 10);
            else fail("invalid \\u escape");
          }
          // Encode the code point as UTF-8 (surrogate pairs are kept
          // as-is per half; the emitter never produces them).
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default: fail("invalid escape character");
      }
    }
  }

  Value number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!std::isdigit(static_cast<unsigned char>(peek())))
      fail("invalid number");
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek())))
        fail("digit required after decimal point");
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek())))
        fail("digit required in exponent");
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    return Value(std::strtod(token.c_str(), nullptr));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).document(); }

}  // namespace fit::obs::json
