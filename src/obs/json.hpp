// Minimal JSON document model for the observability layer: an ordered
// value type with a writer (stable key order — insertion order — so
// emitted documents diff cleanly across runs) and a strict parser
// (used by tests to validate that every emitted document is
// well-formed, and by tools/validate_bench_json for CI).
//
// Deliberately small: objects/arrays/strings/numbers/bools/null, UTF-8
// passed through verbatim, no comments, no trailing commas. Non-finite
// numbers serialize as null (JSON has no NaN/Inf).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace fit::obs::json {

/// Malformed document given to parse().
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

class Value {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Value() = default;                       // null
  Value(bool b) : kind_(Kind::Bool), bool_(b) {}
  Value(double v) : kind_(Kind::Number), num_(v) {}
  Value(int v) : kind_(Kind::Number), num_(v) {}
  Value(std::size_t v)
      : kind_(Kind::Number), num_(static_cast<double>(v)) {}
  Value(const char* s) : kind_(Kind::String), str_(s) {}
  Value(std::string s) : kind_(Kind::String), str_(std::move(s)) {}

  static Value array() {
    Value v;
    v.kind_ = Kind::Array;
    return v;
  }
  static Value object() {
    Value v;
    v.kind_ = Kind::Object;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::Null; }
  bool is_bool() const { return kind_ == Kind::Bool; }
  bool is_number() const { return kind_ == Kind::Number; }
  bool is_string() const { return kind_ == Kind::String; }
  bool is_array() const { return kind_ == Kind::Array; }
  bool is_object() const { return kind_ == Kind::Object; }

  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;

  /// Array access. push_back() converts a null value into an array.
  void push_back(Value v);
  std::size_t size() const;  // array length or object member count
  const Value& at(std::size_t i) const;

  /// Object access. operator[] converts a null value into an object
  /// and inserts the key if absent (insertion order is preserved).
  Value& operator[](std::string_view key);
  /// Member lookup; nullptr when absent or not an object.
  const Value* find(std::string_view key) const;
  const std::pair<std::string, Value>& member(std::size_t i) const;

  /// Serialize. indent < 0 emits the compact single-line form;
  /// indent >= 0 pretty-prints with that many spaces per level.
  std::string dump(int indent = -1) const;

 private:
  void write(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  std::vector<Value> arr_;
  std::vector<std::pair<std::string, Value>> obj_;
};

/// Parse a complete JSON document (trailing garbage is an error).
/// Throws ParseError on malformed input.
Value parse(std::string_view text);

/// Escape a string for embedding in a JSON document (adds the quotes).
std::string quote(std::string_view s);

}  // namespace fit::obs::json
