#include "obs/metrics.hpp"

#include <algorithm>

namespace fit::obs {

namespace {

const char* kind_name(MetricKind k) {
  switch (k) {
    case MetricKind::Counter: return "counter";
    case MetricKind::Gauge: return "gauge";
    case MetricKind::Histogram: return "histogram";
  }
  return "?";
}

}  // namespace

MetricsRegistry::MetricsRegistry(std::size_t n_ranks)
    : n_ranks_(std::max<std::size_t>(1, n_ranks)) {}

MetricsRegistry::Id MetricsRegistry::get_or_create(std::string_view name,
                                                   MetricKind kind) {
  FIT_REQUIRE(!name.empty(), "metric name must be non-empty");
  std::lock_guard<std::mutex> lock(mutex_);
  for (Id i = 0; i < metrics_.size(); ++i) {
    if (metrics_[i].name == name) {
      FIT_REQUIRE(metrics_[i].kind == kind,
                  "metric '" << name << "' already registered as "
                             << kind_name(metrics_[i].kind)
                             << ", requested as " << kind_name(kind));
      return i;
    }
  }
  Metric m;
  m.name = std::string(name);
  m.kind = kind;
  if (kind != MetricKind::Histogram) m.per_rank.assign(n_ranks_, 0.0);
  metrics_.push_back(std::move(m));
  return metrics_.size() - 1;
}

MetricsRegistry::Id MetricsRegistry::counter(std::string_view name) {
  return get_or_create(name, MetricKind::Counter);
}

MetricsRegistry::Id MetricsRegistry::gauge(std::string_view name) {
  return get_or_create(name, MetricKind::Gauge);
}

MetricsRegistry::Id MetricsRegistry::histogram(std::string_view name) {
  return get_or_create(name, MetricKind::Histogram);
}

void MetricsRegistry::add(Id id, std::size_t rank, double v) {
  std::lock_guard<std::mutex> lock(mutex_);
  FIT_REQUIRE(id < metrics_.size(), "unknown metric id");
  Metric& m = metrics_[id];
  FIT_REQUIRE(m.kind == MetricKind::Counter,
              "add() on non-counter metric '" << m.name << "'");
  FIT_REQUIRE(rank < n_ranks_, "metric rank out of range");
  m.per_rank[rank] += v;
}

void MetricsRegistry::set(Id id, std::size_t rank, double v) {
  std::lock_guard<std::mutex> lock(mutex_);
  FIT_REQUIRE(id < metrics_.size(), "unknown metric id");
  Metric& m = metrics_[id];
  FIT_REQUIRE(m.kind == MetricKind::Gauge,
              "set() on non-gauge metric '" << m.name << "'");
  FIT_REQUIRE(rank < n_ranks_, "metric rank out of range");
  m.per_rank[rank] = v;
}

void MetricsRegistry::observe(Id id, double v) {
  std::lock_guard<std::mutex> lock(mutex_);
  FIT_REQUIRE(id < metrics_.size(), "unknown metric id");
  Metric& m = metrics_[id];
  FIT_REQUIRE(m.kind == MetricKind::Histogram,
              "observe() on non-histogram metric '" << m.name << "'");
  m.hist.add(v);
}

std::size_t MetricsRegistry::n_metrics() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return metrics_.size();
}

const MetricsRegistry::Metric& MetricsRegistry::named(
    std::string_view name) const {
  for (const auto& m : metrics_)
    if (m.name == name) return m;
  FIT_REQUIRE(false, "unknown metric '" << name << "'");
  __builtin_unreachable();
}

bool MetricsRegistry::contains(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& m : metrics_)
    if (m.name == name) return true;
  return false;
}

MetricKind MetricsRegistry::kind(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return named(name).kind;
}

double MetricsRegistry::sum(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Metric& m = named(name);
  FIT_REQUIRE(m.kind != MetricKind::Histogram,
              "sum() of histogram '" << m.name << "' — use hist()");
  double s = 0;
  for (double v : m.per_rank) s += v;
  return s;
}

double MetricsRegistry::max(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Metric& m = named(name);
  FIT_REQUIRE(m.kind != MetricKind::Histogram,
              "max() of histogram '" << m.name << "' — use hist()");
  double mx = 0;
  for (double v : m.per_rank) mx = std::max(mx, v);
  return mx;
}

double MetricsRegistry::value(std::string_view name,
                              std::size_t rank) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Metric& m = named(name);
  FIT_REQUIRE(m.kind != MetricKind::Histogram,
              "value() of histogram '" << m.name << "' — use hist()");
  FIT_REQUIRE(rank < n_ranks_, "metric rank out of range");
  return m.per_rank[rank];
}

RunningStats MetricsRegistry::hist(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Metric& m = named(name);
  FIT_REQUIRE(m.kind == MetricKind::Histogram,
              "hist() of non-histogram '" << m.name << "'");
  return m.hist;
}

std::vector<std::string> MetricsRegistry::names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(metrics_.size());
  for (const auto& m : metrics_) out.push_back(m.name);
  return out;
}

json::Value MetricsRegistry::to_json(bool per_rank_views) const {
  std::lock_guard<std::mutex> lock(mutex_);
  json::Value out = json::Value::object();
  for (const auto& m : metrics_) {
    json::Value& e = out[m.name];
    e["kind"] = kind_name(m.kind);
    if (m.kind == MetricKind::Histogram) {
      e["count"] = static_cast<double>(m.hist.count());
      e["sum"] = m.hist.sum();
      e["min"] = m.hist.min();
      e["max"] = m.hist.max();
      e["mean"] = m.hist.mean();
      e["stddev"] = m.hist.stddev();
    } else {
      double s = 0, mx = 0;
      for (double v : m.per_rank) {
        s += v;
        mx = std::max(mx, v);
      }
      e["sum"] = s;
      e["max"] = mx;
      if (per_rank_views) {
        json::Value ranks = json::Value::array();
        for (double v : m.per_rank) ranks.push_back(v);
        e["per_rank"] = std::move(ranks);
      }
    }
  }
  return out;
}

}  // namespace fit::obs
