// MetricsRegistry: the single place every subsystem reports its
// quantitative state into — communication bytes and message counts
// from the GA layer, flop/integral charges from the schedules, memory
// and disk high-water marks from the cluster, cache-simulator I/O from
// trace::MemorySim.
//
// A metric is a named counter, gauge, or histogram:
//   counter    monotone per-rank accumulator (bytes moved, flops, ...);
//              aggregate views: sum / max / per-rank value;
//   gauge      last-written per-rank value (memory in use, ...);
//   histogram  streaming distribution (RunningStats: count, min, max,
//              mean, stddev) — per-phase makespans, imbalance, ...
//
// All operations are thread-safe (one internal mutex). This is cheap
// because writers batch: RankCtx buffers its charges locally and the
// cluster merges them into the registry once per rank per phase, so
// the lock is taken a handful of times per phase, never per element.
#pragma once

#include <cstddef>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"
#include "util/stats.hpp"

namespace fit::obs {

enum class MetricKind { Counter, Gauge, Histogram };

class MetricsRegistry {
 public:
  /// `n_ranks` fixes the width of every per-rank metric created in
  /// this registry (1 for single-address-space users).
  explicit MetricsRegistry(std::size_t n_ranks = 1);

  using Id = std::size_t;

  /// Get-or-create. Re-requesting a name with a different kind is a
  /// precondition error.
  Id counter(std::string_view name);
  Id gauge(std::string_view name);
  Id histogram(std::string_view name);

  /// Counter accumulate / gauge set for one rank's slot.
  void add(Id id, std::size_t rank, double v);
  void set(Id id, std::size_t rank, double v);
  /// Histogram observation (global, not per rank).
  void observe(Id id, double v);

  std::size_t n_ranks() const { return n_ranks_; }
  std::size_t n_metrics() const;
  bool contains(std::string_view name) const;
  MetricKind kind(std::string_view name) const;

  /// Aggregate views over the per-rank slots.
  double sum(std::string_view name) const;
  double max(std::string_view name) const;
  double value(std::string_view name, std::size_t rank) const;
  /// Snapshot of one histogram.
  RunningStats hist(std::string_view name) const;

  /// Names in creation order.
  std::vector<std::string> names() const;

  /// Snapshot of the whole registry:
  ///   { "<name>": {"kind": "counter", "sum": s, "max": m,
  ///                "per_rank": [..]}           (counter/gauge)
  ///     "<name>": {"kind": "histogram", "count": n, "min": .., ...} }
  /// `per_rank` is included only when `per_rank_views` is set (it is
  /// n_ranks values per metric — large for big simulated clusters).
  json::Value to_json(bool per_rank_views = true) const;

 private:
  struct Metric {
    std::string name;
    MetricKind kind;
    std::vector<double> per_rank;  // counter/gauge slots
    RunningStats hist;             // histogram state
  };

  Id get_or_create(std::string_view name, MetricKind kind);
  const Metric& named(std::string_view name) const;

  std::size_t n_ranks_;
  mutable std::mutex mutex_;
  std::vector<Metric> metrics_;
};

}  // namespace fit::obs
