#include "obs/timeline.hpp"

#include <algorithm>
#include <fstream>

#include "util/error.hpp"
#include "util/logging.hpp"

namespace fit::obs {

std::size_t Timeline::intern(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < names_.size(); ++i)
    if (names_[i] == name) return i;
  names_.emplace_back(name);
  return names_.size() - 1;
}

void Timeline::add_span(std::size_t name_id, std::size_t track,
                        double t_start, double duration) {
  std::lock_guard<std::mutex> lock(mutex_);
  FIT_REQUIRE(name_id < names_.size(), "unknown timeline name id");
  FIT_REQUIRE(duration >= 0, "negative span duration");
  spans_.push_back({name_id, track, t_start, duration});
  max_track_ = std::max(max_track_, track);
}

void Timeline::add_instant(std::size_t name_id, std::size_t track,
                           double t) {
  std::lock_guard<std::mutex> lock(mutex_);
  FIT_REQUIRE(name_id < names_.size(), "unknown timeline name id");
  instants_.push_back({name_id, track, t});
  max_track_ = std::max(max_track_, track);
}

std::size_t Timeline::n_spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_.size();
}

std::size_t Timeline::n_instants() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return instants_.size();
}

std::string Timeline::name(std::size_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  FIT_REQUIRE(id < names_.size(), "unknown timeline name id");
  return names_[id];
}

json::Value Timeline::to_chrome_json(const std::string& process_name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  constexpr double kMicro = 1e6;  // trace timestamps are microseconds
  json::Value events = json::Value::array();
  {
    json::Value meta = json::Value::object();
    meta["name"] = "process_name";
    meta["ph"] = "M";
    meta["pid"] = 0;
    meta["args"]["name"] = process_name;
    events.push_back(std::move(meta));
  }
  for (std::size_t t = 0; t <= max_track_; ++t) {
    json::Value meta = json::Value::object();
    meta["name"] = "thread_name";
    meta["ph"] = "M";
    meta["pid"] = 0;
    meta["tid"] = t;
    meta["args"]["name"] = "rank " + std::to_string(t);
    events.push_back(std::move(meta));
  }
  for (const Span& s : spans_) {
    json::Value e = json::Value::object();
    e["name"] = names_[s.name_id];
    e["ph"] = "X";
    e["pid"] = 0;
    e["tid"] = s.track;
    e["ts"] = s.t_start * kMicro;
    e["dur"] = s.duration * kMicro;
    events.push_back(std::move(e));
  }
  for (const Instant& i : instants_) {
    json::Value e = json::Value::object();
    e["name"] = names_[i.name_id];
    e["ph"] = "i";
    e["s"] = "t";  // scope: thread
    e["pid"] = 0;
    e["tid"] = i.track;
    e["ts"] = i.t * kMicro;
    events.push_back(std::move(e));
  }
  json::Value doc = json::Value::object();
  doc["traceEvents"] = std::move(events);
  doc["displayTimeUnit"] = "ms";
  return doc;
}

bool Timeline::write_chrome_trace(const std::string& path,
                                  const std::string& process_name) const {
  std::ofstream out(path);
  if (!out) {
    FIT_LOG_WARN("cannot write chrome trace to '" << path << "'");
    return false;
  }
  out << to_chrome_json(process_name).dump();
  out << '\n';
  return out.good();
}

}  // namespace fit::obs
