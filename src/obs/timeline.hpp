// Phase timeline recorder: per-track (simulated rank) spans plus
// instant events, exported as Chrome trace-event JSON — load the file
// in chrome://tracing or https://ui.perfetto.dev to inspect the BSP
// execution visually. Load imbalance (e.g. the triangular alpha >=
// beta distribution of the paper's Sec. 7.3) shows up as ragged span
// ends before each barrier.
//
// Times are simulated seconds; the exporter converts to the trace
// format's microseconds. Span names are interned (one string per
// distinct phase label) so recording thousands of ranks stays cheap.
#pragma once

#include <cstddef>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"

namespace fit::obs {

/// Thread-safe: recording and export take one internal mutex
/// (recording happens once per rank per phase — never hot).
class Timeline {
 public:
  /// Intern a span/instant name; returns a dense id.
  std::size_t intern(std::string_view name);

  /// A completed span on `track` starting at simulated time `t_start`
  /// (seconds) lasting `duration` seconds.
  void add_span(std::size_t name_id, std::size_t track, double t_start,
                double duration);

  /// A point event (OOM, spill, ...) on `track` at time `t`.
  void add_instant(std::size_t name_id, std::size_t track, double t);

  std::size_t n_spans() const;
  std::size_t n_instants() const;
  std::string name(std::size_t id) const;

  /// Chrome trace-event document: {"traceEvents": [...], ...}. One
  /// "X" (complete) event per span with pid 0 / tid = track, one "i"
  /// event per instant, plus process/thread metadata naming the
  /// tracks "rank N".
  json::Value to_chrome_json(const std::string& process_name) const;

  /// Serialize to_chrome_json() to `path`. Returns false (and logs a
  /// warning) if the file cannot be written.
  bool write_chrome_trace(const std::string& path,
                          const std::string& process_name) const;

 private:
  struct Span {
    std::size_t name_id;
    std::size_t track;
    double t_start;
    double duration;
  };
  struct Instant {
    std::size_t name_id;
    std::size_t track;
    double t;
  };

  mutable std::mutex mutex_;
  std::vector<std::string> names_;
  std::vector<Span> spans_;
  std::vector<Instant> instants_;
  std::size_t max_track_ = 0;
};

}  // namespace fit::obs
