#include "pebble/cdag.hpp"

namespace fit::pebble {

Cdag::Cdag(int n) : n_(n), preds_(static_cast<std::size_t>(n), 0) {
  FIT_REQUIRE(n >= 1 && n <= kMaxVertices,
              "CDAG supports 1.." << kMaxVertices << " vertices, got " << n);
}

void Cdag::add_edge(int u, int v) {
  FIT_REQUIRE(u >= 0 && v >= 0 && u < n_ && v < n_, "edge endpoint range");
  FIT_REQUIRE(u < v, "vertex numbering must be topological (u < v)");
  preds_[v] |= static_cast<VertexSet>(1u << u);
}

void Cdag::mark_output(int v) {
  FIT_REQUIRE(v >= 0 && v < n_, "output vertex range");
  outputs_ |= static_cast<VertexSet>(1u << v);
}

VertexSet Cdag::inputs() const {
  VertexSet in = 0;
  for (int v = 0; v < n_; ++v)
    if (preds_[v] == 0) in |= static_cast<VertexSet>(1u << v);
  return in;
}

VertexSet Cdag::operations() const {
  return static_cast<VertexSet>(((1u << n_) - 1u) & ~inputs());
}

bool Cdag::has_consumer(int v) const {
  const VertexSet bit = static_cast<VertexSet>(1u << v);
  for (int w = v + 1; w < n_; ++w)
    if (preds_[w] & bit) return true;
  return false;
}

FusedCdag fuse(const Cdag& producer, const std::vector<int>& producer_outputs,
               const Cdag& consumer,
               const std::vector<int>& consumer_inputs) {
  FIT_REQUIRE(producer_outputs.size() == consumer_inputs.size(),
              "output/input merge lists must pair up");
  for (int v : producer_outputs)
    FIT_REQUIRE(!producer.has_consumer(v),
                "Fusion Lemma requires producer outputs unused inside the "
                "producer (vertex " << v << " has a consumer)");
  for (int v : consumer_inputs)
    FIT_REQUIRE(consumer.preds(v) == 0,
                "merged consumer vertex " << v << " must be an input");

  // Fused vertex order: all producer vertices keep their ids (already
  // topological); consumer non-merged vertices follow.
  const int np = producer.n_vertices();
  const int nc = consumer.n_vertices();
  std::vector<int> cmap(static_cast<std::size_t>(nc), -1);
  for (std::size_t k = 0; k < consumer_inputs.size(); ++k)
    cmap[static_cast<std::size_t>(consumer_inputs[k])] = producer_outputs[k];
  int next = np;
  for (int v = 0; v < nc; ++v)
    if (cmap[static_cast<std::size_t>(v)] < 0)
      cmap[static_cast<std::size_t>(v)] = next++;

  FusedCdag fused{Cdag(next), {}, cmap};
  fused.producer_map.resize(static_cast<std::size_t>(np));
  for (int v = 0; v < np; ++v) {
    fused.producer_map[static_cast<std::size_t>(v)] = v;
    for (int u = 0; u < v; ++u)
      if (producer.preds(v) & (1u << u)) fused.graph.add_edge(u, v);
  }
  for (int v = 0; v < nc; ++v)
    for (int u = 0; u < v; ++u)
      if (consumer.preds(v) & (1u << u)) {
        const int fu = cmap[static_cast<std::size_t>(u)];
        const int fv = cmap[static_cast<std::size_t>(v)];
        FIT_CHECK(fu < fv, "fused edge order broken");
        fused.graph.add_edge(fu, fv);
      }
  // Outputs of the fused computation are the consumer's outputs
  // (Lemma A.3: O12 = O2).
  for (int v = 0; v < nc; ++v)
    if (consumer.outputs() & (1u << v))
      fused.graph.mark_output(cmap[static_cast<std::size_t>(v)]);
  return fused;
}

}  // namespace fit::pebble
