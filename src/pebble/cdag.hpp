// Computational directed acyclic graphs (CDAGs) for the red–blue
// pebble game of Hong & Kung — the formal model behind every lower
// bound in the paper (Definition A.1).
//
// Vertices are numbered 0..n-1; a vertex with no predecessors is an
// input, any vertex may be marked an output. The implementation is
// limited to 16 vertices so that the exhaustive optimal-I/O search in
// pebble_game.hpp can pack game states into 48 bits.
#pragma once

#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace fit::pebble {

using VertexSet = std::uint16_t;  // bitmask over <= 16 vertices

constexpr int kMaxVertices = 16;

class Cdag {
 public:
  /// Create a CDAG with `n` vertices and no edges.
  explicit Cdag(int n);

  int n_vertices() const { return n_; }

  /// Add a dependence edge u -> v (u must be computed before v).
  /// Edges must respect vertex numbering as a topological order
  /// (u < v), which every construction in this repo satisfies.
  void add_edge(int u, int v);

  /// Mark a vertex as a program output (must end with a blue pebble).
  void mark_output(int v);

  /// Predecessor mask of v.
  VertexSet preds(int v) const { return preds_[v]; }

  /// Inputs: vertices with no predecessors.
  VertexSet inputs() const;

  /// Output mask.
  VertexSet outputs() const { return outputs_; }

  /// Operation vertices (non-inputs).
  VertexSet operations() const;

  /// True if v has at least one consumer.
  bool has_consumer(int v) const;

  /// Builder: the CDAG of a "macro-op" contraction C[m] = f(A[...]),
  /// where each of `n_out` outputs depends on a given list of inputs.
  /// See tests/benches for concrete wirings.
 private:
  int n_;
  std::vector<VertexSet> preds_;
  VertexSet outputs_ = 0;
};

/// Fuse producer and consumer CDAGs (Lemma A.3 construction): the
/// producer's outputs `o1` become internal vertices feeding the
/// consumer; consumer vertex `i` maps to fused vertex `consumer_map[i]`.
/// `consumer_o1_inputs[k]` names the consumer input vertex merged with
/// the k-th producer output.
struct FusedCdag {
  Cdag graph;
  std::vector<int> producer_map;  // producer vertex -> fused vertex
  std::vector<int> consumer_map;  // consumer vertex -> fused vertex
};

FusedCdag fuse(const Cdag& producer, const std::vector<int>& producer_outputs,
               const Cdag& consumer, const std::vector<int>& consumer_inputs);

}  // namespace fit::pebble
