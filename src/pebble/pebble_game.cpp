#include "pebble/pebble_game.hpp"

#include <bit>
#include <deque>
#include <unordered_map>

namespace fit::pebble {

namespace {

constexpr std::uint64_t pack(VertexSet red, VertexSet blue,
                             VertexSet computed) {
  return static_cast<std::uint64_t>(red) |
         (static_cast<std::uint64_t>(blue) << 16) |
         (static_cast<std::uint64_t>(computed) << 32);
}

struct Unpacked {
  VertexSet red, blue, computed;
};

constexpr Unpacked unpack(std::uint64_t key) {
  return {static_cast<VertexSet>(key & 0xFFFF),
          static_cast<VertexSet>((key >> 16) & 0xFFFF),
          static_cast<VertexSet>((key >> 32) & 0xFFFF)};
}

}  // namespace

std::optional<GameResult> min_io(const Cdag& g, int s,
                                 std::uint64_t max_states) {
  FIT_REQUIRE(s >= 1, "need at least one red pebble");
  const int n = g.n_vertices();
  const VertexSet inputs = g.inputs();
  const VertexSet outputs = g.outputs();
  FIT_REQUIRE(outputs != 0, "CDAG has no outputs");

  // Quick infeasibility: computing v requires all preds red plus a
  // free pebble for v itself.
  for (int v = 0; v < n; ++v)
    if (std::popcount(static_cast<unsigned>(g.preds(v))) + 1 > s &&
        g.preds(v) != 0)
      return std::nullopt;

  // 0-1 BFS (deque Dijkstra) over packed states.
  std::unordered_map<std::uint64_t, std::uint32_t> dist;
  std::deque<std::uint64_t> queue;
  const std::uint64_t start = pack(0, inputs, inputs);
  dist[start] = 0;
  queue.push_back(start);
  std::uint64_t visited = 0;

  auto relax = [&](std::uint64_t next, std::uint32_t d, bool unit_cost) {
    auto it = dist.find(next);
    const std::uint32_t nd = d + (unit_cost ? 1u : 0u);
    if (it == dist.end() || nd < it->second) {
      dist[next] = nd;
      if (unit_cost)
        queue.push_back(next);
      else
        queue.push_front(next);
    }
  };

  while (!queue.empty()) {
    const std::uint64_t key = queue.front();
    queue.pop_front();
    const std::uint32_t d = dist[key];
    const auto [red, blue, computed] = unpack(key);

    if ((outputs & blue) == outputs)
      return GameResult{d, visited};

    if (++visited > max_states) return std::nullopt;

    const int nred = std::popcount(static_cast<unsigned>(red));

    for (int v = 0; v < n; ++v) {
      const VertexSet bit = static_cast<VertexSet>(1u << v);
      // R3 Compute: free, so explore first (deque front).
      if (!(computed & bit) && g.preds(v) != 0 &&
          (g.preds(v) & red) == g.preds(v) && nred < s) {
        relax(pack(red | bit, blue, computed | bit), d, false);
      }
      // R4 Delete: only useful when red is full (safe normalization —
      // postponing a delete never increases I/O).
      if ((red & bit) && nred == s) {
        relax(pack(red & ~bit, blue, computed), d, false);
      }
      // R1 Load.
      if ((blue & bit) && !(red & bit) && nred < s) {
        relax(pack(red | bit, blue, computed), d, true);
      }
      // R2 Store.
      if ((red & bit) && !(blue & bit)) {
        relax(pack(red, blue | bit, computed), d, true);
      }
    }
  }
  return std::nullopt;  // outputs unreachable
}

std::optional<std::uint32_t> fusion_lemma_rhs(const Cdag& producer,
                                              const Cdag& consumer,
                                              std::uint32_t n_intermediates,
                                              int s) {
  auto io1 = min_io(producer, s);
  auto io2 = min_io(consumer, s);
  if (!io1 || !io2) return std::nullopt;
  const std::int64_t rhs = static_cast<std::int64_t>(io1->min_io) +
                           io2->min_io -
                           2 * static_cast<std::int64_t>(n_intermediates);
  return rhs < 0 ? 0u : static_cast<std::uint32_t>(rhs);
}

}  // namespace fit::pebble
