// Exhaustive optimal-I/O search for the red–blue pebble game without
// re-pebbling (paper Definition A.2).
//
// State = (red pebbles, blue pebbles, computed set), packed into 48
// bits for <= 16 vertices. Moves follow the paper's rules exactly:
//
//   R1 Load    (cost 1): blue(v) -> also red(v), if a red pebble free
//   R2 Store   (cost 1): red(v)  -> also blue(v)
//   R3 Compute (cost 0): preds(v) all red, v not yet computed
//   R4 Delete  (cost 0): remove a red pebble
//
// 0-1 BFS over this state graph yields the *exact* minimum I/O of any
// valid schedule — the quantity every lower bound in the paper
// constrains. Feasible only for tiny CDAGs; the test suite uses it to
// verify the Fusion Lemma (IO(C12) >= IO(C1)+IO(C2)-2|O1|) on hundreds
// of generated producer/consumer pairs.
#pragma once

#include <cstdint>
#include <optional>

#include "pebble/cdag.hpp"

namespace fit::pebble {

struct GameResult {
  std::uint32_t min_io;          // minimal loads+stores
  std::uint64_t states_visited;  // search effort
};

/// Exact minimum I/O for the CDAG with `s` red pebbles. Returns
/// nullopt if no complete calculation exists (s too small: a vertex
/// with indegree >= s can never be computed) or if the search exceeds
/// `max_states`.
std::optional<GameResult> min_io(const Cdag& g, int s,
                                 std::uint64_t max_states = 20'000'000);

/// Convenience: the Fusion Lemma right-hand side
/// IO(C1) + IO(C2) - 2*|O1| computed with exact optima; nullopt if
/// either sub-game is infeasible/too large.
std::optional<std::uint32_t> fusion_lemma_rhs(const Cdag& producer,
                                              const Cdag& consumer,
                                              std::uint32_t n_intermediates,
                                              int s);

}  // namespace fit::pebble
