#include "runtime/checkpoint.hpp"

#include <algorithm>
#include <string>

#include "ga/global_array.hpp"
#include "runtime/cluster.hpp"
#include "util/error.hpp"

namespace fit::runtime {

CheckpointManager::CheckpointManager(Cluster& cluster, CheckpointConfig cfg)
    : cl_(cluster), cfg_(cfg) {}

void CheckpointManager::forget(ga::GlobalArray* array) {
  states_.erase(array);
}

CheckpointManager::ArrayState& CheckpointManager::state_for(
    ga::GlobalArray* array) {
  ArrayState& st = states_[array];
  if (st.data.size() != array->n_tiles()) {
    st.data.resize(array->n_tiles());
    st.epochs.resize(array->n_tiles(), 0);
  }
  return st;
}

double CheckpointManager::write() {
  std::vector<double> bytes_per_rank(cl_.n_ranks(), 0.0);
  double total = 0;
  for (ga::GlobalArray* arr : cl_.registered_arrays()) {
    ArrayState& st = state_for(arr);
    for (std::size_t idx = 0; idx < arr->n_tiles(); ++idx) {
      const std::uint64_t ep = arr->tile_write_epoch(idx);
      // Incremental: first checkpoint writes every ever-written tile,
      // later ones only tiles written since the previous checkpoint.
      // Never-written tiles stay elided (empty snapshot = zeros).
      const bool dirty = st.valid ? ep >= ckpt_epoch_ : ep > 0;
      if (!dirty) continue;
      st.data[idx] = arr->tile_data(idx);  // empty in Simulate mode
      st.epochs[idx] = ep;
      const double bytes = 8.0 * double(arr->tile_by_index(idx).elements);
      bytes_per_rank[arr->tile_by_index(idx).owner] += bytes;
      total += bytes;
    }
    st.valid = true;
  }
  ckpt_epoch_ = cl_.epoch();
  auto& reg = cl_.metrics();
  reg.add(reg.counter("checkpoint.writes"), 0, 1);
  reg.add(reg.counter("checkpoint.bytes"), 0, total);
  if (total > 0) cl_.charge_disk_phase("checkpoint", bytes_per_rank);
  return total;
}

double CheckpointManager::restore_tile(ga::GlobalArray* array,
                                       const ArrayState& st, std::size_t idx,
                                       std::vector<double>& bytes_per_rank) {
  static const std::vector<double> kEmpty;
  const std::vector<double>& snap =
      idx < st.data.size() ? st.data[idx] : kEmpty;
  const std::uint64_t snap_epoch =
      idx < st.epochs.size() ? st.epochs[idx] : 0;
  array->restore_tile(idx, snap, snap_epoch);
  if (snap_epoch == 0) return 0;  // zeros need no disk read
  const double bytes = 8.0 * double(array->tile_by_index(idx).elements);
  bytes_per_rank[array->tile_by_index(idx).owner] += bytes;
  return bytes;
}

double CheckpointManager::restore_dirty() {
  std::vector<double> bytes_per_rank(cl_.n_ranks(), 0.0);
  double total = 0;
  for (ga::GlobalArray* arr : cl_.registered_arrays()) {
    const ArrayState& st = state_for(arr);
    for (std::size_t idx = 0; idx < arr->n_tiles(); ++idx) {
      // Only tiles the failed attempt touched (stamped with the
      // still-open epoch) are rolled back.
      if (arr->tile_write_epoch(idx) != cl_.epoch()) continue;
      total += restore_tile(arr, st, idx, bytes_per_rank);
    }
  }
  auto& reg = cl_.metrics();
  reg.add(reg.counter("checkpoint.restores"), 0, 1);
  reg.add(reg.counter("checkpoint.restored_bytes"), 0, total);
  if (total > 0) cl_.charge_disk_phase("restore (retry)", bytes_per_rank);
  return total;
}

double CheckpointManager::restore_rank(std::size_t dead) {
  std::vector<std::size_t> targets;
  for (std::size_t r = 0; r < cl_.n_ranks(); ++r)
    if (!cl_.is_dead(r)) targets.push_back(r);
  if (targets.empty()) throw FaultError("no live ranks left to restore to");

  std::vector<double> bytes_per_rank(cl_.n_ranks(), 0.0);
  double total = 0;
  for (ga::GlobalArray* arr : cl_.registered_arrays()) {
    const ArrayState& st = state_for(arr);
    for (std::size_t idx : arr->reassign_owner(dead, targets))
      total += restore_tile(arr, st, idx, bytes_per_rank);
  }
  auto& reg = cl_.metrics();
  reg.add(reg.counter("checkpoint.restores"), 0, 1);
  reg.add(reg.counter("checkpoint.restored_bytes"), 0, total);
  if (total > 0)
    cl_.charge_disk_phase("restore rank " + std::to_string(dead),
                          bytes_per_rank);
  return total;
}

}  // namespace fit::runtime
