#include "runtime/checkpoint.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "ga/global_array.hpp"
#include "runtime/cluster.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"
#include "util/parse.hpp"

namespace fit::runtime {

namespace {

// XOR mask applied to a rotted copy's stored checksum: recomputation
// at read time then disagrees, which is indistinguishable (to the
// verifier) from flipped payload bits.
constexpr std::uint64_t kRotMask = 0xBADC0FFEE0DDF00Dull;

}  // namespace

CheckpointManager::CheckpointManager(Cluster& cluster, CheckpointConfig cfg)
    : cl_(cluster), cfg_(cfg) {
  keep_ = cfg_.keep_epochs > 0
              ? cfg_.keep_epochs
              : util::env_size_strict("FOURINDEX_CKPT_KEEP", 2);
  delta_ = cfg_.delta < 0
               ? util::env_size("FOURINDEX_CKPT_DELTA", 1, /*min=*/0) != 0
               : cfg_.delta != 0;
  // Pre-register every metric this layer can emit, so benches and
  // gates may sum() them unconditionally — a clean run reads zeros
  // instead of tripping the unknown-metric precondition.
  auto& reg = cl_.metrics();
  for (const char* name :
       {"checkpoint.writes", "checkpoint.bytes", "checkpoint.restores",
        "checkpoint.restored_bytes", "checkpoint.gc_bytes",
        "checkpoint.verify_failures", "checkpoint.zero_fills",
        "checkpoint.scrub_repairs", "checkpoint.io_faults",
        "checkpoint.io_retries", "recovery.fallback_epochs",
        "fault.ckpt_corrupts"})
    reg.counter(name);
  reg.gauge("checkpoint.store_bytes");
  reg.gauge("checkpoint.generations");
  reg.gauge("checkpoint.dirty_fraction");
}

std::uint64_t CheckpointManager::tile_checksum(
    const std::vector<double>& data, std::uint64_t write_epoch,
    std::size_t idx) {
  // Cover the payload bytes and the manifest metadata; in Simulate
  // mode (no payload) the metadata alone still detects rot, since the
  // injector flips the stored checksum rather than the bytes.
  std::uint64_t h = util::fnv1a_bytes(data.data(), 8 * data.size());
  h = util::fnv1a_u64(write_epoch, h);
  return util::fnv1a_u64(idx, h);
}

bool CheckpointManager::verify(const TileSnap& snap, std::size_t idx) {
  return tile_checksum(snap.data, snap.write_epoch, idx) == snap.checksum;
}

void CheckpointManager::update_store_gauge() {
  double resident = 0;
  for (const auto& g : gens_) resident += g.bytes;
  auto& reg = cl_.metrics();
  reg.set(reg.gauge("checkpoint.store_bytes"), 0, resident);
  reg.set(reg.gauge("checkpoint.generations"), 0,
          static_cast<double>(gens_.size()));
}

void CheckpointManager::forget(ga::GlobalArray* array) {
  double freed = 0;
  for (auto& g : gens_) {
    auto it = g.arrays.find(array);
    if (it == g.arrays.end()) continue;
    freed += it->second.bytes;
    g.bytes -= it->second.bytes;
    g.arrays.erase(it);
  }
  if (freed > 0) {
    auto& reg = cl_.metrics();
    reg.add(reg.counter("checkpoint.gc_bytes"), 0, freed);
    update_store_gauge();
  }
}

void CheckpointManager::ckpt_io_fault_point(const char* what,
                                            std::size_t io_attempt) {
  if (!cl_.faults().armed()) return;
  const std::size_t seq = io_seq_++;
  if (!cl_.faults().should_fail_ckpt_io(cl_.phase_index(), io_attempt, seq))
    return;
  auto& reg = cl_.metrics();
  reg.add(reg.counter("checkpoint.io_faults"), 0, 1);
  cl_.note_instant(std::string("fault: ckpt io (") + what + ")", 0);
  throw FaultError(std::string("checkpoint I/O fault during ") + what);
}

template <typename Fn>
double CheckpointManager::with_io_retry(const char* label, Fn&& op) {
  for (std::size_t attempt = 0;; ++attempt) {
    try {
      return op(attempt);
    } catch (const FaultError& e) {
      if (attempt >= cfg_.max_retries) {
        throw CheckpointError(std::string(label) + " failed after " +
                              std::to_string(attempt + 1) +
                              " attempt(s): " + e.what());
      }
      const double backoff =
          cfg_.backoff_s * static_cast<double>(1ull << attempt);
      cl_.charge_recovery_backoff(
          std::string(label) + " retry " + std::to_string(attempt + 1),
          backoff);
      auto& reg = cl_.metrics();
      reg.add(reg.counter("checkpoint.io_retries"), 0, 1);
    }
  }
}

double CheckpointManager::write() {
  return with_io_retry("checkpoint write", [this](std::size_t attempt) {
    return write_once(attempt);
  });
}

double CheckpointManager::write_once(std::size_t io_attempt) {
  Generation g;
  g.ckpt_epoch = cl_.epoch();
  const Generation* prev = gens_.empty() ? nullptr : &gens_.back();
  std::vector<double> bytes_per_rank(cl_.n_ranks(), 0.0);
  double client_bytes = 0;
  double scrub_repairs = 0;
  double live_tiles = 0, dirty_tiles = 0;
  for (ga::GlobalArray* arr : cl_.registered_arrays()) {
    ArraySnap& as = g.arrays[arr];
    as.tiles.resize(arr->n_tiles());
    const ArraySnap* pas = nullptr;
    if (prev) {
      auto it = prev->arrays.find(arr);
      if (it != prev->arrays.end()) pas = &it->second;
    }
    for (std::size_t idx = 0; idx < arr->n_tiles(); ++idx) {
      const std::uint64_t ep = arr->tile_write_epoch(idx);
      if (ep == 0) continue;  // never written — elided (zeros)
      const TileSnap* src = pas && idx < pas->tiles.size() &&
                                    pas->tiles[idx].write_epoch > 0
                                ? &pas->tiles[idx]
                                : nullptr;
      TileSnap& ts = as.tiles[idx];
      const double bytes = 8.0 * double(arr->tile_by_index(idx).elements);
      // Delta mode rewrites only tiles whose write epoch moved since
      // the previous generation; full-copy mode treats every live
      // tile as dirty — the pre-delta comparator the soak bench and
      // CI gate measure the saving against.
      const bool dirty = !delta_ || !src || src->write_epoch != ep;
      live_tiles += 1;
      // A carried copy is made by checksum-verified server-side copy;
      // a source that fails verification is rewritten fresh from the
      // live array instead (scrub repair) — so a published generation
      // is always internally intact at publication time.
      const bool repair = !dirty && !verify(*src, idx);
      if (dirty || repair) {
        ts.data = arr->tile_data(idx);  // empty in Simulate mode
        ts.write_epoch = ep;
        ts.checksum = tile_checksum(ts.data, ep, idx);
        ts.fresh = true;
        bytes_per_rank[arr->tile_by_index(idx).owner] += bytes;
        client_bytes += bytes;
        dirty_tiles += 1;
        if (repair) scrub_repairs += 1;
      } else {
        ts = *src;
        ts.fresh = false;
      }
      as.bytes += bytes;
    }
    g.bytes += as.bytes;
  }

  // The staged payload is complete; a fault here (or in the writes
  // themselves) tears the epoch *before* its manifest is published —
  // the previous generation stays fully visible.
  ckpt_io_fault_point("write", io_attempt);

  auto& reg = cl_.metrics();
  reg.add(reg.counter("checkpoint.writes"), 0, 1);
  reg.add(reg.counter("checkpoint.bytes"), 0, client_bytes);
  // Fraction of live tiles that transited the client link in this
  // generation: ~1.0 under full-copy, the real dirty share under
  // delta — the saving the soak gate measures. A zero-tile epoch (a
  // phase restored then immediately re-checkpointed before anything
  // was written) has no dirty share; set the gauge to 0 explicitly —
  // dividing would emit NaN into the bench JSON, and skipping the set
  // would leave the previous epoch's value standing.
  reg.set(reg.gauge("checkpoint.dirty_fraction"), 0,
          live_tiles > 0
              ? std::clamp(dirty_tiles / live_tiles, 0.0, 1.0)
              : 0.0);
  if (scrub_repairs > 0)
    reg.add(reg.counter("checkpoint.scrub_repairs"), 0, scrub_repairs);
  if (client_bytes > 0) cl_.charge_disk_phase("checkpoint", bytes_per_rank);

  // Publish: appending the manifest is the atomic rename.
  gens_.push_back(std::move(g));
  ckpt_epoch_ = cl_.epoch();

  // GC generations beyond the retention depth; deleting on the
  // simulated PFS is metadata-only (no alpha-beta charge).
  double gc_bytes = 0;
  while (gens_.size() > keep_) {
    gc_bytes += gens_.front().bytes;
    gens_.pop_front();
  }
  if (gc_bytes > 0) reg.add(reg.counter("checkpoint.gc_bytes"), 0, gc_bytes);
  update_store_gauge();
  return client_bytes;
}

double CheckpointManager::restore_tile(ga::GlobalArray* array,
                                       std::size_t idx,
                                       std::vector<double>& bytes_per_rank) {
  auto& reg = cl_.metrics();
  const TileSnap* want = nullptr;
  if (!gens_.empty()) {
    auto it = gens_.back().arrays.find(array);
    if (it != gens_.back().arrays.end() && idx < it->second.tiles.size())
      want = &it->second.tiles[idx];
  }
  if (!want || want->write_epoch == 0) {
    // Not covered by the newest manifest: the tile did not exist at
    // the consistent cut — zeros is its true content, no disk read.
    array->restore_tile(idx, {}, 0);
    return 0;
  }

  std::size_t fallback = 0;
  for (auto git = gens_.rbegin(); git != gens_.rend(); ++git, ++fallback) {
    auto it = git->arrays.find(array);
    const TileSnap* snap =
        it != git->arrays.end() && idx < it->second.tiles.size()
            ? &it->second.tiles[idx]
            : nullptr;
    // Older generations predate this write epoch: their copies are
    // stale content and must never be silently substituted.
    if (!snap || snap->write_epoch != want->write_epoch) break;
    if (verify(*snap, idx)) {
      array->restore_tile(idx, snap->data, snap->write_epoch);
      const double bytes = 8.0 * double(array->tile_by_index(idx).elements);
      bytes_per_rank[array->tile_by_index(idx).owner] += bytes;
      if (fallback > 0) {
        reg.add(reg.counter("recovery.fallback_epochs"), 0,
                static_cast<double>(fallback));
        cl_.note_instant("recovery: fallback " + std::to_string(fallback) +
                             " epoch(s) for " + array->name() + " tile " +
                             std::to_string(idx),
                         array->tile_by_index(idx).owner);
      }
      return bytes;
    }
    reg.add(reg.counter("checkpoint.verify_failures"), 0, 1);
    cl_.note_instant("checkpoint: verify failed for " + array->name() +
                         " tile " + std::to_string(idx) + " (gen -" +
                         std::to_string(fallback) + ")",
                     array->tile_by_index(idx).owner);
  }

  // Every retained generation is bad: data loss, surfaced loudly but
  // non-fatally — the degraded-science outcome, never silent.
  array->restore_tile(idx, {}, 0);
  reg.add(reg.counter("checkpoint.zero_fills"), 0, 1);
  cl_.note_instant("checkpoint: zero-fill " + array->name() + " tile " +
                       std::to_string(idx) + " (all generations bad)",
                   array->tile_by_index(idx).owner);
  return 0;
}

double CheckpointManager::restore_dirty() {
  return with_io_retry("checkpoint restore", [this](std::size_t attempt) {
    ckpt_io_fault_point("restore (retry)", attempt);
    std::vector<double> bytes_per_rank(cl_.n_ranks(), 0.0);
    double total = 0;
    for (ga::GlobalArray* arr : cl_.registered_arrays()) {
      for (std::size_t idx = 0; idx < arr->n_tiles(); ++idx) {
        // Only tiles the failed attempt touched (stamped with the
        // still-open epoch) are rolled back.
        if (arr->tile_write_epoch(idx) != cl_.epoch()) continue;
        total += restore_tile(arr, idx, bytes_per_rank);
      }
    }
    auto& reg = cl_.metrics();
    reg.add(reg.counter("checkpoint.restores"), 0, 1);
    reg.add(reg.counter("checkpoint.restored_bytes"), 0, total);
    if (total > 0) cl_.charge_disk_phase("restore (retry)", bytes_per_rank);
    return total;
  });
}

double CheckpointManager::restore_domain(
    std::span<const std::size_t> dead) {
  if (dead.empty()) return 0;
  std::vector<std::size_t> targets;
  for (std::size_t r = 0; r < cl_.n_ranks(); ++r)
    if (!cl_.is_dead(r)) targets.push_back(r);
  if (targets.empty()) throw FaultError("no live ranks left to restore to");

  return with_io_retry("checkpoint restore", [&](std::size_t attempt) {
    ckpt_io_fault_point("restore (re-own)", attempt);
    std::vector<double> bytes_per_rank(cl_.n_ranks(), 0.0);
    double total = 0;
    for (ga::GlobalArray* arr : cl_.registered_arrays()) {
      for (std::size_t idx : arr->reassign_owners(dead, targets))
        total += restore_tile(arr, idx, bytes_per_rank);
    }
    auto& reg = cl_.metrics();
    reg.add(reg.counter("checkpoint.restores"), 0, 1);
    reg.add(reg.counter("checkpoint.restored_bytes"), 0, total);
    if (total > 0) {
      std::string label = "restore ranks";
      for (std::size_t d : dead) label += " " + std::to_string(d);
      cl_.charge_disk_phase(label, bytes_per_rank);
    }
    return total;
  });
}

double CheckpointManager::restore_rank(std::size_t dead) {
  const std::size_t ranks[1] = {dead};
  return restore_domain(ranks);
}

void CheckpointManager::inject_corruption(std::size_t phase,
                                          std::size_t count,
                                          std::size_t depth) {
  if (count == 0 || depth == 0 || gens_.empty()) return;
  struct Victim {
    double weight;
    TileSnap* snap;
  };
  std::vector<Victim> candidates;
  const std::size_t reach = std::min(depth, gens_.size());
  for (std::size_t gi = 0; gi < reach; ++gi) {
    Generation& g = gens_[gens_.size() - 1 - gi];
    for (ga::GlobalArray* arr : cl_.registered_arrays()) {
      auto it = g.arrays.find(arr);
      if (it == g.arrays.end()) continue;
      const std::uint64_t tag = util::fnv1a(arr->name());
      for (std::size_t idx = 0; idx < it->second.tiles.size(); ++idx) {
        TileSnap& ts = it->second.tiles[idx];
        if (ts.write_epoch == 0 || ts.corrupt) continue;
        // Bit rot strikes data at rest. A copy the client wrote into
        // the newest generation was read back and verified at
        // publication; carried copies (and every copy in an older
        // generation) have been sitting on the media since at least
        // one full checkpoint interval.
        const bool at_rest = gi > 0 || !ts.fresh;
        if (!at_rest) continue;
        candidates.push_back(
            {cl_.faults().corrupt_weight(phase, gi, tag, idx), &ts});
      }
    }
  }
  const std::size_t n = std::min(count, candidates.size());
  if (n == 0) return;
  std::partial_sort(candidates.begin(), candidates.begin() + n,
                    candidates.end(), [](const Victim& a, const Victim& b) {
                      return a.weight < b.weight;
                    });
  for (std::size_t i = 0; i < n; ++i) {
    candidates[i].snap->checksum ^= kRotMask;
    candidates[i].snap->corrupt = true;
  }
  auto& reg = cl_.metrics();
  reg.add(reg.counter("fault.ckpt_corrupts"), 0, static_cast<double>(n));
  cl_.note_instant("fault: ckpt corrupt x" + std::to_string(n), 0);
}

}  // namespace fit::runtime
