// Phase-boundary checkpoint/restart for the simulated cluster.
//
// Why phase boundaries: the execution model is BSP — all remote state
// is produced by earlier phases and published at the barrier, so a
// barrier is the only point where the distributed tensors form a
// consistent cut. A checkpoint taken there is trivially coordinated
// (no message logging, no in-flight one-sided ops), which is exactly
// why NWChem-era GA codes restart from GA_Sync points.
//
// The checkpoint target is the simulated parallel file system of the
// paper's disk-based variant (Sec. 3/7): every write/restore is
// charged through the existing alpha-beta disk model via
// Cluster::charge_disk_phase, so fault-recovery overhead shows up in
// simulated time, `comm.disk_bytes`, and the `checkpoint.*` counters.
//
// Checkpoints are incremental: only tiles whose write epoch advanced
// since the previous checkpoint are written, and never-written (all
// zero) tiles are elided entirely. Three restore paths:
//   write()         after every barrier — snapshot dirty tiles;
//   restore_dirty() undo the partial writes of a failed phase attempt
//                   before Cluster::run_phase retries it;
//   restore_rank()  rank death — re-own the dead rank's tiles across
//                   the survivors and reload them from the newest
//                   checkpoint epoch.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace fit::ga {
class GlobalArray;
}

namespace fit::runtime {

class Cluster;

struct CheckpointConfig {
  /// How many times run_phase re-executes a phase whose attempt was
  /// aborted by a transient fault before giving up with FaultError.
  std::size_t max_retries = 3;
  /// Simulated backoff charged before the first retry; doubles on
  /// every subsequent one.
  double backoff_s = 1e-3;
  /// Watchdog on a single phase's accumulated simulated makespan
  /// (work + retries + backoff). 0 disables; when positive, exceeding
  /// it raises TimeoutError instead of retrying further.
  double phase_sim_timeout_s = 0;
};

/// Owned by Cluster (see Cluster::enable_recovery); tracks one
/// incremental snapshot per live GlobalArray.
class CheckpointManager {
 public:
  CheckpointManager(Cluster& cluster, CheckpointConfig cfg);

  const CheckpointConfig& config() const { return cfg_; }
  /// Epoch recorded by the newest checkpoint (0 = none written yet).
  std::uint64_t last_checkpoint_epoch() const { return ckpt_epoch_; }

  /// Drop the snapshot of a destroyed array.
  void forget(ga::GlobalArray* array);

  /// Snapshot every live array's dirty tiles; charges the disk writes.
  /// Returns bytes written.
  double write();

  /// Undo the current (failed) phase attempt: every tile written in
  /// the current epoch is restored to its checkpointed content (or to
  /// zeros for tiles/arrays younger than the checkpoint); charges the
  /// disk reads. Returns bytes read.
  double restore_dirty();

  /// Rank-death recovery: move `dead`'s tiles to the surviving ranks
  /// (round-robin, transferring the memory accounting) and restore
  /// their content from the newest checkpoint; charges the disk reads.
  /// Returns bytes read.
  double restore_rank(std::size_t dead);

 private:
  struct ArrayState {
    bool valid = false;  // at least one checkpoint covers this array
    std::vector<std::vector<double>> data;  // per tile; empty = zeros
    std::vector<std::uint64_t> epochs;      // write epoch at snapshot
  };

  ArrayState& state_for(ga::GlobalArray* array);
  double restore_tile(ga::GlobalArray* array, const ArrayState& st,
                      std::size_t idx, std::vector<double>& bytes_per_rank);

  Cluster& cl_;
  CheckpointConfig cfg_;
  std::uint64_t ckpt_epoch_ = 0;
  std::unordered_map<ga::GlobalArray*, ArrayState> states_;
};

}  // namespace fit::runtime
