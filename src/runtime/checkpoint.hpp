// Phase-boundary checkpoint/restart for the simulated cluster.
//
// Why phase boundaries: the execution model is BSP — all remote state
// is produced by earlier phases and published at the barrier, so a
// barrier is the only point where the distributed tensors form a
// consistent cut. A checkpoint taken there is trivially coordinated
// (no message logging, no in-flight one-sided ops), which is exactly
// why NWChem-era GA codes restart from GA_Sync points.
//
// The checkpoint target is the simulated parallel file system of the
// paper's disk-based variant (Sec. 3/7): every write/restore is
// charged through the existing alpha-beta disk model via
// Cluster::charge_disk_phase, so fault-recovery overhead shows up in
// simulated time, `comm.disk_bytes`, and the `checkpoint.*` counters.
//
// Store layout — a multi-generation verified epoch store:
//
//   generation K   (newest)   per-array, per-tile copies + manifest
//   generation K-1            independent physical copies
//   ...                       (up to FOURINDEX_CKPT_KEEP generations)
//
// Each published generation is a self-contained snapshot: every
// ever-written tile has its own physical copy, stamped with the write
// epoch it captures and an FNV-1a checksum taken at write time. Only
// tiles dirtied since the previous checkpoint transit the client's
// disk link (incremental I/O); unchanged tiles are carried into the
// new generation by a checksum-verified server-side copy, at no
// client cost — so generations are physically independent replicas
// and one generation's bit rot never silently poisons the others. A
// carried copy whose source fails its checksum is instead rewritten
// fresh from the live array (a scrub repair, charged as real I/O).
//
// Publication is atomic: a generation is staged completely — payload
// copies first — and only then published by appending its manifest.
// A checkpoint-I/O fault mid-write (FaultKind::CkptIo, or the
// probability knob) aborts before the manifest lands, so a torn write
// leaves the previous generation fully intact, never a half-visible
// epoch. Checkpoint writes and restores are wrapped in the same
// bounded retry+backoff discipline run_phase uses for compute.
//
// Restore verifies every tile copy against its checksum and walks
// back generation by generation to the newest intact copy of the
// *same* write epoch (`recovery.fallback_epochs`); a copy from an
// older write epoch is stale and is never silently substituted. Only
// when every retained generation is bad does restore zero-fill
// (`checkpoint.verify_failures` + `checkpoint.zero_fills`). Retired
// generations are GC'd against the simulated PFS with
// `checkpoint.gc_bytes` accounting.
//
// Restore paths:
//   write()          after every barrier — stage + publish a generation;
//   restore_dirty()  undo the partial writes of a failed phase attempt
//                    before Cluster::run_phase retries it;
//   restore_domain() rank/node death — re-own every dead rank's tiles
//                    across the survivors (capacity-aware) and reload
//                    them from the newest intact generation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <span>
#include <unordered_map>
#include <vector>

namespace fit::ga {
class GlobalArray;
}

namespace fit::runtime {

class Cluster;

/// Knobs of the checkpoint/retry machinery (Cluster::enable_recovery).
struct CheckpointConfig {
  /// How many times run_phase re-executes a phase whose attempt was
  /// aborted by a transient fault before giving up with FaultError.
  /// Also bounds the checkpoint layer's own I/O retries.
  std::size_t max_retries = 3;
  /// Simulated backoff charged before the first retry; doubles on
  /// every subsequent one.
  double backoff_s = 1e-3;
  /// Watchdog on a single phase's accumulated simulated makespan
  /// (work + retries + backoff). 0 disables; when positive, exceeding
  /// it raises TimeoutError instead of retrying further.
  double phase_sim_timeout_s = 0;
  /// Checkpoint generations retained (>= 1). 0 reads the
  /// FOURINDEX_CKPT_KEEP environment variable (default 2).
  std::size_t keep_epochs = 0;
  /// Delta checkpointing: 1 = only tiles dirtied since the previous
  /// generation transit the client's disk link (clean tiles are
  /// carried by verified server-side copy at zero client cost);
  /// 0 = full copy — every live tile is rewritten each generation,
  /// kept as the ablation comparator the delta mode is gated against;
  /// -1 = read the FOURINDEX_CKPT_DELTA environment variable
  /// (default 1, delta on). Restore semantics are identical either
  /// way — only the write volume and checkpoint.dirty_fraction move.
  int delta = -1;
};

/// Owned by Cluster (see Cluster::enable_recovery); maintains the
/// multi-generation verified epoch store described above.
class CheckpointManager {
 public:
  /// Manager over `cluster`'s registered arrays; `cfg` fields left at
  /// their sentinel values are resolved from the environment.
  CheckpointManager(Cluster& cluster, CheckpointConfig cfg);

  /// The configuration the manager was constructed with.
  const CheckpointConfig& config() const { return cfg_; }
  /// Effective retention depth (config or FOURINDEX_CKPT_KEEP).
  std::size_t keep_epochs() const { return keep_; }
  /// Effective delta-checkpointing switch (config or
  /// FOURINDEX_CKPT_DELTA).
  bool delta() const { return delta_; }
  /// Published generations currently retained.
  std::size_t n_generations() const { return gens_.size(); }
  /// Epoch recorded by the newest checkpoint (0 = none written yet).
  std::uint64_t last_checkpoint_epoch() const { return ckpt_epoch_; }

  /// Drop every generation's snapshot of a destroyed array (counted
  /// into checkpoint.gc_bytes — the PFS space is reclaimed).
  void forget(ga::GlobalArray* array);

  /// Stage and atomically publish a new generation; charges the disk
  /// writes for dirty tiles and scrub repairs, then GCs generations
  /// beyond the retention depth. Returns client bytes written.
  double write();

  /// Undo the current (failed) phase attempt: every tile written in
  /// the current epoch is restored to its checkpointed content (or to
  /// zeros for tiles/arrays younger than the checkpoint); charges the
  /// disk reads. Returns bytes read.
  double restore_dirty();

  /// Correlated-failure recovery: move every tile owned by the ranks
  /// in `dead` to the survivors (capacity-aware placement — see
  /// GlobalArray::reassign_owners) and restore their content from the
  /// newest intact generation; charges the disk reads. Returns bytes
  /// read.
  double restore_domain(std::span<const std::size_t> dead);

  /// Single-rank convenience wrapper over restore_domain.
  double restore_rank(std::size_t dead);

  /// Apply a CkptCorrupt event: rot `count` at-rest tile copies
  /// (selected by the injector's deterministic weights) in each of
  /// the newest `depth` generations. Copies written by the client in
  /// a generation's own publication are verified at write time and
  /// exempt in that generation; everything older is at rest.
  void inject_corruption(std::size_t phase, std::size_t count,
                         std::size_t depth);

 private:
  struct TileSnap {
    std::vector<double> data;       // empty = zeros / Simulate mode
    std::uint64_t write_epoch = 0;  // 0 = never written (elided)
    std::uint64_t checksum = 0;     // FNV-1a taken at write time
    bool fresh = false;   // client-written in this generation
    bool corrupt = false; // latent rot injected (checksum flipped)
  };
  struct ArraySnap {
    std::vector<TileSnap> tiles;
    double bytes = 0;  // physical payload bytes of this snapshot
  };
  struct Generation {
    std::uint64_t ckpt_epoch = 0;
    double bytes = 0;  // physical payload bytes resident on the PFS
    std::unordered_map<ga::GlobalArray*, ArraySnap> arrays;
  };

  static std::uint64_t tile_checksum(const std::vector<double>& data,
                                     std::uint64_t write_epoch,
                                     std::size_t idx);
  static bool verify(const TileSnap& snap, std::size_t idx);

  double write_once(std::size_t io_attempt);
  /// Probe the injector for a checkpoint-I/O fault; throws FaultError.
  void ckpt_io_fault_point(const char* what, std::size_t io_attempt);
  /// Bounded retry+backoff around one checkpoint I/O operation.
  template <typename Fn>
  double with_io_retry(const char* label, Fn&& op);

  /// Restore one tile to its newest-generation content, walking back
  /// through older generations on checksum failure. Returns disk
  /// bytes read (0 for zero-fill).
  double restore_tile(ga::GlobalArray* array, std::size_t idx,
                      std::vector<double>& bytes_per_rank);
  void update_store_gauge();

  Cluster& cl_;
  CheckpointConfig cfg_;
  std::size_t keep_ = 2;
  bool delta_ = true;
  std::uint64_t ckpt_epoch_ = 0;
  std::size_t io_seq_ = 0;  // checkpoint ops issued (fault sequencing)
  std::deque<Generation> gens_;  // newest at the back
};

}  // namespace fit::runtime
