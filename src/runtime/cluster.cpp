#include "runtime/cluster.hpp"

#include <algorithm>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "util/format.hpp"
#include "util/logging.hpp"
#include "util/parse.hpp"
#include "util/thread_pool.hpp"

namespace fit::runtime {

namespace {

// Host-thread policy: FOURINDEX_THREADS (when set, >= 1) overrides the
// constructor argument; the result is clamped to the hardware thread
// count so oversubscription cannot distort timing-sensitive benches
// (fault-recovery makespans in particular).
std::size_t effective_host_threads(std::size_t requested) {
  const std::size_t want =
      util::env_size("FOURINDEX_THREADS",
                     std::max<std::size_t>(1, requested));
  const unsigned hw = std::thread::hardware_concurrency();
  return std::min<std::size_t>(want, hw > 0 ? hw : 1);
}

}  // namespace

void MemTracker::alloc(double bytes, const char* what) {
  FIT_REQUIRE(bytes >= 0, "negative allocation");
  if (used_ + bytes > capacity_) {
    throw OutOfMemoryError(
        "rank " + std::to_string(rank_) + ": allocating " +
        human_bytes(bytes) + " for " + what + " exceeds local capacity " +
        human_bytes(capacity_) + " (in use: " + human_bytes(used_) + ")");
  }
  used_ += bytes;
  peak_ = std::max(peak_, used_);
}

bool MemTracker::try_alloc(double bytes) {
  FIT_REQUIRE(bytes >= 0, "negative allocation");
  if (used_ + bytes > capacity_) return false;
  used_ += bytes;
  peak_ = std::max(peak_, used_);
  return true;
}

void MemTracker::release(double bytes) {
  FIT_REQUIRE(bytes >= 0, "negative release");
  FIT_CHECK(bytes <= used_ + 1e-6,
            "rank " << rank_ << ": double release — freeing "
                    << human_bytes(bytes) << " with only "
                    << human_bytes(used_) << " in use");
  used_ -= bytes;
  if (used_ < 0) used_ = 0;
}

std::size_t RankCtx::n_ranks() const { return cluster_.n_ranks(); }
bool RankCtx::real() const {
  return cluster_.mode() == ExecutionMode::Real;
}
const MachineConfig& RankCtx::machine() const { return cluster_.machine(); }
MemTracker& RankCtx::memory() { return cluster_.memory(rank_); }
MemTracker& RankCtx::scratch() { return cluster_.scratch(rank_); }

void RankCtx::charge_flops(double flops) {
  comm_.flops += flops;
  time_ += flops / cluster_.machine().flops_per_rank;
}

void RankCtx::charge_integrals(double count) {
  comm_.integral_evals += count;
  time_ += count / cluster_.machine().integrals_per_sec;
}

void RankCtx::charge_transfer(std::size_t owner, double bytes) {
  const auto& m = cluster_.machine();
  double duration;
  if (cluster_.node_of(owner) == cluster_.node_of(rank_)) {
    comm_.local_bytes += bytes;
    duration = bytes / m.local_bandwidth_bps;
  } else {
    comm_.remote_bytes += bytes;
    comm_.remote_messages += 1;
    duration = m.net_latency_s + bytes / m.net_bandwidth_bps;
  }
  // A blocking transfer queues behind any in-flight nonblocking ones
  // on this rank's injection link and is fully exposed. With no
  // nonblocking traffic link_free_ <= time_, so this reduces exactly
  // to the historical time_ += duration.
  const double start = std::max(time_, link_free_);
  comm_.exposed_seconds += (start + duration) - time_;
  time_ = start + duration;
  link_free_ = time_;
}

void RankCtx::stall(double seconds) {
  FIT_REQUIRE(seconds >= 0, "negative stall");
  time_ += seconds;
}

void RankCtx::note_instant(const std::string& name) {
  cluster_.note_instant(name, rank_);
}

void RankCtx::note_span(const std::string& name, double t_start,
                        double duration) {
  if (!cluster_.trace_comm_) return;
  // intern() takes the timeline's own lock, so this is safe from the
  // strided pool threads.
  task_spans_.push_back(
      {cluster_.timeline_.intern(name), t_start, duration});
}

void RankCtx::fault_point(const char* what) {
  if (!cluster_.faults_.armed()) return;
  const std::size_t seq = op_seq_++;
  if (cluster_.faults_.should_fail_op(cluster_.phase_index(), attempt_,
                                      rank_, seq)) {
    cluster_.registry_.add(cluster_.id_fault_transient_, rank_, 1);
    note_instant(std::string("fault: transient ") + what);
    throw FaultError("rank " + std::to_string(rank_) + ": transient " +
                     what + " failure (injected)");
  }
}

void RankCtx::charge_disk(double bytes) {
  const auto& m = cluster_.machine();
  FIT_CHECK(m.disk_bandwidth_bps > 0, "disk access with no disk configured");
  comm_.disk_bytes += bytes;
  // The file system bandwidth is collective: each rank sees its share.
  const double duration =
      m.disk_latency_s + bytes / (m.disk_bandwidth_bps /
                                  static_cast<double>(cluster_.n_ranks()));
  const double start = std::max(time_, link_free_);
  comm_.exposed_seconds += (start + duration) - time_;
  time_ = start + duration;
  link_free_ = time_;
}

NbTransfer RankCtx::enqueue_nb(double duration, NbKind kind) {
  NbOp op;
  op.start = std::max(time_, link_free_);
  op.done = op.start + duration;
  op.kind = kind;
  link_free_ = op.done;
  nb_ops_.push_back(op);
  ++nb_outstanding_;
  return NbTransfer{nb_ops_.size() - 1};
}

NbTransfer RankCtx::begin_transfer(std::size_t owner, double bytes,
                                   NbKind kind) {
  const auto& m = cluster_.machine();
  double duration;
  if (cluster_.node_of(owner) == cluster_.node_of(rank_)) {
    comm_.local_bytes += bytes;
    duration = bytes / m.local_bandwidth_bps;
  } else {
    comm_.remote_bytes += bytes;
    comm_.remote_messages += 1;
    duration = m.net_latency_s + bytes / m.net_bandwidth_bps;
  }
  return enqueue_nb(duration, kind);
}

NbTransfer RankCtx::begin_disk_transfer(double bytes, NbKind kind) {
  const auto& m = cluster_.machine();
  FIT_CHECK(m.disk_bandwidth_bps > 0, "disk access with no disk configured");
  comm_.disk_bytes += bytes;
  const double duration =
      m.disk_latency_s + bytes / (m.disk_bandwidth_bps /
                                  static_cast<double>(cluster_.n_ranks()));
  return enqueue_nb(duration, kind);
}

void RankCtx::wait_transfer(NbTransfer handle) {
  FIT_REQUIRE(handle.valid() && handle.id < nb_ops_.size(),
              "wait on an invalid nonblocking-transfer handle");
  NbOp& op = nb_ops_[handle.id];
  if (op.waited) return;
  op.waited = true;
  --nb_outstanding_;
  const double duration = op.done - op.start;
  // Time past the current clock is a stall (this includes link queueing
  // delay when the op had not even started); the rest was hidden
  // behind whatever the rank computed since the issue.
  const double exposed = std::max(0.0, op.done - time_);
  comm_.exposed_seconds += exposed;
  comm_.overlapped_seconds += std::max(0.0, duration - exposed);
  time_ = std::max(time_, op.done);
}

bool RankCtx::test_transfer(NbTransfer handle) const {
  FIT_REQUIRE(handle.valid() && handle.id < nb_ops_.size(),
              "test on an invalid nonblocking-transfer handle");
  const NbOp& op = nb_ops_[handle.id];
  return op.waited || op.done <= time_;
}

void RankCtx::quiesce() {
  for (std::size_t i = 0; i < nb_ops_.size() && nb_outstanding_ > 0; ++i)
    wait_transfer(NbTransfer{i});
}

void Cluster::note_spill(double bytes) {
  disk_used_ += bytes;
  disk_peak_ = std::max(disk_peak_, disk_used_);
  registry_.set(id_disk_used_, 0, disk_used_);
  registry_.set(id_disk_peak_, 0, disk_peak_);
}

void Cluster::note_unspill(double bytes) {
  disk_used_ -= bytes;
  FIT_CHECK(disk_used_ >= -1e-6, "disk accounting went negative");
  if (disk_used_ < 0) disk_used_ = 0;
  registry_.set(id_disk_used_, 0, disk_used_);
}

void Cluster::note_instant(const std::string& name, std::size_t rank) {
  timeline_.add_instant(timeline_.intern(name),
                        std::min(rank, n_ranks() - 1), sim_time_);
}

Cluster::Cluster(MachineConfig config, ExecutionMode mode,
                 std::size_t host_threads)
    : config_(std::move(config)), mode_(mode),
      host_threads_(effective_host_threads(host_threads)),
      registry_(config_.n_ranks()) {
  FIT_REQUIRE(config_.n_ranks() >= 1, "cluster needs at least one rank");
  mem_.reserve(config_.n_ranks());
  scratch_.reserve(config_.n_ranks());
  for (std::size_t r = 0; r < config_.n_ranks(); ++r) {
    mem_.emplace_back(r, config_.mem_per_rank_bytes());
    scratch_.emplace_back(r, config_.local_scratch_bytes);
  }
  charge_ids_ = {registry_.counter("comm.remote_bytes"),
                 registry_.counter("comm.local_bytes"),
                 registry_.counter("comm.remote_messages"),
                 registry_.counter("comm.disk_bytes"),
                 registry_.counter("compute.flops"),
                 registry_.counter("compute.integral_evals"),
                 registry_.counter("ga.gets"),
                 registry_.counter("ga.puts"),
                 registry_.counter("ga.accs"),
                 registry_.counter("comm.overlapped_seconds"),
                 registry_.counter("comm.exposed_seconds"),
                 registry_.counter("rank.busy_time_s")};
  id_mem_used_ = registry_.gauge("mem.used_bytes");
  id_mem_peak_ = registry_.gauge("mem.peak_bytes");
  id_scratch_peak_ = registry_.gauge("scratch.peak_bytes");
  id_global_peak_ = registry_.gauge("mem.global_peak_bytes");
  id_disk_used_ = registry_.gauge("disk.used_bytes");
  id_disk_peak_ = registry_.gauge("disk.peak_bytes");
  id_phase_makespan_ = registry_.histogram("phase.makespan_s");
  id_phase_imbalance_ = registry_.histogram("phase.imbalance");
  id_fault_kills_ = registry_.counter("fault.kills");
  id_fault_domain_kills_ = registry_.counter("fault.domain_kills");
  id_fault_transient_ = registry_.counter("fault.transient_ops");
  id_fault_shrinks_ = registry_.counter("fault.capacity_shrinks");
  id_fault_degrades_ = registry_.counter("fault.bandwidth_degrades");
  id_ckpt_writes_ = registry_.counter("checkpoint.writes");
  id_ckpt_bytes_ = registry_.counter("checkpoint.bytes");
  id_ckpt_restores_ = registry_.counter("checkpoint.restores");
  id_ckpt_restored_bytes_ = registry_.counter("checkpoint.restored_bytes");
  id_retry_attempts_ = registry_.counter("retry.attempts");
  id_retry_exhausted_ = registry_.counter("retry.exhausted");
  // Per-op in-flight spans are only worth their memory when a trace
  // will actually be written; set_comm_tracing overrides.
  trace_comm_ = std::getenv("FOURINDEX_TRACE_DIR") != nullptr;
  nb_span_names_[static_cast<int>(NbKind::Get)] =
      timeline_.intern("nb get (in flight)");
  nb_span_names_[static_cast<int>(NbKind::Put)] =
      timeline_.intern("nb put (in flight)");
  nb_span_names_[static_cast<int>(NbKind::Acc)] =
      timeline_.intern("nb acc (in flight)");
  dead_.assign(config_.n_ranks(), 0);
  // Failure-domain width: the machine's node by default, overridable
  // (strict parse, loud fallback) to model a different blast radius.
  // The same DomainMap also places ga::plan_tasks' per-node counters.
  domains_ = DomainMap::from_env(config_.n_ranks(), config_.ranks_per_node);
}

Cluster::~Cluster() = default;

void Cluster::install_faults(FaultInjector injector) { faults_ = injector; }

void Cluster::enable_recovery(CheckpointConfig cfg) {
  FIT_REQUIRE(config_.disk_bandwidth_bps > 0,
              "recovery requires a parallel file system "
              "(disk_bandwidth_bps > 0) to hold the checkpoints");
  ckpt_ = std::make_unique<CheckpointManager>(*this, cfg);
}

std::size_t Cluster::n_live() const {
  std::size_t live = 0;
  for (char d : dead_) live += (d == 0);
  return live;
}

std::size_t Cluster::live_owner(std::size_t rank) const {
  FIT_REQUIRE(rank < n_ranks(), "rank out of range");
  for (std::size_t i = 0; i < n_ranks(); ++i) {
    const std::size_t r = (rank + i) % n_ranks();
    if (!dead_[r]) return r;
  }
  throw FaultError("no live ranks left");
}

void Cluster::kill_rank(std::size_t rank) {
  FIT_REQUIRE(rank < n_ranks(), "rank out of range");
  if (dead_[rank]) return;
  dead_[rank] = 1;
  registry_.add(id_fault_kills_, rank, 1);
  note_instant("fault: kill rank " + std::to_string(rank), rank);
}

void Cluster::kill_domain(std::size_t domain) {
  FIT_REQUIRE(domain < n_domains(), "failure domain out of range");
  for (std::size_t r = domains_.lo(domain); r < domains_.hi(domain); ++r)
    kill_rank(r);
  const std::size_t lo = domains_.lo(domain);
  registry_.add(id_fault_domain_kills_, 0, 1);
  note_instant("fault: kill node " + std::to_string(domain), lo);
}

double Cluster::aggregate_capacity_bytes() const {
  double total = 0;
  for (std::size_t r = 0; r < n_ranks(); ++r) {
    if (!dead_[r]) total += mem_[r].capacity();
  }
  return total;
}

void Cluster::register_array(ga::GlobalArray* array) {
  arrays_.push_back(array);
}

void Cluster::unregister_array(ga::GlobalArray* array) {
  arrays_.erase(std::remove(arrays_.begin(), arrays_.end(), array),
                arrays_.end());
  if (ckpt_) ckpt_->forget(array);
}

void Cluster::charge_disk_phase(const std::string& label,
                                const std::vector<double>& bytes_per_rank) {
  FIT_CHECK(config_.disk_bandwidth_bps > 0,
            "disk phase with no disk configured");
  const double share =
      config_.disk_bandwidth_bps / static_cast<double>(n_ranks());
  double makespan = 0;
  for (std::size_t r = 0; r < bytes_per_rank.size(); ++r) {
    const double bytes = bytes_per_rank[r];
    if (bytes <= 0) continue;
    const double t = config_.disk_latency_s + bytes / share;
    registry_.add(charge_ids_.disk_bytes, r, bytes);
    registry_.add(charge_ids_.busy_time, r, t);
    makespan = std::max(makespan, t);
  }
  sim_time_ += makespan;
  if (makespan > 0) note_instant(label, 0);
}

void Cluster::charge_recovery_backoff(const std::string& label,
                                      double seconds) {
  FIT_REQUIRE(seconds >= 0, "negative backoff");
  sim_time_ += seconds;
  note_instant(label, 0);
}

void Cluster::apply_kill_events(const std::vector<FaultEvent>& events,
                                std::vector<std::size_t>& killed) {
  const std::size_t before = killed.size();
  for (const auto& ev : events) {
    switch (ev.kind) {
      case FaultKind::KillRank:
        if (ev.rank < n_ranks() && !dead_[ev.rank]) {
          kill_rank(ev.rank);
          killed.push_back(ev.rank);
        }
        break;
      case FaultKind::KillNode: {
        if (ev.rank >= n_domains()) break;
        const std::size_t lo = domains_.lo(ev.rank);
        const std::size_t hi = domains_.hi(ev.rank);
        for (std::size_t r = lo; r < hi; ++r)
          if (!dead_[r]) killed.push_back(r);
        kill_domain(ev.rank);
        break;
      }
      default:
        break;
    }
  }
  (void)before;
}

void Cluster::recover_killed(const std::vector<std::size_t>& killed,
                             std::size_t phase) {
  if (killed.empty()) return;
  if (n_live() == 0)
    throw FaultError("all ranks dead at phase " + std::to_string(phase));
  if (arrays_.empty()) return;
  if (!ckpt_)
    throw CheckpointError(
        "rank death with live global arrays and no recovery enabled "
        "(call Cluster::enable_recovery before the faulty run)");
  // One pass over the whole kill set: re-owning sees every dead rank
  // at once, so no tile can land on a rank that died in the same
  // correlated failure.
  ckpt_->restore_domain(killed);
}

void Cluster::process_boundary_faults() {
  if (!faults_.armed()) return;
  // Recovery itself replays GA traffic through run_phase-adjacent
  // machinery; don't let it re-trigger boundary faults recursively.
  in_recovery_ = true;
  struct Reset {
    bool& flag;
    ~Reset() { flag = false; }
  } reset{in_recovery_};

  const std::size_t phase = phase_index();
  auto events = faults_.take_boundary_faults(phase);
  if (faults_.kill_prob() > 0) {
    for (std::size_t r = 0; r < n_ranks(); ++r) {
      if (!dead_[r] && faults_.kill_roll(phase, r)) {
        FaultEvent ev;
        ev.kind = FaultKind::KillRank;
        ev.phase = phase;
        ev.rank = r;
        events.push_back(ev);
      }
    }
  }

  std::vector<std::size_t> killed;
  apply_kill_events(events, killed);
  for (const auto& ev : events) {
    switch (ev.kind) {
      case FaultKind::KillRank:
      case FaultKind::KillNode:
        break;  // handled by apply_kill_events above
      case FaultKind::CapacityShrink:
        for (std::size_t r = 0; r < n_ranks(); ++r) {
          if (!dead_[r])
            mem_[r].set_capacity(mem_[r].capacity() * ev.factor);
        }
        registry_.add(id_fault_shrinks_, 0, 1);
        note_instant("fault: capacity x" + fmt_fixed(ev.factor, 2), 0);
        break;
      case FaultKind::NetDegrade:
        config_.net_bandwidth_bps *= ev.factor;
        registry_.add(id_fault_degrades_, 0, 1);
        note_instant("fault: net bandwidth x" + fmt_fixed(ev.factor, 2), 0);
        break;
      case FaultKind::DiskDegrade:
        config_.disk_bandwidth_bps *= ev.factor;
        registry_.add(id_fault_degrades_, 0, 1);
        note_instant("fault: disk bandwidth x" + fmt_fixed(ev.factor, 2), 0);
        break;
      case FaultKind::CkptCorrupt:
        // Rot strikes the store itself; detection is deferred to the
        // next restore's checksum verification, exactly like latent
        // media corruption on a real PFS.
        if (ckpt_) ckpt_->inject_corruption(phase, ev.count, ev.depth);
        break;
      case FaultKind::TransientOp:
        break;  // fired inside the phase via RankCtx::fault_point
      case FaultKind::CkptIo:
        break;  // consumed by CheckpointManager's I/O fault probe
    }
  }

  recover_killed(killed, phase);
}

void Cluster::merge_rank(const RankCtx& ctx) {
  const std::size_t r = ctx.rank_;
  const CommStats& c = ctx.comm_;
  registry_.add(charge_ids_.remote_bytes, r, c.remote_bytes);
  registry_.add(charge_ids_.local_bytes, r, c.local_bytes);
  registry_.add(charge_ids_.remote_messages, r, c.remote_messages);
  registry_.add(charge_ids_.disk_bytes, r, c.disk_bytes);
  registry_.add(charge_ids_.flops, r, c.flops);
  registry_.add(charge_ids_.integral_evals, r, c.integral_evals);
  registry_.add(charge_ids_.ga_gets, r, c.ga_gets);
  registry_.add(charge_ids_.ga_puts, r, c.ga_puts);
  registry_.add(charge_ids_.ga_accs, r, c.ga_accs);
  registry_.add(charge_ids_.overlapped_seconds, r, c.overlapped_seconds);
  registry_.add(charge_ids_.exposed_seconds, r, c.exposed_seconds);
  registry_.add(charge_ids_.busy_time, r, ctx.time_);
}

void Cluster::flush_nb_spans(const RankCtx& ctx, double t0) {
  if (!trace_comm_) return;
  for (const auto& op : ctx.nb_ops_) {
    timeline_.add_span(nb_span_names_[static_cast<int>(op.kind)], ctx.rank_,
                       t0 + op.start, op.done - op.start);
  }
}

void Cluster::flush_task_spans(const RankCtx& ctx, double t0) {
  if (!trace_comm_) return;
  for (const auto& s : ctx.task_spans_)
    timeline_.add_span(s.name, ctx.rank_, t0 + s.start, s.duration);
}

void Cluster::execute_attempt(const std::function<void(RankCtx&)>& body,
                              PhaseRecord& rec, const std::string& label,
                              std::size_t attempt) {
  const std::size_t span_name = timeline_.intern(
      attempt == 0 ? label
                   : label + " (retry " + std::to_string(attempt) + ")");
  // Retries execute after the failed attempt's work and the backoff,
  // so this attempt's spans start at the phase's accumulated offset.
  const double t0 = rec.t_start + rec.makespan;
  double attempt_makespan = 0;
  if (host_threads_ <= 1 || n_ranks() == 1) {
    try {
      for (std::size_t r = 0; r < n_ranks(); ++r) {
        if (dead_[r]) continue;
        RankCtx ctx(*this, r, attempt);
        body(ctx);
        // The barrier is also the nonblocking quiescence point: no
        // handle outlives the phase, and the makespan below already
        // includes every in-flight transfer's completion.
        ctx.quiesce();
        attempt_makespan = std::max(attempt_makespan, ctx.time_);
        rec.total_rank_time += ctx.time_;
        rec.comm += ctx.comm_;
        merge_rank(ctx);
        timeline_.add_span(span_name, r, t0, ctx.time_);
        flush_nb_spans(ctx, t0);
        flush_task_spans(ctx, t0);
      }
    } catch (...) {
      rec.makespan += attempt_makespan;
      throw;
    }
  } else {
    // Each rank is processed by exactly one task (strided assignment
    // by task index), so per-rank state needs no locking; the phase
    // record is merged under a mutex (registry and timeline have
    // their own). Exceptions (e.g. scratch OOM, injected transient
    // faults) are captured and rethrown on the calling thread. Tasks
    // run on the process-wide util::ThreadPool — workers are created
    // once per process, not once per phase — and the strided rank ->
    // task mapping keeps all counters deterministic no matter which
    // worker executes which task.
    const std::size_t nthreads = std::min(host_threads_, n_ranks());
    std::mutex merge_mutex;
    std::exception_ptr first_error;
    util::ThreadPool::shared().run_tasks(nthreads, [&](std::size_t t) {
      PhaseRecord local;
      double local_makespan = 0;
      try {
        for (std::size_t r = t; r < n_ranks(); r += nthreads) {
          if (dead_[r]) continue;
          RankCtx ctx(*this, r, attempt);
          body(ctx);
          ctx.quiesce();  // barrier = nonblocking quiescence point
          local_makespan = std::max(local_makespan, ctx.time_);
          local.total_rank_time += ctx.time_;
          local.comm += ctx.comm_;
          merge_rank(ctx);
          timeline_.add_span(span_name, r, t0, ctx.time_);
          flush_nb_spans(ctx, t0);
          flush_task_spans(ctx, t0);
        }
        std::lock_guard<std::mutex> lock(merge_mutex);
        attempt_makespan = std::max(attempt_makespan, local_makespan);
        rec.total_rank_time += local.total_rank_time;
        rec.comm += local.comm;
      } catch (...) {
        std::lock_guard<std::mutex> lock(merge_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
    if (first_error) {
      rec.makespan += attempt_makespan;
      std::rethrow_exception(first_error);
    }
  }
  rec.makespan += attempt_makespan;
}

void Cluster::run_phase(const std::string& label,
                        const std::function<void(RankCtx&)>& body) {
  if (!in_recovery_) process_boundary_faults();
  const std::size_t phase = phase_index();
  PhaseRecord rec;
  rec.label = label;
  rec.t_start = sim_time_;
  const std::size_t max_retries = ckpt_ ? ckpt_->config().max_retries : 0;
  std::size_t attempt = 0;
  for (;;) {
    try {
      execute_attempt(body, rec, label, attempt);
      break;
    } catch (const FaultError& e) {
      registry_.add(id_retry_attempts_, 0, 1);
      if (attempt >= max_retries) {
        registry_.add(id_retry_exhausted_, 0, 1);
        note_instant("retry budget exhausted: " + label, 0);
        throw FaultError("phase '" + label + "' failed after " +
                         std::to_string(attempt + 1) +
                         " attempt(s): " + e.what());
      }
      // Roll back this attempt's partial writes to the pre-phase
      // checkpoint, charge an exponential backoff, and go again on
      // the (still consistent) pre-phase state.
      ckpt_->restore_dirty();
      // Double faults: a rank or node scheduled to die inside this
      // retry's backoff window dies now, after the rollback, and its
      // tiles are re-owned before the retry runs on the survivors.
      if (!in_recovery_) {
        auto late = faults_.take_retry_kills(phase, attempt + 1);
        if (!late.empty()) {
          in_recovery_ = true;
          struct Reset {
            bool& flag;
            ~Reset() { flag = false; }
          } reset{in_recovery_};
          std::vector<std::size_t> killed;
          apply_kill_events(late, killed);
          recover_killed(killed, phase);
        }
      }
      const double backoff =
          ckpt_->config().backoff_s * static_cast<double>(1ull << attempt);
      rec.makespan += backoff;
      const double watchdog = ckpt_->config().phase_sim_timeout_s;
      if (watchdog > 0 && rec.makespan > watchdog) {
        throw TimeoutError("phase '" + label +
                           "' exceeded its simulated-time watchdog (" +
                           fmt_sci(rec.makespan, 2) + " s > " +
                           fmt_sci(watchdog, 2) + " s) while retrying: " +
                           e.what());
      }
      note_instant("retry " + std::to_string(attempt + 1) + ": " + label, 0);
      ++attempt;
    }
  }
  if (rec.total_rank_time > 0)
    rec.imbalance = rec.makespan * static_cast<double>(n_live()) /
                    rec.total_rank_time;
  sim_time_ += rec.makespan;
  registry_.observe(id_phase_makespan_, rec.makespan);
  registry_.observe(id_phase_imbalance_, rec.imbalance);
  FIT_LOG_DEBUG("phase '" << rec.label << "': makespan "
                << fmt_sci(rec.makespan, 2) << " s, imbalance "
                << fmt_fixed(rec.imbalance, 2) << ", remote "
                << human_bytes(rec.comm.remote_bytes) << ", flops "
                << human_count(rec.comm.flops));
  phases_.push_back(std::move(rec));
  note_global_usage();
  ++epoch_;  // the barrier
  // The barrier is the consistent cut: snapshot what this phase wrote.
  if (ckpt_ && !in_recovery_) ckpt_->write();
}

CommStats Cluster::totals() const {
  CommStats t;
  t.remote_bytes = registry_.sum("comm.remote_bytes");
  t.local_bytes = registry_.sum("comm.local_bytes");
  t.remote_messages = registry_.sum("comm.remote_messages");
  t.disk_bytes = registry_.sum("comm.disk_bytes");
  t.flops = registry_.sum("compute.flops");
  t.integral_evals = registry_.sum("compute.integral_evals");
  t.ga_gets = registry_.sum("ga.gets");
  t.ga_puts = registry_.sum("ga.puts");
  t.ga_accs = registry_.sum("ga.accs");
  t.overlapped_seconds = registry_.sum("comm.overlapped_seconds");
  t.exposed_seconds = registry_.sum("comm.exposed_seconds");
  return t;
}

double Cluster::global_used() const {
  double total = 0;
  for (const auto& m : mem_) total += m.used();
  return total;
}

void Cluster::note_global_usage() {
  global_peak_ = std::max(global_peak_, global_used());
  for (std::size_t r = 0; r < n_ranks(); ++r) {
    registry_.set(id_mem_used_, r, mem_[r].used());
    registry_.set(id_mem_peak_, r, mem_[r].peak());
    registry_.set(id_scratch_peak_, r, scratch_[r].peak());
  }
  registry_.set(id_global_peak_, 0, global_peak_);
}

double Cluster::worst_imbalance() const {
  double w = 1.0;
  for (const auto& p : phases_) w = std::max(w, p.imbalance);
  return w;
}

bool Cluster::write_chrome_trace(const std::string& path) const {
  return timeline_.write_chrome_trace(
      path, config_.name.empty() ? "fourindex cluster" : config_.name);
}

RankBuffer::RankBuffer(RankCtx& ctx, std::size_t words, const char* what)
    : ctx_(ctx), words_(words) {
  try {
    ctx_.scratch().alloc(8.0 * static_cast<double>(words), what);
  } catch (const OutOfMemoryError&) {
    ctx_.note_instant(std::string("oom: ") + what);
    throw;
  }
  if (ctx_.real()) storage_.assign(words, 0.0);
}

RankBuffer::~RankBuffer() {
  ctx_.scratch().release(8.0 * static_cast<double>(words_));
}

void RankBuffer::zero() {
  std::fill(storage_.begin(), storage_.end(), 0.0);
}

}  // namespace fit::runtime
