#include "runtime/cluster.hpp"

#include <algorithm>
#include <mutex>
#include <thread>

#include "util/format.hpp"
#include "util/logging.hpp"

namespace fit::runtime {

void MemTracker::alloc(double bytes, const char* what) {
  FIT_REQUIRE(bytes >= 0, "negative allocation");
  if (used_ + bytes > capacity_) {
    throw OutOfMemoryError(
        "rank " + std::to_string(rank_) + ": allocating " +
        human_bytes(bytes) + " for " + what + " exceeds local capacity " +
        human_bytes(capacity_) + " (in use: " + human_bytes(used_) + ")");
  }
  used_ += bytes;
  peak_ = std::max(peak_, used_);
}

bool MemTracker::try_alloc(double bytes) {
  FIT_REQUIRE(bytes >= 0, "negative allocation");
  if (used_ + bytes > capacity_) return false;
  used_ += bytes;
  peak_ = std::max(peak_, used_);
  return true;
}

void MemTracker::release(double bytes) {
  used_ -= bytes;
  FIT_CHECK(used_ >= -1e-6, "memory tracker went negative");
  if (used_ < 0) used_ = 0;
}

std::size_t RankCtx::n_ranks() const { return cluster_.n_ranks(); }
bool RankCtx::real() const {
  return cluster_.mode() == ExecutionMode::Real;
}
const MachineConfig& RankCtx::machine() const { return cluster_.machine(); }
MemTracker& RankCtx::memory() { return cluster_.memory(rank_); }
MemTracker& RankCtx::scratch() { return cluster_.scratch(rank_); }

void RankCtx::charge_flops(double flops) {
  comm_.flops += flops;
  time_ += flops / cluster_.machine().flops_per_rank;
}

void RankCtx::charge_integrals(double count) {
  comm_.integral_evals += count;
  time_ += count / cluster_.machine().integrals_per_sec;
}

void RankCtx::charge_transfer(std::size_t owner, double bytes) {
  const auto& m = cluster_.machine();
  if (cluster_.node_of(owner) == cluster_.node_of(rank_)) {
    comm_.local_bytes += bytes;
    time_ += bytes / m.local_bandwidth_bps;
  } else {
    comm_.remote_bytes += bytes;
    comm_.remote_messages += 1;
    time_ += m.net_latency_s + bytes / m.net_bandwidth_bps;
  }
}

void RankCtx::note_instant(const std::string& name) {
  cluster_.note_instant(name, rank_);
}

void RankCtx::charge_disk(double bytes) {
  const auto& m = cluster_.machine();
  FIT_CHECK(m.disk_bandwidth_bps > 0, "disk access with no disk configured");
  comm_.disk_bytes += bytes;
  // The file system bandwidth is collective: each rank sees its share.
  time_ += m.disk_latency_s +
           bytes / (m.disk_bandwidth_bps /
                    static_cast<double>(cluster_.n_ranks()));
}

void Cluster::note_spill(double bytes) {
  disk_used_ += bytes;
  disk_peak_ = std::max(disk_peak_, disk_used_);
  registry_.set(id_disk_used_, 0, disk_used_);
  registry_.set(id_disk_peak_, 0, disk_peak_);
}

void Cluster::note_unspill(double bytes) {
  disk_used_ -= bytes;
  FIT_CHECK(disk_used_ >= -1e-6, "disk accounting went negative");
  if (disk_used_ < 0) disk_used_ = 0;
  registry_.set(id_disk_used_, 0, disk_used_);
}

void Cluster::note_instant(const std::string& name, std::size_t rank) {
  timeline_.add_instant(timeline_.intern(name),
                        std::min(rank, n_ranks() - 1), sim_time_);
}

Cluster::Cluster(MachineConfig config, ExecutionMode mode,
                 std::size_t host_threads)
    : config_(std::move(config)), mode_(mode),
      host_threads_(std::max<std::size_t>(1, host_threads)),
      registry_(config_.n_ranks()) {
  FIT_REQUIRE(config_.n_ranks() >= 1, "cluster needs at least one rank");
  mem_.reserve(config_.n_ranks());
  scratch_.reserve(config_.n_ranks());
  for (std::size_t r = 0; r < config_.n_ranks(); ++r) {
    mem_.emplace_back(r, config_.mem_per_rank_bytes());
    scratch_.emplace_back(r, config_.local_scratch_bytes);
  }
  charge_ids_ = {registry_.counter("comm.remote_bytes"),
                 registry_.counter("comm.local_bytes"),
                 registry_.counter("comm.remote_messages"),
                 registry_.counter("comm.disk_bytes"),
                 registry_.counter("compute.flops"),
                 registry_.counter("compute.integral_evals"),
                 registry_.counter("ga.gets"),
                 registry_.counter("ga.puts"),
                 registry_.counter("ga.accs"),
                 registry_.counter("rank.busy_time_s")};
  id_mem_used_ = registry_.gauge("mem.used_bytes");
  id_mem_peak_ = registry_.gauge("mem.peak_bytes");
  id_scratch_peak_ = registry_.gauge("scratch.peak_bytes");
  id_global_peak_ = registry_.gauge("mem.global_peak_bytes");
  id_disk_used_ = registry_.gauge("disk.used_bytes");
  id_disk_peak_ = registry_.gauge("disk.peak_bytes");
  id_phase_makespan_ = registry_.histogram("phase.makespan_s");
  id_phase_imbalance_ = registry_.histogram("phase.imbalance");
}

void Cluster::merge_rank(const RankCtx& ctx) {
  const std::size_t r = ctx.rank_;
  const CommStats& c = ctx.comm_;
  registry_.add(charge_ids_.remote_bytes, r, c.remote_bytes);
  registry_.add(charge_ids_.local_bytes, r, c.local_bytes);
  registry_.add(charge_ids_.remote_messages, r, c.remote_messages);
  registry_.add(charge_ids_.disk_bytes, r, c.disk_bytes);
  registry_.add(charge_ids_.flops, r, c.flops);
  registry_.add(charge_ids_.integral_evals, r, c.integral_evals);
  registry_.add(charge_ids_.ga_gets, r, c.ga_gets);
  registry_.add(charge_ids_.ga_puts, r, c.ga_puts);
  registry_.add(charge_ids_.ga_accs, r, c.ga_accs);
  registry_.add(charge_ids_.busy_time, r, ctx.time_);
}

void Cluster::run_phase(const std::string& label,
                        const std::function<void(RankCtx&)>& body) {
  PhaseRecord rec;
  rec.label = label;
  rec.t_start = sim_time_;
  const std::size_t span_name = timeline_.intern(label);
  if (host_threads_ <= 1 || n_ranks() == 1) {
    for (std::size_t r = 0; r < n_ranks(); ++r) {
      RankCtx ctx(*this, r);
      body(ctx);
      rec.makespan = std::max(rec.makespan, ctx.time_);
      rec.total_rank_time += ctx.time_;
      rec.comm += ctx.comm_;
      merge_rank(ctx);
      timeline_.add_span(span_name, r, rec.t_start, ctx.time_);
    }
  } else {
    // Each rank is processed by exactly one host thread (strided
    // assignment), so per-rank state needs no locking; the phase
    // record is merged under a mutex (registry and timeline have
    // their own). Exceptions (e.g. scratch OOM) are captured and
    // rethrown on the calling thread.
    const std::size_t nthreads = std::min(host_threads_, n_ranks());
    std::mutex merge_mutex;
    std::exception_ptr first_error;
    std::vector<std::thread> pool;
    pool.reserve(nthreads);
    for (std::size_t t = 0; t < nthreads; ++t) {
      pool.emplace_back([&, t] {
        PhaseRecord local;
        try {
          for (std::size_t r = t; r < n_ranks(); r += nthreads) {
            RankCtx ctx(*this, r);
            body(ctx);
            local.makespan = std::max(local.makespan, ctx.time_);
            local.total_rank_time += ctx.time_;
            local.comm += ctx.comm_;
            merge_rank(ctx);
            timeline_.add_span(span_name, r, rec.t_start, ctx.time_);
          }
          std::lock_guard<std::mutex> lock(merge_mutex);
          rec.makespan = std::max(rec.makespan, local.makespan);
          rec.total_rank_time += local.total_rank_time;
          rec.comm += local.comm;
        } catch (...) {
          std::lock_guard<std::mutex> lock(merge_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      });
    }
    for (auto& th : pool) th.join();
    if (first_error) std::rethrow_exception(first_error);
  }
  if (rec.total_rank_time > 0)
    rec.imbalance = rec.makespan * static_cast<double>(n_ranks()) /
                    rec.total_rank_time;
  sim_time_ += rec.makespan;
  registry_.observe(id_phase_makespan_, rec.makespan);
  registry_.observe(id_phase_imbalance_, rec.imbalance);
  FIT_LOG_DEBUG("phase '" << rec.label << "': makespan "
                << fmt_sci(rec.makespan, 2) << " s, imbalance "
                << fmt_fixed(rec.imbalance, 2) << ", remote "
                << human_bytes(rec.comm.remote_bytes) << ", flops "
                << human_count(rec.comm.flops));
  phases_.push_back(std::move(rec));
  note_global_usage();
  ++epoch_;  // the barrier
}

CommStats Cluster::totals() const {
  CommStats t;
  t.remote_bytes = registry_.sum("comm.remote_bytes");
  t.local_bytes = registry_.sum("comm.local_bytes");
  t.remote_messages = registry_.sum("comm.remote_messages");
  t.disk_bytes = registry_.sum("comm.disk_bytes");
  t.flops = registry_.sum("compute.flops");
  t.integral_evals = registry_.sum("compute.integral_evals");
  t.ga_gets = registry_.sum("ga.gets");
  t.ga_puts = registry_.sum("ga.puts");
  t.ga_accs = registry_.sum("ga.accs");
  return t;
}

double Cluster::global_used() const {
  double total = 0;
  for (const auto& m : mem_) total += m.used();
  return total;
}

void Cluster::note_global_usage() {
  global_peak_ = std::max(global_peak_, global_used());
  for (std::size_t r = 0; r < n_ranks(); ++r) {
    registry_.set(id_mem_used_, r, mem_[r].used());
    registry_.set(id_mem_peak_, r, mem_[r].peak());
    registry_.set(id_scratch_peak_, r, scratch_[r].peak());
  }
  registry_.set(id_global_peak_, 0, global_peak_);
}

double Cluster::worst_imbalance() const {
  double w = 1.0;
  for (const auto& p : phases_) w = std::max(w, p.imbalance);
  return w;
}

bool Cluster::write_chrome_trace(const std::string& path) const {
  return timeline_.write_chrome_trace(
      path, config_.name.empty() ? "fourindex cluster" : config_.name);
}

RankBuffer::RankBuffer(RankCtx& ctx, std::size_t words, const char* what)
    : ctx_(ctx), words_(words) {
  try {
    ctx_.scratch().alloc(8.0 * static_cast<double>(words), what);
  } catch (const OutOfMemoryError&) {
    ctx_.note_instant(std::string("oom: ") + what);
    throw;
  }
  if (ctx_.real()) storage_.assign(words, 0.0);
}

RankBuffer::~RankBuffer() {
  ctx_.scratch().release(8.0 * static_cast<double>(words_));
}

void RankBuffer::zero() {
  std::fill(storage_.begin(), storage_.end(), 0.0);
}

}  // namespace fit::runtime
