// The simulated distributed-memory cluster.
//
// Execution model: bulk-synchronous SPMD, exactly the structure of the
// paper's Listings 4/8/10 — each phase runs a rank body for every rank
// followed by a barrier (GA_Sync). Because all remote operations are
// one-sided gets/puts/accumulates of data written in *earlier* phases
// (an invariant the GA layer enforces), executing the rank bodies
// sequentially between barriers is semantically identical to true
// parallel execution, while remaining deterministic and scaling to
// thousands of simulated ranks on one host.
//
// Costs are tracked per rank: flops, integral evaluations, and
// latency/bandwidth-modeled communication. A phase advances simulated
// time by the *maximum* rank time in that phase (the BSP makespan), so
// load imbalance — e.g. the triangular alpha >= beta distribution of
// Sec. 7.3 — shows up faithfully.
//
// Two execution modes:
//   Real      tile buffers are allocated and the arithmetic is
//             actually performed (used by tests and small examples;
//             results are bit-comparable to the sequential schedules);
//   Simulate  only counters and simulated time advance (used by the
//             paper-scale benchmarks, where the arithmetic volume
//             would be prohibitive on the host but the paper's claims
//             are about bytes, capacity and modeled time).
// Memory accounting (and hence OOM "Failed" outcomes) is identical in
// both modes.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/faults.hpp"
#include "runtime/machine.hpp"
#include "runtime/topology.hpp"
#include "util/error.hpp"

namespace fit::ga {
class GlobalArray;
}

namespace fit::runtime {

/// How a Cluster executes rank bodies (see the header comment).
enum class ExecutionMode {
  Real,      ///< buffers allocated, arithmetic performed, bit-checkable
  Simulate,  ///< counters and modeled time only (paper-scale runs)
};

/// Per-rank memory accounting. Throws OutOfMemoryError when the
/// rank's share of node memory is exceeded.
class MemTracker {
 public:
  /// Zero-capacity placeholder (rank 0); reassigned by the cluster.
  MemTracker() = default;
  /// Tracker for `rank` with a ceiling of `capacity_bytes`.
  MemTracker(std::size_t rank, double capacity_bytes)
      : rank_(rank), capacity_(capacity_bytes) {}

  /// Charge an allocation of `bytes` (`what` labels the OOM message);
  /// throws OutOfMemoryError past capacity.
  void alloc(double bytes, const char* what);
  /// Non-throwing variant: returns false (and charges nothing) when
  /// the allocation would exceed capacity. Used by the spill path.
  bool try_alloc(double bytes);
  /// Releasing more than is in use (a double release) is an internal
  /// accounting bug and raises InternalError without touching used_.
  void release(double bytes);

  /// Bytes currently charged.
  double used() const { return used_; }
  /// High-water mark of used().
  double peak() const { return peak_; }
  /// Current allocation ceiling in bytes.
  double capacity() const { return capacity_; }
  /// Capacity-shrink faults lower the ceiling mid-run; used_ may then
  /// exceed capacity until the owner frees (new allocations fail).
  void set_capacity(double capacity_bytes) { capacity_ = capacity_bytes; }

 private:
  std::size_t rank_ = 0;
  double capacity_ = 0;
  double used_ = 0;
  double peak_ = 0;
};

/// Communication/computation counters. This is a *view* type: ranks
/// accumulate one locally during a phase, and the cluster's
/// obs::MetricsRegistry is the authoritative store the aggregate
/// views (Cluster::totals(), per-phase records) are assembled from.
struct CommStats {
  double remote_bytes = 0;     ///< bytes moved between nodes
  double local_bytes = 0;      ///< bytes moved within a node
  double remote_messages = 0;  ///< inter-node transfer count
  double disk_bytes = 0;       ///< bytes to/from the parallel FS
  double flops = 0;            ///< floating-point operations charged
  double integral_evals = 0;   ///< on-the-fly integral evaluations
  double ga_gets = 0;  ///< one-sided get operations (GA layer)
  double ga_puts = 0;  ///< one-sided put operations (GA layer)
  double ga_accs = 0;  ///< one-sided accumulate operations (GA layer)
  // Decomposition of the alpha-beta transfer time: seconds a rank's
  // clock actually stalled on transfers (exposed) vs. seconds the
  // link worked while the rank computed (overlapped). Blocking
  // operations are fully exposed; nonblocking ones split by how much
  // compute was charged between issue and wait.
  double overlapped_seconds = 0;  ///< wire time hidden behind compute
  double exposed_seconds = 0;     ///< wire time the clock stalled on

  /// Element-wise accumulation (rank counters into aggregates).
  void operator+=(const CommStats& o) {
    remote_bytes += o.remote_bytes;
    local_bytes += o.local_bytes;
    remote_messages += o.remote_messages;
    disk_bytes += o.disk_bytes;
    flops += o.flops;
    integral_evals += o.integral_evals;
    ga_gets += o.ga_gets;
    ga_puts += o.ga_puts;
    ga_accs += o.ga_accs;
    overlapped_seconds += o.overlapped_seconds;
    exposed_seconds += o.exposed_seconds;
  }
};

/// One executed BSP phase: its label, timing, and traffic.
struct PhaseRecord {
  std::string label;     ///< the run_phase label
  double t_start = 0;    ///< cumulative sim time when the phase began
  double makespan = 0;   ///< max rank time (what sim time advanced by)
  double total_rank_time = 0;  ///< sum of the ranks' busy time
  double imbalance = 1.0;      ///< makespan * ranks / total_rank_time
  CommStats comm;              ///< traffic/compute charged in the phase
};

class Cluster;

/// Handle for a nonblocking transfer issued through
/// RankCtx::begin_transfer / begin_disk_transfer. Value type; hand it
/// back to wait_transfer / test_transfer on the same RankCtx (handles
/// do not outlive the phase — the barrier quiesces every outstanding
/// one).
struct NbTransfer {
  /// Sentinel id of a default-constructed (invalid) handle.
  static constexpr std::size_t kInvalid = ~static_cast<std::size_t>(0);
  /// Index into the issuing rank's in-flight operation list.
  std::size_t id = kInvalid;
  /// True for a handle actually returned by begin_transfer.
  bool valid() const { return id != kInvalid; }
};

/// What a nonblocking transfer does at the GA level; used only to
/// label the in-flight span on the Chrome-trace timeline.
enum class NbKind {
  Get,  ///< one-sided read of a remote tile
  Put,  ///< one-sided write of a remote tile
  Acc,  ///< one-sided accumulate into a remote tile
};

/// Handle given to a rank body during a phase; all cost charging goes
/// through it.
class RankCtx {
 public:
  /// This rank's id in [0, n_ranks()).
  std::size_t rank() const { return rank_; }
  /// Rank count of the owning cluster.
  std::size_t n_ranks() const;
  /// True under ExecutionMode::Real (buffers hold real data).
  bool real() const;
  /// The owning cluster's machine description.
  const MachineConfig& machine() const;

  /// Charge `flops` floating-point operations to this rank's clock.
  void charge_flops(double flops);
  /// Charge `count` on-the-fly integral evaluations to the clock.
  void charge_integrals(double count);
  /// Charge a data transfer of `bytes` between this rank and `owner`.
  void charge_transfer(std::size_t owner, double bytes);

  /// Charge a transfer of `bytes` to/from the shared parallel file
  /// system (spilled tiles). Requires disk_bandwidth_bps > 0.
  void charge_disk(double bytes);

  /// Advance this rank's clock by a modeled scheduler stall (e.g. the
  /// queueing delay at a contended task counter). Unlike a transfer
  /// this occupies no link time: the rank is simply waiting.
  void stall(double seconds);

  // --- nonblocking transfers (the GA nb* operations build on these) --
  //
  // Each rank owns one injection link. A nonblocking transfer occupies
  // the link for its alpha-beta (or disk) time starting at
  // max(now, link free) but does NOT advance the rank's clock: compute
  // charged before the matching wait_transfer runs concurrently with
  // the wire time. wait_transfer advances the clock to the completion
  // time and splits the transfer duration into comm.overlapped_seconds
  // (hidden behind compute) and comm.exposed_seconds (stalled).
  // Blocking charge_transfer/charge_disk also respect the link
  // timeline, so a blocking op issued behind an in-flight nonblocking
  // one queues after it; with no nonblocking traffic their cost is
  // byte-for-byte what it always was.

  /// Begin a nonblocking transfer of `bytes` between this rank and
  /// `owner`. Counters (bytes, messages) are charged at issue.
  NbTransfer begin_transfer(std::size_t owner, double bytes,
                            NbKind kind = NbKind::Get);
  /// Begin a nonblocking transfer to/from the shared parallel file
  /// system. Requires disk_bandwidth_bps > 0.
  NbTransfer begin_disk_transfer(double bytes, NbKind kind = NbKind::Get);
  /// Complete a transfer: advances the clock to its completion time.
  /// Idempotent — waiting twice (or waiting after quiesce) is a no-op.
  void wait_transfer(NbTransfer handle);
  /// True when the transfer has already completed at the current
  /// clock (a wait now would not stall).
  bool test_transfer(NbTransfer handle) const;
  /// Wait for every outstanding nonblocking transfer. The phase
  /// barrier calls this, so no transfer ever leaks across an epoch.
  void quiesce();
  /// Outstanding (begun, not yet waited) nonblocking transfers.
  std::size_t nb_outstanding() const { return nb_outstanding_; }

  /// Count a one-sided get (charged by the GA layer).
  void count_ga_get() { comm_.ga_gets += 1; }
  /// Count a one-sided put (charged by the GA layer).
  void count_ga_put() { comm_.ga_puts += 1; }
  /// Count a one-sided accumulate (charged by the GA layer).
  void count_ga_acc() { comm_.ga_accs += 1; }

  /// Record a point event on this rank's timeline track.
  void note_instant(const std::string& name);

  /// Record a span on this rank's timeline track, in seconds relative
  /// to the start of the current phase attempt (use elapsed() for the
  /// endpoints). Recorded only while comm tracing is enabled — the
  /// claim-execute loops emit one span per dynamically claimed task.
  void note_span(const std::string& name, double t_start, double duration);

  /// Fault-injection probe, called by the GA layer before every
  /// one-sided op. Throws FaultError when the installed injector
  /// decrees a transient failure; run_phase's retry path absorbs it.
  void fault_point(const char* what);

  /// This rank's Global-Array memory tracker.
  MemTracker& memory();
  /// This rank's local scratch-buffer tracker.
  MemTracker& scratch();
  /// This rank's clock, in seconds since the phase attempt began.
  double elapsed() const { return time_; }

 private:
  friend class Cluster;
  RankCtx(Cluster& cluster, std::size_t rank, std::size_t attempt = 0)
      : cluster_(cluster), rank_(rank), attempt_(attempt) {}

  struct NbOp {
    double start = 0;     // when the link begins moving the bytes
    double done = 0;      // completion time on this rank's clock
    NbKind kind = NbKind::Get;
    bool waited = false;
  };
  struct TaskSpan {
    std::size_t name = 0;  // interned timeline name
    double start = 0;      // attempt-relative seconds
    double duration = 0;
  };
  NbTransfer enqueue_nb(double duration, NbKind kind);

  Cluster& cluster_;
  std::size_t rank_;
  std::size_t attempt_;
  std::size_t op_seq_ = 0;  // one-sided ops issued so far this attempt
  double time_ = 0;
  double link_free_ = 0;  // when this rank's injection link frees up
  std::vector<NbOp> nb_ops_;
  std::size_t nb_outstanding_ = 0;
  std::vector<TaskSpan> task_spans_;
  CommStats comm_;
};

/// The simulated distributed-memory machine: a BSP phase executor with
/// per-rank cost/memory accounting, failure domains, fault injection,
/// and phase-boundary checkpointing (see the header comment for the
/// execution model).
class Cluster {
 public:
  /// `host_threads` > 1 executes the ranks of each phase on a pool of
  /// host threads (the GA layer's one-sided operations are thread
  /// safe). Results are numerically identical up to floating-point
  /// accumulation order; all counters are exactly deterministic.
  Cluster(MachineConfig config, ExecutionMode mode,
          std::size_t host_threads = 1);
  /// Tears down the host-thread pool; registered arrays must already
  /// be gone (they unregister themselves on destruction).
  ~Cluster();

  /// The machine description the cluster was built from.
  const MachineConfig& machine() const { return config_; }
  /// Real (bit-checkable) or Simulate (counters only).
  ExecutionMode mode() const { return mode_; }
  /// Effective host-thread count: the constructor argument (or
  /// FOURINDEX_THREADS, which overrides it) clamped to
  /// std::thread::hardware_concurrency() so simulated-timing benches
  /// never run oversubscribed.
  std::size_t host_threads() const { return host_threads_; }
  /// Total rank count (nodes x ranks per node).
  std::size_t n_ranks() const { return config_.n_ranks(); }
  /// Physical node a rank lives on (comm-topology grouping).
  std::size_t node_of(std::size_t rank) const {
    return rank / config_.ranks_per_node;
  }

  // --- correlated failure domains ------------------------------------
  //
  // Ranks group into failure domains of `domain_ranks()` consecutive
  // ranks — by default the machine's physical node (ranks_per_node),
  // overridable with FOURINDEX_RANKS_PER_NODE to model blast radii
  // that differ from the comm topology (a shared PSU, a rack switch).
  // FaultKind::KillNode takes a *domain* index and kills every rank in
  // it at the barrier; recovery restores all of them in one pass. The
  // same grouping (runtime::DomainMap) places ga::plan_tasks' per-node
  // counters, so a node death always takes its counter with it.
  /// The failure-domain grouping (see the section comment above).
  const DomainMap& domains() const { return domains_; }
  /// Ranks per failure domain.
  std::size_t domain_ranks() const { return domains_.width(); }
  /// Failure domain a rank belongs to.
  std::size_t domain_of(std::size_t rank) const {
    return domains_.domain_of(rank);
  }
  /// Number of failure domains.
  std::size_t n_domains() const { return domains_.n_domains(); }
  /// Kill every (live) rank of a failure domain; counts
  /// fault.domain_kills. Recovery is the caller's business, as with
  /// kill_rank.
  void kill_domain(std::size_t domain);

  /// Run one SPMD phase: body(ctx) for every rank, then a barrier.
  /// Simulated time advances by the slowest rank.
  void run_phase(const std::string& label,
                 const std::function<void(RankCtx&)>& body);

  /// Barrier epoch counter (incremented by every run_phase); the GA
  /// layer uses it to enforce the sync-before-read discipline.
  std::uint64_t epoch() const { return epoch_; }

  /// Index the *next* run_phase call will get (0-based). FaultEvent
  /// phases refer to this numbering.
  std::size_t phase_index() const { return phases_.size(); }

  /// Install a fault injector; replaces any previous one.
  void install_faults(FaultInjector injector);
  /// The installed injector (inert unless install_faults armed it).
  FaultInjector& faults() { return faults_; }

  /// Turn on phase-boundary checkpointing and bounded phase retry.
  /// Requires a parallel file system (disk_bandwidth_bps > 0): the
  /// checkpoints are charged through the disk alpha-beta model.
  void enable_recovery(CheckpointConfig cfg = {});
  /// True once enable_recovery has been called.
  bool recovery_enabled() const { return ckpt_ != nullptr; }
  /// The checkpoint manager (nullptr until enable_recovery).
  CheckpointManager* checkpoints() { return ckpt_.get(); }

  /// Rank liveness. Dead ranks are skipped by run_phase; their tiles
  /// are re-owned by the survivors (see CheckpointManager).
  bool is_dead(std::size_t rank) const { return dead_[rank] != 0; }
  /// Number of ranks still alive.
  std::size_t n_live() const;
  /// Remap a nominal owner rank to a live one (identity for live
  /// ranks; next live rank cyclically for dead ones).
  std::size_t live_owner(std::size_t rank) const;
  /// Mark a rank permanently dead; counts fault.kills. Recovery (tile
  /// re-owning, checkpoint restore) is the caller's business.
  void kill_rank(std::size_t rank);

  /// Sum of the live ranks' *current* memory capacities — the live
  /// view of aggregate S, which capacity-shrink faults and rank deaths
  /// reduce (MachineConfig::aggregate_memory_bytes() is the nominal
  /// one). The planner's degradation path replans against this.
  double aggregate_capacity_bytes() const;

  /// Add an array to the live GlobalArray registry (called by the GA
  /// layer on construction); the checkpoint manager snapshots/restores
  /// exactly the registered set.
  void register_array(ga::GlobalArray* array);
  /// Remove a destroyed array from the registry (and from every
  /// retained checkpoint generation, via CheckpointManager::forget).
  void unregister_array(ga::GlobalArray* array);
  /// The currently live registered arrays.
  const std::vector<ga::GlobalArray*>& registered_arrays() const {
    return arrays_;
  }

  /// Charge a bulk parallel-file-system transfer (checkpoint write or
  /// restore) outside any compute phase: advances simulated time by
  /// the slowest rank's share but does NOT append a PhaseRecord or
  /// bump the epoch, so phase indices and the sync discipline are
  /// unaffected.
  void charge_disk_phase(const std::string& label,
                         const std::vector<double>& bytes_per_rank);

  /// Advance simulated time by a recovery stall (the checkpoint
  /// layer's I/O retry backoff). Occupies no link or disk time — the
  /// cluster is simply waiting out the fault.
  void charge_recovery_backoff(const std::string& label, double seconds);

  /// `rank`'s Global-Array memory tracker.
  MemTracker& memory(std::size_t rank) { return mem_[rank]; }
  /// `rank`'s Global-Array memory tracker (read-only view).
  const MemTracker& memory(std::size_t rank) const { return mem_[rank]; }
  /// `rank`'s local scratch-buffer tracker.
  MemTracker& scratch(std::size_t rank) { return scratch_[rank]; }

  /// Total bytes currently allocated across all ranks.
  double global_used() const;
  /// High-water mark of global_used().
  double global_peak() const { return global_peak_; }
  /// Re-sample global_used() into the peak and the mem.* gauges
  /// (called by the GA layer after every allocation).
  void note_global_usage();

  /// Bytes of Global Array data currently spilled to disk.
  double disk_used() const { return disk_used_; }
  /// High-water mark of disk_used().
  double disk_peak() const { return disk_peak_; }
  /// Account `bytes` of tile data moving out to the parallel FS.
  void note_spill(double bytes);
  /// Account `bytes` of spilled tile data coming back into memory.
  void note_unspill(double bytes);

  /// Record a point event (OOM, spill, ...) on `rank`'s track at the
  /// current simulated time; shows up as an instant in the exported
  /// Chrome trace.
  void note_instant(const std::string& name, std::size_t rank);

  /// Cumulative simulated time: the sum of every phase's BSP makespan
  /// plus checkpoint I/O and recovery backoff.
  double sim_time() const { return sim_time_; }
  /// Aggregate counters, assembled from the metrics registry (the
  /// registry is the source of truth; this is the legacy view).
  CommStats totals() const;
  /// Every executed phase, in order, with timing and traffic.
  const std::vector<PhaseRecord>& phases() const { return phases_; }

  /// Max per-phase imbalance observed so far.
  double worst_imbalance() const;

  /// All counters/gauges/histograms this cluster maintains: per-rank
  /// communication and compute charges ("comm.*", "compute.*",
  /// "ga.*", "rank.busy_time_s"), memory gauges ("mem.*", "disk.*"),
  /// and per-phase histograms ("phase.*").
  obs::MetricsRegistry& metrics() { return registry_; }
  const obs::MetricsRegistry& metrics() const { return registry_; }

  /// Phase timeline: one track per rank, one span per (phase, rank),
  /// instants for OOM/spill events.
  const obs::Timeline& timeline() const { return timeline_; }

  /// Export the timeline as Chrome trace-event JSON (open in
  /// chrome://tracing or ui.perfetto.dev). Returns false when the
  /// file cannot be written.
  bool write_chrome_trace(const std::string& path) const;

  /// Record one timeline span per in-flight nonblocking transfer
  /// (named "nb get/put/acc (in flight)"). Defaults to on when
  /// FOURINDEX_TRACE_DIR is set — per-op spans are too many to keep
  /// around when no trace will ever be written.
  void set_comm_tracing(bool on) { trace_comm_ = on; }
  /// Whether per-op nonblocking-transfer spans are being recorded.
  bool comm_tracing() const { return trace_comm_; }

 private:
  friend class RankCtx;

  /// Metric ids for the per-rank charge counters, resolved once.
  struct ChargeIds {
    obs::MetricsRegistry::Id remote_bytes, local_bytes, remote_messages,
        disk_bytes, flops, integral_evals, ga_gets, ga_puts, ga_accs,
        overlapped_seconds, exposed_seconds, busy_time;
  };

  void merge_rank(const RankCtx& ctx);
  /// Record one in-flight span per nonblocking op (when comm tracing
  /// is on); `t0` is the attempt's absolute start time.
  void flush_nb_spans(const RankCtx& ctx, double t0);
  /// Record the spans noted via RankCtx::note_span (per-task
  /// scheduler spans), offset to the attempt's absolute start `t0`.
  void flush_task_spans(const RankCtx& ctx, double t0);
  /// Apply scheduled + probabilistic boundary faults for the phase
  /// about to run; performs rank-death recovery when enabled.
  void process_boundary_faults();
  /// Mark the kill set of `events` dead (expanding KillNode to its
  /// whole domain), appending the newly dead ranks to `killed`.
  void apply_kill_events(const std::vector<FaultEvent>& events,
                         std::vector<std::size_t>& killed);
  /// Checkpoint-restore the tiles of `killed` onto the survivors (one
  /// pass over all dead ranks); throws when recovery is impossible.
  void recover_killed(const std::vector<std::size_t>& killed,
                      std::size_t phase);
  /// One attempt at a phase body over all live ranks.
  void execute_attempt(const std::function<void(RankCtx&)>& body,
                       PhaseRecord& rec, const std::string& span_name,
                       std::size_t attempt);

  MachineConfig config_;
  ExecutionMode mode_;
  std::size_t host_threads_;
  DomainMap domains_;  // failure-domain / per-node-counter grouping
  std::vector<MemTracker> mem_;
  std::vector<MemTracker> scratch_;
  std::uint64_t epoch_ = 1;
  double sim_time_ = 0;
  double global_peak_ = 0;
  double disk_used_ = 0;
  double disk_peak_ = 0;
  std::vector<PhaseRecord> phases_;
  obs::MetricsRegistry registry_;
  obs::Timeline timeline_;
  ChargeIds charge_ids_{};
  obs::MetricsRegistry::Id id_mem_used_ = 0, id_mem_peak_ = 0,
                           id_scratch_peak_ = 0, id_global_peak_ = 0,
                           id_disk_used_ = 0, id_disk_peak_ = 0,
                           id_phase_makespan_ = 0, id_phase_imbalance_ = 0;
  obs::MetricsRegistry::Id id_fault_domain_kills_ = 0;
  obs::MetricsRegistry::Id id_fault_kills_ = 0, id_fault_transient_ = 0,
                           id_fault_shrinks_ = 0, id_fault_degrades_ = 0,
                           id_ckpt_writes_ = 0, id_ckpt_bytes_ = 0,
                           id_ckpt_restores_ = 0, id_ckpt_restored_bytes_ = 0,
                           id_retry_attempts_ = 0, id_retry_exhausted_ = 0;
  FaultInjector faults_;
  std::unique_ptr<CheckpointManager> ckpt_;
  std::vector<char> dead_;
  std::vector<ga::GlobalArray*> arrays_;
  bool in_recovery_ = false;  // guards re-entrant fault processing
  bool trace_comm_ = false;
  std::size_t nb_span_names_[3] = {0, 0, 0};  // interned per NbKind
};

/// RAII local (per-rank) scratch buffer: charges the rank's memory
/// tracker; holds real storage only in Real mode.
class RankBuffer {
 public:
  /// Charge `words` doubles of scratch to `ctx`'s tracker (`what`
  /// labels an OOM); allocates real storage only in Real mode.
  RankBuffer(RankCtx& ctx, std::size_t words, const char* what);
  /// Releases the scratch charge (and the storage, in Real mode).
  ~RankBuffer();
  RankBuffer(const RankBuffer&) = delete;             ///< non-copyable
  RankBuffer& operator=(const RankBuffer&) = delete;  ///< non-copyable

  /// Pointer to storage (nullptr in Simulate mode).
  double* data() { return storage_.empty() ? nullptr : storage_.data(); }
  /// Capacity in doubles (meaningful in both modes).
  std::size_t words() const { return words_; }
  /// Zero the storage; a no-op in Simulate mode.
  void zero();

 private:
  RankCtx& ctx_;
  std::size_t words_;
  std::vector<double> storage_;
};

}  // namespace fit::runtime
