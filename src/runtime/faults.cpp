#include "runtime/faults.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace fit::runtime {

std::string to_string(FaultKind k) {
  switch (k) {
    case FaultKind::KillRank: return "kill-rank";
    case FaultKind::KillNode: return "kill-node";
    case FaultKind::TransientOp: return "transient-op";
    case FaultKind::CapacityShrink: return "capacity-shrink";
    case FaultKind::NetDegrade: return "net-degrade";
    case FaultKind::DiskDegrade: return "disk-degrade";
    case FaultKind::CkptCorrupt: return "ckpt-corrupt";
    case FaultKind::CkptIo: return "ckpt-io";
  }
  return "?";
}

FaultInjector::FaultInjector(const FaultInjector& other) {
  std::lock_guard<std::mutex> lock(other.mutex_);
  seed_ = other.seed_;
  kill_prob_ = other.kill_prob_;
  op_prob_ = other.op_prob_;
  ckpt_io_prob_ = other.ckpt_io_prob_;
  plan_ = other.plan_;
}

FaultInjector& FaultInjector::operator=(const FaultInjector& other) {
  if (this == &other) return *this;
  std::scoped_lock lock(mutex_, other.mutex_);
  seed_ = other.seed_;
  kill_prob_ = other.kill_prob_;
  op_prob_ = other.op_prob_;
  ckpt_io_prob_ = other.ckpt_io_prob_;
  plan_ = other.plan_;
  return *this;
}

void FaultInjector::schedule(const FaultEvent& ev) {
  FIT_REQUIRE(ev.factor > 0, "fault factor must be positive");
  std::lock_guard<std::mutex> lock(mutex_);
  plan_.push_back(ev);
}

void FaultInjector::set_kill_prob(double p) {
  FIT_REQUIRE(p >= 0 && p <= 1, "kill probability out of [0, 1]");
  kill_prob_ = p;
}

void FaultInjector::set_op_failure_prob(double p) {
  FIT_REQUIRE(p >= 0 && p <= 1, "op failure probability out of [0, 1]");
  op_prob_ = p;
}

void FaultInjector::set_ckpt_io_prob(double p) {
  FIT_REQUIRE(p >= 0 && p <= 1,
              "checkpoint I/O failure probability out of [0, 1]");
  ckpt_io_prob_ = p;
}

bool FaultInjector::armed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return kill_prob_ > 0 || op_prob_ > 0 || ckpt_io_prob_ > 0 ||
         !plan_.empty();
}

namespace {

bool is_kill(FaultKind k) {
  return k == FaultKind::KillRank || k == FaultKind::KillNode;
}

}  // namespace

std::vector<FaultEvent> FaultInjector::take_boundary_faults(
    std::size_t phase) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<FaultEvent> fired;
  auto it = plan_.begin();
  while (it != plan_.end()) {
    const bool boundary = it->kind != FaultKind::TransientOp &&
                          it->kind != FaultKind::CkptIo &&
                          !(is_kill(it->kind) && it->attempt > 0);
    if (boundary && it->phase == phase) {
      fired.push_back(*it);
      it = plan_.erase(it);
    } else {
      ++it;
    }
  }
  return fired;
}

std::vector<FaultEvent> FaultInjector::take_retry_kills(
    std::size_t phase, std::size_t attempt) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<FaultEvent> fired;
  auto it = plan_.begin();
  while (it != plan_.end()) {
    if (is_kill(it->kind) && it->phase == phase && it->attempt > 0 &&
        it->attempt == attempt) {
      fired.push_back(*it);
      it = plan_.erase(it);
    } else {
      ++it;
    }
  }
  return fired;
}

double FaultInjector::roll(std::uint64_t tag, std::uint64_t a,
                           std::uint64_t b, std::uint64_t c) const {
  // hash_to_unit is [-1, 1); fold to [0, 1).
  return 0.5 * (hash_to_unit(seed_ ^ (tag * 0x9E3779B97F4A7C15ull), a, b,
                             c) +
                1.0);
}

bool FaultInjector::kill_roll(std::size_t phase, std::size_t rank) const {
  if (kill_prob_ <= 0) return false;
  return roll(1, phase, rank, 0) < kill_prob_;
}

bool FaultInjector::should_fail_op(std::size_t phase, std::size_t attempt,
                                   std::size_t rank, std::size_t op_seq) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& ev : plan_) {
      if (ev.kind != FaultKind::TransientOp || ev.phase != phase ||
          ev.rank != rank || ev.count == 0)
        continue;
      --ev.count;
      return true;
    }
  }
  if (op_prob_ <= 0) return false;
  return roll(2, phase * 64 + attempt, rank, op_seq) < op_prob_;
}

bool FaultInjector::should_fail_ckpt_io(std::size_t phase,
                                        std::size_t attempt,
                                        std::size_t op_seq) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& ev : plan_) {
      // A CkptIo budget arms at its phase and drains on the next
      // `count` checkpoint operations, whenever they happen.
      if (ev.kind != FaultKind::CkptIo || ev.phase > phase ||
          ev.count == 0)
        continue;
      --ev.count;
      return true;
    }
  }
  if (ckpt_io_prob_ <= 0) return false;
  return roll(3, phase * 64 + attempt, op_seq, 0) < ckpt_io_prob_;
}

double FaultInjector::corrupt_weight(std::size_t phase,
                                     std::size_t generation,
                                     std::uint64_t array_tag,
                                     std::size_t tile) const {
  return roll(4, phase * 64 + generation, array_tag, tile);
}

}  // namespace fit::runtime
