// Deterministic fault injection for the simulated cluster.
//
// The paper's planner picks a fusion configuration from capacity
// conditions (Thm 5.1, Sec. 6) — so the right response to losing a
// node or a slab of memory mid-run is not a crash but the degradation
// ladder those bounds prescribe: restore lost tiles from the last
// phase-boundary checkpoint, retry the phase on the survivors, and
// replan against the shrunken aggregate S. The FaultInjector is the
// test harness for that machinery: it decides, reproducibly, when a
// rank dies, when a one-sided operation fails transiently, and when
// capacity or bandwidth degrade.
//
// Two configuration styles, freely mixed:
//   plan-based      schedule(FaultEvent{...}) pins a fault to an exact
//                   phase index — the deterministic unit-test mode;
//   probability     set_kill_prob / set_op_failure_prob draw from a
//                   pure hash of (seed, phase, attempt, rank, op) — no
//                   mutable RNG state, so outcomes are identical across
//                   runs, host-thread counts, and rank interleavings.
//
// Boundary faults (kill, capacity shrink, bandwidth degradation) fire
// between phases, at the BSP barrier — the only point where the global
// state is consistent enough to recover from. Transient op faults fire
// inside a phase and are absorbed by Cluster::run_phase's bounded
// retry-with-backoff path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace fit::runtime {

enum class FaultKind {
  KillRank,        // permanent rank death at a phase boundary
  TransientOp,     // one-sided get/put/acc failure inside a phase
  CapacityShrink,  // multiply every live rank's memory capacity
  NetDegrade,      // multiply the network bandwidth
  DiskDegrade,     // multiply the parallel-file-system bandwidth
};

std::string to_string(FaultKind k);

struct FaultEvent {
  FaultKind kind = FaultKind::TransientOp;
  std::size_t phase = 0;  // 0-based phase index (Cluster::phase_index())
  std::size_t rank = 0;   // target rank (KillRank / TransientOp)
  double factor = 1.0;    // capacity/bandwidth multiplier (shrink/degrade)
  std::size_t count = 1;  // one-sided ops to fail (TransientOp)
};

class FaultInjector {
 public:
  /// Default-constructed injector is inert: armed() is false and the
  /// cluster skips every fault check.
  FaultInjector() = default;
  explicit FaultInjector(std::uint64_t seed) : seed_(seed) {}
  // Copyable despite the mutex (the copy gets a fresh one), so an
  // injector can be configured externally and handed to a Cluster.
  FaultInjector(const FaultInjector& other);
  FaultInjector& operator=(const FaultInjector& other);

  /// Pin a fault to an exact phase. TransientOp events carry a failure
  /// budget (`count`): the target rank's first `count` one-sided ops in
  /// that phase fail, across retry attempts, until the budget drains.
  void schedule(const FaultEvent& ev);

  /// Per-(phase, rank) probability that the rank dies at the boundary.
  void set_kill_prob(double p);
  /// Per-one-sided-op transient failure probability.
  void set_op_failure_prob(double p);

  bool armed() const;
  std::uint64_t seed() const { return seed_; }
  double kill_prob() const { return kill_prob_; }

  /// Scheduled boundary faults (every kind except TransientOp) for
  /// `phase`, in schedule order. Each event is returned exactly once.
  std::vector<FaultEvent> take_boundary_faults(std::size_t phase);

  /// Probability-driven kill decision — a pure function of the seed.
  bool kill_roll(std::size_t phase, std::size_t rank) const;

  /// Should the `op_seq`-th one-sided op by `rank` in (phase, attempt)
  /// fail? Consumes scheduled TransientOp budgets first, then rolls
  /// the op probability. The roll mixes in `attempt` so a retried
  /// phase redraws — transient means transient. Thread safe.
  bool should_fail_op(std::size_t phase, std::size_t attempt,
                      std::size_t rank, std::size_t op_seq);

 private:
  double roll(std::uint64_t tag, std::uint64_t a, std::uint64_t b,
              std::uint64_t c) const;

  std::uint64_t seed_ = 0;
  double kill_prob_ = 0;
  double op_prob_ = 0;
  std::vector<FaultEvent> plan_;
  mutable std::mutex mutex_;
};

}  // namespace fit::runtime
