// Deterministic fault injection for the simulated cluster.
//
// The paper's planner picks a fusion configuration from capacity
// conditions (Thm 5.1, Sec. 6) — so the right response to losing a
// node or a slab of memory mid-run is not a crash but the degradation
// ladder those bounds prescribe: restore lost tiles from the last
// phase-boundary checkpoint, retry the phase on the survivors, and
// replan against the shrunken aggregate S. The FaultInjector is the
// test harness for that machinery: it decides, reproducibly, when a
// rank dies, when a one-sided operation fails transiently, and when
// capacity or bandwidth degrade.
//
// Two configuration styles, freely mixed:
//   plan-based      schedule(FaultEvent{...}) pins a fault to an exact
//                   phase index — the deterministic unit-test mode;
//   probability     set_kill_prob / set_op_failure_prob draw from a
//                   pure hash of (seed, phase, attempt, rank, op) — no
//                   mutable RNG state, so outcomes are identical across
//                   runs, host-thread counts, and rank interleavings.
//
// Boundary faults (rank/node kill, checkpoint corruption, capacity
// shrink, bandwidth degradation) fire between phases, at the BSP
// barrier — the only point where the global state is consistent enough
// to recover from. Transient op faults fire inside a phase and are
// absorbed by Cluster::run_phase's bounded retry-with-backoff path;
// checkpoint-I/O faults (CkptIo) fire inside the checkpoint
// write/restore operations themselves and are absorbed by
// CheckpointManager's own bounded retry. Kill events may additionally
// be pinned to a retry attempt (FaultEvent::attempt > 0) to model the
// double fault of a node dying during another failure's recovery.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace fit::runtime {

/// The failure modes the injector can decree (see the header comment
/// for when each fires relative to the BSP phase structure).
enum class FaultKind {
  KillRank,        ///< permanent rank death at a phase boundary
  KillNode,        ///< correlated death of a whole failure domain
  TransientOp,     ///< one-sided get/put/acc failure inside a phase
  CapacityShrink,  ///< multiply every live rank's memory capacity
  NetDegrade,      ///< multiply the network bandwidth
  DiskDegrade,     ///< multiply the parallel-file-system bandwidth
  CkptCorrupt,     ///< latent bit rot in checkpointed tile copies
  CkptIo,          ///< fail checkpoint write/restore disk operations
};

/// Human-readable fault-kind name (metrics labels, log lines).
std::string to_string(FaultKind k);

/// One scheduled fault: what happens, when, and to whom.
struct FaultEvent {
  /// The failure mode.
  FaultKind kind = FaultKind::TransientOp;
  /// 0-based phase index the event fires at (Cluster::phase_index()).
  std::size_t phase = 0;
  /// Target rank (KillRank/TransientOp) or failure-domain index
  /// (KillNode).
  std::size_t rank = 0;
  /// Capacity/bandwidth multiplier (CapacityShrink and the degrade
  /// kinds).
  double factor = 1.0;
  /// Operations to fail (TransientOp/CkptIo) or tile copies to rot
  /// (CkptCorrupt).
  std::size_t count = 1;
  /// Kill events only: 0 fires at the phase boundary; N > 0 fires just
  /// before retry attempt N of that phase — the double-fault case of a
  /// rank/node dying inside another failure's backoff window.
  std::size_t attempt = 0;
  /// CkptCorrupt only: how many of the newest checkpoint generations
  /// the rot reaches (>= the retention depth models catastrophic media
  /// loss — every generation bad, restore must zero-fill).
  std::size_t depth = 1;
};

/// Deterministic decider of when ranks die, ops fail, and capacity or
/// bandwidth degrade — the reproducible storm generator behind the
/// fault-matrix tests and the chaos soak (see the header comment).
class FaultInjector {
 public:
  /// Default-constructed injector is inert: armed() is false and the
  /// cluster skips every fault check.
  FaultInjector() = default;
  /// Injector whose probability rolls hash from `seed` — equal seeds
  /// replay identical storms.
  explicit FaultInjector(std::uint64_t seed) : seed_(seed) {}
  /// Copyable despite the mutex (the copy gets a fresh one), so an
  /// injector can be configured externally and handed to a Cluster.
  FaultInjector(const FaultInjector& other);
  /// See the copy constructor: state copies, the mutex does not.
  FaultInjector& operator=(const FaultInjector& other);

  /// Pin a fault to an exact phase. TransientOp events carry a failure
  /// budget (`count`): the target rank's first `count` one-sided ops in
  /// that phase fail, across retry attempts, until the budget drains.
  void schedule(const FaultEvent& ev);

  /// Per-(phase, rank) probability that the rank dies at the boundary.
  void set_kill_prob(double p);
  /// Per-one-sided-op transient failure probability.
  void set_op_failure_prob(double p);
  /// Per-checkpoint-I/O-operation failure probability (writes and
  /// restores alike); absorbed by CheckpointManager's bounded retry.
  void set_ckpt_io_prob(double p);

  /// True when any fault is scheduled or any probability is set —
  /// unarmed injectors cost the cluster nothing.
  bool armed() const;
  /// The seed every probability roll hashes from.
  std::uint64_t seed() const { return seed_; }
  /// The per-(phase, rank) boundary kill probability.
  double kill_prob() const { return kill_prob_; }

  /// Scheduled boundary faults (every kind except TransientOp/CkptIo,
  /// and except kills pinned to a retry attempt) for `phase`, in
  /// schedule order. Each event is returned exactly once.
  std::vector<FaultEvent> take_boundary_faults(std::size_t phase);

  /// Kill events pinned to retry attempt `attempt` of `phase` (the
  /// double-fault path: a rank or node dying while run_phase is
  /// already inside a failed attempt's backoff window).
  std::vector<FaultEvent> take_retry_kills(std::size_t phase,
                                           std::size_t attempt);

  /// Probability-driven kill decision — a pure function of the seed.
  bool kill_roll(std::size_t phase, std::size_t rank) const;

  /// Should the `op_seq`-th one-sided op by `rank` in (phase, attempt)
  /// fail? Consumes scheduled TransientOp budgets first, then rolls
  /// the op probability. The roll mixes in `attempt` so a retried
  /// phase redraws — transient means transient. Thread safe.
  bool should_fail_op(std::size_t phase, std::size_t attempt,
                      std::size_t rank, std::size_t op_seq);

  /// Should the `op_seq`-th checkpoint disk operation (globally
  /// sequenced across writes and restores) fail? Consumes scheduled
  /// CkptIo budgets whose phase has been reached, then rolls the
  /// checkpoint-I/O probability. `attempt` is the checkpoint layer's
  /// own retry counter, mixed in so a retried op redraws.
  bool should_fail_ckpt_io(std::size_t phase, std::size_t attempt,
                           std::size_t op_seq);

  /// Deterministic selection weight in [0, 1) for a checkpointed tile
  /// copy — CkptCorrupt events rot the `count` copies with the
  /// smallest weights. Pure function of (seed, phase, generation,
  /// array, tile), so a storm replays bit-identically.
  double corrupt_weight(std::size_t phase, std::size_t generation,
                        std::uint64_t array_tag, std::size_t tile) const;

 private:
  double roll(std::uint64_t tag, std::uint64_t a, std::uint64_t b,
              std::uint64_t c) const;

  std::uint64_t seed_ = 0;
  double kill_prob_ = 0;
  double op_prob_ = 0;
  double ckpt_io_prob_ = 0;
  std::vector<FaultEvent> plan_;
  mutable std::mutex mutex_;
};

}  // namespace fit::runtime
