#include "runtime/machine.hpp"

namespace fit::runtime {

namespace {
constexpr double kMemScale = 1.0 / 4096.0;  // 1/8^4, see header
}

MachineConfig system_a(std::size_t n_nodes) {
  MachineConfig m;
  m.name = "SystemA";
  m.n_nodes = n_nodes;
  m.ranks_per_node = 8;  // two 4-core Westmere sockets
  m.mem_per_node_bytes = 24e9 * kMemScale;
  m.flops_per_rank = 2.0e9;        // 2.53 GHz Westmere core, DGEMM-ish
  m.integrals_per_sec = 1.0e8;
  m.net_bandwidth_bps = 5.0e9 / 8; // QDR 40 Gb/s per node, shared
  m.net_latency_s = 2e-6;
  m.local_bandwidth_bps = 2e10;
  return m;
}

MachineConfig system_b(std::size_t n_nodes) {
  MachineConfig m;
  m.name = "SystemB";
  m.n_nodes = n_nodes;
  m.ranks_per_node = 28;  // two 14-core Broadwell sockets
  m.mem_per_node_bytes = 512e9 * kMemScale;
  m.flops_per_rank = 4.0e9;
  m.integrals_per_sec = 2.0e8;
  m.net_bandwidth_bps = 5.0e9 / 28;
  m.net_latency_s = 2e-6;
  m.local_bandwidth_bps = 3e10;
  return m;
}

MachineConfig system_c(std::size_t n_nodes) {
  MachineConfig m;
  m.name = "SystemC";
  m.n_nodes = n_nodes;
  m.ranks_per_node = 4;  // 4 ranks per node as in the paper's runs
  m.mem_per_node_bytes = 128e9 * kMemScale;
  m.flops_per_rank = 3.5e9;
  m.integrals_per_sec = 1.5e8;
  m.net_bandwidth_bps = 1.75e9 / 4;  // FDR 14 Gb/s per node
  m.net_latency_s = 3e-6;
  m.local_bandwidth_bps = 2.5e10;
  return m;
}

}  // namespace fit::runtime
