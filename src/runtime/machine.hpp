// Machine descriptions for the simulated cluster.
//
// The paper evaluates on three Infiniband clusters (Sec. 8). We model
// each as a set of nodes with per-node memory, per-rank compute rate,
// and a latency/bandwidth (alpha-beta) network. Memories are scaled by
// 1/4096 = 1/8^4, matching the 1/8 linear scaling of the benchmark
// molecules, so the memory-pressure ratios (problem footprint over
// aggregate capacity) — which decide fused vs. unfused vs. Failed —
// are identical to the paper's.
#pragma once

#include <cstddef>
#include <string>

namespace fit::runtime {

struct MachineConfig {
  std::string name;
  std::size_t n_nodes = 1;
  std::size_t ranks_per_node = 1;
  double mem_per_node_bytes = 1e9;
  double flops_per_rank = 2e9;        // sustained flop/s per rank
  double integrals_per_sec = 2e8;     // ComputeA evaluations/s per rank
  double net_bandwidth_bps = 2e9;     // bytes/s per rank, remote links
  double net_latency_s = 2e-6;        // per remote transfer
  double local_bandwidth_bps = 2e10;  // bytes/s, same-node copies

  // Simulated parallel file system. 0 disables spilling: exhausting
  // global memory is a hard OutOfMemoryError (the paper's "Failed").
  // When positive, Global Arrays that do not fit spill tiles to disk,
  // and accesses to spilled tiles pay this (shared, aggregate)
  // bandwidth — the very-low collective file-system bandwidth the
  // paper's Section 3 motivates fusing to avoid.
  double disk_bandwidth_bps = 0;
  double disk_latency_s = 5e-3;

  // Per-rank scratch allowance for local working buffers. Kept
  // separate from the global-tensor share: the paper's capacity
  // arguments concern the O(n^4) distributed tensors (which we scale
  // by 1/4096 along with the molecules), while local buffers are
  // O(n^2)-O(n^3) and do not follow that scaling.
  double local_scratch_bytes = 64e6;

  std::size_t n_ranks() const { return n_nodes * ranks_per_node; }
  double mem_per_rank_bytes() const {
    return mem_per_node_bytes / static_cast<double>(ranks_per_node);
  }
  double aggregate_memory_bytes() const {
    return mem_per_node_bytes * static_cast<double>(n_nodes);
  }
};

/// System A: small QDR-Infiniband cluster, 2x4-core Xeon E5630 and
/// 24 GB per node (scaled: 6 MB).
MachineConfig system_a(std::size_t n_nodes);

/// System B: 18 large-memory nodes, 2x14-core Xeon E5-2680v4 and
/// 512 GB per node (scaled: 128 MB).
MachineConfig system_b(std::size_t n_nodes);

/// System C: large FDR-Infiniband supercomputer, dual-socket Xeon
/// E5-2670 and 128 GB per node, run at 4 ranks/node as in Sec. 8
/// (scaled: 32 MB).
MachineConfig system_c(std::size_t n_nodes);

}  // namespace fit::runtime
