#include "runtime/topology.hpp"

#include <algorithm>

#include "util/parse.hpp"

namespace fit::runtime {

DomainMap::DomainMap(std::size_t n_ranks, std::size_t width)
    : n_ranks_(std::max<std::size_t>(n_ranks, 1)),
      width_(std::clamp<std::size_t>(width, 1, n_ranks_)) {}

DomainMap DomainMap::from_env(std::size_t n_ranks,
                              std::size_t default_width) {
  return DomainMap(
      n_ranks, util::env_size("FOURINDEX_RANKS_PER_NODE", default_width));
}

}  // namespace fit::runtime
