// Rank -> node grouping shared by every consumer of the machine's
// physical layout.
//
// Two independent subsystems need to know which ranks share a node:
// the fault injector's correlated failures (FaultKind::KillNode takes
// out a whole failure domain at once) and the per-node task counters
// of ga::plan_tasks (one fetch-and-add counter per node, so intra-node
// claims never cross the network). Before this helper existed the
// grouping arithmetic and the FOURINDEX_RANKS_PER_NODE environment
// override lived inside the Cluster constructor; both consumers now
// share one strict-parsed, clamped DomainMap so they can never
// disagree about where a node's ranks begin and end.
#pragma once

#include <cstddef>

/// \file
/// \brief Rank -> failure-domain grouping (`FOURINDEX_RANKS_PER_NODE`)
/// shared by correlated fault injection and the per-node task
/// counters.

namespace fit::runtime {

/// Partition of the rank ids `[0, n_ranks)` into consecutive
/// fixed-width groups ("domains"). The width defaults to the machine
/// description's ranks-per-node and is overridable with
/// `FOURINDEX_RANKS_PER_NODE` (strict parse, loud fallback) to model a
/// different blast radius; it is always clamped to the rank count. The
/// last domain may be narrower when the width does not divide the rank
/// count.
class DomainMap {
 public:
  /// Identity map of a single all-ranks domain (placeholder until a
  /// real map is installed).
  DomainMap() = default;

  /// Group `n_ranks` ranks into domains of `width` consecutive ranks.
  /// `width` is clamped into `[1, n_ranks]`.
  DomainMap(std::size_t n_ranks, std::size_t width);

  /// Build the map from the `FOURINDEX_RANKS_PER_NODE` environment
  /// variable, falling back to `default_width` (the machine's
  /// ranks-per-node) when the variable is unset or unparsable; an
  /// invalid value warns loudly instead of being truncated.
  static DomainMap from_env(std::size_t n_ranks, std::size_t default_width);

  /// Ranks covered by the map.
  std::size_t n_ranks() const { return n_ranks_; }
  /// Domain width in ranks (the last domain may be narrower).
  std::size_t width() const { return width_; }
  /// Number of domains (ceil(n_ranks / width)).
  std::size_t n_domains() const {
    return n_ranks_ == 0 ? 0 : (n_ranks_ + width_ - 1) / width_;
  }
  /// Domain the rank belongs to.
  std::size_t domain_of(std::size_t rank) const { return rank / width_; }
  /// First rank of domain `d`.
  std::size_t lo(std::size_t d) const { return d * width_; }
  /// One past the last rank of domain `d` (clamped at n_ranks()).
  std::size_t hi(std::size_t d) const {
    const std::size_t h = (d + 1) * width_;
    return h < n_ranks_ ? h : n_ranks_;
  }
  /// Ranks in domain `d`.
  std::size_t size(std::size_t d) const { return hi(d) - lo(d); }

 private:
  std::size_t n_ranks_ = 1;
  std::size_t width_ = 1;
};

}  // namespace fit::runtime
