#include "serve/cost_oracle.hpp"

#include <cstdlib>
#include <utility>

#include "util/logging.hpp"

namespace fit::serve {

CostOracle::CostOracle(CostTable table, obs::MetricsRegistry* reg)
    : table_(std::move(table)), reg_(reg) {
  if (reg_) reg_->counter("serve.oracle_fallbacks");
}

CostOracle CostOracle::from_env(obs::MetricsRegistry* reg) {
  const char* path = std::getenv("FOURINDEX_COST_TABLE");
  if (!path || !*path) return CostOracle(CostTable{}, reg);
  CostOracle o(CostTable::load(path), reg);
  FIT_LOG_INFO("cost oracle: " << o.table().size() << " samples from '"
                               << path << "'");
  return o;
}

double CostOracle::rate_or_nominal(const char* kind, double shape,
                                   double nominal_rate) const {
  if (const auto r = table_.estimate_rate(kind, shape)) return *r;
  ++fallbacks_;
  if (reg_) reg_->add(reg_->counter("serve.oracle_fallbacks"), 0, 1);
  if (!table_.empty())
    FIT_LOG_WARN("cost oracle: no '" << kind << "' bucket near shape "
                                     << shape
                                     << "; falling back to the nominal rate "
                                     << nominal_rate);
  return nominal_rate;
}

core::PlanRates CostOracle::rates(const runtime::MachineConfig& nominal,
                                  double n, std::size_t tile) const {
  core::PlanRates r;
  const double t = static_cast<double>(tile);
  const double gemm_shape = 2.0 * n * n * n * t;  // dominant contraction
  const double link_shape = 8.0 * t * t;          // one tile message
  const bool gemm_backed = table_.has_bucket("gemm", gemm_shape);
  r.flops_per_rank =
      rate_or_nominal("gemm", gemm_shape, nominal.flops_per_rank);
  r.net_bandwidth_bps =
      rate_or_nominal("link", link_shape, nominal.net_bandwidth_bps);
  r.integrals_per_sec =
      rate_or_nominal("integrals", n, nominal.integrals_per_sec);
  // Plan selection is dominated by the compute term: call the rates
  // measured exactly when the GEMM bucket was real.
  r.source = gemm_backed ? "measured" : "nominal";
  return r;
}

double CostOracle::estimate_gemm_s(const runtime::MachineConfig& nominal,
                                   double m, double k, double n) const {
  const double flops = 2.0 * m * k * n;
  return flops / rate_or_nominal("gemm", flops, nominal.flops_per_rank);
}

double CostOracle::batch_transforms_per_s(std::size_t members) const {
  const double shape = static_cast<double>(members);
  if (!table_.has_bucket("batch", shape)) return 0.0;
  return table_.estimate_rate("batch", shape).value_or(0.0);
}

}  // namespace fit::serve
