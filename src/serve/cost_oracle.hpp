// Measured-cost oracle behind the serve planner: wraps a persisted
// CostTable and answers "what rates does this machine actually
// deliver?" in the form the planner consumes (core::PlanRates).
//
// The oracle substitutes bench-measured GEMM, link, and integral rates
// for the MachineConfig's nominal ones wherever the table has a bucket
// for the shape at hand; a missing bucket falls back to the nominal
// rate LOUDLY — one warning per (kind, shape) class and a counted
// serve.oracle_fallbacks metric — so a plan priced on data-sheet
// numbers is always visible as such.
#pragma once

#include <cstddef>
#include <string>

#include "core/planner.hpp"
#include "obs/metrics.hpp"
#include "runtime/machine.hpp"
#include "serve/cost_table.hpp"

namespace fit::serve {

/// Rates queries answered from bench measurements, nominal fallback.
class CostOracle {
 public:
  /// An empty oracle: every query falls back to nominal (without
  /// warnings — there is nothing to miss from).
  CostOracle() = default;
  /// Oracle over a measured table. When `reg` is given, fallbacks are
  /// counted on its "serve.oracle_fallbacks" counter.
  explicit CostOracle(CostTable table, obs::MetricsRegistry* reg = nullptr);

  /// Build from FOURINDEX_COST_TABLE: unset means an empty (all
  /// nominal) oracle; a set-but-unreadable or malformed path throws
  /// fit::ParseError — a serve process must not silently run nominal
  /// after being told to run measured.
  static CostOracle from_env(obs::MetricsRegistry* reg = nullptr);

  /// Effective planner rates for a transform of orbital extent `n`
  /// with tile width `tile` on `nominal`: the measured GEMM rate at
  /// the transform's dominant contraction volume (2 n^3 tile flops),
  /// the measured link rate at the tile message size (8 tile^2 bytes),
  /// and the measured integral-evaluation rate at extent n. Each
  /// missing bucket keeps the nominal rate and counts a fallback.
  /// PlanRates::source reads "measured" when at least the GEMM rate —
  /// the term that dominates plan selection — was backed by a bucket.
  core::PlanRates rates(const runtime::MachineConfig& nominal, double n,
                        std::size_t tile) const;

  /// Seconds for one m x k x n GEMM (2mkn flops) at the measured rate,
  /// the machine's nominal rate when the bucket is missing (counted).
  double estimate_gemm_s(const runtime::MachineConfig& nominal, double m,
                         double k, double n) const;

  /// Measured whole-batch throughput (transforms per second) for a
  /// shared-basis batch of `members` transforms — kind "batch", shape
  /// = member count, recorded by the batch-tenancy bench. Returns 0
  /// when the table has no bucket within a decade of `members`:
  /// absence means "price the batch from core::plan_batch's estimate",
  /// not a fallback worth warning about, so nothing is counted.
  double batch_transforms_per_s(std::size_t members) const;

  /// True when the oracle carries any measurements at all.
  bool measured() const { return !table_.empty(); }
  /// Nominal-rate substitutions performed so far (missing buckets).
  std::size_t fallbacks() const { return fallbacks_; }
  /// The backing measurement table.
  const CostTable& table() const { return table_; }

 private:
  double rate_or_nominal(const char* kind, double shape,
                         double nominal_rate) const;

  CostTable table_;
  obs::MetricsRegistry* reg_ = nullptr;
  mutable std::size_t fallbacks_ = 0;
};

}  // namespace fit::serve
