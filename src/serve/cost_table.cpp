#include "serve/cost_table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/logging.hpp"

namespace fit::serve {

namespace {

bool sample_order(const CostSample& a, const CostSample& b) {
  if (a.kind != b.kind) return a.kind < b.kind;
  return a.shape < b.shape;
}

}  // namespace

void CostTable::add(CostSample s) {
  FIT_REQUIRE(std::isfinite(s.shape) && s.shape > 0 &&
                  std::isfinite(s.rate) && s.rate > 0,
              "cost sample needs positive finite shape and rate (kind '"
                  << s.kind << "')");
  FIT_REQUIRE(!s.kind.empty(), "cost sample needs a kind");
  const auto at =
      std::lower_bound(samples_.begin(), samples_.end(), s, sample_order);
  // Same (kind, shape) measured again: the newer rate wins — benches
  // re-run and the table should track the latest hardware behavior.
  if (at != samples_.end() && at->kind == s.kind && at->shape == s.shape) {
    at->rate = s.rate;
    at->origin = std::move(s.origin);
    return;
  }
  samples_.insert(at, std::move(s));
}

void CostTable::merge(const CostTable& other) {
  for (const auto& s : other.samples_) add(s);
}

bool CostTable::has_bucket(std::string_view kind, double shape) const {
  if (!(std::isfinite(shape) && shape > 0)) return false;
  for (const auto& s : samples_) {
    if (s.kind != kind) continue;
    if (std::fabs(std::log10(shape / s.shape)) <= 1.0) return true;
  }
  return false;
}

std::optional<double> CostTable::estimate_rate(std::string_view kind,
                                               double shape) const {
  if (!has_bucket(kind, shape)) return std::nullopt;
  // samples_ is sorted by (kind, shape): find the bracketing pair.
  const CostSample* lo = nullptr;
  const CostSample* hi = nullptr;
  for (const auto& s : samples_) {
    if (s.kind != kind) continue;
    if (s.shape <= shape) lo = &s;
    if (s.shape >= shape && !hi) hi = &s;
  }
  if (lo && !hi) return lo->rate;  // above the sampled range
  if (hi && !lo) return hi->rate;  // below the sampled range
  if (lo == hi || hi->shape == lo->shape) return lo->rate;
  const double t = (std::log(shape) - std::log(lo->shape)) /
                   (std::log(hi->shape) - std::log(lo->shape));
  return lo->rate + t * (hi->rate - lo->rate);
}

std::optional<double> CostTable::estimate_seconds(std::string_view kind,
                                                  double shape,
                                                  double work) const {
  const auto rate = estimate_rate(kind, shape);
  if (!rate) return std::nullopt;
  return work / *rate;
}

obs::json::Value CostTable::to_json() const {
  obs::json::Value doc = obs::json::Value::object();
  doc["schema"] = kSchema;
  obs::json::Value arr = obs::json::Value::array();
  for (const auto& s : samples_) {
    obs::json::Value e = obs::json::Value::object();
    e["kind"] = s.kind;
    e["shape"] = s.shape;
    e["rate"] = s.rate;
    e["origin"] = s.origin;
    arr.push_back(std::move(e));
  }
  doc["samples"] = std::move(arr);
  return doc;
}

CostTable CostTable::from_json(const obs::json::Value& doc) {
  auto fail = [](const std::string& why) -> CostTable {
    throw ParseError("cost table: " + why);
  };
  if (!doc.is_object()) return fail("document is not an object");
  const auto* schema = doc.find("schema");
  if (!schema || !schema->is_string() || schema->as_string() != kSchema)
    return fail(std::string("missing or unknown schema (want '") + kSchema +
                "')");
  const auto* samples = doc.find("samples");
  if (!samples || !samples->is_array()) return fail("missing array 'samples'");
  CostTable t;
  for (std::size_t i = 0; i < samples->size(); ++i) {
    const auto& e = samples->at(i);
    const std::string at = "samples[" + std::to_string(i) + "]";
    if (!e.is_object()) return fail(at + " is not an object");
    const auto* kind = e.find("kind");
    const auto* shape = e.find("shape");
    const auto* rate = e.find("rate");
    if (!kind || !kind->is_string() || kind->as_string().empty())
      return fail(at + " missing non-empty string 'kind'");
    if (!shape || !shape->is_number() || !(shape->as_number() > 0) ||
        !std::isfinite(shape->as_number()))
      return fail(at + " missing positive finite number 'shape'");
    if (!rate || !rate->is_number() || !(rate->as_number() > 0) ||
        !std::isfinite(rate->as_number()))
      return fail(at + " missing positive finite number 'rate'");
    CostSample s;
    s.kind = kind->as_string();
    s.shape = shape->as_number();
    s.rate = rate->as_number();
    if (const auto* origin = e.find("origin"); origin && origin->is_string())
      s.origin = origin->as_string();
    t.add(std::move(s));
  }
  return t;
}

CostTable CostTable::load(const std::string& path) {
  std::ifstream in(path);
  if (!in)
    throw ParseError("cost table: cannot read '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  try {
    return from_json(obs::json::parse(text.str()));
  } catch (const obs::json::ParseError& e) {
    throw ParseError("cost table '" + path + "': " + e.what());
  }
}

bool CostTable::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    FIT_LOG_WARN("cannot write cost table to '" << path << "'");
    return false;
  }
  out << to_json().dump(2);
  if (!out.good()) {
    FIT_LOG_WARN("short write of cost table to '" << path << "'");
    return false;
  }
  return true;
}

std::string record_costs_flag(int* argc, char** argv) {
  std::string path;
  int w = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--record-costs") {
      path = "-";  // flag present, path from the environment below
    } else if (arg.rfind("--record-costs=", 0) == 0) {
      path = arg.substr(std::string_view("--record-costs=").size());
    } else {
      argv[w++] = argv[i];
    }
  }
  *argc = w;
  if (path == "-" || (path.empty() && std::getenv("FOURINDEX_RECORD_COSTS"))) {
    const char* env = std::getenv("FOURINDEX_COST_TABLE");
    path = env && *env ? env : "fourindex.costs.json";
  }
  return path;
}

bool record_costs(const std::string& path, const CostTable& fresh) {
  CostTable merged;
  if (std::ifstream probe(path); probe) {
    try {
      merged = CostTable::load(path);
    } catch (const ParseError& e) {
      // A corrupt table must not survive a recording run: replace it.
      FIT_LOG_WARN("replacing unreadable cost table: " << e.what());
      merged = CostTable{};
    }
  }
  merged.merge(fresh);
  const bool ok = merged.save(path);
  if (ok)
    FIT_LOG_INFO("recorded " << fresh.size() << " cost samples into '"
                             << path << "' (" << merged.size() << " total)");
  return ok;
}

}  // namespace fit::serve
