// Persisted measured-cost table — the ggml_mulmat_bench pattern: bench
// runs record (shape bucket, measured rate) samples to a JSON file,
// and the planner later interpolates a rate for the shapes a request
// actually needs. The table gets better every time a bench runs with
// --record-costs; a missing bucket is a *loud* fallback to the
// machine's nominal rate, never a silent guess (serve::CostOracle).
//
// Schema "fourindex.costs/1":
//   {
//     "schema":  "fourindex.costs/1",
//     "samples": [ {"kind": str, "shape": number, "rate": number,
//                   "origin": str}, .. ]
//   }
// Kinds in use: "gemm" (shape = flop volume 2mnk, rate = flop/s per
// rank), "link" (shape = message bytes, rate = effective bytes/s per
// rank), "integrals" (shape = orbital extent n, rate = evals/s),
// "batch" (shape = shared-basis batch member count, rate = whole-batch
// transforms/s as measured by the batch-tenancy bench).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"

namespace fit::serve {

/// One measured sample: a kind, a shape bucket, and the rate the bench
/// observed there. `origin` records which bench measured it.
struct CostSample {
  std::string kind;    ///< "gemm", "link", or "integrals".
  double shape = 0;    ///< Shape bucket (see kind conventions above).
  double rate = 0;     ///< Measured rate at that shape.
  std::string origin;  ///< Bench that recorded the sample.
};

/// Sorted (kind, shape) -> rate samples with log-shape interpolation.
class CostTable {
 public:
  /// Schema tag of the persisted document.
  static constexpr const char* kSchema = "fourindex.costs/1";

  /// Record one sample (shape and rate must be positive and finite).
  void add(CostSample s);
  /// Merge every sample of `other` into this table.
  void merge(const CostTable& other);

  /// Number of samples held.
  std::size_t size() const { return samples_.size(); }
  /// True when no samples are held.
  bool empty() const { return samples_.empty(); }

  /// True when `kind` holds a sample within one decade of `shape` —
  /// the coverage test behind the oracle's loud-fallback rule: a rate
  /// extrapolated across more than 10x in shape is a guess, not a
  /// measurement.
  bool has_bucket(std::string_view kind, double shape) const;

  /// Rate for (kind, shape): piecewise-linear in log(shape) between
  /// the bracketing samples, clamped to the boundary rate outside the
  /// sampled range. nullopt exactly when has_bucket is false.
  std::optional<double> estimate_rate(std::string_view kind,
                                      double shape) const;

  /// Seconds to perform `work` units of `kind` at the estimated rate;
  /// nullopt when the bucket is missing.
  std::optional<double> estimate_seconds(std::string_view kind,
                                         double shape, double work) const;

  /// The persisted document (schema above).
  obs::json::Value to_json() const;
  /// Parse a persisted document; throws fit::ParseError on a wrong
  /// schema, missing keys, or non-finite/non-positive samples.
  static CostTable from_json(const obs::json::Value& doc);

  /// Read a table from `path`; throws fit::ParseError when the file is
  /// unreadable or malformed (a *set but broken* cost table must stop
  /// the serve process, not silently degrade every plan to nominal).
  static CostTable load(const std::string& path);
  /// Write the table to `path`; returns false (with a warning) when
  /// the file cannot be written.
  bool save(const std::string& path) const;

  /// All samples, sorted by (kind, shape).
  const std::vector<CostSample>& samples() const { return samples_; }

 private:
  std::vector<CostSample> samples_;  // kept sorted by (kind, shape)
};

/// Bench-side --record-costs support: scan argv for "--record-costs"
/// or "--record-costs=PATH", strip the flag (so google-benchmark's own
/// argument check never sees it), and return the table path — the
/// explicit PATH, else $FOURINDEX_COST_TABLE, else
/// "fourindex.costs.json". Empty when the flag is absent.
std::string record_costs_flag(int* argc, char** argv);

/// Merge `fresh` into whatever table already sits at `path` (if
/// readable) and save the union — benches accumulate into one table
/// across runs. Returns false (with a warning) when the save fails.
bool record_costs(const std::string& path, const CostTable& fresh);

}  // namespace fit::serve
