#include "serve/server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/error.hpp"
#include "util/logging.hpp"

namespace fit::serve {

namespace {

void throw_errno(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno));
}

int connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw Error("socket path too long: " + path);
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    throw_errno("connect to " + path);
  }
  return fd;
}

bool send_all(int fd, const std::string& s) {
  std::size_t off = 0;
  while (off < s.size()) {
    const ssize_t k = ::write(fd, s.data() + off, s.size() - off);
    if (k <= 0) {
      if (k < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(k);
  }
  return true;
}

/// Read up to the next '\n' (not included). False on EOF before any
/// byte arrived.
bool recv_line(int fd, std::string& line) {
  line.clear();
  char c;
  for (;;) {
    const ssize_t k = ::read(fd, &c, 1);
    if (k < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (k == 0) return !line.empty();
    if (c == '\n') return true;
    line.push_back(c);
  }
}

}  // namespace

Server::Server(TransformService service, std::string socket_path)
    : service_(std::move(service)), path_(std::move(socket_path)) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path_.size() >= sizeof(addr.sun_path))
    throw Error("socket path too long: " + path_);
  std::strncpy(addr.sun_path, path_.c_str(), sizeof(addr.sun_path) - 1);
  ::unlink(path_.c_str());  // stale socket from a crashed server
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw_errno("socket");
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw_errno("bind " + path_);
  }
  if (::listen(listen_fd_, 8) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw_errno("listen " + path_);
  }
  FIT_LOG_INFO("serve: listening on " << path_);
}

Server::~Server() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (!path_.empty()) ::unlink(path_.c_str());
}

std::string Server::handle_line(const std::string& line) {
  // Route on the verb; anything unparseable falls through to
  // submit_line, whose taxonomy response covers malformed JSON too.
  std::string verb = "transform";
  std::uint64_t ticket = 0;
  try {
    const obs::json::Value doc = obs::json::parse(line);
    if (doc.is_object()) {
      if (const auto* v = doc.find("verb"); v && v->is_string())
        verb = v->as_string();
      if (const auto* t = doc.find("ticket"); t && t->is_number())
        ticket = static_cast<std::uint64_t>(t->as_number());
    }
  } catch (const Error&) {
    // submit_line re-parses and reports the taxonomy message.
  }

  if (verb == "stats") return service_.metrics().to_json(false).dump();
  if (verb == "tenants") {
    // Per-tenant reservation ledger: who holds how much against which
    // quota — the operator's view of the multi-tenant admission state.
    obs::json::Value doc = obs::json::Value::object();
    doc["outcome"] = "tenants";
    doc["quota_bytes"] = service_.tenant_quota_bytes();
    doc["reserved_bytes"] = service_.reserved_bytes();
    obs::json::Value per = obs::json::Value::object();
    for (const auto& [tenant, bytes] : service_.tenant_reservations())
      per[tenant.empty() ? std::string("(anonymous)") : tenant] = bytes;
    doc["tenants"] = std::move(per);
    return doc.dump();
  }
  if (verb == "shutdown") {
    shutdown_ = true;
    obs::json::Value ack = obs::json::Value::object();
    ack["outcome"] = "shutdown";
    return ack.dump();
  }
  if (verb == "release") {
    obs::json::Value doc = obs::json::Value::object();
    doc["outcome"] = "released";
    doc["ticket"] = ticket;
    obs::json::Value ran = obs::json::Value::array();
    for (const Response& r : service_.release(ticket))
      ran.push_back(r.to_json());
    doc["ran"] = std::move(ran);
    return doc.dump();
  }
  return service_.submit_line(line).to_json().dump();
}

std::size_t Server::serve_forever(std::size_t max_requests) {
  std::size_t served = 0;
  while (!shutdown_ && (max_requests == 0 || served < max_requests)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      throw_errno("accept");
    }
    std::string line;
    while (!shutdown_ && (max_requests == 0 || served < max_requests) &&
           recv_line(fd, line)) {
      if (line.empty()) continue;
      ++served;
      if (!send_all(fd, handle_line(line) + "\n")) break;
    }
    ::close(fd);
  }
  return served;
}

std::string Server::request(const std::string& socket_path,
                            const std::string& line) {
  const int fd = connect_unix(socket_path);
  std::string rsp;
  const bool ok = send_all(fd, line + "\n") && recv_line(fd, rsp);
  ::close(fd);
  if (!ok) throw Error("serve: no response from " + socket_path);
  return rsp;
}

}  // namespace fit::serve
