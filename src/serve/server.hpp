// The wire layer of the persistent transform service: a Unix-domain
// stream socket speaking newline-delimited JSON. One request object per
// line, one response object per line, connections served sequentially
// (the transform itself is the bottleneck, not connection handling).
//
// Verbs, selected by the "verb" member (default "transform"):
//   transform  a serve::Request (see service.hpp) — including the
//              "batch" (shared-basis batch width) and "tenant"
//              (submitting tenant) members; the response is the
//              admission verdict plus plan/execution results.
//   release    {"verb":"release","ticket":N} frees a plan_only
//              reservation; the response carries "released" plus one
//              response object per queued request that ran as a result.
//   stats      the service's serve.* metrics as a JSON object.
//   tenants    the tenant ledger: the configured quota and the bytes
//              each tenant currently holds reserved.
//   shutdown   acknowledges and stops the accept loop.
//
// Malformed lines never kill the server: they come back as
// {"outcome":"error","error":<taxonomy message>}.
#pragma once

#include <cstddef>
#include <string>

#include "serve/service.hpp"

namespace fit::serve {

/// Unix-domain NDJSON server wrapping one TransformService.
class Server {
 public:
  /// Bind to `socket_path` (unlinking any stale socket first).
  /// Throws fit::Error when the socket cannot be created or bound.
  Server(TransformService service, std::string socket_path);
  /// Closes the listening socket and unlinks the path.
  ~Server();

  Server(const Server&) = delete;             ///< Not copyable.
  Server& operator=(const Server&) = delete;  ///< Not copyable.

  /// Accept and serve connections until a shutdown request arrives or
  /// `max_requests` lines have been handled (0 = no limit). Returns
  /// the number of request lines served.
  std::size_t serve_forever(std::size_t max_requests = 0);

  /// Handle one already-parsed request line (exposed for tests and for
  /// the in-process smoke path — no socket needed).
  std::string handle_line(const std::string& line);

  /// The wrapped service (for metrics inspection in tests).
  TransformService& service() { return service_; }
  /// The bound socket path.
  const std::string& socket_path() const { return path_; }

  /// Client helper: connect to `socket_path`, send one line, return
  /// the one response line. Throws fit::Error on connect/io failure.
  static std::string request(const std::string& socket_path,
                             const std::string& line);

 private:
  TransformService service_;
  std::string path_;
  int listen_fd_ = -1;
  bool shutdown_ = false;
};

}  // namespace fit::serve
