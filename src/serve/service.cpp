#include "serve/service.hpp"

#include <algorithm>
#include <utility>

#include "chem/molecule.hpp"
#include "core/problem.hpp"
#include "runtime/cluster.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"
#include "util/logging.hpp"
#include "util/parse.hpp"

namespace fit::serve {

namespace {

// Same 32-bit FNV-1a fold convention as the benches: exactly
// representable as a JSON number, equal folds = bit-identical tensors.
double result_checksum(const tensor::PackedC& c) {
  std::uint64_t h = util::kFnvOffsetBasis;
  const std::size_t n = c.n();
  for (std::size_t a = 0; a < n; ++a)
    for (std::size_t b = 0; b < n; ++b)
      for (std::size_t cc = 0; cc < n; ++cc)
        for (std::size_t d = 0; d < n; ++d) {
          const double v = c.get(a, b, cc, d);
          h = util::fnv1a_bytes(&v, sizeof v, h);
        }
  return static_cast<double>((h >> 32) ^ (h & 0xffffffffull));
}

runtime::MachineConfig machine_for(const Request& r) {
  if (r.system == "A") return runtime::system_a(r.n_nodes);
  if (r.system == "B") return runtime::system_b(r.n_nodes);
  return runtime::system_c(r.n_nodes);
}

core::Problem problem_for(const Request& r) {
  if (r.molecule == "custom")
    return core::make_problem(
        chem::custom_molecule("serve", r.custom_n, r.custom_s));
  return core::make_problem(chem::paper_molecule(r.molecule));
}

double selected_need_bytes(const core::Plan& plan) {
  for (const auto& e : plan.entries)
    if (e.choice == plan.selected) return 8.0 * e.min_fast_memory;
  return 0;  // unreachable: plan_fusion always annotates the winner
}

const char* kCounters[] = {
    "serve.requests",  "serve.admitted",     "serve.degraded",
    "serve.queued",    "serve.rejected",     "serve.errors",
    "serve.cache_hits", "serve.cache_misses", "serve.des_skips",
    "serve.released",  "serve.executed",     "serve.batch_requests",
    "serve.batch_members", "serve.quota_rejected",
};

}  // namespace

Request parse_request(const obs::json::Value& v) {
  if (!v.is_object()) throw ParseError("request is not a JSON object");
  Request r;

  auto get_string = [&](const char* key, std::string& into, bool required) {
    const auto* f = v.find(key);
    if (!f) {
      if (required)
        throw ParseError(std::string("missing string field '") + key + "'");
      return;
    }
    if (!f->is_string())
      throw ParseError(std::string("field '") + key + "' must be a string");
    into = f->as_string();
  };
  auto get_size = [&](const char* key, std::size_t& into) {
    const auto* f = v.find(key);
    if (!f) return;
    if (!f->is_number() || !(f->as_number() >= 1) ||
        f->as_number() != static_cast<double>(
                              static_cast<std::size_t>(f->as_number())))
      throw ParseError(std::string("field '") + key +
                       "' must be a positive number");
    into = static_cast<std::size_t>(f->as_number());
  };
  auto get_bool = [&](const char* key, bool& into) {
    const auto* f = v.find(key);
    if (!f) return;
    if (!f->is_bool())
      throw ParseError(std::string("field '") + key + "' must be a boolean");
    into = f->as_bool();
  };

  get_string("molecule", r.molecule, /*required=*/true);
  get_string("system", r.system, /*required=*/false);
  get_string("balance", r.balance, /*required=*/false);
  get_string("tenant", r.tenant, /*required=*/false);
  get_size("nodes", r.n_nodes);
  get_size("tile", r.tile);
  get_size("tile_l", r.tile_l);
  get_size("batch", r.batch);
  get_bool("real", r.real);
  get_bool("plan_only", r.plan_only);

  if (r.molecule == "custom") {
    std::size_t n = 0;
    get_size("n", n);
    if (n < 2) throw ParseError("custom molecule needs field 'n' >= 2");
    r.custom_n = n;
    std::size_t s = 1;
    get_size("irrep_order", s);
    r.custom_s = static_cast<unsigned>(s);
  } else {
    bool known = false;
    for (const auto& m : chem::paper_molecules())
      known = known || m.name == r.molecule;
    if (!known) throw ParseError("unknown molecule '" + r.molecule + "'");
  }
  if (r.system != "A" && r.system != "B" && r.system != "C")
    throw ParseError("unknown system '" + r.system + "' (want A|B|C)");
  if (!ga::parse_balance(r.balance))
    throw ParseError("unknown balance mode '" + r.balance + "'");
  return r;
}

const char* to_string(Admission a) {
  switch (a) {
    case Admission::Admitted: return "admitted";
    case Admission::Degraded: return "degraded";
    case Admission::Queued:   return "queued";
    case Admission::Rejected: return "rejected";
    case Admission::Error:    return "error";
  }
  return "error";
}

obs::json::Value Response::to_json() const {
  obs::json::Value doc = obs::json::Value::object();
  doc["outcome"] = to_string(admission);
  doc["cache_hit"] = cache_hit;
  doc["ticket"] = ticket;
  doc["fusion"] = fusion;
  doc["balance"] = balance;
  doc["rate_source"] = rate_source;
  doc["est_seconds"] = est_seconds;
  doc["sim_seconds"] = sim_seconds;
  doc["result_checksum"] = result_checksum;
  doc["batch"] = static_cast<double>(batch);
  doc["tenant"] = tenant;
  doc["note"] = note;
  doc["error"] = error;
  return doc;
}

TransformService::TransformService(CostOracle oracle)
    : TransformService(std::move(oracle), Options{}) {}

TransformService::TransformService(CostOracle oracle, Options opt)
    : oracle_(std::move(oracle)), opt_(opt) {
  for (const char* name : kCounters) reg_->counter(name);
  reg_->gauge("serve.reserved_bytes");
  reg_->gauge("serve.queue_depth");
  // Re-point the oracle's fallback counting at this registry so
  // serve.oracle_fallbacks reflects exactly this service's plans.
  oracle_ = CostOracle(oracle_.table(), reg_.get());
}

TransformService TransformService::from_env() {
  Options opt;
  opt.queue_depth = util::env_size_strict("FOURINDEX_SERVE_QUEUE", 4,
                                          /*min=*/0);
  opt.tenant_quota_bytes = static_cast<double>(
      util::env_size_strict("FOURINDEX_TENANT_QUOTA", 0, /*min=*/0));
  return TransformService(CostOracle::from_env(), opt);
}

double TransformService::tenant_reserved(const std::string& tenant) const {
  const auto it = tenant_reserved_.find(tenant);
  return it == tenant_reserved_.end() ? 0.0 : it->second;
}

std::uint64_t TransformService::fingerprint(const Request& r,
                                            const std::string& source) const {
  std::uint64_t h = util::fnv1a(r.molecule);
  h = util::fnv1a_u64(r.custom_n, h);
  h = util::fnv1a_u64(r.custom_s, h);
  h = util::fnv1a(r.system, h);
  h = util::fnv1a_u64(r.n_nodes, h);
  h = util::fnv1a(r.balance, h);
  h = util::fnv1a_u64(r.tile, h);
  h = util::fnv1a_u64(r.tile_l, h);
  h = util::fnv1a_u64(r.real ? 1 : 0, h);
  // The batch width changes the schedule (and the balance memo's phase
  // shapes); the tenant does not — tenants share cache entries.
  h = util::fnv1a_u64(r.batch, h);
  h = util::fnv1a(source, h);
  return h;
}

Response TransformService::submit(const Request& r) {
  reg_->add(reg_->counter("serve.requests"), 0, 1);
  Response rsp = admit_and_run(r, /*from_queue=*/false);
  reg_->set(reg_->gauge("serve.reserved_bytes"), 0, reserved_bytes_);
  reg_->set(reg_->gauge("serve.queue_depth"), 0,
           static_cast<double>(queue_.size()));
  return rsp;
}

Response TransformService::submit_line(const std::string& json_line) {
  try {
    return submit(parse_request(obs::json::parse(json_line)));
  } catch (const Error& e) {
    // Malformed request or JSON: a taxonomy response, not a dead server.
    reg_->add(reg_->counter("serve.errors"), 0, 1);
    Response rsp;
    rsp.admission = Admission::Error;
    rsp.error = e.what();
    return rsp;
  }
}

Response TransformService::admit_and_run(const Request& r, bool from_queue) {
  Response rsp;
  rsp.batch = r.batch;
  rsp.tenant = r.tenant;
  const core::Problem p = problem_for(r);
  const runtime::MachineConfig nominal = machine_for(r);
  const double n = static_cast<double>(p.n());
  const double s = static_cast<double>(p.irreps.order());
  const double total_bytes = nominal.aggregate_memory_bytes();

  // The memory this tenant could ever see: the idle machine, capped by
  // its quota. The ladder never hands one tenant another's share.
  const bool quota_active = opt_.tenant_quota_bytes > 0;
  const double idle_bytes =
      quota_active ? std::min(total_bytes, opt_.tenant_quota_bytes)
                   : total_bytes;
  // What is free for this tenant right now: the machine's unreserved
  // remainder, further capped by the quota minus the tenant's own live
  // reservations.
  double avail_bytes = total_bytes - reserved_bytes_;
  if (quota_active)
    avail_bytes = std::min(
        avail_bytes, opt_.tenant_quota_bytes - tenant_reserved(r.tenant));
  const double idle_elems = idle_bytes / 8.0;
  const double avail_elems = avail_bytes / 8.0;

  const core::PlanRates rates = oracle_.rates(nominal, n, r.tile);

  // A batch charges admission for its aggregate peak: under the fused
  // schedules every member's C stays resident.
  core::BatchPlan bp;
  if (r.batch > 1) bp = core::plan_batch(p, nominal, r.tile_l, r.batch, rates);
  const double batch_need = r.batch > 1 ? bp.total_need_bytes : 0.0;

  // Unconstrained plan: what the Thm 5.2 order picks on the machine
  // this tenant could ever have. Failing here — or a batch whose peak
  // exceeds it — means the request can never run: Rejected.
  core::Plan full;
  bool never_fits = batch_need > idle_bytes;
  std::string never_why =
      never_fits ? "the batch's aggregate peak exceeds it" : "";
  if (!never_fits) {
    try {
      full = core::plan_fusion(n, s, idle_elems);
    } catch (const Error& e) {
      never_fits = true;
      never_why = e.what();
    }
  }
  if (never_fits) {
    rsp.admission = Admission::Rejected;
    const bool quota_bound = quota_active && idle_bytes < total_bytes;
    rsp.error = (quota_bound ? std::string("exceeds the tenant quota: ")
                             : std::string("exceeds the idle machine: ")) +
                never_why;
    reg_->add(reg_->counter("serve.rejected"), 0, 1);
    if (quota_bound) reg_->add(reg_->counter("serve.quota_rejected"), 0, 1);
    return rsp;
  }

  // Constrained plan: the same ladder against what is actually free
  // for this tenant. A downgrade is a Degraded admission; not even
  // unfused fitting is the queue/reject boundary.
  core::Plan now;
  bool fits = avail_elems >= 1 && batch_need <= avail_bytes;
  bool degraded = false;
  if (fits) {
    try {
      now = avail_elems + 0.5 < idle_elems
                ? core::replan_fusion(full, avail_elems)
                : full;
      degraded = now.selected != full.selected;
    } catch (const Error&) {
      fits = false;
    }
  }
  if (!fits) {
    if (from_queue || queue_.size() >= opt_.queue_depth) {
      rsp.admission = Admission::Rejected;
      rsp.error = from_queue ? "still blocked by reservations"
                             : "queue full (" +
                                   std::to_string(opt_.queue_depth) +
                                   " waiting slots)";
      if (!from_queue) reg_->add(reg_->counter("serve.rejected"), 0, 1);
      return rsp;
    }
    rsp.admission = Admission::Queued;
    rsp.ticket = next_ticket_++;
    rsp.note = quota_active
                   ? "fits the tenant's idle share; waiting for a release"
                   : "fits the idle machine; waiting for a release";
    queue_.push_back(
        {rsp.ticket, r,
         std::max(selected_need_bytes(full), batch_need)});
    reg_->add(reg_->counter("serve.queued"), 0, 1);
    return rsp;
  }

  rsp.admission = degraded ? Admission::Degraded : Admission::Admitted;
  rsp.fusion = bounds::to_string(now.selected);
  if (degraded) {
    for (const auto& e : now.entries)
      if (e.choice == now.selected) rsp.note = e.note;
    reg_->add(reg_->counter("serve.degraded"), 0, 1);
  } else {
    reg_->add(reg_->counter("serve.admitted"), 0, 1);
  }

  // Schedule cache: measured rates + the cluster plan + the balance
  // memo, keyed on the request fingerprint (which folds the batch
  // width — a batch's phase shapes differ from a solo run's). The
  // admission ladder above always runs (it depends on live
  // reservations); the cache is what lets a warm request skip the
  // cluster re-plan and the per-phase DES.
  const std::uint64_t key = fingerprint(r, rates.source);
  auto it = cache_.find(key);
  rsp.cache_hit = it != cache_.end();
  reg_->add(reg_->counter(rsp.cache_hit ? "serve.cache_hits"
                                      : "serve.cache_misses"),
           0, 1);
  if (!rsp.cache_hit) {
    CacheEntry fresh;
    fresh.rates = rates;
    fresh.plan = core::plan_for_cluster(p, nominal, r.tile_l, rates);
    fresh.fusion = bounds::to_string(now.selected);
    fresh.batch_plan = bp;
    it = cache_.emplace(key, std::move(fresh)).first;
  }
  CacheEntry& entry = it->second;
  entry.need_bytes = std::max(selected_need_bytes(now), batch_need);
  rsp.rate_source = entry.rates.source;
  rsp.est_seconds = now.selected == bounds::FusionChoice::Unfused
                        ? entry.plan.est_seconds_unfused
                        : entry.plan.est_seconds_fused;
  if (r.batch > 1) {
    reg_->add(reg_->counter("serve.batch_requests"), 0, 1);
    reg_->add(reg_->counter("serve.batch_members"), 0,
             static_cast<double>(r.batch));
    // The planner's amortized estimate, upgraded to the bench-measured
    // batch throughput when the cost table carries a bucket.
    rsp.est_seconds = bp.est_seconds_batched;
    if (const double tps = oracle_.batch_transforms_per_s(r.batch);
        tps > 0)
      rsp.est_seconds = static_cast<double>(r.batch) / tps;
  }

  if (r.plan_only) {
    rsp.ticket = next_ticket_++;
    holds_.push_back({rsp.ticket, r, entry.need_bytes});
    reserved_bytes_ += entry.need_bytes;
    tenant_reserved_[r.tenant] += entry.need_bytes;
    return rsp;
  }
  return run(r, entry, std::move(rsp));
}

Response TransformService::run(const Request& r, CacheEntry& entry,
                               Response rsp) {
  const core::Problem p = problem_for(r);
  const runtime::MachineConfig eff =
      core::apply_rates(machine_for(r), entry.rates);
  runtime::Cluster cl(eff, r.real ? runtime::ExecutionMode::Real
                                  : runtime::ExecutionMode::Simulate);
  core::ParOptions o;
  o.tile = r.tile;
  o.tile_l = r.tile_l;
  o.balance = *ga::parse_balance(r.balance);
  o.gather_result = r.real;
  o.balance_cache = &entry.balance_memo;
  const std::size_t des_hits0 = entry.balance_memo.hits;

  const bool unfused =
      rsp.fusion == bounds::to_string(bounds::FusionChoice::Unfused);
  rsp.balance = r.balance;
  if (r.batch > 1) {
    // Shared-basis batch: fill A once, run every member's chain. The
    // response checksum is the FNV fold of the member checksums, so a
    // client (or the replay gate) can reproduce it from solo runs.
    const auto member_b = core::batch_member_bs(p, r.batch);
    const core::BatchParResult res =
        unfused ? core::batched_unfused_par_transform(p, member_b, cl, o)
                : core::batched_fused_inner_par_transform(p, member_b, cl,
                                                          o);
    rsp.sim_seconds = res.stats.sim_time;
    if (r.real) {
      std::uint64_t h = util::kFnvOffsetBasis;
      for (const auto& c : res.c) {
        if (!c) continue;
        const double cs = result_checksum(*c);
        h = util::fnv1a_bytes(&cs, sizeof cs, h);
      }
      rsp.result_checksum =
          static_cast<double>((h >> 32) ^ (h & 0xffffffffull));
    }
  } else {
    const core::ParResult res =
        unfused ? core::unfused_par_transform(p, cl, o)
                : core::fused_inner_par_transform(p, cl, o);
    rsp.sim_seconds = res.stats.sim_time;
    if (r.real && res.c) rsp.result_checksum = result_checksum(*res.c);
  }
  reg_->add(reg_->counter("serve.executed"), 0, 1);
  reg_->add(reg_->counter("serve.des_skips"), 0,
           static_cast<double>(entry.balance_memo.hits - des_hits0));
  return rsp;
}

std::vector<Response> TransformService::release(std::uint64_t ticket) {
  std::vector<Response> ran;
  const auto held =
      std::find_if(holds_.begin(), holds_.end(),
                   [&](const Ticketed& t) { return t.ticket == ticket; });
  if (held == holds_.end()) {
    Response rsp;
    rsp.admission = Admission::Error;
    rsp.error = "unknown ticket " + std::to_string(ticket);
    reg_->add(reg_->counter("serve.errors"), 0, 1);
    ran.push_back(std::move(rsp));
    return ran;
  }
  reserved_bytes_ = std::max(0.0, reserved_bytes_ - held->need_bytes);
  if (const auto tr = tenant_reserved_.find(held->request.tenant);
      tr != tenant_reserved_.end()) {
    tr->second = std::max(0.0, tr->second - held->need_bytes);
    if (tr->second <= 0) tenant_reserved_.erase(tr);
  }
  holds_.erase(held);
  reg_->add(reg_->counter("serve.released"), 0, 1);

  // Tenant-aware drain: rotate across the tenants present in the
  // queue, strict FIFO within each tenant — one tenant's blocked head
  // never starves another tenant's runnable work, and with a single
  // tenant this is exactly the old FIFO drain (the head either runs
  // now or keeps its place and blocks everything behind it).
  bool progress = true;
  while (progress && !queue_.empty()) {
    progress = false;
    std::vector<std::string> tenants;  // first-appearance order
    for (const auto& t : queue_)
      if (std::find(tenants.begin(), tenants.end(), t.request.tenant) ==
          tenants.end())
        tenants.push_back(t.request.tenant);
    for (const auto& tn : tenants) {
      const auto head = std::find_if(
          queue_.begin(), queue_.end(),
          [&](const Ticketed& t) { return t.request.tenant == tn; });
      if (head == queue_.end()) continue;
      Response rsp = admit_and_run(head->request, /*from_queue=*/true);
      if (rsp.admission == Admission::Rejected &&
          rsp.error == "still blocked by reservations")
        continue;
      queue_.erase(head);
      ran.push_back(std::move(rsp));
      progress = true;
    }
  }
  reg_->set(reg_->gauge("serve.reserved_bytes"), 0, reserved_bytes_);
  reg_->set(reg_->gauge("serve.queue_depth"), 0,
           static_cast<double>(queue_.size()));
  return ran;
}

}  // namespace fit::serve
