// The persistent transform service: parse a request, admit it against
// the machine's aggregate-memory bounds (walking the Thm 5.2 fusion
// ladder via core::replan_fusion), plan it at the cost oracle's
// measured rates, and execute it — with a schedule cache so a repeated
// identical request skips both the cluster re-plan and the per-phase
// balance DES.
//
// Admission is a four-way verdict:
//   admitted   fits the available aggregate memory at the fusion level
//              an unconstrained plan would pick;
//   degraded   fits only after walking down the Thm 5.2 order (the
//              replan_fusion path capacity faults already use);
//   queued     does not fit next to the currently reserved work but
//              would fit an idle machine — parked FIFO up to the
//              configured queue depth (FOURINDEX_SERVE_QUEUE);
//   rejected   exceeds even the idle machine at the most degraded
//              level, or the queue is full.
//
// Memory accounting: executing and plan-only requests reserve their
// selected configuration's aggregate need until they finish (are
// released); queued requests wait for a release to retry.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/planner.hpp"
#include "core/schedules_par.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "serve/cost_oracle.hpp"

namespace fit::serve {

/// One transform request, as carried by the NDJSON protocol.
struct Request {
  std::string molecule = "Hyperpolar";  ///< Paper name, or "custom".
  std::size_t custom_n = 0;             ///< Extent for "custom".
  unsigned custom_s = 1;                ///< Irrep order for "custom".
  std::string system = "A";             ///< Machine family: A | B | C.
  std::size_t n_nodes = 4;              ///< Cluster size in nodes.
  std::string balance = "auto";         ///< ga::Balance spelling.
  std::size_t tile = 4;                 ///< Tile extent per index.
  std::size_t tile_l = 8;               ///< L-dimension tile extent.
  bool real = false;       ///< Real execution (checksummed) vs Simulate.
  bool plan_only = false;  ///< Admit + reserve, do not execute.
  /// Shared-basis batch width: members > 1 run the batched schedules
  /// (core::batched_*_par_transform), paying the AO integral fill once
  /// and charging admission for the batch's aggregate peak
  /// (core::plan_batch).
  std::size_t batch = 1;
  /// Submitting tenant. Admission charges this tenant's reservations
  /// against Options::tenant_quota_bytes, and the queue drain rotates
  /// across tenants instead of strict FIFO. Empty = the anonymous
  /// single tenant (exactly the untenanted behavior).
  std::string tenant;
};

/// Parse the "transform" request object. Throws fit::ParseError with a
/// stable taxonomy: "request is not a JSON object", "missing string
/// field '...'", "unknown molecule '...'", "unknown system '...'",
/// "unknown balance mode '...'", "field '...' must be a positive
/// number", "custom molecule needs field 'n' >= 2".
Request parse_request(const obs::json::Value& v);

/// The admission controller's verdict.
enum class Admission {
  Admitted,  ///< Fits available memory at the unconstrained fusion.
  Degraded,  ///< Fits after walking down the Thm 5.2 fusion order.
  Queued,    ///< Fits an idle machine; parked until a release.
  Rejected,  ///< Exceeds the idle machine, or the queue is full.
  Error      ///< Malformed request; see Response::error.
};
/// Wire spelling of a verdict ("admitted", "degraded", ...).
const char* to_string(Admission a);

/// One response line of the NDJSON protocol.
struct Response {
  Admission admission = Admission::Error;  ///< The verdict.
  bool cache_hit = false;  ///< Schedule cache replayed this plan.
  std::uint64_t ticket = 0;      ///< Reservation/queue handle (0 = none).
  std::string fusion;            ///< Fusion level the plan selected.
  std::string balance;           ///< Balance mode the request ran with.
  std::string rate_source;       ///< "measured" or "nominal".
  double est_seconds = 0;        ///< Planner estimate at those rates.
  double sim_seconds = 0;        ///< Modeled time (0 when not executed).
  double result_checksum = 0;    ///< FNV fold of C (real mode only; a
                                 ///< batch folds its members' folds).
  std::size_t batch = 1;         ///< Shared-basis batch width echoed back.
  std::string tenant;            ///< Submitting tenant echoed back.
  std::string note;              ///< Degradation rationale, cache info.
  std::string error;             ///< Non-empty for Rejected / Error.

  /// The response as a JSON object, ready for one NDJSON line.
  obs::json::Value to_json() const;
};

/// The persistent service: admission control over the Thm 5.2 fusion
/// ladder (per tenant, against remaining aggregate memory and the
/// tenant's quota), oracle-rated planning, a schedule cache keyed per
/// batch fingerprint, and a queue of waiting requests drained
/// round-robin across tenants (plain FIFO when only one tenant is
/// present).
class TransformService {
 public:
  /// Tunables not carried per-request.
  struct Options {
    /// Queue slots for requests that fit an idle machine but not the
    /// current reservations. Default from FOURINDEX_SERVE_QUEUE (4).
    std::size_t queue_depth = 4;
    /// Per-tenant cap on reserved aggregate bytes (0 = uncapped). A
    /// request whose need exceeds the cap outright is Rejected; one
    /// blocked only by the tenant's live reservations is Queued and
    /// retried as they release. Default from FOURINDEX_TENANT_QUOTA
    /// (bytes, 0).
    double tenant_quota_bytes = 0;
  };

  /// Service with default options around \p oracle.
  explicit TransformService(CostOracle oracle);
  /// Service with explicit options around \p oracle.
  TransformService(CostOracle oracle, Options opt);
  /// Oracle from FOURINDEX_COST_TABLE, queue depth from
  /// FOURINDEX_SERVE_QUEUE.
  static TransformService from_env();

  /// Admit (and unless plan_only/queued/rejected, execute) a request.
  Response submit(const Request& r);
  /// Parse one NDJSON request line and submit it; malformed input
  /// becomes an Admission::Error response carrying the taxonomy
  /// message instead of an exception (the server loop stays up).
  Response submit_line(const std::string& json_line);

  /// Release a reservation (a finished plan_only admission). Frees its
  /// memory and retries the queue FIFO; every queued request that now
  /// fits runs and its response is returned.
  std::vector<Response> release(std::uint64_t ticket);

  /// Reserved aggregate bytes currently held against admissions.
  double reserved_bytes() const { return reserved_bytes_; }
  /// Requests parked in the FIFO queue.
  std::size_t queued() const { return queue_.size(); }
  /// Bytes currently reserved by one tenant's live admissions.
  double tenant_reserved(const std::string& tenant) const;
  /// Per-tenant reserved bytes for every tenant holding a reservation.
  const std::unordered_map<std::string, double>& tenant_reservations()
      const {
    return tenant_reserved_;
  }
  /// The per-tenant reservation cap in force (0 = uncapped).
  double tenant_quota_bytes() const { return opt_.tenant_quota_bytes; }

  /// serve.* counters/gauges: requests, admitted, degraded, queued,
  /// rejected, errors, cache_hits, cache_misses, des_skips,
  /// oracle_fallbacks, released, reserved_bytes, queue_depth.
  obs::MetricsRegistry& metrics() { return *reg_; }
  /// Read-only view of the serve.* counters.
  const obs::MetricsRegistry& metrics() const { return *reg_; }

  /// The cost oracle rating this service's plans.
  const CostOracle& oracle() const { return oracle_; }

 private:
  struct CacheEntry {
    core::ClusterPlan plan;
    core::PlanRates rates;
    core::BalanceCache balance_memo;
    double need_bytes = 0;
    std::string fusion;
    /// Amortization plan when the fingerprinted request is a batch
    /// (Request::batch > 1); n_members == 1 otherwise.
    core::BatchPlan batch_plan;
  };

  struct Ticketed {
    std::uint64_t ticket;
    Request request;
    double need_bytes;  // reserved (holds) or required (queued)
  };

  std::uint64_t fingerprint(const Request& r, const std::string& source) const;
  Response admit_and_run(const Request& r, bool from_queue);
  Response run(const Request& r, CacheEntry& entry, Response rsp);

  CostOracle oracle_;
  Options opt_;
  /// Heap-held so the service stays movable (MetricsRegistry owns a
  /// mutex) and the oracle's registry pointer survives moves.
  std::unique_ptr<obs::MetricsRegistry> reg_ =
      std::make_unique<obs::MetricsRegistry>(1);
  std::unordered_map<std::uint64_t, CacheEntry> cache_;
  std::deque<Ticketed> queue_;
  std::vector<Ticketed> holds_;
  double reserved_bytes_ = 0;
  /// Live reservation bytes per tenant (entries erased at zero).
  std::unordered_map<std::string, double> tenant_reserved_;
  std::uint64_t next_ticket_ = 1;
};

}  // namespace fit::serve
