#include "tensor/antisym.hpp"

namespace fit::tensor {

AntisymPackedC::AntisymPackedC(std::size_t n, Irreps irreps)
    : n_(n), irreps_(std::move(irreps)) {
  FIT_REQUIRE(irreps_.n_orbitals() == n, "irrep map extent mismatch");
  const std::size_t p = npairs_strict(n);
  pair_irrep_.resize(p);
  pair_pos_.resize(p);
  std::vector<std::size_t> count(irreps_.order(), 0);
  for (std::size_t i = 1; i < n; ++i)
    for (std::size_t j = 0; j < i; ++j) {
      const std::size_t pp = pack_pair_strict(i, j);
      const std::uint8_t h = irreps_.pair_irrep(i, j);
      pair_irrep_[pp] = h;
      pair_pos_[pp] = static_cast<std::uint32_t>(count[h]++);
    }
  blocks_.reserve(irreps_.order());
  for (unsigned h = 0; h < irreps_.order(); ++h)
    blocks_.emplace_back(count[h], count[h]);
}

std::size_t AntisymPackedC::stored_elements() const {
  std::size_t total = 0;
  for (const auto& b : blocks_) total += b.size();
  return total;
}

double AntisymPackedC::get(std::size_t a, std::size_t b, std::size_t c,
                           std::size_t d) const {
  const auto pab = signed_pair(a, b);
  const auto pcd = signed_pair(c, d);
  const double s = pab.sign * pcd.sign;
  if (s == 0.0) return 0.0;
  if (pair_irrep_[pab.index] != pair_irrep_[pcd.index]) return 0.0;
  return s * blocks_[pair_irrep_[pab.index]](pair_pos_[pab.index],
                                             pair_pos_[pcd.index]);
}

void AntisymPackedC::add(std::size_t a, std::size_t b, std::size_t c,
                         std::size_t d, double v) {
  FIT_REQUIRE(a > b && c > d, "antisym add requires canonical a>b, c>d");
  const std::size_t pab = pack_pair_strict(a, b);
  const std::size_t pcd = pack_pair_strict(c, d);
  if (pair_irrep_[pab] != pair_irrep_[pcd]) {
    FIT_REQUIRE(v == 0.0, "nonzero write to spatially forbidden entry");
    return;
  }
  blocks_[pair_irrep_[pab]](pair_pos_[pab], pair_pos_[pcd]) += v;
}

double AntisymPackedC::max_abs_diff(const AntisymPackedC& other) const {
  FIT_REQUIRE(n_ == other.n_, "extent mismatch");
  double m = 0.0;
  for (std::size_t h = 0; h < blocks_.size(); ++h) {
    const Matrix& x = blocks_[h];
    const Matrix& y = other.blocks_[h];
    for (std::size_t i = 0; i < x.rows(); ++i)
      for (std::size_t j = 0; j < x.cols(); ++j)
        m = std::max(m, std::fabs(x(i, j) - y(i, j)));
  }
  return m;
}

}  // namespace fit::tensor
