// Antisymmetric index-pair packing and the antisymmetric tensor
// containers.
//
// The paper's footnote 1: tensors in quantum chemistry generally carry
// *anti*-symmetry, V[i,j,..] == -V[j,i,..] (the presentation uses
// symmetric tensors for simplicity, but "our codes actually
// incorporate anti-symmetry"). An antisymmetric group stores only the
// strict triangle i > j — the diagonal vanishes identically — and
// reads of the mirrored element flip the sign.
#pragma once

#include <cmath>
#include <cstddef>
#include <vector>

#include "tensor/irreps.hpp"
#include "tensor/matrix.hpp"
#include "util/error.hpp"

namespace fit::tensor {

/// Number of strict pairs (i > j) over extent n.
constexpr std::size_t npairs_strict(std::size_t n) {
  return n * (n - 1) / 2;
}

/// Packed index of a strict pair; requires i > j.
inline std::size_t pack_pair_strict(std::size_t i, std::size_t j) {
  FIT_REQUIRE(i > j, "pack_pair_strict requires i > j");
  return i * (i - 1) / 2 + j;
}

/// Signed packed lookup for any index order: sign is +1 for i > j,
/// -1 for i < j, and 0 on the (identically zero) diagonal, in which
/// case `index` is unspecified.
struct SignedPair {
  std::size_t index;
  double sign;
};

inline SignedPair signed_pair(std::size_t i, std::size_t j) {
  if (i > j) return {pack_pair_strict(i, j), 1.0};
  if (j > i) return {pack_pair_strict(j, i), -1.0};
  return {0, 0.0};
}

/// A[ij, kl] antisymmetric in (i,j) and in (k,l): strict-triangle
/// packed on both axes, ~n^4/4 stored elements.
class AntisymPackedA {
 public:
  explicit AntisymPackedA(std::size_t n)
      : n_(n), data_(npairs_strict(n), npairs_strict(n)) {}

  std::size_t n() const { return n_; }
  std::size_t stored_elements() const { return data_.size(); }

  double operator()(std::size_t i, std::size_t j, std::size_t k,
                    std::size_t l) const {
    const auto pij = signed_pair(i, j);
    const auto pkl = signed_pair(k, l);
    const double s = pij.sign * pkl.sign;
    return s == 0.0 ? 0.0 : s * data_(pij.index, pkl.index);
  }

  /// Canonical write: requires i > j and k > l.
  void set(std::size_t i, std::size_t j, std::size_t k, std::size_t l,
           double v) {
    data_(pack_pair_strict(i, j), pack_pair_strict(k, l)) = v;
  }

 private:
  std::size_t n_;
  Matrix data_;
};

/// C[ab, cd] antisymmetric in (a,b) and (c,d), with the same irrep
/// block sparsity as the symmetric PackedC: entries exist only when
/// the two strict pairs share an irrep.
class AntisymPackedC {
 public:
  AntisymPackedC(std::size_t n, Irreps irreps);

  std::size_t n() const { return n_; }
  std::size_t stored_elements() const;

  /// Zero on diagonals and spatially forbidden entries; signed
  /// otherwise.
  double get(std::size_t a, std::size_t b, std::size_t c,
             std::size_t d) const;

  /// Accumulate into the canonical entry; requires a > b, c > d and
  /// the entry spatially allowed (zero writes to forbidden entries are
  /// dropped, mirroring PackedC).
  void add(std::size_t a, std::size_t b, std::size_t c, std::size_t d,
           double v);

  double max_abs_diff(const AntisymPackedC& other) const;

 private:
  std::size_t n_;
  Irreps irreps_;
  std::vector<std::uint8_t> pair_irrep_;   // strict pair -> irrep
  std::vector<std::uint32_t> pair_pos_;    // strict pair -> row in block
  std::vector<Matrix> blocks_;
};

}  // namespace fit::tensor
