#include "tensor/irreps.hpp"

namespace fit::tensor {

namespace {
bool is_pow2(unsigned v) { return v != 0 && (v & (v - 1)) == 0; }
}  // namespace

Irreps::Irreps(std::vector<std::uint8_t> labels, unsigned order)
    : labels_(std::move(labels)), order_(order) {
  FIT_REQUIRE(is_pow2(order_), "irrep group order must be a power of two");
  for (auto l : labels_)
    FIT_REQUIRE(l < order_, "irrep label " << int(l) << " >= order " << order_);
}

Irreps Irreps::trivial(std::size_t n_orbitals) {
  return Irreps(std::vector<std::uint8_t>(n_orbitals, 0), 1);
}

Irreps Irreps::contiguous(std::size_t n_orbitals, unsigned order) {
  FIT_REQUIRE(is_pow2(order), "irrep group order must be a power of two");
  std::vector<std::uint8_t> labels(n_orbitals);
  // Equal-as-possible contiguous blocks: block b covers
  // [b*n/order, (b+1)*n/order).
  for (std::size_t o = 0; o < n_orbitals; ++o)
    labels[o] = static_cast<std::uint8_t>(o * order / n_orbitals);
  return Irreps(std::move(labels), order);
}

bool Irreps::is_contiguous() const {
  for (std::size_t o = 1; o < labels_.size(); ++o)
    if (labels_[o] < labels_[o - 1]) return false;
  return true;
}

}  // namespace fit::tensor
