// Spatial-symmetry machinery.
//
// Spatial symmetry (paper Sec. 2.1) is a structured sparsity of the
// final MO tensor C: a block vanishes unless the product of the
// irreducible representations (irreps) of its four orbital indices is
// the totally symmetric irrep. For abelian point groups such as D2h
// the irrep product is an XOR over bit labels, which is what we model:
// each orbital carries a label in [0, order) with `order` a power of
// two, and a quadruple (a,b,c,d) is allowed iff the XOR of the four
// labels is zero. Uniformly distributed labels give the paper's 1/s
// storage reduction for C (Table 1, n^4/(4s)).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace fit::tensor {

class Irreps {
 public:
  /// Explicit per-orbital labels. `order` must be a power of two and
  /// every label must be < order.
  Irreps(std::vector<std::uint8_t> labels, unsigned order);

  /// All orbitals in the totally symmetric irrep (no spatial symmetry).
  static Irreps trivial(std::size_t n_orbitals);

  /// Orbitals split into `order` contiguous equal-as-possible blocks,
  /// one irrep per block — the layout produced by symmetry-adapted
  /// basis orderings in chemistry codes.
  static Irreps contiguous(std::size_t n_orbitals, unsigned order);

  std::size_t n_orbitals() const { return labels_.size(); }
  unsigned order() const { return order_; }

  std::uint8_t of(std::size_t orbital) const {
    FIT_REQUIRE(orbital < labels_.size(), "orbital out of range");
    return labels_[orbital];
  }

  /// Irrep of an index pair (XOR product).
  std::uint8_t pair_irrep(std::size_t i, std::size_t j) const {
    return static_cast<std::uint8_t>(of(i) ^ of(j));
  }

  /// True iff the quadruple can carry a nonzero integral.
  bool allowed(std::size_t a, std::size_t b, std::size_t c,
               std::size_t d) const {
    return (of(a) ^ of(b) ^ of(c) ^ of(d)) == 0;
  }

  /// First orbital of each contiguous irrep block, if the labels are in
  /// fact contiguous; used for irrep-aligned tilings.
  bool is_contiguous() const;

 private:
  std::vector<std::uint8_t> labels_;
  unsigned order_;
};

}  // namespace fit::tensor
