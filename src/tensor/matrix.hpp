// Owning dense row-major matrix.
#pragma once

#include <cstddef>
#include <vector>

#include "util/error.hpp"

namespace fit::tensor {

/// Dense row-major matrix of doubles. The workhorse 2-D container for
/// transformation matrices B and packed 2-D views of symmetric tensors.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }

  double& operator()(std::size_t i, std::size_t j) {
    FIT_REQUIRE(i < rows_ && j < cols_,
                "Matrix(" << i << "," << j << ") out of " << rows_ << "x"
                          << cols_);
    return data_[i * cols_ + j];
  }
  double operator()(std::size_t i, std::size_t j) const {
    FIT_REQUIRE(i < rows_ && j < cols_,
                "Matrix(" << i << "," << j << ") out of " << rows_ << "x"
                          << cols_);
    return data_[i * cols_ + j];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  double* row(std::size_t i) { return data_.data() + i * cols_; }
  const double* row(std::size_t i) const { return data_.data() + i * cols_; }

  void fill(double v) { std::fill(data_.begin(), data_.end(), v); }

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<double> data_;
};

}  // namespace fit::tensor
