#include "tensor/packed.hpp"

#include <cmath>

namespace fit::tensor {

std::size_t TensorSizes::unfused_peak() const {
  // The unfused schedule (paper Listing 1) keeps the input and output
  // of one contraction live at a time: A+O1, O1+O2, O2+O3, O3+C.
  const std::size_t s1 = a + o1, s2 = o1 + o2, s3 = o2 + o3, s4 = o3 + c;
  return std::max(std::max(s1, s2), std::max(s3, s4));
}

TensorSizes packed_sizes(std::size_t n, const Irreps& irreps) {
  FIT_REQUIRE(irreps.n_orbitals() == n, "irrep map extent mismatch");
  const std::size_t p = npairs(n);
  TensorSizes sz;
  sz.a = p * p;
  sz.o1 = n * n * p;
  sz.o2 = p * p;
  sz.o3 = p * n * n;
  // Exact spatial reduction: count pairs per irrep; C = sum of squares.
  std::vector<std::size_t> pop(irreps.order(), 0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j <= i; ++j) ++pop[irreps.pair_irrep(i, j)];
  sz.c = 0;
  for (auto c : pop) sz.c += c * c;
  return sz;
}

ApproxSizes approx_sizes(double n, double s) {
  const double n4 = n * n * n * n;
  return ApproxSizes{n4 / 4, n4 / 2, n4 / 4, n4 / 2, n4 / (4 * s)};
}

void PackedA::unpack_kl(std::size_t k, std::size_t l, Matrix& out) const {
  FIT_REQUIRE(out.rows() == n_ && out.cols() == n_,
              "unpack_kl: output must be n x n");
  const std::size_t col = pack_pair_sym(k, l);
  for (std::size_t i = 0; i < n_; ++i)
    for (std::size_t j = 0; j <= i; ++j) {
      const double v = data_(pack_pair(i, j), col);
      out(i, j) = v;
      out(j, i) = v;
    }
}

void PackedO2::unpack_ab(std::size_t a, std::size_t b, Matrix& out) const {
  FIT_REQUIRE(out.rows() == n_ && out.cols() == n_,
              "unpack_ab: output must be n x n");
  // The (a, b) row of the packed view holds the (kl) pairs
  // contiguously in canonical k >= l order.
  const double* row = data_.row(pack_pair_sym(a, b));
  for (std::size_t k = 0; k < n_; ++k) {
    const double* krow = row + pack_pair(k, 0);
    for (std::size_t l = 0; l <= k; ++l) {
      out(k, l) = krow[l];
      out(l, k) = krow[l];
    }
  }
}

PackedC::PackedC(std::size_t n, Irreps irreps)
    : n_(n), irreps_(std::move(irreps)) {
  FIT_REQUIRE(irreps_.n_orbitals() == n, "irrep map extent mismatch");
  const std::size_t p = npairs(n);
  pair_irrep_.resize(p);
  pair_pos_.resize(p);
  std::vector<std::size_t> count(irreps_.order(), 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const std::size_t pp = pack_pair(i, j);
      const std::uint8_t h = irreps_.pair_irrep(i, j);
      pair_irrep_[pp] = h;
      pair_pos_[pp] = static_cast<std::uint32_t>(count[h]++);
    }
  }
  blocks_.reserve(irreps_.order());
  for (unsigned h = 0; h < irreps_.order(); ++h)
    blocks_.emplace_back(count[h], count[h]);
}

std::size_t PackedC::stored_elements() const {
  std::size_t total = 0;
  for (const auto& b : blocks_) total += b.size();
  return total;
}

double PackedC::get(std::size_t a, std::size_t b, std::size_t c,
                    std::size_t d) const {
  const std::size_t pab = pack_pair_sym(a, b);
  const std::size_t pcd = pack_pair_sym(c, d);
  if (pair_irrep_[pab] != pair_irrep_[pcd]) return 0.0;
  return blocks_[pair_irrep_[pab]](pair_pos_[pab], pair_pos_[pcd]);
}

void PackedC::add(std::size_t a, std::size_t b, std::size_t c, std::size_t d,
                  double v) {
  const std::size_t pab = pack_pair_sym(a, b);
  const std::size_t pcd = pack_pair_sym(c, d);
  if (pair_irrep_[pab] != pair_irrep_[pcd]) {
    // Spatially forbidden entries must be numerically zero; tolerate
    // exact zeros so generic accumulation loops do not need the check.
    FIT_REQUIRE(v == 0.0, "nonzero write " << v
                          << " to spatially forbidden C entry (" << a << ","
                          << b << "," << c << "," << d << ")");
    return;
  }
  blocks_[pair_irrep_[pab]](pair_pos_[pab], pair_pos_[pcd]) += v;
}

double PackedC::max_abs_diff(const PackedC& other) const {
  FIT_REQUIRE(n_ == other.n_ && irreps_.order() == other.irreps_.order(),
              "comparing incompatible C tensors");
  double m = 0.0;
  for (std::size_t h = 0; h < blocks_.size(); ++h) {
    const Matrix& x = blocks_[h];
    const Matrix& y = other.blocks_[h];
    for (std::size_t i = 0; i < x.rows(); ++i)
      for (std::size_t j = 0; j < x.cols(); ++j)
        m = std::max(m, std::fabs(x(i, j) - y(i, j)));
  }
  return m;
}

double PackedC::norm2() const {
  double acc = 0.0;
  for (const auto& blk : blocks_)
    for (std::size_t i = 0; i < blk.size(); ++i)
      acc += blk.data()[i] * blk.data()[i];
  return std::sqrt(acc);
}

}  // namespace fit::tensor
