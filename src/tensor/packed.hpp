// The five tensor shapes of the four-index transform in their compact
// (symmetry-packed) representations — exactly the storage of the
// paper's Table 1:
//
//   A  [ij, kl]       two packed pair groups         ~ n^4/4
//   O1 [a, j, kl]     one packed pair group          ~ n^4/2
//   O2 [ab, kl]       two packed pair groups         ~ n^4/4
//   O3 [ab, c, l]     one packed pair group          ~ n^4/2
//   C  [ab, cd]       two packed groups + spatial    ~ n^4/(4s)
//
// Accessors take *orbital* indices and resolve the packing internally,
// so schedule code reads like the paper's listings.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "tensor/irreps.hpp"
#include "tensor/matrix.hpp"
#include "tensor/pairs.hpp"

namespace fit::tensor {

/// Exact element counts of the five packed tensors for extent n and an
/// irrep assignment (C's spatial reduction is computed exactly from the
/// pair-irrep populations).
struct TensorSizes {
  std::size_t a, o1, o2, o3, c;

  /// Aggregate words needed by the fully unfused schedule: the largest
  /// simultaneously live input+output pair over the four steps
  /// (paper: |O1|+|O2| = 3n^4/4 dominates).
  std::size_t unfused_peak() const;
};

TensorSizes packed_sizes(std::size_t n, const Irreps& irreps);

/// Asymptotic sizes of Table 1 (elements), for the bounds formulas.
struct ApproxSizes {
  double a, o1, o2, o3, c;
};
ApproxSizes approx_sizes(double n, double s);

/// A[ij, kl]: symmetric in (i,j) and in (k,l).
class PackedA {
 public:
  explicit PackedA(std::size_t n)
      : n_(n), data_(npairs(n), npairs(n)) {}

  std::size_t n() const { return n_; }
  std::size_t stored_elements() const { return data_.size(); }

  double operator()(std::size_t i, std::size_t j, std::size_t k,
                    std::size_t l) const {
    return data_(pack_pair_sym(i, j), pack_pair_sym(k, l));
  }
  /// Canonical write: requires i >= j and k >= l.
  void set(std::size_t i, std::size_t j, std::size_t k, std::size_t l,
           double v) {
    data_(pack_pair(i, j), pack_pair(k, l)) = v;
  }

  /// Packed 2-D view: rows = (ij) pairs, cols = (kl) pairs.
  Matrix& packed() { return data_; }
  const Matrix& packed() const { return data_; }

  /// Unpack the full n x n (i, j) slice for fixed (k, l) into `out`
  /// (mirroring the (i, j) symmetry). `out` must be n x n; no
  /// allocation — the caller's buffer is reused across slices, which
  /// keeps the GEMM feed path of the schedules allocation-free.
  void unpack_kl(std::size_t k, std::size_t l, Matrix& out) const;

 private:
  std::size_t n_;
  Matrix data_;
};

/// O1[a, j, kl]: symmetric in (k,l) only.
class TensorO1 {
 public:
  explicit TensorO1(std::size_t n)
      : n_(n), np_(npairs(n)), data_(n * n * np_, 0.0) {}

  std::size_t n() const { return n_; }
  std::size_t stored_elements() const { return data_.size(); }

  double& at(std::size_t a, std::size_t j, std::size_t k, std::size_t l) {
    return data_[(a * n_ + j) * np_ + pack_pair_sym(k, l)];
  }
  double at(std::size_t a, std::size_t j, std::size_t k,
            std::size_t l) const {
    return data_[(a * n_ + j) * np_ + pack_pair_sym(k, l)];
  }

  /// Contiguous row over the packed (kl) axis for fixed (a, j).
  double* kl_row(std::size_t a, std::size_t j) {
    return data_.data() + (a * n_ + j) * np_;
  }
  const double* kl_row(std::size_t a, std::size_t j) const {
    return data_.data() + (a * n_ + j) * np_;
  }

 private:
  std::size_t n_, np_;
  std::vector<double> data_;
};

/// O2[ab, kl]: symmetric in (a,b) and in (k,l).
class PackedO2 {
 public:
  explicit PackedO2(std::size_t n)
      : n_(n), data_(npairs(n), npairs(n)) {}

  std::size_t n() const { return n_; }
  std::size_t stored_elements() const { return data_.size(); }

  double& at(std::size_t a, std::size_t b, std::size_t k, std::size_t l) {
    return data_(pack_pair_sym(a, b), pack_pair_sym(k, l));
  }
  double at(std::size_t a, std::size_t b, std::size_t k,
            std::size_t l) const {
    return data_(pack_pair_sym(a, b), pack_pair_sym(k, l));
  }

  Matrix& packed() { return data_; }
  const Matrix& packed() const { return data_; }

  /// Unpack the full n x n (k, l) slice for fixed (a, b) into `out`
  /// (mirroring the (k, l) symmetry). `out` must be n x n; no
  /// allocation.
  void unpack_ab(std::size_t a, std::size_t b, Matrix& out) const;

 private:
  std::size_t n_;
  Matrix data_;
};

/// O3[ab, c, l]: symmetric in (a,b) only.
class TensorO3 {
 public:
  explicit TensorO3(std::size_t n)
      : n_(n), np_(npairs(n)), data_(np_ * n * n, 0.0) {}

  std::size_t n() const { return n_; }
  std::size_t stored_elements() const { return data_.size(); }

  double& at(std::size_t a, std::size_t b, std::size_t c, std::size_t l) {
    return data_[(pack_pair_sym(a, b) * n_ + c) * n_ + l];
  }
  double at(std::size_t a, std::size_t b, std::size_t c,
            std::size_t l) const {
    return data_[(pack_pair_sym(a, b) * n_ + c) * n_ + l];
  }

 private:
  std::size_t n_, np_;
  std::vector<double> data_;
};

/// C[ab, cd]: symmetric in (a,b) and (c,d), with spatial symmetry.
///
/// Storage is blocked by pair irrep: a nonzero entry requires
/// pair_irrep(a,b) == pair_irrep(c,d), so C decomposes into `order`
/// independent dense blocks, one per irrep h, of extent
/// |pairs with irrep h| squared. Total storage ~ n^4/(4s).
class PackedC {
 public:
  PackedC(std::size_t n, Irreps irreps);

  std::size_t n() const { return n_; }
  const Irreps& irreps() const { return irreps_; }
  std::size_t stored_elements() const;

  /// Zero for spatially forbidden entries.
  double get(std::size_t a, std::size_t b, std::size_t c,
             std::size_t d) const;

  /// Accumulate; requires the entry to be spatially allowed unless the
  /// value is (exactly) zero, in which case the write is dropped.
  void add(std::size_t a, std::size_t b, std::size_t c, std::size_t d,
           double v);

  /// Row index of packed pair p within its irrep block, and its irrep.
  std::uint8_t irrep_of_pair(std::size_t p) const { return pair_irrep_[p]; }
  std::size_t pos_of_pair(std::size_t p) const { return pair_pos_[p]; }
  std::size_t block_extent(std::uint8_t h) const {
    return blocks_[h].rows();
  }

  double max_abs_diff(const PackedC& other) const;
  double norm2() const;

 private:
  std::size_t n_;
  Irreps irreps_;
  std::vector<std::uint8_t> pair_irrep_;  // packed pair -> irrep
  std::vector<std::uint32_t> pair_pos_;   // packed pair -> row in block
  std::vector<Matrix> blocks_;            // one square block per irrep
};

}  // namespace fit::tensor
