#include "tensor/pairs.hpp"

#include <cmath>

namespace fit::tensor {

std::pair<std::size_t, std::size_t> unpack_pair(std::size_t p) {
  // i is the largest integer with i*(i+1)/2 <= p. The float estimate is
  // within one of the answer; fix up exactly.
  auto i = static_cast<std::size_t>(
      (std::sqrt(8.0 * static_cast<double>(p) + 1.0) - 1.0) / 2.0);
  while (i * (i + 1) / 2 > p) --i;
  while ((i + 1) * (i + 2) / 2 <= p) ++i;
  const std::size_t j = p - i * (i + 1) / 2;
  FIT_CHECK(j <= i, "unpack_pair(" << p << ") produced j > i");
  return {i, j};
}

}  // namespace fit::tensor
