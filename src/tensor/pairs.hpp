// Triangular pair packing for permutation-symmetric index groups.
//
// A symmetry group (i,j) with V[..i,j..] == V[..j,i..] is stored packed:
// only the entries with i >= j are kept, addressed by
//   pack(i, j) = i*(i+1)/2 + j,   0 <= j <= i < n
// which enumerates pairs in the order (0,0),(1,0),(1,1),(2,0),...
// This is the compact representation the paper's Table 1 sizes refer to
// (n^4/4 for two packed groups, etc.).
#pragma once

#include <cstddef>
#include <utility>

#include "util/error.hpp"

namespace fit::tensor {

/// Number of packed pairs (i >= j) over a dimension of extent n.
constexpr std::size_t npairs(std::size_t n) { return n * (n + 1) / 2; }

/// Packed index of an ordered pair; requires i >= j.
inline std::size_t pack_pair(std::size_t i, std::size_t j) {
  FIT_REQUIRE(i >= j, "pack_pair requires i >= j, got i=" << i << " j=" << j);
  return i * (i + 1) / 2 + j;
}

/// Packed index of an unordered pair (sorts internally).
inline std::size_t pack_pair_sym(std::size_t i, std::size_t j) {
  return i >= j ? i * (i + 1) / 2 + j : j * (j + 1) / 2 + i;
}

/// Inverse of pack_pair: returns (i, j) with i >= j.
std::pair<std::size_t, std::size_t> unpack_pair(std::size_t p);

}  // namespace fit::tensor
