// Owning dense 4-D tensor (no symmetry). Used by the O(n^8) reference
// oracle and by tests that expand packed tensors to full form.
#pragma once

#include <cstddef>
#include <vector>

#include "util/error.hpp"

namespace fit::tensor {

class Tensor4 {
 public:
  Tensor4() = default;
  Tensor4(std::size_t n0, std::size_t n1, std::size_t n2, std::size_t n3)
      : n_{n0, n1, n2, n3}, data_(n0 * n1 * n2 * n3, 0.0) {}

  /// Cubic convenience: all four extents equal.
  explicit Tensor4(std::size_t n) : Tensor4(n, n, n, n) {}

  std::size_t extent(int dim) const { return n_[dim]; }
  std::size_t size() const { return data_.size(); }

  double& operator()(std::size_t i, std::size_t j, std::size_t k,
                     std::size_t l) {
    return data_[index(i, j, k, l)];
  }
  double operator()(std::size_t i, std::size_t j, std::size_t k,
                    std::size_t l) const {
    return data_[index(i, j, k, l)];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

 private:
  std::size_t index(std::size_t i, std::size_t j, std::size_t k,
                    std::size_t l) const {
    FIT_REQUIRE(i < n_[0] && j < n_[1] && k < n_[2] && l < n_[3],
                "Tensor4(" << i << "," << j << "," << k << "," << l
                           << ") out of range");
    return ((i * n_[1] + j) * n_[2] + k) * n_[3] + l;
  }

  std::size_t n_[4] = {0, 0, 0, 0};
  std::vector<double> data_;
};

}  // namespace fit::tensor
