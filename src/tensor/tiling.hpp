// Tilings of index ranges. NWChem blocks each tensor dimension into
// data-tiles (paper Sec. 2.1); the distributed tensors in fit::ga use
// one Tiling per dimension.
//
// Two kinds are supported:
//  * uniform(extent, width) — equal tiles of `width` (last may be
//    short);
//  * irrep_aligned(irreps, target_width) — tile boundaries respect the
//    contiguous irrep blocks of a spatial-symmetry assignment, so that
//    every tile is irrep-pure and tile-level spatial filtering is
//    exact (otherwise the n^4/(4s) storage reduction of the output
//    tensor is lost to tiles straddling irrep boundaries).
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "tensor/irreps.hpp"
#include "util/error.hpp"

namespace fit::tensor {

class Tiling {
 public:
  Tiling() = default;

  /// Uniform tiling (legacy constructor, kept for the common case).
  Tiling(std::size_t extent, std::size_t width) : n_(extent) {
    FIT_REQUIRE(width > 0, "tile width must be positive");
    FIT_REQUIRE(extent > 0, "tiled extent must be positive");
    bounds_.clear();
    for (std::size_t lo = 0; lo < extent; lo += width)
      bounds_.push_back(lo);
    bounds_.push_back(extent);
  }

  /// Explicit boundaries: starts_[i] is the first index of tile i;
  /// a final entry equal to the extent closes the last tile.
  static Tiling with_boundaries(std::vector<std::size_t> bounds) {
    FIT_REQUIRE(bounds.size() >= 2, "need at least one tile");
    for (std::size_t i = 1; i < bounds.size(); ++i)
      FIT_REQUIRE(bounds[i] > bounds[i - 1],
                  "tile boundaries must be strictly increasing");
    Tiling t;
    t.n_ = bounds.back();
    t.bounds_ = std::move(bounds);
    return t;
  }

  /// Tiles of at most `target_width` whose boundaries never straddle a
  /// contiguous irrep block: each block is split into equal-as-possible
  /// chunks of at most the target width.
  static Tiling irrep_aligned(const Irreps& irreps,
                              std::size_t target_width) {
    FIT_REQUIRE(target_width > 0, "tile width must be positive");
    FIT_REQUIRE(irreps.is_contiguous(),
                "irrep-aligned tiling needs contiguous irrep blocks");
    const std::size_t n = irreps.n_orbitals();
    std::vector<std::size_t> bounds = {0};
    std::size_t block_lo = 0;
    for (std::size_t o = 1; o <= n; ++o) {
      if (o == n || irreps.of(o) != irreps.of(block_lo)) {
        const std::size_t len = o - block_lo;
        const std::size_t chunks = (len + target_width - 1) / target_width;
        for (std::size_t c = 1; c <= chunks; ++c)
          bounds.push_back(block_lo + c * len / chunks);
        block_lo = o;
      }
    }
    return with_boundaries(std::move(bounds));
  }

  std::size_t extent() const { return n_; }
  std::size_t ntiles() const { return bounds_.size() - 1; }

  std::size_t lo(std::size_t t) const { return bounds_[t]; }
  std::size_t hi(std::size_t t) const { return bounds_[t + 1]; }
  std::size_t len(std::size_t t) const { return hi(t) - lo(t); }

  /// Largest tile extent (buffer sizing).
  std::size_t max_width() const {
    std::size_t w = 0;
    for (std::size_t t = 0; t < ntiles(); ++t) w = std::max(w, len(t));
    return w;
  }

  /// Uniform width accessor retained for uniform tilings (returns the
  /// width of the first tile).
  std::size_t width() const { return ntiles() ? len(0) : 1; }

  std::size_t tile_of(std::size_t i) const {
    FIT_REQUIRE(i < n_, "index out of tiled extent");
    // Upper bound over starts: bounds_[t] <= i < bounds_[t+1].
    auto it = std::upper_bound(bounds_.begin(), bounds_.end(), i);
    return static_cast<std::size_t>(it - bounds_.begin()) - 1;
  }

 private:
  std::size_t n_ = 0;
  std::vector<std::size_t> bounds_ = {0, 1};
};

}  // namespace fit::tensor
