#include "trace/kernels.hpp"

#include <algorithm>

#include "tensor/pairs.hpp"
#include "trace/memory_sim.hpp"
#include "util/error.hpp"

namespace fit::trace {

namespace {

// Tensor ids for virtual addresses.
enum : std::uint32_t { TA = 1, TB1, TB2, TB3, TB4, TO1, TO2, TO3, TC };

TraceResult result_of(const MemorySim& sim) {
  return TraceResult{sim.loads(), sim.stores()};
}

}  // namespace

TraceResult trace_matmul_untiled(std::size_t ni, std::size_t nj,
                                 std::size_t nk, std::size_t s) {
  MemorySim sim(s);
  for (std::size_t i = 0; i < ni; ++i)
    for (std::size_t k = 0; k < nk; ++k) {
      // c[i,k] accumulated in a register; read each operand element.
      for (std::size_t j = 0; j < nj; ++j) {
        sim.read(make_addr(TA, i * nj + j));
        sim.read(make_addr(TB1, j * nk + k));
      }
      sim.store_through(make_addr(TC, i * nk + k));
    }
  return result_of(sim);
}

TraceResult trace_matmul_tiled(std::size_t ni, std::size_t nj,
                               std::size_t nk, std::size_t t, std::size_t s) {
  FIT_REQUIRE(t >= 1, "tile size must be positive");
  // The I/O-optimal tiled scheme: keep a t x t block of C resident and
  // stream rank-1 updates through it — A column segments and B row
  // segments are each read once per block and immediately dead. With
  // t ~ sqrt(S) this attains the 2*ni*nj*nk/sqrt(S) leading term the
  // paper quotes for efficient tiled execution.
  MemorySim sim(s);
  for (std::size_t i0 = 0; i0 < ni; i0 += t)
    for (std::size_t k0 = 0; k0 < nk; k0 += t) {
      const std::size_t i1 = std::min(i0 + t, ni);
      const std::size_t k1 = std::min(k0 + t, nk);
      for (std::size_t i = i0; i < i1; ++i)
        for (std::size_t k = k0; k < k1; ++k)
          sim.write(make_addr(TC, i * nk + k), /*fresh=*/true);
      for (std::size_t j = 0; j < nj; ++j) {
        for (std::size_t i = i0; i < i1; ++i) {
          const auto addr = make_addr(TA, i * nj + j);
          sim.read(addr);
          sim.discard(addr);
        }
        for (std::size_t k = k0; k < k1; ++k) {
          const auto addr = make_addr(TB1, j * nk + k);
          sim.read(addr);
          sim.discard(addr);
        }
        for (std::size_t i = i0; i < i1; ++i)
          for (std::size_t k = k0; k < k1; ++k)
            sim.write(make_addr(TC, i * nk + k), /*fresh=*/false);
      }
      for (std::size_t i = i0; i < i1; ++i)
        for (std::size_t k = k0; k < k1; ++k)
          sim.store_through(make_addr(TC, i * nk + k));
    }
  return result_of(sim);
}

TraceResult trace_contraction(std::size_t na, std::size_t ni, std::size_t nm,
                              std::size_t s) {
  MemorySim sim(s);
  // Listing 5: stream the macro index m; for each m, the A column
  // (ni elements) is brought in once and B stays resident.
  for (std::size_t m = 0; m < nm; ++m) {
    for (std::size_t a = 0; a < na; ++a) {
      for (std::size_t i = 0; i < ni; ++i) {
        sim.read(make_addr(TA, i * nm + m));
        sim.read(make_addr(TB1, a * ni + i));
      }
      sim.store_through(make_addr(TC, a * nm + m));
    }
  }
  return result_of(sim);
}

TraceResult trace_fused_pair_dense(std::size_t n, std::size_t s) {
  MemorySim sim(s);
  const std::size_t n2 = n * n, n3 = n2 * n;
  for (std::size_t l = 0; l < n; ++l)
    for (std::size_t k = 0; k < n; ++k) {
      // I1_buf[a, j] lives in fast memory for this (k, l); model it as
      // fresh writes to a reused address range.
      for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t i = 0; i < n; ++i) {
          // Each A element has a single use; release its slot at once
          // (pebble-game Delete) so the stream cannot evict B2.
          const auto addr = make_addr(TA, ((i * n + j) * n + k) * n + l);
          sim.read(addr);
          sim.discard(addr);
        }
        for (std::size_t a = 0; a < n; ++a) {
          for (std::size_t i = 0; i < n; ++i)
            sim.read(make_addr(TB1, a * n + i));
          sim.write(make_addr(TO1, a * n + j), /*fresh=*/true);
        }
      }
      for (std::size_t b = 0; b < n; ++b)
        for (std::size_t a = 0; a < n; ++a) {
          for (std::size_t j = 0; j < n; ++j) {
            sim.read(make_addr(TO1, a * n + j));
            sim.read(make_addr(TB2, b * n + j));
          }
          sim.store_through(make_addr(TC, (a * n + b) * n2 + k * n + l));
        }
      // The I1 buffer is dead after this (k, l) iteration.
      for (std::size_t x = 0; x < n2; ++x) sim.discard(make_addr(TO1, x));
      (void)n3;
    }
  sim.flush();
  return result_of(sim);
}

TraceResult trace_unfused_schedule(std::size_t n, std::size_t s) {
  using tensor::npairs;
  using tensor::pack_pair_sym;
  const std::size_t np = npairs(n);
  MemorySim sim(s);

  // Contraction 1: O1[a, j, (kl)] = sum_i A[(ij), (kl)] B1[a, i].
  // Stream over the packed (kl) index with the whole A column resident
  // so each packed A element (used by two j iterations) loads once.
  for (std::size_t pkl = 0; pkl < np; ++pkl)
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t a = 0; a < n; ++a) {
        for (std::size_t i = 0; i < n; ++i) {
          sim.read(make_addr(TA, pack_pair_sym(i, j) * np + pkl));
          sim.read(make_addr(TB1, a * n + i));
        }
        sim.store_through(make_addr(TO1, (a * n + j) * np + pkl));
      }

  // Contraction 2: O2[(ab), (kl)] = sum_j O1[a, j, (kl)] B2[b, j].
  for (std::size_t a = 0; a < n; ++a)
    for (std::size_t pkl = 0; pkl < np; ++pkl)
      for (std::size_t b = 0; b <= a; ++b) {
        for (std::size_t j = 0; j < n; ++j) {
          sim.read(make_addr(TO1, (a * n + j) * np + pkl));
          sim.read(make_addr(TB2, b * n + j));
        }
        sim.store_through(make_addr(TO2, pack_pair_sym(a, b) * np + pkl));
      }

  // Contraction 3: O3[(ab), c, l] = sum_k O2[(ab), (kl)] B3[c, k].
  for (std::size_t pab = 0; pab < np; ++pab)
    for (std::size_t l = 0; l < n; ++l)
      for (std::size_t c = 0; c < n; ++c) {
        for (std::size_t k = 0; k < n; ++k) {
          sim.read(make_addr(TO2, pab * np + pack_pair_sym(k, l)));
          sim.read(make_addr(TB3, c * n + k));
        }
        sim.store_through(make_addr(TO3, (pab * n + c) * n + l));
      }

  // Contraction 4: C[(ab), (cd)] = sum_l O3[(ab), c, l] B4[d, l].
  for (std::size_t pab = 0; pab < np; ++pab)
    for (std::size_t c = 0; c < n; ++c)
      for (std::size_t d = 0; d <= c; ++d) {
        for (std::size_t l = 0; l < n; ++l) {
          sim.read(make_addr(TO3, (pab * n + c) * n + l));
          sim.read(make_addr(TB4, d * n + l));
        }
        sim.store_through(make_addr(TC, pab * np + pack_pair_sym(c, d)));
      }
  return result_of(sim);
}

TraceResult trace_fused12_34_schedule(std::size_t n, std::size_t s) {
  using tensor::npairs;
  using tensor::pack_pair_sym;
  const std::size_t np = npairs(n);
  MemorySim sim(s);

  // Phase 1: for each (k >= l), read the A column, produce the O1
  // buffer in fast memory, write the O2 column.
  for (std::size_t k = 0; k < n; ++k)
    for (std::size_t l = 0; l <= k; ++l) {
      const std::size_t pkl = pack_pair_sym(k, l);
      for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t i = 0; i <= j; ++i)
          sim.read(make_addr(TA, pack_pair_sym(i, j) * np + pkl));
        for (std::size_t a = 0; a < n; ++a) {
          for (std::size_t i = 0; i < n; ++i)
            sim.read(make_addr(TB1, a * n + i));
          sim.write(make_addr(TO1, a * n + j), /*fresh=*/true);
        }
      }
      for (std::size_t a = 0; a < n; ++a)
        for (std::size_t b = 0; b <= a; ++b) {
          for (std::size_t j = 0; j < n; ++j) {
            sim.read(make_addr(TO1, a * n + j));
            sim.read(make_addr(TB2, b * n + j));
          }
          sim.store_through(make_addr(TO2, pack_pair_sym(a, b) * np + pkl));
        }
      for (std::size_t x = 0; x < n * n; ++x) sim.discard(make_addr(TO1, x));
    }

  // Phase 2: for each (a >= b), read the O2 row, produce the O3
  // buffer, write the C row.
  for (std::size_t pab = 0; pab < np; ++pab) {
    for (std::size_t c = 0; c < n; ++c)
      for (std::size_t l = 0; l < n; ++l) {
        for (std::size_t k = 0; k < n; ++k) {
          sim.read(make_addr(TO2, pab * np + pack_pair_sym(k, l)));
          sim.read(make_addr(TB3, c * n + k));
        }
        sim.write(make_addr(TO3, c * n + l), /*fresh=*/true);
      }
    for (std::size_t c = 0; c < n; ++c)
      for (std::size_t d = 0; d <= c; ++d) {
        for (std::size_t l = 0; l < n; ++l) {
          sim.read(make_addr(TO3, c * n + l));
          sim.read(make_addr(TB4, d * n + l));
        }
        sim.store_through(make_addr(TC, pab * np + pack_pair_sym(c, d)));
      }
    for (std::size_t x = 0; x < n * n; ++x) sim.discard(make_addr(TO3, x));
  }
  return result_of(sim);
}

TraceResult trace_fused1234_schedule(std::size_t n, std::size_t s,
                                     bool on_the_fly_a) {
  using tensor::npairs;
  using tensor::pack_pair;
  using tensor::pack_pair_sym;
  const std::size_t np = npairs(n);
  MemorySim sim(s);

  for (std::size_t l = 0; l < n; ++l) {
    // A slice for this l: (ij) packed x all k — the broken (k,l)
    // symmetry of Listing 7. Produced on the fly (fresh) or loaded.
    for (std::size_t pij = 0; pij < np; ++pij)
      for (std::size_t k = 0; k < n; ++k) {
        const std::uint64_t addr = make_addr(TA, (pij * n + k) * n + l);
        if (on_the_fly_a)
          sim.write(addr, /*fresh=*/true);
        else
          sim.read(addr);
      }

    // c1: O1_l[a, j, k]
    for (std::size_t k = 0; k < n; ++k)
      for (std::size_t j = 0; j < n; ++j)
        for (std::size_t a = 0; a < n; ++a) {
          for (std::size_t i = 0; i < n; ++i) {
            sim.read(make_addr(TA, (pack_pair_sym(i, j) * n + k) * n + l));
            sim.read(make_addr(TB1, a * n + i));
          }
          sim.write(make_addr(TO1, (k * n + a) * n + j), /*fresh=*/true);
        }
    for (std::size_t pij = 0; pij < np; ++pij)
      for (std::size_t k = 0; k < n; ++k)
        sim.discard(make_addr(TA, (pij * n + k) * n + l));

    // c2: O2_l[(ab), k]
    for (std::size_t k = 0; k < n; ++k)
      for (std::size_t a = 0; a < n; ++a)
        for (std::size_t b = 0; b <= a; ++b) {
          for (std::size_t j = 0; j < n; ++j) {
            sim.read(make_addr(TO1, (k * n + a) * n + j));
            sim.read(make_addr(TB2, b * n + j));
          }
          sim.write(make_addr(TO2, pack_pair(a, b) * n + k), /*fresh=*/true);
        }
    for (std::size_t x = 0; x < n * n * n; ++x)
      sim.discard(make_addr(TO1, x));

    // c3: O3_l[(ab), c]
    for (std::size_t pab = 0; pab < np; ++pab)
      for (std::size_t c = 0; c < n; ++c) {
        for (std::size_t k = 0; k < n; ++k) {
          sim.read(make_addr(TO2, pab * n + k));
          sim.read(make_addr(TB3, c * n + k));
        }
        sim.write(make_addr(TO3, pab * n + c), /*fresh=*/true);
      }
    for (std::size_t x = 0; x < np * n; ++x) sim.discard(make_addr(TO2, x));

    // c4: C[(ab), (cd)] += O3_l[(ab), c] B4[d, l] — read-modify-write
    // of the resident output.
    for (std::size_t pab = 0; pab < np; ++pab)
      for (std::size_t c = 0; c < n; ++c)
        for (std::size_t d = 0; d <= c; ++d) {
          sim.read(make_addr(TO3, pab * n + c));
          sim.read(make_addr(TB4, d * n + l));
          sim.write(make_addr(TC, pab * np + pack_pair_sym(c, d)),
                    /*fresh=*/(l == 0));
        }
    for (std::size_t x = 0; x < np * n; ++x) sim.discard(make_addr(TO3, x));
  }
  sim.flush();
  return result_of(sim);
}

}  // namespace fit::trace
