// Address-trace instrumented kernels: each function replays the memory
// access pattern of one of the paper's schedules against the LRU
// MemorySim (no arithmetic is performed) and reports the measured
// loads/stores. Benchmarks compare these measurements against the
// analytic lower bounds — the tight bounds of Listings 5/6/7 are met
// to within lower-order terms.
#pragma once

#include <cstddef>
#include <cstdint>

namespace fit::trace {

struct TraceResult {
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t io() const { return loads + stores; }
};

// ---- Section 2.3 / Figure 1: matrix multiplication ------------------

/// Untiled i-j-k triple loop for C[ni x nk] = A[ni x nj] * B[nj x nk].
TraceResult trace_matmul_untiled(std::size_t ni, std::size_t nj,
                                 std::size_t nk, std::size_t s);

/// Tiled version with cubic tile size t.
TraceResult trace_matmul_tiled(std::size_t ni, std::size_t nj,
                               std::size_t nk, std::size_t t, std::size_t s);

// ---- Listing 5: one tensor contraction as a macro matmul ------------

/// C[a, m] = sum_i A[i, m] * B[a, i], scheduled as in Listing 5
/// (stream over the macro index m, B resident). Attains I/O
/// = ni*nm + na*ni + na*nm when s >= na*ni + ni + 1.
TraceResult trace_contraction(std::size_t na, std::size_t ni, std::size_t nm,
                              std::size_t s);

// ---- Listing 6: fused pair of contractions (dense, Sec. 5.2) --------

/// O1[a,j,k,l] = A[i,j,k,l]·B1[a,i]; C[a,b,k,l] = O1[a,j,k,l]·B2[b,j],
/// fused over (k,l) with an n^2 I1 buffer. Dense tensors of extent n.
/// Attains I/O = |A| + |C| + |B1| + |B2| = 2n^4 + 2n^2 when
/// s >= 3n^2 + n + 1.
TraceResult trace_fused_pair_dense(std::size_t n, std::size_t s);

// ---- Packed whole-transform schedules (Sec. 5.3 / Sec. 6) -----------

/// Fully unfused chain over packed tensors; expected I/O ~ io_opt
/// (op1/2/3/4) = |A|+2|O1|+2|O2|+2|O3|+|C| plus B traffic.
TraceResult trace_unfused_schedule(std::size_t n, std::size_t s);

/// op12/34 over packed tensors; expected I/O ~ |A|+2|O2|+|C| + B.
TraceResult trace_fused12_34_schedule(std::size_t n, std::size_t s);

/// op1234 (Listing 7) over packed tensors. When `on_the_fly_a` the A
/// slices are produced in fast memory (no A loads), matching Sec. 7.1:
/// I/O collapses to |C| + B. Otherwise A is loaded with its (k,l)
/// symmetry broken (n^4/2 element volume). Requires s >= |C| + ~2n^3
/// to attain the bound; below |C| the measured I/O blows up, which is
/// exactly the Theorem 6.2 necessary condition made visible.
TraceResult trace_fused1234_schedule(std::size_t n, std::size_t s,
                                     bool on_the_fly_a);

}  // namespace fit::trace
