#include "trace/memory_sim.hpp"

namespace fit::trace {

MemorySim::MemorySim(std::size_t capacity) : capacity_(capacity) {
  FIT_REQUIRE(capacity >= 1, "fast memory needs at least one slot");
}

void MemorySim::touch(std::unordered_map<std::uint64_t, Entry>::iterator it) {
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
}

void MemorySim::ensure_room() {
  while (entries_.size() >= capacity_) {
    const std::uint64_t victim = lru_.back();
    lru_.pop_back();
    auto it = entries_.find(victim);
    FIT_CHECK(it != entries_.end(), "LRU list out of sync");
    if (it->second.dirty) ++stores_;
    entries_.erase(it);
  }
}

void MemorySim::read(std::uint64_t addr) {
  auto it = entries_.find(addr);
  if (it != entries_.end()) {
    touch(it);
    return;
  }
  ensure_room();
  ++loads_;
  lru_.push_front(addr);
  entries_.emplace(addr, Entry{lru_.begin(), false});
}

void MemorySim::write(std::uint64_t addr, bool fresh) {
  auto it = entries_.find(addr);
  if (it != entries_.end()) {
    it->second.dirty = true;
    touch(it);
    return;
  }
  ensure_room();
  if (!fresh) ++loads_;  // read-modify-write of a slow-memory resident
  lru_.push_front(addr);
  entries_.emplace(addr, Entry{lru_.begin(), true});
}

void MemorySim::store_through(std::uint64_t addr) {
  ++stores_;
  discard(addr);
}

void MemorySim::discard(std::uint64_t addr) {
  auto it = entries_.find(addr);
  if (it == entries_.end()) return;
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
}

void MemorySim::flush() {
  for (auto& [addr, e] : entries_) {
    if (e.dirty) {
      ++stores_;
      e.dirty = false;
    }
  }
}

void MemorySim::publish(obs::MetricsRegistry& registry, std::size_t rank,
                        const std::string& prefix) const {
  registry.add(registry.counter(prefix + ".loads"), rank,
               static_cast<double>(loads_));
  registry.add(registry.counter(prefix + ".stores"), rank,
               static_cast<double>(stores_));
  registry.add(registry.counter(prefix + ".capacity"), rank,
               static_cast<double>(capacity_));
}

}  // namespace fit::trace
