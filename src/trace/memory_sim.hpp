// Two-level memory-hierarchy simulator in the spirit of the red–blue
// pebble game: a fully associative fast memory of capacity S elements
// with LRU replacement, backed by unbounded slow memory. Every element
// touched by a kernel is identified by a 64-bit virtual address
// (tensor id + offset). The simulator counts
//
//   loads  — elements moved slow -> fast (misses, plus explicit loads)
//   stores — dirty elements moved fast -> slow (evictions + final
//            write-back of live outputs)
//
// which is exactly the I/O measure of Hong & Kung that the paper's
// lower bounds constrain. Schedules instrumented against this
// simulator (trace/kernels.hpp) empirically meet the tight bounds of
// Listings 5, 6 and 7.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace fit::trace {

/// Compose a virtual element address from a tensor id and an offset.
constexpr std::uint64_t make_addr(std::uint32_t tensor_id,
                                  std::uint64_t offset) {
  return (static_cast<std::uint64_t>(tensor_id) << 40) | offset;
}

class MemorySim {
 public:
  explicit MemorySim(std::size_t capacity);

  /// Read one element: a miss loads it from slow memory (possibly
  /// evicting LRU); a hit is free.
  void read(std::uint64_t addr);

  /// Write one element. `fresh` marks a value created in fast memory
  /// (a computed result): it occupies a slot but costs no load.
  /// A non-fresh write to an absent element first loads it
  /// (read-modify-write, e.g. "+=" on a slow-memory resident).
  void write(std::uint64_t addr, bool fresh = false);

  /// Store a just-computed element straight to slow memory without
  /// retaining it in fast memory (the pebble-game Store immediately
  /// followed by Delete — the GA_Put pattern of the paper's listings).
  /// Counts one store; frees the slot if the element was resident.
  void store_through(std::uint64_t addr);

  /// Discard an element without write-back (its value is dead) — the
  /// pebble-game Delete move. No-op if absent.
  void discard(std::uint64_t addr);

  /// Write back every dirty resident element (end of computation: all
  /// outputs must reach slow memory).
  void flush();

  std::size_t capacity() const { return capacity_; }
  std::size_t resident() const { return entries_.size(); }
  std::uint64_t loads() const { return loads_; }
  std::uint64_t stores() const { return stores_; }
  std::uint64_t io() const { return loads_ + stores_; }

  /// Register this simulator's counters into a metrics registry under
  /// "<prefix>.loads" / ".stores" / ".capacity" on `rank`'s slot
  /// (counter adds, so repeated publishes of successive simulations
  /// accumulate like any other charge).
  void publish(obs::MetricsRegistry& registry, std::size_t rank,
               const std::string& prefix) const;

 private:
  struct Entry {
    std::list<std::uint64_t>::iterator lru_it;
    bool dirty;
  };

  void ensure_room();
  void touch(std::unordered_map<std::uint64_t, Entry>::iterator it);

  std::size_t capacity_;
  std::uint64_t loads_ = 0;
  std::uint64_t stores_ = 0;
  std::list<std::uint64_t> lru_;  // front = most recent
  std::unordered_map<std::uint64_t, Entry> entries_;
};

}  // namespace fit::trace
