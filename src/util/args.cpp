#include "util/args.hpp"

#include <limits>

#include "util/error.hpp"
#include "util/parse.hpp"

namespace {

long require_long(const std::string& what, const std::string& v) {
  const auto parsed = fit::util::parse_int(v);
  if (!parsed || *parsed < std::numeric_limits<long>::min() ||
      *parsed > std::numeric_limits<long>::max())
    throw fit::ParseError(what + ": '" + v + "' is not a valid integer");
  return static_cast<long>(*parsed);
}

}  // namespace

namespace fit {

Args::Args(int argc, char** argv) {
  FIT_REQUIRE(argc >= 1, "argc must include the program name");
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      options_.emplace_back(arg.substr(0, eq), arg.substr(eq + 1));
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      options_.emplace_back(arg, argv[++i]);
    } else {
      options_.emplace_back(arg, "");  // bare flag
    }
  }
}

bool Args::has(const std::string& key) const {
  for (const auto& [k, v] : options_)
    if (k == key) return true;
  return false;
}

std::string Args::get(const std::string& key,
                      const std::string& fallback) const {
  for (const auto& [k, v] : options_)
    if (k == key) return v;
  return fallback;
}

long Args::get_int(const std::string& key, long fallback) const {
  const std::string v = get(key);
  return v.empty() ? fallback : require_long("--" + key, v);
}

double Args::get_double(const std::string& key, double fallback) const {
  const std::string v = get(key);
  if (v.empty()) return fallback;
  const auto parsed = util::parse_double(v);
  if (!parsed)
    throw ParseError("--" + key + ": '" + v + "' is not a valid number");
  return *parsed;
}

long Args::positional_int(std::size_t index, long fallback) const {
  if (index >= positional_.size()) return fallback;
  return require_long("positional argument " + std::to_string(index),
                      positional_[index]);
}

}  // namespace fit
