#include "util/args.hpp"

#include <cstdlib>

#include "util/error.hpp"

namespace fit {

Args::Args(int argc, char** argv) {
  FIT_REQUIRE(argc >= 1, "argc must include the program name");
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      options_.emplace_back(arg.substr(0, eq), arg.substr(eq + 1));
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      options_.emplace_back(arg, argv[++i]);
    } else {
      options_.emplace_back(arg, "");  // bare flag
    }
  }
}

bool Args::has(const std::string& key) const {
  for (const auto& [k, v] : options_)
    if (k == key) return true;
  return false;
}

std::string Args::get(const std::string& key,
                      const std::string& fallback) const {
  for (const auto& [k, v] : options_)
    if (k == key) return v;
  return fallback;
}

long Args::get_int(const std::string& key, long fallback) const {
  const std::string v = get(key);
  return v.empty() ? fallback : std::strtol(v.c_str(), nullptr, 10);
}

double Args::get_double(const std::string& key, double fallback) const {
  const std::string v = get(key);
  return v.empty() ? fallback : std::strtod(v.c_str(), nullptr);
}

long Args::positional_int(std::size_t index, long fallback) const {
  if (index >= positional_.size()) return fallback;
  return std::strtol(positional_[index].c_str(), nullptr, 10);
}

}  // namespace fit
