// Tiny command-line argument parser for the examples and benches.
//
// Supports --key=value, --key value, and bare --flag forms, with typed
// getters and defaults. Unrecognized arguments are collected as
// positional. Typed getters parse strictly: a present-but-malformed
// value ("--tile=8abc", overflow) throws fit::ParseError instead of
// silently truncating to a numeric prefix or zero.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace fit {

class Args {
 public:
  Args(int argc, char** argv);

  bool has(const std::string& key) const;
  std::string get(const std::string& key,
                  const std::string& fallback = "") const;
  long get_int(const std::string& key, long fallback) const;
  double get_double(const std::string& key, double fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Positional argument by index with a typed default.
  long positional_int(std::size_t index, long fallback) const;

  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::vector<std::pair<std::string, std::string>> options_;
  std::vector<std::string> positional_;
};

}  // namespace fit
