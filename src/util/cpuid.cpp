#include "util/cpuid.hpp"

#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define FIT_CPUID_X86 1
#include <cpuid.h>
#endif

namespace fit::util {

namespace {

#ifdef FIT_CPUID_X86

// XCR0 via xgetbv: bits 1 (xmm) and 2 (ymm) must both be set before
// any AVX instruction is legal. <immintrin.h>'s _xgetbv needs -mxsave,
// so issue the instruction directly (encoded form works at any -m).
unsigned long long xcr0() {
  unsigned int eax = 0, edx = 0;
  __asm__ volatile(".byte 0x0f, 0x01, 0xd0"  // xgetbv
                   : "=a"(eax), "=d"(edx)
                   : "c"(0));
  return (static_cast<unsigned long long>(edx) << 32) | eax;
}

CpuFeatures probe() {
  CpuFeatures f;
  unsigned int eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return f;
  f.sse2 = (edx & bit_SSE2) != 0;
  const bool osxsave = (ecx & bit_OSXSAVE) != 0;
  const bool ymm_os = osxsave && (xcr0() & 0x6) == 0x6;
  f.avx = ymm_os && (ecx & bit_AVX) != 0;
  f.fma = ymm_os && (ecx & bit_FMA) != 0;
  if (f.avx && __get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx))
    f.avx2 = (ebx & bit_AVX2) != 0;
  return f;
}

#else

CpuFeatures probe() { return CpuFeatures{}; }

#endif

}  // namespace

const CpuFeatures& cpu_features() {
  static const CpuFeatures f = probe();
  return f;
}

}  // namespace fit::util
