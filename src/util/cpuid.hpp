// Host CPU feature probe (x86 cpuid + xgetbv). The kernel-dispatch
// layer (fit::blas::detected_isa) folds these raw feature bits into an
// ISA level; everything else should go through that. On non-x86 hosts
// every flag is false and the dispatcher falls back to the portable
// kernels.
//
// AVX-family bits are reported only when the OS has enabled the
// corresponding register state (OSXSAVE set and XCR0 advertising
// ymm save/restore): a CPU that has AVX but an OS that does not
// context-switch ymm must not be dispatched to the AVX kernels.
#pragma once

namespace fit::util {

/// Raw host CPU capabilities relevant to the kernel library.
struct CpuFeatures {
  bool sse2 = false;  ///< SSE2 (baseline on x86-64)
  bool avx = false;   ///< AVX, including OS ymm-state support
  bool avx2 = false;  ///< AVX2 (implies the AVX OS check passed)
  bool fma = false;   ///< FMA3
};

/// Probe the host once (cached after the first call; thread-safe).
const CpuFeatures& cpu_features();

}  // namespace fit::util
