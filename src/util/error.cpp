#include "util/error.hpp"

namespace fit::detail {

[[noreturn]] void throw_precondition(const char* cond, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream oss;
  oss << "precondition failed: " << cond << " at " << file << ":" << line;
  if (!msg.empty()) oss << " — " << msg;
  throw PreconditionError(oss.str());
}

[[noreturn]] void throw_internal(const char* cond, const char* file, int line,
                                 const std::string& msg) {
  std::ostringstream oss;
  oss << "internal invariant failed: " << cond << " at " << file << ":"
      << line;
  if (!msg.empty()) oss << " — " << msg;
  throw InternalError(oss.str());
}

}  // namespace fit::detail
