// Error handling primitives for the fourindex library.
//
// All recoverable failures are reported as exceptions derived from
// fit::Error. Precondition violations use FIT_REQUIRE (always on) and
// internal invariants use FIT_CHECK (always on as well: this library is
// correctness-first; the cost of the checks is negligible next to the
// O(n^5) arithmetic they guard).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace fit {

/// Base class for all errors thrown by the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A precondition on a public API was violated by the caller.
class PreconditionError : public Error {
 public:
  explicit PreconditionError(const std::string& what) : Error(what) {}
};

/// An internal invariant failed (library bug).
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

/// A simulated node ran out of local memory (see fit::runtime).
class OutOfMemoryError : public Error {
 public:
  explicit OutOfMemoryError(const std::string& what) : Error(what) {}
};

/// A fault (injected or detected) that recovery could not absorb: every
/// rank died, a rank died with recovery disabled, or a phase exhausted
/// its retry budget (see fit::runtime::FaultInjector).
class FaultError : public Error {
 public:
  explicit FaultError(const std::string& what) : Error(what) {}
};

/// A bounded wait expired — e.g. a phase's cumulative retry/backoff
/// time exceeded the configured simulated-time watchdog.
class TimeoutError : public Error {
 public:
  explicit TimeoutError(const std::string& what) : Error(what) {}
};

/// Checkpoint/restart could not produce a usable state: no parallel
/// file system configured, or a restore had no checkpoint to read.
class CheckpointError : public Error {
 public:
  explicit CheckpointError(const std::string& what) : Error(what) {}
};

/// Malformed numeric input where a number was required — a CLI option
/// with trailing garbage, non-numeric text, or an out-of-range value
/// (see fit::Args and util/parse.hpp).
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void throw_precondition(const char* cond, const char* file,
                                     int line, const std::string& msg);
[[noreturn]] void throw_internal(const char* cond, const char* file, int line,
                                 const std::string& msg);
}  // namespace detail

}  // namespace fit

#define FIT_REQUIRE(cond, msg)                                          \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::std::ostringstream fit_oss_;                                    \
      fit_oss_ << msg;                                                  \
      ::fit::detail::throw_precondition(#cond, __FILE__, __LINE__,      \
                                        fit_oss_.str());                \
    }                                                                   \
  } while (0)

#define FIT_CHECK(cond, msg)                                            \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::std::ostringstream fit_oss_;                                    \
      fit_oss_ << msg;                                                  \
      ::fit::detail::throw_internal(#cond, __FILE__, __LINE__,          \
                                    fit_oss_.str());                    \
    }                                                                   \
  } while (0)
