#include "util/format.hpp"

#include <cmath>
#include <cstdio>
#include <iostream>
#include <sstream>

#include "util/error.hpp"

namespace fit {

std::string human_bytes(double bytes) {
  static const char* units[] = {"B", "KB", "MB", "GB", "TB", "PB"};
  int u = 0;
  double v = bytes;
  while (std::fabs(v) >= 1024.0 && u < 5) {
    v /= 1024.0;
    ++u;
  }
  char buf[64];
  if (u == 0) {
    std::snprintf(buf, sizeof(buf), "%.0f %s", v, units[u]);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", v, units[u]);
  }
  return buf;
}

std::string human_count(double count) {
  static const char* units[] = {"", "K", "M", "G", "T", "P"};
  int u = 0;
  double v = count;
  while (std::fabs(v) >= 1000.0 && u < 5) {
    v /= 1000.0;
    ++u;
  }
  char buf[64];
  if (u == 0) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f%s", v, units[u]);
  }
  return buf;
}

std::string fmt_fixed(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string fmt_sci(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", digits, value);
  return buf;
}

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  FIT_REQUIRE(!header_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> row) {
  FIT_REQUIRE(row.size() == header_.size(),
              "row has " << row.size() << " cells, header has "
                         << header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::str(const std::string& title) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream out;
  if (!title.empty()) out << "== " << title << " ==\n";
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << cells[c];
      if (c + 1 < cells.size())
        out << std::string(width[c] - cells[c].size() + 2, ' ');
    }
    out << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c)
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void TextTable::print(const std::string& title) const {
  std::cout << str(title) << std::flush;
}

}  // namespace fit
