// Human-readable formatting of byte counts, element counts, and simple
// fixed-width ASCII tables (the benchmark harness prints paper-style
// tables with these).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace fit {

/// "1.50 GB", "312 MB", "17 B" — powers of 1024.
std::string human_bytes(double bytes);

/// "1.2e9", "4.50M", "123" — powers of 1000 with suffixes K/M/G/T.
std::string human_count(double count);

/// Fixed-precision double, e.g. fmt_fixed(3.14159, 2) == "3.14".
std::string fmt_fixed(double value, int digits);

/// Scientific, e.g. fmt_sci(12345.0, 3) == "1.235e+04".
std::string fmt_sci(double value, int digits);

/// Minimal fixed-width table printer: collects rows of strings, prints
/// with columns padded to the widest cell, a header underline, and an
/// optional title. Keeps bench output uniform across all binaries.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Render the table to a string (trailing newline included).
  std::string str(const std::string& title = "") const;

  /// Render and write to stdout.
  void print(const std::string& title = "") const;

  /// Structured access for machine-readable export (fit::obs routes
  /// every bench table through these).
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const {
    return rows_;
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fit
