// Stable (platform-independent) FNV-1a hashing.
//
// Used wherever a hash value becomes part of simulated or persisted
// state: the task-counter home placement (ga/task_counter.cpp), the
// per-tile checkpoint checksums (runtime/checkpoint.cpp), and the
// result_checksum scalars the benches emit. std::hash is unspecified
// and differs between standard libraries, which would make simulated
// timings and checksum gates non-portable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace fit::util {

inline constexpr std::uint64_t kFnvOffsetBasis = 1469598103934665603ull;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/// Fold `len` raw bytes into a running FNV-1a state. Start from
/// kFnvOffsetBasis (or a previous return value to chain buffers).
inline std::uint64_t fnv1a_bytes(const void* data, std::size_t len,
                                 std::uint64_t h = kFnvOffsetBasis) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

/// FNV-1a of a string (task-counter homing, label hashing).
inline std::uint64_t fnv1a(std::string_view s,
                           std::uint64_t h = kFnvOffsetBasis) {
  return fnv1a_bytes(s.data(), s.size(), h);
}

/// Mix one little-endian-serialized 64-bit word into the state —
/// used to fold metadata (epochs, indices) into a data checksum
/// without materializing a buffer.
inline std::uint64_t fnv1a_u64(std::uint64_t v,
                               std::uint64_t h = kFnvOffsetBasis) {
  for (int i = 0; i < 8; ++i) {
    h ^= static_cast<unsigned char>(v >> (8 * i));
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace fit::util
