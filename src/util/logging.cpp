#include "util/logging.hpp"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>

namespace fit {

namespace {

std::atomic<int>& level_storage() {
  static std::atomic<int> level = [] {
    LogLevel init = LogLevel::Warn;
    if (const char* env = std::getenv("FIT_LOG_LEVEL"))
      init = parse_log_level(env, init);
    return static_cast<int>(init);
  }();
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel log_level() {
  return static_cast<LogLevel>(level_storage().load());
}

void set_log_level(LogLevel level) {
  level_storage().store(static_cast<int>(level));
}

LogLevel parse_log_level(const std::string& name, LogLevel fallback) {
  if (name == "debug") return LogLevel::Debug;
  if (name == "info") return LogLevel::Info;
  if (name == "warn") return LogLevel::Warn;
  if (name == "error") return LogLevel::Error;
  if (name == "off") return LogLevel::Off;
  return fallback;
}

namespace detail {

void log_emit(LogLevel level, const std::string& message) {
  // Serialize whole lines; the threaded executor logs concurrently.
  static std::mutex mutex;
  std::lock_guard<std::mutex> lock(mutex);
  std::cerr << "[fit:" << level_name(level) << "] " << message << "\n";
}

}  // namespace detail

}  // namespace fit
