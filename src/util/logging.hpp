// Minimal leveled logger.
//
// Quiet by default (Warn); the FIT_LOG_LEVEL environment variable or
// set_log_level() raises verbosity. The runtime logs phase summaries
// at Debug, which makes schedule executions traceable without touching
// the code.
#pragma once

#include <sstream>
#include <string>

namespace fit {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Current threshold; messages below it are discarded.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Parse "debug" / "info" / "warn" / "error" / "off" (case-sensitive,
/// unknown strings keep the default).
LogLevel parse_log_level(const std::string& name, LogLevel fallback);

namespace detail {
void log_emit(LogLevel level, const std::string& message);
}

}  // namespace fit

#define FIT_LOG(level, msg)                                        \
  do {                                                             \
    if (static_cast<int>(level) >=                                 \
        static_cast<int>(::fit::log_level())) {                    \
      ::std::ostringstream fit_log_oss_;                           \
      fit_log_oss_ << msg;                                         \
      ::fit::detail::log_emit(level, fit_log_oss_.str());          \
    }                                                              \
  } while (0)

#define FIT_LOG_DEBUG(msg) FIT_LOG(::fit::LogLevel::Debug, msg)
#define FIT_LOG_INFO(msg) FIT_LOG(::fit::LogLevel::Info, msg)
#define FIT_LOG_WARN(msg) FIT_LOG(::fit::LogLevel::Warn, msg)
#define FIT_LOG_ERROR(msg) FIT_LOG(::fit::LogLevel::Error, msg)
