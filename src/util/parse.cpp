#include "util/parse.hpp"

#include <cerrno>
#include <charconv>
#include <cstdlib>
#include <string>

#include "util/error.hpp"
#include "util/logging.hpp"

namespace fit::util {

std::optional<long long> parse_int(std::string_view s) {
  if (!s.empty() && s.front() == '+') s.remove_prefix(1);  // from_chars has no '+'
  if (s.empty()) return std::nullopt;
  long long v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

std::optional<double> parse_double(std::string_view s) {
  if (s.empty()) return std::nullopt;
  // strtod accepts leading whitespace and inf/nan spellings; require a
  // numeric first character so only plain decimal/scientific forms pass.
  const char c = s.front();
  if (!(c == '+' || c == '-' || c == '.' || (c >= '0' && c <= '9')))
    return std::nullopt;
  const std::string owned(s);  // strtod needs a terminator
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(owned.c_str(), &end);
  if (end != owned.c_str() + owned.size() || errno == ERANGE)
    return std::nullopt;
  return v;
}

std::size_t env_size(const char* name, std::size_t fallback,
                     std::size_t min) {
  const char* env = std::getenv(name);
  if (!env) return fallback;
  const auto v = parse_int(env);
  if (!v || *v < static_cast<long long>(min)) {
    FIT_LOG_WARN(name << "='" << env << "' is not an integer >= " << min
                      << "; using " << fallback);
    return fallback;
  }
  return static_cast<std::size_t>(*v);
}

std::size_t env_size_strict(const char* name, std::size_t fallback,
                            std::size_t min) {
  const char* env = std::getenv(name);
  if (!env) return fallback;
  const auto v = parse_int(env);
  if (!v || *v < static_cast<long long>(min))
    throw ParseError(std::string(name) + "='" + env +
                     "' is not an integer >= " + std::to_string(min));
  return static_cast<std::size_t>(*v);
}

}  // namespace fit::util
