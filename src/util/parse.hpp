// Strict numeric parsing shared by the environment-variable and CLI
// layers.
//
// Before this helper existed, four call sites (the thread pool, the
// cluster, the GEMM autotuner, and the Args parser) each wrapped
// strtol directly, inheriting its prefix semantics: FOURINDEX_THREADS
// =8abc silently parsed as 8 and "--tile=x" as 0. Here the entire
// input must be a number — trailing garbage, embedded whitespace and
// overflow all fail the parse — and each consumer decides whether a
// failure means "fall back" (environment) or "typed error" (CLI).
#pragma once

#include <cstddef>
#include <optional>
#include <string_view>

namespace fit::util {

/// Base-10 integer parse of the whole string: an optional +/- sign
/// followed by digits, nothing else. Returns nullopt on empty input,
/// non-numeric characters (including trailing garbage and whitespace),
/// or values outside long long's range.
std::optional<long long> parse_int(std::string_view s);

/// Floating-point parse of the whole string (decimal or scientific
/// notation). Returns nullopt on empty input, trailing garbage,
/// whitespace, inf/nan spellings, or out-of-range magnitudes.
std::optional<double> parse_double(std::string_view s);

/// Integer >= `min` from environment variable `name`, or `fallback`
/// when the variable is unset. A set-but-invalid value (garbage,
/// overflow, below `min`) logs a warning and returns `fallback`: a
/// misspelled configuration is surfaced, never truncated to a prefix.
std::size_t env_size(const char* name, std::size_t fallback,
                     std::size_t min = 1);

/// Like env_size, but a set-but-invalid value throws fit::ParseError
/// instead of warning and falling back. For knobs where running with
/// the default after the user asked for something else is worse than
/// stopping: FOURINDEX_COUNTER_BATCH=-4 used to warn once and then
/// batch with the default for the whole run — in particular a
/// negative value must never survive the long long -> size_t cast.
std::size_t env_size_strict(const char* name, std::size_t fallback,
                            std::size_t min = 1);

}  // namespace fit::util
