// Deterministic, seedable random number generation.
//
// Everything in this repository that needs randomness (synthetic
// integrals, MO coefficients, property-test inputs) goes through this
// generator so that runs are exactly reproducible across machines.
#pragma once

#include <cstdint>

namespace fit {

/// SplitMix64: tiny, fast, high-quality 64-bit PRNG. Used both directly
/// and as a seeding function; see Steele et al., "Fast splittable
/// pseudorandom number generators".
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [0, bound).
  std::uint64_t next_below(std::uint64_t bound) {
    return bound == 0 ? 0 : next_u64() % bound;
  }

 private:
  std::uint64_t state_;
};

/// Stateless hash of up to four 64-bit keys to a double in [-1, 1).
/// Used by the on-the-fly integral generator: A(i,j,k,l) must be a pure
/// function of its indices so that recomputation is consistent.
inline double hash_to_unit(std::uint64_t a, std::uint64_t b = 0x9E37,
                           std::uint64_t c = 0x79B9, std::uint64_t d = 0x7F4A) {
  SplitMix64 g(a * 0x9E3779B97F4A7C15ull ^ b * 0xC2B2AE3D27D4EB4Full ^
               c * 0x165667B19E3779F9ull ^ d * 0x27D4EB2F165667C5ull);
  return 2.0 * g.next_double() - 1.0;
}

}  // namespace fit
