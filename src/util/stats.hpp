// Small statistics accumulators used by benchmarks and the runtime's
// per-rank load-balance reporting.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "util/error.hpp"

namespace fit {

/// Streaming min/max/mean/variance accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  std::uint64_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

  /// max/mean ratio; 1.0 means perfectly balanced. Used to report the
  /// load imbalance of Sec. 7.3 (triangular alpha>=beta distribution).
  double imbalance() const {
    FIT_REQUIRE(n_ > 0, "imbalance of empty stats");
    return mean() > 0 ? max() / mean() : 1.0;
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace fit
