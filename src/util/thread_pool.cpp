#include "util/thread_pool.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/parse.hpp"

namespace fit::util {

namespace {
thread_local bool tls_on_worker = false;
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = std::max<std::size_t>(1, threads);
  workers_.reserve(n - 1);
  for (std::size_t t = 0; t + 1 < n; ++t)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_job_.notify_all();
  for (auto& w : workers_) w.join();
}

bool ThreadPool::on_worker() { return tls_on_worker; }

std::size_t ThreadPool::default_thread_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return env_size("FOURINDEX_THREADS", hw > 0 ? hw : 1);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(default_thread_count());
  return pool;
}

void ThreadPool::worker_loop() {
  tls_on_worker = true;
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_job_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
    }
    drain_job();
  }
}

void ThreadPool::drain_job() {
  for (;;) {
    std::size_t task;
    const std::function<void(std::size_t)>* fn;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (job_next_ >= job_total_) return;
      task = job_next_++;
      fn = job_fn_;
    }
    try {
      (*fn)(task);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!job_error_) job_error_ = std::current_exception();
    }
    bool done = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      done = (--job_pending_ == 0);
    }
    if (done) cv_done_.notify_all();
  }
}

void ThreadPool::run_tasks(std::size_t n_tasks,
                           const std::function<void(std::size_t)>& fn) {
  if (n_tasks == 0) return;
  // Nested (called from a pool task), trivially serial, or no workers:
  // run inline. Exceptions propagate naturally.
  if (tls_on_worker || workers_.empty() || n_tasks == 1) {
    for (std::size_t t = 0; t < n_tasks; ++t) fn(t);
    return;
  }
  std::lock_guard<std::mutex> job_guard(job_lock_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_fn_ = &fn;
    job_total_ = n_tasks;
    job_next_ = 0;
    job_pending_ = n_tasks;
    job_error_ = nullptr;
    ++generation_;
  }
  cv_job_.notify_all();
  // The calling thread is a lane too: mark it as a worker for the
  // duration so tasks that re-enter run_tasks degrade to inline.
  tls_on_worker = true;
  drain_job();
  tls_on_worker = false;
  std::exception_ptr err;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_done_.wait(lock, [&] { return job_pending_ == 0; });
    err = job_error_;
    job_fn_ = nullptr;
    job_total_ = 0;
  }
  if (err) std::rethrow_exception(err);
}

void ThreadPool::parallel_for(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t g = std::max<std::size_t>(1, grain);
  // ~4 chunks per lane for dynamic balance, but never below the grain.
  const std::size_t target = size() * 4;
  const std::size_t chunk = std::max(g, (n + target - 1) / target);
  const std::size_t n_chunks = (n + chunk - 1) / chunk;
  run_tasks(n_chunks, [&](std::size_t c) {
    const std::size_t lo = c * chunk;
    fn(lo, std::min(n, lo + chunk));
  });
}

}  // namespace fit::util
