// Reusable host thread pool shared by every parallel layer of the
// library: the GEMM engine parallelizes its macro loops on it and
// runtime::Cluster executes the rank bodies of each BSP phase on it
// (replacing per-phase std::thread spawning — workers are created once
// and persist, so a schedule with hundreds of phases pays thread
// creation once, not per phase).
//
// Execution model: run_tasks(n, fn) runs fn(0..n-1), dynamically
// claimed by the workers *and* the calling thread, and blocks until
// all tasks finish. The partition of work into tasks is the caller's
// — determinism contracts (e.g. GEMM bit-reproducibility across
// thread counts) are expressed by making each task's writes disjoint,
// never by pinning tasks to workers.
//
// Re-entrancy: a task that itself calls run_tasks (e.g. a Cluster
// rank body invoking the threaded GEMM) executes the nested tasks
// inline on the current thread — nesting degrades to serial instead
// of deadlocking on the shared pool.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fit::util {

class ThreadPool {
 public:
  /// A pool of `threads` execution lanes: the caller participates, so
  /// `threads - 1` worker threads are spawned (1 => fully serial, no
  /// threads at all).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Execution lanes (workers + the calling thread).
  std::size_t size() const { return workers_.size() + 1; }

  /// Run fn(0), ..., fn(n_tasks - 1) across the pool; blocks until all
  /// complete. Tasks are claimed dynamically; the first exception is
  /// rethrown on the calling thread after every task has finished or
  /// been abandoned. Concurrent run_tasks calls from different
  /// threads serialize on an internal job lock; calls from inside a
  /// task run inline.
  void run_tasks(std::size_t n_tasks,
                 const std::function<void(std::size_t)>& fn);

  /// Static-partition parallel for over [0, n): fn(begin, end) for
  /// contiguous chunks of at least `grain` indices.
  void parallel_for(std::size_t n, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& fn);

  /// True when the current thread is executing a pool task (of any
  /// pool) — used by nested parallel code to fall back to serial.
  static bool on_worker();

  /// Process-wide pool: sized by FOURINDEX_THREADS when set (>= 1),
  /// else std::thread::hardware_concurrency(). Constructed on first
  /// use.
  static ThreadPool& shared();

  /// The lane count shared() will use / used: FOURINDEX_THREADS or
  /// hardware concurrency (>= 1). Reads the environment on every call.
  static std::size_t default_thread_count();

 private:
  void worker_loop();
  /// Claim-and-run loop; returns when the current job has no
  /// unclaimed tasks left.
  void drain_job();

  mutable std::mutex mutex_;
  std::condition_variable cv_job_;
  std::condition_variable cv_done_;
  std::vector<std::thread> workers_;
  bool stop_ = false;

  // Current job state (guarded by mutex_).
  std::uint64_t generation_ = 0;
  const std::function<void(std::size_t)>* job_fn_ = nullptr;
  std::size_t job_total_ = 0;
  std::size_t job_next_ = 0;
  std::size_t job_pending_ = 0;
  std::exception_ptr job_error_;

  std::mutex job_lock_;  // serializes concurrent run_tasks callers
};

}  // namespace fit::util
