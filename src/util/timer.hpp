// Wall-clock timing helpers.
#pragma once

#include <chrono>

namespace fit {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace fit
