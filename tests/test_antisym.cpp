// Antisymmetric tensors (paper footnote 1): packing, engine
// properties, and the fused schedule against the dense reference.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "chem/antisym_integrals.hpp"
#include "core/schedules_antisym.hpp"
#include "tensor/antisym.hpp"

namespace {

using namespace fit;
using namespace fit::tensor;

TEST(AntisymPairs, StrictPackBijective) {
  const std::size_t n = 12;
  std::set<std::size_t> seen;
  for (std::size_t i = 1; i < n; ++i)
    for (std::size_t j = 0; j < i; ++j) {
      const std::size_t p = pack_pair_strict(i, j);
      EXPECT_LT(p, npairs_strict(n));
      EXPECT_TRUE(seen.insert(p).second);
    }
  EXPECT_EQ(seen.size(), npairs_strict(n));
  EXPECT_THROW(pack_pair_strict(3, 3), fit::PreconditionError);
  EXPECT_THROW(pack_pair_strict(2, 5), fit::PreconditionError);
}

TEST(AntisymPairs, SignedPairSigns) {
  EXPECT_DOUBLE_EQ(signed_pair(5, 2).sign, 1.0);
  EXPECT_DOUBLE_EQ(signed_pair(2, 5).sign, -1.0);
  EXPECT_DOUBLE_EQ(signed_pair(4, 4).sign, 0.0);
  EXPECT_EQ(signed_pair(5, 2).index, signed_pair(2, 5).index);
}

TEST(AntisymPackedA, AntisymmetryBothGroups) {
  AntisymPackedA a(6);
  a.set(3, 1, 4, 2, 2.5);
  EXPECT_DOUBLE_EQ(a(3, 1, 4, 2), 2.5);
  EXPECT_DOUBLE_EQ(a(1, 3, 4, 2), -2.5);
  EXPECT_DOUBLE_EQ(a(3, 1, 2, 4), -2.5);
  EXPECT_DOUBLE_EQ(a(1, 3, 2, 4), 2.5);
  EXPECT_DOUBLE_EQ(a(2, 2, 4, 2), 0.0);  // diagonal vanishes
  EXPECT_DOUBLE_EQ(a(3, 1, 4, 4), 0.0);
  // Strict-triangle storage: ~n^4/4 as in Table 1.
  EXPECT_EQ(a.stored_elements(), npairs_strict(6) * npairs_strict(6));
}

TEST(AntisymPackedC, SignsAndSparsity) {
  auto ir = Irreps::contiguous(8, 2);
  AntisymPackedC c(8, ir);
  c.add(2, 1, 3, 0, 4.0);
  EXPECT_DOUBLE_EQ(c.get(2, 1, 3, 0), 4.0);
  EXPECT_DOUBLE_EQ(c.get(1, 2, 3, 0), -4.0);
  EXPECT_DOUBLE_EQ(c.get(2, 1, 0, 3), -4.0);
  EXPECT_DOUBLE_EQ(c.get(1, 2, 0, 3), 4.0);
  EXPECT_DOUBLE_EQ(c.get(2, 2, 3, 0), 0.0);
  // Forbidden (different pair irreps): pair (2,1) irrep 0, (5,1) irrep 1.
  EXPECT_DOUBLE_EQ(c.get(2, 1, 5, 1), 0.0);
  EXPECT_THROW(c.add(5, 1, 2, 1, 1.0), fit::PreconditionError);
  EXPECT_THROW(c.add(1, 2, 3, 0, 1.0), fit::PreconditionError);  // order
}

TEST(AntisymEngine, Properties) {
  auto ir = Irreps::contiguous(8, 2);
  chem::AntisymIntegralEngine eng(8, ir, 99);
  for (std::size_t i = 0; i < 8; i += 2)
    for (std::size_t j = 1; j < 8; j += 3)
      for (std::size_t k = 0; k < 8; k += 3)
        for (std::size_t l = 1; l < 8; l += 2) {
          const double v = eng.value(i, j, k, l);
          EXPECT_DOUBLE_EQ(eng.value(j, i, k, l), -v);
          EXPECT_DOUBLE_EQ(eng.value(i, j, l, k), -v);
          EXPECT_DOUBLE_EQ(eng.value(j, i, l, k), v);
          if (!ir.allowed(i, j, k, l)) {
            EXPECT_DOUBLE_EQ(v, 0.0);
          }
        }
  EXPECT_DOUBLE_EQ(eng.value(3, 3, 1, 0), 0.0);
  EXPECT_DOUBLE_EQ(eng.value(3, 1, 2, 2), 0.0);
}

TEST(AntisymEngine, MaterializeConsistent) {
  auto ir = Irreps::trivial(6);
  chem::AntisymIntegralEngine eng(6, ir, 3);
  auto a = eng.materialize();
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = 0; j < 6; ++j)
      for (std::size_t k = 0; k < 6; ++k)
        for (std::size_t l = 0; l < 6; ++l)
          EXPECT_DOUBLE_EQ(a(i, j, k, l), eng.value(i, j, k, l));
}

TEST(AntisymTransform, DenseResultIsAntisymmetric) {
  auto p = core::make_antisym_problem(8, 2, 5);
  auto c = core::antisym_reference_transform(p);
  // Spot-check sign structure through the packed accessor.
  bool found_nonzero = false;
  for (std::size_t a = 1; a < 8; ++a)
    for (std::size_t b = 0; b < a; ++b)
      for (std::size_t cc = 1; cc < 8; ++cc)
        for (std::size_t d = 0; d < cc; ++d) {
          const double v = c.get(a, b, cc, d);
          EXPECT_DOUBLE_EQ(c.get(b, a, cc, d), -v);
          if (std::fabs(v) > 1e-6) found_nonzero = true;
        }
  EXPECT_TRUE(found_nonzero);
}

class AntisymFused
    : public ::testing::TestWithParam<std::tuple<std::size_t, unsigned>> {};

TEST_P(AntisymFused, MatchesReference) {
  const auto [n, s] = GetParam();
  auto p = core::make_antisym_problem(n, s, 11 * n + s);
  auto ref = core::antisym_reference_transform(p);
  core::SeqStats stats;
  auto got = core::antisym_fused1234_transform(p, &stats);
  EXPECT_LT(got.max_abs_diff(ref), 1e-10 * double(n * n));
  EXPECT_GT(stats.flops, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, AntisymFused,
    ::testing::Values(std::make_tuple(4, 1u), std::make_tuple(6, 2u),
                      std::make_tuple(8, 1u), std::make_tuple(10, 2u),
                      std::make_tuple(12, 4u)));

TEST(AntisymTransform, FusedPeakMemoryIsCPlusLowerOrder) {
  auto p = core::make_antisym_problem(16, 1, 2);
  core::SeqStats stats;
  auto c = core::antisym_fused1234_transform(p, &stats);
  const double n3 = 16.0 * 16 * 16;
  EXPECT_GE(stats.peak_words, c.stored_elements());
  EXPECT_LE(double(stats.peak_words),
            double(c.stored_elements()) + 4.0 * n3);
}

}  // namespace
