#include <gtest/gtest.h>

#include <cstring>
#include <iterator>
#include <tuple>
#include <vector>

#include "blas/gemm.hpp"
#include "blas/level1.hpp"
#include "blas/level2.hpp"
#include "blas/tune.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using fit::blas::Trans;

std::vector<double> random_vec(std::size_t n, std::uint64_t seed) {
  fit::SplitMix64 g(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = g.next_double(-1.0, 1.0);
  return v;
}

TEST(Level1, AxpyDotScalNrm2) {
  std::vector<double> x = {1, 2, 3}, y = {4, 5, 6};
  fit::blas::axpy(3, 2.0, x.data(), y.data());
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[2], 12.0);
  EXPECT_DOUBLE_EQ(fit::blas::dot(3, x.data(), x.data()), 14.0);
  fit::blas::scal(3, 0.5, x.data());
  EXPECT_DOUBLE_EQ(x[1], 1.0);
  std::vector<double> z = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(fit::blas::nrm2(2, z.data()), 5.0);
}

TEST(Level1, StridedVariants) {
  std::vector<double> x = {1, 0, 2, 0, 3, 0};
  std::vector<double> y = {1, 1, 1};
  fit::blas::axpy(3, 1.0, x.data(), 2, y.data(), 1);
  EXPECT_DOUBLE_EQ(y[0], 2.0);
  EXPECT_DOUBLE_EQ(y[1], 3.0);
  EXPECT_DOUBLE_EQ(y[2], 4.0);
  EXPECT_DOUBLE_EQ(fit::blas::dot(3, x.data(), 2, x.data(), 2), 14.0);
}

TEST(Level2, GemvAgainstManual) {
  // A = [[1,2],[3,4],[5,6]] (3x2), x = [1,10]
  std::vector<double> a = {1, 2, 3, 4, 5, 6};
  std::vector<double> x = {1, 10};
  std::vector<double> y(3, 0.0);
  fit::blas::gemv_n(3, 2, 1.0, a.data(), 2, x.data(), y.data());
  EXPECT_DOUBLE_EQ(y[0], 21.0);
  EXPECT_DOUBLE_EQ(y[1], 43.0);
  EXPECT_DOUBLE_EQ(y[2], 65.0);

  std::vector<double> xt = {1, 1, 1};
  std::vector<double> yt(2, 0.0);
  fit::blas::gemv_t(3, 2, 1.0, a.data(), 2, xt.data(), yt.data());
  EXPECT_DOUBLE_EQ(yt[0], 9.0);
  EXPECT_DOUBLE_EQ(yt[1], 12.0);
}

TEST(Level2, GerRankOne) {
  std::vector<double> a(6, 0.0);
  std::vector<double> x = {1, 2, 3}, y = {10, 20};
  fit::blas::ger(3, 2, 1.0, x.data(), y.data(), a.data(), 2);
  EXPECT_DOUBLE_EQ(a[0], 10.0);
  EXPECT_DOUBLE_EQ(a[5], 60.0);
}

struct GemmCase {
  std::size_t m, n, k;
  Trans ta, tb;
  double alpha, beta;
};

class GemmParam : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmParam, MatchesReference) {
  const auto c = GetParam();
  const std::size_t arows = (c.ta == Trans::No) ? c.m : c.k;
  const std::size_t acols = (c.ta == Trans::No) ? c.k : c.m;
  const std::size_t brows = (c.tb == Trans::No) ? c.k : c.n;
  const std::size_t bcols = (c.tb == Trans::No) ? c.n : c.k;
  auto a = random_vec(arows * acols, 1 + c.m);
  auto b = random_vec(brows * bcols, 2 + c.n);
  auto c0 = random_vec(c.m * c.n, 3 + c.k);
  auto c1 = c0;

  fit::blas::gemm_reference(c.ta, c.tb, c.m, c.n, c.k, c.alpha, a.data(),
                            acols, b.data(), bcols, c.beta, c0.data(), c.n);
  fit::blas::gemm(c.ta, c.tb, c.m, c.n, c.k, c.alpha, a.data(), acols,
                  b.data(), bcols, c.beta, c1.data(), c.n);
  EXPECT_LT(fit::blas::max_abs_diff(c.m * c.n, c0.data(), c1.data()),
            1e-10 * static_cast<double>(c.k + 1));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmParam,
    ::testing::Values(
        GemmCase{1, 1, 1, Trans::No, Trans::No, 1.0, 0.0},
        GemmCase{3, 5, 7, Trans::No, Trans::No, 1.0, 0.0},
        GemmCase{3, 5, 7, Trans::Yes, Trans::No, 1.0, 0.0},
        GemmCase{3, 5, 7, Trans::No, Trans::Yes, 1.0, 0.0},
        GemmCase{3, 5, 7, Trans::Yes, Trans::Yes, 1.0, 0.0},
        GemmCase{16, 16, 16, Trans::No, Trans::No, 2.0, 0.5},
        GemmCase{64, 64, 64, Trans::No, Trans::No, 1.0, 1.0},
        GemmCase{130, 70, 90, Trans::No, Trans::No, 1.0, 0.0},
        GemmCase{130, 70, 90, Trans::Yes, Trans::No, -1.5, 2.0},
        GemmCase{130, 70, 90, Trans::No, Trans::Yes, 1.0, 0.0},
        GemmCase{257, 33, 129, Trans::No, Trans::No, 1.0, 0.0},
        GemmCase{40, 520, 12, Trans::No, Trans::No, 1.0, 0.0},
        GemmCase{5, 1, 600, Trans::No, Trans::No, 1.0, 0.0},
        GemmCase{1, 300, 300, Trans::Yes, Trans::Yes, 0.25, 0.0}));

TEST(Gemm, ZeroDimensionsAreNoops) {
  std::vector<double> c = {1.0, 2.0};
  fit::blas::gemm(Trans::No, Trans::No, 0, 2, 3, 1.0, nullptr, 3, nullptr, 2,
                  1.0, c.data(), 2);
  EXPECT_DOUBLE_EQ(c[0], 1.0);
  // k == 0 with beta applies only the scaling.
  fit::blas::gemm(Trans::No, Trans::No, 1, 2, 0, 1.0, nullptr, 1, nullptr, 2,
                  0.5, c.data(), 2);
  EXPECT_DOUBLE_EQ(c[0], 0.5);
  EXPECT_DOUBLE_EQ(c[1], 1.0);
}

TEST(Gemm, BetaZeroOverwritesNaNFree) {
  // beta == 0 must overwrite even if C holds garbage/NaN.
  std::vector<double> a = {1.0}, b = {2.0};
  std::vector<double> c = {std::nan("")};
  fit::blas::gemm(Trans::No, Trans::No, 1, 1, 1, 1.0, a.data(), 1, b.data(),
                  1, 0.0, c.data(), 1);
  EXPECT_DOUBLE_EQ(c[0], 2.0);
}

TEST(Gemm, AccConvenience) {
  // C += A*B with tight leading dims.
  std::vector<double> a = {1, 2, 3, 4};   // 2x2
  std::vector<double> b = {5, 6, 7, 8};   // 2x2
  std::vector<double> c = {1, 1, 1, 1};
  fit::blas::gemm_acc(2, 2, 2, a.data(), b.data(), c.data());
  EXPECT_DOUBLE_EQ(c[0], 1 + 19);
  EXPECT_DOUBLE_EQ(c[3], 1 + 50);
}

TEST(Gemm, LeadingDimensionLargerThanWidth) {
  // Operate on a 2x2 block inside 2x4 storage.
  std::vector<double> a = {1, 2, -9, -9, 3, 4, -9, -9};
  std::vector<double> b = {1, 0, -9, -9, 0, 1, -9, -9};
  std::vector<double> c = {0, 0, -1, -1, 0, 0, -1, -1};
  fit::blas::gemm(Trans::No, Trans::No, 2, 2, 2, 1.0, a.data(), 4, b.data(),
                  4, 0.0, c.data(), 4);
  EXPECT_DOUBLE_EQ(c[0], 1.0);
  EXPECT_DOUBLE_EQ(c[1], 2.0);
  EXPECT_DOUBLE_EQ(c[4], 3.0);
  EXPECT_DOUBLE_EQ(c[5], 4.0);
  EXPECT_DOUBLE_EQ(c[2], -1.0);  // untouched padding
}

TEST(Gemm, FlopsFormula) {
  EXPECT_DOUBLE_EQ(fit::blas::gemm_flops(2, 3, 4), 48.0);
}

TEST(Gemm, RejectsTooSmallLeadingDims) {
  std::vector<double> a(12, 0.0), b(12, 0.0), c(6, 0.0);
  // op(A) = A (2x3): lda must be >= k = 3.
  EXPECT_THROW(fit::blas::gemm(Trans::No, Trans::No, 2, 2, 3, 1.0, a.data(),
                               2, b.data(), 2, 0.0, c.data(), 2),
               fit::PreconditionError);
  // op(A) = A^T with m = 4: lda must be >= m.
  EXPECT_THROW(fit::blas::gemm(Trans::Yes, Trans::No, 4, 2, 3, 1.0, a.data(),
                               3, b.data(), 2, 0.0, c.data(), 2),
               fit::PreconditionError);
  // op(B) = B (3x2): ldb must be >= n = 2.
  EXPECT_THROW(fit::blas::gemm(Trans::No, Trans::No, 2, 2, 3, 1.0, a.data(),
                               3, b.data(), 1, 0.0, c.data(), 2),
               fit::PreconditionError);
  // op(B) = B^T with k = 3: ldb must be >= k.
  EXPECT_THROW(fit::blas::gemm(Trans::No, Trans::Yes, 2, 2, 3, 1.0, a.data(),
                               3, b.data(), 2, 0.0, c.data(), 2),
               fit::PreconditionError);
  // Degenerate dimensions skip the operand checks (nothing is read).
  EXPECT_NO_THROW(fit::blas::gemm(Trans::No, Trans::No, 0, 2, 3, 1.0,
                                  a.data(), 0, b.data(), 2, 1.0, c.data(),
                                  2));
  EXPECT_NO_THROW(fit::blas::gemm(Trans::No, Trans::No, 2, 2, 0, 1.0,
                                  a.data(), 0, b.data(), 0, 1.0, c.data(),
                                  2));
}

// Property test: the blocked engine against the reference oracle over
// randomized shapes (0, 1, and non-multiples of the MR/NR micro-tile),
// all four Trans combinations, padded strides, and the scalar grid
// alpha/beta in {0, 1, -0.5}.
TEST(GemmProperty, RandomizedAgainstReference) {
  fit::SplitMix64 g(0xf1e2d3c4);
  const std::size_t dims[] = {0,  1,  2,  3,  5,  7,  8,  9,
                              16, 17, 31, 33, 63, 65, 90, 129};
  const double scalars[] = {0.0, 1.0, -0.5};
  for (int iter = 0; iter < 80; ++iter) {
    const std::size_t m = dims[g.next_below(std::size(dims))];
    const std::size_t n = dims[g.next_below(std::size(dims))];
    const std::size_t k = dims[g.next_below(std::size(dims))];
    const Trans ta = (g.next_u64() & 1) ? Trans::Yes : Trans::No;
    const Trans tb = (g.next_u64() & 1) ? Trans::Yes : Trans::No;
    const double alpha = scalars[g.next_below(std::size(scalars))];
    const double beta = scalars[g.next_below(std::size(scalars))];
    // Padded leading dimensions (>= the operand width).
    const std::size_t arows = (ta == Trans::No) ? m : k;
    const std::size_t acols = (ta == Trans::No) ? k : m;
    const std::size_t brows = (tb == Trans::No) ? k : n;
    const std::size_t bcols = (tb == Trans::No) ? n : k;
    const std::size_t lda = acols + g.next_below(4);
    const std::size_t ldb = bcols + g.next_below(4);
    const std::size_t ldc = n + g.next_below(4);

    auto a = random_vec(arows * lda, g.next_u64());
    auto b = random_vec(brows * ldb, g.next_u64());
    auto c0 = random_vec(m * ldc, g.next_u64());
    auto c1 = c0;
    fit::blas::gemm_reference(ta, tb, m, n, k, alpha, a.data(), lda, b.data(),
                              ldb, beta, c0.data(), ldc);
    fit::blas::gemm(ta, tb, m, n, k, alpha, a.data(), lda, b.data(), ldb,
                    beta, c1.data(), ldc);
    const double err =
        (m * n == 0) ? 0.0
                     : fit::blas::max_abs_diff(m * ldc, c0.data(), c1.data());
    EXPECT_LT(err, 1e-10 * static_cast<double>(k + 1))
        << "m=" << m << " n=" << n << " k=" << k << " ta=" << int(ta)
        << " tb=" << int(tb) << " alpha=" << alpha << " beta=" << beta
        << " lda=" << lda << " ldb=" << ldb << " ldc=" << ldc;
  }
}

// The engine's determinism contract: for a fixed blocking config,
// results are bit-identical run-to-run and across thread counts (the
// lanes split only the M dimension; every C element accumulates its
// k-products in the same order no matter how many threads run). This
// holds for the vectorized kernel and for the scalar kernel that
// FOURINDEX_DETERMINISTIC=1 pins.
TEST(GemmDeterminism, BitIdenticalAcrossThreadCounts) {
  const std::size_t n = 96;  // above the small-problem cutoff
  auto a = random_vec(n * n, 11);
  auto b = random_vec(n * n, 22);
  const auto c_init = random_vec(n * n, 33);
  const auto base = fit::blas::gemm_config();
  for (const bool deterministic : {false, true}) {
    std::vector<double> first;
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                      std::size_t{4}}) {
      auto cfg = base;
      cfg.threads = threads;
      cfg.deterministic = deterministic;
      fit::blas::set_gemm_config(cfg);
      for (int run = 0; run < 2; ++run) {
        auto c = c_init;
        fit::blas::gemm(Trans::No, Trans::No, n, n, n, 1.0, a.data(), n,
                        b.data(), n, 1.0, c.data(), n);
        if (first.empty()) {
          first = c;
        } else {
          ASSERT_EQ(0, std::memcmp(first.data(), c.data(),
                                   c.size() * sizeof(double)))
              << "bits differ: threads=" << threads << " run=" << run
              << " deterministic=" << deterministic;
        }
      }
    }
    // Scalar and vector kernels agree numerically (to rounding) even
    // when their bits differ.
    ASSERT_FALSE(first.empty());
  }
  fit::blas::set_gemm_config(base);
}

TEST(GemmEngine, AutotunedConfigIsSane) {
  const auto cfg = fit::blas::GemmConfig::autotuned();
  EXPECT_GE(cfg.kc, 64u);
  EXPECT_LE(cfg.kc, 512u);
  EXPECT_EQ(cfg.mc % fit::blas::kGemmMR, 0u);
  EXPECT_EQ(cfg.nc % fit::blas::kGemmNR, 0u);
  EXPECT_GE(cfg.threads, 1u);
}

TEST(GemmEngine, MetricsAccumulate) {
  auto& reg = fit::blas::gemm_metrics();
  reg.counter("gemm.calls");
  reg.counter("gemm.flops");
  const double calls0 = reg.sum("gemm.calls");
  const double flops0 = reg.sum("gemm.flops");
  const std::size_t n = 48;
  auto a = random_vec(n * n, 1);
  auto b = random_vec(n * n, 2);
  std::vector<double> c(n * n, 0.0);
  fit::blas::gemm(Trans::No, Trans::No, n, n, n, 1.0, a.data(), n, b.data(),
                  n, 0.0, c.data(), n);
  EXPECT_DOUBLE_EQ(reg.sum("gemm.calls") - calls0, 1.0);
  EXPECT_DOUBLE_EQ(reg.sum("gemm.flops") - flops0,
                   fit::blas::gemm_flops(n, n, n));
}

}  // namespace
