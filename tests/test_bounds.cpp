#include <gtest/gtest.h>

#include <cmath>

#include "bounds/fusion_lemma.hpp"
#include "bounds/matmul_bounds.hpp"
#include "bounds/transform_bounds.hpp"
#include "tensor/packed.hpp"

namespace {

using namespace fit::bounds;

TEST(MatmulBounds, OrderingOfPublishedConstants) {
  // Dongarra's 1.73/sqrt(S) constant dominates Hong-Kung's 1 and
  // Irony's 1/(2 sqrt 2).
  const double ni = 100, nj = 100, nk = 100, s = 64;
  EXPECT_GT(matmul_lb_dongarra(ni, nj, nk, s),
            matmul_lb_hong_kung(ni, nj, nk, s));
  EXPECT_GT(matmul_lb_hong_kung(ni, nj, nk, s),
            matmul_lb_irony(ni, nj, nk, s));
}

TEST(MatmulBounds, SumBoundDominatesForLargeS) {
  // Once S is huge, the volume bound collapses and in+out wins.
  const double n = 64;
  const double huge_s = 1e12;
  EXPECT_DOUBLE_EQ(matmul_lb(n, n, n, huge_s), matmul_lb_io_sum(n, n, n));
  // And for tiny S the Dongarra term wins.
  EXPECT_DOUBLE_EQ(matmul_lb(n, n, n, 16), matmul_lb_dongarra(n, n, n, 16));
}

TEST(MatmulBounds, TiledIoIsAboveLowerBound) {
  for (double s : {64.0, 1024.0, 65536.0}) {
    const double lb = matmul_lb(128, 128, 128, s);
    const double achieved = matmul_tiled_io(128, 128, 128, s);
    EXPECT_GE(achieved, lb * 0.999);
    // Tiled is within ~2/1.73 of optimal.
    EXPECT_LE(achieved, lb * 1.2 + matmul_lb_io_sum(128, 128, 128));
  }
}

TEST(MatmulBounds, RejectsBadArguments) {
  EXPECT_THROW(matmul_lb_dongarra(0, 1, 1, 4), fit::PreconditionError);
  EXPECT_THROW(matmul_lb_dongarra(1, 1, 1, 0), fit::PreconditionError);
}

TEST(FusionLemma, PairFormula) {
  StageIO c1{100.0, 120.0}, c2{80.0, 90.0};
  EXPECT_DOUBLE_EQ(fused_pair_lower_bound(c1, c2, 30.0),
                   100.0 + 80.0 - 60.0);
}

TEST(FusionLemma, ChainFormulaMatchesRepeatedPair) {
  std::vector<StageIO> stages = {{10, 12}, {20, 22}, {30, 33}};
  std::vector<double> inter = {5, 7};
  EXPECT_DOUBLE_EQ(fused_chain_lower_bound(stages, inter),
                   10 + 20 + 30 - 2 * 5 - 2 * 7);
  EXPECT_THROW(fused_chain_lower_bound(stages, {1.0}),
               fit::PreconditionError);
}

TEST(FusionLemma, SquareMatmulChainGainCappedAt27Percent) {
  // Paper Sec. 4 worked example: E = (A*B)*D, all N x N, N^2 >> S.
  const double n = 1024, s = 4096;
  const double lb = matmul_lb_dongarra(n, n, n, s);
  const double achievable = 2.0 * n * n * n / std::sqrt(s);
  StageIO stage{lb, achievable};
  const double benefit = max_fusion_benefit(stage, stage, n * n);
  const double fraction = benefit / (2.0 * achievable);
  // Upper bound 0.54/2 ~ 27% plus the lower-order N^2 term.
  EXPECT_LT(fraction, 0.28);
  EXPECT_GT(fraction, 0.10);
  EXPECT_FALSE(fusion_is_useful(stage, stage, n * n, 0.30));
}

TEST(FusionLemma, RectangularChainFusionIsVeryUseful) {
  // A: N x K, B: K x N with N >> K: the intermediate N^2 dwarfs the
  // inherent I/O and fusion can eliminate nearly all of it.
  const double n = 4096, k = 16, s = 4096;
  const double lb = matmul_lb_dongarra(n, k, n, s);
  const double achievable = matmul_tiled_io(n, k, n, s);
  StageIO stage{lb, achievable};
  EXPECT_TRUE(fusion_is_useful(stage, stage, n * n, 0.25));
}

TEST(TransformBounds, Theorem52TotalOrder) {
  // IO(op1234) <= IO(op12/34) < IO(op123/4) and op12/34 beats unfused.
  for (double n : {32.0, 64.0, 128.0, 512.0}) {
    for (double s : {1.0, 8.0}) {
      const double io1234 = io_opt(FusionChoice::Fused1234, n, s);
      const double io12_34 = io_opt(FusionChoice::Fused12_34, n, s);
      const double io123_4 = io_opt(FusionChoice::Fused123_4, n, s);
      const double io1_23_4 = io_opt(FusionChoice::Fused1_23_4, n, s);
      const double iounf = io_opt(FusionChoice::Unfused, n, s);
      EXPECT_LE(io1234, io12_34);
      EXPECT_LT(io12_34, io123_4) << "n=" << n << " s=" << s;
      EXPECT_LT(io12_34, iounf);
      EXPECT_LT(io1_23_4, iounf);
      EXPECT_GT(io1_23_4, io12_34);
    }
  }
}

TEST(TransformBounds, UnfusedIoMatchesHandFormula) {
  const double n = 10, s = 1;
  const auto sz = fit::tensor::approx_sizes(n, s);
  EXPECT_DOUBLE_EQ(io_opt(FusionChoice::Unfused, n, s),
                   sz.a + 2 * sz.o1 + 2 * sz.o2 + 2 * sz.o3 + sz.c);
  EXPECT_DOUBLE_EQ(io_opt(FusionChoice::Fused1234, n, s), sz.a + sz.c);
}

TEST(TransformBounds, FastMemoryThresholds) {
  const double n = 100;
  EXPECT_DOUBLE_EQ(single_contraction_min_fast_memory(n), n * n + n + 1);
  EXPECT_DOUBLE_EQ(fused_pair_min_fast_memory(n), 3 * n * n + n + 1);
  EXPECT_TRUE(fusion_possibly_useful(n, 4 * n * n));
  EXPECT_FALSE(fusion_possibly_useful(n, n * n));
}

TEST(TransformBounds, FullReuseCondition) {
  const double n = 64, s = 8;
  const auto sz = fit::tensor::approx_sizes(n, s);
  const double smin = full_reuse_min_fast_memory(sz, n);
  EXPECT_GT(smin, sz.c);
  EXPECT_TRUE(full_reuse_possible(sz, n, smin));
  EXPECT_FALSE(full_reuse_possible(sz, n, sz.c * 0.5));
}

TEST(TransformBounds, Eq7LessThanEq8LessThanUnfused) {
  // The fused implementations need far less global memory than
  // unfused for small Tl; eq8 adds the inner-fusion O1 slice.
  const double n = 128, s = 8, tl = 1;
  EXPECT_LT(eq7_global_memory(n, tl, s), eq8_global_memory(n, tl, s));
  EXPECT_LT(eq8_global_memory(n, tl, s), unfused_global_memory(n, s));
  // Unfused peak is ~3n^4/4.
  EXPECT_NEAR(unfused_global_memory(n, s) / (0.75 * n * n * n * n), 1.0,
              0.01);
  EXPECT_THROW(eq7_global_memory(n, 0, s), fit::PreconditionError);
  EXPECT_THROW(eq8_global_memory(n, n + 1, s), fit::PreconditionError);
}

TEST(TransformBounds, MaxProblemFusedBeatsUnfused) {
  // The headline capability: for the same aggregate memory the fused
  // implementation admits a larger n. With the paper's 12.1 TB
  // example scaled down, the fused schedule must fit where unfused
  // does not.
  const double words = 9e12 / 8.0 / 4096.0;  // "9 TB cluster" scaled 1/4096
  const std::size_t nf = max_fused_problem(words, 2, 8);
  const std::size_t nu = max_unfused_problem(words, 8);
  EXPECT_GT(nf, nu);
  // Shell-Mixed scaled (149 orbitals) runs fused but not unfused.
  EXPECT_GE(nf, 149u);
  EXPECT_LT(nu, 149u);
}

TEST(TransformBounds, AnalyzeSortsByBound) {
  auto rows = analyze_fusion_choices(64, 8);
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows.front().choice, FusionChoice::Fused1234);
  EXPECT_EQ(rows.back().choice, FusionChoice::Unfused);
  for (std::size_t i = 1; i < rows.size(); ++i)
    EXPECT_LE(rows[i - 1].io_lower_bound, rows[i].io_lower_bound);
}

TEST(TransformBounds, ToStringNames) {
  EXPECT_EQ(to_string(FusionChoice::Fused12_34), "op12/34");
  EXPECT_EQ(all_fusion_choices().size(), 5u);
}

}  // namespace
