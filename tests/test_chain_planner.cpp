// Generic chain-fusion planner: DP optimality against exhaustive
// search, and reproduction of the paper's four-index conclusions.
#include <gtest/gtest.h>

#include <cmath>

#include "bounds/chain_planner.hpp"
#include "bounds/transform_bounds.hpp"
#include "tensor/packed.hpp"
#include "util/rng.hpp"

namespace {

using namespace fit::bounds;

ChainSpec simple_chain(std::vector<double> sizes, double pair_cap = 10.0) {
  ChainSpec spec;
  spec.tensor_sizes = std::move(sizes);
  spec.capacity_need = [pair_cap](std::size_t lo, std::size_t hi) {
    // Singletons always feasible; any fused group needs pair_cap per
    // fused junction (simple synthetic rule).
    return static_cast<double>(hi - lo) * pair_cap;
  };
  return spec;
}

TEST(ChainPlanner, SingleOpTrivial) {
  auto spec = simple_chain({100, 50});
  auto plan = plan_chain(spec, 1.0);
  ASSERT_EQ(plan.groups.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.total_io, 150.0);
}

TEST(ChainPlanner, FusesWhenAllowed) {
  // t = {100, 1000, 100}: fusing both ops removes the 1000 twice.
  auto spec = simple_chain({100, 1000, 100});
  auto unfused = plan_chain(spec, 5.0);  // pair infeasible
  EXPECT_DOUBLE_EQ(unfused.total_io, 100 + 1000 + 1000 + 100);
  auto fused = plan_chain(spec, 50.0);
  ASSERT_EQ(fused.groups.size(), 1u);
  EXPECT_DOUBLE_EQ(fused.total_io, 200.0);
}

TEST(ChainPlanner, SkipsUselessFusion) {
  // Tiny intermediate: fusion is allowed but cannot beat... it still
  // reduces I/O by 2*t, so the planner always fuses when feasible and
  // free — verify the arithmetic is consistent with the grouping API.
  auto spec = simple_chain({100, 1, 100});
  auto plan = plan_chain(spec, 50.0);
  std::vector<ChainGroup> manual = {{0, 1, 0}};
  EXPECT_DOUBLE_EQ(plan.total_io, chain_grouping_io(spec, manual));
}

TEST(ChainPlanner, GroupingIoValidatesPartition) {
  auto spec = simple_chain({10, 20, 30});
  EXPECT_THROW(chain_grouping_io(spec, {{0, 0, 0}}),
               fit::PreconditionError);  // does not cover op 1
  EXPECT_THROW(chain_grouping_io(spec, {{0, 1, 0}, {1, 1, 0}}),
               fit::PreconditionError);  // overlap
  EXPECT_DOUBLE_EQ(chain_grouping_io(spec, {{0, 0, 0}, {1, 1, 0}}),
                   10 + 20 + 20 + 30);
}

TEST(ChainPlanner, ThrowsWhenNothingFeasible) {
  ChainSpec spec;
  spec.tensor_sizes = {10, 10};
  spec.capacity_need = [](std::size_t, std::size_t) { return 1e18; };
  EXPECT_THROW(plan_chain(spec, 1.0), fit::PreconditionError);
}

TEST(ChainPlanner, DpMatchesExhaustiveOnRandomChains) {
  fit::SplitMix64 rng(2026);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t m = 2 + rng.next_below(8);  // 2..9 ops
    std::vector<double> sizes(m + 1);
    for (auto& t : sizes) t = 1.0 + double(rng.next_below(1000));
    ChainSpec spec;
    spec.tensor_sizes = sizes;
    // Random per-group capacity: depends on group span and a hash.
    const std::uint64_t salt = rng.next_u64();
    spec.capacity_need = [salt](std::size_t lo, std::size_t hi) {
      if (hi == lo) return 0.0;  // singletons always executable
      return 50.0 * double(hi - lo) +
             500.0 * std::fabs(fit::hash_to_unit(lo, hi, salt));
    };
    const double s = 100.0 + double(rng.next_below(800));
    auto dp = plan_chain(spec, s);
    auto brute = plan_chain_exhaustive(spec, s);
    EXPECT_NEAR(dp.total_io, brute.total_io, 1e-9)
        << "trial " << trial << " m=" << m << " s=" << s;
    // The DP's own grouping must evaluate to its claimed I/O.
    EXPECT_NEAR(chain_grouping_io(spec, dp.groups), dp.total_io, 1e-9);
  }
}

TEST(ChainPlanner, FourIndexReproducesPaperRegimes) {
  const double n = 368, s_sym = 8;
  auto spec = four_index_chain(n, s_sym);
  const auto sz = fit::tensor::approx_sizes(n, s_sym);

  // Regime 1: S below 3n^2 — no fusion possible, four singletons.
  {
    auto plan = plan_chain(spec, 2 * n * n);
    EXPECT_EQ(plan.groups.size(), 4u);
    EXPECT_NEAR(plan.total_io, io_opt(FusionChoice::Unfused, n, s_sym),
                1e-6);
  }
  // Regime 2: pairs feasible but S < |C| — op12/34 wins (Thm 5.2).
  {
    auto plan = plan_chain(spec, 4 * n * n);
    ASSERT_EQ(plan.groups.size(), 2u);
    EXPECT_EQ(plan.groups[0].lo, 0u);
    EXPECT_EQ(plan.groups[0].hi, 1u);
    EXPECT_EQ(plan.groups[1].lo, 2u);
    EXPECT_EQ(plan.groups[1].hi, 3u);
    EXPECT_NEAR(plan.total_io, io_opt(FusionChoice::Fused12_34, n, s_sym),
                1e-6);
  }
  // Regime 3: S >= |C| + 2n^3 — the full fusion of Theorem 6.2.
  {
    auto plan = plan_chain(spec, sz.c + 3 * n * n * n);
    ASSERT_EQ(plan.groups.size(), 1u);
    EXPECT_NEAR(plan.total_io, io_opt(FusionChoice::Fused1234, n, s_sym),
                1e-6);
  }
}

TEST(ChainPlanner, LongerChainsGeneralize) {
  // An 8-op chain with a "waist": the planner should cut exactly at
  // the small tensor (fusing across a small intermediate saves little,
  // but capacity forbids spanning the large ones).
  ChainSpec spec;
  spec.tensor_sizes = {100, 900, 900, 5, 900, 900, 100};
  spec.capacity_need = [&](std::size_t lo, std::size_t hi) {
    // A fused group must hold its smallest interior tensor... modeled
    // as: capacity = min interior tensor (Thm 6.1 style).
    double need = 0;
    for (std::size_t k = lo + 1; k <= hi; ++k)
      need = std::max(need, 0.0);  // base
    double min_t = 1e18;
    for (std::size_t k = lo; k <= hi + 1; ++k)
      min_t = std::min(min_t, spec.tensor_sizes[k]);
    return min_t;
  };
  // S = 50: any group containing the waist tensor (5) is feasible
  // (min = 5), and indeed min over any group here is <= 100... so the
  // whole chain fuses into one group of I/O 200.
  auto plan = plan_chain(spec, 150.0);
  ASSERT_EQ(plan.groups.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.total_io, 200.0);
  // With S = 3 nothing can fuse or even run singletons? Singletons
  // need min(t[k],t[k+1]) <= 100 — still > 3: infeasible everywhere.
  EXPECT_THROW(plan_chain(spec, 3.0), fit::PreconditionError);
}

}  // namespace
