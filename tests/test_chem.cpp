#include <gtest/gtest.h>

#include <cmath>

#include "chem/coeffs.hpp"
#include "chem/integrals.hpp"
#include "chem/molecule.hpp"
#include "chem/mp2.hpp"
#include "core/problem.hpp"
#include "core/schedules_seq.hpp"
#include "tensor/irreps.hpp"

namespace {

using namespace fit;

TEST(Integrals, PermutationSymmetry) {
  auto ir = tensor::Irreps::contiguous(10, 2);
  chem::IntegralEngine eng(10, ir, 42);
  for (std::size_t i = 0; i < 10; i += 3)
    for (std::size_t j = 0; j < 10; j += 2)
      for (std::size_t k = 0; k < 10; k += 3)
        for (std::size_t l = 0; l < 10; l += 2) {
          const double v = eng.value(i, j, k, l);
          EXPECT_DOUBLE_EQ(v, eng.value(j, i, k, l));
          EXPECT_DOUBLE_EQ(v, eng.value(i, j, l, k));
          EXPECT_DOUBLE_EQ(v, eng.value(j, i, l, k));
        }
}

TEST(Integrals, NoAccidentalGroupExchangeSymmetry) {
  // Table 1 gives A two symmetry groups (not three): (ij)<->(kl)
  // exchange must NOT be a symmetry in general.
  auto ir = tensor::Irreps::trivial(8);
  chem::IntegralEngine eng(8, ir, 7);
  bool found_asymmetric = false;
  for (std::size_t i = 0; i < 8 && !found_asymmetric; ++i)
    for (std::size_t k = 0; k < 8 && !found_asymmetric; ++k)
      if (eng.value(i, 0, k, 1) != eng.value(k, 1, i, 0))
        found_asymmetric = true;
  EXPECT_TRUE(found_asymmetric);
}

TEST(Integrals, SpatialSymmetryZeroes) {
  auto ir = tensor::Irreps::contiguous(8, 4);
  chem::IntegralEngine eng(8, ir, 42);
  for (std::size_t i = 0; i < 8; ++i)
    for (std::size_t j = 0; j < 8; ++j)
      for (std::size_t k = 0; k < 8; ++k)
        for (std::size_t l = 0; l < 8; ++l)
          if (!ir.allowed(i, j, k, l)) {
            EXPECT_DOUBLE_EQ(eng.value(i, j, k, l), 0.0);
          }
}

TEST(Integrals, PureFunctionOfIndices) {
  auto ir = tensor::Irreps::trivial(6);
  chem::IntegralEngine eng(6, ir, 9);
  const double first = eng.value(3, 1, 4, 2);
  for (int r = 0; r < 5; ++r) EXPECT_DOUBLE_EQ(eng.value(3, 1, 4, 2), first);
}

TEST(Integrals, EvaluationCounter) {
  auto ir = tensor::Irreps::trivial(4);
  chem::IntegralEngine eng(4, ir, 1);
  eng.reset_evaluations();
  (void)eng.value(0, 0, 0, 0);
  (void)eng.value(1, 0, 1, 0);
  EXPECT_EQ(eng.evaluations(), 2u);
}

TEST(Integrals, MaterializeMatchesPointwise) {
  auto ir = tensor::Irreps::contiguous(6, 2);
  chem::IntegralEngine eng(6, ir, 5);
  auto a = eng.materialize();
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = 0; j < 6; ++j)
      for (std::size_t k = 0; k < 6; ++k)
        for (std::size_t l = 0; l < 6; ++l)
          EXPECT_DOUBLE_EQ(a(i, j, k, l), eng.value(i, j, k, l));
}

TEST(Integrals, SeedChangesValues) {
  auto ir = tensor::Irreps::trivial(6);
  chem::IntegralEngine e1(6, ir, 1), e2(6, ir, 2);
  EXPECT_NE(e1.value(3, 1, 4, 2), e2.value(3, 1, 4, 2));
}

TEST(Coeffs, OrthogonalAndSymmetryAdapted) {
  for (unsigned s : {1u, 2u, 4u}) {
    auto ir = tensor::Irreps::contiguous(12, s);
    auto b = chem::make_mo_coefficients(ir, 99);
    EXPECT_LT(chem::orthogonality_defect(b), 1e-12);
    for (std::size_t a = 0; a < 12; ++a)
      for (std::size_t i = 0; i < 12; ++i)
        if (ir.of(a) != ir.of(i)) {
          EXPECT_DOUBLE_EQ(b(a, i), 0.0);
        }
  }
}

TEST(Coeffs, NotTheIdentity) {
  auto ir = tensor::Irreps::trivial(8);
  auto b = chem::make_mo_coefficients(ir, 3);
  double off = 0.0;
  for (std::size_t i = 0; i < 8; ++i)
    for (std::size_t j = 0; j < 8; ++j)
      if (i != j) off = std::max(off, std::fabs(b(i, j)));
  EXPECT_GT(off, 0.05);
}

TEST(Molecule, PaperSetHasFiveScaledEntries) {
  auto mols = chem::paper_molecules();
  ASSERT_EQ(mols.size(), 5u);
  for (const auto& m : mols) {
    // 1/8 linear scale of the paper's orbital counts (rounded).
    EXPECT_NEAR(static_cast<double>(m.n_orbitals),
                static_cast<double>(m.paper_n_orbitals) / 8.0, 1.0);
    EXPECT_EQ(m.irrep_order, 8u);
    EXPECT_GT(m.n_occupied, 0u);
    EXPECT_LT(m.n_occupied, m.n_orbitals);
  }
  EXPECT_EQ(chem::paper_molecule("Uracil").n_orbitals, 87u);
  EXPECT_THROW(chem::paper_molecule("Benzene"), fit::PreconditionError);
}

TEST(Molecule, CustomDefaults) {
  auto m = chem::custom_molecule("test", 20, 2);
  EXPECT_EQ(m.n_occupied, 5u);
  EXPECT_THROW(chem::custom_molecule("bad", 1, 1), fit::PreconditionError);
}

TEST(Mp2, OrbitalEnergiesShape) {
  auto eps = chem::synthetic_orbital_energies(10, 3);
  ASSERT_EQ(eps.size(), 10u);
  for (std::size_t p = 0; p < 3; ++p) EXPECT_LT(eps[p], 0.0);
  for (std::size_t p = 3; p < 10; ++p) EXPECT_GT(eps[p], 0.0);
  for (std::size_t p = 1; p < 10; ++p) EXPECT_GE(eps[p], eps[p - 1]);
  EXPECT_THROW(chem::synthetic_orbital_energies(5, 5),
               fit::PreconditionError);
}

TEST(Mp2, EnergyIsFiniteAndScheduleIndependent) {
  auto mol = chem::custom_molecule("mp2test", 8, 2, 77);
  auto prob = core::make_problem(mol);
  auto eps = chem::synthetic_orbital_energies(mol.n_orbitals, mol.n_occupied);

  auto c_ref = core::reference_transform(prob);
  auto c_fused = core::fused1234_transform(prob);
  const double e_ref = chem::mp2_energy(c_ref, mol.n_occupied, eps);
  const double e_fused = chem::mp2_energy(c_fused, mol.n_occupied, eps);
  EXPECT_TRUE(std::isfinite(e_ref));
  EXPECT_NEAR(e_ref, e_fused, 1e-9 * (1.0 + std::fabs(e_ref)));
}

}  // namespace
