// Runtime CPU-dispatch suite: the kernel tables themselves (every
// pointer present at every forced level), the FOURINDEX_CPU resolution
// rules (strict parse, loud clamp to detected features), and the
// cross-level reproducibility contract — every ISA level bit-matches
// the scalar reference on randomized GemmProperty-style cases,
// including under FOURINDEX_DETERMINISTIC.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <iterator>
#include <vector>

#include "blas/dispatch.hpp"
#include "blas/gemm.hpp"
#include "blas/level1.hpp"
#include "blas/tune.hpp"
#include "obs/metrics.hpp"
#include "util/cpuid.hpp"
#include "util/rng.hpp"

namespace {

using fit::blas::IsaLevel;
using fit::blas::Trans;

std::vector<double> random_vec(std::size_t n, std::uint64_t seed) {
  fit::SplitMix64 g(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = g.next_double(-1.0, 1.0);
  return v;
}

// RAII environment override (tests run single-threaded; setenv is safe
// here).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) {
      had_old_ = true;
      old_ = old;
    }
    if (value)
      ::setenv(name, value, 1);
    else
      ::unsetenv(name);
  }
  ~ScopedEnv() {
    if (had_old_)
      ::setenv(name_, old_.c_str(), 1);
    else
      ::unsetenv(name_);
  }

 private:
  const char* name_;
  bool had_old_ = false;
  std::string old_;
};

IsaLevel level_of(int i) { return static_cast<IsaLevel>(i); }

TEST(Dispatch, EveryTableEntryIsNonNullAtEveryLevel) {
  for (int i = 0; i < fit::blas::kNumIsaLevels; ++i) {
    const auto& t = fit::blas::kernel_table_for(level_of(i));
    EXPECT_EQ(t.level, level_of(i));
    EXPECT_NE(t.micro_kernel, nullptr) << fit::blas::isa_name(level_of(i));
    EXPECT_NE(t.pack_a, nullptr);
    EXPECT_NE(t.pack_b, nullptr);
    EXPECT_NE(t.axpy, nullptr);
    EXPECT_NE(t.dot, nullptr);
    EXPECT_NE(t.scal, nullptr);
    EXPECT_NE(t.gemv_n, nullptr);
    EXPECT_NE(t.gemv_t, nullptr);
  }
}

TEST(Dispatch, NamesRoundTripAndParseStrictly) {
  for (int i = 0; i < fit::blas::kNumIsaLevels; ++i) {
    const auto parsed = fit::blas::isa_from_name(
        fit::blas::isa_name(level_of(i)));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, level_of(i));
  }
  EXPECT_FALSE(fit::blas::isa_from_name("AVX").has_value());
  EXPECT_FALSE(fit::blas::isa_from_name("avx512").has_value());
  EXPECT_FALSE(fit::blas::isa_from_name("sse2 ").has_value());
  EXPECT_FALSE(fit::blas::isa_from_name("").has_value());
}

TEST(Dispatch, DetectionIsConsistentWithCpuFeatures) {
  const auto& f = fit::util::cpu_features();
  const IsaLevel d = fit::blas::detected_isa();
  if (f.avx2 && f.fma) {
    EXPECT_EQ(d, IsaLevel::Avx2);
  }
  if (!f.avx) {
    EXPECT_LT(d, IsaLevel::Avx);
  }
  // The detector is stable (cached) across calls.
  EXPECT_EQ(fit::blas::detected_isa(), d);
}

TEST(Dispatch, EnvOverrideSelectsRequestedLevel) {
  for (const char* name : {"scalar", "sse2"}) {
    ScopedEnv env("FOURINDEX_CPU", name);
    EXPECT_EQ(fit::blas::resolve_isa(), *fit::blas::isa_from_name(name));
    // Numeric spelling resolves identically.
    const auto cfg = fit::blas::GemmConfig::autotuned();
    EXPECT_EQ(cfg.isa, *fit::blas::isa_from_name(name));
  }
  {
    ScopedEnv env("FOURINDEX_CPU", "0");
    EXPECT_EQ(fit::blas::resolve_isa(), IsaLevel::Scalar);
  }
}

TEST(Dispatch, RequestAboveDetectedClampsToDetected) {
  // avx2 is the widest level, so this request can only ever clamp
  // down (or be granted exactly on an AVX2 host).
  ScopedEnv env("FOURINDEX_CPU", "avx2");
  EXPECT_EQ(fit::blas::resolve_isa(), fit::blas::detected_isa());
  const auto cfg = fit::blas::GemmConfig::autotuned();
  EXPECT_EQ(cfg.isa, fit::blas::detected_isa());
}

TEST(Dispatch, InvalidEnvFallsBackToDetected) {
  for (const char* bad : {"fastest", "3x", " avx", "-1", "17"}) {
    ScopedEnv env("FOURINDEX_CPU", bad);
    EXPECT_EQ(fit::blas::resolve_isa(), fit::blas::detected_isa()) << bad;
  }
}

TEST(Dispatch, SetGemmConfigClampsIsaToDetected) {
  const auto base = fit::blas::gemm_config();
  auto cfg = base;
  cfg.isa = IsaLevel::Avx2;  // may exceed this host
  fit::blas::set_gemm_config(cfg);
  EXPECT_LE(fit::blas::gemm_config().isa, fit::blas::detected_isa());
  fit::blas::set_gemm_config(base);
}

// The core contract: every runnable level produces bit-identical
// results to the scalar level on randomized shapes spanning the
// micro-tile edge cases, all Trans combinations, padded strides and
// the alpha/beta grid — and FOURINDEX_DETERMINISTIC routes through
// the same scalar table entry, so it bit-matches too.
TEST(DispatchProperty, AllLevelsBitMatchScalarReference) {
  const auto base = fit::blas::gemm_config();
  const IsaLevel widest = fit::blas::detected_isa();

  fit::SplitMix64 g(0xd15ba7c4);
  const std::size_t dims[] = {1, 3, 5, 8, 9, 17, 31, 33, 65, 90};
  const double scalars[] = {0.0, 1.0, -0.5};
  for (int iter = 0; iter < 40; ++iter) {
    const std::size_t m = dims[g.next_below(std::size(dims))];
    const std::size_t n = dims[g.next_below(std::size(dims))];
    const std::size_t k = dims[g.next_below(std::size(dims))];
    const Trans ta = (g.next_u64() & 1) ? Trans::Yes : Trans::No;
    const Trans tb = (g.next_u64() & 1) ? Trans::Yes : Trans::No;
    const double alpha = scalars[g.next_below(std::size(scalars))];
    const double beta = scalars[g.next_below(std::size(scalars))];
    const std::size_t arows = (ta == Trans::No) ? m : k;
    const std::size_t acols = (ta == Trans::No) ? k : m;
    const std::size_t brows = (tb == Trans::No) ? k : n;
    const std::size_t bcols = (tb == Trans::No) ? n : k;
    const std::size_t lda = acols + g.next_below(4);
    const std::size_t ldb = bcols + g.next_below(4);
    const std::size_t ldc = n + g.next_below(4);

    const auto a = random_vec(arows * lda, g.next_u64());
    const auto b = random_vec(brows * ldb, g.next_u64());
    const auto c_init = random_vec(m * ldc, g.next_u64());

    // Scalar level is the reference bits.
    std::vector<double> c_scalar = c_init;
    {
      auto cfg = base;
      cfg.isa = IsaLevel::Scalar;
      cfg.deterministic = false;
      fit::blas::set_gemm_config(cfg);
      fit::blas::gemm(ta, tb, m, n, k, alpha, a.data(), lda, b.data(), ldb,
                      beta, c_scalar.data(), ldc);
    }

    for (int i = 0; i <= static_cast<int>(widest); ++i) {
      for (const bool deterministic : {false, true}) {
        auto cfg = base;
        cfg.isa = level_of(i);
        cfg.deterministic = deterministic;
        fit::blas::set_gemm_config(cfg);
        std::vector<double> c = c_init;
        fit::blas::gemm(ta, tb, m, n, k, alpha, a.data(), lda, b.data(),
                        ldb, beta, c.data(), ldc);
        ASSERT_EQ(0, std::memcmp(c_scalar.data(), c.data(),
                                 c.size() * sizeof(double)))
            << "level=" << fit::blas::isa_name(level_of(i))
            << " deterministic=" << deterministic << " m=" << m << " n=" << n
            << " k=" << k << " ta=" << int(ta) << " tb=" << int(tb)
            << " alpha=" << alpha << " beta=" << beta;
      }
    }
  }
  fit::blas::set_gemm_config(base);
}

// Level-1/level-2 table entries: every level computes the same bits as
// the scalar entry (element-wise ops are order-preserving and dot
// keeps its serial reduction order at every level).
TEST(DispatchProperty, LevelHelpersBitMatchScalar) {
  const auto& scalar = fit::blas::kernel_table_for(IsaLevel::Scalar);
  const IsaLevel widest = fit::blas::detected_isa();
  const std::size_t n = 257;
  const std::size_t m = 19;
  const auto x = random_vec(n, 1);
  const auto amat = random_vec(m * n, 2);
  const auto y0 = random_vec(std::max(m, n), 3);

  for (int i = 1; i <= static_cast<int>(widest); ++i) {
    const auto& t = fit::blas::kernel_table_for(level_of(i));

    auto y_ref = y0, y_t = y0;
    scalar.axpy(n, -1.75, x.data(), y_ref.data());
    t.axpy(n, -1.75, x.data(), y_t.data());
    EXPECT_EQ(0, std::memcmp(y_ref.data(), y_t.data(), n * sizeof(double)));

    EXPECT_EQ(scalar.dot(n, x.data(), y0.data()),
              t.dot(n, x.data(), y0.data()));

    y_ref = y0;
    y_t = y0;
    scalar.scal(n, 0.3, y_ref.data());
    t.scal(n, 0.3, y_t.data());
    EXPECT_EQ(0, std::memcmp(y_ref.data(), y_t.data(), n * sizeof(double)));

    y_ref = y0;
    y_t = y0;
    scalar.gemv_n(m, n, 1.1, amat.data(), n, x.data(), y_ref.data());
    t.gemv_n(m, n, 1.1, amat.data(), n, x.data(), y_t.data());
    EXPECT_EQ(0, std::memcmp(y_ref.data(), y_t.data(), m * sizeof(double)));

    y_ref = y0;
    y_t = y0;
    scalar.gemv_t(m, n, -0.6, amat.data(), n, x.data() /* len >= m */,
                  y_ref.data());
    t.gemv_t(m, n, -0.6, amat.data(), n, x.data(), y_t.data());
    EXPECT_EQ(0, std::memcmp(y_ref.data(), y_t.data(), n * sizeof(double)));
  }
}

// The k-split parallel-reduction driver: numerically equivalent to the
// reference, and — because the chunking depends only on shape and
// blocking — bit-identical across thread counts.
TEST(DispatchKsplit, MatchesReferenceAndIsThreadCountInvariant) {
  const auto base = fit::blas::gemm_config();
  const std::size_t m = 8, n = 64, k = 2048;  // tall-k: the target shape
  const auto a = random_vec(m * k, 7);
  const auto b = random_vec(k * n, 8);
  const auto c_init = random_vec(m * n, 9);

  std::vector<double> c_ref = c_init;
  fit::blas::gemm_reference(Trans::No, Trans::No, m, n, k, 1.0, a.data(), k,
                            b.data(), n, 1.0, c_ref.data(), n);

  for (const std::size_t ksplit : {std::size_t{0}, std::size_t{2},
                                   std::size_t{4}}) {
    std::vector<double> first;
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                      std::size_t{4}}) {
      auto cfg = base;
      cfg.ksplit = ksplit;
      cfg.threads = threads;
      fit::blas::set_gemm_config(cfg);
      std::vector<double> c = c_init;
      fit::blas::gemm(Trans::No, Trans::No, m, n, k, 1.0, a.data(), k,
                      b.data(), n, 1.0, c.data(), n);
      EXPECT_LT(fit::blas::max_abs_diff(m * n, c_ref.data(), c.data()),
                1e-10 * static_cast<double>(k + 1))
          << "ksplit=" << ksplit << " threads=" << threads;
      if (first.empty())
        first = c;
      else
        ASSERT_EQ(0,
                  std::memcmp(first.data(), c.data(), c.size() * sizeof(double)))
            << "ksplit=" << ksplit << " threads=" << threads;
    }
  }
  fit::blas::set_gemm_config(base);
}

TEST(Dispatch, GemmReportsIsaMetric) {
  const auto base = fit::blas::gemm_config();
  auto cfg = base;
  cfg.isa = IsaLevel::Scalar;
  cfg.deterministic = false;
  fit::blas::set_gemm_config(cfg);
  const std::size_t n = 48;
  const auto a = random_vec(n * n, 1);
  const auto b = random_vec(n * n, 2);
  std::vector<double> c(n * n, 0.0);
  fit::blas::gemm(Trans::No, Trans::No, n, n, n, 1.0, a.data(), n, b.data(),
                  n, 0.0, c.data(), n);
  auto& reg = fit::blas::gemm_metrics();
  EXPECT_EQ(reg.value("gemm.isa", 0),
            static_cast<double>(IsaLevel::Scalar));

  // FOURINDEX_DETERMINISTIC routes through the same table slot: the
  // reported level is Scalar even when the config would dispatch
  // wider.
  cfg = base;
  cfg.deterministic = true;
  fit::blas::set_gemm_config(cfg);
  fit::blas::gemm(Trans::No, Trans::No, n, n, n, 1.0, a.data(), n, b.data(),
                  n, 0.0, c.data(), n);
  EXPECT_EQ(reg.value("gemm.isa", 0),
            static_cast<double>(IsaLevel::Scalar));
  fit::blas::set_gemm_config(base);
}

TEST(Roofline, ModelIsSane) {
  EXPECT_GT(fit::blas::estimated_cpu_hz(), 1e8);   // > 100 MHz
  EXPECT_LT(fit::blas::estimated_cpu_hz(), 1e11);  // < 100 GHz
  EXPECT_EQ(fit::blas::isa_flops_per_cycle(IsaLevel::Scalar), 2.0);
  EXPECT_EQ(fit::blas::isa_flops_per_cycle(IsaLevel::Sse2), 4.0);
  EXPECT_EQ(fit::blas::isa_flops_per_cycle(IsaLevel::Avx), 8.0);
  EXPECT_EQ(fit::blas::isa_flops_per_cycle(IsaLevel::Avx2), 8.0);
  const double p1 = fit::blas::roofline_peak_gflops(IsaLevel::Avx, 1);
  EXPECT_GT(p1, 0.0);
  EXPECT_DOUBLE_EQ(fit::blas::roofline_peak_gflops(IsaLevel::Avx, 4),
                   4.0 * p1);
}

TEST(Roofline, CpuHzEnvOverrideWins) {
  // estimated_cpu_hz is cached, so exercise the parse path indirectly:
  // a fresh subprocess would be needed to re-resolve; here we only
  // check the cached value is a fixed point across calls.
  EXPECT_EQ(fit::blas::estimated_cpu_hz(), fit::blas::estimated_cpu_hz());
}

}  // namespace
