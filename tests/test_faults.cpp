// Fault injection, phase-boundary checkpoint/restart, and
// bound-guided graceful degradation.
//
// The deterministic headline scenarios of the robustness work:
//   - a rank killed mid-transform is recovered from the last
//     phase-boundary checkpoint and the Real-mode result is
//     bit-identical to a fault-free run;
//   - a capacity shrink triggers a replan that downgrades the fusion
//     choice exactly when the Thm 5.1 / Thm 6.2 conditions fail;
//   - an exhausted retry budget raises FaultError instead of hanging.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>

#include "bounds/transform_bounds.hpp"
#include "chem/molecule.hpp"
#include "chem/mp2.hpp"
#include "core/planner.hpp"
#include "core/problem.hpp"
#include "core/schedules_par.hpp"
#include "core/transform.hpp"
#include "ga/global_array.hpp"
#include "obs/bench_json.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/cluster.hpp"
#include "runtime/faults.hpp"
#include "runtime/machine.hpp"
#include "tensor/tiling.hpp"
#include "util/hash.hpp"

namespace {

using namespace fit;
using bounds::FusionChoice;
using runtime::Cluster;
using runtime::ExecutionMode;
using runtime::FaultEvent;
using runtime::FaultInjector;
using runtime::FaultKind;
using runtime::MachineConfig;

MachineConfig fault_machine(std::size_t nodes, std::size_t rpn,
                            double mem_per_node = 64e6,
                            double disk_bps = 1e9) {
  MachineConfig m;
  m.name = "fault-test";
  m.n_nodes = nodes;
  m.ranks_per_node = rpn;
  m.mem_per_node_bytes = mem_per_node;
  m.flops_per_rank = 1e9;
  m.integrals_per_sec = 1e8;
  m.net_bandwidth_bps = 1e9;
  m.net_latency_s = 1e-6;
  m.local_bandwidth_bps = 1e10;
  m.disk_bandwidth_bps = disk_bps;
  m.disk_latency_s = 1e-3;
  return m;
}

core::Problem small_problem(std::size_t n = 10, unsigned s = 2) {
  return core::make_problem(chem::custom_molecule("faulty", n, s, 17 * n + s));
}

FaultEvent kill_event(std::size_t phase, std::size_t rank) {
  FaultEvent ev;
  ev.kind = FaultKind::KillRank;
  ev.phase = phase;
  ev.rank = rank;
  return ev;
}

FaultEvent transient_event(std::size_t phase, std::size_t rank,
                           std::size_t count) {
  FaultEvent ev;
  ev.kind = FaultKind::TransientOp;
  ev.phase = phase;
  ev.rank = rank;
  ev.count = count;
  return ev;
}

// ---- FaultInjector determinism --------------------------------------

TEST(FaultInjector, DecisionsArePureFunctionsOfTheSeed) {
  FaultInjector a(42), b(42), c(43);
  a.set_kill_prob(0.3);
  b.set_kill_prob(0.3);
  c.set_kill_prob(0.3);
  a.set_op_failure_prob(0.3);
  b.set_op_failure_prob(0.3);
  c.set_op_failure_prob(0.3);
  bool any_differs = false;
  for (std::size_t phase = 0; phase < 4; ++phase)
    for (std::size_t rank = 0; rank < 4; ++rank) {
      EXPECT_EQ(a.kill_roll(phase, rank), b.kill_roll(phase, rank));
      any_differs |= a.kill_roll(phase, rank) != c.kill_roll(phase, rank);
      for (std::size_t op = 0; op < 8; ++op) {
        EXPECT_EQ(a.should_fail_op(phase, 0, rank, op),
                  b.should_fail_op(phase, 0, rank, op));
        any_differs |= a.should_fail_op(phase, 1, rank, op) !=
                       c.should_fail_op(phase, 1, rank, op);
      }
    }
  EXPECT_TRUE(any_differs);  // a different seed gives a different storm
}

TEST(FaultInjector, InertByDefaultAndValidatesProbabilities) {
  FaultInjector inj;
  EXPECT_FALSE(inj.armed());
  EXPECT_FALSE(inj.kill_roll(0, 0));
  EXPECT_FALSE(inj.should_fail_op(0, 0, 0, 0));
  EXPECT_THROW(inj.set_kill_prob(1.5), PreconditionError);
  EXPECT_THROW(inj.set_op_failure_prob(-0.1), PreconditionError);
  inj.set_op_failure_prob(1.0);
  EXPECT_TRUE(inj.armed());
  EXPECT_TRUE(inj.should_fail_op(3, 1, 2, 7));
}

// ---- rank death + checkpoint/restart --------------------------------

TEST(FaultRecovery, KilledRankIsRecoveredBitIdentically) {
  const auto p = small_problem();
  core::ParOptions opt;
  opt.tile = 4;
  opt.tile_l = 2;

  Cluster clean(fault_machine(2, 2), ExecutionMode::Real);
  const auto ref = core::unfused_par_transform(p, clean, opt);
  ASSERT_TRUE(ref.c.has_value());

  Cluster faulty(fault_machine(2, 2), ExecutionMode::Real);
  faulty.enable_recovery();
  FaultInjector inj(7);
  inj.schedule(kill_event(/*phase=*/2, /*rank=*/1));  // boundary before c2
  faulty.install_faults(inj);
  const auto got = core::unfused_par_transform(p, faulty, opt);
  ASSERT_TRUE(got.c.has_value());

  EXPECT_EQ(got.c->max_abs_diff(*ref.c), 0.0);  // bit-identical
  const auto eps = chem::synthetic_orbital_energies(p.n(), p.n() / 2);
  EXPECT_EQ(chem::mp2_energy(*got.c, p.n() / 2, eps),
            chem::mp2_energy(*ref.c, p.n() / 2, eps));

  const auto& reg = faulty.metrics();
  EXPECT_EQ(reg.sum("fault.kills"), 1.0);
  EXPECT_GE(reg.sum("checkpoint.writes"), 2.0);
  EXPECT_GE(reg.sum("checkpoint.restores"), 1.0);
  EXPECT_GT(reg.sum("checkpoint.bytes"), 0.0);
  EXPECT_EQ(faulty.n_live(), 3u);
  EXPECT_TRUE(faulty.is_dead(1));
  // Recovery traffic is charged: the faulty run is slower, not free.
  EXPECT_GT(faulty.sim_time(), clean.sim_time());
}

TEST(FaultRecovery, RankDeathWithoutRecoveryIsACheckpointError) {
  const auto p = small_problem(8, 1);
  core::ParOptions opt;
  opt.tile = 4;
  Cluster cl(fault_machine(2, 2, 64e6, /*disk_bps=*/0),
             ExecutionMode::Real);
  FaultInjector inj(3);
  inj.schedule(kill_event(1, 0));
  cl.install_faults(inj);
  EXPECT_THROW(core::unfused_par_transform(p, cl, opt), CheckpointError);
}

TEST(FaultRecovery, AllRanksDeadIsAFaultError) {
  Cluster cl(fault_machine(2, 1), ExecutionMode::Simulate);
  FaultInjector inj(5);
  inj.schedule(kill_event(0, 0));
  inj.schedule(kill_event(0, 1));
  cl.install_faults(inj);
  EXPECT_THROW(cl.run_phase("noop", [](runtime::RankCtx&) {}), FaultError);
}

TEST(FaultRecovery, EnableRecoveryRequiresAFileSystem) {
  Cluster cl(fault_machine(1, 2, 64e6, /*disk_bps=*/0),
             ExecutionMode::Simulate);
  EXPECT_THROW(cl.enable_recovery(), PreconditionError);
}

// ---- transient op faults + bounded retry ----------------------------

TEST(FaultRecovery, TransientOpFaultsAreRetriedBitIdentically) {
  const auto p = small_problem();
  core::ParOptions opt;
  opt.tile = 4;

  Cluster clean(fault_machine(2, 2), ExecutionMode::Real);
  const auto ref = core::unfused_par_transform(p, clean, opt);

  Cluster faulty(fault_machine(2, 2), ExecutionMode::Real);
  faulty.enable_recovery();
  FaultInjector inj(11);
  // Rank 0's first two one-sided ops of phase "c1" fail: attempt 0 and
  // the first retry both abort, the second retry drains through.
  inj.schedule(transient_event(/*phase=*/1, /*rank=*/0, /*count=*/2));
  faulty.install_faults(inj);
  const auto got = core::unfused_par_transform(p, faulty, opt);

  ASSERT_TRUE(got.c.has_value());
  EXPECT_EQ(got.c->max_abs_diff(*ref.c), 0.0);
  const auto& reg = faulty.metrics();
  EXPECT_EQ(reg.sum("fault.transient_ops"), 2.0);
  EXPECT_EQ(reg.sum("retry.attempts"), 2.0);
  EXPECT_EQ(reg.sum("retry.exhausted"), 0.0);
  EXPECT_GE(reg.sum("checkpoint.restores"), 2.0);  // one rollback per retry
}

TEST(FaultRecovery, ExhaustedRetryBudgetRaisesFaultError) {
  const auto p = small_problem(8, 1);
  core::ParOptions opt;
  opt.tile = 4;
  Cluster cl(fault_machine(2, 2), ExecutionMode::Real);
  runtime::CheckpointConfig cfg;
  cfg.max_retries = 2;
  cl.enable_recovery(cfg);
  FaultInjector inj(13);
  inj.schedule(transient_event(1, 0, static_cast<std::size_t>(-1)));
  cl.install_faults(inj);
  EXPECT_THROW(core::unfused_par_transform(p, cl, opt), FaultError);
  EXPECT_EQ(cl.metrics().sum("retry.exhausted"), 1.0);
  EXPECT_EQ(cl.metrics().sum("retry.attempts"), 3.0);  // budget + 1
}

TEST(FaultRecovery, WatchdogRaisesTimeoutError) {
  const auto p = small_problem(8, 1);
  core::ParOptions opt;
  opt.tile = 4;
  Cluster cl(fault_machine(2, 2), ExecutionMode::Real);
  runtime::CheckpointConfig cfg;
  cfg.max_retries = 100;           // budget alone would retry for long
  cfg.backoff_s = 1.0;
  cfg.phase_sim_timeout_s = 2.5;   // 1.0 + 2.0 backoff crosses this
  cl.enable_recovery(cfg);
  FaultInjector inj(17);
  inj.schedule(transient_event(1, 0, static_cast<std::size_t>(-1)));
  cl.install_faults(inj);
  EXPECT_THROW(core::unfused_par_transform(p, cl, opt), TimeoutError);
}

// ---- capacity / bandwidth degradation -------------------------------

TEST(FaultDegradation, CapacityShrinkAndDeathLowerAggregateCapacity) {
  Cluster cl(fault_machine(2, 2, 64e6), ExecutionMode::Simulate);
  const double full = cl.aggregate_capacity_bytes();
  EXPECT_EQ(full, cl.machine().aggregate_memory_bytes());

  FaultInjector inj(1);
  FaultEvent shrink;
  shrink.kind = FaultKind::CapacityShrink;
  shrink.phase = 0;
  shrink.factor = 0.5;
  inj.schedule(shrink);
  cl.install_faults(inj);
  cl.run_phase("noop", [](runtime::RankCtx&) {});
  EXPECT_DOUBLE_EQ(cl.aggregate_capacity_bytes(), 0.5 * full);
  EXPECT_EQ(cl.metrics().sum("fault.capacity_shrinks"), 1.0);

  cl.kill_rank(3);
  EXPECT_DOUBLE_EQ(cl.aggregate_capacity_bytes(), 0.375 * full);
}

TEST(FaultDegradation, BandwidthDegradeSlowsTheSimulatedClock) {
  const auto run = [](bool degrade) {
    Cluster cl(fault_machine(2, 1), ExecutionMode::Simulate);
    if (degrade) {
      FaultInjector inj(1);
      FaultEvent ev;
      ev.kind = FaultKind::NetDegrade;
      ev.phase = 0;
      ev.factor = 0.1;
      inj.schedule(ev);
      cl.install_faults(inj);
    }
    cl.run_phase("xfer", [](runtime::RankCtx& ctx) {
      ctx.charge_transfer(1 - ctx.rank(), 1e8);
    });
    return cl.sim_time();
  };
  EXPECT_GT(run(true), 5.0 * run(false));
}

// ---- bound-guided replanning (Thm 5.1 / 5.2 / 6.2) ------------------

TEST(Replan, DowngradesExactlyAtTheCapacityThresholds) {
  const double n = 24, s = 1;
  const auto sz = tensor::approx_sizes(n, s);
  const double full_reuse = bounds::full_reuse_min_fast_memory(sz, n);
  const double pair = bounds::fused_pair_min_fast_memory(n);
  ASSERT_GT(full_reuse, pair);

  const auto base = core::plan_fusion(n, s, 2.0 * full_reuse);
  EXPECT_EQ(base.selected, FusionChoice::Fused1234);

  // Exactly at the Thm 6.2 threshold full reuse still stands ...
  EXPECT_EQ(core::replan_fusion(base, full_reuse).selected,
            FusionChoice::Fused1234);
  // ... one element below it the selection must walk down Thm 5.2's
  // order, and the plan records the degradation.
  const auto below = core::replan_fusion(base, full_reuse - 1.0);
  EXPECT_NE(below.selected, FusionChoice::Fused1234);
  bool noted = false;
  for (const auto& e : below.entries)
    if (e.choice == below.selected)
      noted = e.note.find("degraded") != std::string::npos;
  EXPECT_TRUE(noted);

  // Below the Thm 5.1 pair-fusion threshold no fusion is useful: the
  // plan falls all the way back to the unfused chain.
  EXPECT_EQ(core::replan_fusion(base, pair - 1.0).selected,
            FusionChoice::Unfused);
  // replan on a replanned plan keeps the problem parameters.
  EXPECT_EQ(core::replan_fusion(below, 2.0 * full_reuse).selected,
            FusionChoice::Fused1234);
}

TEST(Replan, ResilientTransformDowngradesOnCapacityShrink) {
  const std::size_t n = 16;
  const auto p = small_problem(n, 1);
  core::ParOptions opt;
  opt.tile = 4;
  opt.tile_l = 1;  // keeps the fused-inner slices well under the peak

  // Tiled (not packed) footprints of the distributed arrays: the
  // unfused chain's peak live pair is |O1|+|O2| in tile granularity.
  const double tile4 = static_cast<double>(opt.tile * opt.tile) *
                       static_cast<double>(opt.tile * opt.tile);
  const double nt = static_cast<double>(n / opt.tile);
  const double pair_tiles = nt * (nt + 1) / 2;
  const double o1_words = nt * nt * pair_tiles * tile4;
  const double o2_words = pair_tiles * pair_tiles * tile4;
  const double pair_peak_bytes = 8.0 * (o1_words + o2_words);
  // The shrunken aggregate must separate the two schedules: too small
  // for the unfused intermediates, roomy for the fused-inner slices.
  const double target = 0.9 * pair_peak_bytes;
  ASSERT_GT(target,
            1.5 * 8.0 * bounds::eq8_global_memory(
                            static_cast<double>(n),
                            static_cast<double>(opt.tile_l), 1.0));

  const double full = 1.25 * pair_peak_bytes;  // unfused fits initially
  MachineConfig m = fault_machine(2, 1, full / 2.0, /*disk_bps=*/0);
  Cluster cl(m, ExecutionMode::Real);
  ASSERT_TRUE(core::unfused_fits(p, cl));

  FaultInjector inj(2);
  FaultEvent shrink;
  shrink.kind = FaultKind::CapacityShrink;
  shrink.phase = 1;  // boundary before c1: O1 is live, O2 comes next
  shrink.factor = target / full;
  inj.schedule(shrink);
  cl.install_faults(inj);

  const auto got = core::resilient_transform(p, cl, opt);
  EXPECT_EQ(got.stats.schedule, "resilient(unfused->fused-inner)");
  EXPECT_NE(got.stats.note.find("downgraded"), std::string::npos);
  EXPECT_EQ(cl.metrics().sum("plan.replans"), 1.0);

  ASSERT_TRUE(got.c.has_value());
  const auto ref = core::reference_transform(p);
  EXPECT_LT(got.c->max_abs_diff(ref), 1e-9);
}

TEST(Replan, ResilientTransformUsesUnfusedWhenItFits) {
  const auto p = small_problem(8, 1);
  Cluster cl(fault_machine(2, 2), ExecutionMode::Real);
  core::TransformOptions opt;
  opt.schedule = core::Schedule::Resilient;
  opt.par.tile = 4;
  const auto out = core::four_index_transform(p, opt, &cl);
  EXPECT_EQ(out.par.schedule, "resilient(unfused)");
  EXPECT_EQ(core::to_string(core::Schedule::Resilient), "resilient");
  const auto ref = core::reference_transform(p);
  ASSERT_TRUE(out.c.has_value());
  EXPECT_LT(out.c->max_abs_diff(ref), 1e-9);
}

// ---- observability --------------------------------------------------

TEST(FaultObservability, BenchReportWithFaultMetricsValidates) {
  const auto p = small_problem(8, 1);
  core::ParOptions opt;
  opt.tile = 4;
  opt.gather_result = false;
  Cluster cl(fault_machine(2, 2), ExecutionMode::Simulate);
  cl.enable_recovery();
  FaultInjector inj(9);
  inj.schedule(kill_event(2, 1));
  cl.install_faults(inj);
  core::unfused_par_transform(p, cl, opt);

  obs::BenchReport report("test_fault_recovery");
  report.add_scalar("sim_time_s", cl.sim_time());
  report.add_metrics("faulty", cl.metrics());
  std::string why;
  EXPECT_TRUE(obs::validate_bench_json(report.to_json(), &why)) << why;
  const std::string doc = report.to_json().dump();
  EXPECT_NE(doc.find("fault.kills"), std::string::npos);
  EXPECT_NE(doc.find("checkpoint.bytes"), std::string::npos);
  EXPECT_NE(doc.find("retry.attempts"), std::string::npos);
}

// ---- correlated failure domains (node kills) ------------------------

FaultEvent node_kill_event(std::size_t phase, std::size_t domain) {
  FaultEvent ev;
  ev.kind = FaultKind::KillNode;
  ev.phase = phase;
  ev.rank = domain;  // the rank field carries the domain index
  return ev;
}

TEST(FaultDomains, GroupingFollowsTheMachineAndTheEnvOverride) {
  {
    Cluster cl(fault_machine(4, 2), ExecutionMode::Simulate);
    EXPECT_EQ(cl.domain_ranks(), 2u);
    EXPECT_EQ(cl.n_domains(), 4u);
    EXPECT_EQ(cl.domain_of(0), 0u);
    EXPECT_EQ(cl.domain_of(5), 2u);
  }
  ::setenv("FOURINDEX_RANKS_PER_NODE", "4", 1);
  {
    Cluster cl(fault_machine(4, 2), ExecutionMode::Simulate);
    EXPECT_EQ(cl.domain_ranks(), 4u);
    EXPECT_EQ(cl.n_domains(), 2u);
    EXPECT_EQ(cl.domain_of(5), 1u);
  }
  // Strict parsing: a garbled override warns and falls back to the
  // machine's grouping instead of truncating to a numeric prefix.
  ::setenv("FOURINDEX_RANKS_PER_NODE", "4abc", 1);
  {
    Cluster cl(fault_machine(4, 2), ExecutionMode::Simulate);
    EXPECT_EQ(cl.domain_ranks(), 2u);
  }
  // An oversized override clamps to one all-encompassing domain.
  ::setenv("FOURINDEX_RANKS_PER_NODE", "100", 1);
  {
    Cluster cl(fault_machine(4, 2), ExecutionMode::Simulate);
    EXPECT_EQ(cl.domain_ranks(), 8u);
    EXPECT_EQ(cl.n_domains(), 1u);
  }
  ::unsetenv("FOURINDEX_RANKS_PER_NODE");
}

TEST(FaultDomains, NodeKillIsRecoveredBitIdentically) {
  const auto p = small_problem();
  core::ParOptions opt;
  opt.tile = 4;
  opt.tile_l = 4;

  Cluster clean(fault_machine(4, 2), ExecutionMode::Real);
  const auto ref = core::fused_par_transform(p, clean, opt);
  ASSERT_TRUE(ref.c.has_value());

  Cluster faulty(fault_machine(4, 2), ExecutionMode::Real);
  faulty.enable_recovery();
  FaultInjector inj(21);
  // Boundary of slice 1's c2: both ranks of node 1 die at once, taking
  // carried C tiles (last written in slice 0's c4) with them.
  inj.schedule(node_kill_event(/*phase=*/7, /*domain=*/1));
  faulty.install_faults(inj);
  const auto got = core::fused_par_transform(p, faulty, opt);
  ASSERT_TRUE(got.c.has_value());

  EXPECT_EQ(got.c->max_abs_diff(*ref.c), 0.0);
  EXPECT_TRUE(faulty.is_dead(2));
  EXPECT_TRUE(faulty.is_dead(3));
  EXPECT_EQ(faulty.n_live(), 6u);
  const auto& reg = faulty.metrics();
  EXPECT_EQ(reg.sum("fault.domain_kills"), 1.0);
  EXPECT_EQ(reg.sum("fault.kills"), 2.0);
  EXPECT_EQ(got.stats.fault_domain_kills, 1.0);
  EXPECT_GE(reg.sum("checkpoint.restores"), 1.0);
}

TEST(FaultDomains, CounterSurvivesItsHomeNodeDeath) {
  // The c2 task counter's home rank is the stable FNV-1a hash of the
  // label; kill its whole node at the c2 boundary under
  // Balance::Counter. The already-planned claims of the dead ranks
  // are adopted by survivors and the counter re-homes — the result
  // must not change by a bit.
  const auto p = small_problem();
  core::ParOptions opt;
  opt.tile = 4;
  opt.balance = ga::Balance::Counter;

  Cluster clean(fault_machine(2, 2), ExecutionMode::Real);
  const auto ref = core::unfused_par_transform(p, clean, opt);
  ASSERT_TRUE(ref.c.has_value());

  Cluster faulty(fault_machine(2, 2), ExecutionMode::Real);
  faulty.enable_recovery();
  const std::size_t home =
      static_cast<std::size_t>(util::fnv1a("c2")) % faulty.n_ranks();
  FaultInjector inj(23);
  inj.schedule(node_kill_event(/*phase=*/2, faulty.domain_of(home)));
  faulty.install_faults(inj);
  const auto got = core::unfused_par_transform(p, faulty, opt);
  ASSERT_TRUE(got.c.has_value());

  EXPECT_EQ(got.c->max_abs_diff(*ref.c), 0.0);
  EXPECT_TRUE(faulty.is_dead(home));
  const auto& reg = faulty.metrics();
  EXPECT_GT(reg.sum("sched.orphans_adopted"), 0.0);
  EXPECT_GE(reg.sum("sched.counter_reowns"), 1.0);
}

TEST(FaultDomains, DoubleFaultDuringRetryBackoffIsAbsorbed) {
  // A transient op failure aborts c1's first attempt; while the retry
  // backoff is pending, a whole node dies. The kill is applied after
  // the rollback, the node's tiles are re-owned and restored, and the
  // retry runs on the survivors — still bit-identical.
  const auto p = small_problem();
  core::ParOptions opt;
  opt.tile = 4;

  Cluster clean(fault_machine(4, 2), ExecutionMode::Real);
  const auto ref = core::unfused_par_transform(p, clean, opt);
  ASSERT_TRUE(ref.c.has_value());

  Cluster faulty(fault_machine(4, 2), ExecutionMode::Real);
  faulty.enable_recovery();
  FaultInjector inj(29);
  inj.schedule(transient_event(/*phase=*/1, /*rank=*/0, /*count=*/1));
  FaultEvent late = node_kill_event(/*phase=*/1, /*domain=*/1);
  late.attempt = 1;  // fires inside attempt 0's backoff window
  inj.schedule(late);
  faulty.install_faults(inj);
  const auto got = core::unfused_par_transform(p, faulty, opt);
  ASSERT_TRUE(got.c.has_value());

  EXPECT_EQ(got.c->max_abs_diff(*ref.c), 0.0);
  const auto& reg = faulty.metrics();
  EXPECT_EQ(reg.sum("retry.attempts"), 1.0);
  EXPECT_EQ(reg.sum("fault.domain_kills"), 1.0);
  EXPECT_EQ(reg.sum("fault.kills"), 2.0);
  EXPECT_EQ(faulty.n_live(), 6u);
}

// ---- multi-epoch verified checkpoint store --------------------------

TEST(CheckpointStore, KeepEpochsFollowsConfigAndEnv) {
  {
    Cluster cl(fault_machine(2, 2), ExecutionMode::Simulate);
    runtime::CheckpointConfig cfg;
    cfg.keep_epochs = 5;
    cl.enable_recovery(cfg);
    EXPECT_EQ(cl.checkpoints()->keep_epochs(), 5u);
  }
  ::setenv("FOURINDEX_CKPT_KEEP", "3", 1);
  {
    Cluster cl(fault_machine(2, 2), ExecutionMode::Simulate);
    cl.enable_recovery();
    EXPECT_EQ(cl.checkpoints()->keep_epochs(), 3u);
  }
  ::setenv("FOURINDEX_CKPT_KEEP", "zero", 1);
  {
    // Strict parsing: a garbled retention depth refuses to start
    // rather than silently running with the default.
    Cluster cl(fault_machine(2, 2), ExecutionMode::Simulate);
    EXPECT_THROW(cl.enable_recovery(), ParseError);
  }
  ::unsetenv("FOURINDEX_CKPT_KEEP");
}

TEST(CheckpointStore, CorruptionFallsBackToAnOlderVerifiedEpoch) {
  const auto p = small_problem();
  core::ParOptions opt;
  opt.tile = 4;
  opt.tile_l = 4;

  Cluster clean(fault_machine(4, 2), ExecutionMode::Real);
  const auto ref = core::fused_par_transform(p, clean, opt);
  ASSERT_TRUE(ref.c.has_value());

  Cluster faulty(fault_machine(4, 2), ExecutionMode::Real);
  faulty.enable_recovery();
  FaultInjector inj(31);
  inj.schedule(node_kill_event(/*phase=*/7, /*domain=*/0));
  FaultEvent rot;
  rot.kind = FaultKind::CkptCorrupt;
  rot.phase = 7;
  rot.count = static_cast<std::size_t>(-1);  // every at-rest copy
  rot.depth = 1;                             // newest generation only
  inj.schedule(rot);
  faulty.install_faults(inj);
  const auto got = core::fused_par_transform(p, faulty, opt);
  ASSERT_TRUE(got.c.has_value());

  // The newest generation's carried C copies were rotted, so the dead
  // node's C tiles came from the previous verified epoch — observably
  // (fallback > 0), and still bit-exact (never zero-filled).
  EXPECT_EQ(got.c->max_abs_diff(*ref.c), 0.0);
  EXPECT_GT(got.stats.recovery_fallback_epochs, 0.0);
  EXPECT_GT(got.stats.ckpt_verify_failures, 0.0);
  const auto& reg = faulty.metrics();
  EXPECT_GT(reg.sum("fault.ckpt_corrupts"), 0.0);
  EXPECT_EQ(reg.sum("checkpoint.zero_fills"), 0.0);
  // The rot that recovery did not consume is healed at the next
  // checkpoint: carried-copy verification fails and the tile is
  // rewritten fresh from the live array.
  EXPECT_GT(reg.sum("checkpoint.scrub_repairs"), 0.0);
}

TEST(CheckpointStore, TornWriteNeverPublishesAPartialEpoch) {
  Cluster cl(fault_machine(2, 2), ExecutionMode::Real);
  runtime::CheckpointConfig cfg;
  cfg.max_retries = 0;  // the first I/O fault is fatal, no retry
  cl.enable_recovery(cfg);
  std::vector<tensor::Tiling> dims = {tensor::Tiling(8, 2)};  // 4 tiles
  ga::GlobalArray a(cl, "torn", dims);

  auto write_all = [&](double base) {
    return [&a, base](runtime::RankCtx& ctx) {
      if (ctx.rank() != 0) return;
      for (std::size_t t = 0; t < 4; ++t) {
        std::vector<double> buf = {base + double(t), 0.0};
        a.put(ctx, std::vector<std::size_t>{t}, buf.data());
      }
    };
  };
  cl.run_phase("w0", write_all(10.0));  // publishes generation 1
  ASSERT_EQ(cl.checkpoints()->n_generations(), 1u);

  FaultInjector inj(37);
  FaultEvent io;
  io.kind = FaultKind::CkptIo;
  io.phase = 1;
  io.count = 1;
  inj.schedule(io);
  cl.install_faults(inj);
  // The phase body succeeds; the checkpoint write at its barrier is
  // torn before the manifest is published and, with no retry budget,
  // surfaces as CheckpointError — the previous epoch stays visible.
  EXPECT_THROW(cl.run_phase("w1", write_all(20.0)), CheckpointError);
  EXPECT_EQ(cl.checkpoints()->n_generations(), 1u);
  EXPECT_EQ(cl.metrics().sum("checkpoint.io_faults"), 1.0);

  // Recovery after the torn write restores the last *published* cut:
  // the dead node's tiles (round-robin owners 2 and 3) come back with
  // their w0 content, while survivor-held tiles keep the w1 values
  // the aborted epoch never snapshotted.
  cl.kill_domain(1);
  cl.checkpoints()->restore_domain(std::vector<std::size_t>{2, 3});
  for (std::size_t t = 0; t < 4; ++t)
    EXPECT_DOUBLE_EQ(a.peek(std::vector<std::size_t>{2 * t}),
                     (t < 2 ? 20.0 : 10.0) + double(t));
}

TEST(CheckpointStore, IoFaultsAreAbsorbedByBoundedRetry) {
  Cluster cl(fault_machine(2, 2), ExecutionMode::Real);
  cl.enable_recovery();  // default budget: 3 retries
  std::vector<tensor::Tiling> dims = {tensor::Tiling(8, 2)};
  ga::GlobalArray a(cl, "flaky-pfs", dims);

  FaultInjector inj(41);
  FaultEvent io;
  io.kind = FaultKind::CkptIo;
  io.phase = 0;
  io.count = 2;  // two consecutive write attempts fail, the third lands
  inj.schedule(io);
  cl.install_faults(inj);
  cl.run_phase("w0", [&](runtime::RankCtx& ctx) {
    if (ctx.rank() != 0) return;
    for (std::size_t t = 0; t < 4; ++t) {
      std::vector<double> buf = {1.0 + double(t), 0.0};
      a.put(ctx, std::vector<std::size_t>{t}, buf.data());
    }
  });
  EXPECT_EQ(cl.checkpoints()->n_generations(), 1u);
  EXPECT_EQ(cl.metrics().sum("checkpoint.io_faults"), 2.0);
  EXPECT_EQ(cl.metrics().sum("checkpoint.io_retries"), 2.0);
  EXPECT_GT(cl.sim_time(), 0.0);  // the backoff was charged, not free
}

TEST(CheckpointStore, ZeroFillOnlyWhenEveryGenerationIsBad) {
  Cluster cl(fault_machine(2, 2), ExecutionMode::Real);
  cl.enable_recovery();  // keeps 2 generations
  std::vector<tensor::Tiling> dims = {tensor::Tiling(8, 2)};
  ga::GlobalArray a(cl, "doomed", dims);
  cl.run_phase("w0", [&](runtime::RankCtx& ctx) {
    if (ctx.rank() != 0) return;
    for (std::size_t t = 0; t < 4; ++t) {
      std::vector<double> buf = {5.0 + double(t), 0.0};
      a.put(ctx, std::vector<std::size_t>{t}, buf.data());
    }
  });
  cl.run_phase("idle", [](runtime::RankCtx&) {});
  ASSERT_EQ(cl.checkpoints()->n_generations(), 2u);

  // Catastrophic rot: every copy in every retained generation.
  cl.checkpoints()->inject_corruption(/*phase=*/2,
                                      static_cast<std::size_t>(-1),
                                      /*depth=*/2);
  cl.kill_domain(1);
  cl.checkpoints()->restore_domain(std::vector<std::size_t>{2, 3});

  const auto& reg = cl.metrics();
  const double dead_tiles = reg.sum("checkpoint.zero_fills");
  EXPECT_GT(dead_tiles, 0.0);
  // Both generations were tried and failed verification per tile.
  EXPECT_EQ(reg.sum("checkpoint.verify_failures"), 2.0 * dead_tiles);
  EXPECT_EQ(reg.sum("recovery.fallback_epochs"), 0.0);
  // The loss is surfaced as zeros, never as stale or garbage data.
  bool saw_zero = false;
  for (std::size_t t = 0; t < 4; ++t)
    if (a.tile_write_epoch(t) == 0) {
      saw_zero = true;
      EXPECT_DOUBLE_EQ(a.peek(std::vector<std::size_t>{2 * t}), 0.0);
    }
  EXPECT_TRUE(saw_zero);
}

TEST(CheckpointStore, ForgetDropsSnapshotsFromEveryGeneration) {
  Cluster cl(fault_machine(2, 2), ExecutionMode::Real);
  cl.enable_recovery();
  auto a = std::make_unique<ga::GlobalArray>(
      cl, "ephemeral", std::vector<tensor::Tiling>{tensor::Tiling(8, 2)});
  cl.run_phase("w0", [&](runtime::RankCtx& ctx) {
    if (ctx.rank() != 0) return;
    for (std::size_t t = 0; t < 4; ++t) {
      std::vector<double> buf = {1.0, 2.0};
      a->put(ctx, std::vector<std::size_t>{t}, buf.data());
    }
  });
  cl.run_phase("idle", [](runtime::RankCtx&) {});
  ASSERT_EQ(cl.checkpoints()->n_generations(), 2u);
  const double gc_before = cl.metrics().sum("checkpoint.gc_bytes");

  // Destroying the array forgets its snapshots in *both* live
  // generations; the freed store bytes are accounted as GC.
  a.reset();
  const double freed = cl.metrics().sum("checkpoint.gc_bytes") - gc_before;
  EXPECT_DOUBLE_EQ(freed, 2.0 * 4 * 2 * 8.0);  // 2 gens x 4 tiles x 2 els

  // The store still works after the forget: later arrays checkpoint
  // and restore cleanly across the same generations.
  ga::GlobalArray b(cl, "later",
                    std::vector<tensor::Tiling>{tensor::Tiling(8, 2)});
  cl.run_phase("w1", [&](runtime::RankCtx& ctx) {
    if (ctx.rank() != 0) return;
    for (std::size_t t = 0; t < 4; ++t) {
      std::vector<double> buf = {9.0, 9.0};
      b.put(ctx, std::vector<std::size_t>{t}, buf.data());
    }
  });
  cl.kill_domain(1);
  cl.checkpoints()->restore_domain(std::vector<std::size_t>{2, 3});
  for (std::size_t t = 0; t < 4; ++t)
    EXPECT_DOUBLE_EQ(b.peek(std::vector<std::size_t>{2 * t}), 9.0);
}

TEST(CheckpointStore, NeverWrittenTilesRestoreAsZerosUnderSteal) {
  // A node dies right after arrays are created but before anything is
  // written to them; under Balance::Steal the survivors adopt the dead
  // queues. The never-written tiles restore as true zeros (no disk
  // read, no zero-fill alarm) and the result is still bit-identical.
  const auto p = small_problem();
  core::ParOptions opt;
  opt.tile = 4;
  opt.tile_l = 4;
  opt.balance = ga::Balance::Steal;

  Cluster clean(fault_machine(4, 2), ExecutionMode::Real);
  const auto ref = core::fused_par_transform(p, clean, opt);
  ASSERT_TRUE(ref.c.has_value());

  Cluster faulty(fault_machine(4, 2), ExecutionMode::Real);
  faulty.enable_recovery();
  FaultInjector inj(43);
  // Boundary of slice 1's c1: O1_l exists but is entirely unwritten.
  inj.schedule(node_kill_event(/*phase=*/6, /*domain=*/2));
  faulty.install_faults(inj);
  const auto got = core::fused_par_transform(p, faulty, opt);
  ASSERT_TRUE(got.c.has_value());

  EXPECT_EQ(got.c->max_abs_diff(*ref.c), 0.0);
  const auto& reg = faulty.metrics();
  EXPECT_EQ(reg.sum("checkpoint.zero_fills"), 0.0);
  EXPECT_GT(reg.sum("sched.claims"), 0.0);
}

// ---- seeded stress matrix (CI fault-matrix job) ---------------------

TEST(FaultMatrix, SeededStormEitherCompletesExactlyOrFailsCleanly) {
  std::uint64_t seed = 1;
  if (const char* env = std::getenv("FOURINDEX_FAULT_SEED"))
    seed = std::strtoull(env, nullptr, 10);

  const auto p = small_problem(8, 1);
  core::ParOptions opt;
  opt.tile = 4;

  Cluster clean(fault_machine(2, 2), ExecutionMode::Real);
  const auto ref = core::unfused_par_transform(p, clean, opt);

  Cluster faulty(fault_machine(2, 2), ExecutionMode::Real);
  runtime::CheckpointConfig cfg;
  cfg.max_retries = 5;
  faulty.enable_recovery(cfg);
  FaultInjector inj(seed);
  inj.set_kill_prob(0.02);
  inj.set_op_failure_prob(0.002);
  faulty.install_faults(inj);

  try {
    const auto got = core::unfused_par_transform(p, faulty, opt);
    ASSERT_TRUE(got.c.has_value());
    // Recovery is exact or it is a bug: no silent corruption allowed.
    EXPECT_EQ(got.c->max_abs_diff(*ref.c), 0.0);
  } catch (const FaultError&) {
    // Acceptable outcome: the storm exceeded the recovery envelope
    // (all ranks dead or retry budget drained) and said so.
  }
}

// ---- delta checkpointing --------------------------------------------

TEST(DeltaCheckpoint, RestoresBitIdenticallyAndWritesLessThanFullCopy) {
  // The same node-kill-mid-run scenario under both write policies:
  // delta (only tiles dirtied since the previous generation transit
  // the client link) and the full-copy comparator (every live tile
  // rewritten each epoch). Recovery must be bit-identical either way
  // — the policies differ only in checkpoint write volume.
  const auto p = small_problem();
  core::ParOptions opt;
  opt.tile = 4;
  opt.tile_l = 4;

  Cluster clean(fault_machine(4, 2), ExecutionMode::Real);
  const auto ref = core::fused_par_transform(p, clean, opt);
  ASSERT_TRUE(ref.c.has_value());

  struct Outcome {
    double ckpt_bytes;
    double dirty_fraction;
  };
  auto run = [&](int delta) {
    runtime::CheckpointConfig cfg;
    cfg.delta = delta;
    Cluster faulty(fault_machine(4, 2), ExecutionMode::Real);
    faulty.enable_recovery(cfg);
    EXPECT_EQ(faulty.checkpoints()->delta(), delta != 0);
    FaultInjector inj(21);
    inj.schedule(node_kill_event(/*phase=*/7, /*domain=*/1));
    faulty.install_faults(inj);
    const auto got = core::fused_par_transform(p, faulty, opt);
    EXPECT_TRUE(got.c.has_value());
    if (got.c.has_value())
      EXPECT_EQ(got.c->max_abs_diff(*ref.c), 0.0);  // exact recovery
    const auto& reg = faulty.metrics();
    EXPECT_TRUE(faulty.is_dead(2));
    EXPECT_GE(reg.sum("checkpoint.restores"), 1.0);
    return Outcome{reg.sum("checkpoint.bytes"),
                   reg.sum("checkpoint.dirty_fraction")};
  };

  const Outcome full = run(/*delta=*/0);
  const Outcome delta = run(/*delta=*/1);
  // Full-copy rewrites every live tile: its dirty fraction is pinned
  // at 1 and its client write volume strictly dominates delta's.
  EXPECT_EQ(full.dirty_fraction, 1.0);
  EXPECT_LT(delta.ckpt_bytes, full.ckpt_bytes);
  EXPECT_LE(delta.dirty_fraction, 1.0);
}

TEST(DeltaCheckpoint, EnvToggleSelectsThePolicy) {
  const MachineConfig m = fault_machine(2, 2);
  ::setenv("FOURINDEX_CKPT_DELTA", "0", 1);
  {
    Cluster cl(m, ExecutionMode::Simulate);
    cl.enable_recovery();
    EXPECT_FALSE(cl.checkpoints()->delta());
  }
  // Strict parsing: a garbled value warns and keeps the default (on).
  ::setenv("FOURINDEX_CKPT_DELTA", "0abc", 1);
  {
    Cluster cl(m, ExecutionMode::Simulate);
    cl.enable_recovery();
    EXPECT_TRUE(cl.checkpoints()->delta());
  }
  ::unsetenv("FOURINDEX_CKPT_DELTA");
  {
    Cluster cl(m, ExecutionMode::Simulate);
    cl.enable_recovery();
    EXPECT_TRUE(cl.checkpoints()->delta());  // delta is the default
    runtime::CheckpointConfig cfg;
    cfg.delta = 0;  // explicit config wins over the environment
    Cluster cl2(m, ExecutionMode::Simulate);
    cl2.enable_recovery(cfg);
    EXPECT_FALSE(cl2.checkpoints()->delta());
  }
}

TEST(DeltaCheckpoint, NegativeRetentionDepthThrowsInsteadOfWrapping) {
  // Regression: FOURINDEX_CKPT_KEEP=-3 used to warn and silently run
  // with the default depth; a negative depth must refuse to start
  // rather than survive the size_t cast or mask the user's intent.
  ::setenv("FOURINDEX_CKPT_KEEP", "-3", 1);
  Cluster cl(fault_machine(2, 2), ExecutionMode::Simulate);
  EXPECT_THROW(cl.enable_recovery(), ParseError);
  ::unsetenv("FOURINDEX_CKPT_KEEP");
  cl.enable_recovery();
  EXPECT_EQ(cl.checkpoints()->keep_epochs(), 2u);
}

TEST(DeltaCheckpoint, ZeroTileEpochResetsDirtyFractionToZero) {
  // Regression: a checkpoint covering zero live tiles (every array
  // gone before the write — e.g. a transform's arrays destroyed, then
  // an explicit epoch taken) used to skip the gauge entirely, leaving
  // the previous epoch's fraction standing in the bench JSON; the
  // unguarded division would have emitted NaN, which serializes as
  // null and sails through jq's >= gates.
  Cluster cl(fault_machine(2, 2), ExecutionMode::Real);
  cl.enable_recovery();
  {
    std::vector<tensor::Tiling> dims = {tensor::Tiling(8, 2)};
    ga::GlobalArray a(cl, "ephemeral", dims);
    cl.run_phase("w0", [&](runtime::RankCtx& ctx) {
      if (ctx.rank() != 0) return;
      for (std::size_t t = 0; t < 4; ++t) {
        std::vector<double> buf = {1.0 + double(t), 0.0};
        a.put(ctx, std::vector<std::size_t>{t}, buf.data());
      }
    });
    EXPECT_GT(cl.metrics().sum("checkpoint.dirty_fraction"), 0.0);
  }  // the array unregisters here
  cl.checkpoints()->write();
  const double f = cl.metrics().sum("checkpoint.dirty_fraction");
  EXPECT_TRUE(std::isfinite(f));
  EXPECT_EQ(f, 0.0);
}

}  // namespace
