// End-to-end integration tests: the full pipeline (molecule ->
// problem -> distributed transform -> gathered result -> MP2) across
// schedules, modes, machines and failure paths.
#include <gtest/gtest.h>

#include <cmath>

#include "chem/molecule.hpp"
#include "chem/mp2.hpp"
#include "core/planner.hpp"
#include "core/problem.hpp"
#include "core/schedules_baseline.hpp"
#include "core/transform.hpp"
#include "runtime/machine.hpp"

namespace {

using namespace fit;
using runtime::Cluster;
using runtime::ExecutionMode;

// A miniature of the paper's benchmark setup: s = 8 spatial symmetry,
// ~quarter occupation, run on a (tiny) System A.
chem::Molecule mini_molecule(std::size_t n) {
  auto m = chem::custom_molecule("mini", n, 8, 12345);
  return m;
}

TEST(Integration, FullPipelineAllDistributedSchedules) {
  auto mol = mini_molecule(16);
  auto p = core::make_problem(mol);
  auto ref = core::reference_transform(p);
  auto eps = chem::synthetic_orbital_energies(mol.n_orbitals, mol.n_occupied);
  const double e_ref = chem::mp2_energy(ref, mol.n_occupied, eps);

  for (auto s : {core::Schedule::ParUnfused, core::Schedule::ParFused,
                 core::Schedule::ParFusedInner, core::Schedule::Hybrid}) {
    auto machine = runtime::system_a(1);
    Cluster cl(machine, ExecutionMode::Real);
    core::TransformOptions opt;
    opt.schedule = s;
    opt.par.tile = 4;
    opt.par.tile_l = 4;
    auto out = core::four_index_transform(p, opt, &cl);
    ASSERT_TRUE(out.c.has_value()) << core::to_string(s);
    EXPECT_LT(out.c->max_abs_diff(ref), 1e-9) << core::to_string(s);
    const double e = chem::mp2_energy(*out.c, mol.n_occupied, eps);
    EXPECT_NEAR(e, e_ref, 1e-9 * (1 + std::fabs(e_ref)))
        << core::to_string(s);
  }
}

TEST(Integration, BaselinesAgreeWithHybridNumerically) {
  auto mol = mini_molecule(12);
  auto p = core::make_problem(mol);
  auto machine = runtime::system_a(1);
  core::ParOptions o;
  o.tile = 4;
  o.tile_l = 2;

  Cluster c1(machine, ExecutionMode::Real);
  auto hybrid = core::hybrid_transform(p, c1, o);
  Cluster c2(machine, ExecutionMode::Real);
  auto unf = core::nwchem_unfused_par_transform(p, c2, o);
  Cluster c3(machine, ExecutionMode::Real);
  auto rec = core::nwchem_recompute_par_transform(p, c3, o);
  ASSERT_TRUE(hybrid.c && unf.c && rec.c);
  EXPECT_LT(unf.c->max_abs_diff(*hybrid.c), 1e-9);
  EXPECT_LT(rec.c->max_abs_diff(*hybrid.c), 1e-9);
}

TEST(Integration, Figure2ShapeAtMiniatureScale) {
  // The Figure 2 experiment end-to-end in one test: between the fused
  // and unfused footprints, the hybrid runs fused and beats the
  // surviving baseline; with ample memory it ties the unfused one.
  auto mol = mini_molecule(20);
  auto p = core::make_problem(mol);
  const auto sz = p.sizes();

  runtime::MachineConfig tight;
  tight.name = "tight";
  tight.n_nodes = 4;
  tight.ranks_per_node = 2;
  tight.mem_per_node_bytes = 8.0 * double(sz.unfused_peak()) / 4.0 * 0.5;
  core::ParOptions o;
  o.tile = 5;
  o.tile_l = 4;
  o.gather_result = false;

  Cluster cl_t(tight, ExecutionMode::Simulate);
  auto hybrid_t = core::hybrid_transform(p, cl_t, o);
  EXPECT_EQ(hybrid_t.stats.schedule, "hybrid(fused-inner)");

  Cluster cl_u(tight, ExecutionMode::Simulate);
  EXPECT_THROW(core::nwchem_unfused_par_transform(p, cl_u, o),
               fit::OutOfMemoryError);
  Cluster cl_r(tight, ExecutionMode::Simulate);
  auto rec = core::nwchem_recompute_par_transform(p, cl_r, o);
  EXPECT_GT(rec.stats.sim_time, hybrid_t.stats.sim_time);

  runtime::MachineConfig ample = tight;
  ample.mem_per_node_bytes *= 8;
  Cluster cl_a(ample, ExecutionMode::Simulate);
  auto hybrid_a = core::hybrid_transform(p, cl_a, o);
  EXPECT_EQ(hybrid_a.stats.schedule, "hybrid(unfused)");
  Cluster cl_n(ample, ExecutionMode::Simulate);
  auto unf = core::nwchem_unfused_par_transform(p, cl_n, o);
  EXPECT_NEAR(hybrid_a.stats.sim_time / unf.stats.sim_time, 1.0, 0.25);
}

TEST(Integration, PlannerDecisionMatchesRuntimeBehaviour) {
  // What plan_for_cluster predicts must be what hybrid_transform does.
  auto mol = mini_molecule(24);
  auto p = core::make_problem(mol);
  for (double scale : {0.7, 4.0}) {
    runtime::MachineConfig m;
    m.name = "probe";
    m.n_nodes = 4;
    m.ranks_per_node = 2;
    m.mem_per_node_bytes =
        scale * 8.0 * double(p.sizes().unfused_peak()) / 4.0;
    auto plan = core::plan_for_cluster(p, m, 4);
    core::ParOptions o;
    o.tile = 5;
    o.tile_l = 4;
    o.gather_result = false;
    Cluster cl(m, ExecutionMode::Simulate);
    auto r = core::hybrid_transform(p, cl, o);
    if (plan.use_fused_outer)
      EXPECT_EQ(r.stats.schedule, "hybrid(fused-inner)") << scale;
    else
      EXPECT_EQ(r.stats.schedule, "hybrid(unfused)") << scale;
  }
}

TEST(Integration, SimulatedTimeScalesDownWithRanks) {
  // Strong scaling sanity on a compute-bound configuration (slow
  // cores, effectively free network): more ranks => faster, and a 4x
  // rank increase buys a clearly sublinear-but-real speedup despite
  // the triangular load imbalance.
  auto mol = mini_molecule(24);
  auto p = core::make_problem(mol);
  core::ParOptions o;
  o.tile = 3;
  o.tile_l = 4;
  o.alpha_parallel = 2;
  o.gather_result = false;
  double first = 0, last = 0;
  double prev = 1e30;
  for (std::size_t nodes : {1u, 2u, 4u}) {
    runtime::MachineConfig m;
    m.name = "compute-bound";
    m.n_nodes = nodes;
    m.ranks_per_node = 4;
    m.mem_per_node_bytes = 1e9;
    m.flops_per_rank = 1e8;        // slow cores
    m.integrals_per_sec = 1e7;
    m.net_bandwidth_bps = 1e12;    // effectively free network
    m.net_latency_s = 1e-9;
    m.local_bandwidth_bps = 1e13;
    Cluster cl(m, ExecutionMode::Simulate);
    auto r = core::fused_inner_par_transform(p, cl, o);
    EXPECT_LE(r.stats.sim_time, prev * 1.02) << nodes;
    prev = r.stats.sim_time;
    if (nodes == 1) first = r.stats.sim_time;
    last = r.stats.sim_time;
  }
  EXPECT_GT(first / last, 1.8);  // 4x ranks: at least ~2x faster
}

TEST(Integration, GatheredResultSpatiallySparse) {
  // The gathered distributed result respects the irrep block sparsity:
  // forbidden entries read exactly zero.
  auto mol = mini_molecule(16);
  auto p = core::make_problem(mol);
  auto machine = runtime::system_a(1);
  Cluster cl(machine, ExecutionMode::Real);
  core::ParOptions o;
  o.tile = 4;
  o.tile_l = 4;
  auto r = core::fused_inner_par_transform(p, cl, o);
  ASSERT_TRUE(r.c.has_value());
  const std::size_t n = mol.n_orbitals;
  for (std::size_t a = 0; a < n; a += 3)
    for (std::size_t b = 0; b <= a; b += 2)
      for (std::size_t c = 0; c < n; c += 3)
        for (std::size_t d = 0; d <= c; d += 2)
          if (!p.irreps.allowed(a, b, c, d)) {
            EXPECT_EQ(r.c->get(a, b, c, d), 0.0);
          }
}

TEST(Integration, RecomputeChargesIdenticalAcrossModes) {
  auto mol = mini_molecule(12);
  auto p = core::make_problem(mol);
  auto machine = runtime::system_a(1);
  core::ParOptions o;
  o.tile = 4;
  o.gather_result = false;
  Cluster cr(machine, ExecutionMode::Real);
  auto rr = core::nwchem_recompute_par_transform(p, cr, o);
  Cluster cs(machine, ExecutionMode::Simulate);
  auto rs = core::nwchem_recompute_par_transform(p, cs, o);
  EXPECT_DOUBLE_EQ(rr.stats.flops, rs.stats.flops);
  EXPECT_DOUBLE_EQ(rr.stats.remote_bytes, rs.stats.remote_bytes);
  EXPECT_DOUBLE_EQ(rr.stats.peak_global_bytes, rs.stats.peak_global_bytes);
}

}  // namespace

// ---- Determinism and paper-molecule smoke tests ----------------------

namespace {

TEST(Integration, SimulationIsBitDeterministic) {
  auto mol = mini_molecule(16);
  core::ParOptions o;
  o.tile = 4;
  o.tile_l = 4;
  o.gather_result = false;
  core::ParStats first;
  for (int run = 0; run < 3; ++run) {
    auto p = core::make_problem(mol);
    Cluster cl(runtime::system_a(2), ExecutionMode::Simulate);
    auto r = core::hybrid_transform(p, cl, o);
    if (run == 0) {
      first = r.stats;
      continue;
    }
    EXPECT_EQ(r.stats.schedule, first.schedule);
    EXPECT_EQ(r.stats.sim_time, first.sim_time);
    EXPECT_EQ(r.stats.flops, first.flops);
    EXPECT_EQ(r.stats.remote_bytes, first.remote_bytes);
    EXPECT_EQ(r.stats.peak_global_bytes, first.peak_global_bytes);
  }
}

TEST(Integration, AllPaperMoleculesPlanAndSimulate) {
  // Every Sec. 8 molecule builds a problem, yields a consistent
  // cluster plan, and completes a simulated hybrid transform on
  // System B (the only system the paper ran all five on).
  for (const auto& mol : chem::paper_molecules()) {
    auto p = core::make_problem(mol);
    auto machine = runtime::system_b(18);
    auto plan = core::plan_for_cluster(p, machine, 4);
    EXPECT_GE(plan.max_n_fused, plan.max_n_unfused) << mol.name;
    core::ParOptions o;
    o.tile = 8;
    o.tile_l = 4;
    o.gather_result = false;
    Cluster cl(machine, ExecutionMode::Simulate);
    auto r = core::hybrid_transform(p, cl, o);
    EXPECT_GT(r.stats.sim_time, 0.0) << mol.name;
    // The plan's fuse decision matches what the hybrid executed.
    const bool fused = r.stats.schedule == "hybrid(fused-inner)";
    EXPECT_EQ(fused, plan.use_fused_outer) << mol.name;
    // Shell-Mixed is the paper's capability case: must have fused.
    if (mol.name == "Shell-Mixed") {
      EXPECT_TRUE(fused);
    }
    if (mol.name == "Hyperpolar") {
      EXPECT_FALSE(fused);
    }
  }
}

}  // namespace
