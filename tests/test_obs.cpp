// Observability layer: JSON document model round-trips, metrics
// registry aggregation across simulated ranks, bench-report golden
// schema, and the Chrome trace exported by a Simulate-mode cluster run
// (well-formed, one track per rank, per-rank spans non-overlapping).
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "chem/molecule.hpp"
#include "core/problem.hpp"
#include "core/schedules_par.hpp"
#include "obs/bench_json.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "runtime/cluster.hpp"
#include "runtime/machine.hpp"
#include "util/error.hpp"
#include "util/format.hpp"

namespace {

using namespace fit;

// ---- json::Value ---------------------------------------------------

TEST(ObsJson, DumpParseRoundTrip) {
  obs::json::Value doc = obs::json::Value::object();
  doc["string"] = "hello \"quoted\" \\ backslash\n";
  doc["int"] = 42;
  doc["float"] = 2.5;
  doc["flag"] = true;
  doc["nothing"];  // operator[] inserts null
  doc["list"].push_back(1);
  doc["list"].push_back("two");
  doc["nested"]["inner"] = 3;

  for (int indent : {-1, 2}) {
    auto parsed = obs::json::parse(doc.dump(indent));
    ASSERT_TRUE(parsed.is_object());
    EXPECT_EQ(parsed.find("string")->as_string(),
              "hello \"quoted\" \\ backslash\n");
    EXPECT_EQ(parsed.find("int")->as_number(), 42);
    EXPECT_EQ(parsed.find("float")->as_number(), 2.5);
    EXPECT_TRUE(parsed.find("flag")->as_bool());
    EXPECT_TRUE(parsed.find("nothing")->is_null());
    ASSERT_EQ(parsed.find("list")->size(), 2u);
    EXPECT_EQ(parsed.find("list")->at(1).as_string(), "two");
    EXPECT_EQ(parsed.find("nested")->find("inner")->as_number(), 3);
  }
}

TEST(ObsJson, PreservesInsertionOrder) {
  obs::json::Value doc = obs::json::Value::object();
  doc["zebra"] = 1;
  doc["apple"] = 2;
  doc["mango"] = 3;
  EXPECT_EQ(doc.member(0).first, "zebra");
  EXPECT_EQ(doc.member(1).first, "apple");
  EXPECT_EQ(doc.member(2).first, "mango");
  EXPECT_EQ(doc.dump(), "{\"zebra\":1,\"apple\":2,\"mango\":3}");
}

TEST(ObsJson, MalformedInputThrows) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "{\"a\":1,}", "tru", "\"unterminated",
        "1 2", "{\"a\" 1}", "[1 2]", "nul", "{'a':1}"}) {
    EXPECT_THROW((void)obs::json::parse(bad), obs::json::ParseError)
        << "input: " << bad;
  }
}

TEST(ObsJson, NonFiniteNumbersSerializeAsNull) {
  obs::json::Value doc = obs::json::Value::object();
  doc["inf"] = std::numeric_limits<double>::infinity();
  doc["nan"] = std::numeric_limits<double>::quiet_NaN();
  auto parsed = obs::json::parse(doc.dump());
  EXPECT_TRUE(parsed.find("inf")->is_null());
  EXPECT_TRUE(parsed.find("nan")->is_null());
}

// ---- MetricsRegistry ------------------------------------------------

TEST(ObsMetrics, AggregatesAcrossRanks) {
  obs::MetricsRegistry reg(4);
  const auto bytes = reg.counter("comm.bytes");
  for (std::size_t r = 0; r < 4; ++r)
    reg.add(bytes, r, 100.0 * double(r + 1));
  reg.add(bytes, 0, 50.0);  // counters accumulate

  EXPECT_EQ(reg.sum("comm.bytes"), 100 + 200 + 300 + 400 + 50);
  EXPECT_EQ(reg.max("comm.bytes"), 400);
  EXPECT_EQ(reg.value("comm.bytes", 0), 150);
  EXPECT_EQ(reg.value("comm.bytes", 3), 400);

  const auto mem = reg.gauge("mem.used");
  reg.set(mem, 2, 10);
  reg.set(mem, 2, 7);  // gauges overwrite
  EXPECT_EQ(reg.value("mem.used", 2), 7);
  EXPECT_EQ(reg.sum("mem.used"), 7);

  const auto mk = reg.histogram("phase.makespan");
  reg.observe(mk, 1.0);
  reg.observe(mk, 3.0);
  const auto h = reg.hist("phase.makespan");
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.min(), 1.0);
  EXPECT_EQ(h.max(), 3.0);
  EXPECT_DOUBLE_EQ(h.mean(), 2.0);
}

TEST(ObsMetrics, GetOrCreateIsIdempotentButKindChecked) {
  obs::MetricsRegistry reg(2);
  const auto a = reg.counter("x");
  EXPECT_EQ(reg.counter("x"), a);
  EXPECT_TRUE(reg.contains("x"));
  EXPECT_FALSE(reg.contains("y"));
  EXPECT_EQ(reg.kind("x"), obs::MetricKind::Counter);
  EXPECT_THROW((void)reg.gauge("x"), fit::Error);
  EXPECT_THROW((void)reg.histogram("x"), fit::Error);
}

TEST(ObsMetrics, ToJsonShape) {
  obs::MetricsRegistry reg(3);
  reg.add(reg.counter("c"), 1, 5);
  reg.observe(reg.histogram("h"), 2.0);

  auto with_ranks = reg.to_json(true);
  const auto* c = with_ranks.find("c");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->find("kind")->as_string(), "counter");
  EXPECT_EQ(c->find("sum")->as_number(), 5);
  ASSERT_NE(c->find("per_rank"), nullptr);
  EXPECT_EQ(c->find("per_rank")->size(), 3u);

  auto aggregate = reg.to_json(false);
  EXPECT_EQ(aggregate.find("c")->find("per_rank"), nullptr);
  const auto* h = aggregate.find("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->find("kind")->as_string(), "histogram");
  EXPECT_EQ(h->find("count")->as_number(), 1);

  // The snapshot itself is valid JSON.
  EXPECT_NO_THROW((void)obs::json::parse(with_ranks.dump(2)));
}

// ---- BenchReport golden schema --------------------------------------

TEST(ObsBenchReport, ProducesSchemaValidDocument) {
  obs::BenchReport report("test_bench");
  TextTable t({"col a", "col b"});
  t.add_row({"1", "x"});
  t.add_row({"2", "y"});
  report.add_table("a table", t);
  report.add_scalar("answer", 42.0);
  report.add_note("a note");
  obs::MetricsRegistry reg(2);
  reg.add(reg.counter("c"), 0, 1);
  report.add_metrics("run", reg);

  auto doc = report.to_json();
  std::string why;
  EXPECT_TRUE(obs::validate_bench_json(doc, &why)) << why;

  EXPECT_EQ(doc.find("schema")->as_string(), "fourindex.bench/1");
  EXPECT_EQ(doc.find("bench")->as_string(), "test_bench");
  ASSERT_EQ(doc.find("tables")->size(), 1u);
  const auto& table = doc.find("tables")->at(0);
  EXPECT_EQ(table.find("columns")->size(), 2u);
  EXPECT_EQ(table.find("rows")->size(), 2u);
  EXPECT_EQ(table.find("rows")->at(1).at(0).as_string(), "2");
  EXPECT_EQ(doc.find("scalars")->find("answer")->as_number(), 42.0);
  ASSERT_NE(doc.find("metrics")->find("run"), nullptr);

  // Round-trips through the serialized form.
  std::string why2;
  EXPECT_TRUE(obs::validate_bench_json(obs::json::parse(doc.dump(2)),
                                       &why2))
      << why2;
}

TEST(ObsBenchReport, ValidatorRejectsBrokenDocuments) {
  obs::BenchReport report("b");
  auto doc = report.to_json();
  ASSERT_TRUE(obs::validate_bench_json(doc));

  auto wrong_schema = doc;
  wrong_schema["schema"] = "fourindex.bench/999";
  std::string why;
  EXPECT_FALSE(obs::validate_bench_json(wrong_schema, &why));
  EXPECT_NE(why.find("schema"), std::string::npos);

  auto wrong_scalar = doc;
  wrong_scalar["scalars"]["oops"] = "not a number";
  EXPECT_FALSE(obs::validate_bench_json(wrong_scalar, &why));

  auto ragged = doc;
  auto& tbl = ragged["tables"];
  obs::json::Value t = obs::json::Value::object();
  t["title"] = "ragged";
  t["columns"].push_back("only");
  obs::json::Value row = obs::json::Value::array();
  row.push_back("a");
  row.push_back("b");  // two cells, one column
  t["rows"].push_back(std::move(row));
  tbl.push_back(std::move(t));
  EXPECT_FALSE(obs::validate_bench_json(ragged, &why));

  EXPECT_FALSE(obs::validate_bench_json(obs::json::Value::array()));
}

// ---- Timeline + cluster trace export --------------------------------

TEST(ObsTimeline, ChromeJsonShape) {
  obs::Timeline tl;
  const auto work = tl.intern("work");
  const auto oom = tl.intern("oom");
  EXPECT_EQ(tl.intern("work"), work);  // interning is idempotent
  tl.add_span(work, 0, 0.0, 1.5);
  tl.add_span(work, 1, 0.5, 1.0);
  tl.add_instant(oom, 1, 0.75);

  auto doc = tl.to_chrome_json("proc");
  const auto* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  // 1 process_name + 2 thread_name + 2 spans + 1 instant.
  EXPECT_EQ(events->size(), 6u);
  std::size_t spans = 0, instants = 0, meta = 0;
  for (std::size_t i = 0; i < events->size(); ++i) {
    const auto& ph = events->at(i).find("ph")->as_string();
    if (ph == "X") ++spans;
    if (ph == "i") ++instants;
    if (ph == "M") ++meta;
  }
  EXPECT_EQ(spans, 2u);
  EXPECT_EQ(instants, 1u);
  EXPECT_EQ(meta, 3u);
}

TEST(ObsCluster, SimulateRunExportsValidTrace) {
  auto machine = runtime::system_a(4);
  auto p = core::make_problem(chem::paper_molecule("Hyperpolar"));
  core::ParOptions o;
  o.tile = 8;
  o.tile_l = 4;
  o.gather_result = false;

  runtime::Cluster cl(machine, runtime::ExecutionMode::Simulate);
  auto r = core::hybrid_transform(p, cl, o);
  EXPECT_GT(r.stats.sim_time, 0);
  EXPECT_GT(cl.timeline().n_spans(), 0u);

  const std::string path =
      testing::TempDir() + "/test_obs_cluster.trace.json";
  ASSERT_TRUE(cl.write_chrome_trace(path));

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  obs::json::Value doc;
  ASSERT_NO_THROW(doc = obs::json::parse(buf.str()));

  const auto* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  const std::size_t n_ranks = machine.n_ranks();
  std::vector<bool> named_track(n_ranks, false);
  std::map<std::size_t, std::vector<std::pair<double, double>>> spans;
  for (std::size_t i = 0; i < events->size(); ++i) {
    const auto& e = events->at(i);
    const auto& ph = e.find("ph")->as_string();
    if (ph == "M" && e.find("name")->as_string() == "thread_name") {
      const auto tid = static_cast<std::size_t>(e.find("tid")->as_number());
      ASSERT_LT(tid, n_ranks);
      EXPECT_FALSE(named_track[tid]) << "duplicate track " << tid;
      named_track[tid] = true;
      EXPECT_EQ(e.find("args")->find("name")->as_string(),
                "rank " + std::to_string(tid));
    } else if (ph == "X") {
      const auto tid = static_cast<std::size_t>(e.find("tid")->as_number());
      ASSERT_LT(tid, n_ranks);
      spans[tid].emplace_back(e.find("ts")->as_number(),
                              e.find("dur")->as_number());
    }
  }

  // One named track per simulated rank.
  EXPECT_TRUE(std::all_of(named_track.begin(), named_track.end(),
                          [](bool b) { return b; }));
  // Every rank ran work, and no rank's spans overlap: phases are
  // barrier-separated, so sorted by start time each span must end
  // before the next begins (tolerance for microsecond rounding).
  EXPECT_EQ(spans.size(), n_ranks);
  for (auto& [tid, sp] : spans) {
    ASSERT_FALSE(sp.empty());
    std::sort(sp.begin(), sp.end());
    for (std::size_t i = 1; i < sp.size(); ++i) {
      EXPECT_LE(sp[i - 1].first + sp[i - 1].second, sp[i].first + 1e-6)
          << "overlapping spans on rank " << tid;
    }
  }
}

TEST(ObsCluster, RegistryBackedTotalsMatchParStats) {
  auto machine = runtime::system_a(4);
  auto p = core::make_problem(chem::paper_molecule("Hyperpolar"));
  core::ParOptions o;
  o.tile = 8;
  o.tile_l = 4;
  o.gather_result = false;

  runtime::Cluster cl(machine, runtime::ExecutionMode::Simulate);
  auto r = core::hybrid_transform(p, cl, o);

  const auto totals = cl.totals();
  EXPECT_EQ(totals.remote_bytes, cl.metrics().sum("comm.remote_bytes"));
  EXPECT_EQ(totals.flops, cl.metrics().sum("compute.flops"));
  EXPECT_DOUBLE_EQ(r.stats.remote_bytes, totals.remote_bytes);
  EXPECT_GT(cl.metrics().sum("ga.gets") + cl.metrics().sum("ga.puts") +
                cl.metrics().sum("ga.accs"),
            0);
  EXPECT_GT(cl.metrics().hist("phase.makespan_s").count(), 0u);
}

}  // namespace
