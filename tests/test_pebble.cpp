// Red–blue pebble game: exact optimal-I/O search, and an empirical
// verification of the Fusion Lemma (paper Lemma 4.2 / A.3) over
// generated producer-consumer CDAG pairs.
#include <gtest/gtest.h>

#include <bit>
#include <vector>

#include "pebble/cdag.hpp"
#include "pebble/pebble_game.hpp"
#include "util/rng.hpp"

namespace {

using namespace fit::pebble;

TEST(Cdag, BasicSets) {
  Cdag g(4);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.mark_output(3);
  EXPECT_EQ(g.inputs(), 0b0011);
  EXPECT_EQ(g.operations(), 0b1100);
  EXPECT_EQ(g.outputs(), 0b1000);
  EXPECT_TRUE(g.has_consumer(2));
  EXPECT_FALSE(g.has_consumer(3));
  EXPECT_THROW(g.add_edge(3, 2), fit::PreconditionError);
  EXPECT_THROW(Cdag(17), fit::PreconditionError);
}

TEST(PebbleGame, SingleOpKnownOptimum) {
  // c = f(a, b): load a, load b, compute, store = 3 I/O with s >= 3.
  Cdag g(3);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  g.mark_output(2);
  auto r = min_io(g, 3);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->min_io, 3u);
  // s = 2 cannot hold both operands plus the result.
  EXPECT_FALSE(min_io(g, 2).has_value());
}

TEST(PebbleGame, ChainReusesPebbles) {
  // a -> b -> c -> d (one input, chain of three ops, last is output):
  // load a, compute b (delete a), compute c, compute d, store = 2.
  Cdag g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.mark_output(3);
  auto r = min_io(g, 2);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->min_io, 2u);
}

TEST(PebbleGame, DiamondNeedsNoSpillWithThreePebbles) {
  //      0
  //  edges: 0 -> 1, 0 -> 2,
  //         1 -> 3, 2 -> 3 (diamond; 3 is the output)
  Cdag g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  g.mark_output(3);
  auto r3 = min_io(g, 3);
  ASSERT_TRUE(r3.has_value());
  EXPECT_EQ(r3->min_io, 2u);  // load 0, store 3
  // With two pebbles, vertex 3 (indegree 2) can never fire: both
  // predecessors plus the result need pebbles and the game has no
  // sliding rule (paper Definition A.2).
  EXPECT_FALSE(min_io(g, 2).has_value());
}

TEST(PebbleGame, TinyContractionOptimum) {
  // C[m] = sum_i A[i,m] * B[i], ni = 2, nm = 2 at macro-op
  // granularity: inputs A00,A01,A10,A11,B0,B1 (6), two output ops.
  Cdag g(8);
  // vertices: 0..3 = A, 4..5 = B, 6..7 = C ops.
  for (int m = 0; m < 2; ++m) {
    g.add_edge(0 + m, 6 + m);  // A[0, m]
    g.add_edge(2 + m, 6 + m);  // A[1, m]
    g.add_edge(4, 6 + m);      // B[0]
    g.add_edge(5, 6 + m);      // B[1]
    g.mark_output(6 + m);
  }
  auto r = min_io(g, 5);
  ASSERT_TRUE(r.has_value());
  // 6 loads + 2 stores, B stays resident across both outputs.
  EXPECT_EQ(r->min_io, 8u);
}

TEST(PebbleGame, MoreRedPebblesNeverHurt) {
  Cdag g(6);
  g.add_edge(0, 3);
  g.add_edge(1, 3);
  g.add_edge(1, 4);
  g.add_edge(2, 4);
  g.add_edge(3, 5);
  g.add_edge(4, 5);
  g.mark_output(5);
  std::uint32_t prev = 0xFFFFFFFF;
  for (int s = 3; s <= 6; ++s) {
    auto r = min_io(g, s);
    ASSERT_TRUE(r.has_value()) << "s=" << s;
    EXPECT_LE(r->min_io, prev);
    prev = r->min_io;
  }
}

TEST(PebbleGame, FuseConstruction) {
  // Producer: o = f(a, b). Consumer: out = g(o, c).
  Cdag p(3);
  p.add_edge(0, 2);
  p.add_edge(1, 2);
  p.mark_output(2);
  Cdag c(3);
  c.add_edge(0, 2);  // vertex 0 = the intermediate input
  c.add_edge(1, 2);
  c.mark_output(2);
  auto fused = fuse(p, {2}, c, {0});
  EXPECT_EQ(fused.graph.n_vertices(), 5);
  EXPECT_EQ(fused.graph.inputs(), 0b01011);  // a, b, c
  // Output of the fused graph is the consumer's output only.
  EXPECT_EQ(std::popcount(static_cast<unsigned>(fused.graph.outputs())), 1);
}

TEST(PebbleGame, FuseRejectsInternalOutputs) {
  Cdag p(3);
  p.add_edge(0, 1);
  p.add_edge(1, 2);
  p.mark_output(2);
  Cdag c(2);
  c.add_edge(0, 1);
  c.mark_output(1);
  // Vertex 1 of the producer has a consumer inside the producer.
  EXPECT_THROW(fuse(p, {1}, c, {0}), fit::PreconditionError);
}

TEST(FusionLemma, HoldsOnHandBuiltPair) {
  // Producer: two outputs o1 = f(a,b), o2 = g(b,c).
  Cdag p(5);
  p.add_edge(0, 3);
  p.add_edge(1, 3);
  p.add_edge(1, 4);
  p.add_edge(2, 4);
  p.mark_output(3);
  p.mark_output(4);
  // Consumer: out = h(o1, o2, d).
  Cdag c(4);
  c.add_edge(0, 3);
  c.add_edge(1, 3);
  c.add_edge(2, 3);
  c.mark_output(3);
  auto fused = fuse(p, {3, 4}, c, {0, 1});
  for (int s = 4; s <= 6; ++s) {
    auto io12 = min_io(fused.graph, s);
    auto rhs = fusion_lemma_rhs(p, c, 2, s);
    ASSERT_TRUE(io12.has_value());
    ASSERT_TRUE(rhs.has_value());
    EXPECT_GE(io12->min_io, *rhs) << "s=" << s;
  }
}

// ---- Property test: the Fusion Lemma on random producer/consumer
// pairs, with the exact optima from exhaustive search. ---------------

struct RandomPairParams {
  std::uint64_t seed;
};

class FusionLemmaRandom : public ::testing::TestWithParam<RandomPairParams> {
};

TEST_P(FusionLemmaRandom, InequalityHolds) {
  fit::SplitMix64 rng(GetParam().seed);
  // Producer: 2-3 inputs, 1-2 internal non-output ops, 1-2 outputs.
  const int p_in = 2 + static_cast<int>(rng.next_below(2));
  const int p_mid = static_cast<int>(rng.next_below(2));
  const int p_out = 1 + static_cast<int>(rng.next_below(2));
  const int np = p_in + p_mid + p_out;
  Cdag p(np);
  // Internal ops draw from inputs; outputs draw from inputs + mids.
  for (int v = p_in; v < np; ++v) {
    const int pool = (v < p_in + p_mid) ? p_in : p_in + p_mid;
    int added = 0;
    for (int u = 0; u < pool; ++u)
      if (rng.next_below(2) == 0) {
        p.add_edge(u, v);
        ++added;
      }
    if (added == 0) p.add_edge(static_cast<int>(rng.next_below(pool)), v);
  }
  for (int v = p_in + p_mid; v < np; ++v) p.mark_output(v);

  // Consumer: p_out merged inputs + 1-2 extra inputs, 1-2 outputs that
  // each read all merged inputs (so O1 = I2 ∩ V1).
  const int c_extra = 1 + static_cast<int>(rng.next_below(2));
  const int c_out = 1 + static_cast<int>(rng.next_below(2));
  const int c_in = p_out + c_extra;
  Cdag c(c_in + c_out);
  for (int v = c_in; v < c_in + c_out; ++v) {
    for (int u = 0; u < p_out; ++u) c.add_edge(u, v);
    for (int u = p_out; u < c_in; ++u)
      if (rng.next_below(2) == 0) c.add_edge(u, v);
    c.mark_output(v);
  }

  std::vector<int> pouts, cins;
  for (int v = p_in + p_mid; v < np; ++v) pouts.push_back(v);
  for (int u = 0; u < p_out; ++u) cins.push_back(u);
  auto fused = fuse(p, pouts, c, cins);

  for (int s = 3; s <= 5; ++s) {
    auto io12 = min_io(fused.graph, s);
    auto rhs =
        fusion_lemma_rhs(p, c, static_cast<std::uint32_t>(p_out), s);
    if (!io12 || !rhs) continue;  // infeasible for this s — skip
    EXPECT_GE(io12->min_io, *rhs)
        << "seed=" << GetParam().seed << " s=" << s;
  }
}

std::vector<RandomPairParams> make_seeds() {
  std::vector<RandomPairParams> v;
  for (std::uint64_t i = 0; i < 60; ++i) v.push_back({1000 + i});
  return v;
}

INSTANTIATE_TEST_SUITE_P(Random, FusionLemmaRandom,
                         ::testing::ValuesIn(make_seeds()));

}  // namespace
