#include <gtest/gtest.h>

#include "chem/molecule.hpp"
#include "core/planner.hpp"
#include "core/problem.hpp"
#include "core/transform.hpp"
#include "runtime/machine.hpp"

namespace {

using namespace fit;
using bounds::FusionChoice;

TEST(Planner, SelectsFullFusionWhenCFits) {
  // Fast memory comfortably above |C| + 2n^3: op1234 is feasible and
  // has the least bound, so it must win.
  const double n = 64, s = 8;
  const double c = n * n * n * n / (4 * s);
  auto plan = core::plan_fusion(n, s, c + 3 * n * n * n);
  EXPECT_EQ(plan.selected, FusionChoice::Fused1234);
  // Everything else is pruned or infeasible — never "ok".
  for (const auto& e : plan.entries)
    if (e.choice != FusionChoice::Fused1234) {
      EXPECT_TRUE(e.pruned || !e.feasible);
    }
}

TEST(Planner, SelectsOp12_34WhenCDoesNotFit) {
  const double n = 64, s = 8;
  auto plan = core::plan_fusion(n, s, 4 * n * n);  // >= 3n^2+n+1, < |C|
  EXPECT_EQ(plan.selected, FusionChoice::Fused12_34);
}

TEST(Planner, SelectsUnfusedWhenFusionUseless) {
  // Theorem 5.1: below 3n^2+n+1 no pair fusion can reach its tight
  // bound; only the unfused configuration remains feasible.
  const double n = 64, s = 1;
  auto plan = core::plan_fusion(n, s, 2 * n * n);
  EXPECT_EQ(plan.selected, FusionChoice::Unfused);
}

TEST(Planner, ThrowsWhenNothingFits) {
  EXPECT_THROW(core::plan_fusion(64, 1, 16), fit::PreconditionError);
}

TEST(Planner, RenderedPlanMentionsSelection) {
  auto plan = core::plan_fusion(32, 2, 1e9);
  const std::string s = core::to_string(plan);
  EXPECT_NE(s.find("SELECTED"), std::string::npos);
  EXPECT_NE(s.find("op1234"), std::string::npos);
}

TEST(Planner, ClusterPlanHybridDecision) {
  auto p = core::make_problem(chem::custom_molecule("plan", 46, 8, 1));
  // Big machine: unfused fits.
  auto big = runtime::system_b(18);
  auto cp_big = core::plan_for_cluster(p, big, 4);
  EXPECT_FALSE(cp_big.use_fused_outer);
  // Small machine: must fuse.
  auto small = runtime::system_a(2);
  auto cp_small = core::plan_for_cluster(p, small, 4);
  EXPECT_TRUE(cp_small.use_fused_outer);
  // Fused always admits at least as large a problem.
  EXPECT_GE(cp_small.max_n_fused, cp_small.max_n_unfused);
  EXPECT_LT(cp_small.aggregate_need_fused_bytes,
            cp_small.aggregate_need_unfused_bytes);
}

TEST(Planner, BatchPlanAmortizesSharedWork) {
  auto p = core::make_problem(chem::custom_molecule("plan", 46, 8, 1));
  auto big = runtime::system_b(18);
  auto bp = core::plan_batch(p, big, 4, 6);
  EXPECT_EQ(bp.n_members, 6u);
  EXPECT_FALSE(bp.use_fused_outer);
  // The shared A fill is paid once, so batched strictly beats running
  // the six transforms back to back, and the advantage is exactly the
  // 5 re-derivations of A.
  EXPECT_LT(bp.est_seconds_batched, bp.est_seconds_sequential);
  EXPECT_NEAR(bp.est_seconds_sequential - bp.est_seconds_batched,
              5.0 * bp.est_seconds_shared,
              1e-9 * bp.est_seconds_sequential);
  // Unfused batch: one member's chain in flight at a time, so the peak
  // does not grow with the member count.
  auto bp2 = core::plan_batch(p, big, 4, 12);
  EXPECT_DOUBLE_EQ(bp2.total_need_bytes, bp.total_need_bytes);
}

TEST(Planner, BatchPlanFusedPeakGrowsPerMember) {
  auto p = core::make_problem(chem::custom_molecule("plan", 46, 8, 1));
  auto small = runtime::system_a(2);
  auto bp4 = core::plan_batch(p, small, 4, 4);
  auto bp8 = core::plan_batch(p, small, 4, 8);
  EXPECT_TRUE(bp4.use_fused_outer);
  // Every member's C is resident under the fused batch, so the peak
  // charge scales with the member count.
  EXPECT_NEAR(bp8.total_need_bytes - bp4.total_need_bytes,
              4.0 * bp4.per_member_bytes, 1.0);
  // Measured rates propagate into the plan's label.
  core::PlanRates rates;
  rates.source = "measured";
  rates.flops_per_rank = 2e9;
  auto bpm = core::plan_batch(p, small, 4, 4, rates);
  EXPECT_EQ(bpm.rate_source, "measured");
}

TEST(Planner, InnerChoiceIsOp1234OnlyWithHugeLocalMemory) {
  auto p = core::make_problem(chem::custom_molecule("inner", 46, 8, 1));
  auto m = runtime::system_a(4);
  auto cp = core::plan_for_cluster(p, m, 4);
  // Local memory (scaled MBs) is below |C|: op12/34 for the inner.
  EXPECT_EQ(cp.inner_choice, FusionChoice::Fused12_34);
  m.mem_per_node_bytes = 64e9;  // absurdly large local memory
  auto cp2 = core::plan_for_cluster(p, m, 4);
  EXPECT_EQ(cp2.inner_choice, FusionChoice::Fused1234);
}

TEST(Facade, DispatchesSequentialSchedules) {
  auto p = core::make_problem(chem::custom_molecule("api", 8, 2, 9));
  auto ref =
      core::four_index_transform(p, {core::Schedule::Reference, {}});
  ASSERT_TRUE(ref.c.has_value());
  for (auto s : {core::Schedule::Unfused, core::Schedule::Fused12_34,
                 core::Schedule::Recompute, core::Schedule::Fused1234}) {
    auto r = core::four_index_transform(p, {s, {}});
    ASSERT_TRUE(r.c.has_value()) << core::to_string(s);
    EXPECT_LT(r.c->max_abs_diff(*ref.c), 1e-9) << core::to_string(s);
    EXPECT_FALSE(r.distributed);
    EXPECT_GT(r.seq.flops, 0.0);
  }
}

TEST(Facade, DistributedRequiresCluster) {
  auto p = core::make_problem(chem::custom_molecule("api2", 8, 1, 9));
  EXPECT_THROW(core::four_index_transform(p, {core::Schedule::Hybrid, {}}),
               fit::PreconditionError);
}

TEST(Facade, DistributedDispatch) {
  auto p = core::make_problem(chem::custom_molecule("api3", 8, 1, 9));
  auto ref =
      core::four_index_transform(p, {core::Schedule::Reference, {}});
  auto machine = runtime::system_a(1);
  core::TransformOptions opt;
  opt.schedule = core::Schedule::ParFusedInner;
  opt.par.tile = 4;
  opt.par.tile_l = 2;
  runtime::Cluster cl(machine, runtime::ExecutionMode::Real);
  auto r = core::four_index_transform(p, opt, &cl);
  ASSERT_TRUE(r.c.has_value());
  EXPECT_TRUE(r.distributed);
  EXPECT_LT(r.c->max_abs_diff(*ref.c), 1e-9);
  EXPECT_EQ(r.par.schedule, "fused-inner");
}

TEST(Facade, ScheduleNames) {
  EXPECT_EQ(core::to_string(core::Schedule::Hybrid), "hybrid");
  EXPECT_EQ(core::to_string(core::Schedule::ParFused), "par-fused");
}

}  // namespace
