// Cross-cutting property tests: invariants that hold by mathematics
// rather than by construction, exercised over parameter sweeps.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "bounds/matmul_bounds.hpp"
#include "bounds/transform_bounds.hpp"
#include "chem/molecule.hpp"
#include "core/problem.hpp"
#include "core/schedules_seq.hpp"
#include "tensor/packed.hpp"
#include "trace/kernels.hpp"

namespace {

using namespace fit;

// ---- Orthogonal-invariance: B orthogonal => the transform preserves
// the Frobenius norm of the full dense tensor. This ties together the
// coefficient generator, the integral engine, and the transform in one
// nontrivial equation. ------------------------------------------------

class NormPreservation
    : public ::testing::TestWithParam<std::tuple<std::size_t, unsigned>> {};

TEST_P(NormPreservation, FrobeniusNormInvariant) {
  const auto [n, s] = GetParam();
  auto p = core::make_problem(chem::custom_molecule("norm", n, s, n + s));
  double norm_a = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t k = 0; k < n; ++k)
        for (std::size_t l = 0; l < n; ++l) {
          const double v = p.engine.value(i, j, k, l);
          norm_a += v * v;
        }
  auto c = core::reference_dense(p);
  double norm_c = 0.0;
  for (std::size_t x = 0; x < c.size(); ++x)
    norm_c += c.data()[x] * c.data()[x];
  EXPECT_NEAR(norm_c / norm_a, 1.0, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NormPreservation,
    ::testing::Values(std::make_tuple(6, 1u), std::make_tuple(8, 2u),
                      std::make_tuple(10, 1u), std::make_tuple(12, 4u),
                      std::make_tuple(16, 8u)));

// ---- LRU inclusion (stack) property: growing the fast memory can
// never increase the I/O of a fixed access trace. ---------------------

TEST(LruProperty, MonotoneInCapacityUntiled) {
  const std::size_t n = 20;
  std::uint64_t prev = ~0ull;
  for (std::size_t s : {32u, 64u, 128u, 256u, 512u, 1024u}) {
    auto r = trace::trace_matmul_untiled(n, n, n, s);
    EXPECT_LE(r.io(), prev) << "s=" << s;
    prev = r.io();
  }
}

TEST(LruProperty, MonotoneInCapacityFusedSchedule) {
  const std::size_t n = 8;
  std::uint64_t prev = ~0ull;
  for (std::size_t s : {200u, 400u, 800u, 1600u, 3200u}) {
    auto r = trace::trace_fused1234_schedule(n, s, true);
    EXPECT_LE(r.io(), prev) << "s=" << s;
    prev = r.io();
  }
}

// ---- Bounds monotonicity and consistency -----------------------------

TEST(BoundsProperty, IoOptMonotoneInN) {
  for (auto f : bounds::all_fusion_choices()) {
    double prev = 0;
    for (double n : {16.0, 32.0, 64.0, 128.0, 256.0}) {
      const double io = bounds::io_opt(f, n, 8.0);
      EXPECT_GT(io, prev) << bounds::to_string(f) << " n=" << n;
      prev = io;
    }
  }
}

TEST(BoundsProperty, IoOptDecreasesWithSpatialSymmetry) {
  // More spatial symmetry shrinks |C| and hence every bound touching C.
  for (double n : {64.0, 256.0}) {
    EXPECT_GT(bounds::io_opt(bounds::FusionChoice::Fused1234, n, 1.0),
              bounds::io_opt(bounds::FusionChoice::Fused1234, n, 8.0));
  }
}

TEST(BoundsProperty, MaxProblemMonotoneInMemory) {
  std::size_t prev_f = 0, prev_u = 0;
  for (double words : {1e6, 1e7, 1e8, 1e9, 1e10}) {
    const auto nf = bounds::max_fused_problem(words, 2, 8);
    const auto nu = bounds::max_unfused_problem(words, 8);
    EXPECT_GE(nf, prev_f);
    EXPECT_GE(nu, prev_u);
    EXPECT_GE(nf, nu);  // fusion never admits a smaller problem
    prev_f = nf;
    prev_u = nu;
  }
}

TEST(BoundsProperty, Eq7BelowEq8ForAllTl) {
  // Eq. 8 adds the inner O1 slice term to Eq. 7's footprint.
  for (double n : {64.0, 368.0}) {
    for (double tl : {1.0, 2.0, 8.0, 32.0}) {
      if (tl > n) continue;
      EXPECT_LT(bounds::eq7_global_memory(n, tl, 8),
                bounds::eq8_global_memory(n, tl, 8));
    }
  }
}

TEST(BoundsProperty, MatmulBoundsScaleWithSqrtS) {
  // Quadrupling S must halve the volume-term bounds.
  const double b1 = bounds::matmul_lb_dongarra(256, 256, 256, 100);
  const double b4 = bounds::matmul_lb_dongarra(256, 256, 256, 400);
  EXPECT_NEAR(b1 / b4, 2.0, 1e-12);
}

// ---- Exact packed sizes always dominate the asymptotic formulas -----

TEST(SizesProperty, ExactAtLeastAsymptotic) {
  for (std::size_t n : {8u, 16u, 32u, 64u, 128u}) {
    for (unsigned s : {1u, 2u, 8u}) {
      auto ir = tensor::Irreps::contiguous(n, s);
      auto exact = tensor::packed_sizes(n, ir);
      auto approx = tensor::approx_sizes(double(n), double(s));
      EXPECT_GE(double(exact.a), approx.a);
      EXPECT_GE(double(exact.o1), approx.o1);
      EXPECT_GE(double(exact.o2), approx.o2);
      EXPECT_GE(double(exact.o3), approx.o3);
      // C: the packed diagonal terms dominate the 1/s estimate too.
      EXPECT_GE(double(exact.c), approx.c * 0.999);
    }
  }
}

// ---- Schedule agreement under every spatial symmetry order ----------

TEST(ScheduleProperty, AllSequentialSchedulesAgreePairwise) {
  auto p = core::make_problem(chem::custom_molecule("agree", 10, 2, 77));
  auto a = core::unfused_transform(p);
  auto b = core::fused12_34_transform(p);
  auto c = core::recompute_transform(p);
  auto d = core::fused1234_transform(p);
  EXPECT_LT(a.max_abs_diff(b), 1e-10);
  EXPECT_LT(b.max_abs_diff(c), 1e-10);
  EXPECT_LT(c.max_abs_diff(d), 1e-10);
  EXPECT_LT(d.max_abs_diff(a), 1e-10);
}

TEST(ScheduleProperty, ResultIndependentOfMaterialization) {
  // Listing 2 with A resident and with A generated on the fly must be
  // bit-identical (same arithmetic order).
  auto p1 = core::make_problem(chem::custom_molecule("mat", 9, 1, 3));
  auto p2 = core::make_problem(chem::custom_molecule("mat", 9, 1, 3));
  auto with_a = core::fused12_34_transform(p1, nullptr, true);
  auto otf = core::fused12_34_transform(p2, nullptr, false);
  EXPECT_EQ(with_a.max_abs_diff(otf), 0.0);
}

}  // namespace
