#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "ga/global_array.hpp"
#include "runtime/cluster.hpp"
#include "runtime/machine.hpp"
#include "tensor/tiling.hpp"
#include "util/error.hpp"

namespace {

using namespace fit;
using runtime::Cluster;
using runtime::ExecutionMode;
using runtime::MachineConfig;

MachineConfig tiny_machine(std::size_t nodes, std::size_t rpn,
                           double mem_per_node) {
  MachineConfig m;
  m.name = "tiny";
  m.n_nodes = nodes;
  m.ranks_per_node = rpn;
  m.mem_per_node_bytes = mem_per_node;
  m.flops_per_rank = 1e9;
  m.integrals_per_sec = 1e8;
  m.net_bandwidth_bps = 1e9;
  m.net_latency_s = 1e-6;
  m.local_bandwidth_bps = 1e10;
  return m;
}

TEST(Machine, PaperSystemsScaled) {
  auto a = runtime::system_a(4);
  EXPECT_EQ(a.n_ranks(), 32u);
  EXPECT_NEAR(a.mem_per_node_bytes, 24e9 / 4096, 1);
  auto b = runtime::system_b(18);
  EXPECT_EQ(b.n_ranks(), 504u);
  auto c = runtime::system_c(128);
  EXPECT_EQ(c.n_ranks(), 512u);
  EXPECT_GT(b.aggregate_memory_bytes(), c.mem_per_node_bytes);
}

TEST(Cluster, PhaseAdvancesMakespan) {
  Cluster cl(tiny_machine(2, 2, 1e9), ExecutionMode::Simulate);
  EXPECT_EQ(cl.n_ranks(), 4u);
  cl.run_phase("work", [](runtime::RankCtx& ctx) {
    // Rank r does (r+1) Gflop: makespan should be the slowest rank.
    ctx.charge_flops(1e9 * static_cast<double>(ctx.rank() + 1));
  });
  EXPECT_NEAR(cl.sim_time(), 4.0, 1e-9);  // 4 Gflop at 1 Gflop/s
  ASSERT_EQ(cl.phases().size(), 1u);
  EXPECT_NEAR(cl.phases()[0].imbalance, 4.0 * 4.0 / 10.0, 1e-9);
  EXPECT_NEAR(cl.totals().flops, 1e10, 1);
}

TEST(Cluster, TransferCostModel) {
  auto m = tiny_machine(2, 2, 1e9);
  Cluster cl(m, ExecutionMode::Simulate);
  cl.run_phase("comm", [&](runtime::RankCtx& ctx) {
    if (ctx.rank() != 0) return;
    ctx.charge_transfer(1, 1e6);  // same node (ranks 0,1 on node 0)
    ctx.charge_transfer(2, 1e6);  // remote (node 1)
  });
  EXPECT_NEAR(cl.totals().local_bytes, 1e6, 1);
  EXPECT_NEAR(cl.totals().remote_bytes, 1e6, 1);
  EXPECT_NEAR(cl.totals().remote_messages, 1.0, 1e-12);
  // time = 1e6/1e10 (local) + 1e-6 + 1e6/1e9 (remote)
  EXPECT_NEAR(cl.sim_time(), 1e-4 + 1e-6 + 1e-3, 1e-9);
}

TEST(Cluster, MemTrackerOom) {
  Cluster cl(tiny_machine(1, 2, 1000), ExecutionMode::Simulate);
  auto& mem = cl.memory(0);
  EXPECT_NO_THROW(mem.alloc(400, "x"));
  EXPECT_THROW(mem.alloc(200, "y"), fit::OutOfMemoryError);  // 400+200>500
  mem.release(400);
  EXPECT_NO_THROW(mem.alloc(500, "z"));
  EXPECT_NEAR(mem.peak(), 500, 1e-9);
}

TEST(Cluster, MemTrackerDoubleReleaseIsAnInternalError) {
  // Releasing more than is in use is an accounting bug in the caller
  // (double free of a tile). The tracker must refuse instead of
  // silently going negative and inflating later capacity checks.
  Cluster cl(tiny_machine(1, 1, 1000), ExecutionMode::Simulate);
  auto& mem = cl.memory(0);
  mem.alloc(400, "x");
  mem.release(400);
  EXPECT_THROW(mem.release(400), fit::InternalError);
  EXPECT_THROW(mem.release(-1.0), fit::PreconditionError);
  // The tracker stays usable after the refused release.
  EXPECT_NO_THROW(mem.alloc(1000, "y"));
  EXPECT_NEAR(mem.used(), 1000, 1e-9);
}

TEST(Cluster, RankBufferChargesScratchAndReleases) {
  auto m = tiny_machine(1, 1, 1e9);
  m.local_scratch_bytes = 8 * 100 + 64;
  Cluster cl(m, ExecutionMode::Real);
  cl.run_phase("buf", [](runtime::RankCtx& ctx) {
    {
      runtime::RankBuffer b(ctx, 100, "scratch");
      ASSERT_NE(b.data(), nullptr);
      b.data()[99] = 1.0;
      EXPECT_NEAR(ctx.scratch().used(), 800, 1e-9);
      EXPECT_NEAR(ctx.memory().used(), 0, 1e-9);  // GA share untouched
      EXPECT_THROW(runtime::RankBuffer(ctx, 100, "too much"),
                   fit::OutOfMemoryError);
    }
    EXPECT_NEAR(ctx.scratch().used(), 0, 1e-9);
  });
}

TEST(Cluster, SimulateModeBufferIsNull) {
  Cluster cl(tiny_machine(1, 1, 1e9), ExecutionMode::Simulate);
  cl.run_phase("buf", [](runtime::RankCtx& ctx) {
    runtime::RankBuffer b(ctx, 100, "scratch");
    EXPECT_EQ(b.data(), nullptr);
    EXPECT_FALSE(ctx.real());
  });
}

TEST(GlobalArray, TilingCoverageAndFilters) {
  Cluster cl(tiny_machine(2, 2, 1e9), ExecutionMode::Simulate);
  std::vector<tensor::Tiling> dims = {tensor::Tiling(10, 3),
                                      tensor::Tiling(10, 3)};
  ga::GlobalArray full(cl, "full", dims);
  EXPECT_EQ(full.n_tiles(), 16u);
  EXPECT_EQ(full.total_elements(), 100u);

  ga::GlobalArray tri(cl, "tri", dims, ga::filter_triangular(0, 1));
  EXPECT_EQ(tri.n_tiles(), 10u);  // 4*5/2
  EXPECT_TRUE(tri.exists(std::vector<std::size_t>{2, 1}));
  EXPECT_FALSE(tri.exists(std::vector<std::size_t>{1, 2}));
  EXPECT_THROW(tri.info(std::vector<std::size_t>{1, 2}),
               fit::PreconditionError);
}

TEST(GlobalArray, OwnershipPartition) {
  Cluster cl(tiny_machine(2, 2, 1e9), ExecutionMode::Simulate);
  std::vector<tensor::Tiling> dims = {tensor::Tiling(8, 2),
                                      tensor::Tiling(8, 2)};
  ga::GlobalArray a(cl, "a", dims);
  std::size_t covered = 0;
  for (std::size_t r = 0; r < cl.n_ranks(); ++r)
    covered += a.tiles_of(r).size();
  EXPECT_EQ(covered, a.n_tiles());
  // Round-robin is balanced to within one tile.
  for (std::size_t r = 0; r < cl.n_ranks(); ++r)
    EXPECT_NEAR(static_cast<double>(a.tiles_of(r).size()),
                static_cast<double>(a.n_tiles()) / 4.0, 1.0);
}

TEST(GlobalArray, CustomOwnerFunction) {
  Cluster cl(tiny_machine(2, 2, 1e9), ExecutionMode::Simulate);
  std::vector<tensor::Tiling> dims = {tensor::Tiling(8, 2),
                                      tensor::Tiling(8, 2)};
  auto owner = [](std::span<const std::size_t> c, std::size_t nranks) {
    return c[0] % nranks;  // distribute by block row
  };
  ga::GlobalArray a(cl, "a", dims, {}, owner);
  for (std::size_t idx = 0; idx < a.n_tiles(); ++idx) {
    const auto& t = a.tile_by_index(idx);
    EXPECT_EQ(t.owner, t.coord[0] % 4);
  }
}

TEST(GlobalArray, PutGetAccRoundTrip) {
  Cluster cl(tiny_machine(1, 2, 1e9), ExecutionMode::Real);
  std::vector<tensor::Tiling> dims = {tensor::Tiling(4, 2),
                                      tensor::Tiling(4, 2)};
  ga::GlobalArray a(cl, "a", dims);
  const std::vector<std::size_t> coord = {1, 0};

  cl.run_phase("put", [&](runtime::RankCtx& ctx) {
    if (ctx.rank() != 0) return;
    std::vector<double> buf = {1, 2, 3, 4};
    a.put(ctx, coord, buf.data());
  });
  cl.run_phase("acc", [&](runtime::RankCtx& ctx) {
    if (ctx.rank() != 1) return;
    std::vector<double> buf = {10, 10, 10, 10};
    a.acc(ctx, coord, buf.data());
  });
  cl.run_phase("get", [&](runtime::RankCtx& ctx) {
    if (ctx.rank() != 0) return;
    std::vector<double> buf(4, 0.0);
    a.get(ctx, coord, buf.data());
    EXPECT_DOUBLE_EQ(buf[0], 11.0);
    EXPECT_DOUBLE_EQ(buf[3], 14.0);
  });
  // peek reads element (2, 1) = row 2 of tile (1,0), local offset (0,1).
  EXPECT_DOUBLE_EQ(a.peek(std::vector<std::size_t>{2, 1}), 12.0);
}

TEST(GlobalArray, SyncDisciplineEnforced) {
  Cluster cl(tiny_machine(1, 2, 1e9), ExecutionMode::Real);
  std::vector<tensor::Tiling> dims = {tensor::Tiling(4, 4)};
  ga::GlobalArray a(cl, "a", dims);
  const std::vector<std::size_t> coord = {0};
  EXPECT_THROW(cl.run_phase("race",
                            [&](runtime::RankCtx& ctx) {
                              std::vector<double> buf(4, 1.0);
                              a.put(ctx, coord, buf.data());
                              a.get(ctx, coord, buf.data());  // same epoch!
                            }),
               fit::InternalError);
}

TEST(GlobalArray, CommAccounting) {
  // Ranks 0,1 on node 0; ranks 2,3 on node 1. Round-robin owners of a
  // 4-tile array: tile i owned by rank i.
  Cluster cl(tiny_machine(2, 2, 1e9), ExecutionMode::Simulate);
  std::vector<tensor::Tiling> dims = {tensor::Tiling(8, 2)};
  ga::GlobalArray a(cl, "a", dims);
  cl.run_phase("reads", [&](runtime::RankCtx& ctx) {
    if (ctx.rank() != 0) return;
    for (std::size_t t = 0; t < 4; ++t)
      a.get(ctx, std::vector<std::size_t>{t}, nullptr);
  });
  // Tiles 0,1 local-node (2 elements each = 16 B), tiles 2,3 remote.
  EXPECT_NEAR(cl.totals().local_bytes, 32, 1e-9);
  EXPECT_NEAR(cl.totals().remote_bytes, 32, 1e-9);
  EXPECT_NEAR(cl.totals().remote_messages, 2, 1e-12);
}

TEST(GlobalArray, CreationOomRollsBack) {
  // Node memory too small for the array: creation must throw and the
  // partial charges must be rolled back so a retry can proceed.
  Cluster cl(tiny_machine(1, 1, 100.0), ExecutionMode::Simulate);
  std::vector<tensor::Tiling> dims = {tensor::Tiling(64, 8)};  // 512 B
  EXPECT_THROW(ga::GlobalArray(cl, "big", dims), fit::OutOfMemoryError);
  EXPECT_NEAR(cl.memory(0).used(), 0.0, 1e-9);
  // A smaller array still fits afterwards.
  std::vector<tensor::Tiling> small = {tensor::Tiling(8, 8)};  // 64 B
  EXPECT_NO_THROW(ga::GlobalArray(cl, "small", small));
}

TEST(GlobalArray, DestroyReleasesMemory) {
  Cluster cl(tiny_machine(1, 1, 1e6), ExecutionMode::Simulate);
  std::vector<tensor::Tiling> dims = {tensor::Tiling(100, 10)};
  auto a = std::make_unique<ga::GlobalArray>(cl, "a", dims);
  EXPECT_NEAR(cl.memory(0).used(), 800.0, 1e-9);
  a->destroy();
  EXPECT_NEAR(cl.memory(0).used(), 0.0, 1e-9);
  a->destroy();  // idempotent
  EXPECT_NEAR(cl.memory(0).used(), 0.0, 1e-9);
  EXPECT_NEAR(cl.global_peak(), 800.0, 1e-9);
}

TEST(GlobalArray, OpsAfterDestroyArePreconditionErrors) {
  // A destroyed array must reject one-sided traffic instead of
  // touching freed tile storage.
  Cluster cl(tiny_machine(1, 1, 1e6), ExecutionMode::Real);
  std::vector<tensor::Tiling> dims = {tensor::Tiling(8, 4)};
  ga::GlobalArray a(cl, "gone", dims);
  a.destroy();
  cl.run_phase("use-after-destroy", [&](runtime::RankCtx& ctx) {
    std::vector<double> buf(4, 0.0);
    const std::vector<std::size_t> coord = {0};
    EXPECT_THROW(a.get(ctx, coord, buf.data()), fit::PreconditionError);
    EXPECT_THROW(a.put(ctx, coord, buf.data()), fit::PreconditionError);
    EXPECT_THROW(a.acc(ctx, coord, buf.data()), fit::PreconditionError);
  });
}

TEST(GlobalArray, RestoreTileRoundTripsDataAndEpoch) {
  // The checkpoint interface: a tile snapshot (data + write epoch)
  // restores bit-identically, and an empty snapshot means zeros.
  Cluster cl(tiny_machine(1, 1, 1e6), ExecutionMode::Real);
  std::vector<tensor::Tiling> dims = {tensor::Tiling(8, 4)};  // 2 tiles
  ga::GlobalArray a(cl, "ck", dims);
  const std::vector<std::size_t> coord = {1};
  cl.run_phase("fill", [&](runtime::RankCtx& ctx) {
    std::vector<double> buf = {5, 6, 7, 8};
    a.put(ctx, coord, buf.data());
  });
  std::size_t idx = a.n_tiles();
  for (std::size_t i = 0; i < a.n_tiles(); ++i)
    if (a.tile_by_index(i).coord == coord) idx = i;
  ASSERT_LT(idx, a.n_tiles());
  const auto snap = a.tile_data(idx);           // copy = the snapshot
  const auto epoch = a.tile_write_epoch(idx);
  EXPECT_GT(epoch, 0u);

  cl.run_phase("clobber", [&](runtime::RankCtx& ctx) {
    std::vector<double> buf = {0, 0, 0, 0};
    a.put(ctx, coord, buf.data());
  });
  a.restore_tile(idx, snap, epoch);
  EXPECT_EQ(a.tile_write_epoch(idx), epoch);
  EXPECT_DOUBLE_EQ(a.peek(std::vector<std::size_t>{7}), 8.0);

  a.restore_tile(idx, {}, 0);  // empty snapshot = never written
  EXPECT_EQ(a.tile_write_epoch(idx), 0u);
  EXPECT_DOUBLE_EQ(a.peek(std::vector<std::size_t>{7}), 0.0);
}

TEST(GlobalArray, ReassignOwnerMovesTilesToSurvivors) {
  // When a rank dies its tiles get new owners among the survivors and
  // the dead rank's memory accounting is emptied.
  Cluster cl(tiny_machine(1, 4, 1e6), ExecutionMode::Real);
  std::vector<tensor::Tiling> dims = {tensor::Tiling(16, 4)};  // 4 tiles
  ga::GlobalArray a(cl, "mv", dims);
  ASSERT_EQ(a.tiles_of(2).size(), 1u);
  const std::size_t dead_tile = a.tiles_of(2)[0];
  const double dead_used = cl.memory(2).used();
  EXPECT_GT(dead_used, 0.0);

  const std::vector<std::size_t> targets = {0, 1, 3};
  auto moved = a.reassign_owner(2, targets);
  ASSERT_EQ(moved.size(), 1u);
  EXPECT_EQ(moved[0], dead_tile);
  EXPECT_TRUE(a.tiles_of(2).empty());
  const auto new_owner = a.tile_by_index(dead_tile).owner;
  EXPECT_NE(new_owner, 2u);
  EXPECT_NEAR(cl.memory(2).used(), 0.0, 1e-9);
  EXPECT_NEAR(cl.memory(new_owner).used(),
              dead_used + 8.0 * 4, 1e-9);  // its own tile + the moved one
}

TEST(GlobalArray, ReassignOwnersIsCapacityAware) {
  // Survivors carry very different loads: a ballast array pins most of
  // rank 1's memory, so a dead rank's tiles must land on the emptier
  // survivors instead of being dealt round-robin onto the full one.
  Cluster cl(tiny_machine(1, 4, 1e6), ExecutionMode::Real);
  auto to_rank1 = [](std::span<const std::size_t>, std::size_t) {
    return std::size_t{1};
  };
  std::vector<tensor::Tiling> big = {tensor::Tiling(4096, 4096)};
  ga::GlobalArray ballast(cl, "ballast", big, {}, to_rank1);
  ASSERT_GT(cl.memory(1).used(), cl.memory(0).used());

  std::vector<tensor::Tiling> dims = {tensor::Tiling(32, 4)};  // 8 tiles
  ga::GlobalArray a(cl, "mv", dims);  // round-robin: 2 tiles per rank
  ASSERT_EQ(a.tiles_of(2).size(), 2u);
  const double used0 = cl.memory(0).used();
  const double used3 = cl.memory(3).used();

  const std::vector<std::size_t> targets = {0, 1, 3};
  const auto moved = a.reassign_owners(std::vector<std::size_t>{2}, targets);
  ASSERT_EQ(moved.size(), 2u);
  for (const std::size_t idx : moved) {
    const std::size_t owner = a.tile_by_index(idx).owner;
    EXPECT_NE(owner, 1u);  // never the loaded survivor
    EXPECT_NE(owner, 2u);
  }
  // The two orphans spread across the two empty survivors (placement
  // re-reads free space after every move) instead of stacking.
  EXPECT_NEAR(cl.memory(0).used(), used0 + 8.0 * 4, 1e-9);
  EXPECT_NEAR(cl.memory(3).used(), used3 + 8.0 * 4, 1e-9);
}

}  // namespace

// ---- Disk spilling (Sec. 3 motivation) -------------------------------

namespace {

TEST(DiskSpill, NoDiskMeansHardOom) {
  Cluster cl(tiny_machine(1, 1, 100.0), ExecutionMode::Simulate);
  std::vector<tensor::Tiling> dims = {tensor::Tiling(64, 8)};  // 512 B
  EXPECT_THROW(ga::GlobalArray(cl, "big", dims), fit::OutOfMemoryError);
}

TEST(DiskSpill, SpillsExactlyTheOverflow) {
  auto m = tiny_machine(1, 1, 8.0 * 8 * 4 + 1);  // room for 4 tiles
  m.disk_bandwidth_bps = 1e8;
  Cluster cl(m, ExecutionMode::Simulate);
  std::vector<tensor::Tiling> dims = {tensor::Tiling(64, 8)};  // 8 tiles
  ga::GlobalArray a(cl, "big", dims);
  EXPECT_EQ(a.n_spilled_tiles(), 4u);
  EXPECT_NEAR(cl.disk_used(), 4 * 8 * 8.0, 1e-9);
  a.destroy();
  EXPECT_NEAR(cl.disk_used(), 0.0, 1e-9);
  EXPECT_NEAR(cl.disk_peak(), 256.0, 1e-9);
}

TEST(DiskSpill, SpilledAccessChargesDiskTime) {
  auto m = tiny_machine(1, 2, 130.0);  // one 64-byte tile per rank fits
  m.disk_bandwidth_bps = 1e6;  // very slow collective file system
  m.disk_latency_s = 1e-3;
  Cluster cl(m, ExecutionMode::Simulate);
  std::vector<tensor::Tiling> dims = {tensor::Tiling(32, 8)};  // 4 tiles
  ga::GlobalArray a(cl, "sp", dims);
  ASSERT_EQ(a.n_spilled_tiles(), 2u);

  // Find one spilled and one resident tile and read both from rank 0.
  std::size_t spilled = 99, resident = 99;
  for (std::size_t t = 0; t < 4; ++t) {
    if (a.is_spilled(std::vector<std::size_t>{t}))
      spilled = t;
    else
      resident = t;
  }
  ASSERT_NE(spilled, 99u);
  ASSERT_NE(resident, 99u);
  cl.run_phase("reads", [&](runtime::RankCtx& ctx) {
    if (ctx.rank() != 0) return;
    a.get(ctx, std::vector<std::size_t>{spilled}, nullptr);
    a.get(ctx, std::vector<std::size_t>{resident}, nullptr);
  });
  EXPECT_NEAR(cl.totals().disk_bytes, 64.0, 1e-9);
  // Disk time = latency + bytes/(bw/nranks) = 1e-3 + 64/(5e5).
  EXPECT_GT(cl.sim_time(), 1e-3);
}

TEST(DiskSpill, RealModeResultsUnaffected) {
  // Spilling is a cost-model concept: Real-mode data round-trips
  // identically through spilled tiles.
  auto m = tiny_machine(1, 1, 8.0 * 4 + 1);
  m.disk_bandwidth_bps = 1e8;
  Cluster cl(m, ExecutionMode::Real);
  std::vector<tensor::Tiling> dims = {tensor::Tiling(16, 4)};  // 4 tiles
  ga::GlobalArray a(cl, "sp", dims);
  ASSERT_GT(a.n_spilled_tiles(), 0u);
  const std::vector<std::size_t> coord = {3};
  ASSERT_TRUE(a.is_spilled(coord));
  cl.run_phase("put", [&](runtime::RankCtx& ctx) {
    std::vector<double> buf = {1, 2, 3, 4};
    a.put(ctx, coord, buf.data());
  });
  cl.run_phase("get", [&](runtime::RankCtx& ctx) {
    std::vector<double> buf(4, 0.0);
    a.get(ctx, coord, buf.data());
    EXPECT_DOUBLE_EQ(buf[3], 4.0);
  });
}

}  // namespace

// ---- Nonblocking one-sided operations --------------------------------

namespace {

// tiny_machine wire time for one remote 128-double tile.
constexpr double kTileBytes = 8.0 * 128;
constexpr double kWire = 1e-6 + kTileBytes / 1e9;

TEST(Nonblocking, WireTimeHidesBehindCompute) {
  // One remote tile; the rank computes for longer than the wire time
  // between issue and wait, so the wait costs nothing and the whole
  // transfer is accounted as overlapped.
  Cluster cl(tiny_machine(2, 1, 1e9), ExecutionMode::Simulate);
  std::vector<tensor::Tiling> dims = {tensor::Tiling(128, 128)};
  ga::GlobalArray a(cl, "a", dims);  // tile 0 -> rank 0
  cl.run_phase("overlap", [&](runtime::RankCtx& ctx) {
    if (ctx.rank() != 1) return;
    auto h = a.nbget(ctx, std::vector<std::size_t>{0}, nullptr);
    EXPECT_EQ(ctx.nb_outstanding(), 1u);
    EXPECT_FALSE(ctx.test_transfer(h));
    ctx.charge_flops(1e4);  // 1e-5 s >> kWire
    EXPECT_TRUE(ctx.test_transfer(h));
    ga::GlobalArray::wait(ctx, h);
    EXPECT_EQ(ctx.nb_outstanding(), 0u);
    EXPECT_NEAR(ctx.elapsed(), 1e-5, 1e-15);  // fully hidden
  });
  EXPECT_NEAR(cl.sim_time(), 1e-5, 1e-15);
  EXPECT_NEAR(cl.totals().overlapped_seconds, kWire, 1e-15);
  EXPECT_NEAR(cl.totals().exposed_seconds, 0.0, 1e-15);
  EXPECT_NEAR(cl.totals().remote_bytes, kTileBytes, 1e-9);
}

TEST(Nonblocking, ImmediateWaitCostsExactlyTheBlockingOp) {
  // An nb issue followed directly by its wait is fully exposed and
  // must reproduce the blocking op's counters and sim time exactly —
  // this is what makes overlap=false a faithful ablation baseline.
  std::vector<tensor::Tiling> dims = {tensor::Tiling(128, 128)};
  Cluster blocking(tiny_machine(2, 1, 1e9), ExecutionMode::Simulate);
  Cluster nb(tiny_machine(2, 1, 1e9), ExecutionMode::Simulate);
  ga::GlobalArray ab(blocking, "a", dims);
  ga::GlobalArray an(nb, "a", dims);
  blocking.run_phase("get", [&](runtime::RankCtx& ctx) {
    if (ctx.rank() == 1) ab.get(ctx, std::vector<std::size_t>{0}, nullptr);
  });
  nb.run_phase("get", [&](runtime::RankCtx& ctx) {
    if (ctx.rank() != 1) return;
    ga::GlobalArray::wait(ctx,
                          an.nbget(ctx, std::vector<std::size_t>{0},
                                   nullptr));
  });
  EXPECT_EQ(blocking.sim_time(), nb.sim_time());
  EXPECT_EQ(blocking.totals().remote_bytes, nb.totals().remote_bytes);
  EXPECT_EQ(blocking.totals().remote_messages,
            nb.totals().remote_messages);
  EXPECT_EQ(blocking.totals().ga_gets, nb.totals().ga_gets);
  EXPECT_EQ(blocking.totals().exposed_seconds,
            nb.totals().exposed_seconds);
  EXPECT_EQ(nb.totals().overlapped_seconds, 0.0);
}

TEST(Nonblocking, WaitIsIdempotent) {
  Cluster cl(tiny_machine(2, 1, 1e9), ExecutionMode::Simulate);
  std::vector<tensor::Tiling> dims = {tensor::Tiling(128, 128)};
  ga::GlobalArray a(cl, "a", dims);
  cl.run_phase("waitwait", [&](runtime::RankCtx& ctx) {
    if (ctx.rank() != 1) return;
    auto h = a.nbget(ctx, std::vector<std::size_t>{0}, nullptr);
    ga::GlobalArray::wait(ctx, h);
    const double t = ctx.elapsed();
    ga::GlobalArray::wait(ctx, h);  // no-op
    EXPECT_EQ(ctx.elapsed(), t);
    EXPECT_TRUE(ctx.test_transfer(h));
  });
  EXPECT_NEAR(cl.totals().exposed_seconds, kWire, 1e-15);
}

TEST(Nonblocking, InjectionLinkSerializesConcurrentTransfers) {
  // Two in-flight gets from the same rank share its injection link:
  // waiting on both costs the *sum* of their wire times (the second
  // queues), not the max — prefetch pipelines can't conjure bandwidth.
  Cluster cl(tiny_machine(2, 1, 1e9), ExecutionMode::Simulate);
  std::vector<tensor::Tiling> dims = {tensor::Tiling(256, 128)};
  auto owner0 = [](std::span<const std::size_t>, std::size_t) {
    return std::size_t{0};
  };
  ga::GlobalArray a(cl, "a", dims, {}, owner0);
  cl.run_phase("two", [&](runtime::RankCtx& ctx) {
    if (ctx.rank() != 1) return;
    auto h0 = a.nbget(ctx, std::vector<std::size_t>{0}, nullptr);
    auto h1 = a.nbget(ctx, std::vector<std::size_t>{1}, nullptr);
    ga::GlobalArray::wait(ctx, h0);
    EXPECT_NEAR(ctx.elapsed(), kWire, 1e-15);
    ga::GlobalArray::wait(ctx, h1);
    EXPECT_NEAR(ctx.elapsed(), 2 * kWire, 1e-15);
  });
  EXPECT_NEAR(cl.sim_time(), 2 * kWire, 1e-15);
}

TEST(Nonblocking, BlockingOpQueuesBehindInFlightTransfer) {
  // A blocking get issued while an nb transfer occupies the link must
  // wait for the link before its own wire time starts.
  Cluster cl(tiny_machine(2, 1, 1e9), ExecutionMode::Simulate);
  std::vector<tensor::Tiling> dims = {tensor::Tiling(256, 128)};
  auto owner0 = [](std::span<const std::size_t>, std::size_t) {
    return std::size_t{0};
  };
  ga::GlobalArray a(cl, "a", dims, {}, owner0);
  cl.run_phase("queue", [&](runtime::RankCtx& ctx) {
    if (ctx.rank() != 1) return;
    a.nbget(ctx, std::vector<std::size_t>{0}, nullptr);  // in flight
    a.get(ctx, std::vector<std::size_t>{1}, nullptr);    // queues
    EXPECT_NEAR(ctx.elapsed(), 2 * kWire, 1e-15);
  });
  // The blocking get is fully exposed (the rank stalls through both
  // wire times), and the nb transfer's own wire time is hidden behind
  // that stall — comm/comm overlap, credited to the overlap account.
  EXPECT_NEAR(cl.totals().exposed_seconds, 2 * kWire, 1e-15);
  EXPECT_NEAR(cl.totals().overlapped_seconds, kWire, 1e-15);
}

TEST(Nonblocking, BarrierQuiescesUnwaitedHandles) {
  // A handle never waited on is completed by the phase barrier; its
  // wire time still lands in the makespan and the exposed account.
  Cluster cl(tiny_machine(2, 1, 1e9), ExecutionMode::Simulate);
  std::vector<tensor::Tiling> dims = {tensor::Tiling(128, 128)};
  ga::GlobalArray a(cl, "a", dims);
  cl.run_phase("leak", [&](runtime::RankCtx& ctx) {
    if (ctx.rank() == 1)
      a.nbget(ctx, std::vector<std::size_t>{0}, nullptr);
  });
  EXPECT_NEAR(cl.sim_time(), kWire, 1e-15);
  EXPECT_NEAR(cl.totals().exposed_seconds, kWire, 1e-15);
}

TEST(Nonblocking, PutAccGetRoundTripsLikeBlocking) {
  // nbput/nbacc move data eagerly at issue; after the barrier a reader
  // sees exactly what the blocking ops would have produced.
  Cluster cl(tiny_machine(1, 2, 1e9), ExecutionMode::Real);
  std::vector<tensor::Tiling> dims = {tensor::Tiling(4, 2),
                                      tensor::Tiling(4, 2)};
  ga::GlobalArray a(cl, "a", dims);
  const std::vector<std::size_t> coord = {1, 0};
  cl.run_phase("nbput", [&](runtime::RankCtx& ctx) {
    if (ctx.rank() != 0) return;
    std::vector<double> buf = {1, 2, 3, 4};
    a.nbput(ctx, coord, buf.data());
    buf.assign(4, -99.0);  // buffer reusable immediately after issue
  });
  cl.run_phase("nbacc", [&](runtime::RankCtx& ctx) {
    if (ctx.rank() != 1) return;
    std::vector<double> buf = {10, 10, 10, 10};
    ga::GlobalArray::wait(ctx, a.nbacc(ctx, coord, buf.data()));
  });
  cl.run_phase("check", [&](runtime::RankCtx& ctx) {
    if (ctx.rank() != 0) return;
    std::vector<double> buf(4, 0.0);
    a.get(ctx, coord, buf.data());
    EXPECT_DOUBLE_EQ(buf[0], 11.0);
    EXPECT_DOUBLE_EQ(buf[3], 14.0);
  });
  EXPECT_NEAR(cl.totals().ga_puts, 1.0, 1e-12);
  EXPECT_NEAR(cl.totals().ga_accs, 1.0, 1e-12);
}

TEST(Nonblocking, SyncDisciplineStillEnforced) {
  // nbget of a tile written this epoch is the same race the blocking
  // get catches — prefetching must not smuggle it past the check.
  Cluster cl(tiny_machine(1, 2, 1e9), ExecutionMode::Real);
  std::vector<tensor::Tiling> dims = {tensor::Tiling(4, 4)};
  ga::GlobalArray a(cl, "a", dims);
  const std::vector<std::size_t> coord = {0};
  EXPECT_THROW(
      cl.run_phase("race",
                   [&](runtime::RankCtx& ctx) {
                     std::vector<double> buf(4, 1.0);
                     a.put(ctx, coord, buf.data());
                     a.nbget(ctx, coord, buf.data());  // same epoch!
                   }),
      fit::InternalError);
}

TEST(Nonblocking, SpilledTileGoesThroughTheDiskModel) {
  auto m = tiny_machine(1, 1, 8.0 * 4 + 1);  // one 4-double tile fits
  m.disk_bandwidth_bps = 1e6;
  m.disk_latency_s = 1e-3;
  Cluster cl(m, ExecutionMode::Simulate);
  std::vector<tensor::Tiling> dims = {tensor::Tiling(16, 4)};  // 4 tiles
  ga::GlobalArray a(cl, "sp", dims);
  ASSERT_GT(a.n_spilled_tiles(), 0u);
  std::size_t spilled = 99;
  for (std::size_t t = 0; t < 4; ++t)
    if (a.is_spilled(std::vector<std::size_t>{t})) spilled = t;
  ASSERT_NE(spilled, 99u);
  cl.run_phase("read", [&](runtime::RankCtx& ctx) {
    auto h = a.nbget(ctx, std::vector<std::size_t>{spilled}, nullptr);
    ga::GlobalArray::wait(ctx, h);
    EXPECT_GT(ctx.elapsed(), 1e-3);  // paid the disk latency
  });
  EXPECT_NEAR(cl.totals().disk_bytes, 32.0, 1e-9);
}

TEST(Nonblocking, WaitAllDrainsEveryHandle) {
  Cluster cl(tiny_machine(2, 1, 1e9), ExecutionMode::Simulate);
  std::vector<tensor::Tiling> dims = {tensor::Tiling(256, 128)};
  auto owner0 = [](std::span<const std::size_t>, std::size_t) {
    return std::size_t{0};
  };
  ga::GlobalArray a(cl, "a", dims, {}, owner0);
  cl.run_phase("drain", [&](runtime::RankCtx& ctx) {
    if (ctx.rank() != 1) return;
    a.nbget(ctx, std::vector<std::size_t>{0}, nullptr);
    a.nbget(ctx, std::vector<std::size_t>{1}, nullptr);
    EXPECT_EQ(ctx.nb_outstanding(), 2u);
    ga::GlobalArray::wait_all(ctx);
    EXPECT_EQ(ctx.nb_outstanding(), 0u);
    EXPECT_NEAR(ctx.elapsed(), 2 * kWire, 1e-15);
  });
}

}  // namespace

// ---- Named distributions ---------------------------------------------

namespace {

TEST(Distributions, OwnerByDim) {
  Cluster cl(tiny_machine(1, 3, 1e9), ExecutionMode::Simulate);
  std::vector<tensor::Tiling> dims = {tensor::Tiling(12, 2),
                                      tensor::Tiling(12, 2)};
  ga::GlobalArray a(cl, "bydim", dims, {}, ga::owner_by_dim(0));
  for (std::size_t idx = 0; idx < a.n_tiles(); ++idx) {
    const auto& t = a.tile_by_index(idx);
    EXPECT_EQ(t.owner, t.coord[0] % 3);
  }
}

TEST(Distributions, OwnerBlockIsContiguousAndBalanced) {
  Cluster cl(tiny_machine(1, 4, 1e9), ExecutionMode::Simulate);
  std::vector<tensor::Tiling> dims = {tensor::Tiling(16, 2)};  // 8 tiles
  ga::GlobalArray a(cl, "blk", dims, {}, ga::owner_block(8));
  // Owners are nondecreasing over the enumeration and cover all ranks.
  std::size_t prev = 0;
  std::set<std::size_t> owners;
  for (std::size_t idx = 0; idx < a.n_tiles(); ++idx) {
    const auto& t = a.tile_by_index(idx);
    EXPECT_GE(t.owner, prev);
    prev = t.owner;
    owners.insert(t.owner);
  }
  EXPECT_EQ(owners.size(), 4u);
}

TEST(Distributions, OwnerCyclicMatchesDefault) {
  Cluster cl(tiny_machine(1, 3, 1e9), ExecutionMode::Simulate);
  std::vector<tensor::Tiling> dims = {tensor::Tiling(9, 3),
                                      tensor::Tiling(9, 3)};
  ga::GlobalArray dflt(cl, "d", dims);
  ga::GlobalArray cyc(cl, "c", dims, {}, ga::owner_cyclic());
  for (std::size_t idx = 0; idx < dflt.n_tiles(); ++idx)
    EXPECT_EQ(dflt.tile_by_index(idx).owner, cyc.tile_by_index(idx).owner);
}

}  // namespace
